#ifndef CROWDJOIN_TEXT_RECORD_H_
#define CROWDJOIN_TEXT_RECORD_H_

#include <string>
#include <vector>

#include "graph/label.h"

namespace crowdjoin {

/// \brief A flat, schema-positional record — the object granularity of the
/// crowdsourced join (e.g. one publication entry or one product listing).
struct Record {
  ObjectId id = 0;
  std::vector<std::string> fields;
};

/// Field names, positionally aligned with `Record::fields`.
struct Schema {
  std::vector<std::string> field_names;

  /// Index of `name`, or -1 when absent.
  int FieldIndex(const std::string& name) const {
    for (size_t i = 0; i < field_names.size(); ++i) {
      if (field_names[i] == name) return static_cast<int>(i);
    }
    return -1;
  }
};

using RecordSet = std::vector<Record>;

}  // namespace crowdjoin

#endif  // CROWDJOIN_TEXT_RECORD_H_
