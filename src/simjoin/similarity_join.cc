#include "simjoin/similarity_join.h"

#include <algorithm>
#include <unordered_map>

#include "common/macros.h"
#include "simjoin/prefix_filter.h"
#include "text/set_similarity.h"

namespace crowdjoin {

Result<std::vector<ScoredPair>> PrefixFilterSelfJoin(
    const std::vector<std::vector<int32_t>>& docs,
    const TokenDictionary& dictionary, double threshold) {
  CJ_RETURN_IF_ERROR(ValidateJoinThreshold(threshold));
  const size_t n = docs.size();

  // Process docs in ascending size so the length filter |y| >= t|x| holds
  // for everything already indexed when x arrives.
  std::vector<int32_t> by_size(n);
  for (size_t i = 0; i < n; ++i) by_size[i] = static_cast<int32_t>(i);
  std::sort(by_size.begin(), by_size.end(), [&docs](int32_t x, int32_t y) {
    if (docs[static_cast<size_t>(x)].size() !=
        docs[static_cast<size_t>(y)].size()) {
      return docs[static_cast<size_t>(x)].size() <
             docs[static_cast<size_t>(y)].size();
    }
    return x < y;
  });

  // Rarity-ordered copies for prefix extraction.
  std::vector<std::vector<int32_t>> by_rarity(n);
  for (size_t i = 0; i < n; ++i) {
    by_rarity[i] = docs[i];
    dictionary.SortByRarity(by_rarity[i]);
  }

  std::unordered_map<int32_t, std::vector<int32_t>> index;
  index.reserve(dictionary.size());
  std::vector<int32_t> last_seen(n, -1);
  // Scratch candidate buffer, reused across probes: the probe phase only
  // gathers ids, and verification runs afterwards as one tight batch.
  std::vector<int32_t> candidates;
  std::vector<ScoredPair> out;

  for (size_t step = 0; step < n; ++step) {
    const int32_t x = by_size[step];
    const auto& rarity_x = by_rarity[static_cast<size_t>(x)];
    const size_t len_x = rarity_x.size();
    if (len_x == 0) continue;
    const size_t prefix_x = PrefixLength(threshold, len_x);
    const size_t min_len_y = CeilThresholdLength(threshold, len_x);

    candidates.clear();
    for (size_t p = 0; p < prefix_x; ++p) {
      auto it = index.find(rarity_x[p]);
      if (it == index.end()) continue;
      for (const int32_t y : it->second) {
        if (last_seen[static_cast<size_t>(y)] == x) continue;  // dedupe
        last_seen[static_cast<size_t>(y)] = x;
        if (docs[static_cast<size_t>(y)].size() < min_len_y) continue;
        candidates.push_back(y);
      }
    }
    for (const int32_t y : candidates) {
      const double score = BoundedJaccard(docs[static_cast<size_t>(x)],
                                          docs[static_cast<size_t>(y)],
                                          threshold);
      if (score + 1e-12 >= threshold) {
        out.push_back({std::min(x, y), std::max(x, y), score});
      }
    }
    for (size_t p = 0; p < prefix_x; ++p) {
      index[rarity_x[p]].push_back(x);
    }
  }
  SortByPairOrder(out);
  return out;
}

Result<std::vector<ScoredPair>> PrefixFilterBipartiteJoin(
    const std::vector<std::vector<int32_t>>& left,
    const std::vector<std::vector<int32_t>>& right,
    const TokenDictionary& dictionary, double threshold) {
  CJ_RETURN_IF_ERROR(ValidateJoinThreshold(threshold));

  // Index the left side's prefixes.
  std::unordered_map<int32_t, std::vector<int32_t>> index;
  index.reserve(dictionary.size());
  std::vector<std::vector<int32_t>> left_rarity(left.size());
  for (size_t i = 0; i < left.size(); ++i) {
    left_rarity[i] = left[i];
    dictionary.SortByRarity(left_rarity[i]);
    const size_t prefix = PrefixLength(threshold, left_rarity[i].size());
    for (size_t p = 0; p < prefix; ++p) {
      index[left_rarity[i][p]].push_back(static_cast<int32_t>(i));
    }
  }

  std::vector<int32_t> last_seen(left.size(), -1);
  std::vector<int32_t> candidates;
  std::vector<ScoredPair> out;
  std::vector<int32_t> rarity_s;
  for (size_t j = 0; j < right.size(); ++j) {
    rarity_s = right[j];
    dictionary.SortByRarity(rarity_s);
    const size_t len_s = rarity_s.size();
    if (len_s == 0) continue;
    const size_t prefix_s = PrefixLength(threshold, len_s);
    const size_t min_len = CeilThresholdLength(threshold, len_s);
    const size_t max_len = FloorThresholdLength(threshold, len_s);
    candidates.clear();
    for (size_t p = 0; p < prefix_s; ++p) {
      auto it = index.find(rarity_s[p]);
      if (it == index.end()) continue;
      for (const int32_t r : it->second) {
        if (last_seen[static_cast<size_t>(r)] == static_cast<int32_t>(j)) {
          continue;
        }
        last_seen[static_cast<size_t>(r)] = static_cast<int32_t>(j);
        const size_t len_r = left[static_cast<size_t>(r)].size();
        if (len_r < min_len || len_r > max_len) continue;
        candidates.push_back(r);
      }
    }
    for (const int32_t r : candidates) {
      const double score =
          BoundedJaccard(left[static_cast<size_t>(r)], right[j], threshold);
      if (score + 1e-12 >= threshold) {
        out.push_back({r, static_cast<int32_t>(j), score});
      }
    }
  }
  SortByPairOrder(out);
  return out;
}

std::vector<ScoredPair> BruteForceSelfJoin(
    const std::vector<std::vector<int32_t>>& docs, double threshold) {
  std::vector<ScoredPair> out;
  for (size_t i = 0; i < docs.size(); ++i) {
    for (size_t j = i + 1; j < docs.size(); ++j) {
      const double score = JaccardSimilarity(docs[i], docs[j]);
      if (score + 1e-12 >= threshold) {
        out.push_back(
            {static_cast<int32_t>(i), static_cast<int32_t>(j), score});
      }
    }
  }
  return out;
}

std::vector<ScoredPair> BruteForceBipartiteJoin(
    const std::vector<std::vector<int32_t>>& left,
    const std::vector<std::vector<int32_t>>& right, double threshold) {
  std::vector<ScoredPair> out;
  for (size_t i = 0; i < left.size(); ++i) {
    for (size_t j = 0; j < right.size(); ++j) {
      const double score = JaccardSimilarity(left[i], right[j]);
      if (score + 1e-12 >= threshold) {
        out.push_back(
            {static_cast<int32_t>(i), static_cast<int32_t>(j), score});
      }
    }
  }
  return out;
}

}  // namespace crowdjoin
