#ifndef CROWDJOIN_BENCH_BENCH_UTIL_H_
#define CROWDJOIN_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "common/status.h"

namespace crowdjoin::bench {

/// Minimal --flag=value parser for the figure/table harnesses.
class Args {
 public:
  Args(int argc, char** argv) : argc_(argc), argv_(argv) {}

  uint64_t GetUint64(std::string_view name, uint64_t fallback) const {
    std::string value;
    if (!Find(name, &value)) return fallback;
    return std::strtoull(value.c_str(), nullptr, 10);
  }

  double GetDouble(std::string_view name, double fallback) const {
    std::string value;
    if (!Find(name, &value)) return fallback;
    return std::strtod(value.c_str(), nullptr);
  }

  std::string GetString(std::string_view name, std::string fallback) const {
    std::string value;
    if (!Find(name, &value)) return fallback;
    return value;
  }

 private:
  bool Find(std::string_view name, std::string* value) const {
    const std::string prefix = "--" + std::string(name) + "=";
    for (int i = 1; i < argc_; ++i) {
      const std::string_view arg(argv_[i]);
      if (arg.substr(0, prefix.size()) == prefix) {
        *value = std::string(arg.substr(prefix.size()));
        return true;
      }
    }
    return false;
  }

  int argc_;
  char** argv_;
};

/// Aborts with the status message when `status` is not OK.
inline void CheckOk(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", status.ToString().c_str());
    std::abort();
  }
}

/// Unwraps a Result or aborts with its error.
template <typename R>
auto Unwrap(R result) {
  CheckOk(result.status());
  return std::move(result).value();
}

}  // namespace crowdjoin::bench

#endif  // CROWDJOIN_BENCH_BENCH_UTIL_H_
