#ifndef CROWDJOIN_TEXT_EDIT_DISTANCE_H_
#define CROWDJOIN_TEXT_EDIT_DISTANCE_H_

#include <cstddef>
#include <string_view>

namespace crowdjoin {

/// Levenshtein (unit-cost insert/delete/substitute) distance.
/// O(|a| * |b|) time, O(min(|a|, |b|)) space.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// \brief Banded Levenshtein: the exact distance when it is <= `max_dist`,
/// otherwise some value > `max_dist` (callers must only compare against
/// the bound, not interpret the overshoot).
///
/// Only the diagonal band |i - j| <= max_dist of the DP matrix is
/// evaluated — every cell outside it costs more than `max_dist` by
/// construction — so time is O(max(|a|, |b|) * min(|b|, 2 * max_dist + 1))
/// and the scan exits early once an entire row exceeds the bound. This is
/// the verification kernel of the edit-distance similarity join, where
/// `max_dist` comes from the join threshold and candidate sizes.
size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t max_dist);

/// 1 - distance / max(|a|, |b|); 1.0 for two empty strings.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro–Winkler similarity: Jaro boosted by common prefix (length <= 4)
/// with scale `prefix_scale` (standard 0.1; must be <= 0.25).
double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale = 0.1);

}  // namespace crowdjoin

#endif  // CROWDJOIN_TEXT_EDIT_DISTANCE_H_
