#include "core/expected_cost.h"

#include <gtest/gtest.h>

#include "core/labeling_order.h"
#include "tests/core/test_fixtures.h"

namespace crowdjoin {
namespace {

constexpr Label kM = Label::kMatching;
constexpr Label kN = Label::kNonMatching;

TEST(IsConsistentAssignment, TriangleCases) {
  const CandidateSet triangle = {{0, 1, 0.5}, {1, 2, 0.5}, {0, 2, 0.5}};
  EXPECT_TRUE(IsConsistentAssignment(triangle, {kM, kM, kM}));
  EXPECT_TRUE(IsConsistentAssignment(triangle, {kM, kN, kN}));
  EXPECT_TRUE(IsConsistentAssignment(triangle, {kN, kM, kN}));
  EXPECT_TRUE(IsConsistentAssignment(triangle, {kN, kN, kM}));
  EXPECT_TRUE(IsConsistentAssignment(triangle, {kN, kN, kN}));
  // Exactly one non-matching edge inside a matched triangle is impossible.
  EXPECT_FALSE(IsConsistentAssignment(triangle, {kM, kM, kN}));
  EXPECT_FALSE(IsConsistentAssignment(triangle, {kM, kN, kM}));
  EXPECT_FALSE(IsConsistentAssignment(triangle, {kN, kM, kM}));
}

TEST(IsConsistentAssignment, LongChainViolation) {
  const CandidateSet chain = {{0, 1, 0.5}, {1, 2, 0.5}, {2, 3, 0.5},
                              {0, 3, 0.5}};
  EXPECT_TRUE(IsConsistentAssignment(chain, {kM, kM, kM, kM}));
  EXPECT_FALSE(IsConsistentAssignment(chain, {kM, kM, kM, kN}));
  EXPECT_TRUE(IsConsistentAssignment(chain, {kM, kN, kM, kN}));
}

TEST(CrowdsourcedCountUnderAssignment, IntroExample) {
  // Section 3.1: w needs 2 crowdsourced pairs, w' needs 3.
  const CandidateSet pairs = {{0, 1, 0.0}, {1, 2, 0.0}, {0, 2, 0.0}};
  const std::vector<Label> labels = {kM, kN, kN};
  EXPECT_EQ(CrowdsourcedCountUnderAssignment(pairs, {0, 1, 2}, labels), 2);
  EXPECT_EQ(CrowdsourcedCountUnderAssignment(pairs, {1, 2, 0}, labels), 3);
}

TEST(CrowdsourcedCountUnderAssignment, Section41Example) {
  // Section 4.1: C(w1..w6) = 2,2,3,2,2,3 for p1=M, p2=N, p3=N.
  const CandidateSet pairs = {{0, 1, 0.0}, {1, 2, 0.0}, {0, 2, 0.0}};
  const std::vector<Label> labels = {kM, kN, kN};
  EXPECT_EQ(CrowdsourcedCountUnderAssignment(pairs, {0, 1, 2}, labels), 2);
  EXPECT_EQ(CrowdsourcedCountUnderAssignment(pairs, {0, 2, 1}, labels), 2);
  EXPECT_EQ(CrowdsourcedCountUnderAssignment(pairs, {1, 2, 0}, labels), 3);
  EXPECT_EQ(CrowdsourcedCountUnderAssignment(pairs, {1, 0, 2}, labels), 2);
  EXPECT_EQ(CrowdsourcedCountUnderAssignment(pairs, {2, 0, 1}, labels), 2);
  EXPECT_EQ(CrowdsourcedCountUnderAssignment(pairs, {2, 1, 0}, labels), 3);
}

TEST(ExpectedCrowdsourcedCount, Example4ReproducesPaperNumbers) {
  // Example 4: probabilities 0.9, 0.5, 0.1 on a triangle.
  const CandidateSet pairs = {{0, 1, 0.9}, {1, 2, 0.5}, {0, 2, 0.1}};
  EXPECT_NEAR(ExpectedCrowdsourcedCount(pairs, {0, 1, 2}).value(), 2.09,
              0.005);
  EXPECT_NEAR(ExpectedCrowdsourcedCount(pairs, {0, 2, 1}).value(), 2.17,
              0.005);
  EXPECT_NEAR(ExpectedCrowdsourcedCount(pairs, {1, 2, 0}).value(), 2.83,
              0.005);
  EXPECT_NEAR(ExpectedCrowdsourcedCount(pairs, {1, 0, 2}).value(), 2.09,
              0.005);
  EXPECT_NEAR(ExpectedCrowdsourcedCount(pairs, {2, 0, 1}).value(), 2.17,
              0.005);
  EXPECT_NEAR(ExpectedCrowdsourcedCount(pairs, {2, 1, 0}).value(), 2.83,
              0.005);
}

TEST(ExpectedCrowdsourcedCount, DisconnectedPairsAlwaysCrowdsourced) {
  const CandidateSet pairs = {{0, 1, 0.7}, {2, 3, 0.4}};
  EXPECT_DOUBLE_EQ(ExpectedCrowdsourcedCount(pairs, {0, 1}).value(), 2.0);
  EXPECT_DOUBLE_EQ(ExpectedCrowdsourcedCount(pairs, {1, 0}).value(), 2.0);
}

TEST(ExpectedCrowdsourcedCount, RejectsOversizedInputs) {
  CandidateSet pairs;
  for (int32_t i = 0; i < 21; ++i) pairs.push_back({i, i + 1, 0.5});
  std::vector<int32_t> order(pairs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int32_t>(i);
  EXPECT_EQ(ExpectedCrowdsourcedCount(pairs, order).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FindExpectedOptimalOrder, TriangleOptimalMatchesExample4) {
  const CandidateSet pairs = {{0, 1, 0.9}, {1, 2, 0.5}, {0, 2, 0.1}};
  const ScoredOrder best = FindExpectedOptimalOrder(pairs).value();
  EXPECT_NEAR(best.expected_cost, 2.09, 0.005);
  // w1 = <p1,p2,p3> is lexicographically the first optimal order.
  EXPECT_EQ(best.order, (std::vector<int32_t>{0, 1, 2}));
}

TEST(FindExpectedOptimalOrder, HeuristicNeverBeatsBruteForce) {
  // On random instances the likelihood heuristic can't do better than the
  // exhaustive optimum (sanity direction check).
  for (uint64_t seed = 50; seed < 56; ++seed) {
    Rng rng(seed);
    CandidateSet pairs;
    for (int32_t i = 0; i < 5; ++i) {
      const auto a = static_cast<ObjectId>(rng.Index(4));
      auto b = static_cast<ObjectId>(rng.Index(4));
      if (a == b) b = static_cast<ObjectId>((b + 1) % 4);
      pairs.push_back({std::min(a, b), std::max(a, b),
                       0.05 + 0.9 * rng.UniformDouble()});
    }
    const std::vector<int32_t> heuristic =
        MakeLabelingOrder(pairs, OrderKind::kExpected, nullptr, nullptr)
            .value();
    const double heuristic_cost =
        ExpectedCrowdsourcedCount(pairs, heuristic).value();
    const ScoredOrder best = FindExpectedOptimalOrder(pairs).value();
    EXPECT_GE(heuristic_cost, best.expected_cost - 1e-9) << "seed=" << seed;
  }
}

TEST(FindExpectedOptimalOrder, RejectsOversizedInputs) {
  CandidateSet pairs;
  for (int32_t i = 0; i < 9; ++i) pairs.push_back({i, i + 1, 0.5});
  EXPECT_EQ(FindExpectedOptimalOrder(pairs).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace crowdjoin
