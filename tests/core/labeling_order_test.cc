#include "core/labeling_order.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/core/test_fixtures.h"

namespace crowdjoin {
namespace {

using testing_fixtures::Figure3Pairs;
using testing_fixtures::Figure3Truth;

bool IsPermutation(const std::vector<int32_t>& order, size_t n) {
  if (order.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (int32_t pos : order) {
    if (pos < 0 || static_cast<size_t>(pos) >= n) return false;
    if (seen[static_cast<size_t>(pos)]) return false;
    seen[static_cast<size_t>(pos)] = true;
  }
  return true;
}

TEST(LabelingOrder, ExpectedOrderSortsByLikelihoodDescending) {
  const CandidateSet pairs = {{0, 1, 0.3}, {1, 2, 0.9}, {2, 3, 0.6}};
  const std::vector<int32_t> order =
      MakeLabelingOrder(pairs, OrderKind::kExpected, nullptr, nullptr)
          .value();
  EXPECT_EQ(order, (std::vector<int32_t>{1, 2, 0}));
}

TEST(LabelingOrder, ExpectedOrderTieBreaksByPosition) {
  const CandidateSet pairs = {{0, 1, 0.5}, {1, 2, 0.5}, {2, 3, 0.5}};
  const std::vector<int32_t> order =
      MakeLabelingOrder(pairs, OrderKind::kExpected, nullptr, nullptr)
          .value();
  EXPECT_EQ(order, (std::vector<int32_t>{0, 1, 2}));
}

TEST(LabelingOrder, OptimalPutsMatchingFirst) {
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle truth = Figure3Truth();
  const std::vector<int32_t> order =
      MakeLabelingOrder(pairs, OrderKind::kOptimal, &truth, nullptr).value();
  ASSERT_TRUE(IsPermutation(order, pairs.size()));
  bool seen_non_matching = false;
  for (int32_t pos : order) {
    const auto& pair = pairs[static_cast<size_t>(pos)];
    const bool matching = truth.Truth(pair.a, pair.b) == Label::kMatching;
    if (!matching) seen_non_matching = true;
    EXPECT_FALSE(matching && seen_non_matching)
        << "matching pair after a non-matching pair at position " << pos;
  }
}

TEST(LabelingOrder, WorstPutsNonMatchingFirst) {
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle truth = Figure3Truth();
  const std::vector<int32_t> order =
      MakeLabelingOrder(pairs, OrderKind::kWorst, &truth, nullptr).value();
  ASSERT_TRUE(IsPermutation(order, pairs.size()));
  bool seen_matching = false;
  for (int32_t pos : order) {
    const auto& pair = pairs[static_cast<size_t>(pos)];
    const bool matching = truth.Truth(pair.a, pair.b) == Label::kMatching;
    if (matching) seen_matching = true;
    EXPECT_FALSE(!matching && seen_matching);
  }
}

TEST(LabelingOrder, RandomOrderIsDeterministicPerSeed) {
  const CandidateSet pairs = Figure3Pairs();
  Rng rng1(99);
  Rng rng2(99);
  Rng rng3(100);
  const auto order1 =
      MakeLabelingOrder(pairs, OrderKind::kRandom, nullptr, &rng1).value();
  const auto order2 =
      MakeLabelingOrder(pairs, OrderKind::kRandom, nullptr, &rng2).value();
  const auto order3 =
      MakeLabelingOrder(pairs, OrderKind::kRandom, nullptr, &rng3).value();
  EXPECT_EQ(order1, order2);
  EXPECT_TRUE(IsPermutation(order1, pairs.size()));
  EXPECT_TRUE(IsPermutation(order3, pairs.size()));
  EXPECT_NE(order1, order3);  // overwhelmingly likely for 8! permutations
}

TEST(LabelingOrder, MissingInputsAreErrors) {
  const CandidateSet pairs = Figure3Pairs();
  EXPECT_EQ(MakeLabelingOrder(pairs, OrderKind::kOptimal, nullptr, nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeLabelingOrder(pairs, OrderKind::kWorst, nullptr, nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeLabelingOrder(pairs, OrderKind::kRandom, nullptr, nullptr)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(LabelingOrder, EmptyCandidateSet) {
  const auto order =
      MakeLabelingOrder({}, OrderKind::kExpected, nullptr, nullptr).value();
  EXPECT_TRUE(order.empty());
}

TEST(LabelingOrder, NamesAreStable) {
  EXPECT_EQ(OrderKindToString(OrderKind::kOptimal), "Optimal Order");
  EXPECT_EQ(OrderKindToString(OrderKind::kExpected), "Expected Order");
  EXPECT_EQ(OrderKindToString(OrderKind::kRandom), "Random Order");
  EXPECT_EQ(OrderKindToString(OrderKind::kWorst), "Worst Order");
}

}  // namespace
}  // namespace crowdjoin
