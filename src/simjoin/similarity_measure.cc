#include "simjoin/similarity_measure.h"

#include <cmath>

#include "text/normalize.h"
#include "text/tokenize.h"

namespace crowdjoin {

namespace {
constexpr int kEditQGram = 2;
}  // namespace

const SimilarityMeasure& SimilarityMeasure::Jaccard() {
  static const SimilarityMeasure measure(MeasureKind::kJaccard, 0);
  return measure;
}

const SimilarityMeasure& SimilarityMeasure::EditDistance() {
  static const SimilarityMeasure measure(MeasureKind::kEditDistance,
                                         kEditQGram);
  return measure;
}

const SimilarityMeasure& SimilarityMeasure::CosineTfIdf() {
  static const SimilarityMeasure measure(MeasureKind::kCosineTfIdf, 0);
  return measure;
}

const SimilarityMeasure& SimilarityMeasure::Get(MeasureKind kind) {
  switch (kind) {
    case MeasureKind::kJaccard:
      return Jaccard();
    case MeasureKind::kEditDistance:
      return EditDistance();
    case MeasureKind::kCosineTfIdf:
      return CosineTfIdf();
  }
  return Jaccard();  // unreachable for valid enum values
}

Result<MeasureKind> SimilarityMeasure::ParseKind(std::string_view name) {
  if (name == "jaccard") return MeasureKind::kJaccard;
  if (name == "edit") return MeasureKind::kEditDistance;
  if (name == "cosine") return MeasureKind::kCosineTfIdf;
  return Status::InvalidArgument(
      "unknown similarity measure (expected jaccard, edit, or cosine)");
}

const char* SimilarityMeasure::name() const {
  switch (kind_) {
    case MeasureKind::kJaccard:
      return "jaccard";
    case MeasureKind::kEditDistance:
      return "edit";
    case MeasureKind::kCosineTfIdf:
      return "cosine";
  }
  return "unknown";
}

MeasureDoc SimilarityMeasure::MakeDoc(std::string_view text,
                                      TokenDictionary& dictionary) const {
  MeasureDoc doc;
  if (kind_ == MeasureKind::kEditDistance) {
    // Signature: deduplicated character q-grams of the normalized string;
    // size and payload are the normalized string itself, which is what the
    // banded-DP verifier compares. Empty/whitespace-only text normalizes
    // to "" and yields no grams — the shared empty-doc contract.
    doc.payload = NormalizeText(text);
    doc.tokens = dictionary.AddDocument(QGrams(doc.payload, qgram_));
    doc.size = static_cast<int32_t>(doc.payload.size());
    return doc;
  }
  // Set measures: word-token signature, size = distinct token count.
  doc.tokens = dictionary.AddDocument(WordTokens(text));
  doc.size = static_cast<int32_t>(doc.tokens.size());
  return doc;
}

std::vector<double> CosineRankWeights(const TokenDictionary& dictionary,
                                      const std::vector<int32_t>& ranks) {
  std::vector<double> weights(ranks.size(), 0.0);
  const double n = static_cast<double>(dictionary.num_documents());
  for (size_t token = 0; token < ranks.size(); ++token) {
    const double df =
        static_cast<double>(dictionary.Frequency(static_cast<int32_t>(token)));
    weights[static_cast<size_t>(ranks[token])] = std::log(1.0 + n / (1.0 + df));
  }
  return weights;
}

}  // namespace crowdjoin
