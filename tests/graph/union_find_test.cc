#include "graph/union_find.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace crowdjoin {
namespace {

TEST(UnionFind, SingletonsInitially) {
  UnionFind uf(4);
  EXPECT_EQ(uf.num_sets(), 4);
  for (int32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SetSize(i), 1);
  }
  EXPECT_FALSE(uf.Same(0, 1));
}

TEST(UnionFind, UnionMergesAndCounts) {
  UnionFind uf(5);
  uf.Union(0, 1);
  EXPECT_TRUE(uf.Same(0, 1));
  EXPECT_EQ(uf.num_sets(), 4);
  EXPECT_EQ(uf.SetSize(0), 2);
  uf.Union(2, 3);
  uf.Union(0, 3);
  EXPECT_TRUE(uf.Same(1, 2));
  EXPECT_EQ(uf.num_sets(), 2);
  EXPECT_EQ(uf.SetSize(3), 4);
  EXPECT_FALSE(uf.Same(0, 4));
}

TEST(UnionFind, UnionIsIdempotent) {
  UnionFind uf(3);
  const int32_t root1 = uf.Union(0, 1);
  const int32_t root2 = uf.Union(0, 1);
  EXPECT_EQ(root1, root2);
  EXPECT_EQ(uf.num_sets(), 2);
  EXPECT_EQ(uf.SetSize(0), 2);
}

TEST(UnionFind, UnionIntoKeepsChosenRoot) {
  UnionFind uf(4);
  uf.UnionInto(2, 3);
  EXPECT_EQ(uf.Find(3), 2);
  EXPECT_EQ(uf.Find(2), 2);
  // Winner may be the smaller set.
  uf.UnionInto(1, 2);
  EXPECT_EQ(uf.Find(3), 1);
  EXPECT_EQ(uf.SetSize(1), 3);
}

TEST(UnionFind, ResetRestoresSingletons) {
  UnionFind uf(3);
  uf.Union(0, 1);
  uf.Reset(6);
  EXPECT_EQ(uf.size(), 6);
  EXPECT_EQ(uf.num_sets(), 6);
  EXPECT_FALSE(uf.Same(0, 1));
}

TEST(UnionFind, ChainCompressionFlattens) {
  constexpr int32_t kN = 1000;
  UnionFind uf(kN);
  for (int32_t i = 0; i + 1 < kN; ++i) uf.Union(i, i + 1);
  EXPECT_EQ(uf.num_sets(), 1);
  const int32_t root = uf.Find(0);
  for (int32_t i = 0; i < kN; ++i) EXPECT_EQ(uf.Find(i), root);
  EXPECT_EQ(uf.SetSize(kN - 1), kN);
}

TEST(UnionFind, ConstReadsAgreeWithMutatingReadsWithoutCompressing) {
  // Build a deliberately deep chain, then read it through the const
  // overloads: answers match the mutating overloads', and — because const
  // reads never compress — the structure is untouched (a second const
  // pass over an aliasing const ref still agrees).
  UnionFind uf(64);
  for (int32_t i = 0; i + 1 < 64; ++i) uf.UnionInto(uf.Find(i + 1), uf.Find(i));
  const UnionFind& frozen = uf;
  const int32_t root = frozen.Find(0);
  for (int32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(frozen.Find(i), root);
    EXPECT_EQ(frozen.SetSize(i), 64);
    EXPECT_TRUE(frozen.Same(0, i));
  }
  EXPECT_EQ(uf.Find(0), root);  // mutating overload agrees
}

TEST(UnionFind, MinMemberIsSmallestInSet) {
  UnionFind uf(8);
  uf.Union(5, 7);
  EXPECT_EQ(uf.MinMember(7), 5);
  EXPECT_EQ(uf.MinMember(5), 5);
  uf.Union(2, 5);
  EXPECT_EQ(uf.MinMember(7), 2);
  uf.UnionInto(uf.Find(7), uf.Find(0));  // winner root has larger min
  EXPECT_EQ(uf.MinMember(7), 0);
  EXPECT_EQ(uf.MinMember(0), 0);
  EXPECT_EQ(uf.MinMember(1), 1);  // untouched singleton
}

TEST(UnionFind, MinMemberSurvivesResetAndGrow) {
  UnionFind uf(4);
  uf.Union(0, 3);
  uf.Reset(6);
  for (int32_t i = 0; i < 6; ++i) EXPECT_EQ(uf.MinMember(i), i);
  uf.Union(4, 5);
  uf.Grow(8);
  EXPECT_EQ(uf.MinMember(5), 4);
  EXPECT_EQ(uf.MinMember(7), 7);
}

// Property: UnionFind agrees with a naive label-array implementation under
// random operation sequences.
class UnionFindPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnionFindPropertyTest, MatchesNaiveImplementation) {
  constexpr int32_t kN = 64;
  Rng rng(GetParam());
  UnionFind uf(kN);
  std::vector<int32_t> naive(kN);
  for (int32_t i = 0; i < kN; ++i) naive[static_cast<size_t>(i)] = i;

  for (int step = 0; step < 500; ++step) {
    const auto a = static_cast<int32_t>(rng.Index(kN));
    const auto b = static_cast<int32_t>(rng.Index(kN));
    if (rng.Bernoulli(0.4)) {
      uf.Union(a, b);
      const int32_t from = naive[static_cast<size_t>(a)];
      const int32_t to = naive[static_cast<size_t>(b)];
      if (from != to) {
        for (auto& label : naive) {
          if (label == from) label = to;
        }
      }
    } else {
      EXPECT_EQ(uf.Same(a, b), naive[static_cast<size_t>(a)] ==
                                   naive[static_cast<size_t>(b)])
          << "seed=" << GetParam() << " step=" << step;
    }
  }
  // Final set sizes agree.
  for (int32_t i = 0; i < kN; ++i) {
    int32_t expected_size = 0;
    for (int32_t j = 0; j < kN; ++j) {
      if (naive[static_cast<size_t>(j)] == naive[static_cast<size_t>(i)]) {
        ++expected_size;
      }
    }
    EXPECT_EQ(uf.SetSize(i), expected_size);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, UnionFindPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace crowdjoin
