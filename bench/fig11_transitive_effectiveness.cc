// Reproduces Figure 11: number of crowdsourced pairs required with
// (Transitive) and without (Non-Transitive) transitive relations, sweeping
// the likelihood threshold from 0.5 down to 0.1 on both datasets.
// Transitive uses the optimal labeling order, as in the paper.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/labeling_order.h"
#include "core/labeling_session.h"
#include "eval/workbench.h"

namespace {

using namespace crowdjoin;  // NOLINT(build/namespaces)
using crowdjoin::bench::Unwrap;

void RunSweep(const ExperimentInput& input) {
  GroundTruthOracle truth = MakeGroundTruthOracle(input.dataset);
  TablePrinter table({"likelihood threshold", "Non-Transitive (pairs)",
                      "Transitive (pairs)", "saved"});
  for (double threshold : {0.5, 0.4, 0.3, 0.2, 0.1}) {
    const CandidateSet pairs =
        FilterByThreshold(input.candidates, threshold);
    const std::vector<int32_t> order = Unwrap(MakeLabelingOrder(
        pairs, OrderKind::kOptimal, &truth, /*rng=*/nullptr));
    GroundTruthOracle oracle = truth;  // fresh query counter
    LabelingSession session;  // sequential schedule, transitive rule
    const LabelingReport result = Unwrap(session.Run(pairs, order, oracle));
    const double saved =
        pairs.empty() ? 0.0
                      : 100.0 * static_cast<double>(result.num_deduced) /
                            static_cast<double>(pairs.size());
    table.AddRow({StrFormat("%.1f", threshold),
                  std::to_string(pairs.size()),
                  std::to_string(result.num_crowdsourced),
                  StrFormat("%.1f%%", saved)});
  }
  std::printf("\n-- %s --\n", input.dataset.name.c_str());
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const crowdjoin::bench::Args args(argc, argv);
  const uint64_t seed = args.GetUint64("seed", 42);

  std::printf("=== Figure 11: effectiveness of transitive relations ===\n");
  RunSweep(Unwrap(MakePaperExperimentInput(seed)));
  RunSweep(Unwrap(MakeProductExperimentInput(seed)));
  return 0;
}
