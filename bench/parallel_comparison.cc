#include "bench/parallel_comparison.h"

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/macros.h"
#include "common/timer.h"
#include "core/labeling_order.h"
#include "core/labeling_session.h"

namespace crowdjoin::bench {

namespace {

LabelingSession MakeRoundSession(int num_threads) {
  LabelingSessionOptions options;
  options.schedule = SchedulePolicy::kRoundParallel;
  options.num_threads = num_threads;
  return LabelingSession(options);
}

}  // namespace

void RunParallelComparison(const ExperimentInput& input, double threshold,
                           int num_threads) {
  GroundTruthOracle truth = MakeGroundTruthOracle(input.dataset);
  const CandidateSet pairs = FilterByThreshold(input.candidates, threshold);
  const std::vector<int32_t> order = Unwrap(MakeLabelingOrder(
      pairs, OrderKind::kExpected, &truth, /*rng=*/nullptr));

  GroundTruthOracle oracle_seq = truth;
  LabelingSession sequential_session;  // sequential schedule
  const LabelingReport sequential =
      Unwrap(sequential_session.Run(pairs, order, oracle_seq));

  GroundTruthOracle oracle_par = truth;
  LabelingSession parallel_session = MakeRoundSession(num_threads);
  WallTimer timer;
  const LabelingReport parallel =
      Unwrap(parallel_session.Run(pairs, order, oracle_par));
  const double parallel_ms = timer.ElapsedMillis();

  // The determinism contract, re-checked on paper-scale data every
  // multi-threaded run (at 1 thread the comparison would be vacuous).
  if (num_threads > 1) {
    GroundTruthOracle oracle_base = truth;
    LabelingSession baseline_session = MakeRoundSession(1);
    const LabelingReport baseline =
        Unwrap(baseline_session.Run(pairs, order, oracle_base));
    CJ_CHECK(parallel == baseline);
  }

  std::printf("\n-- %s (threshold=%.1f, %zu candidate pairs) --\n",
              input.dataset.name.c_str(), threshold, pairs.size());
  std::printf("Non-Parallel: %lld crowdsourced pairs in %zu iterations "
              "(one pair per iteration)\n",
              static_cast<long long>(sequential.num_crowdsourced),
              sequential.crowdsourced_per_iteration.size());
  std::printf("Parallel:     %lld crowdsourced pairs in %zu iterations "
              "(%d thread%s, %.1f ms%s)\n",
              static_cast<long long>(parallel.num_crowdsourced),
              parallel.crowdsourced_per_iteration.size(), num_threads,
              num_threads == 1 ? "" : "s", parallel_ms,
              num_threads == 1 ? ""
                               : ", result identical to 1 thread");
  std::string series;
  for (size_t i = 0; i < parallel.crowdsourced_per_iteration.size(); ++i) {
    if (i > 0) series += ", ";
    series += std::to_string(parallel.crowdsourced_per_iteration[i]);
  }
  std::printf("Parallel per-iteration batch sizes: [%s]\n", series.c_str());
}

}  // namespace crowdjoin::bench
