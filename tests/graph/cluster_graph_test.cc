#include "graph/cluster_graph.h"

#include <gtest/gtest.h>

namespace crowdjoin {
namespace {

constexpr Label kM = Label::kMatching;
constexpr Label kN = Label::kNonMatching;

// Example 1 / Figure 2: seven labeled pairs over o1..o7 (0-indexed here).
// Matching: (o1,o2) (o3,o4) (o4,o5); non-matching: (o1,o6) (o2,o3) (o3,o7)
// (o5,o6).
class Example1Graph : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_.Reset(7);
    ASSERT_EQ(graph_.Add(0, 1, kM), AddOutcome::kApplied);
    ASSERT_EQ(graph_.Add(2, 3, kM), AddOutcome::kApplied);
    ASSERT_EQ(graph_.Add(3, 4, kM), AddOutcome::kApplied);
    ASSERT_EQ(graph_.Add(0, 5, kN), AddOutcome::kApplied);
    ASSERT_EQ(graph_.Add(1, 2, kN), AddOutcome::kApplied);
    ASSERT_EQ(graph_.Add(2, 6, kN), AddOutcome::kApplied);
    ASSERT_EQ(graph_.Add(4, 5, kN), AddOutcome::kApplied);
  }
  ClusterGraph graph_{7};
};

TEST_F(Example1Graph, PositiveTransitivity) {
  // (o3,o5): all-matching path o3->o4->o5.
  EXPECT_EQ(graph_.Deduce(2, 4), Deduction::kMatching);
}

TEST_F(Example1Graph, NegativeTransitivity) {
  // (o5,o7): path o5->o4->o3->o7 with a single non-matching pair.
  EXPECT_EQ(graph_.Deduce(4, 6), Deduction::kNonMatching);
}

TEST_F(Example1Graph, UndeducedWhenEveryPathHasTwoNonMatchingPairs) {
  // (o1,o7): both paths carry more than one non-matching pair.
  EXPECT_EQ(graph_.Deduce(0, 6), Deduction::kUndeduced);
}

TEST_F(Example1Graph, DeduceIsSymmetric) {
  EXPECT_EQ(graph_.Deduce(4, 2), Deduction::kMatching);
  EXPECT_EQ(graph_.Deduce(6, 4), Deduction::kNonMatching);
  EXPECT_EQ(graph_.Deduce(6, 0), Deduction::kUndeduced);
}

// Example 3 / Figure 6: first seven labeled pairs of the running example.
TEST(ClusterGraphExample3, DeducesP8AsNonMatching) {
  // o1,o2,o3 matching cluster; o4,o5 matching cluster; o6 singleton.
  // Non-matching: (o1,o6), (o4,o6), (o2,o4).  Check p8 = (o5,o6).
  ClusterGraph graph(6);
  EXPECT_EQ(graph.Add(0, 1, kM), AddOutcome::kApplied);  // p1
  EXPECT_EQ(graph.Add(1, 2, kM), AddOutcome::kApplied);  // p2
  EXPECT_EQ(graph.Add(0, 5, kN), AddOutcome::kApplied);  // p3
  EXPECT_EQ(graph.Add(0, 2, kM), AddOutcome::kRedundant);  // p4 (deduced)
  EXPECT_EQ(graph.Add(3, 4, kM), AddOutcome::kApplied);  // p5
  EXPECT_EQ(graph.Add(3, 5, kN), AddOutcome::kApplied);  // p6
  EXPECT_EQ(graph.Add(1, 3, kN), AddOutcome::kApplied);  // p7
  EXPECT_EQ(graph.Deduce(4, 5), Deduction::kNonMatching);  // p8
  EXPECT_EQ(graph.num_clusters(), 3);
  EXPECT_EQ(graph.num_edges(), 3);
}

TEST(ClusterGraph, EmptyGraphDeducesNothing) {
  ClusterGraph graph(4);
  EXPECT_EQ(graph.Deduce(0, 1), Deduction::kUndeduced);
  EXPECT_EQ(graph.num_clusters(), 4);
  EXPECT_EQ(graph.num_edges(), 0);
}

TEST(ClusterGraph, SingleMatchingPair) {
  ClusterGraph graph(3);
  EXPECT_EQ(graph.Add(0, 1, kM), AddOutcome::kApplied);
  EXPECT_EQ(graph.Deduce(0, 1), Deduction::kMatching);
  EXPECT_EQ(graph.Deduce(0, 2), Deduction::kUndeduced);
  EXPECT_EQ(graph.num_clusters(), 2);
  EXPECT_EQ(graph.num_merges(), 1);
}

TEST(ClusterGraph, SingleNonMatchingPair) {
  ClusterGraph graph(3);
  EXPECT_EQ(graph.Add(0, 1, kN), AddOutcome::kApplied);
  EXPECT_EQ(graph.Deduce(0, 1), Deduction::kNonMatching);
  EXPECT_EQ(graph.Deduce(1, 2), Deduction::kUndeduced);
  EXPECT_EQ(graph.num_edges(), 1);
}

TEST(ClusterGraph, RedundantLabelsAreReported) {
  ClusterGraph graph(4);
  EXPECT_EQ(graph.Add(0, 1, kM), AddOutcome::kApplied);
  EXPECT_EQ(graph.Add(1, 2, kM), AddOutcome::kApplied);
  EXPECT_EQ(graph.Add(0, 2, kM), AddOutcome::kRedundant);
  EXPECT_EQ(graph.Add(0, 3, kN), AddOutcome::kApplied);
  EXPECT_EQ(graph.Add(2, 3, kN), AddOutcome::kRedundant);
  EXPECT_EQ(graph.num_edges(), 1);
  EXPECT_EQ(graph.num_conflicts(), 0);
}

TEST(ClusterGraph, ParallelEdgesCollapseOnMerge) {
  // x is non-matching with both a and b; merging a,b must collapse the two
  // cluster edges into one.
  ClusterGraph graph(3);
  EXPECT_EQ(graph.Add(0, 2, kN), AddOutcome::kApplied);
  EXPECT_EQ(graph.Add(1, 2, kN), AddOutcome::kApplied);
  EXPECT_EQ(graph.num_edges(), 2);
  EXPECT_EQ(graph.Add(0, 1, kM), AddOutcome::kApplied);
  EXPECT_EQ(graph.num_edges(), 1);
  EXPECT_EQ(graph.Deduce(1, 2), Deduction::kNonMatching);
}

TEST(ClusterGraph, ConflictMatchingOverEdgeKeepFirst) {
  ClusterGraph graph(2, ConflictPolicy::kKeepFirst);
  EXPECT_EQ(graph.Add(0, 1, kN), AddOutcome::kApplied);
  EXPECT_EQ(graph.Add(0, 1, kM), AddOutcome::kConflict);
  // The first (non-matching) label wins.
  EXPECT_EQ(graph.Deduce(0, 1), Deduction::kNonMatching);
  EXPECT_EQ(graph.conflicts_matching(), 1);
  EXPECT_EQ(graph.conflicts_non_matching(), 0);
}

TEST(ClusterGraph, ConflictMatchingOverEdgeTrustNew) {
  ClusterGraph graph(2, ConflictPolicy::kTrustNew);
  EXPECT_EQ(graph.Add(0, 1, kN), AddOutcome::kApplied);
  EXPECT_EQ(graph.Add(0, 1, kM), AddOutcome::kConflict);
  // The new (matching) label wins: the edge is dropped and clusters merge.
  EXPECT_EQ(graph.Deduce(0, 1), Deduction::kMatching);
  EXPECT_EQ(graph.num_edges(), 0);
  EXPECT_EQ(graph.num_conflicts(), 1);
}

TEST(ClusterGraph, ConflictNonMatchingInsideClusterAlwaysRejected) {
  for (ConflictPolicy policy :
       {ConflictPolicy::kKeepFirst, ConflictPolicy::kTrustNew}) {
    ClusterGraph graph(3, policy);
    EXPECT_EQ(graph.Add(0, 1, kM), AddOutcome::kApplied);
    EXPECT_EQ(graph.Add(1, 2, kM), AddOutcome::kApplied);
    EXPECT_EQ(graph.Add(0, 2, kN), AddOutcome::kConflict);
    EXPECT_EQ(graph.Deduce(0, 2), Deduction::kMatching);
    EXPECT_EQ(graph.conflicts_non_matching(), 1);
  }
}

TEST(ClusterGraph, ResetClearsEverything) {
  ClusterGraph graph(3);
  graph.Add(0, 1, kM);
  graph.Add(1, 2, kN);
  graph.Reset(5);
  EXPECT_EQ(graph.num_objects(), 5);
  EXPECT_EQ(graph.num_clusters(), 5);
  EXPECT_EQ(graph.num_edges(), 0);
  EXPECT_EQ(graph.num_merges(), 0);
  EXPECT_EQ(graph.Deduce(0, 1), Deduction::kUndeduced);
}

TEST(ClusterGraph, ClusterSizeTracksMerges) {
  ClusterGraph graph(5);
  graph.Add(0, 1, kM);
  graph.Add(1, 2, kM);
  EXPECT_EQ(graph.ClusterSize(0), 3);
  EXPECT_EQ(graph.ClusterSize(2), 3);
  EXPECT_EQ(graph.ClusterSize(3), 1);
  EXPECT_EQ(graph.ClusterOf(0), graph.ClusterOf(2));
  EXPECT_NE(graph.ClusterOf(0), graph.ClusterOf(4));
}

TEST(ClusterGraph, LongMatchingChainDeducesEndpoints) {
  constexpr int32_t kChain = 500;
  ClusterGraph graph(kChain);
  for (int32_t i = 0; i + 1 < kChain; ++i) {
    ASSERT_EQ(graph.Add(i, i + 1, kM), AddOutcome::kApplied);
  }
  EXPECT_EQ(graph.Deduce(0, kChain - 1), Deduction::kMatching);
  EXPECT_EQ(graph.num_clusters(), 1);
}

TEST(ClusterGraph, NegativeChainDoesNotPropagate) {
  // Lemma 1: two non-matching pairs in a row deduce nothing.
  ClusterGraph graph(3);
  graph.Add(0, 1, kN);
  graph.Add(1, 2, kN);
  EXPECT_EQ(graph.Deduce(0, 2), Deduction::kUndeduced);
}

TEST(ClusterGraph, EdgesSurviveMergesOnBothSides) {
  // Clusters {0,1} and {2,3} with an edge; merge 4 into each side and the
  // edge must keep connecting the grown clusters.
  ClusterGraph graph(6);
  graph.Add(0, 1, kM);
  graph.Add(2, 3, kM);
  graph.Add(1, 2, kN);
  graph.Add(0, 4, kM);
  graph.Add(3, 5, kM);
  EXPECT_EQ(graph.Deduce(4, 5), Deduction::kNonMatching);
  EXPECT_EQ(graph.num_edges(), 1);
}

}  // namespace
}  // namespace crowdjoin
