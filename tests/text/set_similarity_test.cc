#include "text/set_similarity.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace crowdjoin {
namespace {

using Ids = std::vector<int32_t>;

Ids RandomSortedSet(Rng& rng, size_t len, size_t universe) {
  Ids out;
  for (size_t t = 0; t < len * 2 && out.size() < len; ++t) {
    out.push_back(static_cast<int32_t>(rng.Index(universe)));
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

TEST(OverlapSize, SortedIntersection) {
  EXPECT_EQ(OverlapSize({1, 3, 5}, {2, 3, 5, 7}), 2u);
  EXPECT_EQ(OverlapSize({}, {1}), 0u);
  EXPECT_EQ(OverlapSize({1, 2}, {3, 4}), 0u);
  EXPECT_EQ(OverlapSize({1, 2, 3}, {1, 2, 3}), 3u);
}

TEST(JaccardSimilarity, KnownValues) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1}, {1}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {1}), 0.0);
}

TEST(DiceSimilarity, KnownValues) {
  EXPECT_DOUBLE_EQ(DiceSimilarity({1, 2, 3}, {2, 3, 4}), 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity({1}, {2}), 0.0);
}

TEST(CosineSimilarity, KnownValues) {
  EXPECT_NEAR(CosineSimilarity({1, 2, 3}, {2, 3, 4}), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(CosineSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({}, {1}), 0.0);
}

TEST(OverlapCoefficient, KnownValues) {
  EXPECT_DOUBLE_EQ(OverlapCoefficient({1, 2}, {1, 2, 3, 4}), 1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({1, 5}, {1, 2, 3}), 0.5);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({}, {}), 1.0);
}

TEST(SimilarityOrderingsAgree, MoreOverlapNeverLowersScores) {
  const Ids base = {1, 2, 3, 4};
  const Ids close = {1, 2, 3, 9};
  const Ids far = {1, 8, 9, 10};
  EXPECT_GT(JaccardSimilarity(base, close), JaccardSimilarity(base, far));
  EXPECT_GT(DiceSimilarity(base, close), DiceSimilarity(base, far));
  EXPECT_GT(CosineSimilarity(base, close), CosineSimilarity(base, far));
}

TEST(JaccardOfTokenSets, DedupsBeforeScoring) {
  EXPECT_DOUBLE_EQ(
      JaccardOfTokenSets({"a", "a", "b"}, {"b", "b", "c"}),
      1.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardOfTokenSets({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardOfTokenSets({"x"}, {}), 0.0);
}

TEST(JaccardOfTokenSets, EmptyUnionIsGuardedAtTheDivision) {
  // Regression: the 1.0-for-two-empty-sets result must come from the
  // division guard itself, including when the inputs only *become* empty
  // after dedup... of nothing. Also pin the plain paths around it.
  EXPECT_DOUBLE_EQ(JaccardOfTokenSets({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardOfTokenSets({"a", "b"}, {"a", "b"}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardOfTokenSets({"a"}, {"b"}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardOfTokenSets({}, {"only", "right"}), 0.0);
}

// --- BoundedJaccard / BoundedJaccardSeeded -------------------------------

TEST(RequiredOverlap, MatchesClosedForm) {
  // o / (na + nb - o) >= t at o = RequiredOverlap, not at o - 1.
  for (const double t : {0.3, 0.5, 0.7, 0.9, 1.0}) {
    for (const size_t na : {1u, 4u, 9u, 40u}) {
      for (const size_t nb : {1u, 5u, 12u, 33u}) {
        const size_t required = RequiredOverlap(t, na, nb);
        if (required > 0) {
          const auto o = static_cast<double>(required - 1);
          EXPECT_LT(o / (static_cast<double>(na + nb) - o) + 1e-12, t)
              << "t=" << t << " na=" << na << " nb=" << nb;
        }
      }
    }
  }
  EXPECT_EQ(RequiredOverlap(1e-9, 10, 10), 0u);  // vanishing threshold
}

TEST(BoundedJaccard, EqualDisjointAndEmptySets) {
  const Ids set = {1, 5, 9, 12};
  EXPECT_DOUBLE_EQ(BoundedJaccard(set, set, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(BoundedJaccard(set, set, 0.3), 1.0);
  // Disjoint sets can never reach a positive threshold: early exit.
  EXPECT_DOUBLE_EQ(BoundedJaccard({1, 2, 3}, {7, 8, 9}, 0.3), -1.0);
  EXPECT_DOUBLE_EQ(BoundedJaccard({}, {}, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(BoundedJaccard({}, {1, 2}, 0.5), -1.0);
}

TEST(BoundedJaccard, RequiredOverlapZeroRunsTheFullMerge) {
  // A vanishing threshold makes the required overlap 0: nothing may be
  // abandoned, every score must come back exact.
  EXPECT_DOUBLE_EQ(BoundedJaccard({1, 2, 3}, {7, 8, 9}, 1e-9), 0.0);
  EXPECT_DOUBLE_EQ(BoundedJaccard({1, 2}, {2, 3}, 1e-9), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(BoundedJaccard({}, {1, 2}, 1e-9), 0.0);
}

TEST(BoundedJaccardSeeded, ResumesPastTheMatchedPrefix) {
  // a and b share token 4 at positions 2 and 1; seeding just past it with
  // one overlap banked must reproduce the full-merge score exactly.
  const Ids a = {1, 2, 4, 6, 8};
  const Ids b = {3, 4, 6, 9};
  const double full = JaccardSimilarity(a, b);
  EXPECT_DOUBLE_EQ(BoundedJaccardSeeded(a.data(), a.size(), b.data(),
                                        b.size(), 3, 2, 1, 0.2),
                   full);
  // Seed consuming everything: degenerate resume at the very end.
  EXPECT_DOUBLE_EQ(BoundedJaccardSeeded(a.data(), a.size(), a.data(),
                                        a.size(), a.size(), a.size(),
                                        a.size(), 1.0),
                   1.0);
}

TEST(BoundedJaccardSeeded, AgreesWithExactJaccardOnRandomPairs) {
  // Unseeded and first-match-seeded calls across skews and thresholds:
  // exact when the pair could pass, -1 only when it provably cannot.
  Rng rng(515);
  for (int trial = 0; trial < 400; ++trial) {
    const size_t la = 1 + rng.Index(40);
    // Mix equal-ish and heavily skewed sizes so the galloping path runs.
    const size_t lb = (trial % 3 == 0) ? la + 200 + rng.Index(300)
                                       : 1 + rng.Index(40);
    const Ids a = RandomSortedSet(rng, la, 80);
    const Ids b = RandomSortedSet(rng, lb, 600);
    const double threshold = 0.1 + 0.2 * static_cast<double>(trial % 5);
    const double exact = JaccardSimilarity(a, b);
    const double bounded = BoundedJaccard(a, b, threshold);
    if (bounded != -1.0) {
      EXPECT_DOUBLE_EQ(bounded, exact) << "trial=" << trial;
    } else {
      EXPECT_LT(exact + 1e-12, threshold) << "trial=" << trial;
    }
    // Seed at the first common element, as the joins do.
    size_t i = 0;
    size_t j = 0;
    while (i < a.size() && j < b.size() && a[i] != b[j]) {
      (a[i] < b[j]) ? ++i : ++j;
    }
    if (i < a.size() && j < b.size()) {
      const double seeded = BoundedJaccardSeeded(
          a.data(), a.size(), b.data(), b.size(), i + 1, j + 1, 1,
          threshold);
      if (seeded != -1.0) {
        EXPECT_DOUBLE_EQ(seeded, exact) << "trial=" << trial;
      } else {
        EXPECT_LT(exact + 1e-12, threshold) << "trial=" << trial;
      }
    }
  }
}

TEST(MergeVerifyKernels, AllVariantsAgree) {
  // The dispatcher picks between these by shape; they must be
  // interchangeable wherever the entry guard admits them.
  Rng rng(717);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t la = 1 + rng.Index(30);
    const size_t lb = la + rng.Index(200);
    const Ids a = RandomSortedSet(rng, la, 60);
    const Ids b = RandomSortedSet(rng, lb, 400);
    const double threshold = 0.05 + 0.1 * static_cast<double>(trial % 4);
    const size_t required = RequiredOverlap(threshold, a.size(), b.size());
    if (required > std::min(a.size(), b.size())) continue;  // entry guard
    const double branchy = internal::MergeVerifyBranchy(
        a.data(), a.size(), b.data(), b.size(), 0, 0, 0, required);
    const double block = internal::MergeVerifyBlock(
        a.data(), a.size(), b.data(), b.size(), 0, 0, 0, required);
    const double gallop = internal::MergeVerifyGallop(
        a.data(), a.size(), b.data(), b.size(), 0, 0, 0, required);
    EXPECT_DOUBLE_EQ(branchy, block) << "trial=" << trial;
    EXPECT_DOUBLE_EQ(branchy, gallop) << "trial=" << trial;
    if (branchy != -1.0) {
      EXPECT_DOUBLE_EQ(branchy, JaccardSimilarity(a, b))
          << "trial=" << trial;
    }
  }
}

}  // namespace
}  // namespace crowdjoin
