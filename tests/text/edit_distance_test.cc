#include "text/edit_distance.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"

namespace crowdjoin {
namespace {

TEST(LevenshteinDistance, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
}

TEST(LevenshteinDistance, Symmetric) {
  EXPECT_EQ(LevenshteinDistance("sunday", "saturday"),
            LevenshteinDistance("saturday", "sunday"));
}

TEST(LevenshteinSimilarity, NormalizedToUnitInterval) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("kitten", "sitting"), 1.0 - 3.0 / 7.0,
              1e-12);
}

TEST(BoundedLevenshtein, ExactWhenWithinBound) {
  EXPECT_EQ(BoundedLevenshtein("kitten", "sitting", 3), 3u);
  EXPECT_EQ(BoundedLevenshtein("kitten", "sitting", 10), 3u);
  EXPECT_EQ(BoundedLevenshtein("flaw", "lawn", 2), 2u);
}

TEST(BoundedLevenshtein, ExceedsBoundReturnsGreaterThanBound) {
  EXPECT_GT(BoundedLevenshtein("kitten", "sitting", 2), 2u);
  EXPECT_GT(BoundedLevenshtein("abcdef", "uvwxyz", 5), 5u);
}

TEST(BoundedLevenshtein, LengthDifferenceRejectsWithoutDp) {
  // |len(a) - len(b)| alone exceeds the budget: the band never opens.
  EXPECT_GT(BoundedLevenshtein("a", "abcdefgh", 3), 3u);
  EXPECT_GT(BoundedLevenshtein("abcdefgh", "", 7), 7u);
}

TEST(BoundedLevenshtein, EmptyAndEqualStrings) {
  EXPECT_EQ(BoundedLevenshtein("", "", 0), 0u);
  EXPECT_EQ(BoundedLevenshtein("same", "same", 0), 0u);
  EXPECT_EQ(BoundedLevenshtein("abc", "", 3), 3u);
  EXPECT_EQ(BoundedLevenshtein("", "abc", 5), 3u);
}

TEST(BoundedLevenshtein, DisjointAlphabets) {
  EXPECT_EQ(BoundedLevenshtein("aaaa", "bbbb", 4), 4u);
  EXPECT_GT(BoundedLevenshtein("aaaa", "bbbb", 3), 3u);
}

TEST(BoundedLevenshtein, ZeroBudgetMeansExactEqualityCheck) {
  EXPECT_EQ(BoundedLevenshtein("abc", "abc", 0), 0u);
  EXPECT_GT(BoundedLevenshtein("abc", "abd", 0), 0u);
}

TEST(BoundedLevenshtein, AgreesWithUnboundedOnRandomStrings) {
  Rng rng(4242);
  for (int trial = 0; trial < 500; ++trial) {
    std::string a, b;
    const size_t la = rng.Index(12);
    const size_t lb = rng.Index(12);
    for (size_t i = 0; i < la; ++i) a += static_cast<char>('a' + rng.Index(4));
    for (size_t i = 0; i < lb; ++i) b += static_cast<char>('a' + rng.Index(4));
    const size_t exact = LevenshteinDistance(a, b);
    for (size_t bound = 0; bound <= 12; ++bound) {
      const size_t banded = BoundedLevenshtein(a, b, bound);
      if (exact <= bound) {
        EXPECT_EQ(banded, exact) << "a=" << a << " b=" << b << " k=" << bound;
      } else {
        EXPECT_GT(banded, bound) << "a=" << a << " b=" << b << " k=" << bound;
      }
    }
  }
}

TEST(JaroSimilarity, ClassicPairs) {
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.766667, 1e-5);
  EXPECT_DOUBLE_EQ(JaroSimilarity("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("ab", "xy"), 0.0);
}

TEST(JaroWinklerSimilarity, BoostsCommonPrefix) {
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.961111, 1e-5);
  EXPECT_NEAR(JaroWinklerSimilarity("dwayne", "duane"), 0.84, 0.01);
  // Prefix boost only ever increases similarity.
  EXPECT_GE(JaroWinklerSimilarity("prefix", "preface"),
            JaroSimilarity("prefix", "preface"));
}

TEST(JaroWinklerSimilarity, PrefixCapIsFourChars) {
  const double jaro = JaroSimilarity("abcdefgh", "abcdefzz");
  const double jw = JaroWinklerSimilarity("abcdefgh", "abcdefzz", 0.1);
  EXPECT_NEAR(jw, jaro + 4 * 0.1 * (1.0 - jaro), 1e-12);
}

}  // namespace
}  // namespace crowdjoin
