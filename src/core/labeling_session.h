#ifndef CROWDJOIN_CORE_LABELING_SESSION_H_
#define CROWDJOIN_CORE_LABELING_SESSION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/candidate.h"
#include "core/labeling_order.h"
#include "core/labeling_result.h"
#include "core/oracle.h"
#include "core/retry_policy.h"
#include "core/session_checkpoint.h"
#include "graph/cluster_graph.h"

namespace crowdjoin {

// ---------------------------------------------------------------------------
// Candidate input
// ---------------------------------------------------------------------------

/// \brief Pull-based source of candidate pairs, delivered round by round.
///
/// The labeling session consumes one round at a time and never needs the
/// full candidate set in memory: each round is labeled (with deduction
/// state carried across rounds) and then dropped, so the peak candidate
/// buffer is bounded by the largest round. Implementations: the
/// `MaterializedCandidateStream` adapter below, and the simjoin module's
/// `StreamingCandidateFeed`, which drains the sharded join's probe tasks
/// incrementally.
class CandidateStream {
 public:
  virtual ~CandidateStream() = default;

  /// Returns the next round of candidates; an empty set means the stream
  /// is exhausted. Pair object ids are global (stable across rounds).
  virtual Result<CandidateSet> NextRound() = 0;
};

/// \brief Adapter presenting an in-memory `CandidateSet` as a stream:
/// one round of everything (`round_size == 0`, the legacy materialized
/// shape) or fixed-size chunks in candidate order.
class MaterializedCandidateStream : public CandidateStream {
 public:
  /// `pairs` must outlive the stream.
  explicit MaterializedCandidateStream(const CandidateSet* pairs,
                                       size_t round_size = 0)
      : pairs_(pairs), round_size_(round_size) {}

  Result<CandidateSet> NextRound() override;

 private:
  const CandidateSet* pairs_;
  size_t round_size_;
  size_t cursor_ = 0;
};

// ---------------------------------------------------------------------------
// Deduction rules
// ---------------------------------------------------------------------------

/// \brief A pluggable deduction policy: decides pair labels for free from
/// the labels observed so far.
///
/// Rules form an ordered chain. For each pair the session asks the rules in
/// chain order; the first one that deduces wins. A deduced label is then
/// fed back (`Observe`) only to the rules *before* the deducing one — they
/// could not decide the pair, so the label is new information to them,
/// while the deducing rule already implies it. Crowdsourced labels are fed
/// to every rule. With the chain [transitive, one-to-one] this reproduces
/// the legacy `OneToOneLabeler` byte for byte: a one-to-one deduction lands
/// in the cluster graph (so transitivity can build on it), while a
/// transitive deduction leaves the one-to-one matched-flags untouched.
class DeductionRule {
 public:
  virtual ~DeductionRule() = default;

  /// Stable rule name ("transitive", "one-to-one"), for diagnostics.
  virtual std::string_view name() const = 0;

  /// Drops all accumulated knowledge; the rule restarts over objects
  /// `[0, num_objects)`.
  virtual void Reset(int32_t num_objects) = 0;

  /// Grows the object space without dropping knowledge (streaming rounds
  /// widen the id range as records arrive). No-op when already spanned.
  virtual void EnsureObjects(int32_t num_objects) = 0;

  /// Attempts to decide (a, b) from the labels observed so far.
  virtual std::optional<Label> Deduce(ObjectId a, ObjectId b) = 0;

  /// Records a finalized label. `source` distinguishes crowd answers from
  /// deductions (some rules, like one-to-one, only trust crowd answers).
  virtual void Observe(ObjectId a, ObjectId b, Label label,
                       LabelSource source) = 0;

  /// Contributes rule-specific counters to the finished report.
  virtual void FillReport(LabelingReport* report) const = 0;
};

/// \brief The paper's core rule: transitive deduction over a ClusterGraph
/// (Section 3.2). Counts conflicting labels per the configured policy.
class TransitiveDeductionRule : public DeductionRule {
 public:
  explicit TransitiveDeductionRule(
      ConflictPolicy policy = ConflictPolicy::kKeepFirst)
      : policy_(policy), graph_(0, policy) {}

  std::string_view name() const override { return "transitive"; }
  void Reset(int32_t num_objects) override { graph_.Reset(num_objects); }
  void EnsureObjects(int32_t num_objects) override {
    graph_.EnsureObjects(num_objects);
  }
  std::optional<Label> Deduce(ObjectId a, ObjectId b) override;
  void Observe(ObjectId a, ObjectId b, Label label,
               LabelSource source) override;
  void FillReport(LabelingReport* report) const override;

  ConflictPolicy policy() const { return policy_; }
  const ClusterGraph& graph() const { return graph_; }
  /// Direct graph access for the session's devirtualized fast path.
  ClusterGraph& mutable_graph() { return graph_; }

 private:
  ConflictPolicy policy_;
  ClusterGraph graph_;
};

/// \brief The one-to-one exclusivity rule (Section 8 future work): when
/// every entity has at most one record per collection, a crowd-confirmed
/// match (a, b) implies every other pair touching a or b is non-matching.
///
/// Chain it *after* the transitive rule so transitivity takes precedence
/// (the legacy `OneToOneLabeler` semantics). Only crowd answers set the
/// matched flags; `num_exclusivity_violations` counts crowd matches that
/// contradict the assumption.
class OneToOneDeductionRule : public DeductionRule {
 public:
  std::string_view name() const override { return "one-to-one"; }
  void Reset(int32_t num_objects) override;
  void EnsureObjects(int32_t num_objects) override;
  std::optional<Label> Deduce(ObjectId a, ObjectId b) override;
  void Observe(ObjectId a, ObjectId b, Label label,
               LabelSource source) override;
  void FillReport(LabelingReport* report) const override;

 private:
  std::vector<bool> matched_;
  int64_t num_deduced_ = 0;
  int64_t num_violations_ = 0;
};

// ---------------------------------------------------------------------------
// Schedule / stop policies
// ---------------------------------------------------------------------------

/// \brief How crowdsourced pairs are published and resolved.
enum class SchedulePolicy : uint8_t {
  /// One pair at a time, in labeling order (Section 3.2). The only
  /// schedule that supports arbitrary deduction-rule chains.
  kSequential = 0,
  /// Round-based batches (Algorithm 2): publish every must-crowdsource
  /// pair of a round at once, resolve them (fanned over `num_threads`
  /// pool workers, or an external batch source), deduce, repeat.
  kRoundParallel = 1,
  /// Re-plan after every single completed pair (Section 5.2), keeping the
  /// platform saturated; driven through Start()/OnPairLabeled()/Finish().
  kInstantDecision = 2,
};

/// Stable display name ("sequential", "round-parallel", "instant").
std::string_view SchedulePolicyToString(SchedulePolicy policy);

/// \brief When to stop paying for crowd answers.
///
/// Unbounded runs label everything; a budget caps the number of
/// crowdsourced pairs (the Whang et al. [27] setting) — deduction keeps
/// firing after exhaustion and unreachable pairs stay unlabeled.
struct StopPolicy {
  /// Maximum crowdsourced pairs; negative means unbounded. Construct
  /// through the factories: only `Unbounded()` produces a negative value.
  int64_t budget = -1;

  static StopPolicy Unbounded() { return {}; }
  /// A cap of `budget` crowdsourced pairs. Negative requests clamp to 0
  /// (no crowdsourcing at all) — asking for a bounded run must never
  /// silently produce an unbounded one.
  static StopPolicy Budget(int64_t budget) {
    return {budget < 0 ? 0 : budget};
  }
  bool bounded() const { return budget >= 0; }
};

/// Configuration of a `LabelingSession`.
struct LabelingSessionOptions {
  SchedulePolicy schedule = SchedulePolicy::kSequential;
  StopPolicy stop;
  /// Conflict handling of the default transitive rule. Ignored when rules
  /// are installed explicitly via `AddRule` (the rule carries its own).
  ConflictPolicy conflict_policy = ConflictPolicy::kKeepFirst;
  /// Worker threads for the round-parallel schedule's oracle fan-out;
  /// <= 1 keeps every oracle call on the calling thread, in batch order.
  int num_threads = 1;
  /// Transient-fault model for crowd asks. Null (the default) means no
  /// faults and the historical single-attempt path, byte for byte. When
  /// set, every crowd ask runs under `retry`: attempts that fault consume
  /// backoff (accounted in crowd.retry_backoff_us, never slept) but no
  /// oracle call, and the ask past `retry.max_attempts` escalates and
  /// cannot fault — so with a batch-safe oracle the final labels equal the
  /// fault-free run's at every thread count (fault-masked equivalence).
  AttemptFaultFn attempt_fault;
  RetryPolicy retry;
};

/// \brief Resolves the labels of one published batch of candidate
/// positions. Must return one label per input position, positionally.
///
/// This is the seam between the round engine and whatever answers the
/// questions: `LabelingSession::Run` supplies an oracle-backed source that
/// fans the calls out over a worker pool; the crowd orchestrator supplies
/// one that publishes the batch as HITs on the simulated platform.
using BatchLabelFn =
    std::function<Result<std::vector<Label>>(const std::vector<int32_t>&)>;

// ---------------------------------------------------------------------------
// The session
// ---------------------------------------------------------------------------

/// \brief The single labeling engine: transitive deduction interleaved
/// with crowdsourcing, decomposed into independent, mixable policies —
/// candidate input (materialized or streaming), deduction-rule chain,
/// schedule, and stop condition — all producing one `LabelingReport`.
///
/// Policy matrix (✓ supported, — rejected with InvalidArgument):
///
///   schedule         rule chains          stop        input
///   sequential       any                  any         materialized/stream
///   round-parallel   transitive only      any         materialized/stream
///   instant          transitive only      unbounded   materialized
///
/// The five legacy engines are thin wrappers over specific cells:
/// `SequentialLabeler` (sequential/unbounded), `ParallelLabeler`
/// (round-parallel/unbounded), `BudgetLabeler` (sequential/budget),
/// `OneToOneLabeler` (sequential/unbounded + one-to-one rule), and
/// `InstantDecisionEngine` (instant/unbounded). Outputs are byte-identical
/// to those engines, pinned by the session equivalence suite.
///
/// Determinism: with a batch-safe oracle (see `LabelOracle`) the report is
/// identical for every `num_threads`, exactly as the legacy parallel
/// labeler guaranteed.
class LabelingSession {
 public:
  explicit LabelingSession(LabelingSessionOptions options = {});
  ~LabelingSession();

  LabelingSession(LabelingSession&&) noexcept;
  LabelingSession& operator=(LabelingSession&&) noexcept;

  /// Appends `rule` to the deduction chain. When no rule is installed by
  /// the first run, a `TransitiveDeductionRule(options.conflict_policy)`
  /// is installed automatically. Returns *this for chaining.
  LabelingSession& AddRule(std::unique_ptr<DeductionRule> rule);

  /// Labels `pairs` following `order` (a permutation of positions into
  /// `pairs`, validated once here — the session boundary), querying
  /// `oracle` for every pair no rule can deduce, under the configured
  /// schedule and stop policies.
  Result<LabelingReport> Run(const CandidateSet& pairs,
                             const std::vector<int32_t>& order,
                             LabelOracle& oracle);

  /// Round-parallel schedule with label resolution delegated to
  /// `label_batch` — the building block for crowd-platform publication
  /// strategies that answer a whole batch at once. `num_threads` is not
  /// consulted; the batch source owns its own parallelism.
  Result<LabelingReport> RunWithBatchSource(const CandidateSet& pairs,
                                            const std::vector<int32_t>& order,
                                            const BatchLabelFn& label_batch);

  /// Streaming drive: pulls rounds from `stream`, orders each round by
  /// `order_kind` (likelihood heuristics never need more than the round),
  /// and labels it under the configured schedule with deduction state —
  /// and any remaining budget — carried across rounds, so later rounds
  /// ride on earlier rounds' clusters for free. Candidates are dropped
  /// after their round: peak candidate memory is one round, which is what
  /// lets >1M-pair campaigns run without materializing the candidate set.
  ///
  /// `truth` is required for kOptimal/kWorst orders, `order_rng` for
  /// kRandom (both per `MakeLabelingOrder`). Sequential and round-parallel
  /// schedules only.
  ///
  /// A non-null `checkpoint` with a non-empty path makes the campaign
  /// durable: the round frontier is written atomically to the checkpoint
  /// file every `checkpoint->every_rounds` rounds, and (with `resume`) a
  /// prior run's frontier is restored first — the stream is fast-forwarded
  /// past the completed rounds and the final report is byte-identical to
  /// an uninterrupted run. Requires a transitive-only rule chain.
  Result<LabelingReport> RunStream(
      CandidateStream& stream, OrderKind order_kind, LabelOracle& oracle,
      const GroundTruthOracle* truth = nullptr, Rng* order_rng = nullptr,
      const SessionCheckpointOptions* checkpoint = nullptr);

  // --- Incremental protocol (kInstantDecision schedule) ---
  //
  //   1. `Start()` returns the initial set of positions to publish.
  //   2. For every completed pair, `OnPairLabeled(pos, label)` returns the
  //      *newly* publishable positions (possibly empty — completing a
  //      matching pair never unlocks new work).
  //   3. When `num_available() == 0`, call `Finish()` to resolve every
  //      deduced label and obtain the report. Finish is idempotent.

  /// Computes and marks published the initial must-crowdsource set.
  /// `pairs` must outlive the session.
  Result<std::vector<int32_t>> Start(const CandidateSet* pairs,
                                     std::vector<int32_t> order);

  /// Records the crowd label of a published pair and returns the positions
  /// that must now be published. `pos` must be published and unlabeled.
  Result<std::vector<int32_t>> OnPairLabeled(int32_t pos, Label label);

  /// Resolves all deduced labels. Requires `num_available() == 0`.
  Result<LabelingReport> Finish();

  /// Published-but-not-yet-labeled count: the pairs available to workers.
  int64_t num_available() const { return num_available_; }
  /// Pairs labeled by the crowd so far.
  int64_t num_crowdsourced() const { return num_crowdsourced_; }
  /// Total published so far (labeled or not).
  int64_t num_published() const { return num_published_; }

  const LabelingSessionOptions& options() const { return options_; }

 private:
  // Installs the default transitive rule if the chain is empty.
  void EnsureDefaultRule();
  // Ensures the default rule, resets every rule over `num_objects`, and
  // resets the budget and protocol state.
  void BeginRun(int32_t num_objects);
  // The conflict policy of a transitive-only chain; InvalidArgument when
  // the chain holds anything else (round-parallel/instant requirement).
  Result<ConflictPolicy> RequireTransitiveOnlyChain() const;
  // Labels one pair through the rule chain (sequential schedule); writes
  // the outcome at `report.outcomes[report_pos]`.
  void LabelOnePair(const CandidatePair& pair, size_t report_pos,
                    LabelOracle& oracle, LabelingReport& report);
  // Round-parallel engine over one candidate window. `base` seeds every
  // scan with prior knowledge as an epoch snapshot read through an
  // O(round) overlay (null = fresh graphs, the legacy materialized
  // behavior); `report_offset` maps window positions into the report.
  Status RunRoundsOver(const CandidateSet& pairs,
                       const std::vector<int32_t>& order,
                       const BatchLabelFn& label_batch, ConflictPolicy policy,
                       const ClusterGraphSnapshot* base, size_t report_offset,
                       LabelingReport& report);
  // Oracle-backed batch source fanning calls across `pool`.
  Result<LabelingReport> RunRoundsWithOracle(const CandidateSet& pairs,
                                             const std::vector<int32_t>& order,
                                             LabelOracle& oracle);
  // Instant-decision FIFO self-drive (Run with kInstantDecision).
  Result<LabelingReport> RunInstantFifo(const CandidateSet& pairs,
                                        const std::vector<int32_t>& order,
                                        LabelOracle& oracle);
  // Publishes every newly must-crowdsource position (instant protocol).
  std::vector<int32_t> InstantScan();

  LabelingSessionOptions options_;
  std::vector<std::unique_ptr<DeductionRule>> rules_;
  int64_t remaining_budget_ = -1;

  // Instant-protocol state.
  const CandidateSet* pairs_ = nullptr;
  std::vector<int32_t> order_;
  ConflictPolicy instant_policy_ = ConflictPolicy::kKeepFirst;
  std::vector<std::optional<Label>> labels_;
  std::vector<bool> published_;
  int64_t num_available_ = 0;
  int64_t num_crowdsourced_ = 0;
  int64_t num_published_ = 0;
  bool started_ = false;
};

// ---------------------------------------------------------------------------
// Shared building blocks
// ---------------------------------------------------------------------------

/// Validates that `order` is a permutation of `[0, n)`. Every session run
/// validates exactly once, at the session boundary; the legacy engines
/// inherit the check through their wrappers.
Status ValidateOrder(const std::vector<int32_t>& order, size_t n);

/// \brief Identifies the pairs that can be crowdsourced in parallel
/// (Algorithm 3, ParallelCrowdsourcedPairs).
///
/// Scans the labeling order once, inserting already-labeled pairs with
/// their real labels and assuming every unlabeled pair is matching (the
/// assumption that maximizes deducibility). An unlabeled pair that is still
/// undeducible under this assumption can never become deducible from its
/// prefix, whatever labels arrive later, so it *must* be crowdsourced.
///
/// `labels_by_pos[i]` is the label of candidate position `i` if known.
/// Positions in `exclude_from_output` (e.g. already-published pairs, for
/// the instant-decision optimization) are still treated as must-crowdsource
/// pairs in the scan but are omitted from the returned set. A non-null
/// `base_graph` seeds the scan with labels from outside `pairs` (earlier
/// streaming rounds); it is copied, not mutated.
std::vector<int32_t> ParallelCrowdsourcedPairs(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    const std::vector<std::optional<Label>>& labels_by_pos,
    const std::vector<bool>* exclude_from_output = nullptr,
    ConflictPolicy policy = ConflictPolicy::kKeepFirst,
    const ClusterGraph* base_graph = nullptr);

}  // namespace crowdjoin

#endif  // CROWDJOIN_CORE_LABELING_SESSION_H_
