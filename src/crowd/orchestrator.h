#ifndef CROWDJOIN_CROWD_ORCHESTRATOR_H_
#define CROWDJOIN_CROWD_ORCHESTRATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/candidate.h"
#include "core/labeling_order.h"
#include "core/labeling_result.h"
#include "core/labeling_session.h"
#include "core/oracle.h"
#include "crowd/config.h"
#include "datagen/record_source.h"
#include "graph/label.h"
#include "simjoin/candidate_generator.h"
#include "text/record_similarity.h"

namespace crowdjoin {

/// Outcome of one simulated AMT campaign (a row of Table 1 / Table 2).
struct AmtRunStats {
  int64_t num_hits = 0;
  int64_t num_assignments = 0;
  double total_hours = 0.0;
  double total_cost_cents = 0.0;
  int64_t num_crowdsourced_pairs = 0;
  int64_t num_deduced_pairs = 0;
  /// Final label per candidate position (crowd answers where crowdsourced,
  /// transitive deductions elsewhere).
  std::vector<Label> final_labels;

  // Fault-recovery accounting (all zero without a fault plan).
  int64_t num_publish_retries = 0;       ///< transient publish failures retried
  int64_t num_hits_reposted = 0;         ///< expired HITs republished
  int64_t num_reask_hits = 0;            ///< quorum re-ask HITs published
  int64_t num_assignments_abandoned = 0; ///< worker walk-aways (not billed)
  int64_t num_hits_expired = 0;          ///< HITs that blew the deadline
};

/// \brief "Non-Transitive" baseline: publishes *every* candidate pair to
/// the platform immediately (batched into HITs) and takes the majority
/// votes as the final labels. No deduction happens.
Result<AmtRunStats> RunNonTransitiveAmt(const CandidateSet& pairs,
                                        const CrowdConfig& config,
                                        const GroundTruthOracle& truth);

/// \brief "Transitive" campaign: the labeling session's instant-decision
/// schedule publishes only must-crowdsource pairs (in the given labeling
/// order), batched into HITs; every other pair's label is deduced
/// transitively. Majority-voted crowd answers feed the deduction, so worker
/// errors propagate — exactly the effect Table 2 quantifies.
Result<AmtRunStats> RunTransitiveAmt(const CandidateSet& pairs,
                                     const std::vector<int32_t>& order,
                                     const CrowdConfig& config,
                                     const GroundTruthOracle& truth);

/// \brief Table 1's "Non-Parallel" baseline: crowdsources exactly the same
/// HITs as the transitive (Parallel(ID)) campaign but publishes them one at
/// a time, waiting for each to complete before publishing the next.
/// Assumes correct answers (Table 1 isolates completion time).
Result<AmtRunStats> RunNonParallelAmt(const CandidateSet& pairs,
                                      const std::vector<int32_t>& order,
                                      const CrowdConfig& config,
                                      const GroundTruthOracle& truth);

/// \brief Table 1's "Parallel" strategy (Algorithm 2, without instant
/// decisions): each round publishes the whole must-crowdsource batch to the
/// platform at once (batched into HITs), waits for every HIT of the round,
/// feeds the majority votes into the deduction scan, and repeats.
///
/// Runs the labeling session's round-parallel schedule with the platform
/// as batch source. `config.num_threads` plays no role here: it
/// parallelizes oracle-driven labeling, whereas this campaign's labels
/// come from the platform, which already services a round's HITs
/// concurrently through the simulated worker pool.
Result<AmtRunStats> RunParallelAmt(const CandidateSet& pairs,
                                   const std::vector<int32_t>& order,
                                   const CrowdConfig& config,
                                   const GroundTruthOracle& truth);

/// \brief Latency-free labeling campaign driven by a CrowdConfig: the
/// quality counterpart of `RunParallelAmt` when the HIT latency model is
/// not needed (sweeps that only care about labels and counts).
///
/// Builds a batch-safe oracle from the config — exact ground truth when
/// both error rates are zero, otherwise a `HashNoisyOracle` seeded with
/// `config.seed` — and runs the session's round-parallel schedule with its
/// oracle calls fanned across `config.num_threads` pool workers. By the
/// session's contract the report is identical for every `num_threads`.
Result<LabelingReport> RunLocalParallelLabeling(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    const CrowdConfig& config, const GroundTruthOracle& truth);

/// Configuration of a streaming campaign (see `RunStreamingCampaign`).
struct StreamingCampaignConfig {
  /// Machine-step knobs (similarity measure, join threshold, likelihood
  /// cut, noise). The measure choice lives here — not in `CrowdConfig`,
  /// which holds crowd-platform knobs — and flows through the candidate
  /// generator into the sharded join unchanged.
  CandidateGeneratorOptions candidates;
  /// Shard count and worker threads for the sharded similarity join.
  ShardedJoinOptions sharding;
  /// Labeling campaign knobs: `num_threads` fans the oracle calls,
  /// error rates select the noisy oracle, `seed` drives both noise and
  /// the random order (when chosen).
  CrowdConfig crowd;
  /// Labeling order; the default is the paper's likelihood heuristic.
  /// (Streamed campaigns order each round; see `LabelingSession::RunStream`.)
  OrderKind order = OrderKind::kExpected;
  /// 0 materializes the candidate set before labeling (the legacy shape).
  /// > 0 feeds candidates into the labeling session round by round — each
  /// round is the output of that many sharded-join probe tasks — so the
  /// full candidate set is never materialized (peak candidate memory = one
  /// round). Requires the scorer-free path.
  int64_t label_tasks_per_round = 0;
  /// Durable-campaign knobs (round-by-round mode only). A non-empty
  /// `checkpoint.path` makes the campaign write its round frontier there
  /// and resume from it after a kill; see `SessionCheckpointOptions`.
  /// `crowd.faults` / `crowd.retry` plug the per-pair transient fault
  /// model and retry policy into the session (`crowd.retry.seed == 0`
  /// derives the jitter seed from `crowd.seed`).
  SessionCheckpointOptions checkpoint;
};

/// Outcome of a streaming campaign.
struct StreamingCampaignStats {
  int64_t num_records = 0;
  int64_t num_candidates = 0;
  /// The machine step's candidate pairs (ids reference stream positions).
  /// Left empty in round-by-round mode (`label_tasks_per_round > 0`) —
  /// not materializing this vector is that mode's whole point.
  CandidateSet candidates;
  /// Ground truth captured while streaming, indexed by record position.
  std::vector<int32_t> entity_of;
  /// Full labeling outcome (crowdsourced + deduced counts and labels).
  LabelingReport labeling;
};

/// \brief End-to-end campaign over a `RecordSource`: stream -> sharded
/// parallel similarity join -> transitive labeling — the scale path that
/// runs 100k-1M-record workloads without ever materializing a `Dataset`.
///
/// `scorer` may be null (see `GenerateCandidatesStreaming`); that is the
/// memory-lean configuration used at the largest scale factors. Ground
/// truth is captured from the stream, so the oracle (exact, or noisy per
/// `config.crowd` error rates) needs no materialized dataset either. With
/// `config.label_tasks_per_round > 0` the campaign streams candidates into
/// the session round by round (scorer must be null).
Result<StreamingCampaignStats> RunStreamingCampaign(
    RecordSource& source, const RecordScorer* scorer,
    const StreamingCampaignConfig& config);

}  // namespace crowdjoin

#endif  // CROWDJOIN_CROWD_ORCHESTRATOR_H_
