// Randomized property suite pinning the measure-generic joins to the
// brute-force reference: for every measure (Jaccard, edit distance, TF-IDF
// cosine), every join path — sequential prefix-filter and sharded parallel
// at shard counts {1, 4, 3, 5} x thread counts {1, 2, 4, 8} — must emit
// ScoredPair vectors *byte-identical* to BruteForceMeasureSelfJoin /
// BruteForceMeasureBipartiteJoin: same pairs, same exact score doubles,
// same order. The corpora exercise each measure's filter edge cases:
// empty and whitespace-only texts, singletons, all-identical docs,
// near-duplicate strings a few character edits apart (the edit measure's
// q-gram filter), very short strings at low thresholds (the edit
// measure's fallback bucket, where qualifying pairs can share zero
// grams), and heavy-tail token frequencies (weighted cosine prefixes).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "simjoin/sharded_join.h"
#include "simjoin/similarity_join.h"
#include "simjoin/similarity_measure.h"
#include "simjoin/token_dictionary.h"

namespace crowdjoin {
namespace {

constexpr double kThresholds[] = {0.3, 0.5, 0.7, 0.9};

// Shard x thread grids the sharded path must reproduce byte-identically.
constexpr std::pair<int, int> kShardingGrid[] = {
    {1, 1}, {4, 2}, {3, 4}, {5, 8}};

std::vector<const SimilarityMeasure*> AllMeasures() {
  return {&SimilarityMeasure::Jaccard(), &SimilarityMeasure::EditDistance(),
          &SimilarityMeasure::CosineTfIdf()};
}

struct MeasureCorpus {
  TokenDictionary dictionary;
  std::vector<MeasureDoc> docs;
};

MeasureCorpus BuildCorpus(const std::vector<std::string>& texts,
                          const SimilarityMeasure& measure) {
  MeasureCorpus corpus;
  for (const std::string& text : texts) {
    corpus.docs.push_back(measure.MakeDoc(text, corpus.dictionary));
  }
  return corpus;
}

std::string RandomWord(Rng& rng, size_t vocab) {
  return StrFormat("w%llu", static_cast<unsigned long long>(rng.Index(vocab)));
}

// Word soups plus deliberately empty, whitespace-only, and one-word texts.
std::vector<std::string> MakeMixedTexts(uint64_t seed, size_t num_docs) {
  Rng rng(seed);
  std::vector<std::string> texts;
  for (size_t d = 0; d < num_docs; ++d) {
    const size_t kind = rng.Index(8);
    if (kind == 0) {
      texts.push_back("");
    } else if (kind == 1) {
      texts.push_back("  \t  ");  // whitespace-only: normalizes to empty
    } else if (kind == 2) {
      texts.push_back(RandomWord(rng, 70));  // singleton
    } else {
      std::string text;
      const size_t len = 2 + rng.Index(8);
      for (size_t t = 0; t < len; ++t) {
        text += RandomWord(rng, 70);
        text += ' ';
      }
      texts.push_back(text);
    }
  }
  return texts;
}

// Base phrases perturbed by a handful of character edits — near-duplicate
// clusters sitting right at the edit measure's decision boundary.
std::vector<std::string> MakeNearDuplicateTexts(uint64_t seed,
                                                size_t num_docs) {
  Rng rng(seed);
  const std::vector<std::string> bases = {
      "apple macbook pro thirteen inch",
      "apple macbook pro fifteen inch",
      "canon powershot digital camera",
      "nikon coolpix digital camera",
      "sony vaio laptop computer black",
      "logitech wireless mouse m310",
  };
  std::vector<std::string> texts;
  for (size_t d = 0; d < num_docs; ++d) {
    std::string text = bases[rng.Index(bases.size())];
    const size_t edits = rng.Index(4);
    for (size_t e = 0; e < edits && !text.empty(); ++e) {
      const size_t pos = rng.Index(text.size());
      const char letter = static_cast<char>('a' + rng.Index(26));
      switch (rng.Index(3)) {
        case 0:
          text[pos] = letter;  // substitute
          break;
        case 1:
          text.erase(pos, 1);  // delete
          break;
        default:
          text.insert(pos, 1, letter);  // insert
          break;
      }
    }
    texts.push_back(text);
  }
  return texts;
}

// Very short strings at low thresholds: the edit measure's q-gram prefix
// cannot filter these (q * max-edits >= gram count), so completeness rides
// entirely on the fallback bucket — qualifying pairs here can share zero
// grams.
std::vector<std::string> MakeShortStringTexts(uint64_t seed,
                                              size_t num_docs) {
  Rng rng(seed);
  std::vector<std::string> texts;
  for (size_t d = 0; d < num_docs; ++d) {
    const size_t len = rng.Index(5);  // 0..4 characters
    std::string text;
    for (size_t c = 0; c < len; ++c) {
      text += static_cast<char>('a' + rng.Index(6));
    }
    texts.push_back(text);
  }
  return texts;
}

// Zipf-distributed word frequencies: a few words appear nearly everywhere
// (tiny idf weights, worthless prefixes), most appear once — the shape the
// cosine measure's weighted prefix exists for.
std::vector<std::string> MakeHeavyTailTexts(uint64_t seed, size_t num_docs) {
  Rng rng(seed);
  const ZipfSampler sampler(400, 1.2);
  std::vector<std::string> texts;
  for (size_t d = 0; d < num_docs; ++d) {
    const size_t len = 3 + rng.Index(10);
    std::string text;
    for (size_t t = 0; t < len; ++t) {
      text += StrFormat("z%llu ",
                        static_cast<unsigned long long>(sampler.Sample(rng)));
    }
    texts.push_back(text);
  }
  return texts;
}

std::vector<ScoredPair> Sorted(std::vector<ScoredPair> pairs) {
  SortByPairOrder(pairs);
  return pairs;
}

void ExpectSelfJoinsMatchBruteForce(const std::vector<std::string>& texts,
                                    const char* label) {
  for (const SimilarityMeasure* measure : AllMeasures()) {
    const MeasureCorpus corpus = BuildCorpus(texts, *measure);
    for (const double threshold : kThresholds) {
      const auto brute = Sorted(BruteForceMeasureSelfJoin(
          corpus.docs, corpus.dictionary, *measure, threshold));
      const auto sequential =
          MeasureSelfJoin(corpus.docs, corpus.dictionary, *measure, threshold)
              .value();
      EXPECT_EQ(sequential, brute) << label << " sequential, measure="
                                   << measure->name()
                                   << ", threshold=" << threshold;
      for (const auto& [shards, threads] : kShardingGrid) {
        ShardedJoinOptions options;
        options.num_shards = shards;
        options.num_threads = threads;
        const auto sharded =
            ShardedMeasureSelfJoin(corpus.docs, corpus.dictionary, *measure,
                                   threshold, options)
                .value();
        EXPECT_EQ(sharded, brute)
            << label << " sharded, measure=" << measure->name()
            << ", threshold=" << threshold << ", shards=" << shards
            << ", threads=" << threads;
      }
    }
  }
}

void ExpectBipartiteJoinsMatchBruteForce(const std::vector<std::string>& texts,
                                         const char* label) {
  for (const SimilarityMeasure* measure : AllMeasures()) {
    const MeasureCorpus corpus = BuildCorpus(texts, *measure);
    const size_t half = corpus.docs.size() / 2;
    const std::vector<MeasureDoc> left(corpus.docs.begin(),
                                       corpus.docs.begin() + half);
    const std::vector<MeasureDoc> right(corpus.docs.begin() + half,
                                        corpus.docs.end());
    for (const double threshold : kThresholds) {
      const auto brute = Sorted(BruteForceMeasureBipartiteJoin(
          left, right, corpus.dictionary, *measure, threshold));
      const auto sequential =
          MeasureBipartiteJoin(left, right, corpus.dictionary, *measure,
                               threshold)
              .value();
      EXPECT_EQ(sequential, brute) << label << " sequential, measure="
                                   << measure->name()
                                   << ", threshold=" << threshold;
      for (const auto& [shards, threads] : kShardingGrid) {
        ShardedJoinOptions options;
        options.num_shards = shards;
        options.num_threads = threads;
        const auto sharded =
            ShardedMeasureBipartiteJoin(left, right, corpus.dictionary,
                                        *measure, threshold, options)
                .value();
        EXPECT_EQ(sharded, brute)
            << label << " sharded, measure=" << measure->name()
            << ", threshold=" << threshold << ", shards=" << shards
            << ", threads=" << threads;
      }
    }
  }
}

class MeasureEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MeasureEquivalenceTest, MixedTextsWithEmptyAndSingletonDocs) {
  const auto texts = MakeMixedTexts(GetParam(), /*num_docs=*/70);
  ExpectSelfJoinsMatchBruteForce(texts, "mixed");
  ExpectBipartiteJoinsMatchBruteForce(texts, "mixed");
}

TEST_P(MeasureEquivalenceTest, NearDuplicateStrings) {
  const auto texts = MakeNearDuplicateTexts(GetParam(), /*num_docs=*/60);
  ExpectSelfJoinsMatchBruteForce(texts, "near-duplicate");
  ExpectBipartiteJoinsMatchBruteForce(texts, "near-duplicate");
}

TEST_P(MeasureEquivalenceTest, ShortStringsExerciseFallbackBucket) {
  const auto texts = MakeShortStringTexts(GetParam(), /*num_docs=*/60);
  ExpectSelfJoinsMatchBruteForce(texts, "short-strings");
  ExpectBipartiteJoinsMatchBruteForce(texts, "short-strings");
}

TEST_P(MeasureEquivalenceTest, HeavyTailTokenFrequencies) {
  const auto texts = MakeHeavyTailTexts(GetParam(), /*num_docs=*/60);
  ExpectSelfJoinsMatchBruteForce(texts, "heavy-tail");
  ExpectBipartiteJoinsMatchBruteForce(texts, "heavy-tail");
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, MeasureEquivalenceTest,
                         ::testing::Range<uint64_t>(9200, 9206));

TEST(MeasureEquivalence, AllIdenticalDocs) {
  const std::vector<std::string> texts(
      30, "alpha beta gamma delta identical record");
  ExpectSelfJoinsMatchBruteForce(texts, "all-identical");
  ExpectBipartiteJoinsMatchBruteForce(texts, "all-identical");
}

TEST(MeasureEquivalence, AllEmptyDocs) {
  std::vector<std::string> texts(12);
  for (size_t i = 0; i < texts.size(); i += 2) texts[i] = " \t ";
  ExpectSelfJoinsMatchBruteForce(texts, "all-empty");
  ExpectBipartiteJoinsMatchBruteForce(texts, "all-empty");
}

// The Jaccard instantiation of the measure pipeline is the legacy join:
// same documents through MeasureSelfJoin and PrefixFilterSelfJoin must be
// byte-identical (the refactor's no-regression pin at the API level).
TEST(MeasureEquivalence, JaccardMeasurePathMatchesLegacyJoin) {
  const auto texts = MakeMixedTexts(/*seed=*/9321, /*num_docs=*/80);
  const MeasureCorpus corpus =
      BuildCorpus(texts, SimilarityMeasure::Jaccard());
  std::vector<std::vector<int32_t>> raw_docs;
  for (const MeasureDoc& doc : corpus.docs) raw_docs.push_back(doc.tokens);
  for (const double threshold : kThresholds) {
    const auto measure_path =
        MeasureSelfJoin(corpus.docs, corpus.dictionary,
                        SimilarityMeasure::Jaccard(), threshold)
            .value();
    const auto legacy =
        PrefixFilterSelfJoin(raw_docs, corpus.dictionary, threshold).value();
    EXPECT_EQ(measure_path, legacy) << "threshold=" << threshold;
  }
}

}  // namespace
}  // namespace crowdjoin
