// Quickstart: the paper's running example (Figure 3) through the public
// API. Eight machine-generated candidate pairs over six product records are
// labeled with the hybrid transitive-relations + crowdsourcing framework:
// six pairs go to the (simulated) crowd, two labels come for free.
//
//   $ ./quickstart

#include <cstdio>
#include <vector>

#include "core/candidate.h"
#include "core/labeling_order.h"
#include "core/labeling_session.h"
#include "core/oracle.h"
#include "graph/cluster_graph.h"

using namespace crowdjoin;  // NOLINT(build/namespaces)

int main() {
  // Six objects: o1..o6 are ids 0..5. Ground truth: {o1,o2,o3} are the same
  // entity, {o4,o5} are the same entity, o6 matches nothing.
  GroundTruthOracle crowd({0, 0, 0, 1, 1, 2});

  // The machine step produced eight candidate pairs with likelihoods
  // (Figure 3b). Positions 0..7 are p1..p8.
  const CandidateSet candidates = {
      {0, 1, 0.95}, {1, 2, 0.90}, {0, 5, 0.85}, {0, 2, 0.80},
      {3, 4, 0.75}, {3, 5, 0.70}, {1, 3, 0.65}, {4, 5, 0.60},
  };

  // 1. Sorting component: label in decreasing likelihood (the heuristic
  //    order of Section 4.2 - the exact expected-optimal order is NP-hard).
  const std::vector<int32_t> order =
      MakeLabelingOrder(candidates, OrderKind::kExpected, /*truth=*/nullptr,
                        /*rng=*/nullptr)
          .value();

  // 2. Labeling component: one LabelingSession configured with the
  //    round-parallel schedule publishes every pair that must be
  //    crowdsourced, fans the oracle calls of each round over a 4-thread
  //    worker pool (the report is identical for any thread count), deduces
  //    the rest via positive/negative transitivity, and iterates.
  LabelingSessionOptions session_options;
  session_options.schedule = SchedulePolicy::kRoundParallel;
  session_options.num_threads = 4;
  LabelingSession session(session_options);
  const LabelingReport result = session.Run(candidates, order, crowd).value();

  std::printf("labeled %zu candidate pairs:\n", candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const PairOutcome& outcome = *result.outcomes[i];
    std::printf("  p%zu = (o%d, o%d): %-12s [%s]\n", i + 1,
                candidates[i].a + 1, candidates[i].b + 1,
                std::string(LabelToString(outcome.label)).c_str(),
                outcome.source == LabelSource::kCrowdsourced ? "crowdsourced"
                                                             : "deduced");
  }
  std::printf("\ncrowdsourced %lld pairs, deduced %lld for free, "
              "in %zu parallel rounds\n",
              static_cast<long long>(result.num_crowdsourced),
              static_cast<long long>(result.num_deduced),
              result.crowdsourced_per_iteration.size());

  // Bonus: ask the ClusterGraph a transitive question directly.
  ClusterGraph graph(6);
  graph.Add(0, 1, Label::kMatching);
  graph.Add(1, 2, Label::kMatching);
  graph.Add(2, 5, Label::kNonMatching);
  std::printf("\nClusterGraph: (o1,o3) deduces %s; (o1,o6) deduces %s\n",
              std::string(DeductionToString(graph.Deduce(0, 2))).c_str(),
              std::string(DeductionToString(graph.Deduce(0, 5))).c_str());
  return 0;
}
