#include "datagen/cluster_distribution.h"

#include <algorithm>

namespace crowdjoin {

Result<std::vector<int32_t>> SamplePowerLawClusterSizes(
    const PowerLawClusterConfig& config, Rng& rng) {
  if (config.total_records <= 0) {
    return Status::InvalidArgument("total_records must be positive");
  }
  if (config.max_cluster_size < 1 ||
      config.max_cluster_size > config.total_records) {
    return Status::InvalidArgument(
        "max_cluster_size must be in [1, total_records]");
  }
  std::vector<int32_t> sizes;
  int32_t remaining = config.total_records;
  if (config.force_max_cluster) {
    sizes.push_back(config.max_cluster_size);
    remaining -= config.max_cluster_size;
  }
  const ZipfSampler sampler(static_cast<uint64_t>(config.max_cluster_size),
                            config.alpha);
  while (remaining > 0) {
    int32_t size = static_cast<int32_t>(sampler.Sample(rng));
    size = std::min(size, remaining);
    sizes.push_back(size);
    remaining -= size;
  }
  return sizes;
}

Result<std::vector<int32_t>> SampleSmallClusterSizes(
    const SmallClusterConfig& config, Rng& rng) {
  if (config.total_records <= 0) {
    return Status::InvalidArgument("total_records must be positive");
  }
  if (config.size_weights.empty()) {
    return Status::InvalidArgument("size_weights must be non-empty");
  }
  double total_weight = 0.0;
  for (double w : config.size_weights) {
    if (w < 0.0) return Status::InvalidArgument("negative size weight");
    total_weight += w;
  }
  if (total_weight <= 0.0) {
    return Status::InvalidArgument("size weights sum to zero");
  }
  std::vector<double> cdf(config.size_weights.size());
  double acc = 0.0;
  for (size_t i = 0; i < cdf.size(); ++i) {
    acc += config.size_weights[i] / total_weight;
    cdf[i] = acc;
  }
  cdf.back() = 1.0;

  std::vector<int32_t> sizes;
  int32_t remaining = config.total_records;
  while (remaining > 0) {
    const double u = rng.UniformDouble();
    const size_t bucket = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    int32_t size = static_cast<int32_t>(bucket) + 1;
    size = std::min(size, remaining);
    sizes.push_back(size);
    remaining -= size;
  }
  return sizes;
}

}  // namespace crowdjoin
