#include "core/instant_decision.h"

#include "common/macros.h"
#include "common/string_util.h"
#include "core/parallel_labeler.h"
#include "core/sequential_labeler.h"

namespace crowdjoin {

InstantDecisionEngine::InstantDecisionEngine(const CandidateSet* pairs,
                                             std::vector<int32_t> order,
                                             ConflictPolicy policy)
    : pairs_(pairs),
      order_(std::move(order)),
      policy_(policy),
      labels_(pairs->size()),
      published_(pairs->size(), false) {}

std::vector<int32_t> InstantDecisionEngine::Scan() {
  std::vector<int32_t> fresh = ParallelCrowdsourcedPairs(
      *pairs_, order_, labels_, &published_, policy_);
  for (int32_t pos : fresh) {
    published_[static_cast<size_t>(pos)] = true;
    ++num_published_;
    ++num_available_;
  }
  return fresh;
}

Result<std::vector<int32_t>> InstantDecisionEngine::Start() {
  if (started_) {
    return Status::FailedPrecondition("Start() called twice");
  }
  CJ_RETURN_IF_ERROR(ValidateOrder(order_, pairs_->size()));
  started_ = true;
  return Scan();
}

Result<std::vector<int32_t>> InstantDecisionEngine::OnPairLabeled(
    int32_t pos, Label label) {
  if (!started_) {
    return Status::FailedPrecondition("OnPairLabeled() before Start()");
  }
  if (pos < 0 || static_cast<size_t>(pos) >= pairs_->size()) {
    return Status::OutOfRange(StrFormat("position %d out of range", pos));
  }
  if (!published_[static_cast<size_t>(pos)]) {
    return Status::FailedPrecondition(
        StrFormat("pair at position %d was never published", pos));
  }
  if (labels_[static_cast<size_t>(pos)].has_value()) {
    return Status::AlreadyExists(
        StrFormat("pair at position %d is already labeled", pos));
  }
  labels_[static_cast<size_t>(pos)] = label;
  --num_available_;
  ++num_crowdsourced_;
  // Completing a matching pair cannot unlock new publishable pairs (the
  // scan already assumed it was matching), so skip the rescan.
  if (label == Label::kMatching) return std::vector<int32_t>{};
  return Scan();
}

Result<LabelingResult> InstantDecisionEngine::Finish() {
  if (num_available_ != 0) {
    return Status::FailedPrecondition(
        StrFormat("%lld published pairs are still unlabeled",
                  static_cast<long long>(num_available_)));
  }
  LabelingResult result;
  result.outcomes.resize(pairs_->size());
  result.num_crowdsourced = num_crowdsourced_;

  ClusterGraph graph(NumObjectsSpanned(*pairs_), policy_);
  for (int32_t pos : order_) {
    const CandidatePair& pair = (*pairs_)[static_cast<size_t>(pos)];
    auto& label = labels_[static_cast<size_t>(pos)];
    auto& outcome = result.outcomes[static_cast<size_t>(pos)];
    if (label.has_value()) {
      if (published_[static_cast<size_t>(pos)]) {
        outcome = {*label, LabelSource::kCrowdsourced};
      } else {
        // Deduced on an earlier Finish() call (Finish is idempotent).
        outcome = {*label, LabelSource::kDeduced};
        ++result.num_deduced;
      }
      graph.Add(pair.a, pair.b, *label);
      continue;
    }
    const Deduction deduction = graph.Deduce(pair.a, pair.b);
    if (deduction == Deduction::kUndeduced) {
      return Status::Internal(StrFormat(
          "pair at position %d is neither labeled nor deducible", pos));
    }
    label = DeductionToLabel(deduction);
    outcome = {*label, LabelSource::kDeduced};
    ++result.num_deduced;
  }
  result.num_conflicts = graph.num_conflicts();
  return result;
}

}  // namespace crowdjoin
