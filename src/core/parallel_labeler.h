#ifndef CROWDJOIN_CORE_PARALLEL_LABELER_H_
#define CROWDJOIN_CORE_PARALLEL_LABELER_H_

#include <functional>
#include <optional>
#include <vector>

#include "common/result.h"
#include "core/candidate.h"
#include "core/labeling_result.h"
#include "core/oracle.h"
#include "graph/cluster_graph.h"

namespace crowdjoin {

/// \brief Identifies the pairs that can be crowdsourced in parallel
/// (Algorithm 3, ParallelCrowdsourcedPairs).
///
/// Scans the labeling order once, inserting already-labeled pairs with
/// their real labels and assuming every unlabeled pair is matching (the
/// assumption that maximizes deducibility). An unlabeled pair that is still
/// undeducible under this assumption can never become deducible from its
/// prefix, whatever labels arrive later, so it *must* be crowdsourced.
///
/// `labels_by_pos[i]` is the label of candidate position `i` if known.
/// Positions in `exclude_from_output` (e.g. already-published pairs, for
/// the instant-decision optimization) are still treated as must-crowdsource
/// pairs in the scan but are omitted from the returned set.
std::vector<int32_t> ParallelCrowdsourcedPairs(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    const std::vector<std::optional<Label>>& labels_by_pos,
    const std::vector<bool>* exclude_from_output = nullptr,
    ConflictPolicy policy = ConflictPolicy::kKeepFirst);

/// \brief Resolves the labels of one published batch of candidate
/// positions. Must return one label per input position, positionally.
///
/// This is the seam between the round engine and whatever answers the
/// questions: `ParallelLabeler::Run` supplies an oracle-backed source that
/// fans the calls out over a worker pool; the crowd orchestrator supplies
/// one that publishes the batch as HITs on the simulated platform.
using BatchLabelFn =
    std::function<Result<std::vector<Label>>(const std::vector<int32_t>&)>;

/// \brief The round-based parallel labeling algorithm of Section 5.1
/// (Algorithm 2).
///
/// Each round publishes every must-crowdsource pair at once, obtains all
/// their labels, then deduces every pair that became deducible, and repeats
/// until all pairs are labeled. The crowdsourced pair *set* is identical to
/// the sequential labeler's on the same order; only the number of rounds
/// differs (Figures 13–14).
///
/// **Threading & determinism contract.** With `num_threads > 1`, `Run`
/// crowdsources each batch across that many `ThreadPool` workers. The
/// calls of a batch are independent by construction (that is what makes
/// the batch publishable at once), and their answers are merged back by
/// batch position on the calling thread before the deduction scan, so the
/// `LabelingResult` — outcomes, per-iteration batch sizes, crowdsourced /
/// deduced counts, conflicts — is identical for every thread count,
/// provided the oracle is batch-safe (see `LabelOracle`).
class ParallelLabeler {
 public:
  /// `num_threads` is the worker count used by `Run`'s oracle fan-out;
  /// values <= 1 keep every oracle call on the calling thread, in batch
  /// order (safe for any oracle, even order-dependent ones).
  explicit ParallelLabeler(ConflictPolicy policy = ConflictPolicy::kKeepFirst,
                           int num_threads = 1)
      : policy_(policy), num_threads_(num_threads) {}

  /// Runs rounds until every pair is labeled, resolving each batch through
  /// `oracle` (in parallel when `num_threads` > 1).
  /// `crowdsourced_per_iteration` in the result holds the batch size of
  /// every round.
  Result<LabelingResult> Run(const CandidateSet& pairs,
                             const std::vector<int32_t>& order,
                             LabelOracle& oracle) const;

  /// The same round engine with label resolution delegated to
  /// `label_batch` — the building block for crowd-platform publication
  /// strategies that answer a whole batch at once. `num_threads` is not
  /// consulted here; the batch source owns its own parallelism.
  Result<LabelingResult> RunWithBatchSource(
      const CandidateSet& pairs, const std::vector<int32_t>& order,
      const BatchLabelFn& label_batch) const;

  int num_threads() const { return num_threads_; }

 private:
  ConflictPolicy policy_;
  int num_threads_ = 1;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_CORE_PARALLEL_LABELER_H_
