#ifndef CROWDJOIN_DATAGEN_STREAMING_GENERATOR_H_
#define CROWDJOIN_DATAGEN_STREAMING_GENERATOR_H_

#include <cstdint>
#include <memory>

#include "common/status.h"
#include "datagen/paper_dataset.h"
#include "datagen/product_dataset.h"
#include "datagen/record_source.h"

namespace crowdjoin {

/// \brief Seed of generation block `block` for a stream with base seed
/// `base_seed`. Block 0 uses the base seed verbatim — that is what makes a
/// 1x stream byte-identical to the materialized paper-scale dataset —
/// while later blocks get SplitMix64-derived, statistically independent
/// substreams.
uint64_t BlockSeed(uint64_t base_seed, int32_t block);

/// \brief Streaming generator of the Paper dataset at a configurable scale
/// factor.
///
/// The stream is organized in `scale_factor` generation blocks; each block
/// reproduces the configured paper-scale distribution (cluster sizes, text
/// noise) under its own `BlockSeed`, with globally dense record ids and
/// globally unique entity ids across blocks (entities never span blocks).
/// `scale_factor == 1` yields exactly `GeneratePaperDataset(config)`,
/// record for record; `scale_factor == 1000` yields ~1M records.
///
/// Memory: O(clusters per block) for the size plan plus the one entity
/// currently being expanded — the whole dataset is never materialized.
class StreamingPaperSource : public RecordSource {
 public:
  explicit StreamingPaperSource(const PaperDatasetConfig& config,
                                int32_t scale_factor = 1);
  ~StreamingPaperSource() override;

  const StreamMeta& meta() const override;
  bool Next(StreamedRecord* out) override;
  void Reset() override;
  Status status() const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// \brief Streaming generator of the bipartite Product dataset at a
/// configurable scale factor; same block scheme and guarantees as
/// `StreamingPaperSource` (1x == `GenerateProductDataset(config)`).
class StreamingProductSource : public RecordSource {
 public:
  explicit StreamingProductSource(const ProductDatasetConfig& config,
                                  int32_t scale_factor = 1);
  ~StreamingProductSource() override;

  const StreamMeta& meta() const override;
  bool Next(StreamedRecord* out) override;
  void Reset() override;
  Status status() const override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_DATAGEN_STREAMING_GENERATOR_H_
