#include "core/instant_decision.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <numeric>

#include "core/parallel_labeler.h"
#include "core/sequential_labeler.h"
#include "graph/cluster_graph.h"
#include "tests/core/test_fixtures.h"

namespace crowdjoin {
namespace {

using testing_fixtures::Figure3Pairs;
using testing_fixtures::Figure3Truth;
using testing_fixtures::MakeRandomInstance;

std::vector<int32_t> IdentityOrder(size_t n) {
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

TEST(InstantDecisionEngine, StartPublishesFirstBatch) {
  const CandidateSet pairs = Figure3Pairs();
  InstantDecisionEngine engine(&pairs, IdentityOrder(pairs.size()));
  const std::vector<int32_t> initial = engine.Start().value();
  EXPECT_EQ(initial, (std::vector<int32_t>{0, 1, 2, 4, 5}));
  EXPECT_EQ(engine.num_available(), 5);
  EXPECT_EQ(engine.num_published(), 5);
}

TEST(InstantDecisionEngine, StartTwiceFails) {
  const CandidateSet pairs = Figure3Pairs();
  InstantDecisionEngine engine(&pairs, IdentityOrder(pairs.size()));
  ASSERT_TRUE(engine.Start().ok());
  EXPECT_EQ(engine.Start().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(InstantDecisionEngine, OnPairLabeledProtocolErrors) {
  const CandidateSet pairs = Figure3Pairs();
  InstantDecisionEngine engine(&pairs, IdentityOrder(pairs.size()));
  EXPECT_EQ(engine.OnPairLabeled(0, Label::kMatching).status().code(),
            StatusCode::kFailedPrecondition);  // before Start
  ASSERT_TRUE(engine.Start().ok());
  EXPECT_EQ(engine.OnPairLabeled(99, Label::kMatching).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(engine.OnPairLabeled(3, Label::kMatching).status().code(),
            StatusCode::kFailedPrecondition);  // p4 was never published
  ASSERT_TRUE(engine.OnPairLabeled(0, Label::kMatching).ok());
  EXPECT_EQ(engine.OnPairLabeled(0, Label::kMatching).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(InstantDecisionEngine, MatchingCompletionPublishesNothing) {
  // Section 5.2 (non-matching first rationale): completing a matching pair
  // never unlocks new publishable pairs.
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle truth = Figure3Truth();
  InstantDecisionEngine engine(&pairs, IdentityOrder(pairs.size()));
  ASSERT_TRUE(engine.Start().ok());
  const std::vector<int32_t> fresh =
      engine.OnPairLabeled(0, Label::kMatching).value();
  EXPECT_TRUE(fresh.empty());
}

TEST(InstantDecisionEngine, Figure3FifoReproducesExample5) {
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle truth = Figure3Truth();
  InstantDecisionEngine engine(&pairs, IdentityOrder(pairs.size()));
  std::deque<int32_t> queue;
  const std::vector<int32_t> initial = engine.Start().value();
  queue.insert(queue.end(), initial.begin(), initial.end());
  std::vector<int32_t> crowdsourced;
  while (!queue.empty()) {
    const int32_t pos = queue.front();
    queue.pop_front();
    crowdsourced.push_back(pos);
    const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
    const std::vector<int32_t> fresh =
        engine.OnPairLabeled(pos, truth.Truth(pair.a, pair.b)).value();
    queue.insert(queue.end(), fresh.begin(), fresh.end());
  }
  // p1,p2,p3,p5,p6 first; p7 unlocked by p6's non-matching completion.
  EXPECT_EQ(crowdsourced, (std::vector<int32_t>{0, 1, 2, 4, 5, 6}));

  const LabelingResult result = engine.Finish().value();
  EXPECT_EQ(result.num_crowdsourced, 6);
  EXPECT_EQ(result.num_deduced, 2);
  EXPECT_EQ(result.outcomes[3].label, Label::kMatching);      // p4
  EXPECT_EQ(result.outcomes[7].label, Label::kNonMatching);   // p8
}

TEST(InstantDecisionEngine, FinishRequiresAllPublishedLabeled) {
  const CandidateSet pairs = Figure3Pairs();
  InstantDecisionEngine engine(&pairs, IdentityOrder(pairs.size()));
  ASSERT_TRUE(engine.Start().ok());
  EXPECT_EQ(engine.Finish().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(InstantDecisionEngine, FinishIsIdempotent) {
  const CandidateSet pairs = {{0, 1, 0.9}, {1, 2, 0.8}, {0, 2, 0.7}};
  GroundTruthOracle truth({0, 0, 0});
  InstantDecisionEngine engine(&pairs, IdentityOrder(pairs.size()));
  std::deque<int32_t> queue;
  const std::vector<int32_t> initial = engine.Start().value();
  queue.insert(queue.end(), initial.begin(), initial.end());
  while (!queue.empty()) {
    const int32_t pos = queue.front();
    queue.pop_front();
    const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
    const std::vector<int32_t> fresh =
        engine.OnPairLabeled(pos, truth.Truth(pair.a, pair.b)).value();
    queue.insert(queue.end(), fresh.begin(), fresh.end());
  }
  const LabelingResult first = engine.Finish().value();
  const LabelingResult second = engine.Finish().value();
  EXPECT_EQ(first.num_crowdsourced, second.num_crowdsourced);
  EXPECT_EQ(first.num_deduced, second.num_deduced);
  for (size_t i = 0; i < first.outcomes.size(); ++i) {
    EXPECT_EQ(first.outcomes[i].label, second.outcomes[i].label);
    EXPECT_EQ(first.outcomes[i].source, second.outcomes[i].source);
  }
}

// Properties of the instant-decision engine under random completion
// orders: (a) every pair the sequential labeler crowdsources is also
// crowdsourced here; (b) the speculative overhead (pairs published before
// enough non-matching labels arrived to deduce them - the price of
// Algorithm 3's all-matching assumption) stays small; (c) with a correct
// oracle, every final label matches the truth.
class InstantDecisionPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InstantDecisionPropertyTest, BoundedOverheadAndCorrectLabels) {
  const auto instance = MakeRandomInstance(GetParam(), 24, 5, 80);
  GroundTruthOracle truth(instance.entity_of);
  const std::vector<int32_t> order = IdentityOrder(instance.pairs.size());

  GroundTruthOracle oracle_seq = truth;
  const LabelingResult sequential =
      SequentialLabeler().Run(instance.pairs, order, oracle_seq).value();

  InstantDecisionEngine engine(&instance.pairs, order);
  Rng rng(GetParam() ^ 0xc0ffee);
  std::vector<int32_t> available = engine.Start().value();
  while (!available.empty()) {
    // Complete a random available pair (simulating AMT randomness).
    const size_t pick = rng.Index(available.size());
    const int32_t pos = available[pick];
    available.erase(available.begin() + static_cast<std::ptrdiff_t>(pick));
    const CandidatePair& pair = instance.pairs[static_cast<size_t>(pos)];
    const std::vector<int32_t> fresh =
        engine.OnPairLabeled(pos, truth.Truth(pair.a, pair.b)).value();
    available.insert(available.end(), fresh.begin(), fresh.end());
  }
  const LabelingResult result = engine.Finish().value();

  for (size_t i = 0; i < instance.pairs.size(); ++i) {
    EXPECT_EQ(result.outcomes[i].label,
              truth.Truth(instance.pairs[i].a, instance.pairs[i].b))
        << "seed=" << GetParam() << " pair=" << i;
    if (sequential.outcomes[i].source == LabelSource::kCrowdsourced) {
      EXPECT_EQ(result.outcomes[i].source, LabelSource::kCrowdsourced)
          << "seed=" << GetParam() << " pair=" << i;
    }
  }
  EXPECT_GE(result.num_crowdsourced, sequential.num_crowdsourced);
  // Dense adversarial instances (many cross-entity pairs) show the largest
  // speculation overhead; the paper-shaped workloads of the bench harnesses
  // stay around 0.2%. A quarter of the sequential count is the sanity rail.
  EXPECT_LE(result.num_crowdsourced,
            sequential.num_crowdsourced +
                std::max<int64_t>(5, sequential.num_crowdsourced / 4))
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, InstantDecisionPropertyTest,
                         ::testing::Range<uint64_t>(300, 312));

}  // namespace
}  // namespace crowdjoin
