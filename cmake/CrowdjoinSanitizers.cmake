# CROWDJOIN_SANITIZE=ON instruments every target configured in this build
# (libraries, tests, benches, examples) with AddressSanitizer +
# UndefinedBehaviorSanitizer. Applied globally rather than per-target so no
# project target can be left uninstrumented. Prebuilt system libraries
# (e.g. a distro libgtest) still link uninstrumented; CI's sanitize job
# therefore installs no gtest package so FetchContent builds it from source
# under the same flags.
if(CROWDJOIN_SANITIZE)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR
      "CROWDJOIN_SANITIZE=ON requires GCC or Clang, got "
      "${CMAKE_CXX_COMPILER_ID}")
  endif()
  message(STATUS "crowdjoin: building with -fsanitize=address,undefined")
  add_compile_options(
    -fsanitize=address,undefined
    -fno-sanitize-recover=all
    -fno-omit-frame-pointer)
  add_link_options(-fsanitize=address,undefined)
endif()
