// Ablation for Section 8's "other kinds of relations" future work: how
// much does the one-to-one relation save on top of transitivity on the
// bipartite Product dataset, and what does it cost when the assumption is
// (slightly) wrong?

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/labeling_order.h"
#include "core/labeling_session.h"
#include "eval/metrics.h"
#include "eval/workbench.h"

namespace {

using namespace crowdjoin;  // NOLINT(build/namespaces)
using crowdjoin::bench::Unwrap;

}  // namespace

int main(int argc, char** argv) {
  const crowdjoin::bench::Args args(argc, argv);
  const uint64_t seed = args.GetUint64("seed", 42);

  std::printf("=== Ablation: one-to-one relation on the bipartite Product "
              "dataset ===\n");
  const ExperimentInput input = Unwrap(MakeProductExperimentInput(seed));
  GroundTruthOracle truth = MakeGroundTruthOracle(input.dataset);

  TablePrinter table({"threshold", "candidates", "Transitive",
                      "Transitive+1:1", "extra saved", "1:1 F-measure"});
  for (double threshold : {0.5, 0.4, 0.3, 0.2}) {
    const CandidateSet pairs =
        FilterByThreshold(input.candidates, threshold);
    const std::vector<int32_t> order = Unwrap(MakeLabelingOrder(
        pairs, OrderKind::kExpected, &truth, /*rng=*/nullptr));

    GroundTruthOracle oracle1 = truth;
    LabelingSession plain_session;  // sequential, transitive only
    const LabelingReport plain =
        Unwrap(plain_session.Run(pairs, order, oracle1));
    GroundTruthOracle oracle2 = truth;
    LabelingSession one_to_one_session;  // + the exclusivity rule plug-in
    one_to_one_session.AddRule(std::make_unique<TransitiveDeductionRule>())
        .AddRule(std::make_unique<OneToOneDeductionRule>());
    const LabelingReport one_to_one =
        Unwrap(one_to_one_session.Run(pairs, order, oracle2));

    // Quality of the one-to-one run: the rule can wrongly exclude a true
    // match when an entity has several records on one side.
    const QualityMetrics quality =
        ComputeQuality(pairs, ExtractFinalLabels(one_to_one), truth);

    const double extra_saved =
        plain.num_crowdsourced == 0
            ? 0.0
            : 100.0 *
                  static_cast<double>(plain.num_crowdsourced -
                                      one_to_one.num_crowdsourced) /
                  static_cast<double>(plain.num_crowdsourced);
    table.AddRow({StrFormat("%.1f", threshold), std::to_string(pairs.size()),
                  std::to_string(plain.num_crowdsourced),
                  std::to_string(one_to_one.num_crowdsourced),
                  StrFormat("%.1f%%", extra_saved),
                  StrFormat("%.2f%%", 100.0 * quality.f_measure)});
  }
  table.Print(std::cout);
  std::printf("(the Product dataset is only *mostly* one-to-one: clusters "
              "of size >= 3 put two records on one side, so the rule "
              "trades a little recall for the extra savings)\n");
  return 0;
}
