#ifndef CROWDJOIN_GRAPH_CLUSTER_GRAPH_H_
#define CROWDJOIN_GRAPH_CLUSTER_GRAPH_H_

#include <cstdint>
#include <limits>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/label.h"
#include "graph/union_find.h"

namespace crowdjoin {

/// What happened when a labeled pair was inserted into the ClusterGraph.
enum class AddOutcome : uint8_t {
  kApplied = 0,    ///< the label added new information to the graph
  kRedundant = 1,  ///< the label was already deducible (no-op)
  kConflict = 2,   ///< the label contradicts the graph (policy applied)
};

/// How contradictory labels are handled (only relevant when crowd answers
/// can be wrong; the paper's simulations assume correct answers).
enum class ConflictPolicy : uint8_t {
  /// Keep the deduction implied by earlier labels; drop the new label.
  /// This matches the paper's labeling framework, which never crowdsources
  /// a deducible pair and therefore always trusts what is already known.
  kKeepFirst = 0,
  /// For a matching label contradicting a non-matching cluster edge, drop
  /// the edge and merge anyway. (A non-matching label inside one cluster is
  /// still rejected: union-find merges cannot be undone.)
  kTrustNew = 1,
};

/// \brief One recorded `ClusterGraph::Add` call (see `SetEdgeLogEnabled`).
///
/// Replaying a graph's log — every Add in order, conflicts and redundant
/// labels included — onto a fresh graph of the same size reproduces the
/// logical state *and* every counter exactly, which is what campaign
/// checkpoints persist instead of the graph's internal structures.
struct LoggedEdge {
  ObjectId a;
  ObjectId b;
  Label label;
};

class ClusterGraph;

/// \brief An immutable view of a `ClusterGraph` at a published epoch.
///
/// A snapshot is a small value type (a borrowed graph pointer plus the
/// epoch and the counters captured at publish time); acquiring one is O(1)
/// and copying one is trivial. Reads resolve against the graph's link
/// journal and edge-span history, so they see exactly the state that was
/// published at `epoch()` no matter how far the live graph has advanced
/// since — which is what lets reader threads answer `Deduce` queries while
/// a single writer keeps labeling.
///
/// Lifetime: the snapshot borrows the graph; the graph must outlive every
/// snapshot taken from it, and `Reset()` invalidates all outstanding
/// snapshots. Thread safety: snapshot reads take the graph's shared lock
/// and may run concurrently with each other and with one mutating writer.
class ClusterGraphSnapshot {
 public:
  /// An empty snapshot (`valid() == false`); reads CJ_CHECK-fail.
  ClusterGraphSnapshot() = default;

  /// True when the snapshot is bound to a graph.
  bool valid() const { return graph_ != nullptr; }

  /// Algorithm 1 over the published state: matching when `a` and `b` were
  /// in one cluster at the epoch, non-matching when their clusters had an
  /// edge, undeduced otherwise. `a` and `b` must be `< num_objects()`.
  Deduction Deduce(ObjectId a, ObjectId b) const;

  /// The cluster representative of `x` at the epoch. Stable within this
  /// snapshot but NOT across epochs — persist `CanonicalClusterId` instead.
  ObjectId ClusterOf(ObjectId x) const;

  /// The smallest member of `x`'s cluster at the epoch: the id to persist
  /// or compare across epochs (see `ClusterGraph::CanonicalClusterId`).
  ObjectId CanonicalClusterId(ObjectId x) const;

  /// The published epoch this snapshot reads at.
  int64_t epoch() const { return epoch_; }

  /// Number of objects spanned at the epoch.
  int32_t num_objects() const { return num_objects_; }

  /// Cluster count at the epoch.
  int32_t num_clusters() const { return num_clusters_; }

  /// Distinct non-matching cluster edges at the epoch.
  int64_t num_edges() const { return num_edges_; }

  /// Merges performed up to the epoch.
  int64_t num_merges() const { return num_merges_; }

  /// Conflicting labels seen up to the epoch (both kinds).
  int64_t num_conflicts() const {
    return conflicts_matching_ + conflicts_non_matching_;
  }

 private:
  friend class ClusterGraph;
  ClusterGraphSnapshot(const ClusterGraph* graph, int64_t epoch,
                       int32_t num_objects, int32_t num_clusters,
                       int64_t num_edges, int64_t num_merges,
                       int64_t conflicts_matching,
                       int64_t conflicts_non_matching)
      : graph_(graph),
        epoch_(epoch),
        num_objects_(num_objects),
        num_clusters_(num_clusters),
        num_edges_(num_edges),
        num_merges_(num_merges),
        conflicts_matching_(conflicts_matching),
        conflicts_non_matching_(conflicts_non_matching) {}

  const ClusterGraph* graph_ = nullptr;
  int64_t epoch_ = 0;
  int32_t num_objects_ = 0;
  int32_t num_clusters_ = 0;
  int64_t num_edges_ = 0;
  int64_t num_merges_ = 0;
  int64_t conflicts_matching_ = 0;
  int64_t conflicts_non_matching_ = 0;
};

/// \brief The ClusterGraph of Section 3.2 (Figures 5–6): union-find clusters
/// of matching objects plus non-matching edges between clusters.
///
/// Supports the two operations the labeling framework needs, both in
/// near-constant amortized time:
///  * `Deduce(a, b)` — decide whether the pair's label follows from the
///    labeled pairs via transitive relations (Algorithm 1, DeduceLabel);
///  * `Add(a, b, label)` — insert a newly labeled pair.
///
/// Non-matching edges are stored per cluster root as hash maps of adjacent
/// roots; when two clusters merge, the smaller live edge set is folded into
/// the larger one (small-to-large), so the total edge-merging work over a
/// run is O(E log E).
///
/// ## Epoch snapshots
///
/// The graph is partially persistent: alongside the live (path-compressed)
/// structures it keeps a write-once link journal (each root records the
/// root it was merged under, stamped with the epoch of the merge) and
/// birth/death epoch spans on every edge entry (fold re-keys an edge by
/// killing the old span and birthing one under the winner; entries are
/// never erased). `Snapshot()` publishes the pending epoch in O(1) —
/// independent of graph size — and returns a `ClusterGraphSnapshot` whose
/// reads filter the journal and spans by that epoch.
///
/// ## Threading model
///
/// Single writer, many snapshot readers. Until the first `Snapshot()` call
/// the graph takes no locks at all (the single-threaded fast path is
/// unchanged). The first `Snapshot()` flips the graph into snapshot mode:
/// from then on mutations (`Add`, `EnsureObjects`, `Reset`) take the
/// internal lock exclusively and snapshot reads take it shared. Live reads
/// stay lock-free: the non-const overloads compress paths and are
/// writer-thread-only; the const overloads (`Deduce`/`ClusterOf`/
/// `ClusterSize`/`CanonicalClusterId`) never write and are additionally
/// safe from any thread on a *frozen* graph (no concurrent mutator) — the
/// compression-free read path that makes "read" actually mean read.
class ClusterGraph {
 public:
  /// Creates a graph over objects `[0, num_objects)` with no labeled pairs.
  explicit ClusterGraph(int32_t num_objects = 0,
                        ConflictPolicy policy = ConflictPolicy::kKeepFirst);

  /// Deep copy of the logical state. The copy starts outside snapshot mode
  /// with a fresh epoch history rooted at the source's published epoch;
  /// snapshots of the source do not transfer. Copying is safe while the
  /// source has concurrent snapshot readers.
  ClusterGraph(const ClusterGraph& other);
  ClusterGraph& operator=(const ClusterGraph& other);
  ClusterGraph(ClusterGraph&& other) noexcept;
  ClusterGraph& operator=(ClusterGraph&& other) noexcept;

  /// Clears all labels and re-creates `num_objects` singleton clusters.
  /// Invalidates every outstanding snapshot (writer-only, like all
  /// mutations; callers must ensure no reader still holds one).
  void Reset(int32_t num_objects);

  /// Grows the object space to `num_objects`, keeping every labeled pair:
  /// new objects arrive as singleton clusters with no edges. No-op when the
  /// graph already spans that many objects (streaming rounds call this as
  /// each round widens the id range).
  void EnsureObjects(int32_t num_objects);

  /// Decides the pair's label from the labeled pairs (Algorithm 1):
  ///  * same cluster                        -> kMatching
  ///  * different clusters w/ an edge       -> kNonMatching
  ///  * different clusters w/o an edge      -> kUndeduced
  Deduction Deduce(ObjectId a, ObjectId b);

  /// Compression-free `Deduce`: never mutates, safe for concurrent readers
  /// of a frozen graph.
  Deduction Deduce(ObjectId a, ObjectId b) const;

  /// Inserts a labeled pair. Matching labels merge clusters; non-matching
  /// labels add a cluster edge. Returns what happened; conflicts are
  /// counted and resolved per the configured policy.
  AddOutcome Add(ObjectId a, ObjectId b, Label label);

  /// Publishes every mutation applied so far and returns an O(1) snapshot
  /// of the published state. The first call switches the graph into
  /// snapshot mode (mutations start taking the internal lock; see the
  /// class comment). Writer-only.
  ClusterGraphSnapshot Snapshot();

  /// Number of objects the graph was created over.
  int32_t num_objects() const { return union_find_.size(); }

  /// Current number of clusters (including singletons).
  int32_t num_clusters() const { return union_find_.num_sets(); }

  /// Current number of distinct non-matching cluster edges.
  int64_t num_edges() const { return num_edges_; }

  /// Number of conflicting labels seen so far (both kinds).
  int64_t num_conflicts() const {
    return conflicts_matching_ + conflicts_non_matching_;
  }
  /// Conflicts where a matching label hit an existing non-matching edge.
  int64_t conflicts_matching() const { return conflicts_matching_; }
  /// Conflicts where a non-matching label landed inside one cluster.
  int64_t conflicts_non_matching() const { return conflicts_non_matching_; }

  /// Number of cluster merges performed.
  int64_t num_merges() const { return num_merges_; }

  /// The cluster representative of `x`. This is a union-find root: stable
  /// only until the next merge, after which `ClusterOf` may answer a
  /// different id for the same (even untouched) cluster. Never persist or
  /// compare it across merges — use `CanonicalClusterId` for that.
  ObjectId ClusterOf(ObjectId x) { return union_find_.Find(x); }

  /// Compression-free `ClusterOf` for concurrent readers of a frozen graph.
  ObjectId ClusterOf(ObjectId x) const { return union_find_.Find(x); }

  /// The smallest member of `x`'s cluster: a cluster id that is stable
  /// across merges in the only way possible for ids that outlive merges —
  /// two objects have equal canonical ids iff they are in one cluster, and
  /// a cluster's canonical id changes only when it absorbs a cluster with a
  /// smaller canonical id (never because it *won* a merge). Const and
  /// compression-free.
  ObjectId CanonicalClusterId(ObjectId x) const {
    return union_find_.MinMember(x);
  }

  /// Starts (or stops) recording every `Add` call — applied, redundant,
  /// and conflicting alike — into the edge log. Off by default; the log is
  /// the durable form of the graph for checkpointing (see `LoggedEdge`).
  /// Writer-only, like all mutations.
  void SetEdgeLogEnabled(bool enabled) {
    auto lock = MutationLock();
    edge_log_enabled_ = enabled;
  }
  bool edge_log_enabled() const { return edge_log_enabled_; }

  /// The recorded `Add` calls, in order. Writer-thread view.
  const std::vector<LoggedEdge>& edge_log() const { return edge_log_; }

  /// Number of objects in `x`'s cluster.
  int32_t ClusterSize(ObjectId x) { return union_find_.SetSize(x); }

  /// Compression-free `ClusterSize` for concurrent readers of a frozen
  /// graph.
  int32_t ClusterSize(ObjectId x) const { return union_find_.SetSize(x); }

 private:
  friend class ClusterGraphSnapshot;

  // Epoch value meaning "root was never linked" / "edge is still live".
  static constexpr int64_t kNoEpoch = std::numeric_limits<int64_t>::max();

  // One edge incident to a root, as an epoch span: visible at epoch E iff
  // birth <= E < death. Entries are never erased; a fold kills the loser's
  // span and births one under the winner.
  struct EdgeSpan {
    int64_t birth;
    int64_t death;  // kNoEpoch while live
  };
  struct RootEdges {
    std::unordered_map<int32_t, EdgeSpan> spans;
    int32_t live_degree = 0;  // number of live spans
  };

  // Exclusive lock for mutations — engaged only in snapshot mode, so the
  // single-threaded paths never pay for a mutex.
  std::unique_lock<std::shared_mutex> MutationLock() {
    return snapshots_enabled_ ? std::unique_lock<std::shared_mutex>(mu_)
                              : std::unique_lock<std::shared_mutex>();
  }

  // Copies the logical state of `other` (no lock handling; callers lock).
  void CopyStateFrom(const ClusterGraph& other);

  // Shared deduction over resolved roots.
  Deduction DeduceRoots(int32_t ra, int32_t rb) const;

  // Records a live span ra<->rb born at `epoch` (both directions). Returns
  // false (and mutates nothing) when a live span already exists.
  bool AddSpan(int32_t ra, int32_t rb, int64_t epoch);
  // Kills the live span ra<->rb at `epoch` (both directions).
  void KillSpan(int32_t ra, int32_t rb, int64_t epoch);

  // Merges the clusters rooted at ra and rb; returns the surviving root.
  int32_t MergeClusters(int32_t ra, int32_t rb);

  // --- Snapshot read path (callers hold the shared lock) ---
  int32_t RootAtEpoch(int32_t x, int64_t epoch) const;
  int32_t MinMemberAtEpoch(int32_t x, int64_t epoch) const;
  Deduction DeduceAtEpoch(ObjectId a, ObjectId b, int64_t epoch) const;

  UnionFind union_find_;
  ConflictPolicy policy_;
  // Non-matching adjacency with epoch history, keyed by cluster root. Only
  // roots that ever had an incident edge appear. Live-edge queries check
  // `death == kNoEpoch`; snapshot queries filter spans by epoch.
  std::unordered_map<int32_t, RootEdges> edges_;
  int64_t num_edges_ = 0;
  int64_t num_merges_ = 0;
  int64_t conflicts_matching_ = 0;
  int64_t conflicts_non_matching_ = 0;

  // Write-once link journal: when a root loses a merge it records the
  // winner and the epoch, and is never written again (dead roots stay
  // dead). Snapshot finds walk links with epoch <= E.
  std::vector<int32_t> link_parent_;
  std::vector<int64_t> link_epoch_;  // kNoEpoch while still a root
  // Per-root history of canonical-id decreases: (epoch, new min), appended
  // when a merge lowers the winner's smallest member. Binary-searched by
  // snapshot `CanonicalClusterId`.
  std::unordered_map<int32_t, std::vector<std::pair<int64_t, int32_t>>>
      min_history_;

  // Recorded Add calls (see SetEdgeLogEnabled). Cleared by Reset.
  bool edge_log_enabled_ = false;
  std::vector<LoggedEdge> edge_log_;

  int64_t published_epoch_ = 0;
  bool dirty_ = false;  // mutations pending since the last publish
  // Flipped (once) by the first Snapshot(); from then on mutations lock.
  bool snapshots_enabled_ = false;
  mutable std::shared_mutex mu_;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_GRAPH_CLUSTER_GRAPH_H_
