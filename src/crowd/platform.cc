#include "crowd/platform.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace crowdjoin {

CrowdPlatform::CrowdPlatform(const CrowdConfig& config,
                             const GroundTruthOracle* truth)
    : config_(config), truth_(truth), rng_(config.seed) {
  CJ_CHECK(config_.pairs_per_hit >= 1);
  CJ_CHECK(config_.assignments_per_hit >= 1);
  CJ_CHECK(config_.num_workers >= config_.assignments_per_hit);
  BuildWorkerPool();
}

void CrowdPlatform::BuildWorkerPool() {
  auto clamp_rate = [](double rate) {
    return std::clamp(rate, 0.0, 0.95);
  };
  // Regenerate until at least `assignments_per_hit` workers pass the
  // qualification test, so every HIT can be staffed.
  while (true) {
    workers_.clear();
    for (int w = 0; w < config_.num_workers; ++w) {
      Worker worker;
      worker.false_negative_rate = clamp_rate(
          config_.false_negative_rate +
          rng_.Normal(0.0, config_.worker_rate_stddev));
      worker.false_positive_rate = clamp_rate(
          config_.false_positive_rate +
          rng_.Normal(0.0, config_.worker_rate_stddev));
      if (config_.use_qualification_test) {
        // The screening set mixes matching and non-matching pairs; the
        // worker must answer every question correctly to qualify.
        bool passed = true;
        for (int q = 0; q < config_.qualification_questions; ++q) {
          const bool question_is_matching = (q % 2 == 0);
          const double error_rate = question_is_matching
                                        ? worker.false_negative_rate
                                        : worker.false_positive_rate;
          if (rng_.Bernoulli(error_rate)) {
            passed = false;
            break;
          }
        }
        if (!passed) continue;
      }
      workers_.push_back(worker);
    }
    if (static_cast<int>(workers_.size()) >= config_.assignments_per_hit) {
      return;
    }
  }
}

Result<int64_t> CrowdPlatform::PublishHit(std::vector<PairTask> tasks) {
  if (tasks.empty()) {
    return Status::InvalidArgument("cannot publish an empty HIT");
  }
  if (static_cast<int>(tasks.size()) > config_.pairs_per_hit) {
    return Status::InvalidArgument("HIT exceeds pairs_per_hit");
  }
  Hit hit;
  hit.published_at_hours = now_hours_;
  hit.matching_votes.assign(tasks.size(), 0);
  hit.tasks = std::move(tasks);
  hits_.push_back(std::move(hit));
  const int64_t hit_id = static_cast<int64_t>(hits_.size()) - 1;
  ScheduleAssignments();
  return hit_id;
}

void CrowdPlatform::ScheduleAssignments() {
  // Greedy: repeatedly give the earliest-free worker the oldest published
  // HIT they have not yet answered that still needs assignments.
  while (true) {
    // Workers sorted by availability; try each until one can take work.
    std::vector<int> worker_order(workers_.size());
    for (size_t w = 0; w < workers_.size(); ++w) {
      worker_order[w] = static_cast<int>(w);
    }
    std::sort(worker_order.begin(), worker_order.end(), [this](int x, int y) {
      if (workers_[static_cast<size_t>(x)].free_at_hours !=
          workers_[static_cast<size_t>(y)].free_at_hours) {
        return workers_[static_cast<size_t>(x)].free_at_hours <
               workers_[static_cast<size_t>(y)].free_at_hours;
      }
      return x < y;
    });
    // Skip the fully-started prefix of the HIT list (monotone pointer).
    while (first_open_hit_ < hits_.size() &&
           hits_[first_open_hit_].assignments_started >=
               config_.assignments_per_hit) {
      ++first_open_hit_;
    }
    bool assigned = false;
    for (int w : worker_order) {
      for (size_t h = first_open_hit_; h < hits_.size(); ++h) {
        Hit& hit = hits_[h];
        if (hit.assignments_started >= config_.assignments_per_hit) continue;
        if (hit.workers_used.contains(w)) continue;
        // Start after the worker frees up and the HIT exists; the pickup
        // delay models the task sitting unnoticed on the platform.
        const double pickup = rng_.Exponential(config_.mean_pickup_hours);
        const double service_mu =
            std::log(config_.mean_service_hours) -
            0.5 * config_.service_sigma * config_.service_sigma;
        const double service =
            rng_.LogNormal(service_mu, config_.service_sigma);
        const double start =
            std::max(workers_[static_cast<size_t>(w)].free_at_hours,
                     hit.published_at_hours) +
            pickup;
        AssignmentEvent event;
        event.completes_at_hours = start + service;
        event.worker = w;
        event.hit_id = static_cast<int64_t>(h);
        events_.push(event);
        workers_[static_cast<size_t>(w)].free_at_hours =
            event.completes_at_hours;
        hit.workers_used.insert(w);
        ++hit.assignments_started;
        assigned = true;
        break;
      }
      if (assigned) break;
    }
    if (!assigned) return;
  }
}

std::optional<int64_t> CrowdPlatform::CompleteAssignment(
    const AssignmentEvent& event) {
  Hit& hit = hits_[static_cast<size_t>(event.hit_id)];
  const Worker& worker = workers_[static_cast<size_t>(event.worker)];
  for (size_t t = 0; t < hit.tasks.size(); ++t) {
    const PairTask& task = hit.tasks[t];
    const Label real = truth_->Truth(task.a, task.b);
    Label answer = real;
    if (real == Label::kMatching) {
      if (rng_.Bernoulli(worker.false_negative_rate)) {
        answer = Label::kNonMatching;
      }
    } else if (rng_.Bernoulli(worker.false_positive_rate)) {
      answer = Label::kMatching;
    }
    if (answer == Label::kMatching) ++hit.matching_votes[t];
  }
  ++hit.assignments_done;
  ++num_assignments_completed_;
  if (hit.assignments_done == config_.assignments_per_hit) {
    return event.hit_id;
  }
  return std::nullopt;
}

std::optional<HitResult> CrowdPlatform::RunUntilNextHitCompletion() {
  while (!events_.empty()) {
    const AssignmentEvent event = events_.top();
    events_.pop();
    now_hours_ = std::max(now_hours_, event.completes_at_hours);
    const std::optional<int64_t> done_hit = CompleteAssignment(event);
    ScheduleAssignments();
    if (!done_hit.has_value()) continue;
    ++num_hits_completed_;
    const Hit& hit = hits_[static_cast<size_t>(*done_hit)];
    HitResult result;
    result.hit_id = *done_hit;
    result.completed_at_hours = now_hours_;
    result.pairs.reserve(hit.tasks.size());
    for (size_t t = 0; t < hit.tasks.size(); ++t) {
      // Majority vote; an even split counts as non-matching.
      const bool matching =
          2 * hit.matching_votes[t] > config_.assignments_per_hit;
      result.pairs.push_back(
          {hit.tasks[t].position,
           matching ? Label::kMatching : Label::kNonMatching});
    }
    return result;
  }
  return std::nullopt;
}

}  // namespace crowdjoin
