#include "graph/overlay_graph.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace crowdjoin {

OverlayClusterGraph::OverlayClusterGraph(const ClusterGraphSnapshot* base,
                                         ConflictPolicy policy)
    : base_(base), policy_(policy) {
  CJ_CHECK(base_ != nullptr && base_->valid());
}

int32_t OverlayClusterGraph::BaseRoot(ObjectId x) {
  auto [it, inserted] = base_root_memo_.try_emplace(x, 0);
  if (inserted) it->second = base_->ClusterOf(x);
  return it->second;
}

int32_t OverlayClusterGraph::OverlayRoot(int32_t base_root) {
  int32_t r = base_root;
  auto it = parent_.find(r);
  while (it != parent_.end()) {
    r = it->second;
    it = parent_.find(r);
  }
  // Compress the walked path.
  int32_t x = base_root;
  while (x != r) {
    auto step = parent_.find(x);
    const int32_t next = step->second;
    step->second = r;
    x = next;
  }
  return r;
}

bool OverlayClusterGraph::HasOverlayEdge(int32_t ra, int32_t rb) const {
  auto it = added_edges_.find(ra);
  return it != added_edges_.end() && it->second.contains(rb);
}

bool OverlayClusterGraph::HasBaseEdge(const int32_t* group_a, size_t na,
                                      const int32_t* group_b,
                                      size_t nb) const {
  for (size_t i = 0; i < na; ++i) {
    for (size_t j = 0; j < nb; ++j) {
      if (deleted_base_edges_.contains(PackPair(group_a[i], group_b[j]))) {
        continue;
      }
      // Both are base roots, so snapshot Deduce is exactly "did the base
      // have an edge between these clusters".
      if (base_->Deduce(group_a[i], group_b[j]) == Deduction::kNonMatching) {
        return true;
      }
    }
  }
  return false;
}

std::pair<const int32_t*, size_t> OverlayClusterGraph::GroupOf(
    const int32_t& r) const {
  auto it = groups_.find(r);
  if (it == groups_.end()) return {&r, 1};
  return {it->second.data(), it->second.size()};
}

bool OverlayClusterGraph::HasEdge(int32_t ra, int32_t rb) const {
  if (HasOverlayEdge(ra, rb)) return true;
  const auto [pa, na] = GroupOf(ra);
  const auto [pb, nb] = GroupOf(rb);
  return HasBaseEdge(pa, na, pb, nb);
}

void OverlayClusterGraph::DeleteEdge(int32_t ra, int32_t rb) {
  // ClusterGraph holds exactly one (collapsed) edge between two cluster
  // roots; in overlay terms that edge may be witnessed by an overlay add
  // and/or by several surviving base edges between the two groups. Drop
  // every witness.
  if (auto it = added_edges_.find(ra); it != added_edges_.end()) {
    it->second.erase(rb);
  }
  if (auto it = added_edges_.find(rb); it != added_edges_.end()) {
    it->second.erase(ra);
  }
  const auto [pa, na] = GroupOf(ra);
  const auto [pb, nb] = GroupOf(rb);
  std::vector<uint64_t> newly_deleted;
  for (size_t i = 0; i < na; ++i) {
    for (size_t j = 0; j < nb; ++j) {
      const uint64_t key = PackPair(pa[i], pb[j]);
      if (deleted_base_edges_.contains(key)) continue;
      if (base_->Deduce(pa[i], pb[j]) == Deduction::kNonMatching) {
        newly_deleted.push_back(key);
      }
    }
  }
  // Inserted after the scan: the group views point into `groups_`, which
  // must not be touched mid-scan (and deleted_base_edges_ inserts are
  // fine, but keep the loop read-only for clarity).
  deleted_base_edges_.insert(newly_deleted.begin(), newly_deleted.end());
}

void OverlayClusterGraph::Merge(int32_t ra, int32_t rb) {
  // Which root survives is unobservable through this interface (Deduce,
  // Add outcomes, and conflict counts are representative-independent), so
  // pick the larger base-root group for small-to-large concatenation.
  auto it_a = groups_.find(ra);
  auto it_b = groups_.find(rb);
  const size_t na = it_a == groups_.end() ? 1 : it_a->second.size();
  const size_t nb = it_b == groups_.end() ? 1 : it_b->second.size();
  int32_t winner = ra;
  int32_t loser = rb;
  if (nb > na) {
    winner = rb;
    loser = ra;
  }
  parent_[loser] = winner;

  std::vector<int32_t> loser_group;
  if (auto it = groups_.find(loser); it != groups_.end()) {
    loser_group = std::move(it->second);
    groups_.erase(it);
  } else {
    loser_group.push_back(loser);
  }
  {
    std::vector<int32_t>& winner_group = groups_[winner];
    if (winner_group.empty()) winner_group.push_back(winner);
    winner_group.insert(winner_group.end(), loser_group.begin(),
                        loser_group.end());
  }

  // Fold the loser's overlay adjacency under the winner's key. The caller
  // guarantees no edge between winner and loser, so nbr != winner.
  std::vector<int32_t> neighbors;
  if (auto it = added_edges_.find(loser); it != added_edges_.end()) {
    neighbors.assign(it->second.begin(), it->second.end());
    added_edges_.erase(it);
  }
  for (int32_t nbr : neighbors) {
    added_edges_[nbr].erase(loser);
    added_edges_[nbr].insert(winner);
    added_edges_[winner].insert(nbr);
  }
}

Deduction OverlayClusterGraph::Deduce(ObjectId a, ObjectId b) {
  const int32_t ra = OverlayRoot(BaseRoot(a));
  const int32_t rb = OverlayRoot(BaseRoot(b));
  if (ra == rb) return Deduction::kMatching;
  return HasEdge(ra, rb) ? Deduction::kNonMatching : Deduction::kUndeduced;
}

AddOutcome OverlayClusterGraph::Add(ObjectId a, ObjectId b, Label label) {
  CJ_CHECK(a != b);
  const int32_t ra = OverlayRoot(BaseRoot(a));
  const int32_t rb = OverlayRoot(BaseRoot(b));

  if (label == Label::kMatching) {
    if (ra == rb) return AddOutcome::kRedundant;
    if (HasEdge(ra, rb)) {
      ++local_conflicts_;
      if (policy_ == ConflictPolicy::kKeepFirst) return AddOutcome::kConflict;
      DeleteEdge(ra, rb);
      Merge(ra, rb);
      return AddOutcome::kConflict;
    }
    Merge(ra, rb);
    return AddOutcome::kApplied;
  }

  // Non-matching label.
  if (ra == rb) {
    ++local_conflicts_;
    return AddOutcome::kConflict;
  }
  if (HasEdge(ra, rb)) return AddOutcome::kRedundant;
  added_edges_[ra].insert(rb);
  added_edges_[rb].insert(ra);
  return AddOutcome::kApplied;
}

}  // namespace crowdjoin
