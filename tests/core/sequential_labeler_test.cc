#include "core/sequential_labeler.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/labeling_order.h"
#include "tests/core/test_fixtures.h"

namespace crowdjoin {
namespace {

using testing_fixtures::Figure3Pairs;
using testing_fixtures::Figure3Truth;
using testing_fixtures::MakeRandomInstance;

std::vector<int32_t> IdentityOrder(size_t n) {
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

TEST(SequentialLabeler, IntroExampleOrderMatters) {
  // Section 3.1: pairs (o1,o2)=M, (o2,o3)=N, (o1,o3)=N.
  const CandidateSet pairs = {{0, 1, 0.9}, {1, 2, 0.5}, {0, 2, 0.4}};
  GroundTruthOracle truth({0, 0, 1});

  // Order w = <(o1,o2),(o2,o3),(o1,o3)> crowdsources two pairs.
  GroundTruthOracle oracle1 = truth;
  const LabelingResult good =
      SequentialLabeler().Run(pairs, {0, 1, 2}, oracle1).value();
  EXPECT_EQ(good.num_crowdsourced, 2);
  EXPECT_EQ(good.num_deduced, 1);
  EXPECT_EQ(good.outcomes[2].source, LabelSource::kDeduced);
  EXPECT_EQ(good.outcomes[2].label, Label::kNonMatching);

  // Order w' = <(o2,o3),(o1,o3),(o1,o2)> crowdsources all three.
  GroundTruthOracle oracle2 = truth;
  const LabelingResult bad =
      SequentialLabeler().Run(pairs, {1, 2, 0}, oracle2).value();
  EXPECT_EQ(bad.num_crowdsourced, 3);
  EXPECT_EQ(bad.num_deduced, 0);
}

TEST(SequentialLabeler, Figure3OptimalOrderCrowdsourcesSix) {
  // Example 2: six is the optimal number of crowdsourced pairs.
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle truth = Figure3Truth();
  const std::vector<int32_t> order =
      MakeLabelingOrder(pairs, OrderKind::kOptimal, &truth, nullptr).value();
  GroundTruthOracle oracle = truth;
  const LabelingResult result =
      SequentialLabeler().Run(pairs, order, oracle).value();
  EXPECT_EQ(result.num_crowdsourced, 6);
  EXPECT_EQ(result.num_deduced, 2);
}

TEST(SequentialLabeler, Figure3ExpectedOrderCrowdsourcesSix) {
  // The likelihood order p1..p8 also achieves six on this instance.
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle truth = Figure3Truth();
  GroundTruthOracle oracle = truth;
  const LabelingResult result =
      SequentialLabeler().Run(pairs, IdentityOrder(pairs.size()), oracle)
          .value();
  EXPECT_EQ(result.num_crowdsourced, 6);
  // p4 deduced matching from p1,p2; p8 deduced non-matching from p5,p6.
  EXPECT_EQ(result.outcomes[3].source, LabelSource::kDeduced);
  EXPECT_EQ(result.outcomes[3].label, Label::kMatching);
  EXPECT_EQ(result.outcomes[7].source, LabelSource::kDeduced);
  EXPECT_EQ(result.outcomes[7].label, Label::kNonMatching);
}

TEST(SequentialLabeler, AllLabelsAgreeWithTruth) {
  const auto instance = MakeRandomInstance(7, 30, 6, 120);
  GroundTruthOracle truth(instance.entity_of);
  GroundTruthOracle oracle = truth;
  const LabelingResult result =
      SequentialLabeler()
          .Run(instance.pairs, IdentityOrder(instance.pairs.size()), oracle)
          .value();
  for (size_t i = 0; i < instance.pairs.size(); ++i) {
    EXPECT_EQ(result.outcomes[i].label,
              truth.Truth(instance.pairs[i].a, instance.pairs[i].b))
        << "pair " << i;
  }
  EXPECT_EQ(result.num_crowdsourced + result.num_deduced,
            static_cast<int64_t>(instance.pairs.size()));
  EXPECT_EQ(result.num_conflicts, 0);
}

TEST(SequentialLabeler, OracleQueriedOncePerCrowdsourcedPair) {
  const auto instance = MakeRandomInstance(11, 20, 4, 60);
  GroundTruthOracle oracle(instance.entity_of);
  const LabelingResult result =
      SequentialLabeler()
          .Run(instance.pairs, IdentityOrder(instance.pairs.size()), oracle)
          .value();
  EXPECT_EQ(oracle.num_queries(), result.num_crowdsourced);
}

TEST(SequentialLabeler, EmptyInput) {
  GroundTruthOracle oracle({});
  const LabelingResult result =
      SequentialLabeler().Run({}, {}, oracle).value();
  EXPECT_EQ(result.num_crowdsourced, 0);
  EXPECT_EQ(result.num_deduced, 0);
  EXPECT_TRUE(result.outcomes.empty());
}

TEST(SequentialLabeler, RejectsNonPermutationOrders) {
  const CandidateSet pairs = {{0, 1, 0.5}, {1, 2, 0.5}};
  GroundTruthOracle oracle({0, 0, 0});
  EXPECT_EQ(SequentialLabeler().Run(pairs, {0}, oracle).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SequentialLabeler().Run(pairs, {0, 0}, oracle).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SequentialLabeler().Run(pairs, {0, 5}, oracle).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SequentialLabeler().Run(pairs, {0, -1}, oracle).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SequentialLabeler, DuplicateCandidatePairSecondIsDeduced) {
  const CandidateSet pairs = {{0, 1, 0.9}, {0, 1, 0.8}};
  GroundTruthOracle oracle({0, 0});
  const LabelingResult result =
      SequentialLabeler().Run(pairs, {0, 1}, oracle).value();
  EXPECT_EQ(result.num_crowdsourced, 1);
  EXPECT_EQ(result.outcomes[1].source, LabelSource::kDeduced);
  EXPECT_EQ(result.outcomes[1].label, Label::kMatching);
}

// Worst order on a single k-clique of matching objects still needs k-1
// crowdsourced pairs; optimal achieves the same (all pairs matching).
TEST(SequentialLabeler, CliqueNeedsSpanningTreeOnly) {
  CandidateSet pairs;
  constexpr int32_t kK = 10;
  for (int32_t a = 0; a < kK; ++a) {
    for (int32_t b = a + 1; b < kK; ++b) pairs.push_back({a, b, 0.9});
  }
  GroundTruthOracle oracle(std::vector<int32_t>(kK, 0));
  const LabelingResult result =
      SequentialLabeler().Run(pairs, IdentityOrder(pairs.size()), oracle)
          .value();
  EXPECT_EQ(result.num_crowdsourced, kK - 1);
  EXPECT_EQ(result.num_deduced,
            static_cast<int64_t>(pairs.size()) - (kK - 1));
}

}  // namespace
}  // namespace crowdjoin
