#include "text/edit_distance.h"

#include <algorithm>
#include <vector>

#include "common/macros.h"

namespace crowdjoin {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  if (b.empty()) return a.size();
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];  // D[i-1][j-1]
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t up = row[j];  // D[i-1][j]
      const size_t substitute = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j - 1] + 1, up + 1, substitute});
      diag = up;
    }
  }
  return row[b.size()];
}

size_t BoundedLevenshtein(std::string_view a, std::string_view b,
                          size_t max_dist) {
  if (a.size() < b.size()) std::swap(a, b);  // b is the shorter string
  if (a.size() - b.size() > max_dist) return max_dist + 1;
  if (b.empty()) return a.size();  // <= max_dist by the size check above
  const size_t k = max_dist;
  const size_t m = b.size();
  const size_t inf = k + 1;  // any band-exterior cell is at least this
  std::vector<size_t> row(m + 1, inf);
  for (size_t j = 0; j <= std::min(m, k); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    const size_t lo = i > k ? i - k : 1;
    const size_t hi = std::min(m, i + k);
    // Entering the loop, row[] holds D[i-1][*] within row i-1's band and
    // `inf` outside it; `diag`/`left` walk D[i-1][j-1] and D[i][j-1].
    size_t diag = row[lo - 1];
    size_t left = inf;
    if (lo == 1) {
      left = i <= k ? i : inf;  // D[i][0] = i, valid only inside the band
      row[0] = left;
    } else {
      row[lo - 1] = inf;  // left band edge fell off this row
    }
    size_t best = inf;
    for (size_t j = lo; j <= hi; ++j) {
      const size_t up = row[j];
      size_t value = std::min(
          {left + 1, up + 1, diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      if (value > inf) value = inf;
      row[j] = value;
      left = value;
      diag = up;
      best = std::min(best, value);
    }
    if (hi < m) row[hi + 1] = inf;  // right band edge for the next row
    if (best >= inf) return inf;    // the whole band exceeded the bound
  }
  return row[m];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t match_window =
      std::max(a.size(), b.size()) / 2 == 0
          ? 0
          : std::max(a.size(), b.size()) / 2 - 1;
  std::vector<bool> a_matched(a.size(), false);
  std::vector<bool> b_matched(b.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const size_t lo = i > match_window ? i - match_window : 0;
    const size_t hi = std::min(b.size(), i + match_window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_matched[j] || a[i] != b[j]) continue;
      a_matched[i] = true;
      b_matched[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (a[i] != b[j]) ++transpositions;
    ++j;
  }
  const double m = static_cast<double>(matches);
  return (m / static_cast<double>(a.size()) +
          m / static_cast<double>(b.size()) +
          (m - static_cast<double>(transpositions) / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b,
                             double prefix_scale) {
  CJ_CHECK(prefix_scale >= 0.0 && prefix_scale <= 0.25);
  const double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  const size_t max_prefix = std::min<size_t>({4, a.size(), b.size()});
  while (prefix < max_prefix && a[prefix] == b[prefix]) ++prefix;
  return jaro + static_cast<double>(prefix) * prefix_scale * (1.0 - jaro);
}

}  // namespace crowdjoin
