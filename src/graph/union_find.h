#ifndef CROWDJOIN_GRAPH_UNION_FIND_H_
#define CROWDJOIN_GRAPH_UNION_FIND_H_

#include <cstdint>
#include <vector>

namespace crowdjoin {

/// \brief Disjoint-set forest (Tarjan [20] in the paper) with path halving
/// and union by size.
///
/// The ClusterGraph uses this to maintain clusters of matching objects.
/// `UnionInto` additionally lets a caller dictate which root survives a
/// merge — the ClusterGraph uses it to keep the root with the larger
/// non-matching edge set alive (small-to-large edge merging).
///
/// Thread hygiene: the non-const `Find`/`Same`/`SetSize` overloads compress
/// paths, so every "read" through them writes `parent_`. The const
/// overloads walk the forest without compressing and never write — they are
/// safe for concurrent use on a frozen structure (no concurrent mutator),
/// at the cost of longer walks on uncompressed paths.
class UnionFind {
 public:
  /// Creates `n` singleton sets with ids `[0, n)`.
  explicit UnionFind(int32_t n = 0);

  /// Discards all sets and re-creates `n` singletons.
  void Reset(int32_t n);

  /// Grows the universe to `n` elements by appending singletons, keeping
  /// every existing set intact. No-op when `n <= size()`. This is what lets
  /// streaming consumers widen the object space round by round.
  void Grow(int32_t n);

  /// Returns the representative of `x`'s set; compresses paths (halving).
  int32_t Find(int32_t x);

  /// Compression-free representative lookup: never mutates, safe for
  /// concurrent readers of a frozen forest.
  int32_t Find(int32_t x) const;

  /// Merges the sets of `a` and `b` by size. Returns the surviving root.
  /// A no-op returning the common root when already joined.
  int32_t Union(int32_t a, int32_t b);

  /// Merges `loser`'s set into `winner`'s set, keeping `winner`'s root.
  /// `winner` and `loser` must be roots of distinct sets.
  void UnionInto(int32_t winner, int32_t loser);

  /// True iff `a` and `b` are in the same set (compressing).
  bool Same(int32_t a, int32_t b);

  /// Compression-free `Same` for concurrent readers of a frozen forest.
  bool Same(int32_t a, int32_t b) const;

  /// Number of elements in `x`'s set (compressing).
  int32_t SetSize(int32_t x);

  /// Compression-free `SetSize` for concurrent readers of a frozen forest.
  int32_t SetSize(int32_t x) const;

  /// Smallest element id in `x`'s set — a cluster id that survives merges
  /// monotonically (it can only decrease when the set absorbs a smaller
  /// member), unlike the representative returned by `Find`, which is an
  /// arbitrary root that changes whenever the set loses a union.
  /// Compression-free and const.
  int32_t MinMember(int32_t x) const;

  /// Current number of disjoint sets.
  int32_t num_sets() const { return num_sets_; }

  /// Total number of elements.
  int32_t size() const { return static_cast<int32_t>(parent_.size()); }

 private:
  std::vector<int32_t> parent_;
  std::vector<int32_t> size_;
  // min_[r] is the smallest member of r's set; meaningful only at roots.
  std::vector<int32_t> min_;
  int32_t num_sets_ = 0;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_GRAPH_UNION_FIND_H_
