#include "core/parallel_labeler.h"

#include "common/macros.h"

namespace crowdjoin {

LabelingSession ParallelLabeler::MakeSession() const {
  LabelingSessionOptions options;
  options.schedule = SchedulePolicy::kRoundParallel;
  options.conflict_policy = policy_;
  options.num_threads = num_threads_;
  return LabelingSession(options);
}

Result<LabelingResult> ParallelLabeler::Run(const CandidateSet& pairs,
                                            const std::vector<int32_t>& order,
                                            LabelOracle& oracle) const {
  LabelingSession session = MakeSession();
  CJ_ASSIGN_OR_RETURN(const LabelingReport report,
                      session.Run(pairs, order, oracle));
  return report.ToLabelingResult();
}

Result<LabelingResult> ParallelLabeler::RunWithBatchSource(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    const BatchLabelFn& label_batch) const {
  LabelingSession session = MakeSession();
  CJ_ASSIGN_OR_RETURN(const LabelingReport report,
                      session.RunWithBatchSource(pairs, order, label_batch));
  return report.ToLabelingResult();
}

}  // namespace crowdjoin
