#ifndef CROWDJOIN_CORE_PARALLEL_LABELER_H_
#define CROWDJOIN_CORE_PARALLEL_LABELER_H_

#include <vector>

#include "common/result.h"
#include "core/candidate.h"
#include "core/labeling_result.h"
#include "core/labeling_session.h"
#include "core/oracle.h"
#include "graph/cluster_graph.h"

namespace crowdjoin {

/// \brief The round-based parallel labeling algorithm of Section 5.1
/// (Algorithm 2).
///
/// Each round publishes every must-crowdsource pair at once, obtains all
/// their labels, then deduces every pair that became deducible, and repeats
/// until all pairs are labeled. The crowdsourced pair *set* is identical to
/// the sequential labeler's on the same order; only the number of rounds
/// differs (Figures 13–14).
///
/// Thin wrapper over `LabelingSession` (round-parallel schedule, unbounded
/// stop, transitive rule). `ParallelCrowdsourcedPairs` and `BatchLabelFn`
/// now live in core/labeling_session.h (re-exported through this header).
///
/// **Threading & determinism contract.** With `num_threads > 1`, `Run`
/// crowdsources each batch across that many `ThreadPool` workers. The
/// calls of a batch are independent by construction (that is what makes
/// the batch publishable at once), and their answers are merged back by
/// batch position on the calling thread before the deduction scan, so the
/// `LabelingResult` — outcomes, per-iteration batch sizes, crowdsourced /
/// deduced counts, conflicts — is identical for every thread count,
/// provided the oracle is batch-safe (see `LabelOracle`).
class ParallelLabeler {
 public:
  /// `num_threads` is the worker count used by `Run`'s oracle fan-out;
  /// values <= 1 keep every oracle call on the calling thread, in batch
  /// order (safe for any oracle, even order-dependent ones).
  explicit ParallelLabeler(ConflictPolicy policy = ConflictPolicy::kKeepFirst,
                           int num_threads = 1)
      : policy_(policy), num_threads_(num_threads) {}

  /// Runs rounds until every pair is labeled, resolving each batch through
  /// `oracle` (in parallel when `num_threads` > 1).
  /// `crowdsourced_per_iteration` in the result holds the batch size of
  /// every round.
  Result<LabelingResult> Run(const CandidateSet& pairs,
                             const std::vector<int32_t>& order,
                             LabelOracle& oracle) const;

  /// The same round engine with label resolution delegated to
  /// `label_batch` — the building block for crowd-platform publication
  /// strategies that answer a whole batch at once. `num_threads` is not
  /// consulted here; the batch source owns its own parallelism.
  Result<LabelingResult> RunWithBatchSource(
      const CandidateSet& pairs, const std::vector<int32_t>& order,
      const BatchLabelFn& label_batch) const;

  int num_threads() const { return num_threads_; }

 private:
  LabelingSession MakeSession() const;

  ConflictPolicy policy_;
  int num_threads_ = 1;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_CORE_PARALLEL_LABELER_H_
