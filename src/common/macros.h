#ifndef CROWDJOIN_COMMON_MACROS_H_
#define CROWDJOIN_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

/// Propagates a non-OK Status to the caller.
#define CJ_RETURN_IF_ERROR(expr)                    \
  do {                                              \
    ::crowdjoin::Status cj_status_ = (expr);        \
    if (!cj_status_.ok()) return cj_status_;        \
  } while (false)

#define CJ_MACRO_CONCAT_INNER(a, b) a##b
#define CJ_MACRO_CONCAT(a, b) CJ_MACRO_CONCAT_INNER(a, b)

/// Evaluates a Result<T> expression; on error returns the Status, otherwise
/// move-assigns the value into `lhs` (which may be a declaration).
#define CJ_ASSIGN_OR_RETURN(lhs, expr)                                \
  CJ_ASSIGN_OR_RETURN_IMPL(CJ_MACRO_CONCAT(cj_result_, __LINE__), lhs, expr)

#define CJ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                             \
  if (!tmp.ok()) return tmp.status();            \
  lhs = std::move(tmp).value()

/// Aborts the process with a message when `cond` is false. Used for
/// programming errors (invariant violations), never for data errors.
#define CJ_CHECK(cond)                                                       \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CJ_CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#endif  // CROWDJOIN_COMMON_MACROS_H_
