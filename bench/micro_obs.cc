// Microbenchmark pinning the cost of the observability layer itself:
// counter increments, histogram observations, and spans, each measured
// enabled and disabled. The disabled numbers are the overhead every
// instrumented hot path pays when nobody asked for metrics, so they are
// the contract (one relaxed load + branch); the enabled numbers bound the
// cost of flipping instrumentation on in production. Results feed the
// "Observability" table in bench/BASELINES.md.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/tracing.h"

namespace crowdjoin::obs {
namespace {

MetricsRegistry& BenchRegistry(bool enabled) {
  static MetricsRegistry* const registry = new MetricsRegistry();
  registry->SetEnabled(enabled);
  return *registry;
}

void BM_CounterInc(benchmark::State& state) {
  MetricsRegistry& registry = BenchRegistry(state.range(0) != 0);
  Counter* counter = registry.GetCounter("bench.counter_total");
  for (auto _ : state) {
    counter->Inc();
  }
  benchmark::DoNotOptimize(counter->Value());
}
BENCHMARK(BM_CounterInc)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("enabled");

// The striped-slot design exists for this case: concurrent writers to one
// hot counter must not serialize on a single cache line.
void BM_CounterIncContended(benchmark::State& state) {
  MetricsRegistry& registry = BenchRegistry(true);
  Counter* counter = registry.GetCounter("bench.contended_total");
  for (auto _ : state) {
    counter->Inc();
  }
  benchmark::DoNotOptimize(counter->Value());
}
BENCHMARK(BM_CounterIncContended)->Threads(2)->Threads(4);

void BM_HistogramObserve(benchmark::State& state) {
  MetricsRegistry& registry = BenchRegistry(state.range(0) != 0);
  Histogram* hist = registry.GetHistogram("bench.latency_us");
  int64_t value = 0;
  for (auto _ : state) {
    hist->Observe(value++ & 0xFFF);
  }
  benchmark::DoNotOptimize(hist->Count());
}
BENCHMARK(BM_HistogramObserve)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("enabled");

// ScopedLatencyUs adds two clock reads on top of the Observe.
void BM_ScopedLatencyUs(benchmark::State& state) {
  MetricsRegistry& registry = BenchRegistry(state.range(0) != 0);
  Histogram* hist = registry.GetHistogram("bench.scoped_latency_us");
  for (auto _ : state) {
    ScopedLatencyUs timer(hist);
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(hist->Count());
}
BENCHMARK(BM_ScopedLatencyUs)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("enabled");

void BM_Span(benchmark::State& state) {
  static TraceRecorder* const recorder = new TraceRecorder();
  recorder->SetEnabled(state.range(0) != 0);
  for (auto _ : state) {
    Span span("bench.span", "bench", recorder);
    benchmark::ClobberMemory();
  }
  if (state.thread_index() == 0) recorder->Clear();
}
BENCHMARK(BM_Span)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("enabled");

// Full export pass over a realistically sized registry: what a harness
// pays once at exit for --metrics_json.
void BM_SnapshotToJson(benchmark::State& state) {
  static MetricsRegistry* const registry = new MetricsRegistry();
  if (registry->Snapshot().counters.empty()) {
    for (int i = 0; i < 16; ++i) {
      registry->GetCounter("bench.c" + std::to_string(i))->Inc(i);
      registry->GetHistogram("bench.h" + std::to_string(i))->Observe(i * 37);
    }
  }
  for (auto _ : state) {
    std::string json = registry->Snapshot().ToJson();
    benchmark::DoNotOptimize(json);
  }
}
BENCHMARK(BM_SnapshotToJson);

}  // namespace
}  // namespace crowdjoin::obs

BENCHMARK_MAIN();
