#ifndef CROWDJOIN_SIMJOIN_PREFIX_FILTER_H_
#define CROWDJOIN_SIMJOIN_PREFIX_FILTER_H_

#include <cmath>
#include <cstddef>

#include "common/status.h"

namespace crowdjoin {

/// ceil(t * len) computed robustly against floating-point error: the
/// smallest candidate size that can still reach Jaccard `threshold`
/// against a document of size `len`.
inline size_t CeilThresholdLength(double threshold, size_t len) {
  return static_cast<size_t>(
      std::ceil(threshold * static_cast<double>(len) - 1e-9));
}

/// floor(len / t): the largest candidate size that can still reach Jaccard
/// `threshold` against a document of size `len`.
inline size_t FloorThresholdLength(double threshold, size_t len) {
  return static_cast<size_t>(
      std::floor(static_cast<double>(len) / threshold + 1e-9));
}

/// Prefix length guaranteeing that two documents with Jaccard >= t share at
/// least one token inside both prefixes (under any common total token
/// order): p = |x| - ceil(t * |x|) + 1. Empty documents get prefix 0 —
/// they take no part in any join (the naive formula would report 1 and
/// send callers reading past an empty token array).
inline size_t PrefixLength(double threshold, size_t len) {
  if (len == 0) return 0;
  const size_t required = CeilThresholdLength(threshold, len);
  return len >= required ? len - required + 1 : 0;
}

/// Shared argument check for every join entry point.
inline Status ValidateJoinThreshold(double threshold) {
  if (!(threshold > 0.0) || threshold > 1.0) {
    return Status::InvalidArgument("similarity threshold must be in (0, 1]");
  }
  return Status::OK();
}

}  // namespace crowdjoin

#endif  // CROWDJOIN_SIMJOIN_PREFIX_FILTER_H_
