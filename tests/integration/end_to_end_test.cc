// Integration tests: the full hybrid human-machine pipeline — dataset
// generation, machine candidate generation, sorting, transitive labeling,
// crowd simulation, and quality evaluation — wired together end to end on
// down-scaled datasets.

#include <gtest/gtest.h>

#include "core/labeling_order.h"
#include "core/parallel_labeler.h"
#include "core/sequential_labeler.h"
#include "crowd/orchestrator.h"
#include "datagen/paper_dataset.h"
#include "datagen/product_dataset.h"
#include "datagen/streaming_generator.h"
#include "eval/metrics.h"
#include "eval/workbench.h"
#include "simjoin/candidate_generator.h"

namespace crowdjoin {
namespace {

CandidateSet SmallPaperCandidates(Dataset* dataset_out) {
  PaperDatasetConfig config;
  config.clusters.total_records = 150;
  config.clusters.max_cluster_size = 25;
  config.seed = 31;
  Dataset dataset = GeneratePaperDataset(config).value();
  RecordScorer scorer = MakePaperScorer();
  scorer.FitTfIdf(dataset.records);
  CandidateGeneratorOptions options;
  options.token_join_threshold = 0.1;
  options.min_likelihood = 0.2;
  CandidateSet candidates =
      GenerateCandidates(dataset.records, nullptr, scorer, options).value();
  *dataset_out = std::move(dataset);
  return candidates;
}

TEST(EndToEnd, PaperPipelinePerfectOracleIsLossless) {
  Dataset dataset;
  const CandidateSet candidates = SmallPaperCandidates(&dataset);
  ASSERT_GT(candidates.size(), 100u);
  GroundTruthOracle truth = MakeGroundTruthOracle(dataset);

  const auto order =
      MakeLabelingOrder(candidates, OrderKind::kExpected, &truth, nullptr)
          .value();
  GroundTruthOracle oracle = truth;
  const LabelingResult result =
      ParallelLabeler().Run(candidates, order, oracle).value();

  // Transitivity must save work on a clustered dataset...
  EXPECT_LT(result.num_crowdsourced,
            static_cast<int64_t>(candidates.size()));
  EXPECT_GT(result.num_deduced, 0);
  // ...without losing any quality under correct answers.
  std::vector<Label> labels;
  for (const auto& outcome : result.outcomes) labels.push_back(outcome.label);
  const QualityMetrics quality = ComputeQuality(candidates, labels, truth);
  EXPECT_DOUBLE_EQ(quality.f_measure, 1.0);
}

TEST(EndToEnd, PaperPipelineThreadedLabelingIsIdenticalAndLossless) {
  // The full machine -> order -> label pipeline with the labeling fanned
  // over a worker pool: byte-identical to the single-threaded run, and
  // still lossless under correct answers.
  Dataset dataset;
  const CandidateSet candidates = SmallPaperCandidates(&dataset);
  GroundTruthOracle truth = MakeGroundTruthOracle(dataset);
  const auto order =
      MakeLabelingOrder(candidates, OrderKind::kExpected, &truth, nullptr)
          .value();

  GroundTruthOracle oracle_single = truth;
  const LabelingResult single =
      ParallelLabeler(ConflictPolicy::kKeepFirst, /*num_threads=*/1)
          .Run(candidates, order, oracle_single)
          .value();
  for (int num_threads : {2, 4, 8}) {
    GroundTruthOracle oracle = truth;
    const LabelingResult threaded =
        ParallelLabeler(ConflictPolicy::kKeepFirst, num_threads)
            .Run(candidates, order, oracle)
            .value();
    ASSERT_TRUE(threaded == single) << "num_threads=" << num_threads;
    EXPECT_EQ(oracle.num_queries(), single.num_crowdsourced);
  }

  std::vector<Label> labels;
  for (const auto& outcome : single.outcomes) labels.push_back(outcome.label);
  EXPECT_DOUBLE_EQ(ComputeQuality(candidates, labels, truth).f_measure, 1.0);
}

TEST(EndToEnd, RoundBasedParallelAmtCampaign) {
  // The round-based (Algorithm 2) publication strategy on the simulated
  // platform: correct final labels, real transitivity savings, and fewer
  // HITs than the publish-everything baseline.
  Dataset dataset;
  const CandidateSet candidates = SmallPaperCandidates(&dataset);
  GroundTruthOracle truth = MakeGroundTruthOracle(dataset);
  const auto order =
      MakeLabelingOrder(candidates, OrderKind::kExpected, &truth, nullptr)
          .value();
  CrowdConfig config;
  config.pairs_per_hit = 10;
  config.num_workers = 10;
  config.seed = 23;
  const AmtRunStats parallel =
      RunParallelAmt(candidates, order, config, truth).value();
  const AmtRunStats baseline =
      RunNonTransitiveAmt(candidates, config, truth).value();
  EXPECT_LT(parallel.num_hits, baseline.num_hits);
  EXPECT_GT(parallel.num_deduced_pairs, 0);
  for (size_t i = 0; i < candidates.size(); ++i) {
    EXPECT_EQ(parallel.final_labels[i],
              truth.Truth(candidates[i].a, candidates[i].b));
  }
}

TEST(EndToEnd, ProductPipelineBipartite) {
  ProductDatasetConfig config;
  config.clusters.total_records = 300;
  config.seed = 32;
  Dataset dataset = GenerateProductDataset(config).value();
  RecordScorer scorer = MakeProductScorer();
  scorer.FitTfIdf(dataset.records);
  CandidateGeneratorOptions options;
  options.token_join_threshold = 0.1;
  options.min_likelihood = 0.2;
  const CandidateSet candidates =
      GenerateCandidates(dataset.records, &dataset.side_of, scorer, options)
          .value();
  ASSERT_GT(candidates.size(), 20u);

  GroundTruthOracle truth = MakeGroundTruthOracle(dataset);
  const auto order =
      MakeLabelingOrder(candidates, OrderKind::kExpected, &truth, nullptr)
          .value();
  GroundTruthOracle oracle = truth;
  const LabelingResult result =
      SequentialLabeler().Run(candidates, order, oracle).value();
  std::vector<Label> labels;
  for (const auto& outcome : result.outcomes) labels.push_back(outcome.label);
  EXPECT_DOUBLE_EQ(ComputeQuality(candidates, labels, truth).f_measure, 1.0);
}

TEST(EndToEnd, CandidateRecallCoversMostTruePairs) {
  // The machine step must not weed out many true matches (the premise of
  // the hybrid workflow).
  Dataset dataset;
  const CandidateSet candidates = SmallPaperCandidates(&dataset);
  GroundTruthOracle truth = MakeGroundTruthOracle(dataset);
  int64_t matching_candidates = 0;
  for (const auto& pair : candidates) {
    if (truth.Truth(pair.a, pair.b) == Label::kMatching) {
      ++matching_candidates;
    }
  }
  const int64_t true_pairs = NumTrueMatchingPairs(dataset);
  EXPECT_GT(static_cast<double>(matching_candidates),
            0.7 * static_cast<double>(true_pairs));
}

TEST(EndToEnd, CrowdCampaignWithErrorsStaysReasonable) {
  Dataset dataset;
  const CandidateSet candidates = SmallPaperCandidates(&dataset);
  GroundTruthOracle truth = MakeGroundTruthOracle(dataset);
  const auto order =
      MakeLabelingOrder(candidates, OrderKind::kExpected, &truth, nullptr)
          .value();
  CrowdConfig config;
  config.pairs_per_hit = 10;
  config.num_workers = 10;
  config.false_negative_rate = 0.15;
  config.false_positive_rate = 0.15;
  config.seed = 17;
  const AmtRunStats transitive =
      RunTransitiveAmt(candidates, order, config, truth).value();
  const AmtRunStats baseline =
      RunNonTransitiveAmt(candidates, config, truth).value();
  EXPECT_LT(transitive.num_hits, baseline.num_hits);
  const QualityMetrics q_transitive =
      ComputeQuality(candidates, transitive.final_labels, truth);
  const QualityMetrics q_baseline =
      ComputeQuality(candidates, baseline.final_labels, truth);
  // Error propagation through deduction costs some quality, but the result
  // must stay in a usable band (the paper saw ~5 points of F-measure).
  EXPECT_GT(q_transitive.f_measure, 0.5);
  EXPECT_GE(q_baseline.f_measure + 0.02, q_transitive.f_measure);
}

TEST(EndToEnd, StreamingCampaignAtScaleFactorTwoIsLossless) {
  // The streaming scale path: stream -> sharded join -> transitive
  // labeling, at 2x paper scale, without materializing a Dataset. With a
  // perfect oracle the final labels must agree with the streamed ground
  // truth everywhere.
  PaperDatasetConfig config;
  config.clusters.total_records = 150;
  config.clusters.max_cluster_size = 25;
  config.seed = 36;
  StreamingPaperSource source(config, /*scale_factor=*/2);

  StreamingCampaignConfig campaign;
  campaign.candidates.token_join_threshold = 0.4;
  campaign.candidates.min_likelihood = 0.4;
  campaign.sharding.num_threads = 2;
  campaign.crowd.num_threads = 2;
  const StreamingCampaignStats stats =
      RunStreamingCampaign(source, /*scorer=*/nullptr, campaign).value();
  EXPECT_EQ(stats.num_records, 300);
  ASSERT_GT(stats.num_candidates, 0);
  EXPECT_GT(stats.labeling.num_deduced, 0);
  EXPECT_LT(stats.labeling.num_crowdsourced, stats.num_candidates);

  const GroundTruthOracle truth(stats.entity_of);
  for (size_t i = 0; i < stats.candidates.size(); ++i) {
    ASSERT_TRUE(stats.labeling.outcomes[i].has_value());
    EXPECT_EQ(stats.labeling.outcomes[i]->label,
              truth.Truth(stats.candidates[i].a, stats.candidates[i].b));
  }
}

TEST(EndToEnd, StreamingCampaignIsThreadCountInvariant) {
  PaperDatasetConfig config;
  config.clusters.total_records = 120;
  config.clusters.max_cluster_size = 20;
  config.seed = 37;

  StreamingCampaignConfig campaign;
  campaign.candidates.token_join_threshold = 0.4;
  campaign.candidates.min_likelihood = 0.4;

  StreamingPaperSource baseline_source(config, /*scale_factor=*/2);
  campaign.sharding.num_threads = 0;
  campaign.sharding.num_shards = 1;
  campaign.crowd.num_threads = 0;
  const StreamingCampaignStats baseline =
      RunStreamingCampaign(baseline_source, nullptr, campaign).value();

  for (int threads : {2, 4}) {
    for (int shards : {3, 16}) {
      StreamingPaperSource source(config, /*scale_factor=*/2);
      campaign.sharding.num_threads = threads;
      campaign.sharding.num_shards = shards;
      campaign.crowd.num_threads = threads;
      const StreamingCampaignStats stats =
          RunStreamingCampaign(source, nullptr, campaign).value();
      ASSERT_TRUE(stats.candidates == baseline.candidates)
          << "threads=" << threads << " shards=" << shards;
      ASSERT_TRUE(stats.labeling == baseline.labeling)
          << "threads=" << threads << " shards=" << shards;
    }
  }
}

TEST(EndToEnd, WorkbenchInputsAreWellFormed) {
  const ExperimentInput paper = MakePaperExperimentInput(77).value();
  EXPECT_EQ(paper.dataset.records.size(), 997u);
  EXPECT_FALSE(paper.candidates.empty());
  const ExperimentInput product = MakeProductExperimentInput(77).value();
  EXPECT_TRUE(product.dataset.bipartite);
  EXPECT_FALSE(product.candidates.empty());
  for (const auto& pair : product.candidates) {
    EXPECT_NE(product.dataset.side_of[static_cast<size_t>(pair.a)],
              product.dataset.side_of[static_cast<size_t>(pair.b)]);
  }
  // Thresholding is monotone.
  EXPECT_GE(FilterByThreshold(paper.candidates, 0.2).size(),
            FilterByThreshold(paper.candidates, 0.4).size());
}

}  // namespace
}  // namespace crowdjoin
