#include "simjoin/similarity_join.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <string_view>

#include "common/macros.h"
#include "simjoin/measure_policy.h"
#include "simjoin/postings_index.h"
#include "simjoin/prefix_filter.h"
#include "text/set_similarity.h"

namespace crowdjoin {

namespace {

using internal::MeasureDocRef;

constexpr size_t kNoMaxSize = std::numeric_limits<size_t>::max();
constexpr auto kNoSkip = [](int32_t) { return false; };

// The sequential join cores are templates over a measure policy
// (measure_policy.h) and three document accessors — raw signature tokens,
// measure size, verification payload — so one body serves the legacy
// vector<vector<int32_t>> Jaccard entry points and the MeasureDoc entry
// points alike. The JaccardPolicy instantiation performs exactly the
// operations the pre-measure code performed (same helpers, same argument
// order, same sweep), keeping Jaccard output byte-identical.

template <typename Policy, typename TokensOf, typename SizeIn,
          typename PayloadOf>
std::vector<ScoredPair> SelfJoinCore(const Policy& policy, size_t n,
                                     TokensOf tokens_of, SizeIn size_in,
                                     PayloadOf payload_of,
                                     const std::vector<int32_t>& ranks,
                                     size_t num_tokens, double threshold) {
  // Process docs in ascending measure size so the size window's lower
  // bound holds for everything already indexed when a probe arrives.
  std::vector<int32_t> by_size(n);
  std::iota(by_size.begin(), by_size.end(), 0);
  std::sort(by_size.begin(), by_size.end(),
            [&size_in](int32_t x, int32_t y) {
              const size_t sx = size_in(static_cast<size_t>(x));
              const size_t sy = size_in(static_cast<size_t>(y));
              if (sx != sy) return sx < sy;
              return x < y;
            });

  // Rank-encoded copies: ascending rank order == rarity order, so
  // prefixes are leading slices and verification merges plain ranks.
  std::vector<std::vector<int32_t>> rank_docs(n);
  std::vector<size_t> sizes(n);
  std::vector<size_t> tok_lens(n);
  std::vector<int32_t> prefix_lens(n);
  std::vector<int32_t> counts(num_tokens, 0);
  for (size_t i = 0; i < n; ++i) {
    RankEncode(tokens_of(i), ranks, rank_docs[i]);
    tok_lens[i] = rank_docs[i].size();
    sizes[i] = size_in(i);
    const size_t prefix =
        policy.PrefixLen(threshold, rank_docs[i].data(), tok_lens[i], sizes[i]);
    prefix_lens[i] = static_cast<int32_t>(prefix);
    for (size_t p = 0; p < prefix; ++p) ++counts[rank_docs[i][p]];
  }

  // The index fills as the sweep passes each document, so every token's
  // postings run ascending in document size — exactly what the gather's
  // binary-searched size window requires. The fallback bucket (measures
  // with incomplete prefixes on short signatures) fills the same way and
  // inherits the same (size, id) order.
  PostingsArena index;
  index.Build(counts);
  const auto size_of = [&sizes](int32_t doc) {
    return sizes[static_cast<size_t>(doc)];
  };
  const auto tok_len_of = [&tok_lens](int32_t doc) {
    return tok_lens[static_cast<size_t>(doc)];
  };
  std::vector<int32_t> fallback;

  std::vector<int32_t> last_seen(n, -1);
  // Scratch candidate buffer, reused across probes: the probe phase only
  // gathers ids + seed positions, and verification runs afterwards as one
  // tight batch.
  std::vector<JoinCandidate> candidates;
  std::vector<ScoredPair> out;

  for (size_t step = 0; step < n; ++step) {
    const int32_t x = by_size[step];
    const auto& rank_x = rank_docs[static_cast<size_t>(x)];
    const size_t tok_len_x = rank_x.size();
    if (tok_len_x == 0) continue;
    const size_t size_x = sizes[static_cast<size_t>(x)];
    const auto prefix_x =
        static_cast<size_t>(prefix_lens[static_cast<size_t>(x)]);
    const size_t min_size_y = policy.MinSize(threshold, size_x);
    const auto required_of = [&policy, threshold, tok_len_x,
                              size_x](size_t cand_size) {
      return policy.Required(threshold, tok_len_x, size_x, cand_size);
    };

    candidates.clear();
    GatherPositionalCandidates(index, rank_x.data(), prefix_x, tok_len_x,
                               min_size_y, kNoMaxSize, x, last_seen, size_of,
                               tok_len_of, required_of, kNoSkip, candidates);
    if constexpr (Policy::kUsesFallback) {
      // Unfilterable probes may qualify against unfilterable indexed docs
      // while sharing no signature token; the bucket closes that gap.
      // Shared last_seen keeps postings-found docs from re-emitting.
      if (policy.Unfilterable(threshold, tok_len_x, size_x)) {
        GatherFallbackCandidates(fallback, min_size_y, kNoMaxSize, x,
                                 last_seen, size_of, kNoSkip, candidates);
      }
    }
    const MeasureDocRef probe_ref{rank_x.data(), tok_len_x, size_x,
                                  payload_of(static_cast<size_t>(x))};
    for (const JoinCandidate& cand : candidates) {
      const auto& rank_y = rank_docs[static_cast<size_t>(cand.doc)];
      const MeasureDocRef cand_ref{rank_y.data(), rank_y.size(),
                                   sizes[static_cast<size_t>(cand.doc)],
                                   payload_of(static_cast<size_t>(cand.doc))};
      const double score =
          policy.Verify(probe_ref, cand_ref, static_cast<size_t>(cand.probe_pos),
                        static_cast<size_t>(cand.index_pos), threshold);
      if (score + 1e-12 >= threshold) {
        out.push_back({std::min(x, cand.doc), std::max(x, cand.doc), score});
      }
    }
    for (size_t p = 0; p < prefix_x; ++p) {
      index.Append(rank_x[p], x, static_cast<int32_t>(p));
    }
    if constexpr (Policy::kUsesFallback) {
      if (policy.Unfilterable(threshold, tok_len_x, size_x)) {
        fallback.push_back(x);  // sweep order keeps (size, id) ascending
      }
    }
  }
  SortByPairOrder(out);
  return out;
}

template <typename Policy, typename LeftTokensOf, typename LeftSizeIn,
          typename LeftPayloadOf, typename RightTokensOf, typename RightSizeIn,
          typename RightPayloadOf>
std::vector<ScoredPair> BipartiteJoinCore(
    const Policy& policy, size_t n_left, LeftTokensOf left_tokens_of,
    LeftSizeIn left_size_in, LeftPayloadOf left_payload_of, size_t n_right,
    RightTokensOf right_tokens_of, RightSizeIn right_size_in,
    RightPayloadOf right_payload_of, const std::vector<int32_t>& ranks,
    size_t num_tokens, double threshold) {
  // Rank-encode and index the left side's prefixes; the shared builder
  // fills each token's postings in ascending (size, id) order so the
  // probe side can binary-search its [min_size, max_size] window.
  std::vector<std::vector<int32_t>> left_ranks(n_left);
  std::vector<size_t> sizes(n_left);
  std::vector<size_t> tok_lens(n_left);
  std::vector<int32_t> prefix_lens(n_left);
  for (size_t i = 0; i < n_left; ++i) {
    RankEncode(left_tokens_of(i), ranks, left_ranks[i]);
    tok_lens[i] = left_ranks[i].size();
    sizes[i] = left_size_in(i);
    prefix_lens[i] = static_cast<int32_t>(policy.PrefixLen(
        threshold, left_ranks[i].data(), tok_lens[i], sizes[i]));
  }
  PostingsArena index;
  BuildLengthOrderedPostings(index, num_tokens, sizes, prefix_lens,
                             [&left_ranks](int32_t d) {
                               return left_ranks[static_cast<size_t>(d)]
                                   .data();
                             });
  const auto size_of = [&sizes](int32_t doc) {
    return sizes[static_cast<size_t>(doc)];
  };
  const auto tok_len_of = [&tok_lens](int32_t doc) {
    return tok_lens[static_cast<size_t>(doc)];
  };
  std::vector<int32_t> fallback;
  if constexpr (Policy::kUsesFallback) {
    for (size_t d = 0; d < n_left; ++d) {
      if (policy.Unfilterable(threshold, tok_lens[d], sizes[d])) {
        fallback.push_back(static_cast<int32_t>(d));
      }
    }
    std::sort(fallback.begin(), fallback.end(),
              [&sizes](int32_t x, int32_t y) {
                const size_t sx = sizes[static_cast<size_t>(x)];
                const size_t sy = sizes[static_cast<size_t>(y)];
                if (sx != sy) return sx < sy;
                return x < y;
              });
  }

  std::vector<int32_t> last_seen(n_left, -1);
  std::vector<JoinCandidate> candidates;
  std::vector<ScoredPair> out;
  std::vector<int32_t> rank_s;
  for (size_t j = 0; j < n_right; ++j) {
    RankEncode(right_tokens_of(j), ranks, rank_s);
    const size_t tok_len_s = rank_s.size();
    if (tok_len_s == 0) continue;
    const size_t size_s = right_size_in(j);
    const size_t prefix_s =
        policy.PrefixLen(threshold, rank_s.data(), tok_len_s, size_s);
    const size_t min_size = policy.MinSize(threshold, size_s);
    const size_t max_size = policy.MaxSize(threshold, size_s);
    const auto required_of = [&policy, threshold, tok_len_s,
                              size_s](size_t cand_size) {
      return policy.Required(threshold, tok_len_s, size_s, cand_size);
    };
    candidates.clear();
    GatherPositionalCandidates(index, rank_s.data(), prefix_s, tok_len_s,
                               min_size, max_size, static_cast<int32_t>(j),
                               last_seen, size_of, tok_len_of, required_of,
                               kNoSkip, candidates);
    if constexpr (Policy::kUsesFallback) {
      if (policy.Unfilterable(threshold, tok_len_s, size_s)) {
        GatherFallbackCandidates(fallback, min_size, max_size,
                                 static_cast<int32_t>(j), last_seen, size_of,
                                 kNoSkip, candidates);
      }
    }
    const MeasureDocRef probe_ref{rank_s.data(), tok_len_s, size_s,
                                  right_payload_of(j)};
    for (const JoinCandidate& cand : candidates) {
      const auto& rank_r = left_ranks[static_cast<size_t>(cand.doc)];
      const MeasureDocRef cand_ref{rank_r.data(), rank_r.size(),
                                   sizes[static_cast<size_t>(cand.doc)],
                                   left_payload_of(static_cast<size_t>(cand.doc))};
      const double score =
          policy.Verify(cand_ref, probe_ref, static_cast<size_t>(cand.index_pos),
                        static_cast<size_t>(cand.probe_pos), threshold);
      if (score + 1e-12 >= threshold) {
        out.push_back({cand.doc, static_cast<int32_t>(j), score});
      }
    }
  }
  SortByPairOrder(out);
  return out;
}

template <typename Policy>
std::vector<ScoredPair> MeasureSelfJoinWith(const Policy& policy,
                                            const std::vector<MeasureDoc>& docs,
                                            const std::vector<int32_t>& ranks,
                                            size_t num_tokens,
                                            double threshold) {
  return SelfJoinCore(
      policy, docs.size(),
      [&docs](size_t i) -> const std::vector<int32_t>& { return docs[i].tokens; },
      [&docs](size_t i) { return static_cast<size_t>(docs[i].size); },
      [&docs](size_t i) { return std::string_view(docs[i].payload); }, ranks,
      num_tokens, threshold);
}

template <typename Policy>
std::vector<ScoredPair> MeasureBipartiteJoinWith(
    const Policy& policy, const std::vector<MeasureDoc>& left,
    const std::vector<MeasureDoc>& right, const std::vector<int32_t>& ranks,
    size_t num_tokens, double threshold) {
  return BipartiteJoinCore(
      policy, left.size(),
      [&left](size_t i) -> const std::vector<int32_t>& { return left[i].tokens; },
      [&left](size_t i) { return static_cast<size_t>(left[i].size); },
      [&left](size_t i) { return std::string_view(left[i].payload); },
      right.size(),
      [&right](size_t j) -> const std::vector<int32_t>& {
        return right[j].tokens;
      },
      [&right](size_t j) { return static_cast<size_t>(right[j].size); },
      [&right](size_t j) { return std::string_view(right[j].payload); }, ranks,
      num_tokens, threshold);
}

}  // namespace

Result<std::vector<ScoredPair>> PrefixFilterSelfJoin(
    const std::vector<std::vector<int32_t>>& docs,
    const TokenDictionary& dictionary, double threshold) {
  CJ_RETURN_IF_ERROR(ValidateJoinThreshold(threshold));
  const std::vector<int32_t> ranks = dictionary.RarityRanks();
  return SelfJoinCore(
      internal::JaccardPolicy{}, docs.size(),
      [&docs](size_t i) -> const std::vector<int32_t>& { return docs[i]; },
      [&docs](size_t i) { return docs[i].size(); },
      [](size_t) { return std::string_view(); }, ranks, dictionary.size(),
      threshold);
}

Result<std::vector<ScoredPair>> PrefixFilterBipartiteJoin(
    const std::vector<std::vector<int32_t>>& left,
    const std::vector<std::vector<int32_t>>& right,
    const TokenDictionary& dictionary, double threshold) {
  CJ_RETURN_IF_ERROR(ValidateJoinThreshold(threshold));
  const std::vector<int32_t> ranks = dictionary.RarityRanks();
  return BipartiteJoinCore(
      internal::JaccardPolicy{}, left.size(),
      [&left](size_t i) -> const std::vector<int32_t>& { return left[i]; },
      [&left](size_t i) { return left[i].size(); },
      [](size_t) { return std::string_view(); }, right.size(),
      [&right](size_t j) -> const std::vector<int32_t>& { return right[j]; },
      [&right](size_t j) { return right[j].size(); },
      [](size_t) { return std::string_view(); }, ranks, dictionary.size(),
      threshold);
}

Result<std::vector<ScoredPair>> MeasureSelfJoin(
    const std::vector<MeasureDoc>& docs, const TokenDictionary& dictionary,
    const SimilarityMeasure& measure, double threshold) {
  CJ_RETURN_IF_ERROR(ValidateJoinThreshold(threshold));
  const std::vector<int32_t> ranks = dictionary.RarityRanks();
  std::vector<double> weights;
  if (measure.kind() == MeasureKind::kCosineTfIdf) {
    weights = CosineRankWeights(dictionary, ranks);
  }
  return internal::DispatchMeasure(measure, &weights, [&](auto policy) {
    return MeasureSelfJoinWith(policy, docs, ranks, dictionary.size(),
                               threshold);
  });
}

Result<std::vector<ScoredPair>> MeasureBipartiteJoin(
    const std::vector<MeasureDoc>& left, const std::vector<MeasureDoc>& right,
    const TokenDictionary& dictionary, const SimilarityMeasure& measure,
    double threshold) {
  CJ_RETURN_IF_ERROR(ValidateJoinThreshold(threshold));
  const std::vector<int32_t> ranks = dictionary.RarityRanks();
  std::vector<double> weights;
  if (measure.kind() == MeasureKind::kCosineTfIdf) {
    weights = CosineRankWeights(dictionary, ranks);
  }
  return internal::DispatchMeasure(measure, &weights, [&](auto policy) {
    return MeasureBipartiteJoinWith(policy, left, right, ranks,
                                    dictionary.size(), threshold);
  });
}

std::vector<ScoredPair> BruteForceSelfJoin(
    const std::vector<std::vector<int32_t>>& docs, double threshold) {
  std::vector<ScoredPair> out;
  for (size_t i = 0; i < docs.size(); ++i) {
    for (size_t j = i + 1; j < docs.size(); ++j) {
      const double score = JaccardSimilarity(docs[i], docs[j]);
      if (score + 1e-12 >= threshold) {
        out.push_back(
            {static_cast<int32_t>(i), static_cast<int32_t>(j), score});
      }
    }
  }
  return out;
}

std::vector<ScoredPair> BruteForceBipartiteJoin(
    const std::vector<std::vector<int32_t>>& left,
    const std::vector<std::vector<int32_t>>& right, double threshold) {
  std::vector<ScoredPair> out;
  for (size_t i = 0; i < left.size(); ++i) {
    for (size_t j = 0; j < right.size(); ++j) {
      const double score = JaccardSimilarity(left[i], right[j]);
      if (score + 1e-12 >= threshold) {
        out.push_back(
            {static_cast<int32_t>(i), static_cast<int32_t>(j), score});
      }
    }
  }
  return out;
}

std::vector<ScoredPair> BruteForceMeasureSelfJoin(
    const std::vector<MeasureDoc>& docs, const TokenDictionary& dictionary,
    const SimilarityMeasure& measure, double threshold) {
  const std::vector<int32_t> ranks = dictionary.RarityRanks();
  std::vector<double> weights;
  if (measure.kind() == MeasureKind::kCosineTfIdf) {
    weights = CosineRankWeights(dictionary, ranks);
  }
  std::vector<std::vector<int32_t>> rank_docs(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) {
    RankEncode(docs[i].tokens, ranks, rank_docs[i]);
  }
  const auto ref = [&](size_t i) {
    return MeasureDocRef{rank_docs[i].data(), rank_docs[i].size(),
                         static_cast<size_t>(docs[i].size),
                         std::string_view(docs[i].payload)};
  };
  return internal::DispatchMeasure(measure, &weights, [&](auto policy) {
    std::vector<ScoredPair> out;
    for (size_t i = 0; i < docs.size(); ++i) {
      if (docs[i].tokens.empty()) continue;  // empty-doc contract
      for (size_t j = i + 1; j < docs.size(); ++j) {
        if (docs[j].tokens.empty()) continue;
        const double score = policy.Exact(ref(i), ref(j));
        if (score + 1e-12 >= threshold) {
          out.push_back(
              {static_cast<int32_t>(i), static_cast<int32_t>(j), score});
        }
      }
    }
    return out;
  });
}

std::vector<ScoredPair> BruteForceMeasureBipartiteJoin(
    const std::vector<MeasureDoc>& left, const std::vector<MeasureDoc>& right,
    const TokenDictionary& dictionary, const SimilarityMeasure& measure,
    double threshold) {
  const std::vector<int32_t> ranks = dictionary.RarityRanks();
  std::vector<double> weights;
  if (measure.kind() == MeasureKind::kCosineTfIdf) {
    weights = CosineRankWeights(dictionary, ranks);
  }
  std::vector<std::vector<int32_t>> left_ranks(left.size());
  for (size_t i = 0; i < left.size(); ++i) {
    RankEncode(left[i].tokens, ranks, left_ranks[i]);
  }
  std::vector<std::vector<int32_t>> right_ranks(right.size());
  for (size_t j = 0; j < right.size(); ++j) {
    RankEncode(right[j].tokens, ranks, right_ranks[j]);
  }
  return internal::DispatchMeasure(measure, &weights, [&](auto policy) {
    std::vector<ScoredPair> out;
    for (size_t i = 0; i < left.size(); ++i) {
      if (left[i].tokens.empty()) continue;  // empty-doc contract
      const MeasureDocRef a{left_ranks[i].data(), left_ranks[i].size(),
                            static_cast<size_t>(left[i].size),
                            std::string_view(left[i].payload)};
      for (size_t j = 0; j < right.size(); ++j) {
        if (right[j].tokens.empty()) continue;
        const MeasureDocRef b{right_ranks[j].data(), right_ranks[j].size(),
                              static_cast<size_t>(right[j].size),
                              std::string_view(right[j].payload)};
        const double score = policy.Exact(a, b);
        if (score + 1e-12 >= threshold) {
          out.push_back(
              {static_cast<int32_t>(i), static_cast<int32_t>(j), score});
        }
      }
    }
    return out;
  });
}

}  // namespace crowdjoin
