#ifndef CROWDJOIN_COMMON_THREAD_POOL_H_
#define CROWDJOIN_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace crowdjoin {

/// \brief Fixed-size worker pool executing submitted tasks FIFO.
///
/// The pool underlies every parallel component in the library (today the
/// round-based parallel labeler; the roadmap's sharded simjoin and
/// streaming datagen are expected to reuse it). Design points:
///
///  * `num_threads == 0` is a valid degenerate pool: tasks run inline on
///    the submitting thread, so callers never need a separate code path.
///  * Exceptions thrown by a task are captured into the `std::future`
///    returned by `Submit` and rethrown on `get()`.
///  * Destruction is graceful: tasks already queued are still executed
///    before the workers join. Work is never silently dropped.
///
/// Thread-safe: any thread may call `Submit` concurrently.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. Values < 1 create an inline pool that
  /// executes tasks on the caller's thread inside `Submit`.
  explicit ThreadPool(int num_threads);

  /// Runs every task still queued, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for an inline pool).
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `fn`. The returned future completes when the task has run
  /// and rethrows anything the task threw.
  std::future<void> Submit(std::function<void()> fn);

  /// `std::thread::hardware_concurrency()` clamped to at least 1.
  static int HardwareThreads();

 private:
  void WorkerLoop();

  /// A queued task plus its enqueue timestamp (obs::NowNs(); 0 when the
  /// metrics registry was disabled at submit time, so the wait-time
  /// histogram reads no clock on the disabled path).
  struct QueuedTask {
    std::packaged_task<void()> task;
    int64_t enqueue_ns = 0;
  };

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedTask> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// \brief Computes `fn(0) .. fn(n - 1)` across the pool and returns the
/// results *by index*, independent of execution interleaving.
///
/// This index-stable merge is what makes callers deterministic: as long as
/// `fn(i)` itself depends only on `i` (not on the order in which other
/// indices run), the returned vector is identical for every pool size,
/// including the inline pool. The result type must be default-constructible.
///
/// Work is split into contiguous chunks (a few per worker) to amortize
/// queue traffic for cheap bodies. If any invocation throws, the exception
/// from the lowest-index chunk is rethrown after all chunks finish — again
/// a deterministic choice. A null `pool` runs everything inline.
template <typename Fn>
auto ParallelMap(ThreadPool* pool, int64_t n, Fn&& fn)
    -> std::vector<decltype(fn(int64_t{0}))> {
  using T = decltype(fn(int64_t{0}));
  // std::vector<bool> is bit-packed: adjacent indices share a word, so
  // concurrent chunk writes would race. Return uint8_t/int instead.
  static_assert(!std::is_same_v<T, bool>,
                "ParallelMap cannot return std::vector<bool>");
  std::vector<T> results(static_cast<size_t>(n));
  if (n <= 0) return results;
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (int64_t i = 0; i < n; ++i) results[static_cast<size_t>(i)] = fn(i);
    return results;
  }

  const int64_t num_chunks =
      std::min<int64_t>(n, static_cast<int64_t>(pool->num_threads()) * 4);
  const int64_t chunk_size = (n + num_chunks - 1) / num_chunks;
  std::vector<std::exception_ptr> errors(static_cast<size_t>(num_chunks));
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(num_chunks));
  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t begin = c * chunk_size;
    const int64_t end = std::min(n, begin + chunk_size);
    futures.push_back(pool->Submit([&results, &errors, &fn, begin, end, c] {
      try {
        for (int64_t i = begin; i < end; ++i) {
          results[static_cast<size_t>(i)] = fn(i);
        }
      } catch (...) {
        errors[static_cast<size_t>(c)] = std::current_exception();
      }
    }));
  }
  for (std::future<void>& future : futures) future.wait();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

}  // namespace crowdjoin

#endif  // CROWDJOIN_COMMON_THREAD_POOL_H_
