#ifndef CROWDJOIN_COMMON_RESULT_H_
#define CROWDJOIN_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace crowdjoin {

/// \brief A value-or-error holder: either a `T` or a non-OK `Status`.
///
/// Mirrors `arrow::Result` / `absl::StatusOr`. Accessing the value of an
/// errored result is a programming error and aborts in debug builds.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : rep_(std::move(status)) {
    assert(!std::get<Status>(rep_).ok() && "Result from OK status");
  }
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : rep_(std::move(value)) {}

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The status: OK when a value is held, the error otherwise.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(rep_);
  }

  /// Borrows the held value. Requires `ok()`.
  const T& value() const& {
    assert(ok() && "value() on errored Result");
    return std::get<T>(rep_);
  }
  /// Borrows the held value mutably. Requires `ok()`.
  T& value() & {
    assert(ok() && "value() on errored Result");
    return std::get<T>(rep_);
  }
  /// Moves the held value out. Requires `ok()`.
  T&& value() && {
    assert(ok() && "value() on errored Result");
    return std::get<T>(std::move(rep_));
  }

  /// Returns the held value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_COMMON_RESULT_H_
