#include "text/set_similarity.h"

#include <algorithm>
#include <cmath>

#include "text/tokenize.h"

namespace crowdjoin {

size_t OverlapSize(const std::vector<int32_t>& a,
                   const std::vector<int32_t>& b) {
  size_t i = 0;
  size_t j = 0;
  size_t overlap = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++overlap;
      ++i;
      ++j;
    }
  }
  return overlap;
}

double JaccardSimilarity(const int32_t* a, size_t na, const int32_t* b,
                         size_t nb) {
  if (na == 0 && nb == 0) return 1.0;
  size_t i = 0;
  size_t j = 0;
  size_t overlap = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++overlap;
      ++i;
      ++j;
    }
  }
  const size_t unions = na + nb - overlap;
  return static_cast<double>(overlap) / static_cast<double>(unions);
}

double JaccardSimilarity(const std::vector<int32_t>& a,
                         const std::vector<int32_t>& b) {
  return JaccardSimilarity(a.data(), a.size(), b.data(), b.size());
}

double BoundedJaccard(const int32_t* a, size_t na, const int32_t* b,
                      size_t nb, double threshold) {
  if (na == 0 && nb == 0) return 1.0;
  // Required overlap o for o/(na+nb-o) >= threshold, under-estimated by a
  // 1e-6 slack so the early exit is strictly conservative relative to the
  // joins' `score + 1e-12 >= threshold` emit test.
  const double bound = threshold * static_cast<double>(na + nb) /
                       (1.0 + threshold);
  const auto required =
      static_cast<size_t>(std::max(0.0, std::ceil(bound - 1e-6)));
  size_t i = 0;
  size_t j = 0;
  size_t overlap = 0;
  while (i < na && j < nb) {
    // Even matching every remaining element cannot reach the required
    // overlap: abandon the merge.
    if (overlap + std::min(na - i, nb - j) < required) return -1.0;
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++overlap;
      ++i;
      ++j;
    }
  }
  if (overlap < required) return -1.0;
  const size_t unions = na + nb - overlap;
  return static_cast<double>(overlap) / static_cast<double>(unions);
}

double DiceSimilarity(const std::vector<int32_t>& a,
                      const std::vector<int32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t overlap = OverlapSize(a, b);
  return 2.0 * static_cast<double>(overlap) /
         static_cast<double>(a.size() + b.size());
}

double CosineSimilarity(const std::vector<int32_t>& a,
                        const std::vector<int32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t overlap = OverlapSize(a, b);
  return static_cast<double>(overlap) /
         std::sqrt(static_cast<double>(a.size()) *
                   static_cast<double>(b.size()));
}

double OverlapCoefficient(const std::vector<int32_t>& a,
                          const std::vector<int32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t overlap = OverlapSize(a, b);
  return static_cast<double>(overlap) /
         static_cast<double>(std::min(a.size(), b.size()));
}

double JaccardOfTokenSets(std::vector<std::string> a,
                          std::vector<std::string> b) {
  SortUnique(a);
  SortUnique(b);
  if (a.empty() && b.empty()) return 1.0;
  size_t i = 0;
  size_t j = 0;
  size_t overlap = 0;
  while (i < a.size() && j < b.size()) {
    const int cmp = a[i].compare(b[j]);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      ++overlap;
      ++i;
      ++j;
    }
  }
  return static_cast<double>(overlap) /
         static_cast<double>(a.size() + b.size() - overlap);
}

}  // namespace crowdjoin
