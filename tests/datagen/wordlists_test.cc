#include "datagen/wordlists.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "text/normalize.h"

namespace crowdjoin {
namespace {

template <typename Pool>
void ExpectNormalizedAndUnique(const Pool& pool, size_t min_size) {
  EXPECT_GE(pool.size(), min_size);
  std::unordered_set<std::string_view> seen;
  for (std::string_view word : pool) {
    EXPECT_FALSE(word.empty());
    // Pools must already be in normalized form (lower-case alnum words)
    // so that generated text round-trips through NormalizeText unchanged.
    EXPECT_EQ(NormalizeText(word), word) << word;
    EXPECT_TRUE(seen.insert(word).second) << "duplicate: " << word;
  }
}

TEST(Wordlists, TitleWords) {
  ExpectNormalizedAndUnique(wordlists::TitleWords(), 150);
}

TEST(Wordlists, Names) {
  ExpectNormalizedAndUnique(wordlists::FirstNames(), 50);
  ExpectNormalizedAndUnique(wordlists::LastNames(), 60);
}

TEST(Wordlists, ProductPools) {
  ExpectNormalizedAndUnique(wordlists::Brands(), 40);
  ExpectNormalizedAndUnique(wordlists::ProductNouns(), 50);
  ExpectNormalizedAndUnique(wordlists::ProductAdjectives(), 40);
}

TEST(Wordlists, VenuesHaveDistinctAbbreviations) {
  const auto& venues = wordlists::Venues();
  EXPECT_GE(venues.size(), 10u);
  std::unordered_set<std::string_view> abbreviations;
  for (const auto& [full, abbreviation] : venues) {
    EXPECT_FALSE(full.empty());
    EXPECT_FALSE(abbreviation.empty());
    EXPECT_LT(abbreviation.size(), full.size());
    EXPECT_TRUE(abbreviations.insert(abbreviation).second)
        << "duplicate abbreviation: " << abbreviation;
  }
}

}  // namespace
}  // namespace crowdjoin
