#include "datagen/record_source.h"

#include <utility>

#include "common/macros.h"

namespace crowdjoin {

DatasetRecordSource::DatasetRecordSource(const Dataset* dataset)
    : dataset_(dataset) {
  meta_.name = dataset->name;
  meta_.schema = dataset->schema;
  meta_.bipartite = dataset->bipartite;
  meta_.total_records = static_cast<int64_t>(dataset->records.size());
}

bool DatasetRecordSource::Next(StreamedRecord* out) {
  if (pos_ >= dataset_->records.size()) return false;
  out->record = dataset_->records[pos_];
  out->entity = dataset_->entity_of[pos_];
  out->side = dataset_->bipartite ? dataset_->side_of[pos_] : uint8_t{0};
  ++pos_;
  return true;
}

Result<Dataset> MaterializeDataset(RecordSource& source) {
  source.Reset();
  Dataset dataset;
  dataset.name = source.meta().name;
  dataset.schema = source.meta().schema;
  dataset.bipartite = source.meta().bipartite;
  const auto total = static_cast<size_t>(source.meta().total_records);
  dataset.records.reserve(total);
  dataset.entity_of.reserve(total);
  if (dataset.bipartite) dataset.side_of.reserve(total);

  StreamedRecord streamed;
  while (source.Next(&streamed)) {
    if (dataset.bipartite) {
      dataset.AddRecord(std::move(streamed.record), streamed.entity,
                        streamed.side);
    } else {
      dataset.AddRecord(std::move(streamed.record), streamed.entity);
    }
  }
  CJ_RETURN_IF_ERROR(source.status());
  return dataset;
}

}  // namespace crowdjoin
