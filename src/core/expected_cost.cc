#include "core/expected_cost.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"
#include "common/string_util.h"
#include "graph/cluster_graph.h"
#include "graph/union_find.h"

namespace crowdjoin {

bool IsConsistentAssignment(const CandidateSet& pairs,
                            const std::vector<Label>& labels) {
  CJ_CHECK(labels.size() == pairs.size());
  UnionFind clusters(NumObjectsSpanned(pairs));
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (labels[i] == Label::kMatching) clusters.Union(pairs[i].a, pairs[i].b);
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (labels[i] == Label::kNonMatching &&
        clusters.Same(pairs[i].a, pairs[i].b)) {
      return false;
    }
  }
  return true;
}

int64_t CrowdsourcedCountUnderAssignment(const CandidateSet& pairs,
                                         const std::vector<int32_t>& order,
                                         const std::vector<Label>& labels) {
  ClusterGraph graph(NumObjectsSpanned(pairs));
  int64_t crowdsourced = 0;
  for (int32_t pos : order) {
    const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
    if (graph.Deduce(pair.a, pair.b) == Deduction::kUndeduced) {
      ++crowdsourced;
      graph.Add(pair.a, pair.b, labels[static_cast<size_t>(pos)]);
    }
  }
  return crowdsourced;
}

Result<double> ExpectedCrowdsourcedCount(const CandidateSet& pairs,
                                         const std::vector<int32_t>& order) {
  const size_t n = pairs.size();
  if (n > 20) {
    return Status::InvalidArgument(StrFormat(
        "exact expectation enumerates 2^n assignments; n=%zu > 20", n));
  }
  if (order.size() != n) {
    return Status::InvalidArgument("order size mismatch");
  }
  std::vector<Label> labels(n, Label::kNonMatching);
  double normalizer = 0.0;
  double weighted_cost = 0.0;
  const uint64_t num_assignments = 1ull << n;
  for (uint64_t mask = 0; mask < num_assignments; ++mask) {
    double weight = 1.0;
    for (size_t i = 0; i < n; ++i) {
      const bool matching = (mask >> i) & 1;
      labels[i] = matching ? Label::kMatching : Label::kNonMatching;
      weight *= matching ? pairs[i].likelihood : 1.0 - pairs[i].likelihood;
    }
    if (weight == 0.0) continue;
    if (!IsConsistentAssignment(pairs, labels)) continue;
    normalizer += weight;
    weighted_cost +=
        weight * static_cast<double>(
                     CrowdsourcedCountUnderAssignment(pairs, order, labels));
  }
  if (normalizer <= 0.0) {
    return Status::InvalidArgument(
        "no transitively consistent assignment has positive probability");
  }
  return weighted_cost / normalizer;
}

Result<ScoredOrder> FindExpectedOptimalOrder(const CandidateSet& pairs) {
  const size_t n = pairs.size();
  if (n > 8) {
    return Status::InvalidArgument(
        StrFormat("brute force explores n! orders; n=%zu > 8", n));
  }
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  ScoredOrder best;
  best.expected_cost = static_cast<double>(n) + 1.0;
  do {
    CJ_ASSIGN_OR_RETURN(const double cost,
                        ExpectedCrowdsourcedCount(pairs, order));
    if (cost < best.expected_cost) {
      best.expected_cost = cost;
      best.order = order;
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

}  // namespace crowdjoin
