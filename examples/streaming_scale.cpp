// Streaming scale subsystem: a full campaign — streaming datagen at a
// scale factor, sharded parallel similarity join, transitive labeling —
// without ever materializing the dataset. This is the path that carries
// the library from paper scale (~1k records) to ~1M records; here it runs
// at 8x a down-scaled paper configuration so the smoke test stays quick.
//
//   $ ./streaming_scale                    # token-Jaccard machine step
//   $ ./streaming_scale --measure=edit     # q-gram + banded-DP edit join
//   $ ./streaming_scale --measure=cosine   # idf-weighted cosine join

#include <cstdio>
#include <cstring>

#include "crowd/orchestrator.h"
#include "datagen/streaming_generator.h"

using namespace crowdjoin;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  // The similarity measure is the campaign's only knob here: the whole
  // pipeline downstream of it (sharded join, streaming rounds, labeling)
  // is measure-generic.
  MeasureKind measure = MeasureKind::kJaccard;
  for (int i = 1; i < argc; ++i) {
    const char* prefix = "--measure=";
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      const auto parsed =
          SimilarityMeasure::ParseKind(argv[i] + std::strlen(prefix));
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 1;
      }
      measure = parsed.value();
    }
  }
  // A 250-record paper-style block, streamed at 8x scale = 2000 records.
  PaperDatasetConfig dataset_config;
  dataset_config.clusters.total_records = 250;
  dataset_config.clusters.max_cluster_size = 40;
  dataset_config.seed = 7;
  StreamingPaperSource source(dataset_config, /*scale_factor=*/8);

  StreamingCampaignConfig campaign;
  // No record scorer: likelihoods are the join's similarity scores under
  // the chosen measure and no record text is retained beyond what the
  // measure's verifier needs — the memory-lean million-record setup.
  campaign.candidates.measure = measure;
  campaign.candidates.token_join_threshold = 0.4;
  campaign.candidates.min_likelihood = 0.4;
  campaign.sharding.num_shards = 16;  // 136 shard-vs-shard probe tasks
  campaign.sharding.num_threads = 4;  // join worker pool
  campaign.crowd.num_threads = 4;     // labeling worker pool
  // Round-by-round labeling: every 16 probe tasks' candidates become one
  // labeling round, so the candidate set is never materialized — later
  // rounds deduce from earlier rounds' clusters for free.
  campaign.label_tasks_per_round = 16;

  const StreamingCampaignStats stats =
      RunStreamingCampaign(source, /*scorer=*/nullptr, campaign).value();

  std::printf("measure: %s\n", SimilarityMeasure::Get(measure).name());
  std::printf("streamed %lld records (%lld candidate pairs, "
              "%lld labeling rounds, never materialized)\n",
              static_cast<long long>(stats.num_records),
              static_cast<long long>(stats.num_candidates),
              static_cast<long long>(stats.labeling.num_stream_rounds));
  std::printf("crowdsourced %lld pairs, deduced %lld for free\n",
              static_cast<long long>(stats.labeling.num_crowdsourced),
              static_cast<long long>(stats.labeling.num_deduced));

  // Round-by-round mode must not leave the candidate set behind.
  if (!stats.candidates.empty()) {
    std::fprintf(stderr, "candidate set was materialized unexpectedly\n");
    return 1;
  }
  // The whole point of transitivity: deductions are not a rounding error.
  if (stats.labeling.num_deduced <= 0) {
    std::fprintf(stderr, "expected transitive deductions at scale\n");
    return 1;
  }
  // Every pair got a label and the counters add up.
  if (stats.labeling.num_unlabeled != 0 ||
      stats.labeling.num_crowdsourced + stats.labeling.num_deduced !=
          stats.num_candidates) {
    std::fprintf(stderr, "labeling counters are inconsistent\n");
    return 1;
  }
  std::printf("round-by-round streaming campaign complete\n");
  return 0;
}
