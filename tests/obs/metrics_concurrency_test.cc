// Concurrent-writer coverage for the metrics layer, exercised under TSan
// in CI (the tsan job runs the full suite): hammering writers while a
// reader snapshots repeatedly must be race-free, and the totals must be
// exact once the writers join.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace crowdjoin::obs {
namespace {

TEST(MetricsConcurrency, WritersAndSnapshotsDoNotRace) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c.total");
  Gauge* gauge = registry.GetGauge("g.depth");
  Histogram* hist = registry.GetHistogram("h.latency_us");

  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 20000;
  std::atomic<bool> stop{false};

  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const MetricsSnapshot snapshot = registry.Snapshot();
      // Monotonicity of what a concurrent reader can observe: never more
      // than the final totals.
      ASSERT_LE(snapshot.FindCounter("c.total")->value,
                int64_t{kWriters} * kOpsPerWriter);
      ASSERT_LE(snapshot.FindHistogram("h.latency_us")->count,
                int64_t{kWriters} * kOpsPerWriter);
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        counter->Inc();
        gauge->Add(i % 2 == 0 ? 1 : -1);
        hist->Observe(i % 1000);
      }
      (void)t;
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_relaxed);
  snapshotter.join();

  EXPECT_EQ(counter->Value(), int64_t{kWriters} * kOpsPerWriter);
  EXPECT_EQ(gauge->Value(), 0);
  EXPECT_EQ(hist->Count(), int64_t{kWriters} * kOpsPerWriter);
  int64_t bucket_total = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    bucket_total += hist->BucketCount(b);
  }
  EXPECT_EQ(bucket_total, hist->Count());
}

TEST(MetricsConcurrency, RegistrationRacesWithWrites) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // All threads request the same names while writing: GetCounter must
      // hand everyone the same stable handle.
      for (int i = 0; i < 2000; ++i) {
        registry.GetCounter("shared.counter")->Inc();
        registry.GetHistogram("shared.hist")->Observe(i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(registry.GetCounter("shared.counter")->Value(), kThreads * 2000);
  EXPECT_EQ(registry.GetHistogram("shared.hist")->Count(), kThreads * 2000);
}

TEST(MetricsConcurrency, EnableToggleRacesWithWrites) {
  // SetEnabled mid-flight may drop an unpredictable number of writes but
  // must never race or corrupt; with the registry enabled at both ends the
  // count lands between 0 and the maximum.
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      registry.SetEnabled(false);
      registry.SetEnabled(true);
    }
  });
  constexpr int kOps = 50000;
  for (int i = 0; i < kOps; ++i) counter->Inc();
  stop.store(true, std::memory_order_relaxed);
  toggler.join();
  EXPECT_GE(counter->Value(), 0);
  EXPECT_LE(counter->Value(), kOps);
}

}  // namespace
}  // namespace crowdjoin::obs
