#include "core/instant_decision.h"

#include <utility>

#include "common/macros.h"

namespace crowdjoin {

namespace {

LabelingSessionOptions InstantOptions(ConflictPolicy policy) {
  LabelingSessionOptions options;
  options.schedule = SchedulePolicy::kInstantDecision;
  options.conflict_policy = policy;
  return options;
}

}  // namespace

InstantDecisionEngine::InstantDecisionEngine(const CandidateSet* pairs,
                                             std::vector<int32_t> order,
                                             ConflictPolicy policy)
    : pairs_(pairs),
      order_(std::move(order)),
      session_(InstantOptions(policy)) {}

Result<std::vector<int32_t>> InstantDecisionEngine::Start() {
  return session_.Start(pairs_, order_);
}

Result<std::vector<int32_t>> InstantDecisionEngine::OnPairLabeled(
    int32_t pos, Label label) {
  return session_.OnPairLabeled(pos, label);
}

Result<LabelingResult> InstantDecisionEngine::Finish() {
  CJ_ASSIGN_OR_RETURN(const LabelingReport report, session_.Finish());
  return report.ToLabelingResult();
}

}  // namespace crowdjoin
