#ifndef CROWDJOIN_COMMON_TABLE_PRINTER_H_
#define CROWDJOIN_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace crowdjoin {

/// \brief Column-aligned console table, used by the figure/table harnesses
/// to print paper-style rows.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row; the cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows) to `os`.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Minimal CSV emitter (RFC-4180 quoting) for machine-readable
/// experiment output.
class CsvWriter {
 public:
  /// Writes rows to `os`; does not take ownership.
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  /// Writes one row, quoting cells that contain commas/quotes/newlines.
  void WriteRow(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_COMMON_TABLE_PRINTER_H_
