// Ablation for Section 4.2: how close does the likelihood heuristic get to
// the true expected-optimal labeling order (NP-hard; brute-forced here on
// small random instances)? Also replicates Example 4's arithmetic.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/expected_cost.h"
#include "core/labeling_order.h"
#include "eval/workbench.h"

namespace {

using namespace crowdjoin;  // NOLINT(build/namespaces)
using crowdjoin::bench::Unwrap;

void RunExample4() {
  // Example 4: a triangle with matching probabilities 0.9, 0.5, 0.1.
  const CandidateSet pairs = {{0, 1, 0.9}, {1, 2, 0.5}, {0, 2, 0.1}};
  std::printf("Example 4 (expected #crowdsourced per order):\n");
  const std::vector<std::vector<int32_t>> orders = {
      {0, 1, 2}, {0, 2, 1}, {1, 2, 0}, {1, 0, 2}, {2, 0, 1}, {2, 1, 0}};
  for (size_t i = 0; i < orders.size(); ++i) {
    const double cost = Unwrap(ExpectedCrowdsourcedCount(pairs, orders[i]));
    std::printf("  w%zu = <p%d, p%d, p%d>: E[C] = %.2f\n", i + 1,
                orders[i][0] + 1, orders[i][1] + 1, orders[i][2] + 1, cost);
  }
  std::printf("  (paper: 2.09, 2.17, 2.83, 2.09, 2.17, 2.83)\n\n");
}

// A random small instance: `n` pairs over up to `objects` objects with
// random likelihoods.
CandidateSet RandomInstance(int objects, int n, Rng& rng) {
  CandidateSet pairs;
  while (static_cast<int>(pairs.size()) < n) {
    const auto a = static_cast<ObjectId>(rng.Index(static_cast<size_t>(objects)));
    const auto b = static_cast<ObjectId>(rng.Index(static_cast<size_t>(objects)));
    if (a == b) continue;
    bool duplicate = false;
    for (const auto& p : pairs) {
      if ((p.a == a && p.b == b) || (p.a == b && p.b == a)) duplicate = true;
    }
    if (duplicate) continue;
    pairs.push_back({std::min(a, b), std::max(a, b), rng.UniformDouble()});
  }
  return pairs;
}

}  // namespace

int main(int argc, char** argv) {
  const crowdjoin::bench::Args args(argc, argv);
  const uint64_t seed = args.GetUint64("seed", 42);
  const int trials = static_cast<int>(args.GetUint64("trials", 25));

  std::printf("=== Ablation: heuristic vs expected-optimal labeling order "
              "===\n");
  RunExample4();

  Rng rng(seed);
  TablePrinter table({"instance", "E[C] heuristic", "E[C] optimal",
                      "E[C] reverse-heuristic", "heuristic gap"});
  double total_gap = 0.0;
  int optimal_hits = 0;
  for (int t = 0; t < trials; ++t) {
    const CandidateSet pairs = RandomInstance(/*objects=*/5, /*n=*/6, rng);
    const std::vector<int32_t> heuristic = Unwrap(MakeLabelingOrder(
        pairs, OrderKind::kExpected, /*truth=*/nullptr, /*rng=*/nullptr));
    std::vector<int32_t> reversed(heuristic.rbegin(), heuristic.rend());
    const double heuristic_cost =
        Unwrap(ExpectedCrowdsourcedCount(pairs, heuristic));
    const double reversed_cost =
        Unwrap(ExpectedCrowdsourcedCount(pairs, reversed));
    const ScoredOrder best = Unwrap(FindExpectedOptimalOrder(pairs));
    const double gap = heuristic_cost - best.expected_cost;
    total_gap += gap;
    if (gap < 1e-9) ++optimal_hits;
    table.AddRow({std::to_string(t), StrFormat("%.3f", heuristic_cost),
                  StrFormat("%.3f", best.expected_cost),
                  StrFormat("%.3f", reversed_cost),
                  StrFormat("%.3f", gap)});
  }
  table.Print(std::cout);
  std::printf("heuristic exactly optimal on %d/%d instances; "
              "mean gap %.4f pairs\n",
              optimal_hits, trials, total_gap / trials);
  return 0;
}
