// Ablation for the budget-constrained setting (Whang et al. [27], the
// paper's related work): with money for only B crowdsourced pairs, how
// much of the candidate set gets labeled, and what result quality does a
// budget buy — with and without a good labeling order?
// Unlabeled pairs are predicted non-matching.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/labeling_order.h"
#include "core/labeling_session.h"
#include "eval/metrics.h"
#include "eval/workbench.h"

namespace {

using namespace crowdjoin;  // NOLINT(build/namespaces)
using crowdjoin::bench::Unwrap;

struct BudgetRow {
  int64_t labeled = 0;
  double f_measure = 0.0;
};

BudgetRow RunBudget(const CandidateSet& pairs,
                    const std::vector<int32_t>& order, int64_t budget,
                    const GroundTruthOracle& truth) {
  GroundTruthOracle oracle = truth;
  LabelingSessionOptions options;  // sequential schedule, capped stop
  options.stop = StopPolicy::Budget(budget);
  LabelingSession session(options);
  const LabelingReport result = Unwrap(session.Run(pairs, order, oracle));
  return {result.num_crowdsourced + result.num_deduced,
          ComputeQuality(pairs, ExtractFinalLabels(result), truth).f_measure};
}

}  // namespace

int main(int argc, char** argv) {
  const crowdjoin::bench::Args args(argc, argv);
  const uint64_t seed = args.GetUint64("seed", 42);
  const double threshold = args.GetDouble("threshold", 0.3);

  std::printf("=== Ablation: labeling under a crowdsourcing budget "
              "(Paper dataset, threshold %.1f) ===\n", threshold);
  const ExperimentInput input = Unwrap(MakePaperExperimentInput(seed));
  GroundTruthOracle truth = MakeGroundTruthOracle(input.dataset);
  const CandidateSet pairs = FilterByThreshold(input.candidates, threshold);
  const std::vector<int32_t> expected_order = Unwrap(MakeLabelingOrder(
      pairs, OrderKind::kExpected, &truth, /*rng=*/nullptr));
  Rng rng(seed ^ 0x600d);
  const std::vector<int32_t> random_order = Unwrap(
      MakeLabelingOrder(pairs, OrderKind::kRandom, &truth, &rng));

  TablePrinter table({"budget", "labeled (expected order)", "F (expected)",
                      "labeled (random order)", "F (random)"});
  for (int64_t budget : {100, 250, 500, 1000, 2000, 4000}) {
    const BudgetRow expected = RunBudget(pairs, expected_order, budget, truth);
    const BudgetRow random = RunBudget(pairs, random_order, budget, truth);
    table.AddRow({std::to_string(budget),
                  StrFormat("%lld / %zu",
                            static_cast<long long>(expected.labeled),
                            pairs.size()),
                  StrFormat("%.2f%%", 100.0 * expected.f_measure),
                  StrFormat("%lld / %zu",
                            static_cast<long long>(random.labeled),
                            pairs.size()),
                  StrFormat("%.2f%%", 100.0 * random.f_measure)});
  }
  table.Print(std::cout);
  std::printf("(a good order makes a small budget go much further: the "
              "likely-matching pairs purchased first seed large clusters "
              "whose remaining pairs come free)\n");
  return 0;
}
