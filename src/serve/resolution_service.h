#ifndef CROWDJOIN_SERVE_RESOLUTION_SERVICE_H_
#define CROWDJOIN_SERVE_RESOLUTION_SERVICE_H_

#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "graph/cluster_graph.h"
#include "graph/label.h"
#include "simjoin/token_dictionary.h"

namespace crowdjoin {

namespace obs {
class Counter;
class Histogram;
class MetricsRegistry;
}  // namespace obs

/// Tuning knobs for the always-on resolution service.
struct ResolutionServiceOptions {
  /// Minimum exact Jaccard similarity for a record to become a candidate.
  double threshold = 0.5;
  /// Maximum candidates returned per ingest or query (similarity
  /// descending, record id ascending on ties).
  int32_t top_k = 10;
  /// How the cluster graph treats contradictory crowd answers.
  ConflictPolicy conflict_policy = ConflictPolicy::kKeepFirst;
  /// Publish a fresh reader snapshot only after this many labels have
  /// accumulated (a "batch boundary"), instead of after every label. 1 —
  /// the default — keeps the historical publish-per-label behavior.
  /// Higher values amortize epoch publication under label floods; readers
  /// then see batch-granular state, and `FlushSnapshot()` forces the tail
  /// batch out. Ingest always publishes immediately (a new record must be
  /// resolvable the moment `Ingest` returns), carrying any pending labels
  /// with it.
  int32_t snapshot_batch_size = 1;
  /// Registry the service's `serve.*` metrics (ingest/query latency
  /// histograms, candidate/label counters) register in. nullptr gives the
  /// service a private always-enabled registry, keeping per-instance
  /// counts exact when many services share a process (tests); a harness
  /// that wants one exportable view passes &obs::MetricsRegistry::Global().
  /// `ServeStats` is a view over these counters, so disabling the shared
  /// registry freezes the counter-backed stats fields.
  obs::MetricsRegistry* metrics = nullptr;
};

/// One candidate match for an ingested record or an ad-hoc query.
struct ServeCandidate {
  ObjectId id = -1;        ///< the matching corpus record
  double similarity = 0;   ///< exact Jaccard over distinct word tokens
  ObjectId cluster = -1;   ///< canonical cluster id at the read snapshot
};

/// What `Ingest` hands back: the new record's dense id plus the labeling
/// work it creates.
struct IngestResult {
  ObjectId id = -1;
  /// Top-k similar records; candidates sharing a `cluster` need only one
  /// crowd question between them (transitivity answers the rest).
  std::vector<ServeCandidate> candidates;
};

/// A consistent view of the service's bookkeeping.
struct ServeStats {
  int64_t num_records = 0;    ///< records visible at the snapshot
  int64_t num_labels = 0;     ///< OnPairLabeled calls accepted so far
  int64_t epoch = 0;          ///< published graph epoch
  int32_t num_clusters = 0;   ///< clusters (incl. singletons) at the snapshot
  int64_t num_conflicts = 0;  ///< conflicting labels seen up to the snapshot
};

/// \brief The always-on entity-resolution service: the paper's offline
/// "join then label" pipeline turned into a long-lived process that
/// resolves records as they arrive.
///
/// The service owns two structures:
///  * an incremental self-join index (token dictionary + inverted lists)
///    that answers "which existing records look like this one" by exact
///    Jaccard overlap counting, and
///  * a `ClusterGraph` fed by crowd answers through `OnPairLabeled`, whose
///    transitive relations keep shrinking the number of questions each new
///    record needs.
///
/// ## Threading model
///
/// One writer, many readers. `Ingest` and `OnPairLabeled` must come from a
/// single thread; they advance the live graph and publish a fresh epoch
/// snapshot (O(1)) after every change. The read API (`QueryCandidates`,
/// `ResolveCluster`, `DeducePair`, `Stats`) may be called from any number
/// of threads concurrently with the writer: readers share-lock the index
/// and resolve cluster questions against the latest published
/// `ClusterGraphSnapshot`, never against in-flight mutations. A record the
/// index already serves but the snapshot does not yet span is reported as
/// its own singleton cluster — exactly what it is until a label touches it.
class ResolutionService {
 public:
  explicit ResolutionService(ResolutionServiceOptions options = {});
  ~ResolutionService();  // out-of-line: obs types are forward-declared here

  // --- Writer API (single thread) ---

  /// Adds a record to the corpus and returns its id plus the top-k similar
  /// existing records, annotated with their current clusters.
  IngestResult Ingest(const std::string& text);

  /// Feeds one crowd answer about records `a` and `b` into the cluster
  /// graph. The resulting epoch is published at the next batch boundary
  /// (every label with the default `snapshot_batch_size` of 1). Returns
  /// the graph's verdict (applied / redundant / conflict).
  AddOutcome OnPairLabeled(ObjectId a, ObjectId b, Label label);

  /// Publishes any labels still waiting for a batch boundary. A no-op
  /// when nothing is pending; counted in
  /// `serve.snapshot_batch_flushes_total` otherwise.
  void FlushSnapshot();

  // --- Reader API (any thread, concurrent with the writer) ---

  /// Top-k records similar to ad-hoc text, without ingesting it. Tokens
  /// the corpus has never seen still count toward the query's set size,
  /// so similarity is exact Jaccard against the full query.
  std::vector<ServeCandidate> QueryCandidates(const std::string& text) const;

  /// The canonical cluster id of record `id` at the latest snapshot.
  ObjectId ResolveCluster(ObjectId id) const;

  /// What the labeled pairs imply about (`a`, `b`) at the latest snapshot.
  Deduction DeducePair(ObjectId a, ObjectId b) const;

  /// Bookkeeping at the latest snapshot. The label count is a view over
  /// the `serve.labels_total` counter in `metrics()`.
  ServeStats Stats() const;

  /// The registry this service's `serve.*` metrics live in (the one from
  /// the options, or the service-private default).
  obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  struct Match {
    ObjectId id;
    int64_t overlap;
    int64_t union_size;
  };

  // Overlap-counts `ids` (distinct, sorted) against the inverted lists and
  // returns threshold-passing matches, best first. `query_size` is the
  // query's distinct-token count (>= ids.size() when unknown tokens were
  // dropped); `exclude` skips one record id (-1 = none). Callers hold
  // `index_mu_`.
  std::vector<Match> MatchEncoded(const std::vector<int32_t>& ids,
                                  size_t query_size, ObjectId exclude) const;

  // Publishes the live graph's pending epoch into `snapshot_`.
  void PublishSnapshot();
  ClusterGraphSnapshot CurrentSnapshot() const;

  ResolutionServiceOptions options_;

  // Self-join index: dictionary + inverted lists + per-record set sizes.
  mutable std::shared_mutex index_mu_;
  TokenDictionary dict_;
  std::vector<std::vector<ObjectId>> postings_;  // token id -> record ids
  std::vector<int32_t> doc_sizes_;               // record id -> |token set|

  // Crowd knowledge. The writer mutates `graph_` (which locks internally
  // once snapshots exist); readers only ever touch `snapshot_`.
  ClusterGraph graph_;
  mutable std::shared_mutex snapshot_mu_;
  ClusterGraphSnapshot snapshot_;
  // Labels accepted since the last published snapshot (writer-thread
  // state; see snapshot_batch_size).
  int32_t pending_labels_ = 0;

  // Telemetry (see ResolutionServiceOptions::metrics). Handles stay valid
  // for the registry's lifetime; readers increment through const pointers.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* ingests_total_;
  obs::Counter* ingest_candidates_total_;
  obs::Counter* labels_total_;
  obs::Counter* queries_total_;
  obs::Counter* snapshot_publishes_total_;
  obs::Counter* snapshot_batch_flushes_total_;
  obs::Histogram* ingest_latency_us_;
  obs::Histogram* query_latency_us_;
  obs::Histogram* candidates_per_query_;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_SERVE_RESOLUTION_SERVICE_H_
