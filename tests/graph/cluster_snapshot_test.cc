// Epoch-snapshot semantics of the ClusterGraph: snapshots freeze the
// published state while the live graph advances, and canonical cluster ids
// are the only ids that survive merges.

#include <gtest/gtest.h>

#include <vector>

#include "graph/cluster_graph.h"

namespace crowdjoin {
namespace {

constexpr Label kM = Label::kMatching;
constexpr Label kN = Label::kNonMatching;

TEST(ClusterGraphSnapshot, DefaultConstructedIsInvalid) {
  ClusterGraphSnapshot snapshot;
  EXPECT_FALSE(snapshot.valid());
}

TEST(ClusterGraphSnapshot, SeesEverythingPublishedBeforeIt) {
  ClusterGraph graph(6);
  graph.Add(0, 1, kM);
  graph.Add(2, 3, kM);
  graph.Add(1, 2, kN);
  const ClusterGraphSnapshot snapshot = graph.Snapshot();
  ASSERT_TRUE(snapshot.valid());
  EXPECT_EQ(snapshot.Deduce(0, 1), Deduction::kMatching);
  EXPECT_EQ(snapshot.Deduce(0, 3), Deduction::kNonMatching);
  EXPECT_EQ(snapshot.Deduce(0, 4), Deduction::kUndeduced);
  EXPECT_EQ(snapshot.num_objects(), 6);
  EXPECT_EQ(snapshot.num_clusters(), 4);
  EXPECT_EQ(snapshot.num_edges(), 1);
  EXPECT_EQ(snapshot.num_conflicts(), 0);
}

TEST(ClusterGraphSnapshot, StaysFrozenWhileLiveGraphAdvances) {
  ClusterGraph graph(6);
  graph.Add(0, 1, kM);
  graph.Add(2, 3, kN);
  const ClusterGraphSnapshot snapshot = graph.Snapshot();

  // Merge, edge-add, and a conflict — all after the snapshot.
  graph.Add(0, 4, kM);
  graph.Add(1, 5, kN);
  graph.Add(2, 3, kM);  // conflicts with the earlier non-matching label

  EXPECT_EQ(snapshot.Deduce(1, 4), Deduction::kUndeduced);
  EXPECT_EQ(snapshot.Deduce(0, 5), Deduction::kUndeduced);
  EXPECT_EQ(snapshot.Deduce(2, 3), Deduction::kNonMatching);
  EXPECT_EQ(snapshot.num_conflicts(), 0);
  EXPECT_EQ(snapshot.num_edges(), 1);
  // The live graph moved on.
  EXPECT_EQ(graph.Deduce(1, 4), Deduction::kMatching);
  EXPECT_EQ(graph.num_conflicts(), 1);
}

TEST(ClusterGraphSnapshot, RepublishWithoutMutationKeepsEpoch) {
  ClusterGraph graph(4);
  graph.Add(0, 1, kM);
  const ClusterGraphSnapshot first = graph.Snapshot();
  const ClusterGraphSnapshot second = graph.Snapshot();
  EXPECT_EQ(first.epoch(), second.epoch());
  graph.Add(2, 3, kM);
  const ClusterGraphSnapshot third = graph.Snapshot();
  EXPECT_GT(third.epoch(), second.epoch());
}

TEST(ClusterGraphSnapshot, RedundantAddDoesNotAdvanceEpoch) {
  ClusterGraph graph(4);
  graph.Add(0, 1, kM);
  const ClusterGraphSnapshot first = graph.Snapshot();
  ASSERT_EQ(graph.Add(0, 1, kM), AddOutcome::kRedundant);
  const ClusterGraphSnapshot second = graph.Snapshot();
  EXPECT_EQ(second.epoch(), first.epoch());
}

TEST(ClusterGraphSnapshot, EnsureObjectsGrowthIsEpochVisible) {
  ClusterGraph graph(2);
  graph.Add(0, 1, kM);
  const ClusterGraphSnapshot before = graph.Snapshot();
  graph.EnsureObjects(5);
  const ClusterGraphSnapshot after = graph.Snapshot();
  EXPECT_EQ(before.num_objects(), 2);
  EXPECT_EQ(after.num_objects(), 5);
  EXPECT_GT(after.epoch(), before.epoch());
  EXPECT_EQ(after.Deduce(3, 4), Deduction::kUndeduced);
  EXPECT_EQ(after.CanonicalClusterId(4), 4);
}

TEST(ClusterGraphSnapshot, TrustNewEdgeKillRespectsEpochs) {
  ClusterGraph graph(4, ConflictPolicy::kTrustNew);
  graph.Add(0, 1, kN);
  const ClusterGraphSnapshot before = graph.Snapshot();
  // kTrustNew drops the edge and merges anyway.
  ASSERT_EQ(graph.Add(0, 1, kM), AddOutcome::kConflict);
  const ClusterGraphSnapshot after = graph.Snapshot();
  EXPECT_EQ(before.Deduce(0, 1), Deduction::kNonMatching);
  EXPECT_EQ(after.Deduce(0, 1), Deduction::kMatching);
  EXPECT_EQ(before.num_conflicts(), 0);
  EXPECT_EQ(after.num_conflicts(), 1);
}

TEST(ClusterGraphSnapshot, OldSnapshotsAnswerThroughManyLaterMerges) {
  ClusterGraph graph(16);
  std::vector<ClusterGraphSnapshot> snapshots;
  // Chain-merge 0..15 one object at a time, snapshotting between merges.
  for (int i = 1; i < 16; ++i) {
    snapshots.push_back(graph.Snapshot());
    graph.Add(i - 1, i, kM);
  }
  for (int j = 1; j < 15; ++j) {
    // snapshots[j] saw exactly objects 0..j merged into one cluster.
    const ClusterGraphSnapshot& snap = snapshots[static_cast<size_t>(j)];
    EXPECT_EQ(snap.Deduce(0, j), Deduction::kMatching) << "j=" << j;
    EXPECT_EQ(snap.Deduce(0, j + 1), Deduction::kUndeduced) << "j=" << j;
    EXPECT_EQ(snap.CanonicalClusterId(j), 0) << "j=" << j;
    EXPECT_EQ(snap.CanonicalClusterId(j + 1), j + 1) << "j=" << j;
  }
}

// Regression for the "raw roots treated as stable" bug: `ClusterOf` may
// answer a different id for an untouched query after an unrelated-looking
// merge, while `CanonicalClusterId` never does.
TEST(ClusterGraphClusterIds, RawRootsGoStaleAcrossMerges) {
  ClusterGraph graph(5);
  graph.Add(0, 1, kM);                       // {0,1}
  const ObjectId stale_root = graph.ClusterOf(0);
  ASSERT_EQ(graph.CanonicalClusterId(0), 0);

  graph.Add(2, 3, kM);
  graph.Add(3, 4, kM);                       // {2,3,4}
  graph.Add(0, 2, kM);                       // {0,1} absorbed by the larger set
  // The raw root a caller might have persisted no longer identifies the
  // cluster: comparing it with a fresh root answers "different cluster"
  // for 0 itself.
  EXPECT_NE(graph.ClusterOf(0), stale_root);
  // The canonical id is still 0, for every member.
  for (ObjectId x = 0; x < 5; ++x) {
    EXPECT_EQ(graph.CanonicalClusterId(x), 0) << "x=" << x;
  }
}

TEST(ClusterGraphClusterIds, CanonicalIdEqualIffSameCluster) {
  ClusterGraph graph(6);
  graph.Add(4, 5, kM);
  graph.Add(1, 3, kM);
  for (ObjectId a = 0; a < 6; ++a) {
    for (ObjectId b = 0; b < 6; ++b) {
      const bool same_cluster = graph.Deduce(a, b) == Deduction::kMatching ||
                                a == b;
      EXPECT_EQ(graph.CanonicalClusterId(a) == graph.CanonicalClusterId(b),
                same_cluster)
          << "(" << a << "," << b << ")";
    }
  }
}

TEST(ClusterGraphClusterIds, SnapshotCanonicalIdTracksItsEpoch) {
  ClusterGraph graph(5);
  graph.Add(2, 3, kM);  // {2,3}: canonical 2
  const ClusterGraphSnapshot before = graph.Snapshot();
  graph.Add(0, 2, kM);  // absorbs 0: canonical drops to 0
  const ClusterGraphSnapshot after = graph.Snapshot();
  EXPECT_EQ(before.CanonicalClusterId(3), 2);
  EXPECT_EQ(after.CanonicalClusterId(3), 0);
  EXPECT_EQ(graph.CanonicalClusterId(3), 0);
}

TEST(ClusterGraphCopies, CopyDetachesFromSourceSnapshots) {
  ClusterGraph graph(4);
  graph.Add(0, 1, kM);
  const ClusterGraphSnapshot snapshot = graph.Snapshot();
  ClusterGraph copy = graph;
  copy.Add(2, 3, kM);
  // The source and its snapshot are unaffected by the copy's writes.
  EXPECT_EQ(snapshot.Deduce(2, 3), Deduction::kUndeduced);
  EXPECT_EQ(graph.Deduce(2, 3), Deduction::kUndeduced);
  EXPECT_EQ(copy.Deduce(2, 3), Deduction::kMatching);
  EXPECT_EQ(copy.Deduce(0, 1), Deduction::kMatching);
}

}  // namespace
}  // namespace crowdjoin
