#include "simjoin/token_dictionary.h"

#include <gtest/gtest.h>

namespace crowdjoin {
namespace {

TEST(TokenDictionary, InternsStableIds) {
  TokenDictionary dict;
  const auto doc1 = dict.AddDocument({"a", "b"});
  const auto doc2 = dict.AddDocument({"b", "c"});
  ASSERT_EQ(doc1.size(), 2u);
  ASSERT_EQ(doc2.size(), 2u);
  // "b" must map to the same id in both documents.
  EXPECT_EQ(doc1[1], doc2[0]);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(TokenDictionary, DocumentsAreDeduplicatedAndSorted) {
  TokenDictionary dict;
  const auto doc = dict.AddDocument({"z", "a", "z", "a", "m"});
  EXPECT_EQ(doc.size(), 3u);
  EXPECT_TRUE(std::is_sorted(doc.begin(), doc.end()));
}

TEST(TokenDictionary, FrequencyCountsOncePerDocument) {
  TokenDictionary dict;
  const auto doc1 = dict.AddDocument({"x", "x", "x"});
  dict.AddDocument({"x", "y"});
  EXPECT_EQ(dict.Frequency(doc1[0]), 2);  // two documents contain "x"
}

TEST(TokenDictionary, EncodeDoesNotTouchFrequencies) {
  TokenDictionary dict;
  const auto doc = dict.AddDocument({"x"});
  dict.Encode({"x", "new"});
  EXPECT_EQ(dict.Frequency(doc[0]), 1);
  EXPECT_EQ(dict.size(), 2u);  // "new" interned anyway
}

TEST(TokenDictionary, SortByRarityPutsRarestFirst) {
  TokenDictionary dict;
  dict.AddDocument({"common", "rare"});
  dict.AddDocument({"common", "medium"});
  dict.AddDocument({"common", "medium"});
  auto doc = dict.Encode({"common", "medium", "rare"});
  dict.SortByRarity(doc);
  // rare (df=1) < medium (df=2) < common (df=3).
  EXPECT_EQ(dict.Frequency(doc[0]), 1);
  EXPECT_EQ(dict.Frequency(doc[1]), 2);
  EXPECT_EQ(dict.Frequency(doc[2]), 3);
}

TEST(TokenDictionary, EmptyDocument) {
  TokenDictionary dict;
  EXPECT_TRUE(dict.AddDocument({}).empty());
  EXPECT_EQ(dict.size(), 0u);
}

TEST(TokenDictionary, LookupNeverInternsAndDropsUnknownTokens) {
  TokenDictionary dict;
  const auto doc = dict.AddDocument({"a", "b"});
  const TokenDictionary& frozen = dict;
  const auto known = frozen.Lookup({"b", "unknown", "a"});
  EXPECT_EQ(known, doc);  // same sorted-deduped ids, unknown dropped
  EXPECT_EQ(dict.size(), 2u);  // nothing interned
}

TEST(TokenDictionary, LookupCountsDistinctTokensIncludingUnknown) {
  TokenDictionary dict;
  dict.AddDocument({"a", "b"});
  size_t num_distinct = 0;
  const auto known =
      dict.Lookup({"a", "x", "a", "y", "x", "b"}, &num_distinct);
  EXPECT_EQ(known.size(), 2u);
  // Distinct set {a, b, x, y}: duplicates collapse on both sides.
  EXPECT_EQ(num_distinct, 4u);
}

TEST(TokenDictionary, LookupOnEmptyDictionary) {
  TokenDictionary dict;
  size_t num_distinct = 0;
  EXPECT_TRUE(dict.Lookup({"a", "b", "a"}, &num_distinct).empty());
  EXPECT_EQ(num_distinct, 2u);
}

}  // namespace
}  // namespace crowdjoin
