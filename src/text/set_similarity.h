#ifndef CROWDJOIN_TEXT_SET_SIMILARITY_H_
#define CROWDJOIN_TEXT_SET_SIMILARITY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace crowdjoin {

/// Size of the intersection of two *sorted, deduplicated* id vectors.
size_t OverlapSize(const std::vector<int32_t>& a,
                   const std::vector<int32_t>& b);

/// Jaccard similarity |A∩B| / |A∪B| of sorted, deduplicated id vectors.
/// Two empty sets have similarity 1.
double JaccardSimilarity(const std::vector<int32_t>& a,
                         const std::vector<int32_t>& b);

/// Dice coefficient 2|A∩B| / (|A|+|B|).
double DiceSimilarity(const std::vector<int32_t>& a,
                      const std::vector<int32_t>& b);

/// Set cosine |A∩B| / sqrt(|A||B|).
double CosineSimilarity(const std::vector<int32_t>& a,
                        const std::vector<int32_t>& b);

/// Overlap coefficient |A∩B| / min(|A|, |B|).
double OverlapCoefficient(const std::vector<int32_t>& a,
                          const std::vector<int32_t>& b);

/// Convenience: Jaccard over word-token *string* sets (sorts + dedups
/// internally). Useful for tests and one-off scoring.
double JaccardOfTokenSets(std::vector<std::string> a,
                          std::vector<std::string> b);

}  // namespace crowdjoin

#endif  // CROWDJOIN_TEXT_SET_SIMILARITY_H_
