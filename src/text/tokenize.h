#ifndef CROWDJOIN_TEXT_TOKENIZE_H_
#define CROWDJOIN_TEXT_TOKENIZE_H_

#include <string>
#include <string_view>
#include <vector>

namespace crowdjoin {

/// Normalizes `text` and splits it into word tokens.
std::vector<std::string> WordTokens(std::string_view text);

/// Character q-grams of the *normalized* text, with `q-1` boundary padding
/// characters ('$') on each side so short strings still produce grams.
/// Requires q >= 1. "ab" with q=2 yields {"$a", "ab", "b$"}.
std::vector<std::string> QGrams(std::string_view text, int q);

/// Sorts and deduplicates tokens in place (set semantics for similarity).
void SortUnique(std::vector<std::string>& tokens);

}  // namespace crowdjoin

#endif  // CROWDJOIN_TEXT_TOKENIZE_H_
