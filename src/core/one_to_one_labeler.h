#ifndef CROWDJOIN_CORE_ONE_TO_ONE_LABELER_H_
#define CROWDJOIN_CORE_ONE_TO_ONE_LABELER_H_

#include <vector>

#include "common/result.h"
#include "core/candidate.h"
#include "core/labeling_result.h"
#include "core/oracle.h"
#include "graph/cluster_graph.h"

namespace crowdjoin {

/// \brief Sequential labeler augmented with the *one-to-one relation* the
/// paper's Section 8 names as future work.
///
/// In a bipartite join where every entity has at most one record per
/// collection (the Product setting), a crowdsourced match (a, b) implies
/// that every other pair involving a or b is non-matching. This labeler
/// layers that deduction on top of the transitive ClusterGraph: a pair is
/// crowdsourced only if neither transitivity nor the one-to-one rule
/// decides it.
///
/// The rule is sound only when the workload really is one-to-one; applying
/// it to data with duplicate listings inside one collection trades recall
/// for savings. `ExclusivityViolations` in the result statistics counts
/// crowd answers that contradicted the assumption (a second match for an
/// already-matched object) — nonzero counts mean the assumption is wrong
/// for the workload.
///
/// Thin wrapper over `LabelingSession` with the rule chain
/// [TransitiveDeductionRule, OneToOneDeductionRule]; byte-identical to the
/// pre-session implementation.
class OneToOneLabeler {
 public:
  /// Result of a one-to-one labeling run.
  struct RunResult {
    LabelingResult labeling;
    /// Pairs decided by the one-to-one rule (included in num_deduced).
    int64_t num_one_to_one_deduced = 0;
    /// Crowd answers that matched an already-matched object.
    int64_t num_exclusivity_violations = 0;
  };

  /// Labels `pairs` in `order`; crowdsources pairs that neither transitive
  /// relations nor one-to-one exclusivity can decide.
  Result<RunResult> Run(const CandidateSet& pairs,
                        const std::vector<int32_t>& order,
                        LabelOracle& oracle) const;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_CORE_ONE_TO_ONE_LABELER_H_
