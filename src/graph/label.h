#ifndef CROWDJOIN_GRAPH_LABEL_H_
#define CROWDJOIN_GRAPH_LABEL_H_

#include <cstdint>
#include <string_view>

namespace crowdjoin {

/// Identifier of an object (record) in the join input; dense in `[0, n)`.
using ObjectId = int32_t;

/// \brief The label of an object pair (Section 2.2).
///
/// `kMatching` means the two objects refer to the same real-world entity;
/// `kNonMatching` means they refer to different entities.
enum class Label : uint8_t {
  kNonMatching = 0,
  kMatching = 1,
};

/// \brief Result of attempting to deduce a pair's label from the labeled
/// pairs via transitive relations (Lemma 1).
enum class Deduction : uint8_t {
  kUndeduced = 0,     ///< every path carries more than one non-matching pair
  kNonMatching = 1,   ///< some path has exactly one non-matching pair
  kMatching = 2,      ///< some path has only matching pairs
};

/// Human-readable name of a label.
inline std::string_view LabelToString(Label label) {
  return label == Label::kMatching ? "matching" : "non-matching";
}

/// Human-readable name of a deduction outcome.
inline std::string_view DeductionToString(Deduction deduction) {
  switch (deduction) {
    case Deduction::kUndeduced:
      return "undeduced";
    case Deduction::kNonMatching:
      return "non-matching";
    case Deduction::kMatching:
      return "matching";
  }
  return "?";
}

/// Converts a known (deduced) outcome into the equivalent label.
/// Must not be called with `kUndeduced`.
inline Label DeductionToLabel(Deduction deduction) {
  return deduction == Deduction::kMatching ? Label::kMatching
                                           : Label::kNonMatching;
}

}  // namespace crowdjoin

#endif  // CROWDJOIN_GRAPH_LABEL_H_
