#include "simjoin/sharded_join.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/tracing.h"
#include "simjoin/measure_policy.h"
#include "simjoin/postings_index.h"
#include "simjoin/prefix_filter.h"
#include "text/set_similarity.h"

namespace crowdjoin {

namespace {

constexpr int kDefaultNumShards = 16;

// Join-layer instrumentation, incremented once per probe task (never per
// candidate) so the hot gather/verify loops stay metric-free.
struct JoinMetrics {
  obs::Counter* probe_tasks_total;
  obs::Counter* prefilter_candidates_total;
  obs::Counter* pairs_emitted_total;

  static JoinMetrics& Get() {
    static JoinMetrics metrics{
        obs::MetricsRegistry::Global().GetCounter("simjoin.probe_tasks_total"),
        obs::MetricsRegistry::Global().GetCounter(
            "simjoin.prefilter_candidates_total"),
        obs::MetricsRegistry::Global().GetCounter(
            "simjoin.pairs_emitted_total")};
    return metrics;
  }
};

int ResolveShardCount(int requested) {
  return requested > 0 ? requested : kDefaultNumShards;
}

std::vector<ScoredPair> MergeTaskOutputs(
    std::vector<std::vector<ScoredPair>> per_task) {
  size_t total = 0;
  for (const auto& part : per_task) total += part.size();
  std::vector<ScoredPair> out;
  out.reserve(total);
  for (auto& part : per_task) {
    out.insert(out.end(), part.begin(), part.end());
  }
  // (left, right) keys are unique across tasks, so this sort makes the
  // merged output independent of shard/thread scheduling — and identical
  // to the sequential joins' sorted output.
  SortByPairOrder(out);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Ingestion
// ---------------------------------------------------------------------------

void ShardedSelfJoiner::Shard::Append(int32_t global_id,
                                      const std::vector<int32_t>& doc,
                                      int32_t size, std::string_view payload) {
  doc_ids.push_back(global_id);
  tokens.insert(tokens.end(), doc.begin(), doc.end());
  offsets.push_back(static_cast<int64_t>(tokens.size()));
  sizes.push_back(size);
  payloads.insert(payloads.end(), payload.begin(), payload.end());
  payload_offsets.push_back(static_cast<int64_t>(payloads.size()));
}

ShardedSelfJoiner::ShardedSelfJoiner(int num_shards)
    : shards_(static_cast<size_t>(ResolveShardCount(num_shards))) {}

void ShardedSelfJoiner::Add(const std::vector<int32_t>& doc) {
  const auto shard = static_cast<size_t>(
      num_docs_ % static_cast<int64_t>(shards_.size()));
  shards_[shard].Append(static_cast<int32_t>(num_docs_), doc,
                        static_cast<int32_t>(doc.size()), std::string_view());
  ++num_docs_;
}

void ShardedSelfJoiner::Add(const MeasureDoc& doc) {
  const auto shard = static_cast<size_t>(
      num_docs_ % static_cast<int64_t>(shards_.size()));
  shards_[shard].Append(static_cast<int32_t>(num_docs_), doc.tokens, doc.size,
                        doc.payload);
  ++num_docs_;
}

// ---------------------------------------------------------------------------
// Per-shard preparation (phase 1)
// ---------------------------------------------------------------------------

struct ShardedSelfJoiner::Prepared {
  /// Rank-encoded copy of the shard's tokens (same offsets as the raw
  /// shard): ascending rank == rarity order, so prefixes are leading
  /// slices and verification merges plain ranks.
  std::vector<int32_t> rank_tokens;
  /// Prefix length of each document at the join threshold.
  std::vector<int32_t> prefix_len;
  /// Per-doc measure sizes, flat — the hot lookup of the gather's size
  /// window (== signature lengths for the set measures).
  std::vector<size_t> sizes;
  /// Per-doc signature lengths, flat — what the positional filter counts.
  std::vector<size_t> tok_lens;
  /// Flat prefix postings over dense ranks, each token's list filled in
  /// ascending (size, local id) order for the binary-searched window.
  PostingsArena index;
  /// Local ids of this shard's unfilterable documents, sorted ascending by
  /// (size, local id) — the fallback bucket (edit measure only; empty for
  /// measures whose prefix scheme is complete).
  std::vector<int32_t> fallback;
};

template <typename Policy>
ShardedSelfJoiner::Prepared ShardedSelfJoiner::PrepareT(
    const Policy& policy, const Shard& shard,
    const std::vector<int32_t>& ranks, double threshold, bool build_index) {
  obs::Span span("simjoin.prepare_shard", "simjoin");
  Prepared prepared;
  prepared.rank_tokens = shard.tokens;
  const size_t n = shard.size();
  prepared.prefix_len.resize(n);
  prepared.sizes.resize(n);
  prepared.tok_lens.resize(n);
  for (size_t d = 0; d < n; ++d) {
    int32_t* begin = prepared.rank_tokens.data() + shard.offsets[d];
    int32_t* end = prepared.rank_tokens.data() + shard.offsets[d + 1];
    RankEncodeRange(begin, end, ranks);
    const auto tok_len = static_cast<size_t>(end - begin);
    prepared.tok_lens[d] = tok_len;
    prepared.sizes[d] = static_cast<size_t>(shard.sizes[d]);
    prepared.prefix_len[d] = static_cast<int32_t>(
        policy.PrefixLen(threshold, begin, tok_len, prepared.sizes[d]));
  }
  if (build_index) {
    BuildLengthOrderedPostings(
        prepared.index, ranks.size(), prepared.sizes, prepared.prefix_len,
        [&prepared, &shard](int32_t d) {
          return prepared.rank_tokens.data() +
                 shard.offsets[static_cast<size_t>(d)];
        });
    if constexpr (Policy::kUsesFallback) {
      for (size_t d = 0; d < n; ++d) {
        if (policy.Unfilterable(threshold, prepared.tok_lens[d],
                                prepared.sizes[d])) {
          prepared.fallback.push_back(static_cast<int32_t>(d));
        }
      }
      std::sort(prepared.fallback.begin(), prepared.fallback.end(),
                [&prepared](int32_t x, int32_t y) {
                  const size_t sx = prepared.sizes[static_cast<size_t>(x)];
                  const size_t sy = prepared.sizes[static_cast<size_t>(y)];
                  if (sx != sy) return sx < sy;
                  return x < y;
                });
    }
  }
  return prepared;
}

// ---------------------------------------------------------------------------
// Shard-vs-shard probe (phase 2)
// ---------------------------------------------------------------------------

template <typename Policy>
void ShardedSelfJoiner::ProbeTaskT(const Policy& policy,
                                   const Shard& target_raw,
                                   const Prepared& target,
                                   const Shard& probe_raw,
                                   const Prepared& probe, bool same_shard,
                                   bool bipartite_emit, double threshold,
                                   std::vector<ScoredPair>& out) {
  std::vector<int32_t> last_seen(target_raw.size(), -1);
  std::vector<JoinCandidate> candidates;  // scratch, reused across probes
  const size_t out_before = out.size();
  int64_t num_gathered = 0;  // candidates entering verification, this task
  const auto size_of = [&target](int32_t doc) {
    return target.sizes[static_cast<size_t>(doc)];
  };
  const auto tok_len_of = [&target](int32_t doc) {
    return target.tok_lens[static_cast<size_t>(doc)];
  };
  for (size_t j = 0; j < probe_raw.size(); ++j) {
    const int64_t begin_j = probe_raw.offsets[j];
    const size_t tok_len_j = probe.tok_lens[j];
    if (tok_len_j == 0) continue;
    const size_t size_j = probe.sizes[j];
    const auto prefix_j = static_cast<size_t>(probe.prefix_len[j]);
    const size_t min_size = policy.MinSize(threshold, size_j);
    const size_t max_size = policy.MaxSize(threshold, size_j);
    const int32_t* probe_ranks =
        probe.rank_tokens.data() + static_cast<size_t>(begin_j);

    candidates.clear();
    // Same-shard tasks emit each unordered pair once: only the earlier
    // (smaller-global-id, i.e. smaller local position) partner.
    const auto skip = [same_shard, j](int32_t i) {
      return same_shard && i >= static_cast<int32_t>(j);
    };
    const auto required_of = [&policy, threshold, tok_len_j,
                              size_j](size_t cand_size) {
      return policy.Required(threshold, tok_len_j, size_j, cand_size);
    };
    GatherPositionalCandidates(target.index, probe_ranks, prefix_j, tok_len_j,
                               min_size, max_size, static_cast<int32_t>(j),
                               last_seen, size_of, tok_len_of, required_of,
                               skip, candidates);
    if constexpr (Policy::kUsesFallback) {
      // Unfilterable probes also sweep the target shard's fallback bucket;
      // shared last_seen keeps postings-found partners from re-emitting.
      if (policy.Unfilterable(threshold, tok_len_j, size_j)) {
        GatherFallbackCandidates(target.fallback, min_size, max_size,
                                 static_cast<int32_t>(j), last_seen, size_of,
                                 skip, candidates);
      }
    }
    num_gathered += static_cast<int64_t>(candidates.size());
    const internal::MeasureDocRef probe_ref{probe_ranks, tok_len_j, size_j,
                                            probe_raw.payload(j)};
    for (const JoinCandidate& cand : candidates) {
      const auto i = static_cast<size_t>(cand.doc);
      const int32_t* target_ranks =
          target.rank_tokens.data() + target_raw.offsets[i];
      const internal::MeasureDocRef target_ref{target_ranks, target.tok_lens[i],
                                               target.sizes[i],
                                               target_raw.payload(i)};
      const double score = policy.Verify(
          target_ref, probe_ref, static_cast<size_t>(cand.index_pos),
          static_cast<size_t>(cand.probe_pos), threshold);
      if (score + 1e-12 >= threshold) {
        const int32_t gi = target_raw.doc_ids[i];
        const int32_t gj = probe_raw.doc_ids[j];
        if (bipartite_emit) {
          out.push_back({gi, gj, score});
        } else {
          out.push_back({std::min(gi, gj), std::max(gi, gj), score});
        }
      }
    }
  }
  JoinMetrics& metrics = JoinMetrics::Get();
  metrics.prefilter_candidates_total->Inc(num_gathered);
  metrics.pairs_emitted_total->Inc(
      static_cast<int64_t>(out.size() - out_before));
}

// ---------------------------------------------------------------------------
// Incremental probe-task cursor
// ---------------------------------------------------------------------------

struct ShardedJoinCursor::Impl {
  double threshold = 0.0;
  bool bipartite = false;
  /// The measure this cursor's tasks run under; the policy dispatch
  /// happens per task, so one cursor type serves every measure.
  const SimilarityMeasure* measure = nullptr;
  /// Per-rank idf weights, populated for the cosine measure only; the
  /// cosine policy holds a pointer into this for the cursor's lifetime.
  std::vector<double> cosine_weights;
  // Self-join: both sides point at the same joiner/prepared set.
  const ShardedSelfJoiner* target_joiner = nullptr;
  const ShardedSelfJoiner* probe_joiner = nullptr;
  std::vector<ShardedSelfJoiner::Prepared> target_prepared;
  std::vector<ShardedSelfJoiner::Prepared> probe_prepared;  // bipartite only
  // Fixed task order, identical to the one-shot drivers'.
  std::vector<std::pair<int32_t, int32_t>> tasks;
  int64_t next_task = 0;
};

ShardedJoinCursor::ShardedJoinCursor(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

ShardedJoinCursor::~ShardedJoinCursor() = default;
ShardedJoinCursor::ShardedJoinCursor(ShardedJoinCursor&&) noexcept = default;
ShardedJoinCursor& ShardedJoinCursor::operator=(ShardedJoinCursor&&) noexcept =
    default;

int64_t ShardedJoinCursor::num_tasks() const {
  return static_cast<int64_t>(impl_->tasks.size());
}

int64_t ShardedJoinCursor::tasks_done() const { return impl_->next_task; }

Result<std::vector<ScoredPair>> ShardedJoinCursor::NextBatch(
    int64_t max_tasks, ThreadPool* pool) {
  if (max_tasks < 1) {
    return Status::InvalidArgument("max_tasks must be >= 1");
  }
  Impl& impl = *impl_;
  const int64_t begin = impl.next_task;
  const int64_t end =
      std::min(num_tasks(), begin + max_tasks);
  impl.next_task = end;
  std::vector<std::vector<ScoredPair>> per_task =
      ParallelMap(pool, end - begin, [&](int64_t i) {
        const auto [a, b] = impl.tasks[static_cast<size_t>(begin + i)];
        const auto& probe_prepared =
            impl.bipartite ? impl.probe_prepared : impl.target_prepared;
        obs::Span span("simjoin.probe_task", "simjoin");
        JoinMetrics::Get().probe_tasks_total->Inc();
        std::vector<ScoredPair> out;
        internal::DispatchMeasure(
            *impl.measure, &impl.cosine_weights, [&](auto policy) {
              ShardedSelfJoiner::ProbeTaskT(
                  policy, impl.target_joiner->shards_[static_cast<size_t>(a)],
                  impl.target_prepared[static_cast<size_t>(a)],
                  impl.probe_joiner->shards_[static_cast<size_t>(b)],
                  probe_prepared[static_cast<size_t>(b)],
                  /*same_shard=*/!impl.bipartite && a == b,
                  /*bipartite_emit=*/impl.bipartite, impl.threshold, out);
            });
        return out;
      });
  return MergeTaskOutputs(std::move(per_task));
}

// ---------------------------------------------------------------------------
// Self-join driver
// ---------------------------------------------------------------------------

Result<ShardedJoinCursor> ShardedSelfJoiner::MakeCursor(
    const TokenDictionary& dictionary, const SimilarityMeasure& measure,
    double threshold, ThreadPool* pool) const {
  CJ_RETURN_IF_ERROR(ValidateJoinThreshold(threshold));
  const auto num_shards = static_cast<int64_t>(shards_.size());

  // The rarity permutation is dictionary-wide: compute it once, share it
  // with every per-shard preparation task.
  const std::vector<int32_t> ranks = dictionary.RarityRanks();

  auto impl = std::make_unique<ShardedJoinCursor::Impl>();
  impl->threshold = threshold;
  impl->bipartite = false;
  impl->measure = &measure;
  // Cosine prefixes are weight-driven, so the weights must exist before
  // phase 1 runs.
  if (measure.kind() == MeasureKind::kCosineTfIdf) {
    impl->cosine_weights = CosineRankWeights(dictionary, ranks);
  }
  impl->target_joiner = this;
  impl->probe_joiner = this;
  // Phase 1: every shard's rank order + prefix postings, in parallel.
  impl->target_prepared = ParallelMap(pool, num_shards, [&](int64_t s) {
    return internal::DispatchMeasure(
        measure, &impl->cosine_weights, [&](auto policy) {
          return PrepareT(policy, shards_[static_cast<size_t>(s)], ranks,
                          threshold, /*build_index=*/true);
        });
  });
  // Phase 2's plan: one task per unordered shard pairing (a <= b): probe
  // shard b's documents against shard a's prefix index.
  impl->tasks.reserve(static_cast<size_t>(num_shards * (num_shards + 1) / 2));
  for (int32_t a = 0; a < num_shards; ++a) {
    for (int32_t b = a; b < num_shards; ++b) impl->tasks.push_back({a, b});
  }
  return ShardedJoinCursor(std::move(impl));
}

Result<ShardedJoinCursor> ShardedSelfJoiner::MakeCursor(
    const TokenDictionary& dictionary, double threshold,
    ThreadPool* pool) const {
  return MakeCursor(dictionary, SimilarityMeasure::Jaccard(), threshold, pool);
}

Result<std::vector<ScoredPair>> ShardedSelfJoiner::Finish(
    const TokenDictionary& dictionary, const SimilarityMeasure& measure,
    double threshold, ThreadPool* pool) const {
  CJ_ASSIGN_OR_RETURN(ShardedJoinCursor cursor,
                      MakeCursor(dictionary, measure, threshold, pool));
  // Draining every task in one batch is exactly the one-shot join.
  return cursor.NextBatch(std::max<int64_t>(cursor.num_tasks(), 1), pool);
}

Result<std::vector<ScoredPair>> ShardedSelfJoiner::Finish(
    const TokenDictionary& dictionary, double threshold,
    ThreadPool* pool) const {
  return Finish(dictionary, SimilarityMeasure::Jaccard(), threshold, pool);
}

// ---------------------------------------------------------------------------
// Bipartite driver
// ---------------------------------------------------------------------------

ShardedBipartiteJoiner::ShardedBipartiteJoiner(int num_shards)
    : left_(num_shards), right_(num_shards) {}

void ShardedBipartiteJoiner::AddLeft(const std::vector<int32_t>& doc) {
  left_.Add(doc);
}

void ShardedBipartiteJoiner::AddRight(const std::vector<int32_t>& doc) {
  right_.Add(doc);
}

void ShardedBipartiteJoiner::AddLeft(const MeasureDoc& doc) {
  left_.Add(doc);
}

void ShardedBipartiteJoiner::AddRight(const MeasureDoc& doc) {
  right_.Add(doc);
}

Result<ShardedJoinCursor> ShardedBipartiteJoiner::MakeCursor(
    const TokenDictionary& dictionary, const SimilarityMeasure& measure,
    double threshold, ThreadPool* pool) const {
  CJ_RETURN_IF_ERROR(ValidateJoinThreshold(threshold));
  const auto left_shards = static_cast<int64_t>(left_.shards_.size());
  const auto right_shards = static_cast<int64_t>(right_.shards_.size());

  const std::vector<int32_t> ranks = dictionary.RarityRanks();

  auto impl = std::make_unique<ShardedJoinCursor::Impl>();
  impl->threshold = threshold;
  impl->bipartite = true;
  impl->measure = &measure;
  if (measure.kind() == MeasureKind::kCosineTfIdf) {
    impl->cosine_weights = CosineRankWeights(dictionary, ranks);
  }
  impl->target_joiner = &left_;
  impl->probe_joiner = &right_;
  // Left shards carry the index; right shards only need prefixes.
  impl->target_prepared = ParallelMap(pool, left_shards, [&](int64_t s) {
    return internal::DispatchMeasure(
        measure, &impl->cosine_weights, [&](auto policy) {
          return ShardedSelfJoiner::PrepareT(
              policy, left_.shards_[static_cast<size_t>(s)], ranks, threshold,
              /*build_index=*/true);
        });
  });
  impl->probe_prepared = ParallelMap(pool, right_shards, [&](int64_t s) {
    return internal::DispatchMeasure(
        measure, &impl->cosine_weights, [&](auto policy) {
          return ShardedSelfJoiner::PrepareT(
              policy, right_.shards_[static_cast<size_t>(s)], ranks, threshold,
              /*build_index=*/false);
        });
  });

  // One task per left-shard x right-shard pairing.
  impl->tasks.reserve(static_cast<size_t>(left_shards * right_shards));
  for (int32_t a = 0; a < left_shards; ++a) {
    for (int32_t b = 0; b < right_shards; ++b) impl->tasks.push_back({a, b});
  }
  return ShardedJoinCursor(std::move(impl));
}

Result<ShardedJoinCursor> ShardedBipartiteJoiner::MakeCursor(
    const TokenDictionary& dictionary, double threshold,
    ThreadPool* pool) const {
  return MakeCursor(dictionary, SimilarityMeasure::Jaccard(), threshold, pool);
}

Result<std::vector<ScoredPair>> ShardedBipartiteJoiner::Finish(
    const TokenDictionary& dictionary, const SimilarityMeasure& measure,
    double threshold, ThreadPool* pool) const {
  CJ_ASSIGN_OR_RETURN(ShardedJoinCursor cursor,
                      MakeCursor(dictionary, measure, threshold, pool));
  return cursor.NextBatch(std::max<int64_t>(cursor.num_tasks(), 1), pool);
}

Result<std::vector<ScoredPair>> ShardedBipartiteJoiner::Finish(
    const TokenDictionary& dictionary, double threshold,
    ThreadPool* pool) const {
  return Finish(dictionary, SimilarityMeasure::Jaccard(), threshold, pool);
}

// ---------------------------------------------------------------------------
// Convenience wrappers
// ---------------------------------------------------------------------------

Result<std::vector<ScoredPair>> ShardedSelfJoin(
    const std::vector<std::vector<int32_t>>& docs,
    const TokenDictionary& dictionary, double threshold,
    const ShardedJoinOptions& options) {
  ShardedSelfJoiner joiner(options.num_shards);
  for (const auto& doc : docs) joiner.Add(doc);
  if (options.num_threads > 0) {
    ThreadPool pool(options.num_threads);
    return joiner.Finish(dictionary, threshold, &pool);
  }
  return joiner.Finish(dictionary, threshold, nullptr);
}

Result<std::vector<ScoredPair>> ShardedBipartiteJoin(
    const std::vector<std::vector<int32_t>>& left,
    const std::vector<std::vector<int32_t>>& right,
    const TokenDictionary& dictionary, double threshold,
    const ShardedJoinOptions& options) {
  ShardedBipartiteJoiner joiner(options.num_shards);
  for (const auto& doc : left) joiner.AddLeft(doc);
  for (const auto& doc : right) joiner.AddRight(doc);
  if (options.num_threads > 0) {
    ThreadPool pool(options.num_threads);
    return joiner.Finish(dictionary, threshold, &pool);
  }
  return joiner.Finish(dictionary, threshold, nullptr);
}

Result<std::vector<ScoredPair>> ShardedMeasureSelfJoin(
    const std::vector<MeasureDoc>& docs, const TokenDictionary& dictionary,
    const SimilarityMeasure& measure, double threshold,
    const ShardedJoinOptions& options) {
  ShardedSelfJoiner joiner(options.num_shards);
  for (const auto& doc : docs) joiner.Add(doc);
  if (options.num_threads > 0) {
    ThreadPool pool(options.num_threads);
    return joiner.Finish(dictionary, measure, threshold, &pool);
  }
  return joiner.Finish(dictionary, measure, threshold, nullptr);
}

Result<std::vector<ScoredPair>> ShardedMeasureBipartiteJoin(
    const std::vector<MeasureDoc>& left, const std::vector<MeasureDoc>& right,
    const TokenDictionary& dictionary, const SimilarityMeasure& measure,
    double threshold, const ShardedJoinOptions& options) {
  ShardedBipartiteJoiner joiner(options.num_shards);
  for (const auto& doc : left) joiner.AddLeft(doc);
  for (const auto& doc : right) joiner.AddRight(doc);
  if (options.num_threads > 0) {
    ThreadPool pool(options.num_threads);
    return joiner.Finish(dictionary, measure, threshold, &pool);
  }
  return joiner.Finish(dictionary, measure, threshold, nullptr);
}

}  // namespace crowdjoin
