#include "core/labeling_order.h"

#include <algorithm>
#include <numeric>

namespace crowdjoin {

std::string_view OrderKindToString(OrderKind kind) {
  switch (kind) {
    case OrderKind::kOptimal:
      return "Optimal Order";
    case OrderKind::kExpected:
      return "Expected Order";
    case OrderKind::kRandom:
      return "Random Order";
    case OrderKind::kWorst:
      return "Worst Order";
  }
  return "?";
}

Result<std::vector<int32_t>> MakeLabelingOrder(const CandidateSet& pairs,
                                               OrderKind kind,
                                               const GroundTruthOracle* truth,
                                               Rng* rng) {
  std::vector<int32_t> order(pairs.size());
  std::iota(order.begin(), order.end(), 0);

  // Deterministic tie-break: decreasing likelihood, then position.
  auto by_likelihood_desc = [&pairs](int32_t x, int32_t y) {
    const auto& px = pairs[static_cast<size_t>(x)];
    const auto& py = pairs[static_cast<size_t>(y)];
    if (px.likelihood != py.likelihood) return px.likelihood > py.likelihood;
    return x < y;
  };

  switch (kind) {
    case OrderKind::kExpected:
      std::sort(order.begin(), order.end(), by_likelihood_desc);
      return order;
    case OrderKind::kRandom:
      if (rng == nullptr) {
        return Status::InvalidArgument("random order requires an Rng");
      }
      rng->Shuffle(order);
      return order;
    case OrderKind::kOptimal:
    case OrderKind::kWorst: {
      if (truth == nullptr) {
        return Status::InvalidArgument(
            "optimal/worst orders require ground truth");
      }
      const Label first_group =
          kind == OrderKind::kOptimal ? Label::kMatching : Label::kNonMatching;
      std::sort(order.begin(), order.end(),
                [&](int32_t x, int32_t y) {
                  const auto& px = pairs[static_cast<size_t>(x)];
                  const auto& py = pairs[static_cast<size_t>(y)];
                  const bool gx = truth->Truth(px.a, px.b) == first_group;
                  const bool gy = truth->Truth(py.a, py.b) == first_group;
                  if (gx != gy) return gx;
                  return by_likelihood_desc(x, y);
                });
      return order;
    }
  }
  return Status::InvalidArgument("unknown order kind");
}

}  // namespace crowdjoin
