#ifndef CROWDJOIN_SIMJOIN_POSTINGS_INDEX_H_
#define CROWDJOIN_SIMJOIN_POSTINGS_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "text/set_similarity.h"

namespace crowdjoin {

/// One prefix-index entry: the document holding the token and the token's
/// position within that document's rank-ordered prefix — the position is
/// what powers the PPJoin positional filter.
struct Posting {
  int32_t doc = 0;
  int32_t pos = 0;
};

/// \brief Flat, arena-backed postings table over dense token ranks.
///
/// Token ids (and the rarity ranks derived from them) are dense, so the
/// prefix index needs no hashing: `Build` turns per-token posting counts
/// into a CSR offset table over one flat `Posting` array, and `Append`
/// fills each token's pre-sized slot through a write cursor. Lookups read
/// the *filled* range `[offsets[t], cursors[t])`, which makes the same
/// structure serve both fully built indexes (bipartite left side, shard
/// indexes) and the self-join's incremental index, where documents are
/// appended as the probe sweep passes them.
///
/// Every join path shares this table; the fill order is the caller's
/// contract with itself — both sequential and sharded joins append in
/// ascending document length so `GatherPositionalCandidates` can
/// binary-search the length window instead of length-testing every
/// posting.
class PostingsArena {
 public:
  /// Sizes the arena: `counts[t]` postings will be appended for token t.
  /// Resets all cursors to empty.
  void Build(const std::vector<int32_t>& counts) {
    offsets_.assign(counts.size() + 1, 0);
    for (size_t t = 0; t < counts.size(); ++t) {
      offsets_[t + 1] = offsets_[t] + counts[t];
    }
    cursors_.assign(offsets_.begin(), offsets_.end() - 1);
    postings_.resize(static_cast<size_t>(offsets_.back()));
  }

  /// Appends one posting into `token`'s slot. The caller must not exceed
  /// the count it declared in `Build`.
  void Append(int32_t token, int32_t doc, int32_t pos) {
    postings_[static_cast<size_t>(cursors_[static_cast<size_t>(token)]++)] =
        {doc, pos};
  }

  /// Filled postings of `token`: `[begin, end)`.
  const Posting* begin(int32_t token) const {
    return postings_.data() + offsets_[static_cast<size_t>(token)];
  }
  const Posting* end(int32_t token) const {
    return postings_.data() + cursors_[static_cast<size_t>(token)];
  }

  size_t num_tokens() const { return cursors_.size(); }
  size_t size() const { return postings_.size(); }

 private:
  std::vector<int32_t> offsets_;  ///< token -> slot begin; size tokens + 1
  std::vector<int32_t> cursors_;  ///< token -> filled end within its slot
  std::vector<Posting> postings_;
};

/// Rank-encodes a document: maps token ids through the rarity permutation
/// and sorts ascending. The result is the document in `SortByRarity`
/// order, represented so that plain int32 comparisons *are* the rarity
/// order — prefixes are leading slices and verification merges ranks
/// directly.
inline void RankEncode(const std::vector<int32_t>& doc,
                       const std::vector<int32_t>& ranks,
                       std::vector<int32_t>& out) {
  out.resize(doc.size());
  for (size_t k = 0; k < doc.size(); ++k) {
    out[k] = ranks[static_cast<size_t>(doc[k])];
  }
  std::sort(out.begin(), out.end());
}

/// In-place range variant of `RankEncode` for documents living in flat
/// arena buffers (the sharded join's shards).
inline void RankEncodeRange(int32_t* first, int32_t* last,
                            const std::vector<int32_t>& ranks) {
  for (int32_t* p = first; p != last; ++p) {
    *p = ranks[static_cast<size_t>(*p)];
  }
  std::sort(first, last);
}

/// \brief Builds a fully populated arena over `num_tokens` dense token
/// ranks from `n` documents' prefixes, filling every token's postings in
/// ascending (length, doc id) order — the exact contract
/// `GatherPositionalCandidates`' binary-searched length window depends
/// on, encoded here once for every join path that indexes up front.
///
/// `prefix_of(d)` returns the document's rank-encoded token pointer;
/// `lens[d]` its length; `prefix_lens[d]` how many leading tokens are
/// indexed. (The sequential self-join doesn't use this: it sizes the
/// arena from the same counts but fills incrementally during its
/// ascending-size sweep, which yields the same order.)
template <typename PrefixOf>
inline void BuildLengthOrderedPostings(PostingsArena& index,
                                       size_t num_tokens,
                                       const std::vector<size_t>& lens,
                                       const std::vector<int32_t>& prefix_lens,
                                       PrefixOf prefix_of) {
  const size_t n = lens.size();
  std::vector<int32_t> counts(num_tokens, 0);
  for (size_t d = 0; d < n; ++d) {
    const int32_t* prefix = prefix_of(static_cast<int32_t>(d));
    const auto prefix_len = static_cast<size_t>(prefix_lens[d]);
    for (size_t p = 0; p < prefix_len; ++p) ++counts[prefix[p]];
  }
  std::vector<int32_t> by_size(n);
  for (size_t d = 0; d < n; ++d) by_size[d] = static_cast<int32_t>(d);
  std::sort(by_size.begin(), by_size.end(),
            [&lens](int32_t x, int32_t y) {
              const size_t lx = lens[static_cast<size_t>(x)];
              const size_t ly = lens[static_cast<size_t>(y)];
              if (lx != ly) return lx < ly;
              return x < y;
            });
  index.Build(counts);
  for (const int32_t d : by_size) {
    const int32_t* prefix = prefix_of(d);
    const auto prefix_len =
        static_cast<size_t>(prefix_lens[static_cast<size_t>(d)]);
    for (size_t p = 0; p < prefix_len; ++p) {
      index.Append(prefix[p], d, static_cast<int32_t>(p));
    }
  }
}

/// A candidate that survived the length window and the positional filter,
/// plus the seed for resumed verification: the first shared prefix token
/// sits at `probe_pos` in the probe document and `index_pos` in the
/// candidate — verification restarts just past it with one overlap
/// banked instead of re-merging the matched prefixes.
struct JoinCandidate {
  int32_t doc = 0;
  int32_t probe_pos = 0;
  int32_t index_pos = 0;
};

/// \brief The candidate-gather loop shared by every join path: probe one
/// document's prefix against a postings arena, deduplicate via
/// `last_seen`, window by measure size, and prune with the PPJoin
/// positional filter.
///
/// Measure-generic via three accessors. `size_of(doc)` is the candidate's
/// measure size — the dimension the size window cuts on (token count for
/// the set measures, normalized string length for edit distance).
/// `tok_len_of(doc)` is its signature length, which the positional bound
/// counts in; for the set measures the two coincide. `required_of(size)`
/// maps a candidate size to the measure's minimum signature overlap for
/// this probe (the caller closes over the threshold and the probe's own
/// dimensions). `skip(doc)` is an extra reject (the sharded self-join's
/// same-shard ordering rule) that still marks `last_seen`. `probe_mark`
/// must be unique per probe document against a given `last_seen` array
/// (initialized to -1).
///
/// Size window: postings lists must be sorted ascending by
/// `size_of(doc)`; the `[min_size, max_size]` window is then located by
/// binary search, with O(1) endpoint pre-checks so fully qualifying lists
/// (the common case) skip the searches. Pass a huge `max_size` when only
/// the lower bound applies (the sequential self-join indexes only
/// smaller-or-equal documents).
///
/// Positional filter: `last_seen` dedupe means a candidate is visited at
/// the *first* shared prefix token — no smaller-rank token is common,
/// because prefixes are leading slices of the ascending rank order, so a
/// smaller common token would sit inside both prefixes and would have
/// matched earlier. The total signature overlap is therefore at most this
/// token plus everything after it on both sides; candidates whose bound
/// cannot reach `required_of` are dropped before verification ever
/// touches them — exactly the pairs bounded verification would have
/// rejected, so join output is unchanged.
template <typename SizeOf, typename TokLenOf, typename RequiredOf,
          typename Skip>
inline void GatherPositionalCandidates(
    const PostingsArena& index, const int32_t* probe_prefix,
    size_t prefix_len, size_t probe_tok_len, size_t min_size,
    size_t max_size, int32_t probe_mark, std::vector<int32_t>& last_seen,
    SizeOf size_of, TokLenOf tok_len_of, RequiredOf required_of, Skip skip,
    std::vector<JoinCandidate>& out) {
  // Within one probe the required overlap depends only on the candidate
  // size, and postings arrive in ascending-size runs — memoize the last
  // (size -> required) pair instead of paying the fp divide + ceil per
  // posting. Same function, same arguments: bit-identical results.
  size_t memo_size = std::numeric_limits<size_t>::max();
  size_t memo_required = 0;
  for (size_t p = 0; p < prefix_len; ++p) {
    const int32_t token = probe_prefix[p];
    const Posting* begin = index.begin(token);
    const Posting* end = index.end(token);
    if (begin == end) continue;
    if (size_of(begin->doc) < min_size) {
      begin = std::partition_point(begin, end, [&](const Posting& e) {
        return size_of(e.doc) < min_size;
      });
    }
    if (begin != end && size_of((end - 1)->doc) > max_size) {
      end = std::partition_point(begin, end, [&](const Posting& e) {
        return size_of(e.doc) <= max_size;
      });
    }
    for (const Posting* it = begin; it != end; ++it) {
      const int32_t doc = it->doc;
      if (last_seen[static_cast<size_t>(doc)] == probe_mark) continue;
      last_seen[static_cast<size_t>(doc)] = probe_mark;
      if (skip(doc)) continue;
      const size_t size = size_of(doc);
      if (size != memo_size) {
        memo_size = size;
        memo_required = required_of(size);
      }
      const size_t upper_bound =
          1 + std::min(probe_tok_len - p - 1,
                       tok_len_of(doc) - static_cast<size_t>(it->pos) - 1);
      if (upper_bound < memo_required) continue;
      out.push_back({doc, static_cast<int32_t>(p), it->pos});
    }
  }
}

/// \brief Size-windowed sweep of a measure's fallback bucket — the indexed
/// documents whose signatures are too short for the prefix scheme to be
/// complete on (the edit measure's `Unfilterable` documents, whose
/// qualifying partners may share *zero* signature tokens).
///
/// `docs` must be sorted ascending by `(size_of(doc), doc)` so the
/// `[min_size, max_size]` window binary-searches the same way the postings
/// window does. Only unfilterable *probes* scan the bucket — a filterable
/// probe's qualifying pairs are already complete through the postings (an
/// unfilterable indexed document's prefix is its whole signature).
/// Candidates carry no seed positions (`{doc, 0, 0}`); fallback-using
/// measures verify from scratch. Shares `last_seen`/`probe_mark` with
/// `GatherPositionalCandidates`, so a document already gathered through a
/// shared token is not re-emitted — call this *after* the postings gather
/// for the same probe.
template <typename SizeOf, typename Skip>
inline void GatherFallbackCandidates(
    const std::vector<int32_t>& docs, size_t min_size, size_t max_size,
    int32_t probe_mark, std::vector<int32_t>& last_seen, SizeOf size_of,
    Skip skip, std::vector<JoinCandidate>& out) {
  const int32_t* begin = docs.data();
  const int32_t* end = begin + docs.size();
  if (begin == end) return;
  if (size_of(*begin) < min_size) {
    begin = std::partition_point(
        begin, end, [&](int32_t d) { return size_of(d) < min_size; });
  }
  if (begin != end && size_of(*(end - 1)) > max_size) {
    end = std::partition_point(
        begin, end, [&](int32_t d) { return size_of(d) <= max_size; });
  }
  for (const int32_t* it = begin; it != end; ++it) {
    const int32_t doc = *it;
    if (last_seen[static_cast<size_t>(doc)] == probe_mark) continue;
    last_seen[static_cast<size_t>(doc)] = probe_mark;
    if (skip(doc)) continue;
    out.push_back({doc, 0, 0});
  }
}

}  // namespace crowdjoin

#endif  // CROWDJOIN_SIMJOIN_POSTINGS_INDEX_H_
