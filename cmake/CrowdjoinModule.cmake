# crowdjoin_add_module(<name> SOURCES <files...> [DEPS <modules...>])
#
# Defines the static library crowdjoin_<name> with the alias
# crowdjoin::<name>. Every module publishes BOTH include roots used in the
# tree:
#
#   - ${PROJECT_SOURCE_DIR}      for repo-root-relative includes, e.g.
#                                "tests/core/test_fixtures.h",
#                                "bench/bench_util.h"
#   - ${PROJECT_SOURCE_DIR}/src  for src-relative includes, e.g.
#                                "common/rng.h", "graph/cluster_graph.h"
#
# src/, tests/, bench/, and examples/ code therefore never needs its own
# include_directories — linking any crowdjoin:: module is enough.
#
# DEPS are other module names (without the crowdjoin_ prefix) and are
# linked PUBLIC so transitive usage requirements propagate.

# Single definition of the project warning flags; linked PRIVATE by every
# factory function (modules, tests, benches, examples).
add_library(crowdjoin_warnings INTERFACE)
if(CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
  target_compile_options(crowdjoin_warnings INTERFACE -Wall -Wextra)
endif()
add_library(crowdjoin::warnings ALIAS crowdjoin_warnings)

function(crowdjoin_add_module NAME)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  if(NOT ARG_SOURCES)
    message(FATAL_ERROR "crowdjoin_add_module(${NAME}) needs SOURCES")
  endif()

  set(target crowdjoin_${NAME})
  add_library(${target} STATIC ${ARG_SOURCES})
  add_library(crowdjoin::${NAME} ALIAS ${target})

  target_include_directories(${target} PUBLIC
    ${PROJECT_SOURCE_DIR}
    ${PROJECT_SOURCE_DIR}/src)
  target_compile_features(${target} PUBLIC cxx_std_20)
  target_link_libraries(${target} PRIVATE crowdjoin::warnings)

  foreach(dep IN LISTS ARG_DEPS)
    target_link_libraries(${target} PUBLIC crowdjoin::${dep})
  endforeach()
endfunction()
