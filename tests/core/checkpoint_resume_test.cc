// Kill-and-resume behavior of LabelingSession::RunStream: a campaign
// restored from its checkpoint file must finish with a report identical to
// an uninterrupted run's, and a checkpoint written by a different campaign
// (or replayed against a different stream) must be refused, not resumed.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "common/serialize.h"
#include "core/labeling_session.h"
#include "tests/core/test_fixtures.h"

namespace crowdjoin {
namespace {

using testing_fixtures::MakeRandomInstance;
using testing_fixtures::ThreadSafeCountingOracle;

constexpr size_t kRoundSize = 25;
constexpr uint64_t kFingerprint = 0x5EED5EED5EED5EEDull;

LabelingSessionOptions Options(SchedulePolicy schedule,
                               StopPolicy stop = StopPolicy::Unbounded()) {
  LabelingSessionOptions options;
  options.schedule = schedule;
  options.stop = stop;
  return options;
}

Result<LabelingReport> RunCampaign(
    const CandidateSet& pairs, const LabelingSessionOptions& options,
    LabelOracle& oracle, const SessionCheckpointOptions* checkpoint,
    OrderKind order = OrderKind::kExpected, Rng* order_rng = nullptr,
    size_t round_size = kRoundSize) {
  LabelingSession session(options);
  MaterializedCandidateStream stream(&pairs, round_size);
  return session.RunStream(stream, order, oracle, /*truth=*/nullptr,
                           order_rng, checkpoint);
}

// Runs the campaign with checkpointing, capturing the checkpoint file as it
// stood after `kill_after_rounds` rounds, then writes that stale frontier
// back — the state a SIGKILL at that instant would have left on disk.
void RunAndRewindTo(const CandidateSet& pairs,
                    const LabelingSessionOptions& options, LabelOracle& oracle,
                    SessionCheckpointOptions checkpoint,
                    int64_t kill_after_rounds,
                    const LabelingReport& expected_full,
                    OrderKind order = OrderKind::kExpected,
                    Rng* order_rng = nullptr) {
  std::string frozen;
  checkpoint.after_write = [&](int64_t completed_rounds) {
    if (completed_rounds == kill_after_rounds) {
      frozen = ReadFileToString(checkpoint.path).value();
    }
  };
  const LabelingReport full =
      RunCampaign(pairs, options, oracle, &checkpoint, order, order_rng)
          .value();
  EXPECT_TRUE(full == expected_full);
  ASSERT_FALSE(frozen.empty());
  ASSERT_TRUE(AtomicWriteFile(checkpoint.path, frozen).ok());
}

TEST(CheckpointResume, ResumeMatchesUninterruptedRun) {
  const auto instance = MakeRandomInstance(31, 40, 8, 160);
  for (SchedulePolicy schedule :
       {SchedulePolicy::kSequential, SchedulePolicy::kRoundParallel}) {
    const std::string path =
        ::testing::TempDir() + "cj_resume_" +
        std::string(SchedulePolicyToString(schedule)) + ".ckpt";
    std::remove(path.c_str());

    ThreadSafeCountingOracle baseline_oracle(instance.entity_of);
    const LabelingReport baseline =
        RunCampaign(instance.pairs, Options(schedule), baseline_oracle,
                    /*checkpoint=*/nullptr)
            .value();

    SessionCheckpointOptions checkpoint;
    checkpoint.path = path;
    checkpoint.fingerprint = kFingerprint;
    ThreadSafeCountingOracle full_oracle(instance.entity_of);
    RunAndRewindTo(instance.pairs, Options(schedule), full_oracle, checkpoint,
                   /*kill_after_rounds=*/3, baseline);

    // Resume from the round-3 frontier: the report must equal the
    // uninterrupted run's, and only the remaining rounds' pairs may reach
    // the oracle.
    ThreadSafeCountingOracle resumed_oracle(instance.entity_of);
    const LabelingReport resumed =
        RunCampaign(instance.pairs, Options(schedule), resumed_oracle,
                    &checkpoint)
            .value();
    EXPECT_TRUE(resumed == baseline) << SchedulePolicyToString(schedule);
    EXPECT_GT(resumed_oracle.total_calls(), 0);
    EXPECT_LT(resumed_oracle.total_calls(), baseline_oracle.total_calls());
    std::remove(path.c_str());
  }
}

TEST(CheckpointResume, ResumeAfterTheFinalRoundReplaysNothing) {
  const auto instance = MakeRandomInstance(32, 30, 6, 100);
  const std::string path = ::testing::TempDir() + "cj_resume_final.ckpt";
  std::remove(path.c_str());

  SessionCheckpointOptions checkpoint;
  checkpoint.path = path;
  checkpoint.fingerprint = kFingerprint;
  ThreadSafeCountingOracle full_oracle(instance.entity_of);
  const LabelingReport full =
      RunCampaign(instance.pairs, Options(SchedulePolicy::kRoundParallel),
                  full_oracle, &checkpoint)
          .value();

  // The file now covers every round; a rerun restores and crowdsources
  // nothing new.
  ThreadSafeCountingOracle resumed_oracle(instance.entity_of);
  const LabelingReport resumed =
      RunCampaign(instance.pairs, Options(SchedulePolicy::kRoundParallel),
                  resumed_oracle, &checkpoint)
          .value();
  EXPECT_TRUE(resumed == full);
  EXPECT_EQ(resumed_oracle.total_calls(), 0);
  std::remove(path.c_str());
}

TEST(CheckpointResume, RandomOrderRngStateIsRestored) {
  // The kRandom order draws from the order RNG each round, so a resumed
  // run only matches if the checkpoint restored the generator mid-stream.
  const auto instance = MakeRandomInstance(33, 36, 7, 140);
  const std::string path = ::testing::TempDir() + "cj_resume_rng.ckpt";
  std::remove(path.c_str());

  Rng baseline_rng(5);
  ThreadSafeCountingOracle baseline_oracle(instance.entity_of);
  const LabelingReport baseline =
      RunCampaign(instance.pairs, Options(SchedulePolicy::kRoundParallel),
                  baseline_oracle, /*checkpoint=*/nullptr, OrderKind::kRandom,
                  &baseline_rng)
          .value();

  SessionCheckpointOptions checkpoint;
  checkpoint.path = path;
  checkpoint.fingerprint = kFingerprint;
  Rng full_rng(5);
  ThreadSafeCountingOracle full_oracle(instance.entity_of);
  RunAndRewindTo(instance.pairs, Options(SchedulePolicy::kRoundParallel),
                 full_oracle, checkpoint, /*kill_after_rounds=*/2, baseline,
                 OrderKind::kRandom, &full_rng);

  Rng resumed_rng(5);  // fresh seed; RestoreState must fast-forward it
  ThreadSafeCountingOracle resumed_oracle(instance.entity_of);
  const LabelingReport resumed =
      RunCampaign(instance.pairs, Options(SchedulePolicy::kRoundParallel),
                  resumed_oracle, &checkpoint, OrderKind::kRandom,
                  &resumed_rng)
          .value();
  EXPECT_TRUE(resumed == baseline);
  std::remove(path.c_str());
}

TEST(CheckpointResume, BudgetIsCarriedAcrossTheResume) {
  const auto instance = MakeRandomInstance(34, 30, 6, 120);
  const std::string path = ::testing::TempDir() + "cj_resume_budget.ckpt";
  std::remove(path.c_str());
  const LabelingSessionOptions options =
      Options(SchedulePolicy::kSequential, StopPolicy::Budget(25));

  ThreadSafeCountingOracle baseline_oracle(instance.entity_of);
  const LabelingReport baseline =
      RunCampaign(instance.pairs, options, baseline_oracle,
                  /*checkpoint=*/nullptr)
          .value();
  EXPECT_GT(baseline.num_unlabeled, 0);  // the cap must actually bind

  SessionCheckpointOptions checkpoint;
  checkpoint.path = path;
  checkpoint.fingerprint = kFingerprint;
  ThreadSafeCountingOracle full_oracle(instance.entity_of);
  RunAndRewindTo(instance.pairs, options, full_oracle, checkpoint,
                 /*kill_after_rounds=*/2, baseline);

  ThreadSafeCountingOracle resumed_oracle(instance.entity_of);
  const LabelingReport resumed =
      RunCampaign(instance.pairs, options, resumed_oracle, &checkpoint)
          .value();
  EXPECT_TRUE(resumed == baseline);
  // Resumed crowdsourcing + checkpointed crowdsourcing = exactly the budget
  // the baseline spent, never more.
  EXPECT_LE(resumed_oracle.total_calls(), baseline.num_crowdsourced);
  std::remove(path.c_str());
}

TEST(CheckpointResume, ForeignFingerprintIsRefused) {
  const auto instance = MakeRandomInstance(35, 24, 5, 80);
  const std::string path = ::testing::TempDir() + "cj_resume_foreign.ckpt";
  std::remove(path.c_str());

  SessionCheckpointOptions checkpoint;
  checkpoint.path = path;
  checkpoint.fingerprint = 1;
  ThreadSafeCountingOracle oracle(instance.entity_of);
  ASSERT_TRUE(RunCampaign(instance.pairs,
                          Options(SchedulePolicy::kRoundParallel), oracle,
                          &checkpoint)
                  .ok());

  checkpoint.fingerprint = 2;  // same file, different campaign identity
  ThreadSafeCountingOracle other(instance.entity_of);
  EXPECT_EQ(RunCampaign(instance.pairs,
                        Options(SchedulePolicy::kRoundParallel), other,
                        &checkpoint)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointResume, MismatchedStreamIsRefused) {
  // A checkpoint records how many candidates its rounds consumed; resuming
  // against a stream with a different round shape must fail fast instead
  // of silently relabeling or skipping pairs.
  const auto instance = MakeRandomInstance(36, 30, 6, 120);
  const std::string path = ::testing::TempDir() + "cj_resume_stream.ckpt";
  std::remove(path.c_str());

  SessionCheckpointOptions checkpoint;
  checkpoint.path = path;
  checkpoint.fingerprint = kFingerprint;
  ThreadSafeCountingOracle oracle(instance.entity_of);
  const LabelingReport baseline =
      RunCampaign(instance.pairs, Options(SchedulePolicy::kRoundParallel),
                  oracle, /*checkpoint=*/nullptr)
          .value();
  ThreadSafeCountingOracle full_oracle(instance.entity_of);
  RunAndRewindTo(instance.pairs, Options(SchedulePolicy::kRoundParallel),
                 full_oracle, checkpoint, /*kill_after_rounds=*/2, baseline);

  ThreadSafeCountingOracle resumed_oracle(instance.entity_of);
  EXPECT_EQ(RunCampaign(instance.pairs,
                        Options(SchedulePolicy::kRoundParallel),
                        resumed_oracle, &checkpoint, OrderKind::kExpected,
                        /*order_rng=*/nullptr, /*round_size=*/10)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointResume, CorruptCheckpointSurfacesInsteadOfRestarting) {
  const auto instance = MakeRandomInstance(37, 20, 4, 60);
  const std::string path = ::testing::TempDir() + "cj_resume_corrupt.ckpt";
  ASSERT_TRUE(AtomicWriteFile(path, "garbage").ok());

  SessionCheckpointOptions checkpoint;
  checkpoint.path = path;
  checkpoint.fingerprint = kFingerprint;
  ThreadSafeCountingOracle oracle(instance.entity_of);
  const auto result = RunCampaign(
      instance.pairs, Options(SchedulePolicy::kRoundParallel), oracle,
      &checkpoint);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointResume, CheckpointRequiresTransitiveOnlyChain) {
  const auto instance = MakeRandomInstance(38, 20, 4, 60);
  const std::string path = ::testing::TempDir() + "cj_resume_chain.ckpt";
  std::remove(path.c_str());

  SessionCheckpointOptions checkpoint;
  checkpoint.path = path;
  checkpoint.fingerprint = kFingerprint;
  LabelingSession session(Options(SchedulePolicy::kSequential));
  session.AddRule(std::make_unique<TransitiveDeductionRule>())
      .AddRule(std::make_unique<OneToOneDeductionRule>());
  MaterializedCandidateStream stream(&instance.pairs, kRoundSize);
  ThreadSafeCountingOracle oracle(instance.entity_of);
  EXPECT_EQ(session
                .RunStream(stream, OrderKind::kExpected, oracle,
                           /*truth=*/nullptr, /*order_rng=*/nullptr,
                           &checkpoint)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace crowdjoin
