// Property-style equivalence harness for the parallel labeler's threading
// contract: for ANY number of worker threads, ParallelLabeler::Run must
// produce a LabelingResult identical to the single-threaded run — same
// outcomes, same per-iteration batch sizes, same crowdsourced / deduced /
// conflict counts. Exercised over randomized candidate sets, labeling
// orders, oracle error rates, and both conflict policies.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <utility>
#include <vector>

#include "core/labeling_order.h"
#include "core/parallel_labeler.h"
#include "tests/core/test_fixtures.h"

namespace crowdjoin {
namespace {

using testing_fixtures::Figure3Pairs;
using testing_fixtures::Figure3Truth;
using testing_fixtures::MakeRandomInstance;
using testing_fixtures::MockOracle;
using testing_fixtures::ThreadSafeCountingOracle;

constexpr int kThreadCounts[] = {2, 4, 8};

std::vector<int32_t> IdentityOrder(size_t n) {
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

// Runs the labeler at 1, 2, 4, and 8 threads, each time on a fresh copy of
// `oracle` (so call-counting state does not leak between runs), and checks
// every multi-threaded result against the single-threaded baseline.
template <typename Oracle>
void ExpectThreadCountInvariant(const CandidateSet& pairs,
                                const std::vector<int32_t>& order,
                                const Oracle& oracle, ConflictPolicy policy,
                                const char* context) {
  Oracle baseline_oracle = oracle;
  const LabelingResult baseline =
      ParallelLabeler(policy, /*num_threads=*/1)
          .Run(pairs, order, baseline_oracle)
          .value();
  for (int threads : kThreadCounts) {
    Oracle run_oracle = oracle;
    const LabelingResult threaded =
        ParallelLabeler(policy, threads).Run(pairs, order, run_oracle).value();
    EXPECT_TRUE(threaded == baseline)
        << context << ": num_threads=" << threads
        << " diverged from the single-threaded result";
    EXPECT_EQ(run_oracle.num_queries(), baseline_oracle.num_queries())
        << context << ": num_threads=" << threads;
  }
}

class DeterminismTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeterminismTest, GroundTruthAcrossOrdersAndPolicies) {
  const uint64_t seed = GetParam();
  const auto instance = MakeRandomInstance(seed, 30, 6, 110);
  GroundTruthOracle truth(instance.entity_of);
  Rng rng(seed ^ 0xabcd);
  for (OrderKind kind : {OrderKind::kExpected, OrderKind::kRandom,
                         OrderKind::kOptimal, OrderKind::kWorst}) {
    const std::vector<int32_t> order =
        MakeLabelingOrder(instance.pairs, kind, &truth, &rng).value();
    for (ConflictPolicy policy :
         {ConflictPolicy::kKeepFirst, ConflictPolicy::kTrustNew}) {
      ExpectThreadCountInvariant(instance.pairs, order, truth, policy,
                                 OrderKindToString(kind).data());
    }
  }
}

TEST_P(DeterminismTest, NoisyOracleAcrossErrorRatesAndPolicies) {
  const uint64_t seed = GetParam();
  const auto instance = MakeRandomInstance(seed, 40, 8, 150);
  GroundTruthOracle truth(instance.entity_of);
  const std::vector<int32_t> order = IdentityOrder(instance.pairs.size());
  // Error rates vary with the seed so the sweep covers clean, skewed, and
  // symmetric-noise regimes. HashNoisyOracle answers depend only on the
  // pair, so its noise is thread-count independent by construction.
  const double fn_rate = 0.05 * static_cast<double>(seed % 4);
  const double fp_rate = 0.05 * static_cast<double>((seed / 4) % 3);
  for (ConflictPolicy policy :
       {ConflictPolicy::kKeepFirst, ConflictPolicy::kTrustNew}) {
    const HashNoisyOracle noisy(&truth, fn_rate, fp_rate, seed * 31 + 7);
    ExpectThreadCountInvariant(instance.pairs, order, noisy, policy,
                               "hash-noisy");
  }
}

TEST_P(DeterminismTest, RandomizedOrdersWithNoise) {
  const uint64_t seed = GetParam();
  const auto instance = MakeRandomInstance(seed ^ 0x5a5a, 25, 5, 80);
  GroundTruthOracle truth(instance.entity_of);
  Rng rng(seed);
  std::vector<int32_t> order = IdentityOrder(instance.pairs.size());
  rng.Shuffle(order);
  const HashNoisyOracle noisy(&truth, 0.15, 0.10, seed);
  for (ConflictPolicy policy :
       {ConflictPolicy::kKeepFirst, ConflictPolicy::kTrustNew}) {
    ExpectThreadCountInvariant(instance.pairs, order, noisy, policy,
                               "shuffled-order");
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, DeterminismTest,
                         ::testing::Range<uint64_t>(500, 512));

// Exact oracle accounting under concurrency: every thread count asks each
// crowdsourced pair exactly once and nothing else.
TEST(ParallelLabelerDeterminism, ExactOracleCallCountsAtEveryThreadCount) {
  const auto instance = MakeRandomInstance(91, 35, 7, 130);
  const std::vector<int32_t> order = IdentityOrder(instance.pairs.size());

  ThreadSafeCountingOracle baseline_oracle(instance.entity_of);
  const LabelingResult baseline =
      ParallelLabeler(ConflictPolicy::kKeepFirst, 1)
          .Run(instance.pairs, order, baseline_oracle)
          .value();
  ASSERT_EQ(baseline_oracle.total_calls(), baseline.num_crowdsourced);

  for (int threads : kThreadCounts) {
    ThreadSafeCountingOracle oracle(instance.entity_of);
    const LabelingResult result =
        ParallelLabeler(ConflictPolicy::kKeepFirst, threads)
            .Run(instance.pairs, order, oracle)
            .value();
    EXPECT_TRUE(result == baseline) << "num_threads=" << threads;
    // Exact accounting, not just totals: no pair is ever asked twice, and
    // the asked pairs are exactly those with a crowdsourced outcome. The
    // random instance may contain duplicate (a, b) pairs — only one of the
    // duplicate positions is crowdsourced, the others are deduced — so the
    // expectation aggregates positions per unordered pair.
    EXPECT_EQ(oracle.total_calls(), baseline.num_crowdsourced);
    EXPECT_EQ(oracle.num_queries(), baseline.num_crowdsourced);
    EXPECT_EQ(oracle.max_calls_per_pair(), 1);
    std::map<std::pair<ObjectId, ObjectId>, int64_t> expected_calls;
    for (size_t i = 0; i < instance.pairs.size(); ++i) {
      const CandidatePair& pair = instance.pairs[i];
      expected_calls[{std::min(pair.a, pair.b), std::max(pair.a, pair.b)}] +=
          result.outcomes[i].source == LabelSource::kCrowdsourced ? 1 : 0;
    }
    for (const auto& [key, count] : expected_calls) {
      ASSERT_EQ(oracle.calls(key.first, key.second), count)
          << "pair (" << key.first << ", " << key.second
          << ") at num_threads=" << threads;
    }
  }
}

// Scripted, transitivity-violating answers (the crowd contradicting
// itself) must also resolve identically at every thread count, under both
// conflict policies.
TEST(ParallelLabelerDeterminism, InconsistentScriptedAnswers) {
  const CandidateSet pairs = Figure3Pairs();
  const std::vector<int32_t> order = IdentityOrder(pairs.size());
  MockOracle scripted;
  scripted.SetAnswer(0, 1, Label::kMatching);      // p1
  scripted.SetAnswer(1, 2, Label::kNonMatching);   // p2: contradicts p1+p4
  scripted.SetAnswer(0, 5, Label::kMatching);      // p3
  scripted.SetAnswer(0, 2, Label::kMatching);      // p4
  scripted.SetAnswer(3, 4, Label::kNonMatching);   // p5
  scripted.SetAnswer(3, 5, Label::kMatching);      // p6
  scripted.SetAnswer(1, 3, Label::kMatching);      // p7
  scripted.SetAnswer(4, 5, Label::kNonMatching);   // p8
  for (ConflictPolicy policy :
       {ConflictPolicy::kKeepFirst, ConflictPolicy::kTrustNew}) {
    ExpectThreadCountInvariant(pairs, order, scripted, policy,
                               "inconsistent-script");
  }
}

// The Figure 3 walk-through still holds when the batch is fanned out.
TEST(ParallelLabelerDeterminism, Figure3AtEightThreads) {
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle oracle = Figure3Truth();
  const LabelingResult result =
      ParallelLabeler(ConflictPolicy::kKeepFirst, 8)
          .Run(pairs, IdentityOrder(pairs.size()), oracle)
          .value();
  EXPECT_EQ(result.crowdsourced_per_iteration, (std::vector<int64_t>{5, 1}));
  EXPECT_EQ(result.num_crowdsourced, 6);
  EXPECT_EQ(result.num_deduced, 2);
  EXPECT_EQ(oracle.num_queries(), 6);
}

// Degenerate inputs: empty candidate set and single pair, all thread
// counts.
TEST(ParallelLabelerDeterminism, DegenerateInputs) {
  for (int threads : {1, 2, 4, 8}) {
    GroundTruthOracle empty_oracle({});
    const LabelingResult empty =
        ParallelLabeler(ConflictPolicy::kKeepFirst, threads)
            .Run({}, {}, empty_oracle)
            .value();
    EXPECT_TRUE(empty.outcomes.empty());
    EXPECT_EQ(empty.num_crowdsourced, 0);

    GroundTruthOracle one_oracle({0, 0});
    const LabelingResult one =
        ParallelLabeler(ConflictPolicy::kKeepFirst, threads)
            .Run({{0, 1, 0.9}}, {0}, one_oracle)
            .value();
    EXPECT_EQ(one.num_crowdsourced, 1);
    EXPECT_EQ(one.outcomes[0].label, Label::kMatching);
  }
}

}  // namespace
}  // namespace crowdjoin
