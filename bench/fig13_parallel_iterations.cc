// Reproduces Figure 13: pairs crowdsourced per iteration by the parallel
// labeling algorithm vs the non-parallel (one pair per iteration) baseline
// at likelihood threshold 0.3, on both datasets, using the expected order.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/parallel_comparison.h"

int main(int argc, char** argv) {
  const crowdjoin::bench::Args args(argc, argv);
  const uint64_t seed = args.GetUint64("seed", 42);
  const double threshold = args.GetDouble("threshold", 0.3);

  std::printf("=== Figure 13: parallel vs non-parallel labeling "
              "(threshold %.1f) ===\n", threshold);
  crowdjoin::bench::RunParallelComparison(
      crowdjoin::bench::Unwrap(crowdjoin::MakePaperExperimentInput(seed)),
      threshold);
  crowdjoin::bench::RunParallelComparison(
      crowdjoin::bench::Unwrap(crowdjoin::MakeProductExperimentInput(seed)),
      threshold);
  return 0;
}
