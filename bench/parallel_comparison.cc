#include "bench/parallel_comparison.h"

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/labeling_order.h"
#include "core/parallel_labeler.h"
#include "core/sequential_labeler.h"

namespace crowdjoin::bench {

void RunParallelComparison(const ExperimentInput& input, double threshold) {
  GroundTruthOracle truth = MakeGroundTruthOracle(input.dataset);
  const CandidateSet pairs = FilterByThreshold(input.candidates, threshold);
  const std::vector<int32_t> order = Unwrap(MakeLabelingOrder(
      pairs, OrderKind::kExpected, &truth, /*rng=*/nullptr));

  GroundTruthOracle oracle_seq = truth;
  const LabelingResult sequential =
      Unwrap(SequentialLabeler().Run(pairs, order, oracle_seq));
  GroundTruthOracle oracle_par = truth;
  const LabelingResult parallel =
      Unwrap(ParallelLabeler().Run(pairs, order, oracle_par));

  std::printf("\n-- %s (threshold=%.1f, %zu candidate pairs) --\n",
              input.dataset.name.c_str(), threshold, pairs.size());
  std::printf("Non-Parallel: %lld crowdsourced pairs in %zu iterations "
              "(one pair per iteration)\n",
              static_cast<long long>(sequential.num_crowdsourced),
              sequential.crowdsourced_per_iteration.size());
  std::printf("Parallel:     %lld crowdsourced pairs in %zu iterations\n",
              static_cast<long long>(parallel.num_crowdsourced),
              parallel.crowdsourced_per_iteration.size());
  std::string series;
  for (size_t i = 0; i < parallel.crowdsourced_per_iteration.size(); ++i) {
    if (i > 0) series += ", ";
    series += std::to_string(parallel.crowdsourced_per_iteration[i]);
  }
  std::printf("Parallel per-iteration batch sizes: [%s]\n", series.c_str());
}

}  // namespace crowdjoin::bench
