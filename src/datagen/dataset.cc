#include "datagen/dataset.h"

#include <unordered_map>

namespace crowdjoin {

std::map<int32_t, int64_t> ClusterSizeHistogram(const Dataset& dataset) {
  std::unordered_map<int32_t, int32_t> cluster_size;
  for (int32_t entity : dataset.entity_of) ++cluster_size[entity];
  std::map<int32_t, int64_t> histogram;
  for (const auto& [entity, size] : cluster_size) ++histogram[size];
  return histogram;
}

int64_t NumTrueMatchingPairs(const Dataset& dataset) {
  if (!dataset.bipartite) {
    std::unordered_map<int32_t, int64_t> cluster_size;
    for (int32_t entity : dataset.entity_of) ++cluster_size[entity];
    int64_t pairs = 0;
    for (const auto& [entity, k] : cluster_size) pairs += k * (k - 1) / 2;
    return pairs;
  }
  // Bipartite: per entity, (#side-0 records) * (#side-1 records).
  std::unordered_map<int32_t, std::pair<int64_t, int64_t>> sides;
  for (size_t i = 0; i < dataset.entity_of.size(); ++i) {
    auto& [left, right] = sides[dataset.entity_of[i]];
    if (dataset.side_of[i] == 0) {
      ++left;
    } else {
      ++right;
    }
  }
  int64_t pairs = 0;
  for (const auto& [entity, counts] : sides) {
    pairs += counts.first * counts.second;
  }
  return pairs;
}

int64_t NumEligiblePairs(const Dataset& dataset) {
  const int64_t n = static_cast<int64_t>(dataset.records.size());
  if (!dataset.bipartite) return n * (n - 1) / 2;
  const int64_t left = dataset.SideCount(0);
  return left * (n - left);
}

GroundTruthOracle MakeGroundTruthOracle(const Dataset& dataset) {
  return GroundTruthOracle(dataset.entity_of);
}

}  // namespace crowdjoin
