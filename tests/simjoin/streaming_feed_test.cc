// Streaming-ingestion tests for the round-by-round candidate path:
//  * ShardedJoinCursor batches partition exactly the one-shot Finish output
//    at every batch size / shard count / thread count;
//  * StreamingCandidateFeed emits the same candidate multiset as the
//    materializing GenerateCandidatesStreaming, in bounded rounds — proving
//    the full candidate set is never buffered;
//  * a LabelingSession driven by the feed labels everything correctly.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/labeling_session.h"
#include "datagen/streaming_generator.h"
#include "simjoin/candidate_generator.h"
#include "simjoin/sharded_join.h"

namespace crowdjoin {
namespace {

struct Corpus {
  TokenDictionary dictionary;
  std::vector<std::vector<int32_t>> docs;
};

Corpus MakeRandomCorpus(uint64_t seed, size_t num_docs, size_t vocabulary,
                        size_t min_len, size_t max_len) {
  Corpus corpus;
  Rng rng(seed);
  for (size_t d = 0; d < num_docs; ++d) {
    const size_t len = min_len + rng.Index(max_len - min_len + 1);
    std::vector<std::string> tokens;
    for (size_t t = 0; t < len; ++t) {
      tokens.push_back(StrFormat(
          "w%llu", static_cast<unsigned long long>(rng.Index(vocabulary))));
    }
    corpus.docs.push_back(corpus.dictionary.AddDocument(tokens));
  }
  return corpus;
}

TEST(ShardedJoinCursor, BatchesPartitionTheFinishOutput) {
  const Corpus corpus = MakeRandomCorpus(/*seed=*/911, /*num_docs=*/150,
                                         /*vocabulary=*/60, 2, 12);
  for (int shards : {1, 3, 16}) {
    ShardedSelfJoiner joiner(shards);
    for (const auto& doc : corpus.docs) joiner.Add(doc);
    const auto finish =
        joiner.Finish(corpus.dictionary, 0.4, /*pool=*/nullptr).value();
    for (int64_t batch_size : {int64_t{1}, int64_t{3}, int64_t{1000}}) {
      for (int threads : {0, 4}) {
        ThreadPool pool(threads);
        ThreadPool* pool_ptr = threads > 0 ? &pool : nullptr;
        ShardedJoinCursor cursor =
            joiner.MakeCursor(corpus.dictionary, 0.4, pool_ptr).value();
        EXPECT_EQ(cursor.num_tasks(),
                  static_cast<int64_t>(shards) * (shards + 1) / 2);
        std::vector<ScoredPair> drained;
        while (!cursor.done()) {
          const auto batch = cursor.NextBatch(batch_size, pool_ptr).value();
          drained.insert(drained.end(), batch.begin(), batch.end());
        }
        EXPECT_TRUE(cursor.NextBatch(batch_size, pool_ptr).value().empty());
        SortByPairOrder(drained);
        ASSERT_EQ(drained, finish)
            << "shards=" << shards << " batch_size=" << batch_size
            << " threads=" << threads;
      }
    }
  }
}

TEST(ShardedJoinCursor, BipartiteBatchesPartitionTheFinishOutput) {
  const Corpus corpus = MakeRandomCorpus(/*seed=*/912, /*num_docs=*/160,
                                         /*vocabulary=*/55, 2, 10);
  ShardedBipartiteJoiner joiner(/*num_shards=*/5);
  for (size_t d = 0; d < corpus.docs.size(); ++d) {
    if (d % 2 == 0) {
      joiner.AddLeft(corpus.docs[d]);
    } else {
      joiner.AddRight(corpus.docs[d]);
    }
  }
  const auto finish =
      joiner.Finish(corpus.dictionary, 0.4, /*pool=*/nullptr).value();
  ShardedJoinCursor cursor =
      joiner.MakeCursor(corpus.dictionary, 0.4, /*pool=*/nullptr).value();
  EXPECT_EQ(cursor.num_tasks(), 25);
  std::vector<ScoredPair> drained;
  while (!cursor.done()) {
    const auto batch = cursor.NextBatch(4, /*pool=*/nullptr).value();
    drained.insert(drained.end(), batch.begin(), batch.end());
  }
  SortByPairOrder(drained);
  ASSERT_EQ(drained, finish);
}

CandidateSet SortedByIds(CandidateSet candidates) {
  std::sort(candidates.begin(), candidates.end(),
            [](const CandidatePair& x, const CandidatePair& y) {
              if (x.a != y.a) return x.a < y.a;
              if (x.b != y.b) return x.b < y.b;
              return x.likelihood < y.likelihood;
            });
  return candidates;
}

TEST(StreamingCandidateFeed, EmitsTheMaterializedCandidateSetInBoundedRounds) {
  PaperDatasetConfig config;
  config.clusters.total_records = 150;
  config.clusters.max_cluster_size = 25;
  config.seed = 41;

  CandidateGeneratorOptions options;
  options.token_join_threshold = 0.4;
  options.min_likelihood = 0.4;
  ShardedJoinOptions sharding;
  sharding.num_shards = 16;

  StreamingPaperSource materialized_source(config, /*scale_factor=*/2);
  std::vector<int32_t> entity_of;
  const CandidateSet materialized =
      GenerateCandidatesStreaming(materialized_source, /*scorer=*/nullptr,
                                  options, sharding, &entity_of)
          .value();
  ASSERT_GT(materialized.size(), 0u);

  StreamingPaperSource source(config, /*scale_factor=*/2);
  StreamingCandidateFeed::Options feed_options;
  feed_options.candidates = options;
  feed_options.sharding = sharding;
  feed_options.tasks_per_round = 8;  // 136 tasks -> 17 cursor batches
  const auto feed = StreamingCandidateFeed::Open(source, feed_options).value();
  EXPECT_EQ(feed->entity_of(), entity_of);

  CandidateSet drained;
  int64_t max_round = 0;
  int64_t rounds = 0;
  while (true) {
    const CandidateSet round = feed->NextRound().value();
    if (round.empty()) break;
    ++rounds;
    max_round = std::max(max_round, static_cast<int64_t>(round.size()));
    drained.insert(drained.end(), round.begin(), round.end());
  }
  // Same candidates (ids and likelihoods), just partitioned into rounds.
  EXPECT_EQ(SortedByIds(drained), SortedByIds(materialized));
  EXPECT_EQ(feed->num_candidates(),
            static_cast<int64_t>(materialized.size()));
  EXPECT_EQ(feed->num_rounds(), rounds);
  EXPECT_EQ(feed->max_round_size(), max_round);
  // The bounded-buffer claim: several rounds, none of them close to the
  // whole candidate set — the feed never holds the materialized result.
  EXPECT_GT(rounds, 3);
  EXPECT_LT(max_round, static_cast<int64_t>(materialized.size()) / 2);
}

TEST(StreamingCandidateFeed, SessionLabelsTheFeedCorrectly) {
  PaperDatasetConfig config;
  config.clusters.total_records = 150;
  config.clusters.max_cluster_size = 25;
  config.seed = 43;
  StreamingPaperSource source(config, /*scale_factor=*/2);

  StreamingCandidateFeed::Options feed_options;
  feed_options.candidates.token_join_threshold = 0.4;
  feed_options.candidates.min_likelihood = 0.4;
  feed_options.sharding.num_shards = 16;
  feed_options.sharding.num_threads = 2;
  feed_options.tasks_per_round = 8;
  const auto feed = StreamingCandidateFeed::Open(source, feed_options).value();
  const GroundTruthOracle truth(feed->entity_of());

  // Record each round on its way into the session so the report's
  // positional outcomes can be checked against ground truth afterwards.
  class RecordingStream : public CandidateStream {
   public:
    RecordingStream(CandidateStream* inner, CandidateSet* sink)
        : inner_(inner), sink_(sink) {}
    Result<CandidateSet> NextRound() override {
      Result<CandidateSet> round = inner_->NextRound();
      if (round.ok()) {
        sink_->insert(sink_->end(), round.value().begin(),
                      round.value().end());
      }
      return round;
    }

   private:
    CandidateStream* inner_;
    CandidateSet* sink_;
  };

  CandidateSet seen;
  RecordingStream recording(feed.get(), &seen);
  GroundTruthOracle oracle = truth;
  LabelingSessionOptions session_options;
  session_options.schedule = SchedulePolicy::kRoundParallel;
  session_options.num_threads = 2;
  LabelingSession session(session_options);
  const LabelingReport report =
      session.RunStream(recording, OrderKind::kExpected, oracle).value();

  ASSERT_EQ(report.num_candidates, static_cast<int64_t>(seen.size()));
  EXPECT_GT(report.num_stream_rounds, 1);
  EXPECT_GT(report.num_deduced, 0);
  EXPECT_EQ(report.num_unlabeled, 0);
  EXPECT_EQ(oracle.num_queries(), report.num_crowdsourced);
  for (size_t i = 0; i < seen.size(); ++i) {
    ASSERT_TRUE(report.outcomes[i].has_value());
    EXPECT_EQ(report.outcomes[i]->label, truth.Truth(seen[i].a, seen[i].b))
        << "candidate " << i;
  }
}

}  // namespace
}  // namespace crowdjoin
