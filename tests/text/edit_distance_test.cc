#include "text/edit_distance.h"

#include <gtest/gtest.h>

namespace crowdjoin {
namespace {

TEST(LevenshteinDistance, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
}

TEST(LevenshteinDistance, Symmetric) {
  EXPECT_EQ(LevenshteinDistance("sunday", "saturday"),
            LevenshteinDistance("saturday", "sunday"));
}

TEST(LevenshteinSimilarity, NormalizedToUnitInterval) {
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity("abc", "xyz"), 0.0);
  EXPECT_NEAR(LevenshteinSimilarity("kitten", "sitting"), 1.0 - 3.0 / 7.0,
              1e-12);
}

TEST(JaroSimilarity, ClassicPairs) {
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.766667, 1e-5);
  EXPECT_DOUBLE_EQ(JaroSimilarity("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("ab", "xy"), 0.0);
}

TEST(JaroWinklerSimilarity, BoostsCommonPrefix) {
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.961111, 1e-5);
  EXPECT_NEAR(JaroWinklerSimilarity("dwayne", "duane"), 0.84, 0.01);
  // Prefix boost only ever increases similarity.
  EXPECT_GE(JaroWinklerSimilarity("prefix", "preface"),
            JaroSimilarity("prefix", "preface"));
}

TEST(JaroWinklerSimilarity, PrefixCapIsFourChars) {
  const double jaro = JaroSimilarity("abcdefgh", "abcdefzz");
  const double jw = JaroWinklerSimilarity("abcdefgh", "abcdefzz", 0.1);
  EXPECT_NEAR(jw, jaro + 4 * 0.1 * (1.0 - jaro), 1e-12);
}

}  // namespace
}  // namespace crowdjoin
