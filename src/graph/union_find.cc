#include "graph/union_find.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace crowdjoin {

UnionFind::UnionFind(int32_t n) { Reset(n); }

void UnionFind::Reset(int32_t n) {
  CJ_CHECK(n >= 0);
  parent_.resize(static_cast<size_t>(n));
  std::iota(parent_.begin(), parent_.end(), 0);
  size_.assign(static_cast<size_t>(n), 1);
  min_.resize(static_cast<size_t>(n));
  std::iota(min_.begin(), min_.end(), 0);
  num_sets_ = n;
}

void UnionFind::Grow(int32_t n) {
  const int32_t old_size = size();
  if (n <= old_size) return;
  parent_.resize(static_cast<size_t>(n));
  std::iota(parent_.begin() + old_size, parent_.end(), old_size);
  size_.resize(static_cast<size_t>(n), 1);
  min_.resize(static_cast<size_t>(n));
  std::iota(min_.begin() + old_size, min_.end(), old_size);
  num_sets_ += n - old_size;
}

int32_t UnionFind::Find(int32_t x) {
  CJ_CHECK(x >= 0 && x < size());
  while (parent_[static_cast<size_t>(x)] != x) {
    // Path halving: point x at its grandparent, then step there.
    int32_t parent = parent_[static_cast<size_t>(x)];
    int32_t grandparent = parent_[static_cast<size_t>(parent)];
    parent_[static_cast<size_t>(x)] = grandparent;
    x = grandparent;
  }
  return x;
}

int32_t UnionFind::Find(int32_t x) const {
  CJ_CHECK(x >= 0 && x < size());
  while (parent_[static_cast<size_t>(x)] != x) {
    x = parent_[static_cast<size_t>(x)];
  }
  return x;
}

int32_t UnionFind::Union(int32_t a, int32_t b) {
  int32_t ra = Find(a);
  int32_t rb = Find(b);
  if (ra == rb) return ra;
  if (size_[static_cast<size_t>(ra)] < size_[static_cast<size_t>(rb)]) {
    std::swap(ra, rb);
  }
  UnionInto(ra, rb);
  return ra;
}

void UnionFind::UnionInto(int32_t winner, int32_t loser) {
  CJ_CHECK(winner != loser);
  CJ_CHECK(parent_[static_cast<size_t>(winner)] == winner);
  CJ_CHECK(parent_[static_cast<size_t>(loser)] == loser);
  parent_[static_cast<size_t>(loser)] = winner;
  size_[static_cast<size_t>(winner)] += size_[static_cast<size_t>(loser)];
  min_[static_cast<size_t>(winner)] = std::min(
      min_[static_cast<size_t>(winner)], min_[static_cast<size_t>(loser)]);
  --num_sets_;
}

bool UnionFind::Same(int32_t a, int32_t b) { return Find(a) == Find(b); }

bool UnionFind::Same(int32_t a, int32_t b) const { return Find(a) == Find(b); }

int32_t UnionFind::SetSize(int32_t x) {
  return size_[static_cast<size_t>(Find(x))];
}

int32_t UnionFind::SetSize(int32_t x) const {
  return size_[static_cast<size_t>(Find(x))];
}

int32_t UnionFind::MinMember(int32_t x) const {
  return min_[static_cast<size_t>(Find(x))];
}

}  // namespace crowdjoin
