// Reproduces Figure 10: cluster-size distributions of the Paper and
// Product datasets. Prints one (cluster size, number of clusters) table per
// dataset; the paper plots these on log axes.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "datagen/dataset.h"
#include "eval/workbench.h"

namespace {

using ::crowdjoin::ClusterSizeHistogram;
using ::crowdjoin::ExperimentInput;
using ::crowdjoin::TablePrinter;

void PrintHistogram(const ExperimentInput& input) {
  std::printf("\n-- %s: %zu records", input.dataset.name.c_str(),
              input.dataset.records.size());
  if (input.dataset.bipartite) {
    std::printf(" (%lld x %lld bipartite)",
                static_cast<long long>(input.dataset.SideCount(0)),
                static_cast<long long>(input.dataset.SideCount(1)));
  }
  std::printf(", %lld true matching pairs --\n",
              static_cast<long long>(NumTrueMatchingPairs(input.dataset)));
  TablePrinter table({"cluster size", "# clusters"});
  for (const auto& [size, count] : ClusterSizeHistogram(input.dataset)) {
    table.AddRow({std::to_string(size), std::to_string(count)});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const crowdjoin::bench::Args args(argc, argv);
  const uint64_t seed = args.GetUint64("seed", 42);

  std::printf("=== Figure 10: cluster-size distribution ===\n");
  PrintHistogram(
      crowdjoin::bench::Unwrap(crowdjoin::MakePaperExperimentInput(seed)));
  PrintHistogram(
      crowdjoin::bench::Unwrap(crowdjoin::MakeProductExperimentInput(seed)));
  return 0;
}
