#include "crowd/faults.h"

#include "common/rng.h"

namespace crowdjoin {

namespace {

// Domain-separation tags: each decision type draws from its own coin
// family so, e.g., the spammer coin for worker 3 is independent of the
// straggler coin for worker 3.
constexpr uint64_t kTagSpammer = 1;
constexpr uint64_t kTagStraggler = 2;
constexpr uint64_t kTagAbandon = 3;
constexpr uint64_t kTagPairAttempt = 4;
constexpr uint64_t kTagPairExpiry = 5;
constexpr uint64_t kTagPublish = 6;

}  // namespace

double FaultInjector::HashUniform(uint64_t tag, uint64_t k1, uint64_t k2,
                                  uint64_t k3) const {
  uint64_t state = plan_.seed;
  uint64_t h = SplitMix64(state);
  state = h ^ tag;
  h = SplitMix64(state);
  state = h ^ k1;
  h = SplitMix64(state);
  state = h ^ k2;
  h = SplitMix64(state);
  state = h ^ k3;
  h = SplitMix64(state);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::WorkerIsSpammer(int worker) const {
  if (plan_.spammer_rate <= 0.0) return false;
  return HashUniform(kTagSpammer, static_cast<uint64_t>(worker), 0, 0) <
         plan_.spammer_rate;
}

double FaultInjector::WorkerServiceMultiplier(int worker) const {
  if (plan_.straggler_rate <= 0.0) return 1.0;
  const bool straggles =
      HashUniform(kTagStraggler, static_cast<uint64_t>(worker), 0, 0) <
      plan_.straggler_rate;
  return straggles ? plan_.straggler_multiplier : 1.0;
}

bool FaultInjector::AssignmentAbandoned(uint64_t hit_key, int worker,
                                        int attempt) const {
  if (plan_.abandonment_rate <= 0.0) return false;
  return HashUniform(kTagAbandon, hit_key, static_cast<uint64_t>(worker),
                     static_cast<uint64_t>(attempt)) < plan_.abandonment_rate;
}

bool FaultInjector::PairAttemptFails(ObjectId a, ObjectId b,
                                     int attempt) const {
  const ObjectId lo = a < b ? a : b;
  const ObjectId hi = a < b ? b : a;
  const uint64_t klo = static_cast<uint64_t>(static_cast<uint32_t>(lo));
  const uint64_t khi = static_cast<uint64_t>(static_cast<uint32_t>(hi));
  const uint64_t kattempt = static_cast<uint64_t>(attempt);
  if (plan_.abandonment_rate > 0.0 &&
      HashUniform(kTagPairAttempt, klo, khi, kattempt) <
          plan_.abandonment_rate) {
    return true;
  }
  // With a deadline configured, an attempt that lands on a straggler blows
  // it and the HIT expires unanswered.
  if (plan_.hit_expiry_hours > 0.0 && plan_.straggler_rate > 0.0 &&
      HashUniform(kTagPairExpiry, klo, khi, kattempt) < plan_.straggler_rate) {
    return true;
  }
  return false;
}

bool FaultInjector::PublishFails(uint64_t publish_seq, int attempt) const {
  if (plan_.publish_failure_rate <= 0.0) return false;
  return HashUniform(kTagPublish, publish_seq, static_cast<uint64_t>(attempt),
                     0) < plan_.publish_failure_rate;
}

AttemptFaultFn FaultInjector::AsAttemptFaultFn() const {
  const bool has_pair_faults =
      plan_.abandonment_rate > 0.0 ||
      (plan_.hit_expiry_hours > 0.0 && plan_.straggler_rate > 0.0);
  if (!has_pair_faults) return nullptr;
  // Capture by value: the closure outlives this injector.
  FaultInjector copy = *this;
  return [copy](ObjectId a, ObjectId b, int attempt) {
    return copy.PairAttemptFails(a, b, attempt);
  };
}

}  // namespace crowdjoin
