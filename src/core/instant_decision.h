#ifndef CROWDJOIN_CORE_INSTANT_DECISION_H_
#define CROWDJOIN_CORE_INSTANT_DECISION_H_

#include <vector>

#include "common/result.h"
#include "core/candidate.h"
#include "core/labeling_result.h"
#include "core/labeling_session.h"
#include "graph/cluster_graph.h"

namespace crowdjoin {

/// \brief The instant-decision optimization of Section 5.2.
///
/// Instead of waiting for a whole round of published pairs to complete, the
/// engine re-plans after *every single* completed pair and immediately
/// publishes any pair that has become a must-crowdsource pair, keeping the
/// crowdsourcing platform saturated with available HIT work (Figure 15).
///
/// Thin wrapper over `LabelingSession`'s incremental protocol (the
/// instant-decision schedule); byte-identical to the pre-session engine.
///
/// Protocol:
///   1. `Start()` returns the initial set of positions to publish.
///   2. For every completed pair, call `OnPairLabeled(pos, label)`; it
///      returns the *newly* publishable positions (possibly empty — in
///      particular, completing a matching pair never unlocks new work,
///      which is what motivates the non-matching-first policy).
///   3. When `num_available() == 0`, every remaining unlabeled pair is
///      deducible; call `Finish()` to resolve them and obtain the result.
class InstantDecisionEngine {
 public:
  /// `pairs` must outlive the engine. `order` is a permutation of positions
  /// into `pairs` (validated in Start()).
  InstantDecisionEngine(const CandidateSet* pairs, std::vector<int32_t> order,
                        ConflictPolicy policy = ConflictPolicy::kKeepFirst);

  /// Computes and marks published the initial must-crowdsource set.
  Result<std::vector<int32_t>> Start();

  /// Records the crowd label of a published pair and returns the positions
  /// that must now be published. `pos` must be published and unlabeled.
  Result<std::vector<int32_t>> OnPairLabeled(int32_t pos, Label label);

  /// Resolves all deduced labels. Requires `num_available() == 0`.
  Result<LabelingResult> Finish();

  /// Published-but-not-yet-labeled count: the pairs available to workers.
  int64_t num_available() const { return session_.num_available(); }
  /// Pairs labeled by the crowd so far.
  int64_t num_crowdsourced() const { return session_.num_crowdsourced(); }
  /// Total published so far (labeled or not).
  int64_t num_published() const { return session_.num_published(); }

 private:
  const CandidateSet* pairs_;
  std::vector<int32_t> order_;
  LabelingSession session_;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_CORE_INSTANT_DECISION_H_
