#ifndef CROWDJOIN_COMMON_TIMER_H_
#define CROWDJOIN_COMMON_TIMER_H_

#include <chrono>

namespace crowdjoin {

/// \brief Simple wall-clock stopwatch for harness reporting.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction / last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_COMMON_TIMER_H_
