#ifndef CROWDJOIN_OBS_METRICS_H_
#define CROWDJOIN_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

/// \file
/// Process-wide metrics: named Counter / Gauge / Histogram handles owned by
/// a MetricsRegistry. The design goals, in order:
///
///  1. Hot-path writes never contend. Counters are striped across
///     cache-line-aligned per-thread slots updated with relaxed atomics, so
///     N threads incrementing the same counter touch N different lines.
///  2. A disabled registry costs one relaxed load + branch per write.
///  3. Reads are rare and may be slow: `Snapshot()` walks every handle
///     under the registration mutex and returns a consistent, name-sorted
///     view exportable as JSON or Prometheus text.
///
/// `obs` sits below `common` in the module order (common links obs so the
/// ThreadPool can be instrumented), so nothing here may include common
/// headers.

namespace crowdjoin::obs {

/// Monotonic nanoseconds since the first call in this process. Shared by
/// latency timers and trace spans so both report on the same clock.
int64_t NowNs();

/// Number of per-thread stripes in a Counter. Threads hash onto stripes
/// round-robin; 16 stripes absorb far more writer threads than that before
/// any line is shared.
inline constexpr int kCounterStripes = 16;

/// Number of log2 buckets in a Histogram: bucket 0 holds values <= 0,
/// bucket i (i >= 1) holds values in [2^(i-1), 2^i - 1].
inline constexpr int kHistogramBuckets = 64;

namespace internal {
/// The enabled flag standalone (registry-less) metrics bind to.
const std::atomic<bool>& AlwaysEnabled();
}  // namespace internal

/// Monotonically increasing sum, striped per thread. Create standalone (for
/// tests) or via MetricsRegistry::GetCounter. Handles returned by a registry
/// are valid for the registry's lifetime; the global registry never dies.
class Counter {
 public:
  Counter() : enabled_(&internal::AlwaysEnabled()) {}
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(int64_t delta = 1) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    slots_[ThreadStripe()].value.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Sum over all stripes. Concurrent increments may or may not be visible;
  /// the value is exact once writers are quiescent.
  int64_t Value() const {
    int64_t total = 0;
    for (const Slot& slot : slots_) {
      total += slot.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<int64_t> value{0};
  };

  static int ThreadStripe() {
    static std::atomic<uint32_t> next_stripe{0};
    thread_local const int stripe = static_cast<int>(
        next_stripe.fetch_add(1, std::memory_order_relaxed) % kCounterStripes);
    return stripe;
  }

  const std::atomic<bool>* enabled_;
  std::array<Slot, kCounterStripes> slots_;
};

/// Last-writer-wins instantaneous value with relaxed add/set. One atomic is
/// enough: gauges track things like queue depth where the write rate is a
/// task enqueue, not a per-element hot loop.
class Gauge {
 public:
  Gauge() : enabled_(&internal::AlwaysEnabled()) {}
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t value) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  const std::atomic<bool>* enabled_;
  std::atomic<int64_t> value_{0};
};

/// Fixed-log-bucket distribution: 64 power-of-two buckets plus a running
/// count and sum, all relaxed atomics. Bucket resolution (2x) is coarse on
/// purpose — latency histograms care about orders of magnitude, and a fixed
/// layout means zero allocation and trivially mergeable snapshots.
class Histogram {
 public:
  Histogram() : enabled_(&internal::AlwaysEnabled()) {}
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  bool enabled() const { return enabled_->load(std::memory_order_relaxed); }

  void Observe(int64_t value) {
    if (!enabled()) return;
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value > 0 ? value : 0, std::memory_order_relaxed);
  }

  /// Bucket for `value`: 0 for value <= 0, else bit_width(value), i.e. the
  /// bucket whose inclusive range is [2^(i-1), 2^i - 1].
  static int BucketIndex(int64_t value) {
    if (value <= 0) return 0;
    return std::bit_width(static_cast<uint64_t>(value));
  }

  /// Inclusive upper bound of bucket `index` (INT64_MAX for the last one).
  static int64_t BucketUpperBound(int index);

  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t BucketCount(int index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

 private:
  const std::atomic<bool>* enabled_;
  std::array<std::atomic<int64_t>, kHistogramBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Observes the elapsed wall time, in microseconds, between construction and
/// destruction into `hist`. The clock is only read when the histogram is
/// enabled at construction time, so a disabled registry pays one branch.
class ScopedLatencyUs {
 public:
  explicit ScopedLatencyUs(Histogram* hist)
      : hist_(hist != nullptr && hist->enabled() ? hist : nullptr),
        start_ns_(hist_ != nullptr ? NowNs() : 0) {}
  ~ScopedLatencyUs() {
    if (hist_ != nullptr) hist_->Observe((NowNs() - start_ns_) / 1000);
  }

  ScopedLatencyUs(const ScopedLatencyUs&) = delete;
  ScopedLatencyUs& operator=(const ScopedLatencyUs&) = delete;

 private:
  Histogram* hist_;
  int64_t start_ns_;
};

struct CounterSample {
  std::string name;
  int64_t value = 0;
};

struct GaugeSample {
  std::string name;
  int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  int64_t count = 0;
  int64_t sum = 0;
  std::array<int64_t, kHistogramBuckets> buckets{};
};

/// A point-in-time, name-sorted view of every metric in a registry.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Lookup helpers for tests and harness assertions; nullptr when absent.
  const CounterSample* FindCounter(std::string_view name) const;
  const GaugeSample* FindGauge(std::string_view name) const;
  const HistogramSample* FindHistogram(std::string_view name) const;

  /// Pretty-printed JSON: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, buckets: [{le, count}...]}}}.
  /// Histogram buckets are emitted sparsely (non-empty only), with
  /// inclusive upper bounds.
  std::string ToJson() const;

  /// Prometheus text exposition format. Metric names are prefixed with
  /// "crowdjoin_" and sanitized ('.' and '-' become '_'); histogram buckets
  /// become the cumulative `le`-labelled series Prometheus expects.
  std::string ToPrometheusText() const;
};

/// Owns named metric handles. Registration (GetCounter etc.) takes a mutex
/// and is expected at setup time; the returned handles are pointer-stable
/// for the registry's lifetime and lock-free to write. Re-requesting a name
/// returns the same handle; requesting a registered name as a different
/// metric kind aborts.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry all library instrumentation writes to.
  /// Enabled by default: the instrumented counters double as live state
  /// (e.g. ServeStats), so disabling is the opt-out for overhead studies.
  static MetricsRegistry& Global();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Names must match [A-Za-z0-9._-]+ (checked; keeps both exports sane).
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (handles stay valid). Test/bench hook;
  /// racing writers may leave residue, so quiesce first.
  void ResetForTesting();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct CounterEntry {
    std::string name;
    Counter counter;
    CounterEntry(std::string n, const std::atomic<bool>* enabled)
        : name(std::move(n)), counter(enabled) {}
  };
  struct GaugeEntry {
    std::string name;
    Gauge gauge;
    GaugeEntry(std::string n, const std::atomic<bool>* enabled)
        : name(std::move(n)), gauge(enabled) {}
  };
  struct HistogramEntry {
    std::string name;
    Histogram histogram;
    HistogramEntry(std::string n, const std::atomic<bool>* enabled)
        : name(std::move(n)), histogram(enabled) {}
  };

  /// Aborts on invalid names and cross-kind collisions.
  void CheckNameLocked(std::string_view name, Kind kind) const;

  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  // deques: growth never moves existing entries, so handles stay valid.
  std::deque<CounterEntry> counters_;
  std::deque<GaugeEntry> gauges_;
  std::deque<HistogramEntry> histograms_;
};

}  // namespace crowdjoin::obs

#endif  // CROWDJOIN_OBS_METRICS_H_
