// Always-on entity-resolution serving driver: one writer thread ingests a
// streamed corpus record by record — labeling each ingest's undecided
// candidates against ground truth, the way a crowd would answer them — while
// N reader threads concurrently answer candidate queries and cluster
// lookups from published graph snapshots.
//
// Reports sustained ingest/sec (writer) and queries/sec (all readers), plus
// corpus totals that are deterministic at any --readers value (readers
// never touch writer-side state):
//
//   --expect_candidates=N   total candidates over all ingests (0 = don't check)
//   --expect_clusters=N     final cluster count            (0 = don't check)
//
// CI pins both on the SF 1 corpus; the TSan job runs the same invocation
// under -fsanitize=thread to prove the reader/writer protocol clean.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "datagen/streaming_generator.h"
#include "obs/metrics.h"
#include "obs/tracing.h"
#include "serve/resolution_service.h"

int main(int argc, char** argv) {
  using namespace crowdjoin;
  const bench::Args args(argc, argv);
  const auto scale = static_cast<int32_t>(args.GetUint64("scale", 1));
  const int num_readers = static_cast<int>(args.GetUint64("readers", 2));
  const double threshold = args.GetDouble("threshold", 0.5);
  const auto top_k = static_cast<int32_t>(args.GetUint64("top_k", 10));
  const uint64_t seed = args.GetUint64("seed", 42);
  const uint64_t expect_candidates = args.GetUint64("expect_candidates", 0);
  const uint64_t expect_clusters = args.GetUint64("expect_clusters", 0);
  // Observability exports (see scale_sweep): serve.* metrics land in the
  // global registry so one JSON holds the whole process's counters.
  const std::string metrics_json = args.GetString("metrics_json", "");
  const std::string trace_json = args.GetString("trace_json", "");
  SetLogLevel(args.GetLogLevel("log_level", crowdjoin::GetLogLevel()));
  args.Done();

  if (!trace_json.empty()) obs::TraceRecorder::Global().SetEnabled(true);

  // Materialize the corpus up front so the timed section measures the
  // service, not the generator.
  PaperDatasetConfig config;
  config.seed = seed;
  StreamingPaperSource source(config, scale);
  std::vector<std::string> texts;
  std::vector<int32_t> entities;
  StreamedRecord streamed;
  while (source.Next(&streamed)) {
    std::string text;
    for (const auto& field : streamed.record.fields) {
      text += field;
      text += ' ';
    }
    texts.push_back(std::move(text));
    entities.push_back(streamed.entity);
  }
  bench::CheckOk(source.status());
  const size_t num_records = texts.size();

  ResolutionServiceOptions options;
  options.threshold = threshold;
  options.top_k = top_k;
  options.metrics = &obs::MetricsRegistry::Global();
  ResolutionService service(options);

  std::printf("=== serve_driver: scale=%d records=%zu readers=%d "
              "threshold=%.2f top_k=%d ===\n",
              scale, num_records, num_readers, threshold, top_k);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> total_queries{0};
  std::vector<std::thread> readers;
  readers.reserve(static_cast<size_t>(num_readers));
  for (int t = 0; t < num_readers; ++t) {
    readers.emplace_back([&, t] {
      // Each reader walks the corpus at its own offset so concurrent
      // queries hit different postings lists and clusters.
      int64_t queries = 0;
      size_t pos = num_records == 0
                       ? 0
                       : (static_cast<size_t>(t) * num_records) /
                             static_cast<size_t>(num_readers);
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string& text = texts[pos];
        const std::vector<ServeCandidate> candidates =
            service.QueryCandidates(text);
        for (const ServeCandidate& c : candidates) {
          // Exercise the snapshot read path readers exist for.
          (void)service.ResolveCluster(c.id);
        }
        ++queries;
        pos = pos + 1 == num_records ? 0 : pos + 1;
      }
      total_queries.fetch_add(queries, std::memory_order_relaxed);
    });
  }

  // Writer: ingest everything, answering each ingest's still-undecided
  // candidate pairs from ground truth (entity ids). Transitivity makes
  // most later questions free — the paper's effect, live.
  WallTimer timer;
  int64_t total_candidates = 0;
  int64_t total_labels = 0;
  for (size_t i = 0; i < num_records; ++i) {
    const IngestResult result = service.Ingest(texts[i]);
    total_candidates += static_cast<int64_t>(result.candidates.size());
    for (const ServeCandidate& c : result.candidates) {
      if (service.DeducePair(result.id, c.id) != Deduction::kUndeduced) {
        continue;  // transitivity already answered this pair
      }
      const Label label = entities[static_cast<size_t>(result.id)] ==
                                  entities[static_cast<size_t>(c.id)]
                              ? Label::kMatching
                              : Label::kNonMatching;
      service.OnPairLabeled(result.id, c.id, label);
      ++total_labels;
    }
  }
  const double ingest_seconds = timer.ElapsedSeconds();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();
  const double total_seconds = timer.ElapsedSeconds();

  const ServeStats stats = service.Stats();
  std::printf("ingested %zu records in %.3fs (%.0f records/sec)\n",
              num_records, ingest_seconds,
              ingest_seconds > 0 ? static_cast<double>(num_records) /
                                       ingest_seconds
                                 : 0.0);
  std::printf("readers answered %lld queries in %.3fs (%.0f queries/sec)\n",
              static_cast<long long>(total_queries.load()), total_seconds,
              total_seconds > 0
                  ? static_cast<double>(total_queries.load()) / total_seconds
                  : 0.0);
  std::printf("candidates=%lld labels=%lld clusters=%d conflicts=%lld "
              "epoch=%lld\n",
              static_cast<long long>(total_candidates),
              static_cast<long long>(total_labels), stats.num_clusters,
              static_cast<long long>(stats.num_conflicts),
              static_cast<long long>(stats.epoch));

  bench::ExportObservability(metrics_json, trace_json);
  if (expect_candidates != 0 &&
      static_cast<uint64_t>(total_candidates) != expect_candidates) {
    std::fprintf(stderr, "FATAL: expected %llu candidates, got %lld\n",
                 static_cast<unsigned long long>(expect_candidates),
                 static_cast<long long>(total_candidates));
    return 1;
  }
  if (expect_clusters != 0 &&
      static_cast<uint64_t>(stats.num_clusters) != expect_clusters) {
    std::fprintf(stderr, "FATAL: expected %llu clusters, got %d\n",
                 static_cast<unsigned long long>(expect_clusters),
                 stats.num_clusters);
    return 1;
  }
  return 0;
}
