#include "core/parallel_labeler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <optional>

#include "core/labeling_order.h"
#include "core/sequential_labeler.h"
#include "tests/core/test_fixtures.h"

namespace crowdjoin {
namespace {

using testing_fixtures::Figure3Pairs;
using testing_fixtures::Figure3Truth;
using testing_fixtures::MakeRandomInstance;

std::vector<int32_t> IdentityOrder(size_t n) {
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

TEST(ParallelCrowdsourcedPairs, Example5FirstIteration) {
  // Section 5.1, Example 5: with nothing labeled, the first batch must be
  // {p1, p2, p3, p5, p6} (positions 0, 1, 2, 4, 5).
  const CandidateSet pairs = Figure3Pairs();
  std::vector<std::optional<Label>> labels(pairs.size());
  const std::vector<int32_t> batch =
      ParallelCrowdsourcedPairs(pairs, IdentityOrder(pairs.size()), labels);
  EXPECT_EQ(batch, (std::vector<int32_t>{0, 1, 2, 4, 5}));
}

TEST(ParallelCrowdsourcedPairs, Example5SecondIteration) {
  // After p1,p2,p3,p5,p6 are labeled and p4,p8 deduced, only p7 remains.
  const CandidateSet pairs = Figure3Pairs();
  std::vector<std::optional<Label>> labels(pairs.size());
  labels[0] = Label::kMatching;      // p1
  labels[1] = Label::kMatching;      // p2
  labels[2] = Label::kNonMatching;   // p3
  labels[3] = Label::kMatching;      // p4 (deduced from p1, p2)
  labels[4] = Label::kMatching;      // p5
  labels[5] = Label::kNonMatching;   // p6
  labels[7] = Label::kNonMatching;   // p8 (deduced from p5, p6)
  const std::vector<int32_t> batch =
      ParallelCrowdsourcedPairs(pairs, IdentityOrder(pairs.size()), labels);
  EXPECT_EQ(batch, (std::vector<int32_t>{6}));  // p7
}

TEST(ParallelCrowdsourcedPairs, ExcludesPublishedPairsFromOutput) {
  const CandidateSet pairs = Figure3Pairs();
  std::vector<std::optional<Label>> labels(pairs.size());
  std::vector<bool> published(pairs.size(), false);
  published[0] = published[2] = true;
  const std::vector<int32_t> batch = ParallelCrowdsourcedPairs(
      pairs, IdentityOrder(pairs.size()), labels, &published);
  EXPECT_EQ(batch, (std::vector<int32_t>{1, 4, 5}));
}

TEST(ParallelLabeler, Figure3RunsInTwoIterations) {
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle oracle = Figure3Truth();
  const LabelingResult result =
      ParallelLabeler().Run(pairs, IdentityOrder(pairs.size()), oracle)
          .value();
  EXPECT_EQ(result.crowdsourced_per_iteration,
            (std::vector<int64_t>{5, 1}));
  EXPECT_EQ(result.num_crowdsourced, 6);
  EXPECT_EQ(result.num_deduced, 2);
}

TEST(ParallelLabeler, LabelsAgreeWithTruth) {
  const auto instance = MakeRandomInstance(3, 25, 5, 90);
  GroundTruthOracle truth(instance.entity_of);
  GroundTruthOracle oracle = truth;
  const LabelingResult result =
      ParallelLabeler()
          .Run(instance.pairs, IdentityOrder(instance.pairs.size()), oracle)
          .value();
  for (size_t i = 0; i < instance.pairs.size(); ++i) {
    EXPECT_EQ(result.outcomes[i].label,
              truth.Truth(instance.pairs[i].a, instance.pairs[i].b));
  }
}

TEST(ParallelLabeler, RejectsInvalidOrder) {
  const CandidateSet pairs = {{0, 1, 0.5}};
  GroundTruthOracle oracle({0, 0});
  EXPECT_EQ(ParallelLabeler().Run(pairs, {1}, oracle).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ParallelLabeler, IterationSizesSumToCrowdsourcedCount) {
  const auto instance = MakeRandomInstance(17, 40, 7, 160);
  GroundTruthOracle oracle(instance.entity_of);
  const LabelingResult result =
      ParallelLabeler()
          .Run(instance.pairs, IdentityOrder(instance.pairs.size()), oracle)
          .value();
  int64_t sum = 0;
  for (int64_t batch : result.crowdsourced_per_iteration) {
    EXPECT_GT(batch, 0);
    sum += batch;
  }
  EXPECT_EQ(sum, result.num_crowdsourced);
}

// The central equivalence of Section 5.1: on any order, the round-based
// parallel labeler crowdsources exactly the same pairs as the sequential
// labeler (it only batches them).
class ParallelEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelEquivalenceTest, SameCrowdsourcedSetAsSequential) {
  const auto instance = MakeRandomInstance(GetParam(), 30, 6, 110);
  GroundTruthOracle truth(instance.entity_of);
  Rng rng(GetParam() ^ 0xfeed);
  for (OrderKind kind : {OrderKind::kExpected, OrderKind::kRandom,
                         OrderKind::kOptimal, OrderKind::kWorst}) {
    const std::vector<int32_t> order =
        MakeLabelingOrder(instance.pairs, kind, &truth, &rng).value();
    GroundTruthOracle oracle_seq = truth;
    const LabelingResult sequential =
        SequentialLabeler().Run(instance.pairs, order, oracle_seq).value();
    GroundTruthOracle oracle_par = truth;
    const LabelingResult parallel =
        ParallelLabeler().Run(instance.pairs, order, oracle_par).value();
    ASSERT_EQ(sequential.outcomes.size(), parallel.outcomes.size());
    for (size_t i = 0; i < sequential.outcomes.size(); ++i) {
      // Superset property: every sequentially crowdsourced pair is also
      // crowdsourced by the parallel labeler. (The converse is only
      // approximate: Algorithm 3's all-matching assumption can publish a
      // pair one round before enough non-matching labels arrive to deduce
      // it, so the parallel labeler may crowdsource a handful extra.)
      if (sequential.outcomes[i].source == LabelSource::kCrowdsourced) {
        EXPECT_EQ(parallel.outcomes[i].source, LabelSource::kCrowdsourced)
            << "seed=" << GetParam() << " kind="
            << OrderKindToString(kind) << " pair=" << i;
      }
      EXPECT_EQ(sequential.outcomes[i].label, parallel.outcomes[i].label);
    }
    EXPECT_GE(parallel.num_crowdsourced, sequential.num_crowdsourced);
    // Dense adversarial instances show the largest speculation overhead;
    // the paper-shaped workloads of the bench harnesses show none at all
    // in the expected order. Ten percent is the sanity rail.
    EXPECT_LE(parallel.num_crowdsourced,
              sequential.num_crowdsourced +
                  std::max<int64_t>(3, sequential.num_crowdsourced / 10));
    EXPECT_LE(parallel.crowdsourced_per_iteration.size(),
              sequential.crowdsourced_per_iteration.size());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ParallelEquivalenceTest,
                         ::testing::Range<uint64_t>(200, 215));

}  // namespace
}  // namespace crowdjoin
