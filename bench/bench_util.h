#ifndef CROWDJOIN_BENCH_BENCH_UTIL_H_
#define CROWDJOIN_BENCH_BENCH_UTIL_H_

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/tracing.h"

namespace crowdjoin::bench {

/// \brief Strict --flag=value parser for the figure/table harnesses.
///
/// A malformed value (non-numeric text, trailing junk, a negative number
/// for an unsigned flag, out-of-range magnitude) is a hard error: the
/// process prints the offending flag and exits with code 2. The old parser
/// silently fell back on garbage — `--threads=8x` benchmarked one thread
/// and nobody noticed. Harnesses that read their flags unconditionally
/// should call `Done()` after the last Get*, which turns unrecognized
/// (never-consumed) arguments into the same hard error, catching typos
/// like `--thread=8`.
class Args {
 public:
  Args(int argc, char** argv)
      : argc_(argc),
        argv_(argv),
        consumed_(argc > 0 ? static_cast<size_t>(argc) : 0, false) {}

  uint64_t GetUint64(std::string_view name, uint64_t fallback) const {
    std::string value;
    if (!Find(name, &value)) return fallback;
    if (value.empty() || value[0] == '-' || value[0] == '+') {
      Fail(name, value, "expected a non-negative integer");
    }
    errno = 0;
    char* end = nullptr;
    const uint64_t parsed = std::strtoull(value.c_str(), &end, 10);
    if (errno == ERANGE) Fail(name, value, "out of range");
    if (end == nullptr || *end != '\0') {
      Fail(name, value, "expected a non-negative integer");
    }
    return parsed;
  }

  double GetDouble(std::string_view name, double fallback) const {
    std::string value;
    if (!Find(name, &value)) return fallback;
    if (value.empty()) Fail(name, value, "expected a number");
    errno = 0;
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (errno == ERANGE) Fail(name, value, "out of range");
    if (end == nullptr || *end != '\0') Fail(name, value, "expected a number");
    return parsed;
  }

  std::string GetString(std::string_view name, std::string fallback) const {
    std::string value;
    if (!Find(name, &value)) return fallback;
    return value;
  }

  /// Strict log-severity flag: accepts debug|info|warning|error|off (the
  /// names of crowdjoin::LogLevel), anything else is the usual hard error.
  LogLevel GetLogLevel(std::string_view name, LogLevel fallback) const {
    std::string value;
    if (!Find(name, &value)) return fallback;
    if (value == "debug") return LogLevel::kDebug;
    if (value == "info") return LogLevel::kInfo;
    if (value == "warning") return LogLevel::kWarning;
    if (value == "error") return LogLevel::kError;
    if (value == "off") return LogLevel::kOff;
    Fail(name, value, "expected debug|info|warning|error|off");
  }

  /// Call after the last Get*: any argument no Get* consumed — a
  /// misspelled flag, a flag this harness does not take, or a stray
  /// positional — is a hard error.
  void Done() const {
    for (int i = 1; i < argc_; ++i) {
      if (!consumed_[static_cast<size_t>(i)]) {
        std::fprintf(stderr, "FATAL: unrecognized argument '%s'\n", argv_[i]);
        std::exit(2);
      }
    }
  }

 private:
  [[noreturn]] void Fail(std::string_view name, const std::string& value,
                         const char* what) const {
    std::fprintf(stderr, "FATAL: bad value for --%.*s: '%s' (%s)\n",
                 static_cast<int>(name.size()), name.data(), value.c_str(),
                 what);
    std::exit(2);
  }

  bool Find(std::string_view name, std::string* value) const {
    const std::string prefix = "--" + std::string(name) + "=";
    bool found = false;
    // Mark every occurrence consumed but honor the first, so a duplicated
    // flag neither changes behavior nor trips Done().
    for (int i = 1; i < argc_; ++i) {
      const std::string_view arg(argv_[i]);
      if (arg.substr(0, prefix.size()) == prefix) {
        if (!found) *value = std::string(arg.substr(prefix.size()));
        found = true;
        consumed_[static_cast<size_t>(i)] = true;
      }
    }
    return found;
  }

  int argc_;
  char** argv_;
  mutable std::vector<bool> consumed_;
};

/// Aborts with the status message when `status` is not OK.
inline void CheckOk(const Status& status) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: %s\n", status.ToString().c_str());
    std::abort();
  }
}

/// Unwraps a Result or aborts with its error.
template <typename R>
auto Unwrap(R result) {
  CheckOk(result.status());
  return std::move(result).value();
}

/// Writes `content` to `path`, aborting (exit 2, like flag errors) when the
/// file cannot be written — a harness asked for an export it didn't get.
inline void WriteFileOrDie(const std::string& path, std::string_view content) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "FATAL: cannot open '%s' for writing\n", path.c_str());
    std::exit(2);
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), file);
  if (std::fclose(file) != 0 || written != content.size()) {
    std::fprintf(stderr, "FATAL: short write to '%s'\n", path.c_str());
    std::exit(2);
  }
}

/// Shared tail of harnesses carrying --metrics_json= / --trace_json=:
/// exports the global metrics snapshot and/or Chrome trace to the given
/// paths (empty = skip that export). Call once, after the measured work.
inline void ExportObservability(const std::string& metrics_json_path,
                                const std::string& trace_json_path) {
  if (!metrics_json_path.empty()) {
    WriteFileOrDie(metrics_json_path,
                   obs::MetricsRegistry::Global().Snapshot().ToJson());
  }
  if (!trace_json_path.empty()) {
    WriteFileOrDie(trace_json_path,
                   obs::TraceRecorder::Global().ToChromeTraceJson());
  }
}

}  // namespace crowdjoin::bench

#endif  // CROWDJOIN_BENCH_BENCH_UTIL_H_
