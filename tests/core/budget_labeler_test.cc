#include "core/budget_labeler.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/sequential_labeler.h"
#include "tests/core/test_fixtures.h"

namespace crowdjoin {
namespace {

using testing_fixtures::Figure3Pairs;
using testing_fixtures::Figure3Truth;

std::vector<int32_t> IdentityOrder(size_t n) {
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

TEST(BudgetLabeler, ZeroBudgetLabelsNothing) {
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle oracle = Figure3Truth();
  const auto result =
      BudgetLabeler().Run(pairs, IdentityOrder(pairs.size()), 0, oracle)
          .value();
  EXPECT_EQ(result.num_crowdsourced, 0);
  EXPECT_EQ(result.num_deduced, 0);
  EXPECT_EQ(result.num_unlabeled, static_cast<int64_t>(pairs.size()));
  EXPECT_EQ(oracle.num_queries(), 0);
}

TEST(BudgetLabeler, LargeBudgetMatchesSequentialLabeler) {
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle truth = Figure3Truth();
  GroundTruthOracle oracle1 = truth;
  const auto budgeted =
      BudgetLabeler().Run(pairs, IdentityOrder(pairs.size()), 1000, oracle1)
          .value();
  GroundTruthOracle oracle2 = truth;
  const auto full =
      SequentialLabeler().Run(pairs, IdentityOrder(pairs.size()), oracle2)
          .value();
  EXPECT_EQ(budgeted.num_crowdsourced, full.num_crowdsourced);
  EXPECT_EQ(budgeted.num_deduced, full.num_deduced);
  EXPECT_EQ(budgeted.num_unlabeled, 0);
  for (size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_TRUE(budgeted.outcomes[i].has_value());
    EXPECT_EQ(budgeted.outcomes[i]->label, full.outcomes[i].label);
  }
}

TEST(BudgetLabeler, DeductionContinuesAfterExhaustion) {
  // Budget 2 covers p1, p2 in the Figure 3 order; p4 = (o1,o3) is later in
  // the order but still deducible from the two purchased labels.
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle oracle = Figure3Truth();
  const auto result =
      BudgetLabeler().Run(pairs, IdentityOrder(pairs.size()), 2, oracle)
          .value();
  EXPECT_EQ(result.num_crowdsourced, 2);
  EXPECT_EQ(oracle.num_queries(), 2);
  ASSERT_TRUE(result.outcomes[3].has_value());  // p4 deduced
  EXPECT_EQ(result.outcomes[3]->label, Label::kMatching);
  EXPECT_EQ(result.outcomes[3]->source, LabelSource::kDeduced);
  EXPECT_FALSE(result.outcomes[6].has_value());  // p7 unreachable
  EXPECT_EQ(result.num_crowdsourced + result.num_deduced +
                result.num_unlabeled,
            static_cast<int64_t>(pairs.size()));
}

TEST(BudgetLabeler, MoreBudgetNeverLabelsFewerPairs) {
  const auto instance = testing_fixtures::MakeRandomInstance(55, 20, 4, 60);
  GroundTruthOracle truth(instance.entity_of);
  int64_t previous_labeled = -1;
  for (int64_t budget : {0, 5, 10, 20, 40, 60}) {
    GroundTruthOracle oracle = truth;
    const auto result =
        BudgetLabeler()
            .Run(instance.pairs, IdentityOrder(instance.pairs.size()),
                 budget, oracle)
            .value();
    const int64_t labeled = result.num_crowdsourced + result.num_deduced;
    EXPECT_GE(labeled, previous_labeled) << "budget=" << budget;
    previous_labeled = labeled;
  }
}

TEST(BudgetLabeler, NegativeBudgetRejected) {
  const CandidateSet pairs = {{0, 1, 0.5}};
  GroundTruthOracle oracle({0, 0});
  EXPECT_EQ(BudgetLabeler().Run(pairs, {0}, -1, oracle).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace crowdjoin
