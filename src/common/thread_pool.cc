#include "common/thread_pool.h"

#include <utility>

namespace crowdjoin {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) return;  // inline pool: no workers
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Inline pools never queue, and workers drain the queue before exiting,
  // so nothing is left behind here.
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  if (workers_.empty()) {
    task();  // inline pool: run on the submitting thread
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace crowdjoin
