#ifndef CROWDJOIN_TESTS_CORE_TEST_FIXTURES_H_
#define CROWDJOIN_TESTS_CORE_TEST_FIXTURES_H_

#include <vector>

#include "common/rng.h"
#include "core/candidate.h"
#include "core/oracle.h"

namespace crowdjoin::testing_fixtures {

/// The paper's running example (Figure 3): eight candidate pairs over six
/// objects (o1..o6 mapped to ids 0..5), in decreasing likelihood order.
/// Ground truth: {o1,o2,o3} match, {o4,o5} match, {o6} is a singleton.
inline CandidateSet Figure3Pairs() {
  return {
      {0, 1, 0.95},  // p1  (matching)
      {1, 2, 0.90},  // p2  (matching)
      {0, 5, 0.85},  // p3  (non-matching)
      {0, 2, 0.80},  // p4  (matching)
      {3, 4, 0.75},  // p5  (matching)
      {3, 5, 0.70},  // p6  (non-matching)
      {1, 3, 0.65},  // p7  (non-matching)
      {4, 5, 0.60},  // p8  (non-matching)
  };
}

/// Ground truth for Figure3Pairs().
inline GroundTruthOracle Figure3Truth() {
  return GroundTruthOracle({0, 0, 0, 1, 1, 2});
}

/// A random consistent instance: objects assigned to entities, candidate
/// pairs sampled with likelihoods correlated to (but noisy around) the
/// truth, mimicking a machine likelihood channel.
struct RandomInstance {
  CandidateSet pairs;
  std::vector<int32_t> entity_of;
};

inline RandomInstance MakeRandomInstance(uint64_t seed, int32_t num_objects,
                                         int32_t num_entities,
                                         int32_t num_pairs) {
  Rng rng(seed);
  RandomInstance instance;
  instance.entity_of.resize(static_cast<size_t>(num_objects));
  for (auto& e : instance.entity_of) {
    e = static_cast<int32_t>(rng.Index(static_cast<size_t>(num_entities)));
  }
  while (static_cast<int32_t>(instance.pairs.size()) < num_pairs) {
    const auto a =
        static_cast<ObjectId>(rng.Index(static_cast<size_t>(num_objects)));
    const auto b =
        static_cast<ObjectId>(rng.Index(static_cast<size_t>(num_objects)));
    if (a == b) continue;
    const bool matching = instance.entity_of[static_cast<size_t>(a)] ==
                          instance.entity_of[static_cast<size_t>(b)];
    const double base = matching ? 0.75 : 0.3;
    const double likelihood =
        std::min(0.99, std::max(0.01, base + rng.Normal(0.0, 0.2)));
    instance.pairs.push_back(
        {std::min(a, b), std::max(a, b), likelihood});
  }
  return instance;
}

}  // namespace crowdjoin::testing_fixtures

#endif  // CROWDJOIN_TESTS_CORE_TEST_FIXTURES_H_
