#include "text/record_similarity.h"

#include <gtest/gtest.h>

#include <cmath>

namespace crowdjoin {
namespace {

Record MakeRecord(ObjectId id, std::vector<std::string> fields) {
  Record record;
  record.id = id;
  record.fields = std::move(fields);
  return record;
}

TEST(ParseNumericField, ParsesOrNan) {
  EXPECT_DOUBLE_EQ(ParseNumericField("42.5"), 42.5);
  EXPECT_DOUBLE_EQ(ParseNumericField("  7 "), 7.0);
  EXPECT_TRUE(std::isnan(ParseNumericField("")));
  EXPECT_TRUE(std::isnan(ParseNumericField("abc")));
}

TEST(NumericProximity, RelativeDistance) {
  EXPECT_DOUBLE_EQ(NumericProximity(100.0, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(NumericProximity(0.0, 0.0), 1.0);
  EXPECT_NEAR(NumericProximity(90.0, 100.0), 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(NumericProximity(1.0, 1000.0), 1.0 - 999.0 / 1000.0);
  EXPECT_DOUBLE_EQ(NumericProximity(std::nan(""), 1.0), 0.0);
}

TEST(RecordScorer, IdenticalRecordsScoreOne) {
  RecordScorer scorer({{0, FieldMeasure::kJaccardWords, 1.0}});
  const Record a = MakeRecord(0, {"ipad 2nd gen"});
  EXPECT_DOUBLE_EQ(scorer.Score(a, a).value(), 1.0);
}

TEST(RecordScorer, WeightedBlend) {
  RecordScorer scorer({
      {0, FieldMeasure::kJaccardWords, 3.0},
      {1, FieldMeasure::kNumeric, 1.0},
  });
  const Record a = MakeRecord(0, {"x y", "100"});
  const Record b = MakeRecord(1, {"x z", "50"});
  // Jaccard({x,y},{x,z}) = 1/3; numeric proximity = 0.5.
  EXPECT_NEAR(scorer.Score(a, b).value(),
              (3.0 * (1.0 / 3.0) + 1.0 * 0.5) / 4.0, 1e-12);
}

TEST(RecordScorer, BothFieldsEmptySkipsAndRenormalizes) {
  RecordScorer scorer({
      {0, FieldMeasure::kJaccardWords, 1.0},
      {1, FieldMeasure::kJaccardWords, 1.0},
  });
  const Record a = MakeRecord(0, {"same words", ""});
  const Record b = MakeRecord(1, {"same words", ""});
  EXPECT_DOUBLE_EQ(scorer.Score(a, b).value(), 1.0);
}

TEST(RecordScorer, EmptyVsNonEmptyScoresZeroForThatField) {
  RecordScorer scorer({{0, FieldMeasure::kJaccardWords, 1.0}});
  const Record a = MakeRecord(0, {""});
  const Record b = MakeRecord(1, {"something"});
  EXPECT_DOUBLE_EQ(scorer.Score(a, b).value(), 0.0);
}

TEST(RecordScorer, FieldIndexOutOfRangeIsError) {
  RecordScorer scorer({{5, FieldMeasure::kJaccardWords, 1.0}});
  const Record a = MakeRecord(0, {"x"});
  EXPECT_EQ(scorer.Score(a, a).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RecordScorer, NoSpecsIsError) {
  RecordScorer scorer({});
  const Record a = MakeRecord(0, {"x"});
  EXPECT_EQ(scorer.Score(a, a).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(RecordScorer, TfIdfRequiresFit) {
  RecordScorer scorer({{0, FieldMeasure::kTfIdfCosine, 1.0}});
  const Record a = MakeRecord(0, {"x"});
  EXPECT_EQ(scorer.Score(a, a).status().code(),
            StatusCode::kFailedPrecondition);
  scorer.FitTfIdf({a});
  EXPECT_TRUE(scorer.Score(a, a).ok());
}

TEST(RecordScorer, QGramMeasureCatchesTypos) {
  RecordScorer word_scorer({{0, FieldMeasure::kJaccardWords, 1.0}});
  RecordScorer gram_scorer({{0, FieldMeasure::kQGramJaccard, 1.0, 3}});
  const Record a = MakeRecord(0, {"panasonic"});
  const Record b = MakeRecord(1, {"panasonik"});
  // Word-level Jaccard sees disjoint tokens; 3-grams overlap heavily.
  EXPECT_DOUBLE_EQ(word_scorer.Score(a, b).value(), 0.0);
  EXPECT_GT(gram_scorer.Score(a, b).value(), 0.4);
}

TEST(RecordScorer, AllMeasuresStayInUnitInterval) {
  RecordScorer scorer({
      {0, FieldMeasure::kJaccardWords, 1.0},
      {0, FieldMeasure::kQGramJaccard, 1.0, 2},
      {0, FieldMeasure::kLevenshtein, 1.0},
      {0, FieldMeasure::kJaroWinkler, 1.0},
      {1, FieldMeasure::kNumeric, 1.0},
  });
  const Record a = MakeRecord(0, {"sony bravia tv", "499.99"});
  const Record b = MakeRecord(1, {"sony tv stand", "89.00"});
  const double score = scorer.Score(a, b).value();
  EXPECT_GE(score, 0.0);
  EXPECT_LE(score, 1.0);
}

}  // namespace
}  // namespace crowdjoin
