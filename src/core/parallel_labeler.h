#ifndef CROWDJOIN_CORE_PARALLEL_LABELER_H_
#define CROWDJOIN_CORE_PARALLEL_LABELER_H_

#include <optional>
#include <vector>

#include "common/result.h"
#include "core/candidate.h"
#include "core/labeling_result.h"
#include "core/oracle.h"
#include "graph/cluster_graph.h"

namespace crowdjoin {

/// \brief Identifies the pairs that can be crowdsourced in parallel
/// (Algorithm 3, ParallelCrowdsourcedPairs).
///
/// Scans the labeling order once, inserting already-labeled pairs with
/// their real labels and assuming every unlabeled pair is matching (the
/// assumption that maximizes deducibility). An unlabeled pair that is still
/// undeducible under this assumption can never become deducible from its
/// prefix, whatever labels arrive later, so it *must* be crowdsourced.
///
/// `labels_by_pos[i]` is the label of candidate position `i` if known.
/// Positions in `exclude_from_output` (e.g. already-published pairs, for
/// the instant-decision optimization) are still treated as must-crowdsource
/// pairs in the scan but are omitted from the returned set.
std::vector<int32_t> ParallelCrowdsourcedPairs(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    const std::vector<std::optional<Label>>& labels_by_pos,
    const std::vector<bool>* exclude_from_output = nullptr,
    ConflictPolicy policy = ConflictPolicy::kKeepFirst);

/// \brief The round-based parallel labeling algorithm of Section 5.1
/// (Algorithm 2).
///
/// Each round publishes every must-crowdsource pair at once, obtains all
/// their labels, then deduces every pair that became deducible, and repeats
/// until all pairs are labeled. The crowdsourced pair *set* is identical to
/// the sequential labeler's on the same order; only the number of rounds
/// differs (Figures 13–14).
class ParallelLabeler {
 public:
  explicit ParallelLabeler(ConflictPolicy policy = ConflictPolicy::kKeepFirst)
      : policy_(policy) {}

  /// Runs rounds until every pair is labeled. `crowdsourced_per_iteration`
  /// in the result holds the batch size of every round.
  Result<LabelingResult> Run(const CandidateSet& pairs,
                             const std::vector<int32_t>& order,
                             LabelOracle& oracle) const;

 private:
  ConflictPolicy policy_;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_CORE_PARALLEL_LABELER_H_
