#include "text/tfidf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace crowdjoin {
namespace {

using Doc = std::vector<std::string>;

TEST(TfIdfModel, IdfRanksRareTokensHigher) {
  const TfIdfModel model = TfIdfModel::Fit({
      {"the", "cat"},
      {"the", "dog"},
      {"the", "cat", "dog"},
      {"the", "zebra"},
  });
  EXPECT_GT(model.Idf("zebra"), model.Idf("cat"));
  EXPECT_GT(model.Idf("cat"), model.Idf("the"));
  // Unseen tokens get the maximum idf.
  EXPECT_GT(model.Idf("unseen"), model.Idf("zebra"));
  EXPECT_EQ(model.num_documents(), 4u);
}

TEST(TfIdfModel, CosineIdenticalDocsIsOne) {
  const TfIdfModel model = TfIdfModel::Fit({{"a", "b"}, {"c"}});
  EXPECT_NEAR(model.Cosine({"a", "b"}, {"a", "b"}), 1.0, 1e-12);
}

TEST(TfIdfModel, CosineDisjointDocsIsZero) {
  const TfIdfModel model = TfIdfModel::Fit({{"a"}, {"b"}});
  EXPECT_DOUBLE_EQ(model.Cosine({"a"}, {"b"}), 0.0);
}

TEST(TfIdfModel, CosineEmptyDocs) {
  const TfIdfModel model = TfIdfModel::Fit({{"a"}});
  EXPECT_DOUBLE_EQ(model.Cosine({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(model.Cosine({"a"}, {}), 0.0);
}

TEST(TfIdfModel, RareSharedTokenDominates) {
  // Documents sharing a rare token should be closer than documents sharing
  // only a ubiquitous one.
  std::vector<Doc> corpus;
  for (int i = 0; i < 50; ++i) corpus.push_back({"common", "filler"});
  corpus.push_back({"common", "rareword"});
  corpus.push_back({"common", "rareword"});
  const TfIdfModel model = TfIdfModel::Fit(corpus);
  const double rare_pair =
      model.Cosine({"common", "rareword"}, {"other", "rareword"});
  const double common_pair =
      model.Cosine({"common", "rareword"}, {"common", "other"});
  EXPECT_GT(rare_pair, common_pair);
}

TEST(TfIdfModel, CosineIsNormalizedToOneForProportionalDocs) {
  // Self-similarity is exactly 1 regardless of the idf weights, and
  // scaling every term frequency by the same factor changes nothing —
  // the norms divide the weights back out.
  const TfIdfModel model = TfIdfModel::Fit({{"a", "b"}, {"b", "c"}, {"d"}});
  EXPECT_NEAR(model.Cosine({"a", "b", "d"}, {"a", "b", "d"}), 1.0, 1e-12);
  EXPECT_NEAR(model.Cosine({"a", "b"}, {"a", "a", "b", "b"}), 1.0, 1e-12);
}

TEST(TfIdfModel, ZeroNormGuardReturnsZeroNotNaN) {
  // A model fit on an empty corpus gives every token idf log(1 + 0/1) = 0,
  // so both vectors have zero norm; the guard must return 0, not 0/0.
  const TfIdfModel empty_corpus = TfIdfModel::Fit({});
  const double score = empty_corpus.Cosine({"a"}, {"a"});
  EXPECT_FALSE(std::isnan(score));
  EXPECT_DOUBLE_EQ(score, 0.0);
}

TEST(TfIdfModel, DuplicateTokensCountOncePerDocumentForIdf) {
  const TfIdfModel model =
      TfIdfModel::Fit({{"dup", "dup", "dup"}, {"other"}});
  // df("dup") must be 1, same as df("other").
  EXPECT_DOUBLE_EQ(model.Idf("dup"), model.Idf("other"));
}

}  // namespace
}  // namespace crowdjoin
