#ifndef CROWDJOIN_SIMJOIN_SIMILARITY_MEASURE_H_
#define CROWDJOIN_SIMJOIN_SIMILARITY_MEASURE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "simjoin/token_dictionary.h"

namespace crowdjoin {

/// The similarity measures the candidate pipeline can join under.
enum class MeasureKind {
  kJaccard,       ///< token-set Jaccard over word tokens
  kEditDistance,  ///< normalized Levenshtein over normalized strings
  kCosineTfIdf,   ///< idf-weighted set cosine over word tokens
};

/// \brief One document as a measure sees it: the signature tokens driving
/// candidate generation plus whatever verification needs.
///
/// `tokens` are deduplicated, ascending token ids — word tokens for
/// Jaccard/cosine, character q-grams for edit distance. `size` is the
/// measure's length dimension: it drives the join's size windows and the
/// ascending-size processing order (token count for Jaccard/cosine, the
/// normalized string length for edit distance). `payload` is retained only
/// when verification cannot run on the signature (the edit measure's
/// normalized string, fed to the banded-DP verifier); it is empty for the
/// set measures.
struct MeasureDoc {
  std::vector<int32_t> tokens;
  int32_t size = 0;
  std::string payload;
};

/// \brief A similarity measure the join stack composes with: a signature /
/// prefix scheme, a size-window + overlap filter bound, and a verification
/// kernel.
///
/// Every measure must satisfy the filter/verifier contract the sequential
/// and sharded joiners assume:
///  - completeness: any pair whose exact score passes
///    `score + 1e-12 >= threshold` shares at least one signature token
///    inside both prefixes (or is covered by the measure's fallback
///    bucket), lies inside the `[MinSize, MaxSize]` window, and survives
///    the `Required` overlap bound;
///  - determinism: verification computes the exact score through one fixed
///    sequence of operations per pair, so every join path (sequential,
///    sharded at any shard/thread count, and the brute-force reference)
///    lands on bit-identical doubles;
///  - the empty-doc contract: documents with an empty signature
///    (`tokens.empty()`) take no part in any join.
///
/// The three instances are stateless singletons; join entry points take a
/// `const SimilarityMeasure&` and dispatch internally to static policies
/// (see `simjoin/measure_policy.h`), so the Jaccard path compiles to the
/// exact code it was before measures existed.
class SimilarityMeasure {
 public:
  static const SimilarityMeasure& Jaccard();
  static const SimilarityMeasure& EditDistance();
  static const SimilarityMeasure& CosineTfIdf();
  static const SimilarityMeasure& Get(MeasureKind kind);

  /// Parses a CLI-style name: "jaccard", "edit", "cosine".
  static Result<MeasureKind> ParseKind(std::string_view name);

  MeasureKind kind() const { return kind_; }
  const char* name() const;
  /// Signature gram size of the edit measure (unused by the others).
  int qgram() const { return qgram_; }

  /// Builds one document's measure signature from raw text, interning
  /// tokens through `dictionary` (document frequencies counted once, as
  /// `TokenDictionary::AddDocument` does).
  MeasureDoc MakeDoc(std::string_view text, TokenDictionary& dictionary) const;

 private:
  explicit SimilarityMeasure(MeasureKind kind, int qgram)
      : kind_(kind), qgram_(qgram) {}

  MeasureKind kind_;
  int qgram_;
};

/// \brief Per-rank idf weights for the cosine measure: `weights[rank]` is
/// `log(1 + N / (1 + df))` of the token holding that rarity rank, with N
/// the dictionary's document count — the same smoothing `TfIdfModel::Idf`
/// uses. Every weight is > 0, so any non-empty document has a non-zero
/// norm and the cosine verifier's zero-norm guard can only fire on empty
/// documents (which the joins exclude anyway).
std::vector<double> CosineRankWeights(const TokenDictionary& dictionary,
                                      const std::vector<int32_t>& ranks);

}  // namespace crowdjoin

#endif  // CROWDJOIN_SIMJOIN_SIMILARITY_MEASURE_H_
