#ifndef CROWDJOIN_COMMON_SERIALIZE_H_
#define CROWDJOIN_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/macros.h"
#include "common/result.h"
#include "common/status.h"

namespace crowdjoin {

/// \brief Appends fixed-width little-endian values to a byte buffer.
///
/// The on-disk companion of `BinaryReader`; together they define the wire
/// format used by the campaign checkpoint files. All integers are
/// little-endian regardless of host order, doubles are IEEE-754 bit
/// patterns, and byte strings are length-prefixed (u64). The format has no
/// self-description — reader and writer must agree on the field sequence —
/// so every file embeds a magic + version header plus a trailing checksum
/// (see `Fingerprint64`).
class BinaryWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void PutU32(uint32_t v) { PutLittleEndian(v); }
  void PutU64(uint64_t v) { PutLittleEndian(v); }
  void PutI64(int64_t v) { PutLittleEndian(static_cast<uint64_t>(v)); }
  void PutDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    PutLittleEndian(bits);
  }
  /// Length-prefixed byte string.
  void PutBytes(std::string_view bytes) {
    PutU64(bytes.size());
    buf_.append(bytes.data(), bytes.size());
  }

  /// The serialized bytes so far.
  const std::string& buffer() const { return buf_; }
  std::string TakeBuffer() { return std::move(buf_); }

 private:
  template <typename T>
  void PutLittleEndian(T v) {
    for (size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  std::string buf_;
};

/// \brief Consumes fixed-width little-endian values from a byte buffer.
///
/// Every read is bounds-checked and returns `Result`; a truncated or
/// corrupted file surfaces as `OutOfRange` instead of undefined behavior.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8() {
    CJ_ASSIGN_OR_RETURN(std::string_view raw, Take(1));
    return static_cast<uint8_t>(raw[0]);
  }
  Result<uint32_t> ReadU32() { return ReadLittleEndian<uint32_t>(); }
  Result<uint64_t> ReadU64() { return ReadLittleEndian<uint64_t>(); }
  Result<int64_t> ReadI64() {
    CJ_ASSIGN_OR_RETURN(uint64_t bits, ReadLittleEndian<uint64_t>());
    return static_cast<int64_t>(bits);
  }
  Result<double> ReadDouble() {
    CJ_ASSIGN_OR_RETURN(uint64_t bits, ReadLittleEndian<uint64_t>());
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  /// Length-prefixed byte string (see `BinaryWriter::PutBytes`).
  Result<std::string> ReadBytes() {
    CJ_ASSIGN_OR_RETURN(uint64_t n, ReadU64());
    if (n > remaining()) {
      return Status::OutOfRange("byte string length exceeds buffer");
    }
    CJ_ASSIGN_OR_RETURN(std::string_view raw, Take(static_cast<size_t>(n)));
    return std::string(raw);
  }

  /// Bytes not yet consumed.
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Result<std::string_view> Take(size_t n) {
    if (n > remaining()) {
      return Status::OutOfRange("truncated buffer: need " + std::to_string(n) +
                                " bytes, have " + std::to_string(remaining()));
    }
    std::string_view raw = data_.substr(pos_, n);
    pos_ += n;
    return raw;
  }

  template <typename T>
  Result<T> ReadLittleEndian() {
    CJ_ASSIGN_OR_RETURN(std::string_view raw, Take(sizeof(T)));
    T v = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<uint8_t>(raw[i])) << (8 * i);
    }
    return v;
  }

  std::string_view data_;
  size_t pos_ = 0;
};

/// \brief FNV-1a over `data`: the integrity checksum trailing every
/// checkpoint payload, and the config fingerprint guarding resume.
uint64_t Fingerprint64(std::string_view data);

/// \brief Writes `data` to `path` atomically: the bytes land in
/// `<path>.tmp` first and are renamed over `path` only after a successful
/// flush, so a crash mid-write never leaves a torn file at `path`.
Status AtomicWriteFile(const std::string& path, std::string_view data);

/// \brief Reads the whole file at `path`. `NotFound` when it is absent.
Result<std::string> ReadFileToString(const std::string& path);

}  // namespace crowdjoin

#endif  // CROWDJOIN_COMMON_SERIALIZE_H_
