// Fault-injection tests: the FaultInjector's counter-based coins, the
// platform's behavior under each fault class (abandonment, stragglers,
// spammers, expiry, flaky publishes), the orchestrator's recovery
// accounting, and the no-faults byte-identity guarantee.

#include "crowd/faults.h"

#include <gtest/gtest.h>

#include <numeric>

#include "crowd/availability_sim.h"
#include "crowd/orchestrator.h"
#include "eval/metrics.h"
#include "tests/core/test_fixtures.h"

namespace crowdjoin {
namespace {

using testing_fixtures::Figure3Pairs;
using testing_fixtures::Figure3Truth;
using testing_fixtures::MakeRandomInstance;

std::vector<int32_t> IdentityOrder(size_t n) {
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

CrowdConfig SmallConfig() {
  CrowdConfig config;
  config.pairs_per_hit = 4;
  config.assignments_per_hit = 3;
  config.num_workers = 6;
  return config;
}

bool SameStats(const AmtRunStats& x, const AmtRunStats& y) {
  return x.num_hits == y.num_hits && x.num_assignments == y.num_assignments &&
         x.total_hours == y.total_hours &&
         x.total_cost_cents == y.total_cost_cents &&
         x.num_crowdsourced_pairs == y.num_crowdsourced_pairs &&
         x.num_deduced_pairs == y.num_deduced_pairs &&
         x.final_labels == y.final_labels &&
         x.num_publish_retries == y.num_publish_retries &&
         x.num_hits_reposted == y.num_hits_reposted &&
         x.num_reask_hits == y.num_reask_hits &&
         x.num_assignments_abandoned == y.num_assignments_abandoned &&
         x.num_hits_expired == y.num_hits_expired;
}

// --- FaultInjector coins ---------------------------------------------------

TEST(FaultInjector, DisabledPlanInjectsNothing) {
  const FaultPlan plan;  // all defaults: off
  EXPECT_FALSE(plan.enabled());
  EXPECT_TRUE(plan.transient_only());
  const FaultInjector injector(plan);
  for (int w = 0; w < 50; ++w) {
    EXPECT_FALSE(injector.WorkerIsSpammer(w));
    EXPECT_DOUBLE_EQ(injector.WorkerServiceMultiplier(w), 1.0);
  }
  for (int attempt = 1; attempt <= 5; ++attempt) {
    EXPECT_FALSE(injector.AssignmentAbandoned(7, 3, attempt));
    EXPECT_FALSE(injector.PairAttemptFails(1, 2, attempt));
    EXPECT_FALSE(injector.PublishFails(9, attempt));
  }
  EXPECT_EQ(injector.AsAttemptFaultFn(), nullptr);
}

TEST(FaultInjector, DecisionsAreDeterministicAndPairSymmetric) {
  FaultPlan plan;
  plan.seed = 17;
  plan.abandonment_rate = 0.4;
  plan.straggler_rate = 0.3;
  plan.spammer_rate = 0.2;
  plan.publish_failure_rate = 0.3;
  EXPECT_FALSE(plan.transient_only());  // spam persists across retries
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  for (int w = 0; w < 40; ++w) {
    EXPECT_EQ(a.WorkerIsSpammer(w), b.WorkerIsSpammer(w));
    EXPECT_DOUBLE_EQ(a.WorkerServiceMultiplier(w),
                     b.WorkerServiceMultiplier(w));
  }
  for (ObjectId x = 0; x < 20; ++x) {
    for (int attempt = 1; attempt <= 4; ++attempt) {
      EXPECT_EQ(a.PairAttemptFails(x, x + 1, attempt),
                b.PairAttemptFails(x, x + 1, attempt));
      // (a, b) and (b, a) share fate: the coin is over the unordered pair.
      EXPECT_EQ(a.PairAttemptFails(x, x + 1, attempt),
                a.PairAttemptFails(x + 1, x, attempt));
    }
  }
}

TEST(FaultInjector, SeedSelectsDifferentWeather) {
  FaultPlan plan;
  plan.seed = 1;
  plan.abandonment_rate = 0.5;
  FaultPlan other = plan;
  other.seed = 2;
  const FaultInjector a(plan);
  const FaultInjector b(other);
  int differences = 0;
  for (ObjectId x = 0; x < 200; ++x) {
    if (a.PairAttemptFails(x, x + 1, 1) != b.PairAttemptFails(x, x + 1, 1)) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(FaultInjector, CoinsTrackTheirConfiguredRates) {
  FaultPlan plan;
  plan.seed = 23;
  plan.abandonment_rate = 0.25;
  plan.spammer_rate = 0.1;
  plan.straggler_rate = 0.3;
  plan.straggler_multiplier = 5.0;
  const FaultInjector injector(plan);
  int abandoned = 0;
  int spammers = 0;
  int stragglers = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (injector.AssignmentAbandoned(static_cast<uint64_t>(i), i % 7, 1)) {
      ++abandoned;
    }
    if (injector.WorkerIsSpammer(i)) ++spammers;
    if (injector.WorkerServiceMultiplier(i) > 1.0) ++stragglers;
  }
  EXPECT_NEAR(static_cast<double>(abandoned) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(spammers) / n, 0.10, 0.02);
  EXPECT_NEAR(static_cast<double>(stragglers) / n, 0.30, 0.02);
}

// --- No-faults byte-identity ----------------------------------------------

TEST(CrowdFaults, SeededButDisabledPlanIsByteIdentical) {
  // Setting only the fault seed must not perturb the simulation: fault
  // coins are pure hashes, not RNG-stream draws.
  const auto instance = MakeRandomInstance(51, 25, 5, 90);
  GroundTruthOracle truth(instance.entity_of);
  const auto order = IdentityOrder(instance.pairs.size());
  CrowdConfig config = SmallConfig();
  config.false_negative_rate = 0.2;
  config.false_positive_rate = 0.2;
  config.worker_rate_stddev = 0.05;
  const AmtRunStats baseline =
      RunTransitiveAmt(instance.pairs, order, config, truth).value();
  config.faults.seed = 0xDEADBEEF;  // everything else stays off
  const AmtRunStats seeded =
      RunTransitiveAmt(instance.pairs, order, config, truth).value();
  EXPECT_TRUE(SameStats(baseline, seeded));
}

// --- Platform fault behavior ----------------------------------------------

TEST(CrowdFaults, AbandonedAssignmentsAreRefilledAndUnbilled) {
  const auto instance = MakeRandomInstance(52, 25, 5, 90);
  GroundTruthOracle truth(instance.entity_of);
  const auto order = IdentityOrder(instance.pairs.size());
  CrowdConfig config = SmallConfig();
  const AmtRunStats baseline =
      RunTransitiveAmt(instance.pairs, order, config, truth).value();
  config.faults.seed = 3;
  config.faults.abandonment_rate = 0.3;
  const AmtRunStats faulted =
      RunTransitiveAmt(instance.pairs, order, config, truth).value();
  EXPECT_GT(faulted.num_assignments_abandoned, 0);
  // Abandoned pickups are not billed: every completed HIT still costs
  // exactly assignments_per_hit answers.
  EXPECT_EQ(faulted.num_assignments,
            faulted.num_hits * config.assignments_per_hit);
  // Perfect workers keep the labels perfect; abandonment only costs time.
  EXPECT_DOUBLE_EQ(
      ComputeQuality(instance.pairs, faulted.final_labels, truth).f_measure,
      1.0);
  EXPECT_GE(faulted.total_hours, baseline.total_hours);
}

TEST(CrowdFaults, ExpiredHitsAreRepostedUntilAnswered) {
  const auto instance = MakeRandomInstance(53, 25, 5, 90);
  GroundTruthOracle truth(instance.entity_of);
  const auto order = IdentityOrder(instance.pairs.size());
  CrowdConfig config = SmallConfig();
  config.faults.seed = 4;
  config.faults.straggler_rate = 0.5;
  config.faults.straggler_multiplier = 8.0;
  config.faults.hit_expiry_hours = 3.0;
  config.retry.max_attempts = 6;
  const AmtRunStats stats =
      RunTransitiveAmt(instance.pairs, order, config, truth).value();
  EXPECT_GT(stats.num_hits_expired, 0);
  EXPECT_GT(stats.num_hits_reposted, 0);
  EXPECT_DOUBLE_EQ(
      ComputeQuality(instance.pairs, stats.final_labels, truth).f_measure,
      1.0);
}

TEST(CrowdFaults, SpammersInvertEveryAnswer) {
  // With every worker spamming and no honest noise, every majority vote is
  // inverted — the non-transitive baseline gets every label wrong.
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle truth = Figure3Truth();
  CrowdConfig config = SmallConfig();
  config.faults.seed = 5;
  config.faults.spammer_rate = 1.0;
  const AmtRunStats stats =
      RunNonTransitiveAmt(pairs, config, truth).value();
  for (size_t i = 0; i < pairs.size(); ++i) {
    const Label real = truth.Truth(pairs[i].a, pairs[i].b);
    EXPECT_NE(stats.final_labels[i], real) << "pair " << i;
  }
}

TEST(CrowdFaults, TransientPublishFailuresAreRetriedToCompletion) {
  const auto instance = MakeRandomInstance(54, 25, 5, 90);
  GroundTruthOracle truth(instance.entity_of);
  const auto order = IdentityOrder(instance.pairs.size());
  CrowdConfig config = SmallConfig();
  config.faults.seed = 6;
  config.faults.publish_failure_rate = 0.5;
  config.retry.max_attempts = 8;
  const AmtRunStats stats =
      RunTransitiveAmt(instance.pairs, order, config, truth).value();
  EXPECT_GT(stats.num_publish_retries, 0);
  EXPECT_DOUBLE_EQ(
      ComputeQuality(instance.pairs, stats.final_labels, truth).f_measure,
      1.0);
}

TEST(CrowdFaults, QuorumReasksFireOnSplitVotes) {
  const auto instance = MakeRandomInstance(55, 30, 6, 120);
  GroundTruthOracle truth(instance.entity_of);
  CrowdConfig config = SmallConfig();
  config.false_negative_rate = 0.35;
  config.false_positive_rate = 0.35;
  config.worker_rate_stddev = 0.1;
  config.retry.reask_margin = 1;  // any non-unanimous 3-vote HIT re-asks
  const AmtRunStats stats =
      RunNonTransitiveAmt(instance.pairs, config, truth).value();
  EXPECT_GT(stats.num_reask_hits, 0);
  // Re-asked HITs are extra publications on top of the baseline count.
  const int64_t base_hits =
      (static_cast<int64_t>(instance.pairs.size()) + config.pairs_per_hit -
       1) /
      config.pairs_per_hit;
  EXPECT_EQ(stats.num_hits, base_hits + stats.num_reask_hits);
}

TEST(CrowdFaults, FaultedCampaignsAreSeedDeterministic) {
  const auto instance = MakeRandomInstance(56, 25, 5, 90);
  GroundTruthOracle truth(instance.entity_of);
  const auto order = IdentityOrder(instance.pairs.size());
  CrowdConfig config = SmallConfig();
  config.false_negative_rate = 0.2;
  config.false_positive_rate = 0.2;
  config.faults.seed = 7;
  config.faults.abandonment_rate = 0.2;
  config.faults.straggler_rate = 0.3;
  config.faults.hit_expiry_hours = 6.0;
  config.faults.publish_failure_rate = 0.2;
  config.retry.reask_margin = 1;
  const AmtRunStats first =
      RunTransitiveAmt(instance.pairs, order, config, truth).value();
  const AmtRunStats second =
      RunTransitiveAmt(instance.pairs, order, config, truth).value();
  EXPECT_TRUE(SameStats(first, second));
}

// --- Availability simulation under faults ----------------------------------

TEST(AvailabilityFaults, AbandonedPickupsReturnToThePool) {
  const auto instance = MakeRandomInstance(57, 30, 6, 140);
  GroundTruthOracle truth(instance.entity_of);
  FaultPlan plan;
  plan.seed = 8;
  plan.abandonment_rate = 0.3;
  const FaultInjector injector(plan);
  RetryPolicy retry;
  retry.max_attempts = 3;

  Rng fault_free_rng(11);
  const auto fault_free =
      SimulateAvailability(instance.pairs,
                           IdentityOrder(instance.pairs.size()), truth,
                           PublicationPolicy::kRoundParallel,
                           CompletionOrder::kRandom, fault_free_rng)
          .value();
  Rng faulted_rng(11);
  const auto faulted =
      SimulateAvailability(instance.pairs,
                           IdentityOrder(instance.pairs.size()), truth,
                           PublicationPolicy::kRoundParallel,
                           CompletionOrder::kRandom, faulted_rng, &injector,
                           &retry)
          .value();
  // Abandonments add visible events but never lose work: the faulted run
  // crowdsources the same total and drains to zero availability.
  EXPECT_GT(faulted.back().num_abandoned, 0);
  EXPECT_GT(faulted.size(), fault_free.size());
  EXPECT_EQ(faulted.back().num_crowdsourced,
            fault_free.back().num_crowdsourced);
  EXPECT_EQ(faulted.back().num_available, 0);

  // And the faulted series is itself seed-deterministic.
  Rng repeat_rng(11);
  const auto repeat =
      SimulateAvailability(instance.pairs,
                           IdentityOrder(instance.pairs.size()), truth,
                           PublicationPolicy::kRoundParallel,
                           CompletionOrder::kRandom, repeat_rng, &injector,
                           &retry)
          .value();
  ASSERT_EQ(repeat.size(), faulted.size());
  for (size_t i = 0; i < repeat.size(); ++i) {
    EXPECT_EQ(repeat[i].num_crowdsourced, faulted[i].num_crowdsourced);
    EXPECT_EQ(repeat[i].num_available, faulted[i].num_available);
    EXPECT_EQ(repeat[i].num_abandoned, faulted[i].num_abandoned);
  }
}

TEST(AvailabilityFaults, DisabledInjectorMatchesNullInjector) {
  const auto instance = MakeRandomInstance(58, 20, 4, 70);
  GroundTruthOracle truth(instance.entity_of);
  const FaultInjector disabled{FaultPlan{}};
  Rng null_rng(12);
  const auto without =
      SimulateAvailability(instance.pairs,
                           IdentityOrder(instance.pairs.size()), truth,
                           PublicationPolicy::kInstantDecision,
                           CompletionOrder::kRandom, null_rng)
          .value();
  Rng disabled_rng(12);
  const auto with =
      SimulateAvailability(instance.pairs,
                           IdentityOrder(instance.pairs.size()), truth,
                           PublicationPolicy::kInstantDecision,
                           CompletionOrder::kRandom, disabled_rng, &disabled)
          .value();
  ASSERT_EQ(with.size(), without.size());
  for (size_t i = 0; i < with.size(); ++i) {
    EXPECT_EQ(with[i].num_crowdsourced, without[i].num_crowdsourced);
    EXPECT_EQ(with[i].num_available, without[i].num_available);
    EXPECT_EQ(with[i].num_abandoned, 0);
  }
}

}  // namespace
}  // namespace crowdjoin
