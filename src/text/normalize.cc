#include "text/normalize.h"

#include <cctype>

namespace crowdjoin {

bool IsTokenChar(char c) {
  const unsigned char uc = static_cast<unsigned char>(c);
  return std::isalnum(uc) != 0;
}

std::string NormalizeText(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  bool pending_space = false;
  for (char c : input) {
    if (IsTokenChar(c)) {
      if (pending_space && !out.empty()) out.push_back(' ');
      pending_space = false;
      out.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else {
      pending_space = true;
    }
  }
  return out;
}

}  // namespace crowdjoin
