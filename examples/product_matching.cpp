// Cross-retailer product matching, the paper's second motivating workload:
// two catalogs with different formatting conventions are joined with the
// hybrid pipeline, including a noisy simulated crowd with majority voting.
//
//   $ ./product_matching [--seed=N]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/labeling_order.h"
#include "crowd/orchestrator.h"
#include "datagen/product_dataset.h"
#include "eval/metrics.h"
#include "simjoin/candidate_generator.h"

using namespace crowdjoin;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  uint64_t seed = 43;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    }
  }

  // 1. Two retailer catalogs with near-1-to-1 overlap.
  ProductDatasetConfig config;
  config.seed = seed;
  const Dataset dataset = GenerateProductDataset(config).value();
  std::printf("catalog A: %lld listings, catalog B: %lld listings, "
              "%lld true cross-catalog matches\n",
              static_cast<long long>(dataset.SideCount(0)),
              static_cast<long long>(dataset.SideCount(1)),
              static_cast<long long>(NumTrueMatchingPairs(dataset)));
  std::printf("sample A listing: \"%s\" ($%s)\n",
              dataset.records[0].fields[0].c_str(),
              dataset.records[0].fields[1].c_str());

  // 2. Machine step: TF-IDF-weighted name similarity + price proximity.
  RecordScorer scorer = MakeProductScorer();
  scorer.FitTfIdf(dataset.records);
  CandidateGeneratorOptions options;
  options.token_join_threshold = 0.08;
  options.min_likelihood = 0.30;
  const CandidateSet candidates =
      GenerateCandidates(dataset.records, &dataset.side_of, scorer, options)
          .value();
  std::printf("machine step kept %zu cross-catalog candidate pairs\n",
              candidates.size());

  // 3. Crowd campaign on the simulated platform: imperfect workers,
  //    3-way majority voting, 20-pair HITs, instant-decision publishing.
  GroundTruthOracle truth = MakeGroundTruthOracle(dataset);
  const auto order = MakeLabelingOrder(candidates, OrderKind::kExpected,
                                       &truth, /*rng=*/nullptr)
                         .value();
  CrowdConfig crowd;
  crowd.seed = seed;
  crowd.false_negative_rate = 0.15;
  crowd.false_positive_rate = 0.05;
  crowd.worker_rate_stddev = 0.05;
  crowd.use_qualification_test = true;

  const AmtRunStats transitive =
      RunTransitiveAmt(candidates, order, crowd, truth).value();
  const AmtRunStats baseline =
      RunNonTransitiveAmt(candidates, crowd, truth).value();

  const QualityMetrics q_transitive =
      ComputeQuality(candidates, transitive.final_labels, truth);
  const QualityMetrics q_baseline =
      ComputeQuality(candidates, baseline.final_labels, truth);

  std::printf("\n%-16s %8s %10s %10s %10s %10s\n", "", "HITs", "hours",
              "cost", "precision", "F-measure");
  std::printf("%-16s %8lld %9.1fh $%9.2f %9.2f%% %9.2f%%\n",
              "Non-Transitive", static_cast<long long>(baseline.num_hits),
              baseline.total_hours, baseline.total_cost_cents / 100.0,
              100.0 * q_baseline.precision, 100.0 * q_baseline.f_measure);
  std::printf("%-16s %8lld %9.1fh $%9.2f %9.2f%% %9.2f%%\n", "Transitive",
              static_cast<long long>(transitive.num_hits),
              transitive.total_hours, transitive.total_cost_cents / 100.0,
              100.0 * q_transitive.precision,
              100.0 * q_transitive.f_measure);
  std::printf("\ntransitive relations deduced %lld of %zu pairs for free\n",
              static_cast<long long>(transitive.num_deduced_pairs),
              candidates.size());
  return 0;
}
