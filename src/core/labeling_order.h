#ifndef CROWDJOIN_CORE_LABELING_ORDER_H_
#define CROWDJOIN_CORE_LABELING_ORDER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/candidate.h"
#include "core/oracle.h"

namespace crowdjoin {

/// \brief The labeling orders studied in Section 4 and compared in Fig. 12.
enum class OrderKind : uint8_t {
  /// All matching pairs before all non-matching pairs (Theorem 1). Needs
  /// ground truth, so it is an unachievable yardstick, not a real strategy.
  kOptimal = 0,
  /// Decreasing machine likelihood — the paper's heuristic for the
  /// (NP-hard) expected-optimal order problem (Section 4.2).
  kExpected = 1,
  /// Uniformly random permutation.
  kRandom = 2,
  /// All non-matching pairs before all matching pairs (adversarial bound).
  kWorst = 3,
};

/// Stable display name ("Optimal Order", ...) as used in Figure 12.
std::string_view OrderKindToString(OrderKind kind);

/// \brief Builds a labeling order: a permutation of positions into `pairs`.
///
/// `truth` is required for kOptimal / kWorst (they partition by the real
/// label); `rng` is required for kRandom. Ties inside a group are broken by
/// decreasing likelihood, then by position, so orders are deterministic.
///
/// Returns InvalidArgument when a required input is missing.
Result<std::vector<int32_t>> MakeLabelingOrder(const CandidateSet& pairs,
                                               OrderKind kind,
                                               const GroundTruthOracle* truth,
                                               Rng* rng);

}  // namespace crowdjoin

#endif  // CROWDJOIN_CORE_LABELING_ORDER_H_
