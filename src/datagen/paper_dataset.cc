#include "datagen/paper_dataset.h"

#include <string>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "datagen/wordlists.h"

namespace crowdjoin {

namespace {

// Schema field indexes for the Paper dataset.
constexpr int kAuthor = 0;
constexpr int kTitle = 1;
constexpr int kVenue = 2;
constexpr int kDate = 3;
constexpr int kPages = 4;

// A pronounceable rare token (consonant-vowel alternation) used to give
// each publication title a discriminative word, the way real titles carry
// system names and coined terms.
std::string RareToken(Rng& rng) {
  static constexpr char kConsonants[] = "bcdfghjklmnpqrstvwz";
  static constexpr char kVowels[] = "aeiou";
  const size_t length = 5 + rng.Index(4);
  std::string token;
  token.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    if (i % 2 == 0) {
      token += kConsonants[rng.Index(sizeof(kConsonants) - 1)];
    } else {
      token += kVowels[rng.Index(sizeof(kVowels) - 1)];
    }
  }
  return token;
}

struct PaperEntity {
  std::vector<std::string> authors;  // "first last"
  std::string title;
  size_t venue_index = 0;
  int year = 0;
  int first_page = 0;
  int last_page = 0;
};

PaperEntity MakeEntity(Rng& rng, const ZipfSampler& title_sampler) {
  const auto& first_names = wordlists::FirstNames();
  const auto& last_names = wordlists::LastNames();
  const auto& title_words = wordlists::TitleWords();

  PaperEntity entity;
  const size_t num_authors = 1 + rng.Index(3);
  for (size_t i = 0; i < num_authors; ++i) {
    std::string name(first_names[rng.Index(first_names.size())]);
    name += ' ';
    name += last_names[rng.Index(last_names.size())];
    entity.authors.push_back(std::move(name));
  }
  const size_t title_length = 5 + rng.Index(5);
  std::vector<std::string> words;
  for (size_t i = 0; i < title_length; ++i) {
    // Zipf-weighted draw: common words recur across entities, which gives
    // non-matching pairs graded, non-zero similarity.
    const size_t w = static_cast<size_t>(title_sampler.Sample(rng)) - 1;
    words.emplace_back(title_words[w]);
  }
  if (rng.Bernoulli(0.8)) {
    words.insert(words.begin() + static_cast<std::ptrdiff_t>(
                                     rng.Index(words.size() + 1)),
                 RareToken(rng));
  }
  entity.title = Join(words, " ");
  entity.venue_index = rng.Index(wordlists::Venues().size());
  entity.year = 1988 + static_cast<int>(rng.Index(17));
  entity.first_page = 1 + static_cast<int>(rng.Index(500));
  entity.last_page = entity.first_page + 8 + static_cast<int>(rng.Index(20));
  return entity;
}

Record MakeRecord(const PaperEntity& entity, ObjectId id, bool canonical,
                  const PaperDatasetConfig& config, Corruptor& corruptor,
                  Rng& rng) {
  Record record;
  record.id = id;
  record.fields.resize(5);

  // Author field.
  std::vector<std::string> authors = entity.authors;
  if (!canonical) {
    if (authors.size() > 1 && rng.Bernoulli(config.author_drop_prob)) {
      authors.erase(authors.begin() +
                    static_cast<std::ptrdiff_t>(rng.Index(authors.size())));
    }
    for (auto& author : authors) {
      if (rng.Bernoulli(config.author_initial_prob)) {
        author = corruptor.InitialForm(author);
      }
    }
  }
  record.fields[kAuthor] = Join(authors, " and ");

  // Title field.
  record.fields[kTitle] =
      canonical ? entity.title : corruptor.CorruptText(entity.title);

  // Venue field: full name or abbreviation.
  const auto& venue = wordlists::Venues()[entity.venue_index];
  const bool abbreviate = !canonical && rng.Bernoulli(config.venue_abbrev_prob);
  record.fields[kVenue] =
      std::string(abbreviate ? venue.second : venue.first);
  if (!canonical && rng.Bernoulli(0.15)) {
    record.fields[kVenue] = corruptor.CorruptText(record.fields[kVenue]);
  }

  // Date field.
  if (canonical || !rng.Bernoulli(config.year_missing_prob)) {
    int year = entity.year;
    if (!canonical && rng.Bernoulli(config.year_off_by_one_prob)) {
      year += rng.Bernoulli(0.5) ? 1 : -1;
    }
    record.fields[kDate] = StrFormat("%d", year);
  }

  // Pages field.
  if (canonical || !rng.Bernoulli(config.pages_missing_prob)) {
    if (!canonical && rng.Bernoulli(0.3)) {
      record.fields[kPages] =
          StrFormat("pages %d %d", entity.first_page, entity.last_page);
    } else {
      record.fields[kPages] =
          StrFormat("%d-%d", entity.first_page, entity.last_page);
    }
  }
  return record;
}

}  // namespace

Result<Dataset> GeneratePaperDataset(const PaperDatasetConfig& config) {
  Rng rng(config.seed);
  CJ_ASSIGN_OR_RETURN(const std::vector<int32_t> cluster_sizes,
                      SamplePowerLawClusterSizes(config.clusters, rng));

  Dataset dataset;
  dataset.name = "paper";
  dataset.schema.field_names = {"author", "title", "venue", "date", "pages"};
  Corruptor corruptor(config.corruption, &rng);
  const ZipfSampler title_sampler(wordlists::TitleWords().size(), 1.05);

  ObjectId next_id = 0;
  for (size_t entity_id = 0; entity_id < cluster_sizes.size(); ++entity_id) {
    const PaperEntity entity = MakeEntity(rng, title_sampler);
    const int32_t size = cluster_sizes[entity_id];
    for (int32_t r = 0; r < size; ++r) {
      dataset.records.push_back(MakeRecord(entity, next_id, /*canonical=*/r == 0,
                                           config, corruptor, rng));
      dataset.entity_of.push_back(static_cast<int32_t>(entity_id));
      ++next_id;
    }
  }
  return dataset;
}

RecordScorer MakePaperScorer() {
  return RecordScorer({
      {kAuthor, FieldMeasure::kJaccardWords, 0.25},
      {kTitle, FieldMeasure::kJaccardWords, 0.40},
      {kTitle, FieldMeasure::kQGramJaccard, 0.10, /*q=*/3},
      {kVenue, FieldMeasure::kJaccardWords, 0.10},
      {kDate, FieldMeasure::kNumeric, 0.05},
      {kPages, FieldMeasure::kLevenshtein, 0.10},
  });
}

}  // namespace crowdjoin
