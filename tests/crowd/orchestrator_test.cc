#include "crowd/orchestrator.h"

#include <gtest/gtest.h>

#include <numeric>

#include "eval/metrics.h"
#include "tests/core/test_fixtures.h"

namespace crowdjoin {
namespace {

using testing_fixtures::Figure3Pairs;
using testing_fixtures::Figure3Truth;
using testing_fixtures::MakeRandomInstance;

std::vector<int32_t> IdentityOrder(size_t n) {
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

CrowdConfig SmallConfig() {
  CrowdConfig config;
  config.pairs_per_hit = 4;
  config.assignments_per_hit = 3;
  config.num_workers = 6;
  return config;
}

TEST(Orchestrator, NonTransitiveLabelsEverythingCorrectly) {
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle truth = Figure3Truth();
  const AmtRunStats stats =
      RunNonTransitiveAmt(pairs, SmallConfig(), truth).value();
  EXPECT_EQ(stats.num_hits, 2);  // 8 pairs / 4 per HIT
  EXPECT_EQ(stats.num_assignments, 6);
  EXPECT_EQ(stats.num_crowdsourced_pairs, 8);
  EXPECT_EQ(stats.num_deduced_pairs, 0);
  const QualityMetrics quality =
      ComputeQuality(pairs, stats.final_labels, truth);
  EXPECT_DOUBLE_EQ(quality.f_measure, 1.0);
}

TEST(Orchestrator, TransitiveCrowdsourcesFewerPairs) {
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle truth = Figure3Truth();
  const AmtRunStats stats =
      RunTransitiveAmt(pairs, IdentityOrder(pairs.size()), SmallConfig(),
                       truth)
          .value();
  EXPECT_EQ(stats.num_crowdsourced_pairs, 6);
  EXPECT_EQ(stats.num_deduced_pairs, 2);
  const QualityMetrics quality =
      ComputeQuality(pairs, stats.final_labels, truth);
  EXPECT_DOUBLE_EQ(quality.f_measure, 1.0);
  // On this tiny input the iterative campaign can use *more* HITs than the
  // one-shot baseline despite crowdsourcing fewer pairs (partial-HIT
  // flushes; the paper's Product dataset shows the same effect), so only
  // the crowdsourced-pair saving is asserted here.
  EXPECT_LT(stats.num_crowdsourced_pairs,
            RunNonTransitiveAmt(pairs, SmallConfig(), truth)
                .value()
                .num_crowdsourced_pairs);
}

TEST(Orchestrator, ParallelRoundsMatchTheRoundBasedLabeler) {
  // The Parallel strategy publishes Algorithm 2's batches to the platform,
  // so on Figure 3 it must crowdsource the same 6 pairs in 2 rounds and
  // deduce the other 2 — and the majority votes keep the labels correct.
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle truth = Figure3Truth();
  const AmtRunStats stats =
      RunParallelAmt(pairs, IdentityOrder(pairs.size()), SmallConfig(),
                     truth)
          .value();
  EXPECT_EQ(stats.num_crowdsourced_pairs, 6);
  EXPECT_EQ(stats.num_deduced_pairs, 2);
  EXPECT_GT(stats.num_hits, 0);
  const QualityMetrics quality =
      ComputeQuality(pairs, stats.final_labels, truth);
  EXPECT_DOUBLE_EQ(quality.f_measure, 1.0);
}

TEST(Orchestrator, ParallelIsFasterThanNonParallelWallClock) {
  const auto instance = MakeRandomInstance(24, 25, 5, 90);
  GroundTruthOracle truth(instance.entity_of);
  const auto order = IdentityOrder(instance.pairs.size());
  const CrowdConfig config = SmallConfig();
  const AmtRunStats parallel =
      RunParallelAmt(instance.pairs, order, config, truth).value();
  const AmtRunStats serial =
      RunNonParallelAmt(instance.pairs, order, config, truth).value();
  EXPECT_GT(serial.total_hours, parallel.total_hours);
  const QualityMetrics quality =
      ComputeQuality(instance.pairs, parallel.final_labels, truth);
  EXPECT_DOUBLE_EQ(quality.f_measure, 1.0);
}

TEST(Orchestrator, LocalParallelLabelingUsesConfigThreads) {
  // The latency-free campaign honors CrowdConfig::num_threads and, by the
  // labeler's contract, yields an identical result at every value — with
  // and without config-driven noise.
  const auto instance = MakeRandomInstance(25, 30, 6, 100);
  GroundTruthOracle truth(instance.entity_of);
  const auto order = IdentityOrder(instance.pairs.size());
  for (double error_rate : {0.0, 0.2}) {
    CrowdConfig config = SmallConfig();
    config.false_negative_rate = error_rate;
    config.false_positive_rate = error_rate;
    config.num_threads = 1;
    const LabelingReport baseline =
        RunLocalParallelLabeling(instance.pairs, order, config, truth)
            .value();
    for (int threads : {2, 8}) {
      config.num_threads = threads;
      const LabelingReport threaded =
          RunLocalParallelLabeling(instance.pairs, order, config, truth)
              .value();
      EXPECT_TRUE(threaded == baseline)
          << "error_rate=" << error_rate << " num_threads=" << threads;
    }
    if (error_rate == 0.0) {
      EXPECT_DOUBLE_EQ(
          ComputeQuality(instance.pairs, ExtractFinalLabels(baseline), truth)
              .f_measure,
          1.0);
    }
  }
}

TEST(Orchestrator, NonParallelSameHitsSlowerClock) {
  const auto instance = MakeRandomInstance(21, 25, 5, 90);
  GroundTruthOracle truth(instance.entity_of);
  const auto order = IdentityOrder(instance.pairs.size());
  const AmtRunStats parallel =
      RunTransitiveAmt(instance.pairs, order, SmallConfig(), truth).value();
  const AmtRunStats serial =
      RunNonParallelAmt(instance.pairs, order, SmallConfig(), truth).value();
  // Same pairs -> comparable HIT counts; serial publication must take
  // longer on the wall clock.
  EXPECT_NEAR(static_cast<double>(serial.num_hits),
              static_cast<double>(parallel.num_hits),
              0.15 * static_cast<double>(parallel.num_hits) + 2.0);
  EXPECT_GT(serial.total_hours, parallel.total_hours);
}

TEST(Orchestrator, NonParallelProducesCorrectLabels) {
  const auto instance = MakeRandomInstance(22, 20, 4, 70);
  GroundTruthOracle truth(instance.entity_of);
  const AmtRunStats stats =
      RunNonParallelAmt(instance.pairs,
                        IdentityOrder(instance.pairs.size()), SmallConfig(),
                        truth)
          .value();
  const QualityMetrics quality =
      ComputeQuality(instance.pairs, stats.final_labels, truth);
  EXPECT_DOUBLE_EQ(quality.f_measure, 1.0);
}

TEST(Orchestrator, NoisyWorkersDegradeTransitiveQuality) {
  const auto instance = MakeRandomInstance(23, 40, 6, 220);
  GroundTruthOracle truth(instance.entity_of);
  CrowdConfig noisy = SmallConfig();
  noisy.false_negative_rate = 0.35;
  noisy.false_positive_rate = 0.35;
  noisy.seed = 5;
  const AmtRunStats stats =
      RunTransitiveAmt(instance.pairs, IdentityOrder(instance.pairs.size()),
                       noisy, truth)
          .value();
  const QualityMetrics quality =
      ComputeQuality(instance.pairs, stats.final_labels, truth);
  EXPECT_LT(quality.f_measure, 1.0);
  EXPECT_GT(quality.f_measure, 0.0);
}

TEST(Orchestrator, EmptyCandidateSets) {
  GroundTruthOracle truth({});
  const AmtRunStats non_transitive =
      RunNonTransitiveAmt({}, SmallConfig(), truth).value();
  EXPECT_EQ(non_transitive.num_hits, 0);
  const AmtRunStats transitive =
      RunTransitiveAmt({}, {}, SmallConfig(), truth).value();
  EXPECT_EQ(transitive.num_hits, 0);
  EXPECT_EQ(transitive.num_crowdsourced_pairs, 0);
  const AmtRunStats parallel =
      RunParallelAmt({}, {}, SmallConfig(), truth).value();
  EXPECT_EQ(parallel.num_hits, 0);
  EXPECT_EQ(parallel.num_crowdsourced_pairs, 0);
}

}  // namespace
}  // namespace crowdjoin
