#ifndef CROWDJOIN_CORE_CANDIDATE_H_
#define CROWDJOIN_CORE_CANDIDATE_H_

#include <cstdint>
#include <vector>

#include "graph/label.h"

namespace crowdjoin {

/// \brief A machine-generated candidate matching pair (Section 2.3).
///
/// `likelihood` is the machine-estimated probability that the two objects
/// match (e.g. a similarity score from the simjoin module); the sorting
/// component uses it to build the heuristic labeling order, and the
/// expected-cost calculator treats it as P(matching).
struct CandidatePair {
  ObjectId a = 0;
  ObjectId b = 0;
  double likelihood = 0.0;

  friend bool operator==(const CandidatePair& x, const CandidatePair& y) {
    return x.a == y.a && x.b == y.b && x.likelihood == y.likelihood;
  }
};

/// A candidate set; positions in this vector identify pairs everywhere in
/// the labeling framework (orders are permutations of these positions).
using CandidateSet = std::vector<CandidatePair>;

/// Returns 1 + the largest object id referenced by `pairs` (0 when empty);
/// the ClusterGraph must be created over at least this many objects.
inline int32_t NumObjectsSpanned(const CandidateSet& pairs) {
  int32_t max_id = -1;
  for (const auto& p : pairs) {
    if (p.a > max_id) max_id = p.a;
    if (p.b > max_id) max_id = p.b;
  }
  return max_id + 1;
}

}  // namespace crowdjoin

#endif  // CROWDJOIN_CORE_CANDIDATE_H_
