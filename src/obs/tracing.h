#ifndef CROWDJOIN_OBS_TRACING_H_
#define CROWDJOIN_OBS_TRACING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"  // for NowNs()

/// \file
/// Lightweight tracing: RAII `Span` scopes record complete ("ph":"X")
/// events into per-thread ring buffers owned by a `TraceRecorder`, exported
/// as Chrome `trace_event` JSON that loads directly in Perfetto
/// (ui.perfetto.dev) or chrome://tracing.
///
/// Recording is off by default — a Span against a disabled recorder costs
/// one relaxed load + branch and reads no clock. Rings are bounded, so a
/// long campaign keeps the most recent `ring_capacity` events per thread
/// and drops the oldest (wraparound, not growth).

namespace crowdjoin::obs {

/// One completed span. `name`/`category` must be string literals (or
/// otherwise outlive the recorder) — spans store the pointers, not copies.
struct TraceEvent {
  const char* name;
  const char* category;
  int64_t start_ns;  // NowNs() at span entry
  int64_t dur_ns;
  int tid;  // recorder-assigned thread id, stable per (recorder, thread)
};

class TraceRecorder {
 public:
  TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder library spans write to. Disabled by default;
  /// harnesses enable it when asked for a trace export.
  static TraceRecorder& Global();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Per-thread ring size, in events. Applies to rings created after the
  /// call (a thread's ring is created on its first span), not retroactively.
  void SetRingCapacity(size_t events);

  /// Drops every recorded event. Rings and thread ids survive.
  void Clear();

  /// All retained events, oldest-first per thread, then globally ordered by
  /// start time. A consistent view: concurrent spans may be missed.
  std::vector<TraceEvent> Events() const;

  /// Chrome trace_event JSON ({"traceEvents": [...]}; ts/dur in
  /// microseconds). Load in Perfetto or chrome://tracing.
  std::string ToChromeTraceJson() const;

 private:
  friend class Span;

  struct Ring {
    Ring(int tid, size_t capacity) : tid(tid), capacity(capacity) {}
    mutable std::mutex mu;
    const int tid;
    const size_t capacity;
    uint64_t total = 0;  // events ever appended, for wraparound bookkeeping
    std::vector<TraceEvent> events;
  };

  void Append(const char* name, const char* category, int64_t start_ns,
              int64_t dur_ns);
  Ring* ThreadRing();

  const uint64_t recorder_id_;  // process-unique, so thread caches never
                                // confuse a dead recorder's address reuse
  std::atomic<bool> enabled_{false};
  std::atomic<size_t> ring_capacity_{size_t{1} << 16};
  mutable std::mutex rings_mu_;
  int next_tid_ = 1;
  std::vector<std::shared_ptr<Ring>> rings_;
};

/// RAII scope: records [construction, destruction) as one trace event when
/// the recorder is enabled at construction time. Name/category must be
/// string literals (see TraceEvent).
class Span {
 public:
  explicit Span(const char* name, const char* category = "crowdjoin",
                TraceRecorder* recorder = &TraceRecorder::Global())
      : recorder_(recorder != nullptr && recorder->enabled() ? recorder
                                                             : nullptr) {
    if (recorder_ == nullptr) return;
    name_ = name;
    category_ = category;
    start_ns_ = NowNs();
  }

  ~Span() {
    if (recorder_ == nullptr) return;
    recorder_->Append(name_, category_, start_ns_, NowNs() - start_ns_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceRecorder* recorder_;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  int64_t start_ns_ = 0;
};

}  // namespace crowdjoin::obs

#endif  // CROWDJOIN_OBS_TRACING_H_
