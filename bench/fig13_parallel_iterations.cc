// Reproduces Figure 13: pairs crowdsourced per iteration by the parallel
// labeling algorithm vs the non-parallel (one pair per iteration) baseline
// at likelihood threshold 0.3, on both datasets, using the expected order.
// --threads=N fans each round's oracle calls over N pool workers (the
// iteration series is identical for every N, by contract).

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/parallel_comparison.h"

int main(int argc, char** argv) {
  const crowdjoin::bench::Args args(argc, argv);
  const uint64_t seed = args.GetUint64("seed", 42);
  const double threshold = args.GetDouble("threshold", 0.3);
  const int num_threads = static_cast<int>(args.GetUint64("threads", 1));

  std::printf("=== Figure 13: parallel vs non-parallel labeling "
              "(threshold %.1f, %d threads) ===\n", threshold, num_threads);
  crowdjoin::bench::RunParallelComparison(
      crowdjoin::bench::Unwrap(crowdjoin::MakePaperExperimentInput(seed)),
      threshold, num_threads);
  crowdjoin::bench::RunParallelComparison(
      crowdjoin::bench::Unwrap(crowdjoin::MakeProductExperimentInput(seed)),
      threshold, num_threads);
  return 0;
}
