#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/macros.h"
#include "common/result.h"

namespace crowdjoin {
namespace {

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Inconsistent("x").code(), StatusCode::kInconsistent);
  EXPECT_EQ(Status::InvalidArgument("bad").message(), "bad");
}

TEST(Status, ToStringFormatsCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("missing pair").ToString(),
            "NOT_FOUND: missing pair");
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "INTERNAL: boom");
}

TEST(Status, CopyAndMovePreserveState) {
  Status original = Status::OutOfRange("position 9");
  Status copy = original;
  EXPECT_EQ(copy, original);
  Status moved = std::move(original);
  EXPECT_EQ(moved.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(moved.message(), "position 9");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(Result, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> result(Status::NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  const std::string payload = std::move(result).value();
  EXPECT_EQ(payload, "payload");
}

TEST(Result, ValueOrReturnsValueWhenOk) {
  Result<int> result(7);
  EXPECT_EQ(result.value_or(-1), 7);
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int x) {
  CJ_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return 2 * x;
}

Result<int> ChainedAssign(int x) {
  CJ_ASSIGN_OR_RETURN(const int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(Macros, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Propagates(3).ok());
  EXPECT_EQ(Propagates(-3).code(), StatusCode::kInvalidArgument);
}

TEST(Macros, AssignOrReturnUnwrapsOrPropagates) {
  EXPECT_EQ(ChainedAssign(5).value(), 11);
  EXPECT_EQ(ChainedAssign(0).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace crowdjoin
