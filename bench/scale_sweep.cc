// Scale sweep for the streaming scale subsystem: streaming datagen ->
// sharded parallel similarity join -> (optionally) transitive labeling,
// at scale factors 1x (paper scale, ~1k records) through 1000x (~1M
// records), with configurable shard and thread counts.
//
// Reports per-phase wall clock, records/sec through the machine step, and
// peak RSS. Used to record the BASELINES.md scale table:
//
//   for sf in 1 10 100 1000; do
//     for t in 1 2 4 8; do ./scale_sweep --scale=$sf --threads=$t; done
//   done
//
// --campaign=0 skips the labeling phase (pure datagen + join throughput);
// --dataset=product sweeps the bipartite stream instead of the paper one.
//
// Phase timing runs through the obs layer: each phase is an obs::Span plus
// a one-shot scale_sweep.*_us histogram, and the printed table reads the
// histogram back — the phase table, --metrics_json=, and --trace_json=
// exports all come from the same source of truth.

#include <sys/resource.h>

#include <csignal>
#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "common/serialize.h"
#include "common/string_util.h"
#include "crowd/orchestrator.h"
#include "datagen/streaming_generator.h"
#include "obs/metrics.h"
#include "obs/tracing.h"
#include "simjoin/candidate_generator.h"

namespace {

long PeakRssMiB() {
  struct rusage usage;
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss / 1024;  // ru_maxrss is KiB on Linux
}

// Seconds spent in phase histogram `name` so far. Each phase observes
// exactly once, so the sum is that phase's duration.
double PhaseSeconds(const char* name) {
  const crowdjoin::obs::MetricsSnapshot snapshot =
      crowdjoin::obs::MetricsRegistry::Global().Snapshot();
  const crowdjoin::obs::HistogramSample* hist = snapshot.FindHistogram(name);
  return hist == nullptr ? 0.0 : static_cast<double>(hist->sum) * 1e-6;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crowdjoin;
  const bench::Args args(argc, argv);
  const auto scale = static_cast<int32_t>(args.GetUint64("scale", 1));
  const int threads = static_cast<int>(args.GetUint64("threads", 1));
  const int shards = static_cast<int>(args.GetUint64("shards", 16));
  const double threshold = args.GetDouble("threshold", 0.5);
  const bool campaign = args.GetUint64("campaign", 1) != 0;
  const uint64_t seed = args.GetUint64("seed", 42);
  // Optional join-output drift guard: fail (exit 1) unless the machine
  // step produces exactly this many candidates. CI runs the SF 10 smoke
  // with the seed-stable count so optimization PRs can't silently change
  // the join's output.
  const uint64_t expect_candidates =
      args.GetUint64("expect_candidates", 0);
  // > 0 switches the campaign to round-by-round streaming labeling: every
  // N sharded-join probe tasks feed one labeling round and the candidate
  // set is never materialized (LabelingSession::RunStream).
  const auto label_tasks_per_round =
      static_cast<int64_t>(args.GetUint64("label_tasks_per_round", 0));
  const bool product = args.GetString("dataset", "paper") == "product";
  // Similarity measure the machine step joins under: jaccard (default),
  // edit, or cosine.
  const MeasureKind measure =
      bench::Unwrap(SimilarityMeasure::ParseKind(
          args.GetString("measure", "jaccard")));
  // >= 0 overrides the generator's per-word typo probability — the knob
  // that makes near-duplicates diverge at the token level (where the edit
  // measure still matches them) without rewriting the dataset config.
  const double typo = args.GetDouble("typo", -1.0);
  // Observability exports: metrics snapshot (JSON) and Chrome trace
  // (Perfetto-loadable). Tracing is recorded only when a path is given.
  const std::string metrics_json = args.GetString("metrics_json", "");
  const std::string trace_json = args.GetString("trace_json", "");
  // Fault plan + retry policy for the labeling campaign (see FaultPlan /
  // RetryPolicy). All off by default.
  FaultPlan faults;
  faults.seed = args.GetUint64("fault_seed", 0);
  faults.abandonment_rate = args.GetDouble("fault_abandonment", 0.0);
  faults.straggler_rate = args.GetDouble("fault_straggler", 0.0);
  faults.straggler_multiplier =
      args.GetDouble("fault_straggler_mult", 4.0);
  faults.spammer_rate = args.GetDouble("fault_spammer", 0.0);
  faults.hit_expiry_hours = args.GetDouble("fault_hit_expiry", 0.0);
  faults.publish_failure_rate =
      args.GetDouble("fault_publish_failure", 0.0);
  RetryPolicy retry;
  retry.max_attempts =
      static_cast<int>(args.GetUint64("retry_max_attempts", 4));
  retry.reask_margin =
      static_cast<int>(args.GetUint64("retry_reask_margin", 0));
  // Durable campaign (round-by-round mode only): write the round frontier
  // to --checkpoint= every --checkpoint_every= rounds and resume from it
  // when the file exists. --kill_after_rounds=K SIGKILLs the process right
  // after the checkpoint covering round K lands — the kill half of the
  // kill-and-resume harness.
  const std::string checkpoint_path = args.GetString("checkpoint", "");
  const auto checkpoint_every =
      static_cast<int64_t>(args.GetUint64("checkpoint_every", 1));
  const auto kill_after_rounds =
      static_cast<int64_t>(args.GetUint64("kill_after_rounds", 0));
  SetLogLevel(args.GetLogLevel("log_level", crowdjoin::GetLogLevel()));
  args.Done();

  if (!trace_json.empty()) obs::TraceRecorder::Global().SetEnabled(true);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();

  std::printf(
      "=== scale_sweep: dataset=%s scale=%d threads=%d shards=%d "
      "threshold=%.2f measure=%s ===\n",
      product ? "product" : "paper", scale, threads, shards, threshold,
      SimilarityMeasure::Get(measure).name());

  std::unique_ptr<RecordSource> source;
  if (product) {
    ProductDatasetConfig config;
    config.seed = seed;
    if (typo >= 0.0) config.corruption.typo_per_word = typo;
    source = std::make_unique<StreamingProductSource>(config, scale);
  } else {
    PaperDatasetConfig config;
    config.seed = seed;
    if (typo >= 0.0) config.corruption.typo_per_word = typo;
    source = std::make_unique<StreamingPaperSource>(config, scale);
  }
  const int64_t total = source->meta().total_records;

  // Phase 0: raw generator throughput (stream drained, records discarded).
  {
    int64_t count = 0;
    {
      obs::Span span("scale_sweep.datagen", "bench");
      obs::ScopedLatencyUs timer(
          metrics.GetHistogram("scale_sweep.datagen_us"));
      StreamedRecord rec;
      source->Reset();
      while (source->Next(&rec)) ++count;
      bench::CheckOk(source->status());
    }
    const double secs = PhaseSeconds("scale_sweep.datagen_us");
    std::printf("datagen   : %10lld records  %8.2f ms  %10.0f rec/s\n",
                static_cast<long long>(count), secs * 1e3,
                static_cast<double>(count) / secs);
  }

  // Phase 1: machine step — streaming ingest + sharded parallel join.
  CandidateGeneratorOptions options;
  options.measure = measure;
  options.token_join_threshold = threshold;
  options.min_likelihood = threshold;
  ShardedJoinOptions sharding;
  sharding.num_threads = threads;
  sharding.num_shards = shards;

  if (label_tasks_per_round > 0) {
    // Round-by-round campaign: join tasks stream straight into the
    // labeling session; peak candidate memory is one round.
    StreamingCampaignConfig campaign_config;
    campaign_config.candidates = options;
    campaign_config.sharding = sharding;
    campaign_config.crowd.num_threads = threads;
    campaign_config.crowd.faults = faults;
    campaign_config.crowd.retry = retry;
    campaign_config.label_tasks_per_round = label_tasks_per_round;
    if (!checkpoint_path.empty()) {
      campaign_config.checkpoint.path = checkpoint_path;
      campaign_config.checkpoint.every_rounds = checkpoint_every;
      // Everything that shapes the stream or its labels belongs in the
      // fingerprint — resuming under a different workload must fail.
      campaign_config.checkpoint.fingerprint =
          Fingerprint64(StrFormat(
              "scale_sweep|%s|scale=%d|shards=%d|threshold=%.6f|%s|"
              "typo=%.6f|seed=%llu|tasks=%lld|faults=%llu:%f:%f:%f:%f:%f:%f|"
              "retry=%d:%d",
              product ? "product" : "paper", scale, shards, threshold,
              SimilarityMeasure::Get(measure).name(), typo,
              static_cast<unsigned long long>(seed),
              static_cast<long long>(label_tasks_per_round),
              static_cast<unsigned long long>(faults.seed),
              faults.abandonment_rate, faults.straggler_rate,
              faults.straggler_multiplier, faults.spammer_rate,
              faults.hit_expiry_hours, faults.publish_failure_rate,
              retry.max_attempts, retry.reask_margin));
      if (kill_after_rounds > 0) {
        campaign_config.checkpoint.after_write =
            [kill_after_rounds](int64_t completed_rounds) {
              if (completed_rounds >= kill_after_rounds) {
                // Simulate a hard crash mid-campaign: no destructors, no
                // flushing — the next run must come back from the file.
                std::fflush(nullptr);
                std::raise(SIGKILL);
              }
            };
      }
    }
    StreamingCampaignStats stats;
    {
      obs::Span span("scale_sweep.stream_campaign", "bench");
      obs::ScopedLatencyUs timer(
          metrics.GetHistogram("scale_sweep.stream_campaign_us"));
      stats = bench::Unwrap(
          RunStreamingCampaign(*source, /*scorer=*/nullptr, campaign_config));
    }
    const double secs = PhaseSeconds("scale_sweep.stream_campaign_us");
    std::printf("stream-campaign: %6lld records  %8.2f ms  "
                "%lld candidates in %lld rounds "
                "(%lld crowdsourced, %lld deduced, %lld unlabeled)\n",
                static_cast<long long>(stats.num_records), secs * 1e3,
                static_cast<long long>(stats.num_candidates),
                static_cast<long long>(stats.labeling.num_stream_rounds),
                static_cast<long long>(stats.labeling.num_crowdsourced),
                static_cast<long long>(stats.labeling.num_deduced),
                static_cast<long long>(stats.labeling.num_unlabeled));
    bench::ExportObservability(metrics_json, trace_json);
    if (expect_candidates != 0 &&
        stats.num_candidates != static_cast<int64_t>(expect_candidates)) {
      std::fprintf(stderr,
                   "FATAL: campaign produced %lld candidates, expected %llu "
                   "— join output drifted\n",
                   static_cast<long long>(stats.num_candidates),
                   static_cast<unsigned long long>(expect_candidates));
      return 1;
    }
    std::printf("peak RSS  : %ld MiB\n", PeakRssMiB());
    return 0;
  }
  std::vector<int32_t> entity_of;
  CandidateSet candidates;
  {
    obs::Span span("scale_sweep.ingest_join", "bench");
    obs::ScopedLatencyUs timer(
        metrics.GetHistogram("scale_sweep.ingest_join_us"));
    candidates = bench::Unwrap(GenerateCandidatesStreaming(
        *source, /*scorer=*/nullptr, options, sharding, &entity_of));
  }
  {
    const double secs = PhaseSeconds("scale_sweep.ingest_join_us");
    std::printf("ingest+join: %9lld records  %8.2f ms  %10.0f rec/s  "
                "%lld candidates\n",
                static_cast<long long>(total), secs * 1e3,
                static_cast<double>(total) / secs,
                static_cast<long long>(candidates.size()));
  }
  if (expect_candidates != 0 && candidates.size() != expect_candidates) {
    bench::ExportObservability(metrics_json, trace_json);
    std::fprintf(stderr,
                 "FATAL: join produced %llu candidates, expected %llu — "
                 "join output drifted\n",
                 static_cast<unsigned long long>(candidates.size()),
                 static_cast<unsigned long long>(expect_candidates));
    return 1;
  }

  // Phase 2: transitive labeling (the full campaign).
  if (campaign) {
    const GroundTruthOracle truth(entity_of);
    CrowdConfig crowd;
    crowd.num_threads = threads;
    crowd.faults = faults;
    crowd.retry = retry;
    LabelingReport labeling;
    {
      obs::Span span("scale_sweep.labeling", "bench");
      obs::ScopedLatencyUs timer(
          metrics.GetHistogram("scale_sweep.labeling_us"));
      const auto order = bench::Unwrap(MakeLabelingOrder(
          candidates, OrderKind::kExpected, &truth, nullptr));
      labeling = bench::Unwrap(
          RunLocalParallelLabeling(candidates, order, crowd, truth));
    }
    const double secs = PhaseSeconds("scale_sweep.labeling_us");
    std::printf("labeling  : %10lld pairs    %8.2f ms  "
                "(%lld crowdsourced, %lld deduced)\n",
                static_cast<long long>(candidates.size()), secs * 1e3,
                static_cast<long long>(labeling.num_crowdsourced),
                static_cast<long long>(labeling.num_deduced));
  }

  bench::ExportObservability(metrics_json, trace_json);
  std::printf("peak RSS  : %ld MiB\n", PeakRssMiB());
  return 0;
}
