// Wire-format and file round-trip tests for the session checkpoint
// (core/session_checkpoint.h). Every corruption mode must surface as a
// typed error — a torn, truncated, or foreign file must never decode into
// a plausible-but-wrong frontier.

#include "core/session_checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/serialize.h"

namespace crowdjoin {
namespace {

SessionCheckpointState MakeState() {
  SessionCheckpointState state;
  state.fingerprint = 0xFEEDFACECAFEBEEFull;
  state.completed_rounds = 3;
  state.candidates_consumed = 60;
  state.num_objects = 25;
  state.remaining_budget = 17;
  state.num_candidates = 60;
  state.num_crowdsourced = 21;
  state.num_deduced = 39;
  state.num_unlabeled = 0;
  state.num_stream_rounds = 3;
  state.crowdsourced_per_iteration = {9, 7, 5};
  state.outcomes = {
      PairOutcome{Label::kMatching, LabelSource::kCrowdsourced},
      std::nullopt,
      PairOutcome{Label::kNonMatching, LabelSource::kDeduced},
      PairOutcome{Label::kNonMatching, LabelSource::kCrowdsourced},
  };
  state.edge_log = {{0, 1, Label::kMatching}, {1, 2, Label::kNonMatching}};
  state.has_order_rng = true;
  Rng rng(11);
  (void)rng.Normal(0.0, 1.0);  // populate the spare-normal slot
  state.order_rng = rng.SaveState();
  return state;
}

void ExpectStatesEqual(const SessionCheckpointState& actual,
                       const SessionCheckpointState& expected) {
  EXPECT_EQ(actual.fingerprint, expected.fingerprint);
  EXPECT_EQ(actual.completed_rounds, expected.completed_rounds);
  EXPECT_EQ(actual.candidates_consumed, expected.candidates_consumed);
  EXPECT_EQ(actual.num_objects, expected.num_objects);
  EXPECT_EQ(actual.remaining_budget, expected.remaining_budget);
  EXPECT_EQ(actual.num_candidates, expected.num_candidates);
  EXPECT_EQ(actual.num_crowdsourced, expected.num_crowdsourced);
  EXPECT_EQ(actual.num_deduced, expected.num_deduced);
  EXPECT_EQ(actual.num_unlabeled, expected.num_unlabeled);
  EXPECT_EQ(actual.num_stream_rounds, expected.num_stream_rounds);
  EXPECT_EQ(actual.crowdsourced_per_iteration,
            expected.crowdsourced_per_iteration);
  EXPECT_EQ(actual.outcomes, expected.outcomes);
  ASSERT_EQ(actual.edge_log.size(), expected.edge_log.size());
  for (size_t i = 0; i < actual.edge_log.size(); ++i) {
    EXPECT_EQ(actual.edge_log[i].a, expected.edge_log[i].a);
    EXPECT_EQ(actual.edge_log[i].b, expected.edge_log[i].b);
    EXPECT_EQ(actual.edge_log[i].label, expected.edge_log[i].label);
  }
  ASSERT_EQ(actual.has_order_rng, expected.has_order_rng);
  if (expected.has_order_rng) {
    for (size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(actual.order_rng.s[i], expected.order_rng.s[i]);
    }
    EXPECT_EQ(actual.order_rng.spare_normal, expected.order_rng.spare_normal);
    EXPECT_EQ(actual.order_rng.has_spare_normal,
              expected.order_rng.has_spare_normal);
  }
}

// Replaces the trailing checksum with one matching the (possibly mutated)
// payload, so a test can hit the decoder's field checks rather than the
// checksum gate.
std::string Rechecksum(std::string encoded) {
  encoded.resize(encoded.size() - 8);
  const uint64_t checksum = Fingerprint64(encoded);
  for (int i = 0; i < 8; ++i) {
    encoded.push_back(static_cast<char>((checksum >> (8 * i)) & 0xFF));
  }
  return encoded;
}

TEST(SessionCheckpoint, EncodeDecodeRoundTrip) {
  const SessionCheckpointState state = MakeState();
  const std::string encoded = EncodeSessionCheckpoint(state);
  const SessionCheckpointState decoded =
      DecodeSessionCheckpoint(encoded).value();
  ExpectStatesEqual(decoded, state);
}

TEST(SessionCheckpoint, RoundTripWithoutOrderRng) {
  SessionCheckpointState state = MakeState();
  state.has_order_rng = false;
  const SessionCheckpointState decoded =
      DecodeSessionCheckpoint(EncodeSessionCheckpoint(state)).value();
  ExpectStatesEqual(decoded, state);
}

TEST(SessionCheckpoint, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "cjckpt_roundtrip.bin";
  std::remove(path.c_str());
  const SessionCheckpointState state = MakeState();
  ASSERT_TRUE(SaveSessionCheckpoint(path, state).ok());
  const SessionCheckpointState loaded = LoadSessionCheckpoint(path).value();
  ExpectStatesEqual(loaded, state);
  std::remove(path.c_str());
}

TEST(SessionCheckpoint, MissingFileIsNotFound) {
  EXPECT_EQ(LoadSessionCheckpoint(::testing::TempDir() +
                                  "cjckpt_does_not_exist.bin")
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(SessionCheckpoint, FlippedByteFailsTheChecksum) {
  std::string encoded = EncodeSessionCheckpoint(MakeState());
  encoded[encoded.size() / 2] ^= 0x40;
  EXPECT_EQ(DecodeSessionCheckpoint(encoded).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SessionCheckpoint, BadMagicIsRejected) {
  std::string encoded = EncodeSessionCheckpoint(MakeState());
  encoded[0] ^= 0xFF;
  // With a recomputed checksum the decoder reaches the magic check itself.
  EXPECT_EQ(DecodeSessionCheckpoint(Rechecksum(encoded)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionCheckpoint, TruncatedPayloadIsOutOfRange) {
  std::string encoded = EncodeSessionCheckpoint(MakeState());
  // Drop the last payload byte (keeping the checksum valid for what is
  // left), so a bounds-checked field read runs out of buffer.
  encoded.erase(encoded.size() - 9, 1);
  EXPECT_EQ(DecodeSessionCheckpoint(Rechecksum(encoded)).status().code(),
            StatusCode::kOutOfRange);
}

TEST(SessionCheckpoint, TrailingBytesAreRejected) {
  std::string encoded = EncodeSessionCheckpoint(MakeState());
  encoded.insert(encoded.size() - 8, 1, '\0');
  EXPECT_EQ(DecodeSessionCheckpoint(Rechecksum(encoded)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionCheckpoint, TooSmallBufferIsRejected) {
  EXPECT_EQ(DecodeSessionCheckpoint("short").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionCheckpoint, EncodingIsDeterministic) {
  const SessionCheckpointState state = MakeState();
  EXPECT_EQ(EncodeSessionCheckpoint(state), EncodeSessionCheckpoint(state));
}

}  // namespace
}  // namespace crowdjoin
