// Reproduces Table 1: completion time of Parallel(ID) vs Non-Parallel on
// the simulated AMT platform at likelihood threshold 0.3. As in the paper,
// workers always answer correctly here (Table 1 isolates latency), both
// strategies crowdsource exactly the same HITs (20 pairs per HIT, 3
// assignments each), and only the publication strategy differs.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/labeling_order.h"
#include "crowd/orchestrator.h"
#include "eval/workbench.h"

namespace {

using namespace crowdjoin;  // NOLINT(build/namespaces)
using crowdjoin::bench::Unwrap;

void RunDataset(const ExperimentInput& input, double threshold,
                uint64_t seed, TablePrinter& table) {
  GroundTruthOracle truth = MakeGroundTruthOracle(input.dataset);
  const CandidateSet pairs = FilterByThreshold(input.candidates, threshold);
  const std::vector<int32_t> order = Unwrap(MakeLabelingOrder(
      pairs, OrderKind::kExpected, &truth, /*rng=*/nullptr));

  CrowdConfig config;
  config.seed = seed;
  // Correct answers only: Table 1 compares completion time.
  config.false_negative_rate = 0.0;
  config.false_positive_rate = 0.0;

  const AmtRunStats non_parallel =
      Unwrap(RunNonParallelAmt(pairs, order, config, truth));
  const AmtRunStats parallel =
      Unwrap(RunParallelAmt(pairs, order, config, truth));
  const AmtRunStats parallel_id =
      Unwrap(RunTransitiveAmt(pairs, order, config, truth));

  table.AddRow({input.dataset.name,
                std::to_string(parallel_id.num_hits),
                StrFormat("%.0f hours", non_parallel.total_hours),
                StrFormat("%.0f hours", parallel.total_hours),
                StrFormat("%.0f hours", parallel_id.total_hours),
                StrFormat("%.1fx", non_parallel.total_hours /
                                       parallel_id.total_hours)});
}

}  // namespace

int main(int argc, char** argv) {
  const crowdjoin::bench::Args args(argc, argv);
  const uint64_t seed = args.GetUint64("seed", 42);
  const double threshold = args.GetDouble("threshold", 0.3);

  std::printf("=== Table 1: Parallel / Parallel(ID) vs Non-Parallel in "
              "simulated AMT (threshold %.1f) ===\n", threshold);
  TablePrinter table({"Dataset", "# of HITs", "Non-Parallel", "Parallel",
                      "Parallel(ID)", "speedup"});
  RunDataset(Unwrap(MakePaperExperimentInput(seed)), threshold, seed, table);
  RunDataset(Unwrap(MakeProductExperimentInput(seed)), threshold, seed,
             table);
  table.Print(std::cout);
  std::printf("(paper: Paper 68 HITs, 78h -> 8h; Product 144 HITs, "
              "97h -> 14h)\n");
  return 0;
}
