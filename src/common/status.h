#ifndef CROWDJOIN_COMMON_STATUS_H_
#define CROWDJOIN_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace crowdjoin {

/// \brief Canonical error codes used throughout the library.
///
/// Library functions never throw exceptions across API boundaries; fallible
/// operations return `Status` (or `Result<T>`, see result.h) instead, in the
/// style of Arrow / RocksDB.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kInconsistent = 8,  ///< contradictory labels under transitive relations
};

/// \brief Returns a stable human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// \brief A cheap, movable success-or-error value.
///
/// An OK status carries no allocation; error statuses carry a code and a
/// message. `Status` is `[[nodiscard]]`-friendly: callers must consume it
/// (the CJ_RETURN_IF_ERROR macro in macros.h is the usual way).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. A `kOk` code with a
  /// message is normalized to plain OK.
  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_unique<Rep>(Rep{code, std::move(message)});
    }
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns a `kInvalidArgument` error with the given message.
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  /// Returns a `kNotFound` error with the given message.
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  /// Returns a `kAlreadyExists` error with the given message.
  static Status AlreadyExists(std::string message) {
    return Status(StatusCode::kAlreadyExists, std::move(message));
  }
  /// Returns a `kOutOfRange` error with the given message.
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  /// Returns a `kFailedPrecondition` error with the given message.
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  /// Returns a `kUnimplemented` error with the given message.
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  /// Returns a `kInternal` error with the given message.
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  /// Returns a `kInconsistent` error: contradictory transitive labels.
  static Status Inconsistent(std::string message) {
    return Status(StatusCode::kInconsistent, std::move(message));
  }

  /// True iff this status represents success.
  bool ok() const { return rep_ == nullptr; }
  /// The status code (`kOk` when `ok()`).
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// The error message (empty when `ok()`).
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// Renders as "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  void CopyFrom(const Status& other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }

  std::unique_ptr<Rep> rep_;  // nullptr == OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace crowdjoin

#endif  // CROWDJOIN_COMMON_STATUS_H_
