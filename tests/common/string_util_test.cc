#include "common/string_util.h"

#include <gtest/gtest.h>

namespace crowdjoin {
namespace {

TEST(Split, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespace, CollapsesRunsAndTrims) {
  EXPECT_EQ(SplitWhitespace("  foo \t bar\nbaz  "),
            (std::vector<std::string>{"foo", "bar", "baz"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(Join, WithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(Trim, RemovesOuterWhitespaceOnly) {
  EXPECT_EQ(Trim("  inner text \t"), "inner text");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \n "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(ToLower("MiXeD 123 CaSe!"), "mixed 123 case!");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(StartsWith("crowdjoin", "crowd"));
  EXPECT_FALSE(StartsWith("crowd", "crowdjoin"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("crowdjoin", "join"));
  EXPECT_FALSE(EndsWith("join", "crowdjoin"));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(StrFormat, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%d", 12, 34), "12-34");
  EXPECT_EQ(StrFormat("%.2f%%", 99.555), "99.56%");
  EXPECT_EQ(StrFormat("%s", "plain"), "plain");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

}  // namespace
}  // namespace crowdjoin
