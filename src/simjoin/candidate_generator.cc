#include "simjoin/candidate_generator.h"

#include <algorithm>
#include <string>

#include "common/macros.h"
#include "common/rng.h"
#include "simjoin/similarity_join.h"
#include "simjoin/token_dictionary.h"
#include "text/tokenize.h"

namespace crowdjoin {

namespace {

double NoisyLikelihood(double similarity, double stddev, Rng& rng) {
  if (stddev <= 0.0) return similarity;
  return std::clamp(similarity + rng.Normal(0.0, stddev), 0.01, 0.99);
}

std::vector<std::string> RecordTokens(const Record& record) {
  std::string all;
  for (const auto& field : record.fields) {
    all += field;
    all += ' ';
  }
  return WordTokens(all);
}

}  // namespace

Result<CandidateSet> GenerateCandidates(
    const RecordSet& records, const std::vector<uint8_t>* side_of,
    const RecordScorer& scorer, const CandidateGeneratorOptions& options) {
  if (side_of != nullptr && side_of->size() != records.size()) {
    return Status::InvalidArgument("side_of size does not match records");
  }

  TokenDictionary dictionary;
  CandidateSet candidates;
  Rng noise_rng(options.noise_seed);

  if (side_of == nullptr) {
    std::vector<std::vector<int32_t>> docs(records.size());
    for (size_t i = 0; i < records.size(); ++i) {
      docs[i] = dictionary.AddDocument(RecordTokens(records[i]));
    }
    CJ_ASSIGN_OR_RETURN(
        const std::vector<ScoredPair> joined,
        PrefixFilterSelfJoin(docs, dictionary, options.token_join_threshold));
    candidates.reserve(joined.size());
    for (const ScoredPair& pair : joined) {
      const Record& ra = records[static_cast<size_t>(pair.left)];
      const Record& rb = records[static_cast<size_t>(pair.right)];
      CJ_ASSIGN_OR_RETURN(const double similarity, scorer.Score(ra, rb));
      const double likelihood = NoisyLikelihood(
          similarity, options.likelihood_noise_stddev, noise_rng);
      if (likelihood >= options.min_likelihood) {
        candidates.push_back({ra.id, rb.id, likelihood});
      }
    }
    return candidates;
  }

  // Bipartite: split record indexes by side, join, map back.
  std::vector<std::vector<int32_t>> left_docs;
  std::vector<std::vector<int32_t>> right_docs;
  std::vector<size_t> left_index;
  std::vector<size_t> right_index;
  for (size_t i = 0; i < records.size(); ++i) {
    const std::vector<std::string> tokens = RecordTokens(records[i]);
    if ((*side_of)[i] == 0) {
      left_docs.push_back(dictionary.AddDocument(tokens));
      left_index.push_back(i);
    } else {
      right_docs.push_back(dictionary.AddDocument(tokens));
      right_index.push_back(i);
    }
  }
  CJ_ASSIGN_OR_RETURN(
      const std::vector<ScoredPair> joined,
      PrefixFilterBipartiteJoin(left_docs, right_docs, dictionary,
                                options.token_join_threshold));
  candidates.reserve(joined.size());
  for (const ScoredPair& pair : joined) {
    const Record& ra = records[left_index[static_cast<size_t>(pair.left)]];
    const Record& rb = records[right_index[static_cast<size_t>(pair.right)]];
    CJ_ASSIGN_OR_RETURN(const double similarity, scorer.Score(ra, rb));
    const double likelihood = NoisyLikelihood(
        similarity, options.likelihood_noise_stddev, noise_rng);
    if (likelihood >= options.min_likelihood) {
      candidates.push_back({ra.id, rb.id, likelihood});
    }
  }
  return candidates;
}

Result<CandidateSet> GenerateCandidatesStreaming(
    RecordSource& source, const RecordScorer* scorer,
    const CandidateGeneratorOptions& options,
    const ShardedJoinOptions& sharding,
    std::vector<int32_t>* entity_of_out) {
  const bool bipartite = source.meta().bipartite;
  source.Reset();
  if (entity_of_out != nullptr) {
    entity_of_out->clear();
    entity_of_out->reserve(static_cast<size_t>(source.meta().total_records));
  }

  TokenDictionary dictionary;
  dictionary.Reserve(static_cast<size_t>(source.meta().total_records));
  ShardedSelfJoiner self_joiner(sharding.num_shards);
  ShardedBipartiteJoiner bipartite_joiner(sharding.num_shards);

  // Ingest: tokenize each record as it streams by and hand the token doc
  // straight to the joiner. Per join-side position we keep the record id
  // (candidates reference ids) and, only when a scorer needs the text back
  // for the likelihood blend, the record itself.
  RecordSet retained;               // stream order; empty without a scorer
  std::vector<ObjectId> left_ids;   // ids by left/self side-local position
  std::vector<ObjectId> right_ids;  // ids by right side-local position
  std::vector<size_t> left_pos;     // stream position per side-local index,
  std::vector<size_t> right_pos;    // for scoring against `retained`
  StreamedRecord streamed;
  size_t stream_pos = 0;
  while (source.Next(&streamed)) {
    const std::vector<int32_t> doc =
        dictionary.AddDocument(RecordTokens(streamed.record));
    if (!bipartite || streamed.side == 0) {
      if (bipartite) {
        bipartite_joiner.AddLeft(doc);
      } else {
        self_joiner.Add(doc);
      }
      left_ids.push_back(streamed.record.id);
      if (scorer != nullptr) left_pos.push_back(stream_pos);
    } else {
      bipartite_joiner.AddRight(doc);
      right_ids.push_back(streamed.record.id);
      if (scorer != nullptr) right_pos.push_back(stream_pos);
    }
    if (entity_of_out != nullptr) entity_of_out->push_back(streamed.entity);
    if (scorer != nullptr) retained.push_back(std::move(streamed.record));
    ++stream_pos;
  }
  CJ_RETURN_IF_ERROR(source.status());

  // Join across the worker pool.
  std::vector<ScoredPair> joined;
  {
    ThreadPool pool(sharding.num_threads);
    ThreadPool* pool_ptr = pool.num_threads() > 0 ? &pool : nullptr;
    if (!bipartite) {
      CJ_ASSIGN_OR_RETURN(
          joined, self_joiner.Finish(dictionary, options.token_join_threshold,
                                     pool_ptr));
    } else {
      CJ_ASSIGN_OR_RETURN(joined, bipartite_joiner.Finish(
                                      dictionary,
                                      options.token_join_threshold, pool_ptr));
    }
  }

  // Score survivors in the join's deterministic (left, right) order, so the
  // noise stream — and therefore the candidate set — is identical to the
  // batch path's.
  CandidateSet candidates;
  candidates.reserve(joined.size());
  Rng noise_rng(options.noise_seed);
  for (const ScoredPair& pair : joined) {
    const auto left = static_cast<size_t>(pair.left);
    const auto right = static_cast<size_t>(pair.right);
    const ObjectId id_a = left_ids[left];
    const ObjectId id_b = bipartite ? right_ids[right] : left_ids[right];
    double similarity = pair.score;
    if (scorer != nullptr) {
      const Record& ra = retained[left_pos[left]];
      const Record& rb =
          retained[bipartite ? right_pos[right] : left_pos[right]];
      CJ_ASSIGN_OR_RETURN(similarity, scorer->Score(ra, rb));
    }
    const double likelihood = NoisyLikelihood(
        similarity, options.likelihood_noise_stddev, noise_rng);
    if (likelihood >= options.min_likelihood) {
      candidates.push_back({id_a, id_b, likelihood});
    }
  }
  return candidates;
}

}  // namespace crowdjoin
