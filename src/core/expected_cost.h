#ifndef CROWDJOIN_CORE_EXPECTED_COST_H_
#define CROWDJOIN_CORE_EXPECTED_COST_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/candidate.h"
#include "graph/label.h"

namespace crowdjoin {

/// True iff assigning `labels[i]` to `pairs[i]` is transitively consistent:
/// no non-matching pair may connect two objects that matching pairs place in
/// the same cluster.
bool IsConsistentAssignment(const CandidateSet& pairs,
                            const std::vector<Label>& labels);

/// Number of crowdsourced pairs C(ω) when the pairs carry exactly `labels`
/// and are processed in `order` by the sequential labeler (Definition 2).
int64_t CrowdsourcedCountUnderAssignment(const CandidateSet& pairs,
                                         const std::vector<int32_t>& order,
                                         const std::vector<Label>& labels);

/// \brief Exact expected number of crowdsourced pairs E[C(ω)] for `order`
/// (Definition 3 / Example 4).
///
/// Pair `i` is matching with probability `pairs[i].likelihood`,
/// independently, conditioned on transitive consistency (inconsistent label
/// assignments are excluded and the remaining probability renormalized,
/// matching the paper's Example 4 arithmetic).
///
/// Enumerates all 2^n assignments: requires `pairs.size() <= 20`.
Result<double> ExpectedCrowdsourcedCount(const CandidateSet& pairs,
                                         const std::vector<int32_t>& order);

/// An order together with its exact expected crowdsourced-pair count.
struct ScoredOrder {
  std::vector<int32_t> order;
  double expected_cost = 0.0;
};

/// \brief Brute-force expected-optimal labeling order.
///
/// The problem is NP-hard (Vesdapunt et al. [23]); this explores all n!
/// permutations and is meant for evaluating the likelihood heuristic on
/// small instances (`pairs.size() <= 8`).
Result<ScoredOrder> FindExpectedOptimalOrder(const CandidateSet& pairs);

}  // namespace crowdjoin

#endif  // CROWDJOIN_CORE_EXPECTED_COST_H_
