// The session-level retry loop and the batch-safety guard: transiently
// faulted attempts consume backoff but never an oracle call, the ask after
// max_attempts escalates (so campaigns terminate and transient faults are
// fully masked), and a sequential-stream oracle on a multi-threaded
// schedule is refused instead of silently raced.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/labeling_session.h"
#include "obs/metrics.h"
#include "tests/core/test_fixtures.h"

namespace crowdjoin {
namespace {

using testing_fixtures::Figure3Pairs;
using testing_fixtures::Figure3Truth;
using testing_fixtures::MakeRandomInstance;
using testing_fixtures::ThreadSafeCountingOracle;

std::vector<int32_t> IdentityOrder(size_t n) {
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

int64_t GlobalCounterValue(std::string_view name) {
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  const obs::CounterSample* sample = snapshot.FindCounter(name);
  return sample == nullptr ? 0 : sample->value;
}

TEST(SessionRetry, BatchSafetyDefaults) {
  GroundTruthOracle truth = Figure3Truth();
  EXPECT_TRUE(truth.IsBatchSafe());
  HashNoisyOracle hashed(&truth, 0.1, 0.1, /*seed=*/3);
  EXPECT_TRUE(hashed.IsBatchSafe());
  NoisyOracle sequential(&truth, 0.1, 0.1, Rng(3));
  EXPECT_FALSE(sequential.IsBatchSafe());
}

TEST(SessionRetry, MultiThreadedScheduleRefusesSequentialStreamOracle) {
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle truth = Figure3Truth();
  NoisyOracle noisy(&truth, 0.0, 0.0, Rng(3));

  LabelingSessionOptions options;
  options.schedule = SchedulePolicy::kRoundParallel;
  options.num_threads = 4;
  LabelingSession threaded(options);
  EXPECT_EQ(threaded.Run(pairs, IdentityOrder(pairs.size()), noisy)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // The same oracle is fine single-threaded (batch order == call order)...
  options.num_threads = 1;
  LabelingSession single(options);
  EXPECT_TRUE(single.Run(pairs, IdentityOrder(pairs.size()), noisy).ok());

  // ...and a batch-safe oracle is fine at any thread count.
  options.num_threads = 4;
  LabelingSession safe(options);
  EXPECT_TRUE(safe.Run(pairs, IdentityOrder(pairs.size()), truth).ok());
}

TEST(SessionRetry, StreamingScheduleAlsoGuardsBatchSafety) {
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle truth = Figure3Truth();
  NoisyOracle noisy(&truth, 0.0, 0.0, Rng(3));
  LabelingSessionOptions options;
  options.schedule = SchedulePolicy::kRoundParallel;
  options.num_threads = 2;
  LabelingSession session(options);
  MaterializedCandidateStream stream(&pairs);
  EXPECT_EQ(session.RunStream(stream, OrderKind::kExpected, noisy)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionRetry, TransientFaultsAreMaskedAndNeverReachTheOracle) {
  const auto instance = MakeRandomInstance(41, 30, 6, 110);

  LabelingSessionOptions options;
  options.schedule = SchedulePolicy::kRoundParallel;
  ThreadSafeCountingOracle baseline_oracle(instance.entity_of);
  const LabelingReport baseline =
      LabelingSession(options)
          .Run(instance.pairs, IdentityOrder(instance.pairs.size()),
               baseline_oracle)
          .value();

  // Every pair faults on its first two attempts, then succeeds.
  options.attempt_fault = [](ObjectId, ObjectId, int attempt) {
    return attempt <= 2;
  };
  options.retry.max_attempts = 4;
  options.retry.seed = 9;
  const int64_t retried_before =
      GlobalCounterValue("crowd.hits_retried_total");
  ThreadSafeCountingOracle faulted_oracle(instance.entity_of);
  const LabelingReport faulted =
      LabelingSession(options)
          .Run(instance.pairs, IdentityOrder(instance.pairs.size()),
               faulted_oracle)
          .value();

  // Identical labels, identical oracle traffic: faulted attempts cost
  // backoff, not questions.
  EXPECT_TRUE(faulted == baseline);
  EXPECT_EQ(faulted_oracle.total_calls(), baseline_oracle.total_calls());
  EXPECT_EQ(faulted_oracle.max_calls_per_pair(), 1);
  EXPECT_EQ(GlobalCounterValue("crowd.hits_retried_total") - retried_before,
            faulted.num_crowdsourced);
}

TEST(SessionRetry, EscalationAfterMaxAttemptsTerminatesTheCampaign) {
  // A fault model that never relents: every allowed attempt fails, so each
  // crowdsourced pair rides the escalation path — and still labels
  // correctly, because escalation cannot fault.
  const auto instance = MakeRandomInstance(42, 24, 5, 80);
  LabelingSessionOptions options;
  options.schedule = SchedulePolicy::kRoundParallel;
  ThreadSafeCountingOracle baseline_oracle(instance.entity_of);
  const LabelingReport baseline =
      LabelingSession(options)
          .Run(instance.pairs, IdentityOrder(instance.pairs.size()),
               baseline_oracle)
          .value();

  options.attempt_fault = [](ObjectId, ObjectId, int) { return true; };
  options.retry.max_attempts = 3;
  ThreadSafeCountingOracle faulted_oracle(instance.entity_of);
  const LabelingReport faulted =
      LabelingSession(options)
          .Run(instance.pairs, IdentityOrder(instance.pairs.size()),
               faulted_oracle)
          .value();
  EXPECT_TRUE(faulted == baseline);
  EXPECT_EQ(faulted_oracle.total_calls(), baseline_oracle.total_calls());
}

TEST(SessionRetry, ReportIsThreadCountInvariantUnderFaults) {
  // The headline determinism claim at the session layer: the fault coins
  // are pure hashes, so the retried report matches at every thread count.
  const auto instance = MakeRandomInstance(43, 30, 6, 120);
  GroundTruthOracle truth(instance.entity_of);
  const auto order = IdentityOrder(instance.pairs.size());

  LabelingSessionOptions options;
  options.schedule = SchedulePolicy::kRoundParallel;
  options.retry.max_attempts = 4;
  options.retry.seed = 77;
  options.attempt_fault = [](ObjectId a, ObjectId b, int attempt) {
    // An arbitrary deterministic pair/attempt pattern.
    return ((static_cast<uint64_t>(a) * 31 + static_cast<uint64_t>(b) * 7 +
             static_cast<uint64_t>(attempt)) %
            3) == 0;
  };
  options.num_threads = 1;
  HashNoisyOracle oracle(&truth, 0.15, 0.15, /*seed=*/5);
  const LabelingReport baseline =
      LabelingSession(options).Run(instance.pairs, order, oracle).value();
  for (int threads : {2, 4, 8}) {
    options.num_threads = threads;
    HashNoisyOracle threaded_oracle(&truth, 0.15, 0.15, /*seed=*/5);
    const LabelingReport threaded =
        LabelingSession(options)
            .Run(instance.pairs, order, threaded_oracle)
            .value();
    EXPECT_TRUE(threaded == baseline) << "num_threads=" << threads;
  }
}

TEST(SessionRetry, BackoffScheduleIsDeterministicWithJitterBounds) {
  RetryPolicy retry;
  retry.base_backoff_us = 1000;
  retry.backoff_multiplier = 2.0;
  retry.jitter_fraction = 0.25;
  retry.seed = 123;
  EXPECT_EQ(retry.BackoffUs(1, 42), 0);  // the initial ask waits nothing
  for (int attempt = 2; attempt <= 5; ++attempt) {
    const int64_t backoff = retry.BackoffUs(attempt, 42);
    EXPECT_EQ(backoff, retry.BackoffUs(attempt, 42));  // pure function
    const double nominal =
        1000.0 * std::pow(2.0, static_cast<double>(attempt - 2));
    EXPECT_GE(static_cast<double>(backoff), 0.75 * nominal - 1.0);
    EXPECT_LE(static_cast<double>(backoff), 1.25 * nominal + 1.0);
  }
  // Different keys and seeds jitter differently (with overwhelming odds).
  EXPECT_NE(retry.BackoffUs(4, 42), retry.BackoffUs(4, 43));
}

}  // namespace
}  // namespace crowdjoin
