#ifndef CROWDJOIN_DATAGEN_PERTURB_H_
#define CROWDJOIN_DATAGEN_PERTURB_H_

#include <string>
#include <vector>

#include "common/rng.h"

namespace crowdjoin {

/// Per-operation probabilities for text corruption.
struct CorruptionConfig {
  double typo_per_word = 0.08;      ///< chance a word receives one edit op
  double drop_word = 0.06;          ///< chance a word is dropped
  double duplicate_word = 0.01;     ///< chance a word is duplicated
  double swap_adjacent = 0.04;      ///< chance a word swaps with its right neighbor
  double truncate_word = 0.05;      ///< chance a word is cut to a prefix
};

/// \brief Injects realistic dirtiness into generated records, standing in
/// for the OCR noise, formatting drift and human entry errors that make
/// Cora / Abt-Buy require entity resolution in the first place.
///
/// All randomness comes from the provided `Rng`, so corruption is
/// deterministic per seed.
class Corruptor {
 public:
  Corruptor(CorruptionConfig config, Rng* rng)
      : config_(config), rng_(rng) {}

  /// Applies one random character edit (substitute/delete/insert/transpose)
  /// to `word` (unchanged when shorter than 2 characters).
  std::string Typo(const std::string& word);

  /// Applies word-level corruption (typos, drops, duplications, swaps,
  /// truncations) to whitespace-separated text.
  std::string CorruptText(const std::string& text);

  /// Abbreviates "first last" to "f last" (initial form).
  std::string InitialForm(const std::string& full_name);

  /// Multiplies a positive value by a factor in [1-jitter, 1+jitter].
  double JitterNumber(double value, double jitter);

 private:
  CorruptionConfig config_;
  Rng* rng_;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_DATAGEN_PERTURB_H_
