#include "common/string_util.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace crowdjoin {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view input) {
  std::vector<std::string> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    if (i > start) out.emplace_back(input.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (auto& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace crowdjoin
