#ifndef CROWDJOIN_CROWD_PLATFORM_H_
#define CROWDJOIN_CROWD_PLATFORM_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/candidate.h"
#include "core/oracle.h"
#include "crowd/config.h"
#include "graph/label.h"

namespace crowdjoin {

/// One pair inside a HIT, tagged with its candidate-set position.
struct PairTask {
  int32_t position = 0;
  ObjectId a = 0;
  ObjectId b = 0;
  double likelihood = 0.0;
};

/// Majority-voted label of one pair of a completed HIT.
struct CompletedPair {
  int32_t position = 0;
  Label label = Label::kNonMatching;
};

/// Everything known about a HIT once its last assignment finishes.
struct HitResult {
  int64_t hit_id = 0;
  double completed_at_hours = 0.0;
  std::vector<CompletedPair> pairs;
};

/// \brief Discrete-event simulation of a microtask crowdsourcing platform.
///
/// Callers publish HITs (batches of pair tasks); a pool of simulated
/// workers picks up assignments (each HIT is answered by
/// `assignments_per_hit` distinct workers, per AMT semantics), answers each
/// pair with per-worker error rates against the ground truth, and the
/// platform majority-votes the assignments into per-pair labels.
///
/// The simulation is deterministic given the config seed.
class CrowdPlatform {
 public:
  /// `truth` must outlive the platform.
  CrowdPlatform(const CrowdConfig& config, const GroundTruthOracle* truth);

  /// Publishes one HIT; pairs of the HIT are answered together.
  /// Returns the HIT id, or InvalidArgument for an empty task list.
  Result<int64_t> PublishHit(std::vector<PairTask> tasks);

  /// Advances simulated time until the next HIT fully completes and
  /// returns its majority-voted result; nullopt when nothing is in flight.
  std::optional<HitResult> RunUntilNextHitCompletion();

  /// Current simulated wall-clock, in hours.
  double now_hours() const { return now_hours_; }

  /// HITs published so far.
  int64_t num_hits_published() const { return static_cast<int64_t>(hits_.size()); }
  /// HITs fully completed so far.
  int64_t num_hits_completed() const { return num_hits_completed_; }
  /// Assignments completed so far.
  int64_t num_assignments_completed() const { return num_assignments_completed_; }
  /// Money spent so far, in cents (assignments * price).
  double total_cost_cents() const {
    return static_cast<double>(num_assignments_completed_) *
           config_.cents_per_assignment;
  }
  /// Workers that survived the qualification test.
  int num_active_workers() const { return static_cast<int>(workers_.size()); }

 private:
  struct Worker {
    double free_at_hours = 0.0;
    double false_negative_rate = 0.0;
    double false_positive_rate = 0.0;
  };

  struct Hit {
    std::vector<PairTask> tasks;
    double published_at_hours = 0.0;
    int assignments_started = 0;
    int assignments_done = 0;
    std::vector<int> matching_votes;       // per task
    std::unordered_set<int> workers_used;  // AMT: distinct workers per HIT
  };

  struct AssignmentEvent {
    double completes_at_hours = 0.0;
    int worker = 0;
    int64_t hit_id = 0;
    // Min-heap on completion time.
    bool operator>(const AssignmentEvent& other) const {
      return completes_at_hours > other.completes_at_hours;
    }
  };

  void BuildWorkerPool();
  // Starts every assignment that an idle worker can pick up right now.
  void ScheduleAssignments();
  // Applies one finished assignment; returns the hit id if the HIT is done.
  std::optional<int64_t> CompleteAssignment(const AssignmentEvent& event);

  CrowdConfig config_;
  const GroundTruthOracle* truth_;
  Rng rng_;
  std::vector<Worker> workers_;
  std::vector<Hit> hits_;
  std::priority_queue<AssignmentEvent, std::vector<AssignmentEvent>,
                      std::greater<AssignmentEvent>>
      events_;
  double now_hours_ = 0.0;
  size_t first_open_hit_ = 0;  // all earlier HITs have all assignments started
  int64_t num_hits_completed_ = 0;
  int64_t num_assignments_completed_ = 0;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_CROWD_PLATFORM_H_
