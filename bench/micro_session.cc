// Microbenchmark: LabelingSession dispatch overhead versus the direct
// (pre-session) engine loops.
//
// The session replaces five hand-specialized engines with one composable
// one; the price is a virtual-call rule chain and a report struct. This
// bench pins that price: `Session*` variants must stay within ~2% of the
// matching `Direct*` loop (the perf CI job flags >15% regressions, and the
// recorded baselines in BASELINES.md track the fine-grained ratio).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "core/labeling_session.h"
#include "core/oracle.h"
#include "graph/cluster_graph.h"

namespace {

using namespace crowdjoin;  // NOLINT(build/namespaces)

struct Instance {
  CandidateSet pairs;
  std::vector<int32_t> entity_of;
  std::vector<int32_t> order;
};

// Clustered candidate set with likelihoods correlated to the truth — the
// same shape the labeling layer sees from the machine step.
Instance MakeInstance(int64_t num_pairs) {
  const auto num_objects = static_cast<int32_t>(num_pairs / 4 + 8);
  const int32_t num_entities = num_objects / 5 + 2;
  Rng rng(42);
  Instance instance;
  instance.entity_of.resize(static_cast<size_t>(num_objects));
  for (auto& e : instance.entity_of) {
    e = static_cast<int32_t>(rng.Index(static_cast<size_t>(num_entities)));
  }
  while (static_cast<int64_t>(instance.pairs.size()) < num_pairs) {
    const auto a =
        static_cast<ObjectId>(rng.Index(static_cast<size_t>(num_objects)));
    const auto b =
        static_cast<ObjectId>(rng.Index(static_cast<size_t>(num_objects)));
    if (a == b) continue;
    const bool matching = instance.entity_of[static_cast<size_t>(a)] ==
                          instance.entity_of[static_cast<size_t>(b)];
    const double base = matching ? 0.75 : 0.3;
    const double likelihood =
        std::min(0.99, std::max(0.01, base + rng.Normal(0.0, 0.2)));
    instance.pairs.push_back({std::min(a, b), std::max(a, b), likelihood});
  }
  instance.order.resize(instance.pairs.size());
  std::iota(instance.order.begin(), instance.order.end(), 0);
  return instance;
}

// The pre-session SequentialLabeler::Run body, verbatim (including the
// result bookkeeping it always paid for): the baseline the session's
// sequential schedule is measured against.
LabelingResult DirectSequential(const Instance& instance,
                                LabelOracle& oracle) {
  LabelingResult result;
  result.outcomes.resize(instance.pairs.size());
  ClusterGraph graph(NumObjectsSpanned(instance.pairs));
  for (int32_t pos : instance.order) {
    const CandidatePair& pair = instance.pairs[static_cast<size_t>(pos)];
    const Deduction deduction = graph.Deduce(pair.a, pair.b);
    PairOutcome& outcome = result.outcomes[static_cast<size_t>(pos)];
    if (deduction == Deduction::kUndeduced) {
      outcome.label = oracle.GetLabel(pair.a, pair.b);
      outcome.source = LabelSource::kCrowdsourced;
      ++result.num_crowdsourced;
      result.crowdsourced_per_iteration.push_back(1);
      graph.Add(pair.a, pair.b, outcome.label);
    } else {
      outcome.label = DeductionToLabel(deduction);
      outcome.source = LabelSource::kDeduced;
      ++result.num_deduced;
    }
  }
  result.num_conflicts = graph.num_conflicts();
  return result;
}

// The pre-session ParallelLabeler round engine, verbatim (inline oracle
// resolution, single-threaded — the dispatch comparison must not be
// drowned in pool traffic).
LabelingResult DirectRoundParallel(const Instance& instance,
                                   LabelOracle& oracle) {
  const CandidateSet& pairs = instance.pairs;
  LabelingResult result;
  result.outcomes.resize(pairs.size());
  std::vector<std::optional<Label>> labels(pairs.size());
  size_t num_labeled = 0;
  while (num_labeled < pairs.size()) {
    const std::vector<int32_t> batch = ParallelCrowdsourcedPairs(
        pairs, instance.order, labels, nullptr, ConflictPolicy::kKeepFirst);
    for (int32_t pos : batch) {
      const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
      const Label label = oracle.GetLabel(pair.a, pair.b);
      labels[static_cast<size_t>(pos)] = label;
      result.outcomes[static_cast<size_t>(pos)] = {
          label, LabelSource::kCrowdsourced};
      ++result.num_crowdsourced;
      ++num_labeled;
    }
    result.crowdsourced_per_iteration.push_back(
        static_cast<int64_t>(batch.size()));
    ClusterGraph graph(NumObjectsSpanned(pairs));
    for (int32_t pos : instance.order) {
      const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
      auto& label = labels[static_cast<size_t>(pos)];
      if (label.has_value()) {
        graph.Add(pair.a, pair.b, *label);
        continue;
      }
      const Deduction deduction = graph.Deduce(pair.a, pair.b);
      if (deduction != Deduction::kUndeduced) {
        label = DeductionToLabel(deduction);
        result.outcomes[static_cast<size_t>(pos)] = {*label,
                                                     LabelSource::kDeduced};
        ++result.num_deduced;
        ++num_labeled;
      }
    }
    result.num_conflicts = graph.num_conflicts();
  }
  return result;
}

void BM_DirectSequential(benchmark::State& state) {
  const Instance instance = MakeInstance(state.range(0));
  GroundTruthOracle oracle(instance.entity_of);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DirectSequential(instance, oracle));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(instance.pairs.size()));
}
BENCHMARK(BM_DirectSequential)->Arg(256)->Arg(2048)->Arg(8192);

void BM_SessionSequential(benchmark::State& state) {
  const Instance instance = MakeInstance(state.range(0));
  GroundTruthOracle oracle(instance.entity_of);
  LabelingSession session;  // sequential schedule, default transitive rule
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.Run(instance.pairs, instance.order, oracle).value());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(instance.pairs.size()));
}
BENCHMARK(BM_SessionSequential)->Arg(256)->Arg(2048)->Arg(8192);

void BM_DirectRoundParallel(benchmark::State& state) {
  const Instance instance = MakeInstance(state.range(0));
  GroundTruthOracle oracle(instance.entity_of);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DirectRoundParallel(instance, oracle));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(instance.pairs.size()));
}
BENCHMARK(BM_DirectRoundParallel)->Arg(256)->Arg(2048)->Arg(8192);

void BM_SessionRoundParallel(benchmark::State& state) {
  const Instance instance = MakeInstance(state.range(0));
  GroundTruthOracle oracle(instance.entity_of);
  LabelingSessionOptions options;
  options.schedule = SchedulePolicy::kRoundParallel;
  LabelingSession session(options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.Run(instance.pairs, instance.order, oracle).value());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(instance.pairs.size()));
}
BENCHMARK(BM_SessionRoundParallel)->Arg(256)->Arg(2048)->Arg(8192);

// The one-to-one rule chain: dispatch cost of a second rule in the chain.
void BM_SessionOneToOneChain(benchmark::State& state) {
  const Instance instance = MakeInstance(state.range(0));
  GroundTruthOracle oracle(instance.entity_of);
  for (auto _ : state) {
    LabelingSession session;
    session.AddRule(std::make_unique<TransitiveDeductionRule>())
        .AddRule(std::make_unique<OneToOneDeductionRule>());
    benchmark::DoNotOptimize(
        session.Run(instance.pairs, instance.order, oracle).value());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(instance.pairs.size()));
}
BENCHMARK(BM_SessionOneToOneChain)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
