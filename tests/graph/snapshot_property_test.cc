// Property suite for the epoch-snapshot machinery: a snapshot must answer
// exactly like a deep copy of the graph taken at the same moment, and an
// OverlayClusterGraph over a snapshot must behave exactly like that copy
// with further labels applied — across conflict policies, EnsureObjects
// growth interleavings, and merge-heavy random sequences.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "graph/cluster_graph.h"
#include "graph/overlay_graph.h"

namespace crowdjoin {
namespace {

struct Op {
  ObjectId a;
  ObjectId b;
  Label label;
};

// Random labeled pairs over a ground truth with `noise` probability of a
// flipped label — the flips are what exercise the conflict policies.
// `match_bias > 0` redraws non-matching pairs toward matching ones,
// producing merge-heavy sequences.
std::vector<Op> MakeOps(Rng& rng, int32_t num_objects, int32_t num_entities,
                        int32_t num_ops, double noise, int match_bias) {
  std::vector<int32_t> entity(static_cast<size_t>(num_objects));
  for (auto& e : entity) {
    e = static_cast<int32_t>(rng.Index(static_cast<size_t>(num_entities)));
  }
  std::vector<Op> ops;
  ops.reserve(static_cast<size_t>(num_ops));
  while (static_cast<int32_t>(ops.size()) < num_ops) {
    auto a = static_cast<ObjectId>(rng.Index(static_cast<size_t>(num_objects)));
    auto b = static_cast<ObjectId>(rng.Index(static_cast<size_t>(num_objects)));
    for (int retry = 0; retry < match_bias; ++retry) {
      if (a != b && entity[static_cast<size_t>(a)] ==
                        entity[static_cast<size_t>(b)]) {
        break;
      }
      a = static_cast<ObjectId>(rng.Index(static_cast<size_t>(num_objects)));
      b = static_cast<ObjectId>(rng.Index(static_cast<size_t>(num_objects)));
    }
    if (a == b) continue;
    bool matching =
        entity[static_cast<size_t>(a)] == entity[static_cast<size_t>(b)];
    if (rng.UniformDouble() < noise) matching = !matching;
    ops.push_back(Op{a, b, matching ? Label::kMatching : Label::kNonMatching});
  }
  return ops;
}

void ExpectSameState(const ClusterGraphSnapshot& snapshot,
                     const ClusterGraph& reference, uint64_t seed,
                     size_t checkpoint) {
  ASSERT_EQ(snapshot.num_objects(), reference.num_objects())
      << "seed=" << seed << " checkpoint=" << checkpoint;
  EXPECT_EQ(snapshot.num_clusters(), reference.num_clusters());
  EXPECT_EQ(snapshot.num_edges(), reference.num_edges());
  EXPECT_EQ(snapshot.num_merges(), reference.num_merges());
  EXPECT_EQ(snapshot.num_conflicts(), reference.num_conflicts());
  const int32_t n = reference.num_objects();
  for (ObjectId a = 0; a < n; ++a) {
    // Canonical ids must agree exactly (both are min-member ids).
    ASSERT_EQ(snapshot.CanonicalClusterId(a), reference.CanonicalClusterId(a))
        << "seed=" << seed << " checkpoint=" << checkpoint << " a=" << a;
    for (ObjectId b = a + 1; b < n; ++b) {
      ASSERT_EQ(snapshot.Deduce(a, b), reference.Deduce(a, b))
          << "seed=" << seed << " checkpoint=" << checkpoint << " pair=(" << a
          << "," << b << ")";
    }
  }
}

class SnapshotPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, ConflictPolicy>> {};

// Snapshots taken at random points — interleaved with EnsureObjects growth
// — keep answering like deep copies taken at the same points, no matter
// how far the live graph advances afterwards.
TEST_P(SnapshotPropertyTest, SnapshotDeduceMatchesDeepCopy) {
  const auto [seed, policy] = GetParam();
  Rng rng(seed);
  const int32_t final_objects = 36;
  ClusterGraph live(12, policy);

  std::vector<ClusterGraphSnapshot> snapshots;
  std::vector<std::unique_ptr<ClusterGraph>> references;
  for (int growth = 0; growth < 3; ++growth) {
    // Labels over the objects visible so far; each growth phase gets its
    // own op mix, with the last phase merge-heavy.
    const int32_t visible = 12 * (growth + 1);
    const std::vector<Op> ops =
        MakeOps(rng, visible, /*num_entities=*/5, /*num_ops=*/60,
                /*noise=*/0.15, /*match_bias=*/growth == 2 ? 3 : 0);
    for (size_t i = 0; i < ops.size(); ++i) {
      live.Add(ops[i].a, ops[i].b, ops[i].label);
      if (i % 17 == 0) {
        snapshots.push_back(live.Snapshot());
        references.push_back(std::make_unique<ClusterGraph>(live));
      }
    }
    if (visible < final_objects) live.EnsureObjects(visible + 12);
    snapshots.push_back(live.Snapshot());
    references.push_back(std::make_unique<ClusterGraph>(live));
  }

  for (size_t i = 0; i < snapshots.size(); ++i) {
    ExpectSameState(snapshots[i], *references[i], seed, i);
  }
}

// An overlay over a snapshot replays further labels exactly like a deep
// copy of the graph would: identical Add outcomes, identical Deduce on
// every pair, identical conflict count.
TEST_P(SnapshotPropertyTest, OverlayMatchesDeepCopyUnderFurtherLabels) {
  const auto [seed, policy] = GetParam();
  Rng rng(seed ^ 0x5eed);
  const int32_t num_objects = 30;
  ClusterGraph live(num_objects, policy);
  const std::vector<Op> prefix =
      MakeOps(rng, num_objects, /*num_entities=*/6, /*num_ops=*/50,
              /*noise=*/0.15, /*match_bias=*/0);
  for (const Op& op : prefix) live.Add(op.a, op.b, op.label);

  const ClusterGraphSnapshot snapshot = live.Snapshot();
  ClusterGraph reference = live;  // the state the snapshot captured
  OverlayClusterGraph overlay(&snapshot, policy);

  // The live graph keeps moving underneath — the overlay must not notice.
  const std::vector<Op> concurrent =
      MakeOps(rng, num_objects, /*num_entities=*/6, /*num_ops=*/40,
              /*noise=*/0.3, /*match_bias=*/0);
  for (const Op& op : concurrent) live.Add(op.a, op.b, op.label);

  const std::vector<Op> suffix =
      MakeOps(rng, num_objects, /*num_entities=*/4, /*num_ops=*/80,
              /*noise=*/0.2, /*match_bias=*/2);
  for (size_t i = 0; i < suffix.size(); ++i) {
    const Op& op = suffix[i];
    ASSERT_EQ(overlay.Add(op.a, op.b, op.label),
              reference.Add(op.a, op.b, op.label))
        << "seed=" << seed << " op=" << i;
    ASSERT_EQ(overlay.num_conflicts(), reference.num_conflicts())
        << "seed=" << seed << " op=" << i;
  }
  for (ObjectId a = 0; a < num_objects; ++a) {
    for (ObjectId b = a + 1; b < num_objects; ++b) {
      ASSERT_EQ(overlay.Deduce(a, b), reference.Deduce(a, b))
          << "seed=" << seed << " pair=(" << a << "," << b << ")";
    }
  }
}

// Interleaved Deduce/Add on the overlay (the round scans' actual access
// pattern) agrees with the deep copy at every step, not just at the end.
TEST_P(SnapshotPropertyTest, OverlayInterleavedDeduceMatches) {
  const auto [seed, policy] = GetParam();
  Rng rng(seed ^ 0xfeed);
  const int32_t num_objects = 24;
  ClusterGraph live(num_objects, policy);
  const std::vector<Op> prefix =
      MakeOps(rng, num_objects, /*num_entities=*/5, /*num_ops=*/40,
              /*noise=*/0.1, /*match_bias=*/1);
  for (const Op& op : prefix) live.Add(op.a, op.b, op.label);

  const ClusterGraphSnapshot snapshot = live.Snapshot();
  ClusterGraph reference = live;
  OverlayClusterGraph overlay(&snapshot, policy);

  const std::vector<Op> suffix =
      MakeOps(rng, num_objects, /*num_entities=*/5, /*num_ops=*/60,
              /*noise=*/0.25, /*match_bias=*/1);
  for (const Op& op : suffix) {
    ASSERT_EQ(overlay.Deduce(op.a, op.b), reference.Deduce(op.a, op.b))
        << "seed=" << seed << " pair=(" << op.a << "," << op.b << ")";
    if (rng.UniformDouble() < 0.6) {
      ASSERT_EQ(overlay.Add(op.a, op.b, op.label),
                reference.Add(op.a, op.b, op.label))
          << "seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomSeeds, SnapshotPropertyTest,
    ::testing::Combine(::testing::Range<uint64_t>(300, 312),
                       ::testing::Values(ConflictPolicy::kKeepFirst,
                                         ConflictPolicy::kTrustNew)));

}  // namespace
}  // namespace crowdjoin
