#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace crowdjoin {
namespace {

TEST(ComputeQuality, HandComputedCase) {
  // Truth: (0,1) and (2,3) match, (0,2) and (1,3) do not.
  GroundTruthOracle truth({0, 0, 1, 1});
  const CandidateSet pairs = {
      {0, 1, 0.9},  // truly matching
      {2, 3, 0.8},  // truly matching
      {0, 2, 0.4},  // truly non-matching
      {1, 3, 0.3},  // truly non-matching
  };
  // Predictions: tp on (0,1); fn on (2,3); fp on (0,2); tn on (1,3).
  const std::vector<Label> predictions = {
      Label::kMatching, Label::kNonMatching, Label::kMatching,
      Label::kNonMatching};
  const QualityMetrics metrics = ComputeQuality(pairs, predictions, truth);
  EXPECT_EQ(metrics.true_positives, 1);
  EXPECT_EQ(metrics.false_negatives, 1);
  EXPECT_EQ(metrics.false_positives, 1);
  EXPECT_EQ(metrics.true_negatives, 1);
  EXPECT_DOUBLE_EQ(metrics.precision, 0.5);
  EXPECT_DOUBLE_EQ(metrics.recall, 0.5);
  EXPECT_DOUBLE_EQ(metrics.f_measure, 0.5);
}

TEST(ComputeQuality, PerfectPredictions) {
  GroundTruthOracle truth({0, 0, 1});
  const CandidateSet pairs = {{0, 1, 0.9}, {0, 2, 0.2}};
  const std::vector<Label> predictions = {Label::kMatching,
                                          Label::kNonMatching};
  const QualityMetrics metrics = ComputeQuality(pairs, predictions, truth);
  EXPECT_DOUBLE_EQ(metrics.precision, 1.0);
  EXPECT_DOUBLE_EQ(metrics.recall, 1.0);
  EXPECT_DOUBLE_EQ(metrics.f_measure, 1.0);
}

TEST(ComputeQuality, NoPredictedMatchesGivesZeroPrecision) {
  GroundTruthOracle truth({0, 0});
  const CandidateSet pairs = {{0, 1, 0.9}};
  const QualityMetrics metrics =
      ComputeQuality(pairs, {Label::kNonMatching}, truth);
  EXPECT_DOUBLE_EQ(metrics.precision, 0.0);
  EXPECT_DOUBLE_EQ(metrics.recall, 0.0);
  EXPECT_DOUBLE_EQ(metrics.f_measure, 0.0);
}

TEST(ComputeQuality, EmptyInput) {
  GroundTruthOracle truth({});
  const QualityMetrics metrics = ComputeQuality({}, {}, truth);
  EXPECT_EQ(metrics.true_positives, 0);
  EXPECT_DOUBLE_EQ(metrics.f_measure, 0.0);
}

}  // namespace
}  // namespace crowdjoin
