#include "core/sequential_labeler.h"

#include <string>

#include "common/macros.h"
#include "common/string_util.h"

namespace crowdjoin {

Status ValidateOrder(const std::vector<int32_t>& order, size_t n) {
  if (order.size() != n) {
    return Status::InvalidArgument(
        StrFormat("order has %zu entries for %zu pairs", order.size(), n));
  }
  std::vector<bool> seen(n, false);
  for (int32_t pos : order) {
    if (pos < 0 || static_cast<size_t>(pos) >= n) {
      return Status::InvalidArgument(
          StrFormat("order entry %d out of range [0, %zu)", pos, n));
    }
    if (seen[static_cast<size_t>(pos)]) {
      return Status::InvalidArgument(
          StrFormat("order entry %d appears twice", pos));
    }
    seen[static_cast<size_t>(pos)] = true;
  }
  return Status::OK();
}

Result<LabelingResult> SequentialLabeler::Run(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    LabelOracle& oracle) const {
  CJ_RETURN_IF_ERROR(ValidateOrder(order, pairs.size()));

  LabelingResult result;
  result.outcomes.resize(pairs.size());
  ClusterGraph graph(NumObjectsSpanned(pairs), policy_);

  for (int32_t pos : order) {
    const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
    const Deduction deduction = graph.Deduce(pair.a, pair.b);
    PairOutcome& outcome = result.outcomes[static_cast<size_t>(pos)];
    if (deduction == Deduction::kUndeduced) {
      outcome.label = oracle.GetLabel(pair.a, pair.b);
      outcome.source = LabelSource::kCrowdsourced;
      ++result.num_crowdsourced;
      result.crowdsourced_per_iteration.push_back(1);
      // A pair that was undeduced cannot conflict: matching merges two
      // distinct clusters, non-matching adds an edge between them.
      graph.Add(pair.a, pair.b, outcome.label);
    } else {
      outcome.label = DeductionToLabel(deduction);
      outcome.source = LabelSource::kDeduced;
      ++result.num_deduced;
    }
  }
  result.num_conflicts = graph.num_conflicts();
  return result;
}

}  // namespace crowdjoin
