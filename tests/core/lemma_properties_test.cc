// Property tests for the paper's order lemmas (Section 4.1):
//  * Lemma 2: swapping an adjacent (non-matching, matching) pair to
//    (matching, non-matching) never increases the crowdsourced count.
//  * Lemma 3: swapping two adjacent same-label pairs never changes it.
//  * Theorem 1: the matching-first order minimizes the crowdsourced count
//    over sampled orders.

#include <gtest/gtest.h>

#include <numeric>

#include "core/expected_cost.h"
#include "core/labeling_order.h"
#include "tests/core/test_fixtures.h"

namespace crowdjoin {
namespace {

using testing_fixtures::MakeRandomInstance;

struct Instance {
  CandidateSet pairs;
  std::vector<Label> labels;
};

Instance MakeLabeledInstance(uint64_t seed) {
  const auto raw = MakeRandomInstance(seed, /*num_objects=*/14,
                                      /*num_entities=*/4, /*num_pairs=*/24);
  Instance instance;
  instance.pairs = raw.pairs;
  GroundTruthOracle truth(raw.entity_of);
  for (const auto& pair : raw.pairs) {
    instance.labels.push_back(truth.Truth(pair.a, pair.b));
  }
  return instance;
}

class LemmaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LemmaPropertyTest, Lemma2SwapNonMatchingBeforeMatchingNeverHelps) {
  const Instance instance = MakeLabeledInstance(GetParam());
  Rng rng(GetParam() ^ 0x77);
  std::vector<int32_t> order(instance.pairs.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  for (size_t i = 0; i + 1 < order.size(); ++i) {
    const Label first =
        instance.labels[static_cast<size_t>(order[i])];
    const Label second =
        instance.labels[static_cast<size_t>(order[i + 1])];
    if (first != Label::kNonMatching || second != Label::kMatching) continue;
    const int64_t before = CrowdsourcedCountUnderAssignment(
        instance.pairs, order, instance.labels);
    std::vector<int32_t> swapped = order;
    std::swap(swapped[i], swapped[i + 1]);
    const int64_t after = CrowdsourcedCountUnderAssignment(
        instance.pairs, swapped, instance.labels);
    EXPECT_LE(after, before)
        << "seed=" << GetParam() << " swap at " << i;
  }
}

TEST_P(LemmaPropertyTest, Lemma3SameLabelSwapKeepsCount) {
  const Instance instance = MakeLabeledInstance(GetParam() ^ 0x1234);
  Rng rng(GetParam() ^ 0x88);
  std::vector<int32_t> order(instance.pairs.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  for (size_t i = 0; i + 1 < order.size(); ++i) {
    const Label first =
        instance.labels[static_cast<size_t>(order[i])];
    const Label second =
        instance.labels[static_cast<size_t>(order[i + 1])];
    if (first != second) continue;
    const int64_t before = CrowdsourcedCountUnderAssignment(
        instance.pairs, order, instance.labels);
    std::vector<int32_t> swapped = order;
    std::swap(swapped[i], swapped[i + 1]);
    const int64_t after = CrowdsourcedCountUnderAssignment(
        instance.pairs, swapped, instance.labels);
    EXPECT_EQ(after, before)
        << "seed=" << GetParam() << " swap at " << i;
  }
}

TEST_P(LemmaPropertyTest, Theorem1MatchingFirstIsNeverBeaten) {
  const Instance instance = MakeLabeledInstance(GetParam() ^ 0x9999);
  // Matching-first order.
  std::vector<int32_t> optimal;
  std::vector<int32_t> non_matching;
  for (size_t i = 0; i < instance.pairs.size(); ++i) {
    if (instance.labels[i] == Label::kMatching) {
      optimal.push_back(static_cast<int32_t>(i));
    } else {
      non_matching.push_back(static_cast<int32_t>(i));
    }
  }
  optimal.insert(optimal.end(), non_matching.begin(), non_matching.end());
  const int64_t optimal_cost = CrowdsourcedCountUnderAssignment(
      instance.pairs, optimal, instance.labels);

  Rng rng(GetParam() ^ 0xaa);
  std::vector<int32_t> sampled(instance.pairs.size());
  std::iota(sampled.begin(), sampled.end(), 0);
  for (int trial = 0; trial < 50; ++trial) {
    rng.Shuffle(sampled);
    const int64_t sampled_cost = CrowdsourcedCountUnderAssignment(
        instance.pairs, sampled, instance.labels);
    EXPECT_LE(optimal_cost, sampled_cost)
        << "seed=" << GetParam() << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, LemmaPropertyTest,
                         ::testing::Range<uint64_t>(400, 412));

}  // namespace
}  // namespace crowdjoin
