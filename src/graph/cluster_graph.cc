#include "graph/cluster_graph.h"

#include <utility>

#include "common/macros.h"

namespace crowdjoin {

ClusterGraph::ClusterGraph(int32_t num_objects, ConflictPolicy policy)
    : union_find_(num_objects), policy_(policy) {}

void ClusterGraph::Reset(int32_t num_objects) {
  union_find_.Reset(num_objects);
  edges_.clear();
  num_edges_ = 0;
  num_merges_ = 0;
  conflicts_matching_ = 0;
  conflicts_non_matching_ = 0;
}

Deduction ClusterGraph::Deduce(ObjectId a, ObjectId b) {
  const int32_t ra = union_find_.Find(a);
  const int32_t rb = union_find_.Find(b);
  if (ra == rb) return Deduction::kMatching;
  auto it = edges_.find(ra);
  if (it != edges_.end() && it->second.contains(rb)) {
    return Deduction::kNonMatching;
  }
  return Deduction::kUndeduced;
}

std::unordered_set<int32_t>& ClusterGraph::EdgesOf(int32_t root) {
  return edges_[root];
}

int32_t ClusterGraph::MergeClusters(int32_t ra, int32_t rb) {
  // Keep the root with the larger edge set so the smaller set is folded in
  // (small-to-large); ties broken by cluster size via plain Union semantics.
  auto it_a = edges_.find(ra);
  auto it_b = edges_.find(rb);
  const size_t deg_a = it_a == edges_.end() ? 0 : it_a->second.size();
  const size_t deg_b = it_b == edges_.end() ? 0 : it_b->second.size();
  int32_t winner = ra;
  int32_t loser = rb;
  if (deg_b > deg_a ||
      (deg_b == deg_a &&
       union_find_.SetSize(rb) > union_find_.SetSize(ra))) {
    winner = rb;
    loser = ra;
  }
  union_find_.UnionInto(winner, loser);
  ++num_merges_;

  auto it_loser = edges_.find(loser);
  if (it_loser != edges_.end()) {
    std::unordered_set<int32_t> folded = std::move(it_loser->second);
    edges_.erase(it_loser);
    auto& winner_edges = EdgesOf(winner);
    for (int32_t neighbor : folded) {
      auto& back = edges_[neighbor];
      back.erase(loser);
      // The caller guarantees no edge between winner and loser existed, but
      // the same neighbor may be adjacent to both: the two parallel edges
      // collapse into one.
      if (winner_edges.insert(neighbor).second) {
        back.insert(winner);
      } else {
        --num_edges_;  // collapsed a parallel edge
      }
    }
    if (winner_edges.empty()) edges_.erase(winner);
  }
  return winner;
}

AddOutcome ClusterGraph::Add(ObjectId a, ObjectId b, Label label) {
  CJ_CHECK(a != b);
  const int32_t ra = union_find_.Find(a);
  const int32_t rb = union_find_.Find(b);

  if (label == Label::kMatching) {
    if (ra == rb) return AddOutcome::kRedundant;
    auto it = edges_.find(ra);
    const bool edge_exists = it != edges_.end() && it->second.contains(rb);
    if (edge_exists) {
      ++conflicts_matching_;
      if (policy_ == ConflictPolicy::kKeepFirst) return AddOutcome::kConflict;
      // kTrustNew: drop the contradicting edge, then merge.
      edges_[ra].erase(rb);
      edges_[rb].erase(ra);
      if (edges_[ra].empty()) edges_.erase(ra);
      if (edges_[rb].empty()) edges_.erase(rb);
      --num_edges_;
      MergeClusters(ra, rb);
      return AddOutcome::kConflict;
    }
    MergeClusters(ra, rb);
    return AddOutcome::kApplied;
  }

  // Non-matching label.
  if (ra == rb) {
    // Contradiction: the two objects are already deduced matching. A merge
    // cannot be undone, so both policies keep the cluster.
    ++conflicts_non_matching_;
    return AddOutcome::kConflict;
  }
  auto& ea = EdgesOf(ra);
  if (!ea.insert(rb).second) return AddOutcome::kRedundant;
  EdgesOf(rb).insert(ra);
  ++num_edges_;
  return AddOutcome::kApplied;
}

}  // namespace crowdjoin
