#ifndef CROWDJOIN_TEXT_SET_SIMILARITY_H_
#define CROWDJOIN_TEXT_SET_SIMILARITY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace crowdjoin {

/// Size of the intersection of two *sorted, deduplicated* id vectors.
size_t OverlapSize(const std::vector<int32_t>& a,
                   const std::vector<int32_t>& b);

/// Jaccard similarity of sorted, deduplicated id *ranges* — the flat-array
/// core behind the vector overload, for callers (e.g. the sharded join)
/// that store documents in arena-style flat buffers.
double JaccardSimilarity(const int32_t* a, size_t na, const int32_t* b,
                         size_t nb);

/// Jaccard similarity |A∩B| / |A∪B| of sorted, deduplicated id vectors.
/// Two empty sets have similarity 1.
double JaccardSimilarity(const std::vector<int32_t>& a,
                         const std::vector<int32_t>& b);

/// \brief Early-exit Jaccard verification for threshold joins.
///
/// Returns the exact Jaccard — bit-identical to `JaccardSimilarity` —
/// whenever the pair could still satisfy `score + 1e-12 >= threshold`, and
/// -1.0 as soon as the merge proves it cannot (the remaining elements can
/// no longer reach the required overlap). Joins that emit on
/// `score + 1e-12 >= threshold` therefore produce byte-identical output
/// through either verifier; this one abandons hopeless candidates early.
double BoundedJaccard(const int32_t* a, size_t na, const int32_t* b,
                      size_t nb, double threshold);

inline double BoundedJaccard(const std::vector<int32_t>& a,
                             const std::vector<int32_t>& b,
                             double threshold) {
  return BoundedJaccard(a.data(), a.size(), b.data(), b.size(), threshold);
}

/// Dice coefficient 2|A∩B| / (|A|+|B|).
double DiceSimilarity(const std::vector<int32_t>& a,
                      const std::vector<int32_t>& b);

/// Set cosine |A∩B| / sqrt(|A||B|).
double CosineSimilarity(const std::vector<int32_t>& a,
                        const std::vector<int32_t>& b);

/// Overlap coefficient |A∩B| / min(|A|, |B|).
double OverlapCoefficient(const std::vector<int32_t>& a,
                          const std::vector<int32_t>& b);

/// Convenience: Jaccard over word-token *string* sets (sorts + dedups
/// internally). Useful for tests and one-off scoring.
double JaccardOfTokenSets(std::vector<std::string> a,
                          std::vector<std::string> b);

}  // namespace crowdjoin

#endif  // CROWDJOIN_TEXT_SET_SIMILARITY_H_
