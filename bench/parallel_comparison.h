#ifndef CROWDJOIN_BENCH_PARALLEL_COMPARISON_H_
#define CROWDJOIN_BENCH_PARALLEL_COMPARISON_H_

#include "eval/workbench.h"

namespace crowdjoin::bench {

/// Shared body of the Figure 13 / Figure 14 harnesses: runs the sequential
/// (Non-Parallel) and round-based parallel labelers on the candidate pairs
/// above `threshold` in the expected order, and prints iteration counts,
/// the parallel per-iteration batch-size series, and labeling wall clock.
///
/// The parallel labeler fans its oracle calls over `num_threads` worker
/// threads; the run also re-executes single-threaded and aborts if the two
/// `LabelingResult`s differ, so every bench run re-checks the determinism
/// contract on paper-scale data.
void RunParallelComparison(const ExperimentInput& input, double threshold,
                           int num_threads = 1);

}  // namespace crowdjoin::bench

#endif  // CROWDJOIN_BENCH_PARALLEL_COMPARISON_H_
