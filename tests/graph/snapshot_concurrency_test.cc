// Threaded pins for the graph's concurrency contract, written to fail
// under ThreadSanitizer (the CI tsan job runs this suite) if a "read"
// ever becomes a write again:
//  * const Deduce/ClusterOf/ClusterSize/CanonicalClusterId on a frozen
//    graph must be safe from any number of threads — the old
//    path-compressing reads were a latent data race;
//  * snapshot readers must be able to run against epochs the single
//    writer keeps advancing (the serve layer's reader/writer protocol).

#include <gtest/gtest.h>

#include <atomic>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "graph/cluster_graph.h"

namespace crowdjoin {
namespace {

constexpr Label kM = Label::kMatching;
constexpr Label kN = Label::kNonMatching;

// Builds a mixed graph: chains of merges plus non-matching edges.
ClusterGraph MakeGraph(int32_t num_objects, uint64_t seed) {
  ClusterGraph graph(num_objects);
  Rng rng(seed);
  for (int i = 0; i < num_objects * 3; ++i) {
    const auto a =
        static_cast<ObjectId>(rng.Index(static_cast<size_t>(num_objects)));
    const auto b =
        static_cast<ObjectId>(rng.Index(static_cast<size_t>(num_objects)));
    if (a == b) continue;
    // Group by id range so matches and edges both occur.
    const bool same_group = a / 8 == b / 8;
    graph.Add(a, b, same_group ? kM : kN);
  }
  return graph;
}

TEST(SnapshotConcurrency, ConstReadsOnFrozenGraphAreParallelSafe) {
  const int32_t n = 64;
  const ClusterGraph graph = MakeGraph(n, /*seed=*/7);

  // Single-threaded reference answers, via the same const path.
  std::vector<Deduction> expected;
  for (ObjectId a = 0; a < n; ++a) {
    for (ObjectId b = a + 1; b < n; ++b) {
      expected.push_back(graph.Deduce(a, b));
    }
  }

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      size_t i = 0;
      for (ObjectId a = 0; a < n; ++a) {
        for (ObjectId b = a + 1; b < n; ++b, ++i) {
          if (graph.Deduce(a, b) != expected[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          // Exercise every const read surface.
          if (graph.ClusterOf(a) == graph.ClusterOf(b) &&
              graph.CanonicalClusterId(a) != graph.CanonicalClusterId(b)) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
          if (graph.ClusterSize(a) < 1) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SnapshotConcurrency, ReadersOnPublishedSnapshotsWhileWriterAdvances) {
  const int32_t n = 96;
  ClusterGraph graph(8);

  // The serve-layer protocol in miniature: the writer publishes each new
  // epoch into a shared slot; readers copy the slot and read through it.
  std::shared_mutex slot_mu;
  ClusterGraphSnapshot slot = graph.Snapshot();
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(1000 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        ClusterGraphSnapshot snapshot;
        {
          std::shared_lock<std::shared_mutex> lock(slot_mu);
          snapshot = slot;
        }
        const int32_t objects = snapshot.num_objects();
        if (objects < 2) continue;
        const auto a =
            static_cast<ObjectId>(rng.Index(static_cast<size_t>(objects)));
        const auto b =
            static_cast<ObjectId>(rng.Index(static_cast<size_t>(objects)));
        if (a == b) continue;
        // Within one snapshot, Deduce and the cluster ids must cohere.
        const Deduction deduction = snapshot.Deduce(a, b);
        const bool same_canonical =
            snapshot.CanonicalClusterId(a) == snapshot.CanonicalClusterId(b);
        if ((deduction == Deduction::kMatching) != same_canonical) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        if (snapshot.ClusterOf(a) == snapshot.ClusterOf(b) &&
            !same_canonical) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Writer: grow and label, publishing after every mutation.
  Rng rng(42);
  for (int32_t objects = 8; objects <= n; objects += 8) {
    graph.EnsureObjects(objects);
    for (int i = 0; i < 64; ++i) {
      const auto a =
          static_cast<ObjectId>(rng.Index(static_cast<size_t>(objects)));
      const auto b =
          static_cast<ObjectId>(rng.Index(static_cast<size_t>(objects)));
      if (a == b) continue;
      graph.Add(a, b, a / 6 == b / 6 ? kM : kN);
      const ClusterGraphSnapshot fresh = graph.Snapshot();
      std::unique_lock<std::shared_mutex> lock(slot_mu);
      slot = fresh;
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace crowdjoin
