#include "text/set_similarity.h"

#include <algorithm>
#include <cmath>

#include "text/tokenize.h"

namespace crowdjoin {

size_t OverlapSize(const std::vector<int32_t>& a,
                   const std::vector<int32_t>& b) {
  size_t i = 0;
  size_t j = 0;
  size_t overlap = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++overlap;
      ++i;
      ++j;
    }
  }
  return overlap;
}

double JaccardSimilarity(const int32_t* a, size_t na, const int32_t* b,
                         size_t nb) {
  if (na == 0 && nb == 0) return 1.0;
  size_t i = 0;
  size_t j = 0;
  size_t overlap = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++overlap;
      ++i;
      ++j;
    }
  }
  const size_t unions = na + nb - overlap;
  return static_cast<double>(overlap) / static_cast<double>(unions);
}

double JaccardSimilarity(const std::vector<int32_t>& a,
                         const std::vector<int32_t>& b) {
  return JaccardSimilarity(a.data(), a.size(), b.data(), b.size());
}

namespace internal {

namespace {

inline double FinishVerify(size_t overlap, size_t required, size_t na,
                           size_t nb) {
  if (overlap < required) return -1.0;
  const size_t unions = na + nb - overlap;
  return static_cast<double>(overlap) / static_cast<double>(unions);
}

}  // namespace

double MergeVerifyBranchy(const int32_t* a, size_t na, const int32_t* b,
                          size_t nb, size_t i, size_t j, size_t overlap,
                          size_t required) {
  // The merge is hopeless once overlap + min(na - i, nb - j) < required,
  // i.e. once i - overlap > na - required (or the b-side mirror). Only a
  // mismatch advance can newly violate it, and only for the advanced
  // side, so the check lives on the mismatch arms — not per iteration.
  // The caller guarantees required <= overlap + min(na - i, nb - j) on
  // entry, hence required <= na and required <= nb: no underflow.
  const size_t max_skip_a = na - required;
  const size_t max_skip_b = nb - required;
  while (i < na && j < nb) {
    const int32_t va = a[i];
    const int32_t vb = b[j];
    if (va == vb) {
      ++overlap;
      ++i;
      ++j;
    } else if (va < vb) {
      if (++i - overlap > max_skip_a) return -1.0;
    } else {
      if (++j - overlap > max_skip_b) return -1.0;
    }
  }
  return FinishVerify(overlap, required, na, nb);
}

double MergeVerifyBlock(const int32_t* a, size_t na, const int32_t* b,
                        size_t nb, size_t i, size_t j, size_t overlap,
                        size_t required) {
  // Each step advances i and j by at most one, so a run bounded by both
  // remainders cannot overrun either range; the unreachability check then
  // amortizes to once per block instead of once per element.
  constexpr size_t kBlock = 16;
  while (true) {
    size_t run = std::min({kBlock, na - i, nb - j});
    if (run == 0) break;
    for (; run > 0; --run) {
      const int32_t va = a[i];
      const int32_t vb = b[j];
      overlap += static_cast<size_t>(va == vb);
      i += static_cast<size_t>(va <= vb);
      j += static_cast<size_t>(vb <= va);
    }
    if (overlap + std::min(na - i, nb - j) < required) return -1.0;
  }
  return FinishVerify(overlap, required, na, nb);
}

double MergeVerifyGallop(const int32_t* a, size_t na, const int32_t* b,
                         size_t nb, size_t i, size_t j, size_t overlap,
                         size_t required) {
  while (i < na && j < nb) {
    // Every a-element left is worth at most one overlap.
    if (overlap + (na - i) < required) return -1.0;
    const int32_t target = a[i];
    size_t step = 1;
    while (j + step < nb && b[j + step] < target) step <<= 1;
    // First b >= target lies in [j, min(nb, j + step + 1)).
    j = static_cast<size_t>(
        std::lower_bound(b + j, b + std::min(nb, j + step + 1), target) - b);
    if (j < nb && b[j] == target) {
      ++overlap;
      ++j;
    }
    ++i;
  }
  return FinishVerify(overlap, required, na, nb);
}

}  // namespace internal

double BoundedJaccardSeeded(const int32_t* a, size_t na, const int32_t* b,
                            size_t nb, size_t a_pos, size_t b_pos,
                            size_t seed_overlap, double threshold) {
  if (na == 0 && nb == 0) return 1.0;
  const size_t required = RequiredOverlap(threshold, na, nb);
  const size_t rest_a = na - a_pos;
  const size_t rest_b = nb - b_pos;
  // Hopeless before the merge even starts (this also guards the skip
  // allowances inside the kernels against underflow).
  if (seed_overlap + std::min(rest_a, rest_b) < required) return -1.0;
  if (rest_b > rest_a * internal::kGallopSkew) {
    return internal::MergeVerifyGallop(a, na, b, nb, a_pos, b_pos,
                                       seed_overlap, required);
  }
  if (rest_a > rest_b * internal::kGallopSkew) {
    return internal::MergeVerifyGallop(b, nb, a, na, b_pos, a_pos,
                                       seed_overlap, required);
  }
  // Measured (bench/micro_verify + the scale_sweep SF 100 join phase,
  // BASELINES.md): the branch-per-element merge with mismatch-only exit
  // checks beats the branchless block merge ~2.4x on this workload's
  // short documents (~10 tokens) and ~10% end-to-end at SF 100; the
  // block variant only edges ahead on long docs at mid thresholds.
  // Branchy is therefore the default; the block kernel stays exported
  // and benchmarked so the choice remains an empirical one.
  return internal::MergeVerifyBranchy(a, na, b, nb, a_pos, b_pos,
                                      seed_overlap, required);
}

double BoundedJaccard(const int32_t* a, size_t na, const int32_t* b,
                      size_t nb, double threshold) {
  return BoundedJaccardSeeded(a, na, b, nb, 0, 0, 0, threshold);
}

double DiceSimilarity(const std::vector<int32_t>& a,
                      const std::vector<int32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  const size_t overlap = OverlapSize(a, b);
  return 2.0 * static_cast<double>(overlap) /
         static_cast<double>(a.size() + b.size());
}

double CosineSimilarity(const std::vector<int32_t>& a,
                        const std::vector<int32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t overlap = OverlapSize(a, b);
  return static_cast<double>(overlap) /
         std::sqrt(static_cast<double>(a.size()) *
                   static_cast<double>(b.size()));
}

double OverlapCoefficient(const std::vector<int32_t>& a,
                          const std::vector<int32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  const size_t overlap = OverlapSize(a, b);
  return static_cast<double>(overlap) /
         static_cast<double>(std::min(a.size(), b.size()));
}

namespace {

// String mirror of `OverlapSize`: intersection of sorted, deduplicated
// token vectors.
size_t StringOverlapSize(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  size_t i = 0;
  size_t j = 0;
  size_t overlap = 0;
  while (i < a.size() && j < b.size()) {
    const int cmp = a[i].compare(b[j]);
    if (cmp < 0) {
      ++i;
    } else if (cmp > 0) {
      ++j;
    } else {
      ++overlap;
      ++i;
      ++j;
    }
  }
  return overlap;
}

}  // namespace

double JaccardOfTokenSets(std::vector<std::string> a,
                          std::vector<std::string> b) {
  SortUnique(a);
  SortUnique(b);
  const size_t overlap = StringOverlapSize(a, b);
  const size_t unions = a.size() + b.size() - overlap;
  // Two empty sets: don't rely on an early return upstream — guard the
  // division itself so the function stays robust to reordering edits.
  if (unions == 0) return 1.0;
  return static_cast<double>(overlap) / static_cast<double>(unions);
}

}  // namespace crowdjoin
