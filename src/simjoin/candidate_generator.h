#ifndef CROWDJOIN_SIMJOIN_CANDIDATE_GENERATOR_H_
#define CROWDJOIN_SIMJOIN_CANDIDATE_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/candidate.h"
#include "core/labeling_session.h"
#include "datagen/record_source.h"
#include "simjoin/sharded_join.h"
#include "simjoin/similarity_measure.h"
#include "simjoin/token_dictionary.h"
#include "text/record.h"
#include "text/record_similarity.h"

namespace crowdjoin {

/// Options for machine-based candidate generation (Section 2.3).
struct CandidateGeneratorOptions {
  /// Similarity measure the pruning join runs under. Jaccard is the
  /// paper's default machine step; edit distance fits typo-heavy corpora
  /// where word tokens diverge, cosine down-weights boilerplate tokens.
  MeasureKind measure = MeasureKind::kJaccard;
  /// Coarse similarity prune applied by the join (under `measure`) before
  /// the full record scorer runs. Loose by design: the paper's machine
  /// step "weeds out pairs that look very dissimilar" [25].
  double token_join_threshold = 0.1;
  /// Pairs whose blended record similarity (the matching likelihood) falls
  /// below this are dropped from the candidate set.
  double min_likelihood = 0.1;
  /// Gaussian noise added to each likelihood (clamped to [0.01, 0.99])
  /// before the `min_likelihood` cut. Models the miscalibration of real
  /// machine-learned match scores [25]: with zero noise the likelihood
  /// ranking separates matching from non-matching pairs almost perfectly
  /// and the parallel labeler converges in one round, which real candidate
  /// sets (Figures 13-14: ~14 rounds) do not.
  double likelihood_noise_stddev = 0.0;
  /// Seed for the likelihood noise stream.
  uint64_t noise_seed = 1;
};

/// \brief The machine step of the hybrid workflow: generates the candidate
/// set of matching pairs with likelihoods.
///
/// Every record's fields are concatenated and turned into a measure
/// document (`options.measure`: word tokens for Jaccard/cosine, q-grams of
/// the normalized text for edit distance); a prefix-filter similarity join
/// prunes the cross product; survivors are scored by `scorer` (call
/// `scorer.FitTfIdf` first if it uses TF-IDF).
///
/// `side_of` selects the join shape: nullptr runs a self-join over
/// `records`; otherwise `side_of[i]` in {0, 1} assigns each record to one
/// collection and only cross-side pairs are produced (the Product dataset's
/// 1081 x 1092 setting). Candidate pairs reference `Record::id`.
Result<CandidateSet> GenerateCandidates(
    const RecordSet& records, const std::vector<uint8_t>* side_of,
    const RecordScorer& scorer, const CandidateGeneratorOptions& options);

/// \brief Streaming machine step: candidate generation over a
/// `RecordSource`, with the cross-product pruned by the sharded parallel
/// join — the entry point for 100k-1M-record workloads.
///
/// Records are pulled from `source` one at a time (after a `Reset`),
/// tokenized, interned, and fed straight into a `ShardedSelfJoiner` /
/// `ShardedBipartiteJoiner` (chosen by `source.meta().bipartite`); the
/// join then fans across `sharding.num_threads` pool workers.
///
/// `scorer` may be null: likelihoods are then the join's similarity
/// scores (under `options.measure`) and **no record text is retained** —
/// memory stays at the measure docs plus the candidate set, which is what
/// makes million-record campaigns fit. With a scorer (fit it over the same corpus first) the
/// streamed records are retained for scoring and the result is
/// byte-identical to `GenerateCandidates` over the materialized dataset.
///
/// `entity_of_out`, when non-null, receives each streamed record's ground
/// truth entity (indexed by record position) for building oracles without
/// a second pass.
Result<CandidateSet> GenerateCandidatesStreaming(
    RecordSource& source, const RecordScorer* scorer,
    const CandidateGeneratorOptions& options,
    const ShardedJoinOptions& sharding,
    std::vector<int32_t>* entity_of_out = nullptr);

/// \brief `CandidateStream` over a `RecordSource`: the machine step's
/// sharded join drained probe-task batch by probe-task batch, so candidate
/// pairs flow into a `LabelingSession::RunStream` round by round and the
/// full candidate set is **never materialized** — peak candidate memory is
/// one round (the output of `tasks_per_round` probe tasks).
///
/// This is the scorer-free memory-lean path: likelihoods are the join's
/// similarity scores under `candidates.measure`, optionally noised in
/// emission order (which, unlike
/// the batch path's global order, depends on the round partition — only the
/// zero-noise configuration is partition-independent). No record text is
/// retained; ground truth is captured from the stream during `Open`.
class StreamingCandidateFeed : public CandidateStream {
 public:
  struct Options {
    /// Join threshold, likelihood cut, and noise knobs. (`min_likelihood`
    /// and the noise stream apply per emitted round.)
    CandidateGeneratorOptions candidates;
    /// Shard count and worker threads (the feed owns the pool).
    ShardedJoinOptions sharding;
    /// Probe tasks drained per `NextRound`; <= 0 picks 8. Smaller rounds
    /// mean a tighter memory bound and more deduction carry-over between
    /// rounds; larger rounds mean fewer, bigger crowd batches.
    int64_t tasks_per_round = 0;
  };

  /// Ingests `source` (tokenize + shard, no record retention) and prepares
  /// the sharded join. The feed is ready to stream rounds afterwards.
  static Result<std::unique_ptr<StreamingCandidateFeed>> Open(
      RecordSource& source, const Options& options);

  ~StreamingCandidateFeed() override;

  /// The next non-empty round of candidates; empty when every probe task
  /// has been drained. Pair ids are `Record::id`s, as everywhere.
  Result<CandidateSet> NextRound() override;

  /// Ground-truth entity per streamed record position (for oracles).
  const std::vector<int32_t>& entity_of() const { return entity_of_; }
  int64_t num_records() const {
    return static_cast<int64_t>(entity_of_.size());
  }
  /// Candidates emitted so far.
  int64_t num_candidates() const { return num_candidates_; }
  /// Rounds emitted so far.
  int64_t num_rounds() const { return num_rounds_; }
  /// Largest round emitted so far — the peak candidate-buffer bound.
  int64_t max_round_size() const { return max_round_size_; }

 private:
  StreamingCandidateFeed(const Options& options, bool bipartite);

  Options options_;
  bool bipartite_;
  int64_t tasks_per_round_;
  TokenDictionary dictionary_;
  // Joiners are stable on the heap: the cursor points into them.
  std::unique_ptr<ShardedSelfJoiner> self_joiner_;
  std::unique_ptr<ShardedBipartiteJoiner> bipartite_joiner_;
  ThreadPool pool_;
  std::optional<ShardedJoinCursor> cursor_;
  std::vector<ObjectId> left_ids_;   // record id by left/self local position
  std::vector<ObjectId> right_ids_;  // record id by right local position
  std::vector<int32_t> entity_of_;
  Rng noise_rng_;
  int64_t num_candidates_ = 0;
  int64_t num_rounds_ = 0;
  int64_t max_round_size_ = 0;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_SIMJOIN_CANDIDATE_GENERATOR_H_
