#include "datagen/perturb.h"

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "text/edit_distance.h"

namespace crowdjoin {
namespace {

TEST(Corruptor, TypoIsOneEditAway) {
  Rng rng(1);
  Corruptor corruptor({}, &rng);
  for (int i = 0; i < 200; ++i) {
    const std::string corrupted = corruptor.Typo("similarity");
    EXPECT_LE(LevenshteinDistance("similarity", corrupted), 2u);
    EXPECT_GE(corrupted.size(), 9u);
    EXPECT_LE(corrupted.size(), 11u);
  }
}

TEST(Corruptor, TypoLeavesShortWordsAlone) {
  Rng rng(2);
  Corruptor corruptor({}, &rng);
  EXPECT_EQ(corruptor.Typo("a"), "a");
  EXPECT_EQ(corruptor.Typo(""), "");
}

TEST(Corruptor, CorruptTextIsDeterministicPerSeed) {
  CorruptionConfig config;
  config.typo_per_word = 0.5;
  Rng rng1(3);
  Rng rng2(3);
  Corruptor c1(config, &rng1);
  Corruptor c2(config, &rng2);
  const std::string text = "efficient entity resolution with crowdsourcing";
  EXPECT_EQ(c1.CorruptText(text), c2.CorruptText(text));
}

TEST(Corruptor, ZeroRatesLeaveTextUnchanged) {
  CorruptionConfig config;
  config.typo_per_word = 0.0;
  config.drop_word = 0.0;
  config.duplicate_word = 0.0;
  config.swap_adjacent = 0.0;
  config.truncate_word = 0.0;
  Rng rng(4);
  Corruptor corruptor(config, &rng);
  const std::string text = "nothing should change here";
  EXPECT_EQ(corruptor.CorruptText(text), text);
}

TEST(Corruptor, CorruptTextNeverEmptiesNonEmptyInput) {
  CorruptionConfig config;
  config.drop_word = 0.95;
  Rng rng(5);
  Corruptor corruptor(config, &rng);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(corruptor.CorruptText("word").empty());
    EXPECT_FALSE(corruptor.CorruptText("two words").empty());
  }
}

TEST(Corruptor, InitialFormAbbreviatesFirstName) {
  Rng rng(6);
  Corruptor corruptor({}, &rng);
  EXPECT_EQ(corruptor.InitialForm("john smith"), "j smith");
  EXPECT_EQ(corruptor.InitialForm("maria garcia lopez"), "m garcia lopez");
  EXPECT_EQ(corruptor.InitialForm("cher"), "cher");
}

TEST(Corruptor, JitterStaysWithinBounds) {
  Rng rng(7);
  Corruptor corruptor({}, &rng);
  for (int i = 0; i < 500; ++i) {
    const double jittered = corruptor.JitterNumber(100.0, 0.1);
    EXPECT_GE(jittered, 90.0);
    EXPECT_LE(jittered, 110.0);
  }
}

}  // namespace
}  // namespace crowdjoin
