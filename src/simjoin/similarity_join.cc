#include "simjoin/similarity_join.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/macros.h"
#include "simjoin/postings_index.h"
#include "simjoin/prefix_filter.h"
#include "text/set_similarity.h"

namespace crowdjoin {

namespace {

constexpr size_t kNoMaxLen = std::numeric_limits<size_t>::max();
constexpr auto kNoSkip = [](int32_t) { return false; };

}  // namespace

Result<std::vector<ScoredPair>> PrefixFilterSelfJoin(
    const std::vector<std::vector<int32_t>>& docs,
    const TokenDictionary& dictionary, double threshold) {
  CJ_RETURN_IF_ERROR(ValidateJoinThreshold(threshold));
  const size_t n = docs.size();

  // Process docs in ascending size so the length filter |y| >= t|x| holds
  // for everything already indexed when x arrives.
  std::vector<int32_t> by_size(n);
  std::iota(by_size.begin(), by_size.end(), 0);
  std::sort(by_size.begin(), by_size.end(), [&docs](int32_t x, int32_t y) {
    if (docs[static_cast<size_t>(x)].size() !=
        docs[static_cast<size_t>(y)].size()) {
      return docs[static_cast<size_t>(x)].size() <
             docs[static_cast<size_t>(y)].size();
    }
    return x < y;
  });

  // Rank-encoded copies: ascending rank order == rarity order, so
  // prefixes are leading slices and verification merges plain ranks.
  const std::vector<int32_t> ranks = dictionary.RarityRanks();
  std::vector<std::vector<int32_t>> rank_docs(n);
  std::vector<size_t> lens(n);
  std::vector<int32_t> prefix_lens(n);
  std::vector<int32_t> counts(dictionary.size(), 0);
  for (size_t i = 0; i < n; ++i) {
    RankEncode(docs[i], ranks, rank_docs[i]);
    lens[i] = docs[i].size();
    const size_t prefix = PrefixLength(threshold, lens[i]);
    prefix_lens[i] = static_cast<int32_t>(prefix);
    for (size_t p = 0; p < prefix; ++p) ++counts[rank_docs[i][p]];
  }

  // The index fills as the sweep passes each document, so every token's
  // postings run ascending in document size — exactly what the gather's
  // binary-searched length window requires.
  PostingsArena index;
  index.Build(counts);
  const auto len_of = [&lens](int32_t doc) {
    return lens[static_cast<size_t>(doc)];
  };

  std::vector<int32_t> last_seen(n, -1);
  // Scratch candidate buffer, reused across probes: the probe phase only
  // gathers ids + seed positions, and verification runs afterwards as one
  // tight batch.
  std::vector<JoinCandidate> candidates;
  std::vector<ScoredPair> out;

  for (size_t step = 0; step < n; ++step) {
    const int32_t x = by_size[step];
    const auto& rank_x = rank_docs[static_cast<size_t>(x)];
    const size_t len_x = rank_x.size();
    if (len_x == 0) continue;
    const auto prefix_x = static_cast<size_t>(prefix_lens[static_cast<size_t>(x)]);
    const size_t min_len_y = CeilThresholdLength(threshold, len_x);

    candidates.clear();
    GatherPositionalCandidates(index, rank_x.data(), prefix_x, len_x,
                               threshold, min_len_y, kNoMaxLen, x, last_seen,
                               len_of, kNoSkip, candidates);
    for (const JoinCandidate& cand : candidates) {
      const auto& rank_y = rank_docs[static_cast<size_t>(cand.doc)];
      const double score = BoundedJaccardSeeded(
          rank_x.data(), len_x, rank_y.data(), rank_y.size(),
          static_cast<size_t>(cand.probe_pos) + 1,
          static_cast<size_t>(cand.index_pos) + 1, 1, threshold);
      if (score + 1e-12 >= threshold) {
        out.push_back({std::min(x, cand.doc), std::max(x, cand.doc), score});
      }
    }
    for (size_t p = 0; p < prefix_x; ++p) {
      index.Append(rank_x[p], x, static_cast<int32_t>(p));
    }
  }
  SortByPairOrder(out);
  return out;
}

Result<std::vector<ScoredPair>> PrefixFilterBipartiteJoin(
    const std::vector<std::vector<int32_t>>& left,
    const std::vector<std::vector<int32_t>>& right,
    const TokenDictionary& dictionary, double threshold) {
  CJ_RETURN_IF_ERROR(ValidateJoinThreshold(threshold));
  const size_t n = left.size();

  // Rank-encode and index the left side's prefixes; the shared builder
  // fills each token's postings in ascending (length, id) order so the
  // probe side can binary-search its [min_len, max_len] window.
  const std::vector<int32_t> ranks = dictionary.RarityRanks();
  std::vector<std::vector<int32_t>> left_ranks(n);
  std::vector<size_t> lens(n);
  std::vector<int32_t> prefix_lens(n);
  for (size_t i = 0; i < n; ++i) {
    RankEncode(left[i], ranks, left_ranks[i]);
    lens[i] = left[i].size();
    prefix_lens[i] = static_cast<int32_t>(PrefixLength(threshold, lens[i]));
  }
  PostingsArena index;
  BuildLengthOrderedPostings(index, dictionary.size(), lens, prefix_lens,
                             [&left_ranks](int32_t d) {
                               return left_ranks[static_cast<size_t>(d)]
                                   .data();
                             });
  const auto len_of = [&lens](int32_t doc) {
    return lens[static_cast<size_t>(doc)];
  };

  std::vector<int32_t> last_seen(n, -1);
  std::vector<JoinCandidate> candidates;
  std::vector<ScoredPair> out;
  std::vector<int32_t> rank_s;
  for (size_t j = 0; j < right.size(); ++j) {
    RankEncode(right[j], ranks, rank_s);
    const size_t len_s = rank_s.size();
    if (len_s == 0) continue;
    const size_t prefix_s = PrefixLength(threshold, len_s);
    const size_t min_len = CeilThresholdLength(threshold, len_s);
    const size_t max_len = FloorThresholdLength(threshold, len_s);
    candidates.clear();
    GatherPositionalCandidates(index, rank_s.data(), prefix_s, len_s,
                               threshold, min_len, max_len,
                               static_cast<int32_t>(j), last_seen, len_of,
                               kNoSkip, candidates);
    for (const JoinCandidate& cand : candidates) {
      const auto& rank_r = left_ranks[static_cast<size_t>(cand.doc)];
      const double score = BoundedJaccardSeeded(
          rank_r.data(), rank_r.size(), rank_s.data(), len_s,
          static_cast<size_t>(cand.index_pos) + 1,
          static_cast<size_t>(cand.probe_pos) + 1, 1, threshold);
      if (score + 1e-12 >= threshold) {
        out.push_back({cand.doc, static_cast<int32_t>(j), score});
      }
    }
  }
  SortByPairOrder(out);
  return out;
}

std::vector<ScoredPair> BruteForceSelfJoin(
    const std::vector<std::vector<int32_t>>& docs, double threshold) {
  std::vector<ScoredPair> out;
  for (size_t i = 0; i < docs.size(); ++i) {
    for (size_t j = i + 1; j < docs.size(); ++j) {
      const double score = JaccardSimilarity(docs[i], docs[j]);
      if (score + 1e-12 >= threshold) {
        out.push_back(
            {static_cast<int32_t>(i), static_cast<int32_t>(j), score});
      }
    }
  }
  return out;
}

std::vector<ScoredPair> BruteForceBipartiteJoin(
    const std::vector<std::vector<int32_t>>& left,
    const std::vector<std::vector<int32_t>>& right, double threshold) {
  std::vector<ScoredPair> out;
  for (size_t i = 0; i < left.size(); ++i) {
    for (size_t j = 0; j < right.size(); ++j) {
      const double score = JaccardSimilarity(left[i], right[j]);
      if (score + 1e-12 >= threshold) {
        out.push_back(
            {static_cast<int32_t>(i), static_cast<int32_t>(j), score});
      }
    }
  }
  return out;
}

}  // namespace crowdjoin
