#include "eval/workbench.h"

#include "common/macros.h"
#include "datagen/paper_dataset.h"
#include "datagen/product_dataset.h"
#include "simjoin/candidate_generator.h"

namespace crowdjoin {

Result<ExperimentInput> MakePaperExperimentInput(uint64_t seed) {
  PaperDatasetConfig config;
  config.seed = seed;
  CJ_ASSIGN_OR_RETURN(Dataset dataset, GeneratePaperDataset(config));

  RecordScorer scorer = MakePaperScorer();
  scorer.FitTfIdf(dataset.records);
  CandidateGeneratorOptions options;
  options.token_join_threshold = 0.08;
  options.min_likelihood = 0.10;
  options.likelihood_noise_stddev = 0.12;
  options.noise_seed = seed ^ 0x9E3779B9u;
  CJ_ASSIGN_OR_RETURN(
      CandidateSet candidates,
      GenerateCandidates(dataset.records, /*side_of=*/nullptr, scorer,
                         options));
  return ExperimentInput{std::move(dataset), std::move(candidates)};
}

Result<ExperimentInput> MakeProductExperimentInput(uint64_t seed) {
  ProductDatasetConfig config;
  config.seed = seed;
  CJ_ASSIGN_OR_RETURN(Dataset dataset, GenerateProductDataset(config));

  RecordScorer scorer = MakeProductScorer();
  scorer.FitTfIdf(dataset.records);
  CandidateGeneratorOptions options;
  options.token_join_threshold = 0.08;
  options.min_likelihood = 0.10;
  options.likelihood_noise_stddev = 0.12;
  options.noise_seed = seed ^ 0x9E3779B9u;
  CJ_ASSIGN_OR_RETURN(
      CandidateSet candidates,
      GenerateCandidates(dataset.records, &dataset.side_of, scorer, options));
  return ExperimentInput{std::move(dataset), std::move(candidates)};
}

CandidateSet FilterByThreshold(const CandidateSet& candidates,
                               double threshold) {
  CandidateSet filtered;
  for (const CandidatePair& pair : candidates) {
    if (pair.likelihood >= threshold) filtered.push_back(pair);
  }
  return filtered;
}

}  // namespace crowdjoin
