#ifndef CROWDJOIN_GRAPH_REFERENCE_DEDUCER_H_
#define CROWDJOIN_GRAPH_REFERENCE_DEDUCER_H_

#include <cstdint>
#include <vector>

#include "graph/label.h"

namespace crowdjoin {

/// \brief Naive path-search deducer used as a correctness reference.
///
/// Decides deducibility straight from Lemma 1's conditions by breadth-first
/// search over states `(object, #non-matching edges used ∈ {0, 1})`. This is
/// the "enumerate paths" semantics that Section 3.2 argues the ClusterGraph
/// replaces; it is exponential-free (BFS, O(V+E) per query) but far slower
/// than the ClusterGraph for labeling workloads, which the
/// `micro_clustergraph` benchmark quantifies.
class ReferenceDeducer {
 public:
  /// Creates a deducer over objects `[0, num_objects)`.
  explicit ReferenceDeducer(int32_t num_objects);

  /// Inserts a labeled pair (no conflict checking: reference semantics only
  /// make sense for consistent label sets).
  void Add(ObjectId a, ObjectId b, Label label);

  /// BFS over (object, used-nonmatching) states per Lemma 1.
  Deduction Deduce(ObjectId a, ObjectId b) const;

 private:
  struct Edge {
    ObjectId to;
    Label label;
  };
  std::vector<std::vector<Edge>> adjacency_;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_GRAPH_REFERENCE_DEDUCER_H_
