#ifndef CROWDJOIN_SIMJOIN_SIMILARITY_JOIN_H_
#define CROWDJOIN_SIMJOIN_SIMILARITY_JOIN_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "simjoin/similarity_measure.h"
#include "simjoin/token_dictionary.h"

namespace crowdjoin {

/// One joined pair with its exact similarity under the join's measure.
struct ScoredPair {
  int32_t left = 0;   ///< index into the left/only document collection
  int32_t right = 0;  ///< index into the right collection (self-join: left<right)
  double score = 0.0;

  friend bool operator==(const ScoredPair& x, const ScoredPair& y) {
    return x.left == y.left && x.right == y.right && x.score == y.score;
  }
};

/// The canonical (left, right) output order every join emits — sequential
/// and sharded alike share this single definition, which is what the
/// sharded join's byte-identical-output contract sorts by.
inline void SortByPairOrder(std::vector<ScoredPair>& pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const ScoredPair& a, const ScoredPair& b) {
              if (a.left != b.left) return a.left < b.left;
              return a.right < b.right;
            });
}

/// \brief Set-similarity self-join: all pairs (i < j) of documents with
/// Jaccard >= threshold.
///
/// `docs` are deduplicated token-id vectors sorted ascending by id.
/// Implements prefix filtering over a rarity-ordered token order with a
/// length filter, then verifies candidates exactly — the classic AllPairs
/// scheme, which is the machine step's workhorse on larger inputs.
/// `threshold` must be in (0, 1].
Result<std::vector<ScoredPair>> PrefixFilterSelfJoin(
    const std::vector<std::vector<int32_t>>& docs,
    const TokenDictionary& dictionary, double threshold);

/// \brief Bipartite variant: all pairs (r, s) across two collections with
/// Jaccard >= threshold.
Result<std::vector<ScoredPair>> PrefixFilterBipartiteJoin(
    const std::vector<std::vector<int32_t>>& left,
    const std::vector<std::vector<int32_t>>& right,
    const TokenDictionary& dictionary, double threshold);

/// \brief Measure-generic self-join: all pairs (i < j) of documents with
/// `measure` similarity >= threshold, through the same filter-verify
/// pipeline the Jaccard join runs.
///
/// `docs` come from `measure.MakeDoc` against `dictionary`. Under the
/// Jaccard measure this is `PrefixFilterSelfJoin` exactly — same
/// operations, byte-identical output. Documents with empty signatures
/// join nothing (the shared empty-doc contract).
Result<std::vector<ScoredPair>> MeasureSelfJoin(
    const std::vector<MeasureDoc>& docs, const TokenDictionary& dictionary,
    const SimilarityMeasure& measure, double threshold);

/// Measure-generic bipartite join across two collections built against
/// one shared dictionary.
Result<std::vector<ScoredPair>> MeasureBipartiteJoin(
    const std::vector<MeasureDoc>& left, const std::vector<MeasureDoc>& right,
    const TokenDictionary& dictionary, const SimilarityMeasure& measure,
    double threshold);

/// Brute-force reference self-join (exact, O(n^2) verifications).
std::vector<ScoredPair> BruteForceSelfJoin(
    const std::vector<std::vector<int32_t>>& docs, double threshold);

/// Brute-force reference bipartite join.
std::vector<ScoredPair> BruteForceBipartiteJoin(
    const std::vector<std::vector<int32_t>>& left,
    const std::vector<std::vector<int32_t>>& right, double threshold);

/// Measure-generic brute-force reference self-join: every pair scored with
/// the measure's exact kernel, empty-signature documents excluded — the
/// oracle the measure equivalence suites pin the filtered joins against.
std::vector<ScoredPair> BruteForceMeasureSelfJoin(
    const std::vector<MeasureDoc>& docs, const TokenDictionary& dictionary,
    const SimilarityMeasure& measure, double threshold);

/// Measure-generic brute-force reference bipartite join.
std::vector<ScoredPair> BruteForceMeasureBipartiteJoin(
    const std::vector<MeasureDoc>& left, const std::vector<MeasureDoc>& right,
    const TokenDictionary& dictionary, const SimilarityMeasure& measure,
    double threshold);

}  // namespace crowdjoin

#endif  // CROWDJOIN_SIMJOIN_SIMILARITY_JOIN_H_
