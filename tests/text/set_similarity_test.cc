#include "text/set_similarity.h"

#include <gtest/gtest.h>

namespace crowdjoin {
namespace {

using Ids = std::vector<int32_t>;

TEST(OverlapSize, SortedIntersection) {
  EXPECT_EQ(OverlapSize({1, 3, 5}, {2, 3, 5, 7}), 2u);
  EXPECT_EQ(OverlapSize({}, {1}), 0u);
  EXPECT_EQ(OverlapSize({1, 2}, {3, 4}), 0u);
  EXPECT_EQ(OverlapSize({1, 2, 3}, {1, 2, 3}), 3u);
}

TEST(JaccardSimilarity, KnownValues) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1}, {1}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {1}), 0.0);
}

TEST(DiceSimilarity, KnownValues) {
  EXPECT_DOUBLE_EQ(DiceSimilarity({1, 2, 3}, {2, 3, 4}), 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity({1}, {2}), 0.0);
}

TEST(CosineSimilarity, KnownValues) {
  EXPECT_NEAR(CosineSimilarity({1, 2, 3}, {2, 3, 4}), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(CosineSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({}, {1}), 0.0);
}

TEST(OverlapCoefficient, KnownValues) {
  EXPECT_DOUBLE_EQ(OverlapCoefficient({1, 2}, {1, 2, 3, 4}), 1.0);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({1, 5}, {1, 2, 3}), 0.5);
  EXPECT_DOUBLE_EQ(OverlapCoefficient({}, {}), 1.0);
}

TEST(SimilarityOrderingsAgree, MoreOverlapNeverLowersScores) {
  const Ids base = {1, 2, 3, 4};
  const Ids close = {1, 2, 3, 9};
  const Ids far = {1, 8, 9, 10};
  EXPECT_GT(JaccardSimilarity(base, close), JaccardSimilarity(base, far));
  EXPECT_GT(DiceSimilarity(base, close), DiceSimilarity(base, far));
  EXPECT_GT(CosineSimilarity(base, close), CosineSimilarity(base, far));
}

TEST(JaccardOfTokenSets, DedupsBeforeScoring) {
  EXPECT_DOUBLE_EQ(
      JaccardOfTokenSets({"a", "a", "b"}, {"b", "b", "c"}),
      1.0 / 3.0);
  EXPECT_DOUBLE_EQ(JaccardOfTokenSets({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardOfTokenSets({"x"}, {}), 0.0);
}

}  // namespace
}  // namespace crowdjoin
