#ifndef CROWDJOIN_CROWD_AVAILABILITY_SIM_H_
#define CROWDJOIN_CROWD_AVAILABILITY_SIM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/candidate.h"
#include "core/oracle.h"
#include "core/retry_policy.h"
#include "crowd/faults.h"

namespace crowdjoin {

/// Publication strategies compared in Figure 15.
enum class PublicationPolicy : uint8_t {
  /// Algorithm 2: publish a round's batch, wait for *all* of it to be
  /// labeled before computing the next batch ("Parallel").
  kRoundParallel = 0,
  /// Section 5.2: re-plan and publish after every single completed pair
  /// ("Parallel(ID)").
  kInstantDecision = 1,
};

/// The order in which workers complete the published pairs.
enum class CompletionOrder : uint8_t {
  kRandom = 0,            ///< AMT's random HIT assignment
  kNonMatchingFirst = 1,  ///< lowest match-likelihood first ("NF")
};

/// One point of the Figure 15 series, recorded after every completion
/// (abandonments included — an abandoned pickup is a visible event).
struct AvailabilityPoint {
  int64_t num_crowdsourced = 0;  ///< pairs labeled by the crowd so far
  int64_t num_available = 0;     ///< published, not-yet-labeled pairs
  int64_t num_abandoned = 0;     ///< abandoned pickups so far (faults)
};

/// \brief Pair-granular simulation of platform availability (Figure 15).
///
/// Models workers as a sequential stream of completions drawn from the
/// available (published, unlabeled) set according to `completion_order`,
/// while the publication policy decides when new pairs are published.
/// Returns the availability time series; `oracle` provides the labels.
///
/// A non-null `faults` consults the injector's per-pair transient model
/// before each completion: a faulted pickup is abandoned — the pair goes
/// straight back into the available pool and a point is recorded — and
/// the next pickup of that pair flips a fresh attempt coin. `retry`
/// (optional) caps attempts per pair: the attempt after
/// `retry->max_attempts` faults is an escalation and always completes,
/// mirroring the labeling session's retry loop. Null `faults` leaves the
/// simulation byte-identical to the fault-free code.
Result<std::vector<AvailabilityPoint>> SimulateAvailability(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    LabelOracle& oracle, PublicationPolicy publication_policy,
    CompletionOrder completion_order, Rng& rng,
    const FaultInjector* faults = nullptr,
    const RetryPolicy* retry = nullptr);

}  // namespace crowdjoin

#endif  // CROWDJOIN_CROWD_AVAILABILITY_SIM_H_
