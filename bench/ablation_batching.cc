// Ablation for the money/time/quality trade-off the paper's Section 8
// leaves as future work: sweep HIT batch size and assignment replication on
// the simulated platform and report cost, completion time, and F-measure
// for the Transitive campaign on the Product dataset.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/labeling_order.h"
#include "crowd/orchestrator.h"
#include "eval/metrics.h"
#include "eval/workbench.h"

namespace {

using namespace crowdjoin;  // NOLINT(build/namespaces)
using crowdjoin::bench::Unwrap;

}  // namespace

int main(int argc, char** argv) {
  const crowdjoin::bench::Args args(argc, argv);
  const uint64_t seed = args.GetUint64("seed", 42);
  const double threshold = args.GetDouble("threshold", 0.3);

  std::printf("=== Ablation: batching size & replication sweep "
              "(Product, Transitive campaign) ===\n");
  const ExperimentInput input = Unwrap(MakeProductExperimentInput(seed));
  GroundTruthOracle truth = MakeGroundTruthOracle(input.dataset);
  const CandidateSet pairs = FilterByThreshold(input.candidates, threshold);
  const std::vector<int32_t> order = Unwrap(MakeLabelingOrder(
      pairs, OrderKind::kExpected, &truth, /*rng=*/nullptr));

  TablePrinter table({"pairs/HIT", "assignments", "# HITs", "time",
                      "cost", "F-measure"});
  for (int pairs_per_hit : {5, 10, 20, 40}) {
    for (int assignments : {1, 3, 5}) {
      CrowdConfig config;
      config.seed = seed;
      config.pairs_per_hit = pairs_per_hit;
      config.assignments_per_hit = assignments;
      config.false_negative_rate = 0.20;
      config.false_positive_rate = 0.05;
      config.worker_rate_stddev = 0.05;
      const AmtRunStats stats =
          Unwrap(RunTransitiveAmt(pairs, order, config, truth));
      const QualityMetrics quality =
          ComputeQuality(pairs, stats.final_labels, truth);
      table.AddRow({std::to_string(pairs_per_hit),
                    std::to_string(assignments),
                    std::to_string(stats.num_hits),
                    StrFormat("%.1f h", stats.total_hours),
                    StrFormat("$%.2f", stats.total_cost_cents / 100.0),
                    StrFormat("%.2f%%", 100.0 * quality.f_measure)});
    }
  }
  table.Print(std::cout);
  return 0;
}
