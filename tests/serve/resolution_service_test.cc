#include "serve/resolution_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace crowdjoin {
namespace {

ResolutionServiceOptions LowThreshold() {
  ResolutionServiceOptions options;
  options.threshold = 0.3;
  return options;
}

TEST(ResolutionService, IngestAssignsDenseIdsAndFindsNearDuplicates) {
  ResolutionService service(LowThreshold());
  const IngestResult first = service.Ingest("efficient crowdsourcing joins");
  EXPECT_EQ(first.id, 0);
  EXPECT_TRUE(first.candidates.empty());  // empty corpus

  const IngestResult second =
      service.Ingest("efficient crowdsourcing of joins");
  EXPECT_EQ(second.id, 1);
  ASSERT_EQ(second.candidates.size(), 1u);
  EXPECT_EQ(second.candidates[0].id, 0);
  // Tokens: {efficient, crowdsourcing, joins} vs {efficient,
  // crowdsourcing, of, joins} -> J = 3/4.
  EXPECT_DOUBLE_EQ(second.candidates[0].similarity, 0.75);
  // Unlabeled records are their own clusters.
  EXPECT_EQ(second.candidates[0].cluster, 0);

  const IngestResult unrelated = service.Ingest("something else entirely");
  EXPECT_EQ(unrelated.id, 2);
  EXPECT_TRUE(unrelated.candidates.empty());
}

TEST(ResolutionService, LabelsMergeClustersAndTransitivityAnswers) {
  ResolutionService service(LowThreshold());
  service.Ingest("acm sigmod conference on management of data");
  service.Ingest("sigmod conference on management of data");
  service.Ingest("the acm sigmod conference on data management");
  service.Ingest("vldb journal");

  EXPECT_EQ(service.OnPairLabeled(0, 1, Label::kMatching),
            AddOutcome::kApplied);
  EXPECT_EQ(service.OnPairLabeled(1, 2, Label::kMatching),
            AddOutcome::kApplied);
  // Transitivity: (0, 2) needs no crowd question.
  EXPECT_EQ(service.DeducePair(0, 2), Deduction::kMatching);
  EXPECT_EQ(service.OnPairLabeled(0, 2, Label::kMatching),
            AddOutcome::kRedundant);
  EXPECT_EQ(service.OnPairLabeled(2, 3, Label::kNonMatching),
            AddOutcome::kApplied);
  EXPECT_EQ(service.DeducePair(1, 3), Deduction::kNonMatching);

  // All three merged records resolve to the canonical (smallest) id.
  EXPECT_EQ(service.ResolveCluster(0), 0);
  EXPECT_EQ(service.ResolveCluster(1), 0);
  EXPECT_EQ(service.ResolveCluster(2), 0);
  EXPECT_EQ(service.ResolveCluster(3), 3);

  const ServeStats stats = service.Stats();
  EXPECT_EQ(stats.num_records, 4);
  EXPECT_EQ(stats.num_labels, 4);
  EXPECT_EQ(stats.num_clusters, 2);
  EXPECT_EQ(stats.num_conflicts, 0);
}

TEST(ResolutionService, IngestCandidatesCarryClusterAnnotations) {
  ResolutionService service(LowThreshold());
  service.Ingest("international conference on data engineering");
  service.Ingest("intl conference on data engineering");
  service.OnPairLabeled(0, 1, Label::kMatching);

  const IngestResult result =
      service.Ingest("conference on data engineering 2013");
  ASSERT_EQ(result.candidates.size(), 2u);
  // Both candidates belong to one cluster — one crowd question suffices.
  EXPECT_EQ(result.candidates[0].cluster, 0);
  EXPECT_EQ(result.candidates[1].cluster, 0);
}

TEST(ResolutionService, QueryCountsUnknownTokensInTheDenominator) {
  ResolutionService service(LowThreshold());
  service.Ingest("alpha beta");
  const std::vector<ServeCandidate> candidates =
      service.QueryCandidates("alpha beta gamma");
  ASSERT_EQ(candidates.size(), 1u);
  // {alpha, beta} vs {alpha, beta, gamma}: J = 2/3 even though "gamma" was
  // never interned.
  EXPECT_DOUBLE_EQ(candidates[0].similarity, 2.0 / 3.0);
}

TEST(ResolutionService, QueryDoesNotMutateTheCorpus) {
  ResolutionService service(LowThreshold());
  service.Ingest("alpha beta");
  const ServeStats before = service.Stats();
  for (int i = 0; i < 3; ++i) {
    service.QueryCandidates("alpha beta gamma delta");
    (void)service.ResolveCluster(0);
    (void)service.DeducePair(0, 1000);
  }
  const ServeStats after = service.Stats();
  EXPECT_EQ(after.num_records, before.num_records);
  EXPECT_EQ(after.epoch, before.epoch);
  // A repeat of the same query answers identically.
  const auto again = service.QueryCandidates("alpha beta gamma delta");
  ASSERT_EQ(again.size(), 1u);
  EXPECT_DOUBLE_EQ(again[0].similarity, 0.5);
}

TEST(ResolutionService, TopKAndThresholdBoundTheCandidateList) {
  ResolutionServiceOptions options;
  options.threshold = 0.5;
  options.top_k = 2;
  ResolutionService service(options);
  service.Ingest("a b c d");
  service.Ingest("a b c e");
  service.Ingest("a b c f");
  service.Ingest("a x y z");  // J = 1/7 vs the query below: cut by threshold

  const std::vector<ServeCandidate> candidates =
      service.QueryCandidates("a b c d");
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].id, 0);  // exact match first (J = 1)
  EXPECT_DOUBLE_EQ(candidates[0].similarity, 1.0);
  EXPECT_EQ(candidates[1].id, 1);  // tie between 1 and 2 broken by id
}

TEST(ResolutionService, UnseenIdsResolveAsSingletons) {
  ResolutionService service;
  EXPECT_EQ(service.ResolveCluster(12345), 12345);
  EXPECT_EQ(service.DeducePair(5, 6), Deduction::kUndeduced);
}

TEST(ResolutionService, ConflictPolicyFlowsThroughToTheGraph) {
  ResolutionServiceOptions options;
  options.threshold = 0.3;
  options.conflict_policy = ConflictPolicy::kTrustNew;
  ResolutionService service(options);
  service.Ingest("one record");
  service.Ingest("another record");
  service.OnPairLabeled(0, 1, Label::kNonMatching);
  EXPECT_EQ(service.OnPairLabeled(0, 1, Label::kMatching),
            AddOutcome::kConflict);
  // kTrustNew merged anyway.
  EXPECT_EQ(service.DeducePair(0, 1), Deduction::kMatching);
  EXPECT_EQ(service.Stats().num_conflicts, 1);
}

TEST(ResolutionService, BatchedSnapshotsPublishOnlyAtTheBoundary) {
  ResolutionServiceOptions options;
  options.threshold = 0.3;
  options.snapshot_batch_size = 3;
  ResolutionService service(options);
  obs::Counter* flushes =
      service.metrics().GetCounter("serve.snapshot_batch_flushes_total");
  for (int i = 0; i < 4; ++i) service.Ingest("record number " + std::to_string(i));

  // Two labels in: readers still see the pre-batch snapshot.
  service.OnPairLabeled(0, 1, Label::kMatching);
  service.OnPairLabeled(2, 3, Label::kMatching);
  EXPECT_EQ(service.ResolveCluster(1), 1);
  EXPECT_EQ(service.ResolveCluster(3), 3);
  EXPECT_EQ(service.DeducePair(0, 1), Deduction::kUndeduced);
  EXPECT_EQ(flushes->Value(), 0);

  // The third label closes the batch: everything becomes visible at once.
  service.OnPairLabeled(1, 2, Label::kMatching);
  EXPECT_EQ(service.ResolveCluster(1), 0);
  EXPECT_EQ(service.ResolveCluster(3), 0);
  EXPECT_EQ(service.DeducePair(0, 3), Deduction::kMatching);
  EXPECT_EQ(flushes->Value(), 1);
}

TEST(ResolutionService, FlushSnapshotDrainsThePendingTail) {
  ResolutionServiceOptions options;
  options.threshold = 0.3;
  options.snapshot_batch_size = 10;
  ResolutionService service(options);
  obs::Counter* flushes =
      service.metrics().GetCounter("serve.snapshot_batch_flushes_total");
  service.Ingest("alpha beta");
  service.Ingest("alpha beta gamma");

  service.OnPairLabeled(0, 1, Label::kMatching);
  EXPECT_EQ(service.ResolveCluster(1), 1);  // batch still open
  service.FlushSnapshot();
  EXPECT_EQ(service.ResolveCluster(1), 0);
  EXPECT_EQ(flushes->Value(), 1);
  // With nothing pending a flush is a no-op, not a spurious publish.
  service.FlushSnapshot();
  EXPECT_EQ(flushes->Value(), 1);
}

TEST(ResolutionService, IngestPublishesPendingLabelsImmediately) {
  ResolutionServiceOptions options;
  options.threshold = 0.3;
  options.snapshot_batch_size = 100;
  ResolutionService service(options);
  service.Ingest("first record text");
  service.Ingest("second record text");
  service.OnPairLabeled(0, 1, Label::kMatching);
  EXPECT_EQ(service.ResolveCluster(1), 1);  // waiting for the boundary
  // A new record must be resolvable the moment Ingest returns, so the
  // ingest-time publish carries the waiting labels with it.
  service.Ingest("third record text");
  EXPECT_EQ(service.ResolveCluster(1), 0);
  EXPECT_EQ(service.ResolveCluster(2), 2);
}

// Reader threads hammer the query/resolve/deduce surface while the writer
// ingests and labels — the suite runs under TSan in CI, so a data race in
// the snapshot/index protocol fails here.
TEST(ResolutionService, ConcurrentReadersSeeConsistentSnapshots) {
  ResolutionService service(LowThreshold());
  const std::vector<std::string> corpus = {
      "sigmod conference on management of data",
      "acm sigmod conference management data",
      "very large data bases endowment",
      "proceedings of the vldb endowment",
      "international conference on data engineering",
      "icde international conference data engineering",
  };

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_acquire)) {
        const auto candidates =
            service.QueryCandidates(corpus[i % corpus.size()]);
        for (const ServeCandidate& c : candidates) {
          if (c.similarity <= 0.0 || c.similarity > 1.0) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
          // The canonical cluster id never exceeds the member id.
          if (service.ResolveCluster(c.id) > c.id) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
        ++i;
      }
    });
  }

  for (int repeat = 0; repeat < 20; ++repeat) {
    std::vector<ObjectId> ids;
    for (const std::string& text : corpus) {
      ids.push_back(service.Ingest(text).id);
    }
    // Pair up the duplicates (0,1), (2,3), (4,5) of this batch.
    for (size_t k = 0; k + 1 < ids.size(); k += 2) {
      service.OnPairLabeled(ids[k], ids[k + 1], Label::kMatching);
    }
  }
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);

  const ServeStats stats = service.Stats();
  EXPECT_EQ(stats.num_records, 120);
  EXPECT_EQ(stats.num_labels, 60);
}

}  // namespace
}  // namespace crowdjoin
