#ifndef CROWDJOIN_CROWD_FAULTS_H_
#define CROWDJOIN_CROWD_FAULTS_H_

#include <cstdint>

#include "core/retry_policy.h"
#include "graph/label.h"

namespace crowdjoin {

/// \brief Seeded description of what goes wrong in a crowd campaign.
///
/// The simulated marketplace is perfectly reliable by default; a
/// `FaultPlan` makes it misbehave in the ways live microtask markets do
/// (Marcus et al., "Human-powered Sorts and Joins"): workers walk away from
/// accepted assignments, a slice of the pool straggles, a slice spams
/// (inverts answers), HITs expire, and publish calls flake. Every field
/// defaults to "off", and a disabled plan is guaranteed byte-identical to
/// the pre-fault simulator: all fault decisions are pure hashes of
/// (fault seed, identifiers), so no RNG stream is consumed — not even
/// zero-probability coins perturb existing draws.
struct FaultPlan {
  /// Seed for every fault coin. Independent of the campaign seed so the
  /// same workload can be replayed under different fault weather.
  uint64_t seed = 0;

  /// Probability an accepted assignment is abandoned: the worker's time is
  /// spent but no answers come back, and the assignment slot reopens.
  double abandonment_rate = 0.0;

  /// Fraction of workers that straggle, and how much slower they are.
  /// Stragglers multiply their per-assignment service time; with an expiry
  /// deadline set they are the workers that blow it.
  double straggler_rate = 0.0;
  double straggler_multiplier = 4.0;

  /// Fraction of workers that spam: they invert every answer they give.
  /// Spam is *not* transient — retrying the same worker re-inverts — so it
  /// is excluded from the fault-masked equivalence guarantee and instead
  /// mitigated by majority voting plus `RetryPolicy::reask_margin`.
  double spammer_rate = 0.0;

  /// HITs unanswered this many simulated hours after publication expire
  /// and must be reposted. 0 disables expiry.
  double hit_expiry_hours = 0.0;

  /// Probability one `PublishHit` call fails transiently.
  double publish_failure_rate = 0.0;

  /// True when any fault is switched on.
  bool enabled() const {
    return abandonment_rate > 0.0 || straggler_rate > 0.0 ||
           spammer_rate > 0.0 || hit_expiry_hours > 0.0 ||
           publish_failure_rate > 0.0;
  }

  /// True when the plan injects only transient faults — the precondition
  /// for fault-masked equivalence (retries provably reproduce the
  /// fault-free labels). Spam is the one persistent fault.
  bool transient_only() const { return spammer_rate == 0.0; }
};

/// \brief Turns a `FaultPlan` into concrete deterministic decisions.
///
/// Every decision is a counter-based coin: SplitMix64 chained over
/// (plan seed, a domain tag, the identifying keys), following the
/// `HashNoisyOracle` construction. Decisions are therefore independent of
/// call order, thread count, and of each other, and asking the same
/// question twice gives the same answer — which is what makes fault runs
/// replayable and the determinism suite possible.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }
  bool enabled() const { return plan_.enabled(); }

  /// Whether worker `worker` is a spammer (inverts every answer).
  bool WorkerIsSpammer(int worker) const;

  /// Service-time multiplier for `worker`: `straggler_multiplier` when the
  /// worker straggles, 1.0 otherwise.
  double WorkerServiceMultiplier(int worker) const;

  /// Whether `worker`'s acceptance of HIT `hit_key` is abandoned.
  /// `attempt` distinguishes re-acceptances after earlier abandonments of
  /// the same (hit, worker): keying it in guarantees a worker does not
  /// abandon the same HIT forever.
  bool AssignmentAbandoned(uint64_t hit_key, int worker, int attempt) const;

  /// Whether crowd attempt `attempt` (1-based) at pair (a, b) fails
  /// transiently — the abandonment coin, or the straggler-blows-deadline
  /// coin when an expiry is configured. This is the per-pair fault model
  /// the `LabelingSession` retry loop consults; the pair is normalized so
  /// (a, b) and (b, a) share fate.
  bool PairAttemptFails(ObjectId a, ObjectId b, int attempt) const;

  /// Whether publish call number `publish_seq`, attempt `attempt`, fails.
  bool PublishFails(uint64_t publish_seq, int attempt) const;

  /// This injector's pair-attempt model as the closure `core` understands.
  /// Null when the plan has no transient per-pair faults, so sessions keep
  /// their historical single-attempt path.
  AttemptFaultFn AsAttemptFaultFn() const;

 private:
  /// Uniform [0, 1) from a SplitMix64 chain over (seed, tag, k1, k2, k3).
  double HashUniform(uint64_t tag, uint64_t k1, uint64_t k2,
                     uint64_t k3) const;

  FaultPlan plan_;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_CROWD_FAULTS_H_
