#ifndef CROWDJOIN_TEXT_TFIDF_H_
#define CROWDJOIN_TEXT_TFIDF_H_

#include <string>
#include <unordered_map>
#include <vector>

namespace crowdjoin {

/// \brief TF-IDF weighting model fit over a corpus of token documents.
///
/// Used to weight rare, discriminative tokens (model codes, author names)
/// higher than ubiquitous ones when scoring record similarity.
class TfIdfModel {
 public:
  /// Fits document frequencies over `documents` (each a token list;
  /// duplicate tokens within a document count once).
  static TfIdfModel Fit(const std::vector<std::vector<std::string>>& documents);

  /// Smoothed inverse document frequency: log(1 + N / (1 + df(token))).
  /// Unseen tokens get the maximum idf.
  double Idf(const std::string& token) const;

  /// TF-IDF cosine similarity of two token lists (term frequency = count
  /// within the list). Returns a value in [0, 1]; 1.0 for two empty lists.
  double Cosine(const std::vector<std::string>& a,
                const std::vector<std::string>& b) const;

  /// Number of documents the model was fit on.
  size_t num_documents() const { return num_documents_; }

 private:
  std::unordered_map<std::string, int64_t> document_frequency_;
  size_t num_documents_ = 0;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_TEXT_TFIDF_H_
