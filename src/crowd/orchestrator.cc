#include "crowd/orchestrator.h"

#include <cmath>
#include <cstdlib>
#include <deque>
#include <unordered_map>
#include <utility>

#include "common/macros.h"
#include "crowd/platform.h"
#include "obs/metrics.h"

namespace crowdjoin {

namespace {

PairTask MakeTask(const CandidateSet& pairs, int32_t pos) {
  const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
  return {pos, pair.a, pair.b, pair.likelihood};
}

// Pops up to `limit` positions from the front of `queue` into one HIT.
std::vector<PairTask> TakeHitTasks(const CandidateSet& pairs,
                                   std::deque<int32_t>& queue, int limit) {
  std::vector<PairTask> tasks;
  while (!queue.empty() && static_cast<int>(tasks.size()) < limit) {
    tasks.push_back(MakeTask(pairs, queue.front()));
    queue.pop_front();
  }
  return tasks;
}

LabelingSession MakeInstantSession() {
  LabelingSessionOptions options;
  options.schedule = SchedulePolicy::kInstantDecision;
  return LabelingSession(options);
}

// Recovery-path telemetry for the HIT pump.
struct PumpMetrics {
  obs::Counter* publish_retries_total;
  obs::Counter* hits_reposted_total;
  obs::Counter* reask_hits_total;
  obs::Histogram* retry_backoff_us;

  static PumpMetrics& Get() {
    static PumpMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return PumpMetrics{registry.GetCounter("crowd.publish_retries_total"),
                         registry.GetCounter("crowd.hits_reposted_total"),
                         registry.GetCounter("crowd.reask_hits_total"),
                         registry.GetHistogram("crowd.retry_backoff_us")};
    }();
    return metrics;
  }
};

/// \brief The fault-recovery pump every AMT campaign publishes through.
///
/// Wraps a `CrowdPlatform` and turns its raw HIT completions into *final*
/// per-pair answers: transient publish failures are retried (exponential
/// backoff, accounted but never slept — simulated time belongs to the
/// platform), expired HITs are reposted up to `retry.max_attempts`, and
/// pairs whose vote margin is within `retry.reask_margin` of a tie are
/// republished once and finalized by combined majority over both HITs'
/// assignments. With no fault plan and `reask_margin == 0` every branch
/// is dead and the pump is a pass-through — campaigns without faults are
/// byte-identical to the pre-fault code.
class HitDriver {
 public:
  HitDriver(CrowdPlatform& platform, const CrowdConfig& config)
      : platform_(platform), retry_(config.retry) {
    if (retry_.seed == 0) retry_.seed = config.seed;
  }

  /// Publishes one HIT, retrying transient (`kInternal`) failures.
  Status Publish(std::vector<PairTask> tasks) {
    Pending pending;
    pending.tasks = std::move(tasks);
    return PublishTracked(std::move(pending));
  }

  /// HITs published (or republished) and not yet finalized.
  bool HasInFlight() const { return in_flight_ > 0; }

  /// Runs the platform until at least one pair answer becomes final and
  /// returns that batch; empty when nothing is in flight.
  Result<std::vector<CompletedPair>> WaitNextBatch();

  int64_t num_publish_retries() const { return num_publish_retries_; }
  int64_t num_hits_reposted() const { return num_hits_reposted_; }
  int64_t num_reask_hits() const { return num_reask_hits_; }

 private:
  struct Pending {
    std::vector<PairTask> tasks;
    int attempt = 1;     // repost attempts after expiry
    bool is_reask = false;
    // Reask HITs carry the original HIT's votes, merged at finalize.
    std::vector<int> prior_votes;
    int prior_assignments = 0;
  };

  Status PublishTracked(Pending pending);

  CrowdPlatform& platform_;
  RetryPolicy retry_;
  std::unordered_map<int64_t, Pending> pending_;
  int64_t in_flight_ = 0;
  int64_t num_publish_retries_ = 0;
  int64_t num_hits_reposted_ = 0;
  int64_t num_reask_hits_ = 0;
};

Status HitDriver::PublishTracked(Pending pending) {
  int attempt = 1;
  while (true) {
    Result<int64_t> published = platform_.PublishHit(pending.tasks);
    if (published.ok()) {
      pending_.emplace(*published, std::move(pending));
      ++in_flight_;
      return Status::OK();
    }
    if (published.status().code() != StatusCode::kInternal ||
        attempt >= retry_.max_attempts) {
      return published.status();
    }
    ++attempt;
    ++num_publish_retries_;
    PumpMetrics& metrics = PumpMetrics::Get();
    metrics.publish_retries_total->Inc();
    metrics.retry_backoff_us->Observe(retry_.BackoffUs(
        attempt, static_cast<uint64_t>(pending.tasks.front().position)));
  }
}

Result<std::vector<CompletedPair>> HitDriver::WaitNextBatch() {
  while (in_flight_ > 0) {
    const std::optional<HitResult> completed =
        platform_.RunUntilNextHitCompletion();
    // In-flight HITs always have pending events: abandonment immediately
    // reschedules the reopened slot and expiry surfaces exactly one
    // (expired) result, so the platform cannot go idle under us.
    CJ_CHECK(completed.has_value());
    const auto it = pending_.find(completed->hit_id);
    CJ_CHECK(it != pending_.end());
    Pending pending = std::move(it->second);
    pending_.erase(it);
    --in_flight_;

    if (completed->expired && pending.attempt < retry_.max_attempts) {
      ++num_hits_reposted_;
      PumpMetrics& metrics = PumpMetrics::Get();
      metrics.hits_reposted_total->Inc();
      metrics.retry_backoff_us->Observe(retry_.BackoffUs(
          pending.attempt + 1,
          static_cast<uint64_t>(pending.tasks.front().position)));
      ++pending.attempt;
      CJ_RETURN_IF_ERROR(PublishTracked(std::move(pending)));
      continue;
    }

    CJ_CHECK(completed->pairs.size() == pending.tasks.size());
    std::vector<CompletedPair> final_pairs;
    Pending reask;
    const int total_assignments =
        completed->num_assignments + pending.prior_assignments;
    for (size_t t = 0; t < completed->pairs.size(); ++t) {
      const int votes = completed->pairs[t].matching_votes +
                        (pending.is_reask
                             ? pending.prior_votes[static_cast<size_t>(t)]
                             : 0);
      // A first-round pair too close to a tie gets one extra HIT's worth
      // of assignments before its label is trusted. Expired partials and
      // reask results themselves are final — re-asking those again could
      // ping-pong forever.
      if (!pending.is_reask && !completed->expired &&
          retry_.reask_margin > 0 &&
          std::abs(2 * votes - total_assignments) <= retry_.reask_margin) {
        reask.tasks.push_back(pending.tasks[t]);
        reask.prior_votes.push_back(votes);
        continue;
      }
      final_pairs.push_back({completed->pairs[t].position,
                             2 * votes > total_assignments
                                 ? Label::kMatching
                                 : Label::kNonMatching,
                             votes});
    }
    if (!reask.tasks.empty()) {
      reask.is_reask = true;
      reask.prior_assignments = completed->num_assignments;
      ++num_reask_hits_;
      PumpMetrics::Get().reask_hits_total->Inc();
      CJ_RETURN_IF_ERROR(PublishTracked(std::move(reask)));
    }
    if (!final_pairs.empty()) return final_pairs;
  }
  return std::vector<CompletedPair>{};
}

// Copies a fully-labeled report's labels into the campaign stats.
void FillAmtStats(const LabelingReport& report, CrowdPlatform& platform,
                  const HitDriver& driver, AmtRunStats& stats) {
  stats.final_labels.reserve(report.outcomes.size());
  for (const std::optional<PairOutcome>& outcome : report.outcomes) {
    CJ_CHECK(outcome.has_value());
    stats.final_labels.push_back(outcome->label);
  }
  stats.num_hits = platform.num_hits_published();
  stats.num_assignments = platform.num_assignments_completed();
  stats.total_hours = platform.now_hours();
  stats.total_cost_cents = platform.total_cost_cents();
  stats.num_crowdsourced_pairs = report.num_crowdsourced;
  stats.num_deduced_pairs = report.num_deduced;
  stats.num_publish_retries = driver.num_publish_retries();
  stats.num_hits_reposted = driver.num_hits_reposted();
  stats.num_reask_hits = driver.num_reask_hits();
  stats.num_assignments_abandoned = platform.num_assignments_abandoned();
  stats.num_hits_expired = platform.num_hits_expired();
}

}  // namespace

Result<AmtRunStats> RunNonTransitiveAmt(const CandidateSet& pairs,
                                        const CrowdConfig& config,
                                        const GroundTruthOracle& truth) {
  CrowdPlatform platform(config, &truth);
  HitDriver driver(platform, config);
  std::deque<int32_t> queue;
  for (size_t i = 0; i < pairs.size(); ++i) {
    queue.push_back(static_cast<int32_t>(i));
  }
  while (!queue.empty()) {
    CJ_RETURN_IF_ERROR(
        driver.Publish(TakeHitTasks(pairs, queue, config.pairs_per_hit)));
  }

  AmtRunStats stats;
  stats.final_labels.assign(pairs.size(), Label::kNonMatching);
  while (driver.HasInFlight()) {
    CJ_ASSIGN_OR_RETURN(const std::vector<CompletedPair> batch,
                        driver.WaitNextBatch());
    for (const CompletedPair& pair : batch) {
      stats.final_labels[static_cast<size_t>(pair.position)] = pair.label;
    }
  }
  stats.num_hits = platform.num_hits_published();
  stats.num_assignments = platform.num_assignments_completed();
  stats.total_hours = platform.now_hours();
  stats.total_cost_cents = platform.total_cost_cents();
  stats.num_crowdsourced_pairs = static_cast<int64_t>(pairs.size());
  stats.num_deduced_pairs = 0;
  stats.num_publish_retries = driver.num_publish_retries();
  stats.num_hits_reposted = driver.num_hits_reposted();
  stats.num_reask_hits = driver.num_reask_hits();
  stats.num_assignments_abandoned = platform.num_assignments_abandoned();
  stats.num_hits_expired = platform.num_hits_expired();
  return stats;
}

Result<AmtRunStats> RunTransitiveAmt(const CandidateSet& pairs,
                                     const std::vector<int32_t>& order,
                                     const CrowdConfig& config,
                                     const GroundTruthOracle& truth) {
  CrowdPlatform platform(config, &truth);
  HitDriver driver(platform, config);
  LabelingSession session = MakeInstantSession();
  std::deque<int32_t> buffer;

  CJ_ASSIGN_OR_RETURN(const std::vector<int32_t> initial,
                      session.Start(&pairs, order));
  buffer.insert(buffer.end(), initial.begin(), initial.end());

  while (true) {
    // Publish full HITs; flush a partial HIT only when the platform would
    // otherwise go idle (nothing in flight to produce more work).
    while (static_cast<int>(buffer.size()) >= config.pairs_per_hit) {
      CJ_RETURN_IF_ERROR(
          driver.Publish(TakeHitTasks(pairs, buffer, config.pairs_per_hit)));
    }
    if (!driver.HasInFlight()) {
      if (buffer.empty()) break;  // campaign complete
      CJ_RETURN_IF_ERROR(
          driver.Publish(TakeHitTasks(pairs, buffer, config.pairs_per_hit)));
    }
    CJ_ASSIGN_OR_RETURN(const std::vector<CompletedPair> batch,
                        driver.WaitNextBatch());
    for (const CompletedPair& pair : batch) {
      CJ_ASSIGN_OR_RETURN(const std::vector<int32_t> fresh,
                          session.OnPairLabeled(pair.position, pair.label));
      buffer.insert(buffer.end(), fresh.begin(), fresh.end());
    }
  }

  CJ_ASSIGN_OR_RETURN(const LabelingReport labeling, session.Finish());
  AmtRunStats stats;
  FillAmtStats(labeling, platform, driver, stats);
  return stats;
}

Result<AmtRunStats> RunParallelAmt(const CandidateSet& pairs,
                                   const std::vector<int32_t>& order,
                                   const CrowdConfig& config,
                                   const GroundTruthOracle& truth) {
  CrowdPlatform platform(config, &truth);
  HitDriver driver(platform, config);
  // Label resolution comes from the platform (which already services a
  // round's HITs concurrently via the simulated worker pool), so the
  // session is constructed without a thread count — config.num_threads
  // applies to oracle-driven local labeling (RunLocalParallelLabeling).
  LabelingSessionOptions session_options;
  session_options.schedule = SchedulePolicy::kRoundParallel;
  LabelingSession session(session_options);
  CJ_ASSIGN_OR_RETURN(
      const LabelingReport labeling,
      session.RunWithBatchSource(
          pairs, order,
          [&](const std::vector<int32_t>& batch)
              -> Result<std::vector<Label>> {
            // Publish the whole round simultaneously, batched into HITs.
            std::deque<int32_t> queue(batch.begin(), batch.end());
            while (!queue.empty()) {
              CJ_RETURN_IF_ERROR(driver.Publish(
                  TakeHitTasks(pairs, queue, config.pairs_per_hit)));
            }
            // Algorithm 2's round barrier: wait for every HIT (including
            // reposts and re-asks) before the deduction scan, collecting
            // final votes by batch slot.
            std::unordered_map<int32_t, size_t> slot_of;
            for (size_t i = 0; i < batch.size(); ++i) {
              slot_of[batch[i]] = i;
            }
            std::vector<Label> labels(batch.size(), Label::kNonMatching);
            size_t num_answered = 0;
            while (driver.HasInFlight()) {
              CJ_ASSIGN_OR_RETURN(const std::vector<CompletedPair> finals,
                                  driver.WaitNextBatch());
              for (const CompletedPair& pair : finals) {
                const auto it = slot_of.find(pair.position);
                CJ_CHECK(it != slot_of.end());
                labels[it->second] = pair.label;
                ++num_answered;
              }
            }
            // Every slot answered exactly once — an unanswered slot would
            // otherwise silently keep the kNonMatching default.
            CJ_CHECK(num_answered == batch.size());
            return labels;
          }));

  AmtRunStats stats;
  FillAmtStats(labeling, platform, driver, stats);
  return stats;
}

Result<LabelingReport> RunLocalParallelLabeling(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    const CrowdConfig& config, const GroundTruthOracle& truth) {
  LabelingSessionOptions session_options;
  session_options.schedule = SchedulePolicy::kRoundParallel;
  session_options.num_threads = config.num_threads;
  if (config.faults.enabled()) {
    const FaultInjector injector(config.faults);
    session_options.attempt_fault = injector.AsAttemptFaultFn();
    session_options.retry = config.retry;
    if (session_options.retry.seed == 0) {
      session_options.retry.seed = config.seed;
    }
  }
  LabelingSession session(session_options);
  if (config.false_negative_rate == 0.0 &&
      config.false_positive_rate == 0.0) {
    GroundTruthOracle oracle = truth;
    return session.Run(pairs, order, oracle);
  }
  HashNoisyOracle oracle(&truth, config.false_negative_rate,
                         config.false_positive_rate, config.seed);
  return session.Run(pairs, order, oracle);
}

Result<StreamingCampaignStats> RunStreamingCampaign(
    RecordSource& source, const RecordScorer* scorer,
    const StreamingCampaignConfig& config) {
  StreamingCampaignStats stats;

  if (config.label_tasks_per_round > 0) {
    // Round-by-round mode: candidates flow from the sharded join's probe
    // tasks straight into the labeling session; the candidate set is never
    // materialized (peak candidate memory = one round).
    if (scorer != nullptr) {
      return Status::InvalidArgument(
          "round-by-round labeling requires the scorer-free path");
    }
    StreamingCandidateFeed::Options feed_options;
    feed_options.candidates = config.candidates;
    feed_options.sharding = config.sharding;
    feed_options.tasks_per_round = config.label_tasks_per_round;
    CJ_ASSIGN_OR_RETURN(
        const std::unique_ptr<StreamingCandidateFeed> feed,
        StreamingCandidateFeed::Open(source, feed_options));
    stats.entity_of = feed->entity_of();
    stats.num_records = feed->num_records();

    const GroundTruthOracle truth(stats.entity_of);
    Rng order_rng(config.crowd.seed);
    LabelingSessionOptions session_options;
    session_options.schedule = SchedulePolicy::kRoundParallel;
    session_options.num_threads = config.crowd.num_threads;
    if (config.crowd.faults.enabled()) {
      // The per-pair transient fault model: faulted attempts burn backoff
      // (and retry accounting) but never an oracle call, so a transient-
      // only plan reproduces the fault-free labels exactly.
      const FaultInjector injector(config.crowd.faults);
      session_options.attempt_fault = injector.AsAttemptFaultFn();
      session_options.retry = config.crowd.retry;
      if (session_options.retry.seed == 0) {
        session_options.retry.seed = config.crowd.seed;
      }
    }
    const SessionCheckpointOptions* checkpoint =
        config.checkpoint.path.empty() ? nullptr : &config.checkpoint;
    LabelingSession session(session_options);
    if (config.crowd.false_negative_rate == 0.0 &&
        config.crowd.false_positive_rate == 0.0) {
      GroundTruthOracle oracle = truth;
      CJ_ASSIGN_OR_RETURN(stats.labeling,
                          session.RunStream(*feed, config.order, oracle,
                                            &truth, &order_rng, checkpoint));
    } else {
      HashNoisyOracle oracle(&truth, config.crowd.false_negative_rate,
                             config.crowd.false_positive_rate,
                             config.crowd.seed);
      CJ_ASSIGN_OR_RETURN(stats.labeling,
                          session.RunStream(*feed, config.order, oracle,
                                            &truth, &order_rng, checkpoint));
    }
    stats.num_candidates = feed->num_candidates();
    return stats;
  }

  CJ_ASSIGN_OR_RETURN(
      stats.candidates,
      GenerateCandidatesStreaming(source, scorer, config.candidates,
                                  config.sharding, &stats.entity_of));
  stats.num_records = static_cast<int64_t>(stats.entity_of.size());
  stats.num_candidates = static_cast<int64_t>(stats.candidates.size());

  const GroundTruthOracle truth(stats.entity_of);
  Rng order_rng(config.crowd.seed);
  CJ_ASSIGN_OR_RETURN(
      const std::vector<int32_t> order,
      MakeLabelingOrder(stats.candidates, config.order, &truth, &order_rng));
  CJ_ASSIGN_OR_RETURN(
      stats.labeling,
      RunLocalParallelLabeling(stats.candidates, order, config.crowd, truth));
  return stats;
}

Result<AmtRunStats> RunNonParallelAmt(const CandidateSet& pairs,
                                      const std::vector<int32_t>& order,
                                      const CrowdConfig& config,
                                      const GroundTruthOracle& truth) {
  // Determine the crowdsourced pair sequence with a synchronous (instant)
  // ground-truth run of the same schedule Parallel(ID) uses, so both
  // publication strategies pay for exactly the same HITs (Section 6.4).
  LabelingSession session = MakeInstantSession();
  std::deque<int32_t> pending;
  std::vector<int32_t> crowdsourced_sequence;
  CJ_ASSIGN_OR_RETURN(const std::vector<int32_t> initial,
                      session.Start(&pairs, order));
  pending.insert(pending.end(), initial.begin(), initial.end());
  while (!pending.empty()) {
    const int32_t pos = pending.front();
    pending.pop_front();
    crowdsourced_sequence.push_back(pos);
    const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
    CJ_ASSIGN_OR_RETURN(
        const std::vector<int32_t> fresh,
        session.OnPairLabeled(pos, truth.Truth(pair.a, pair.b)));
    pending.insert(pending.end(), fresh.begin(), fresh.end());
  }
  CJ_ASSIGN_OR_RETURN(const LabelingReport labeling, session.Finish());

  // Publish those HITs strictly one at a time.
  CrowdPlatform platform(config, &truth);
  HitDriver driver(platform, config);
  std::deque<int32_t> queue(crowdsourced_sequence.begin(),
                            crowdsourced_sequence.end());
  while (!queue.empty()) {
    CJ_RETURN_IF_ERROR(
        driver.Publish(TakeHitTasks(pairs, queue, config.pairs_per_hit)));
    while (driver.HasInFlight()) {
      CJ_ASSIGN_OR_RETURN(const std::vector<CompletedPair> batch,
                          driver.WaitNextBatch());
      (void)batch;
    }
  }

  AmtRunStats stats;
  FillAmtStats(labeling, platform, driver, stats);
  return stats;
}

}  // namespace crowdjoin
