#ifndef CROWDJOIN_CORE_RETRY_POLICY_H_
#define CROWDJOIN_CORE_RETRY_POLICY_H_

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "graph/label.h"

namespace crowdjoin {

/// \brief Decides whether the crowd attempt number `attempt` (1-based) for
/// pair (a, b) fails transiently — abandonment, straggling past the HIT
/// deadline, expiry. A failed attempt costs wall-clock (backoff) but never
/// produces a label; the caller re-asks under its `RetryPolicy`.
///
/// Injected by the crowd layer (see `FaultInjector::AsAttemptFaultFn` in
/// crowd/faults.h); `core` only sees this closure so the dependency arrow
/// keeps pointing crowd → core. A null function means no faults: the
/// labeling drivers then take their historical single-attempt path, byte
/// for byte.
using AttemptFaultFn = std::function<bool(ObjectId a, ObjectId b, int attempt)>;

/// \brief Knobs for re-asking a pair whose crowd attempt failed.
///
/// The backoff schedule is classic exponential-with-jitter, but the jitter
/// is *deterministic*: a pure hash of (seed, pair, attempt), never a shared
/// RNG stream, so retry timing is identical across runs and thread counts.
/// In simulation the backoff is accounted (crowd.retry_backoff_us) rather
/// than slept.
struct RetryPolicy {
  /// Attempts that may fault. Once a pair has burned through
  /// `max_attempts` transient failures the next ask is escalated to a
  /// trusted path that cannot fault (in simulation: the oracle answers
  /// unconditionally), so campaigns always terminate and transient faults
  /// are fully masked.
  int max_attempts = 4;

  /// First retry waits `base_backoff_us`, then multiplies per attempt.
  int64_t base_backoff_us = 1000;
  double backoff_multiplier = 2.0;

  /// Uniform jitter as a fraction of the computed backoff, in
  /// [1 - jitter, 1 + jitter]. Deterministic per (seed, key, attempt).
  double jitter_fraction = 0.25;

  /// Seed for the jitter hash. The orchestrator defaults this to the
  /// campaign seed so one knob reproduces a whole run.
  uint64_t seed = 0;

  /// Majority-vote margin at or below which the orchestrator re-asks a
  /// HIT's conflicting pair (|matching − non-matching votes| ≤ margin).
  /// 0 disables quorum re-asks.
  int reask_margin = 0;

  /// Backoff before retry number `attempt` (attempt ≥ 2; attempt 1 is the
  /// initial ask and waits nothing) for the retry stream identified by
  /// `key` (e.g. a hash of the pair). Deterministic.
  int64_t BackoffUs(int attempt, uint64_t key) const {
    if (attempt <= 1) return 0;
    double backoff = static_cast<double>(base_backoff_us);
    for (int i = 2; i < attempt; ++i) backoff *= backoff_multiplier;
    uint64_t state = seed ^ (key * 0x9E3779B97F4A7C15ull) ^
                     static_cast<uint64_t>(attempt);
    const uint64_t h = SplitMix64(state);
    const double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0,1)
    const double jitter = 1.0 + jitter_fraction * (2.0 * unit - 1.0);
    return static_cast<int64_t>(backoff * jitter);
  }
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_CORE_RETRY_POLICY_H_
