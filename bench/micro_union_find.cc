// Microbenchmark: UnionFind under labeling-shaped op sequences — the
// substrate cost of every Deduce/Add the labeling framework performs.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "graph/union_find.h"

namespace crowdjoin {
namespace {

void BM_UnionFindMixed(benchmark::State& state) {
  const auto n = static_cast<int32_t>(state.range(0));
  Rng rng(99);
  std::vector<std::pair<int32_t, int32_t>> ops;
  ops.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    ops.emplace_back(static_cast<int32_t>(rng.Index(static_cast<size_t>(n))),
                     static_cast<int32_t>(rng.Index(static_cast<size_t>(n))));
  }
  for (auto _ : state) {
    UnionFind uf(n);
    for (size_t i = 0; i < ops.size(); ++i) {
      // 1 union per 3 finds, roughly the framework's Deduce:Add ratio.
      if (i % 4 == 0) {
        uf.Union(ops[i].first, ops[i].second);
      } else {
        benchmark::DoNotOptimize(uf.Same(ops[i].first, ops[i].second));
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ops.size()));
}
BENCHMARK(BM_UnionFindMixed)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_UnionFindAdversarialChain(benchmark::State& state) {
  // Sequential chain unions followed by finds from the deep end: stresses
  // path compression.
  const auto n = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    UnionFind uf(n);
    for (int32_t i = 0; i + 1 < n; ++i) uf.Union(i, i + 1);
    int64_t sum = 0;
    for (int32_t i = 0; i < n; ++i) sum += uf.Find(i);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UnionFindAdversarialChain)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace
}  // namespace crowdjoin

BENCHMARK_MAIN();
