#ifndef CROWDJOIN_CORE_LABELING_RESULT_H_
#define CROWDJOIN_CORE_LABELING_RESULT_H_

#include <cstdint>
#include <vector>

#include "graph/label.h"

namespace crowdjoin {

/// How a pair's final label was obtained (Section 2.3's terminology).
enum class LabelSource : uint8_t {
  kCrowdsourced = 0,  ///< asked to (and billed on) the crowd platform
  kDeduced = 1,       ///< inferred for free via transitive relations
};

/// Final label + provenance of one candidate pair.
struct PairOutcome {
  Label label = Label::kNonMatching;
  LabelSource source = LabelSource::kCrowdsourced;

  friend bool operator==(const PairOutcome&, const PairOutcome&) = default;
};

/// \brief Output of a labeling run over a candidate set.
///
/// `outcomes[i]` describes the pair at *position i of the candidate set*
/// (not of the labeling order).
struct LabelingResult {
  std::vector<PairOutcome> outcomes;
  int64_t num_crowdsourced = 0;
  int64_t num_deduced = 0;
  /// Contradictory labels encountered while building the ClusterGraph
  /// (only possible with noisy oracles).
  int64_t num_conflicts = 0;
  /// Pairs crowdsourced per round of the parallel labeler; the sequential
  /// labeler reports one entry per crowdsourced pair (all 1s), matching the
  /// Non-Parallel series of Figures 13–14.
  std::vector<int64_t> crowdsourced_per_iteration;

  /// Field-wise equality — the equivalence the parallel labeler's
  /// thread-count-independence contract (and its tests) is stated in.
  friend bool operator==(const LabelingResult&,
                         const LabelingResult&) = default;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_CORE_LABELING_RESULT_H_
