// The headline fault-tolerance invariant: for any transient-only fault
// plan, a retried campaign's final report is identical to the fault-free
// run's — at every thread count, for every seed tried. Transient faults
// (abandonment, straggling past a deadline, flaky publishes) cost backoff
// and wall clock but never change a label, because faulted attempts never
// reach the oracle and the post-max-attempts ask escalates.

#include <gtest/gtest.h>

#include <numeric>

#include "crowd/orchestrator.h"
#include "eval/metrics.h"
#include "tests/core/test_fixtures.h"

namespace crowdjoin {
namespace {

using testing_fixtures::MakeRandomInstance;

std::vector<int32_t> IdentityOrder(size_t n) {
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

FaultPlan AbandonmentPlan(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.abandonment_rate = 0.3;
  return plan;
}

FaultPlan StragglerExpiryPlan(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.straggler_rate = 0.4;
  plan.straggler_multiplier = 6.0;
  plan.hit_expiry_hours = 2.0;
  return plan;
}

FaultPlan KitchenSinkTransientPlan(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.abandonment_rate = 0.2;
  plan.straggler_rate = 0.3;
  plan.hit_expiry_hours = 4.0;
  plan.publish_failure_rate = 0.2;
  return plan;
}

TEST(FaultEquivalence, TransientPlansAreMaskedAtEveryThreadCount) {
  for (const uint64_t seed : {uint64_t{101}, uint64_t{202}}) {
    const auto instance =
        MakeRandomInstance(seed, /*num_objects=*/40, /*num_entities=*/8,
                           /*num_pairs=*/170);
    GroundTruthOracle truth(instance.entity_of);
    const auto order = IdentityOrder(instance.pairs.size());

    for (const double error_rate : {0.0, 0.2}) {
      CrowdConfig config;
      config.seed = seed;
      config.false_negative_rate = error_rate;
      config.false_positive_rate = error_rate;
      config.num_threads = 1;
      const LabelingReport fault_free =
          RunLocalParallelLabeling(instance.pairs, order, config, truth)
              .value();

      for (const FaultPlan& plan :
           {AbandonmentPlan(seed), StragglerExpiryPlan(seed),
            KitchenSinkTransientPlan(seed)}) {
        ASSERT_TRUE(plan.transient_only());
        for (const int threads : {1, 2, 4, 8}) {
          CrowdConfig faulted = config;
          faulted.faults = plan;
          faulted.num_threads = threads;
          const LabelingReport report =
              RunLocalParallelLabeling(instance.pairs, order, faulted, truth)
                  .value();
          EXPECT_TRUE(report == fault_free)
              << "seed=" << seed << " error_rate=" << error_rate
              << " threads=" << threads
              << " plan{abandon=" << plan.abandonment_rate
              << " straggle=" << plan.straggler_rate
              << " expiry=" << plan.hit_expiry_hours
              << " publish=" << plan.publish_failure_rate << "}";
        }
      }
    }
  }
}

TEST(FaultEquivalence, DifferentFaultSeedsSameLabels) {
  // Changing only the fault weather must never change the outcome, only
  // the (accounted) recovery work.
  const auto instance = MakeRandomInstance(77, 30, 6, 120);
  GroundTruthOracle truth(instance.entity_of);
  const auto order = IdentityOrder(instance.pairs.size());
  CrowdConfig config;
  config.false_negative_rate = 0.15;
  config.false_positive_rate = 0.15;
  config.faults = AbandonmentPlan(1);
  const LabelingReport first =
      RunLocalParallelLabeling(instance.pairs, order, config, truth).value();
  config.faults.seed = 2;
  const LabelingReport second =
      RunLocalParallelLabeling(instance.pairs, order, config, truth).value();
  EXPECT_TRUE(first == second);
}

TEST(FaultEquivalence, StreamedCampaignMasksTransientFaultsToo) {
  // The same invariant through the streaming round-by-round drive (the
  // path scale_sweep and the CI campaign smoke exercise).
  const auto instance = MakeRandomInstance(88, 30, 6, 120);
  GroundTruthOracle truth(instance.entity_of);

  const auto run = [&](const FaultPlan& plan, int threads) {
    LabelingSessionOptions options;
    options.schedule = SchedulePolicy::kRoundParallel;
    options.num_threads = threads;
    if (plan.enabled()) {
      const FaultInjector injector(plan);
      options.attempt_fault = injector.AsAttemptFaultFn();
      options.retry.seed = 99;
    }
    LabelingSession session(options);
    MaterializedCandidateStream stream(&instance.pairs, /*round_size=*/30);
    return session.RunStream(stream, OrderKind::kExpected, truth).value();
  };

  const LabelingReport fault_free = run(FaultPlan{}, 1);
  for (const int threads : {1, 4}) {
    const LabelingReport faulted = run(KitchenSinkTransientPlan(9), threads);
    EXPECT_TRUE(faulted == fault_free) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace crowdjoin
