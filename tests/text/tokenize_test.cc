#include "text/tokenize.h"

#include <gtest/gtest.h>

namespace crowdjoin {
namespace {

TEST(WordTokens, NormalizesThenSplits) {
  EXPECT_EQ(WordTokens("iPad 2nd-Gen"),
            (std::vector<std::string>{"ipad", "2nd", "gen"}));
  EXPECT_TRUE(WordTokens("").empty());
  EXPECT_TRUE(WordTokens("—!—").empty());
}

TEST(QGrams, PadsBoundaries) {
  EXPECT_EQ(QGrams("ab", 2),
            (std::vector<std::string>{"$a", "ab", "b$"}));
}

TEST(QGrams, UnigramsHaveNoPadding) {
  EXPECT_EQ(QGrams("abc", 1),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(QGrams, NormalizesInput) {
  // "A b" -> "a b": 3-grams over "$$a b$$" (space kept as separator char).
  const auto grams = QGrams("A b", 3);
  EXPECT_EQ(grams.front(), "$$a");
  EXPECT_EQ(grams.back(), "b$$");
}

TEST(QGrams, EmptyInputYieldsNothing) {
  EXPECT_TRUE(QGrams("", 3).empty());
  EXPECT_TRUE(QGrams("!!!", 3).empty());
}

TEST(QGrams, ShortStringStillProducesGrams) {
  EXPECT_EQ(QGrams("x", 3),
            (std::vector<std::string>{"$$x", "$x$", "x$$"}));
}

// The empty-document contract every similarity measure honors: empty and
// whitespace-only texts produce NO tokens and NO grams, so such documents
// get an empty signature and never pair with anything (not even each
// other) in any join path. Asserted once here; the measure equivalence
// suite exercises the joins' side of the bargain.
TEST(EmptyTextContract, WhitespaceOnlyYieldsNoTokensOrGrams) {
  for (const char* text : {"", " ", "  \t  ", "\n\t \r\n"}) {
    EXPECT_TRUE(WordTokens(text).empty()) << "text=" << text;
    EXPECT_TRUE(QGrams(text, 2).empty()) << "text=" << text;
    EXPECT_TRUE(QGrams(text, 3).empty()) << "text=" << text;
  }
}

TEST(SortUnique, SortsAndDeduplicates) {
  std::vector<std::string> tokens = {"b", "a", "b", "c", "a"};
  SortUnique(tokens);
  EXPECT_EQ(tokens, (std::vector<std::string>{"a", "b", "c"}));
}

}  // namespace
}  // namespace crowdjoin
