#include "obs/tracing.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace crowdjoin::obs {
namespace {

// Every recorder test runs its spans on a dedicated thread: rings are
// cached per (thread, recorder), so a fresh thread guarantees a fresh ring
// with the capacity configured by the test.
void OnFreshThread(const std::function<void()>& body) {
  std::thread thread(body);
  thread.join();
}

TEST(Span, DisabledRecorderRecordsNothing) {
  TraceRecorder recorder;
  OnFreshThread([&] {
    Span span("work", "test", &recorder);
  });
  EXPECT_TRUE(recorder.Events().empty());
}

TEST(Span, RecordsCompleteEvents) {
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  OnFreshThread([&] {
    Span span("work", "test", &recorder);
  });
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "work");
  EXPECT_STREQ(events[0].category, "test");
  EXPECT_GE(events[0].start_ns, 0);
  EXPECT_GE(events[0].dur_ns, 0);
}

TEST(Span, NestedSpansAreContainedInTheirParent) {
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  OnFreshThread([&] {
    Span outer("outer", "test", &recorder);
    {
      Span inner("inner", "test", &recorder);
    }
  });
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: outer opened first.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  const TraceEvent& outer = events[0];
  const TraceEvent& inner = events[1];
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
}

TEST(Span, EnabledCheckHappensAtConstruction) {
  TraceRecorder recorder;
  OnFreshThread([&] {
    Span span("work", "test", &recorder);
    recorder.SetEnabled(true);  // too late for this span
  });
  EXPECT_TRUE(recorder.Events().empty());
  recorder.SetEnabled(false);
}

TEST(TraceRecorder, RingWrapsKeepingTheNewestEvents) {
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  recorder.SetRingCapacity(8);
  std::vector<std::string> names;
  for (int i = 0; i < 20; ++i) names.push_back("span" + std::to_string(i));
  OnFreshThread([&] {
    for (int i = 0; i < 20; ++i) {
      Span span(names[static_cast<size_t>(i)].c_str(), "test", &recorder);
    }
  });
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first unwrapping: exactly spans 12..19 survive, in order.
  for (int i = 0; i < 8; ++i) {
    EXPECT_STREQ(events[static_cast<size_t>(i)].name,
                 names[static_cast<size_t>(12 + i)].c_str());
  }
}

TEST(TraceRecorder, ThreadsGetDistinctTids) {
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  OnFreshThread([&] { Span span("a", "test", &recorder); });
  OnFreshThread([&] { Span span("b", "test", &recorder); });
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(TraceRecorder, ClearDropsEventsButKeepsRecording) {
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  OnFreshThread([&] { Span span("a", "test", &recorder); });
  recorder.Clear();
  EXPECT_TRUE(recorder.Events().empty());
  OnFreshThread([&] { Span span("b", "test", &recorder); });
  ASSERT_EQ(recorder.Events().size(), 1u);
  EXPECT_STREQ(recorder.Events()[0].name, "b");
}

TEST(TraceRecorder, ChromeJsonShapeLoadsInPerfetto) {
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  OnFreshThread([&] {
    Span outer("outer", "test", &recorder);
    Span inner("inner", "test", &recorder);
  });
  const std::string json = recorder.ToChromeTraceJson();
  // The minimal contract Perfetto/chrome://tracing need: a traceEvents
  // array of complete ("X") events with name/cat/ts/dur/pid/tid.
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"outer\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\": \"inner\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\": "), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\": "), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tid\": "), std::string::npos) << json;
}

TEST(TraceRecorder, EmptyRecorderStillExportsValidJson) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.ToChromeTraceJson(),
            "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n]}\n");
}

TEST(TraceRecorder, ConcurrentSpansAreAllRetained) {
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span span("work", "test", &recorder);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(recorder.Events().size(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
}

TEST(TraceRecorder, GlobalIsDisabledByDefault) {
  EXPECT_FALSE(TraceRecorder::Global().enabled());
}

}  // namespace
}  // namespace crowdjoin::obs
