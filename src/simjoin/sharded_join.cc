#include "simjoin/sharded_join.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/macros.h"
#include "simjoin/prefix_filter.h"
#include "text/set_similarity.h"

namespace crowdjoin {

namespace {

constexpr int kDefaultNumShards = 16;

int ResolveShardCount(int requested) {
  return requested > 0 ? requested : kDefaultNumShards;
}

std::vector<ScoredPair> MergeTaskOutputs(
    std::vector<std::vector<ScoredPair>> per_task) {
  size_t total = 0;
  for (const auto& part : per_task) total += part.size();
  std::vector<ScoredPair> out;
  out.reserve(total);
  for (auto& part : per_task) {
    out.insert(out.end(), part.begin(), part.end());
  }
  // (left, right) keys are unique across tasks, so this sort makes the
  // merged output independent of shard/thread scheduling — and identical
  // to the sequential joins' sorted output.
  SortByPairOrder(out);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Ingestion
// ---------------------------------------------------------------------------

void ShardedSelfJoiner::Shard::Append(int32_t global_id,
                                      const std::vector<int32_t>& doc) {
  doc_ids.push_back(global_id);
  tokens.insert(tokens.end(), doc.begin(), doc.end());
  offsets.push_back(static_cast<int64_t>(tokens.size()));
}

ShardedSelfJoiner::ShardedSelfJoiner(int num_shards)
    : shards_(static_cast<size_t>(ResolveShardCount(num_shards))) {}

void ShardedSelfJoiner::Add(const std::vector<int32_t>& doc) {
  const auto shard = static_cast<size_t>(
      num_docs_ % static_cast<int64_t>(shards_.size()));
  shards_[shard].Append(static_cast<int32_t>(num_docs_), doc);
  ++num_docs_;
}

// ---------------------------------------------------------------------------
// Per-shard preparation (phase 1)
// ---------------------------------------------------------------------------

struct ShardedSelfJoiner::Prepared {
  /// Rarity-ordered copy of the shard's tokens (same offsets as the raw
  /// shard), from which prefixes are read.
  std::vector<int32_t> rarity;
  /// Prefix length of each document at the join threshold.
  std::vector<int32_t> prefix_len;
  /// Prefix index: token id -> local doc positions whose prefix holds it.
  std::unordered_map<int32_t, std::vector<int32_t>> index;
};

ShardedSelfJoiner::Prepared ShardedSelfJoiner::Prepare(
    const Shard& shard, const TokenDictionary& dict, double threshold,
    bool build_index) {
  Prepared prepared;
  prepared.rarity = shard.tokens;
  const size_t n = shard.size();
  prepared.prefix_len.resize(n);
  size_t total_prefix = 0;
  for (size_t d = 0; d < n; ++d) {
    int32_t* begin = prepared.rarity.data() + shard.offsets[d];
    int32_t* end = prepared.rarity.data() + shard.offsets[d + 1];
    dict.SortByRarity(begin, end);
    const auto len = static_cast<size_t>(end - begin);
    const size_t prefix = PrefixLength(threshold, len);
    prepared.prefix_len[d] = static_cast<int32_t>(prefix);
    total_prefix += prefix;
  }
  if (build_index) {
    prepared.index.reserve(std::min(total_prefix, dict.size()));
    for (size_t d = 0; d < n; ++d) {
      const int32_t* prefix = prepared.rarity.data() + shard.offsets[d];
      const auto prefix_len = static_cast<size_t>(prepared.prefix_len[d]);
      for (size_t p = 0; p < prefix_len; ++p) {
        prepared.index[prefix[p]].push_back(static_cast<int32_t>(d));
      }
    }
  }
  return prepared;
}

// ---------------------------------------------------------------------------
// Shard-vs-shard probe (phase 2)
// ---------------------------------------------------------------------------

void ShardedSelfJoiner::ProbeTask(const Shard& target_raw,
                                  const Prepared& target,
                                  const Shard& probe_raw,
                                  const Prepared& probe, bool same_shard,
                                  bool bipartite_emit, double threshold,
                                  std::vector<ScoredPair>& out) {
  std::vector<int32_t> last_seen(target_raw.size(), -1);
  std::vector<int32_t> candidates;  // scratch, reused across probe docs
  for (size_t j = 0; j < probe_raw.size(); ++j) {
    const int64_t begin_j = probe_raw.offsets[j];
    const auto len_j =
        static_cast<size_t>(probe_raw.offsets[j + 1] - begin_j);
    if (len_j == 0) continue;
    const auto prefix_j = static_cast<size_t>(probe.prefix_len[j]);
    const size_t min_len = CeilThresholdLength(threshold, len_j);
    const size_t max_len = FloorThresholdLength(threshold, len_j);

    candidates.clear();
    for (size_t p = 0; p < prefix_j; ++p) {
      const int32_t token =
          probe.rarity[static_cast<size_t>(begin_j) + p];
      const auto postings = target.index.find(token);
      if (postings == target.index.end()) continue;
      for (const int32_t i : postings->second) {
        if (last_seen[static_cast<size_t>(i)] == static_cast<int32_t>(j)) {
          continue;
        }
        last_seen[static_cast<size_t>(i)] = static_cast<int32_t>(j);
        // Same-shard tasks emit each unordered pair once: only the earlier
        // (smaller-global-id, i.e. smaller local position) partner.
        if (same_shard && i >= static_cast<int32_t>(j)) continue;
        const auto len_i = static_cast<size_t>(
            target_raw.offsets[static_cast<size_t>(i) + 1] -
            target_raw.offsets[static_cast<size_t>(i)]);
        if (len_i < min_len || len_i > max_len) continue;
        candidates.push_back(i);
      }
    }
    for (const int32_t i : candidates) {
      const int64_t begin_i = target_raw.offsets[static_cast<size_t>(i)];
      const auto len_i = static_cast<size_t>(
          target_raw.offsets[static_cast<size_t>(i) + 1] - begin_i);
      const double score = BoundedJaccard(
          target_raw.tokens.data() + begin_i, len_i,
          probe_raw.tokens.data() + begin_j, len_j, threshold);
      if (score + 1e-12 >= threshold) {
        const int32_t gi = target_raw.doc_ids[static_cast<size_t>(i)];
        const int32_t gj = probe_raw.doc_ids[j];
        if (bipartite_emit) {
          out.push_back({gi, gj, score});
        } else {
          out.push_back({std::min(gi, gj), std::max(gi, gj), score});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Self-join driver
// ---------------------------------------------------------------------------

Result<std::vector<ScoredPair>> ShardedSelfJoiner::Finish(
    const TokenDictionary& dictionary, double threshold,
    ThreadPool* pool) const {
  CJ_RETURN_IF_ERROR(ValidateJoinThreshold(threshold));
  const auto num_shards = static_cast<int64_t>(shards_.size());

  // Phase 1: every shard's rarity order + prefix index, in parallel.
  std::vector<Prepared> prepared =
      ParallelMap(pool, num_shards, [&](int64_t s) {
        return Prepare(shards_[static_cast<size_t>(s)], dictionary,
                       threshold, /*build_index=*/true);
      });

  // Phase 2: one task per unordered shard pairing (a <= b): probe shard
  // b's documents against shard a's prefix index.
  std::vector<std::pair<int32_t, int32_t>> tasks;
  tasks.reserve(static_cast<size_t>(num_shards * (num_shards + 1) / 2));
  for (int32_t a = 0; a < num_shards; ++a) {
    for (int32_t b = a; b < num_shards; ++b) tasks.push_back({a, b});
  }
  std::vector<std::vector<ScoredPair>> per_task = ParallelMap(
      pool, static_cast<int64_t>(tasks.size()), [&](int64_t ti) {
        const auto [a, b] = tasks[static_cast<size_t>(ti)];
        std::vector<ScoredPair> out;
        ProbeTask(shards_[static_cast<size_t>(a)],
                  prepared[static_cast<size_t>(a)],
                  shards_[static_cast<size_t>(b)],
                  prepared[static_cast<size_t>(b)],
                  /*same_shard=*/a == b, /*bipartite_emit=*/false, threshold,
                  out);
        return out;
      });
  return MergeTaskOutputs(std::move(per_task));
}

// ---------------------------------------------------------------------------
// Bipartite driver
// ---------------------------------------------------------------------------

ShardedBipartiteJoiner::ShardedBipartiteJoiner(int num_shards)
    : left_(num_shards), right_(num_shards) {}

void ShardedBipartiteJoiner::AddLeft(const std::vector<int32_t>& doc) {
  left_.Add(doc);
}

void ShardedBipartiteJoiner::AddRight(const std::vector<int32_t>& doc) {
  right_.Add(doc);
}

Result<std::vector<ScoredPair>> ShardedBipartiteJoiner::Finish(
    const TokenDictionary& dictionary, double threshold,
    ThreadPool* pool) const {
  CJ_RETURN_IF_ERROR(ValidateJoinThreshold(threshold));
  const auto left_shards = static_cast<int64_t>(left_.shards_.size());
  const auto right_shards = static_cast<int64_t>(right_.shards_.size());

  // Left shards carry the index; right shards only need prefixes.
  std::vector<ShardedSelfJoiner::Prepared> left_prepared =
      ParallelMap(pool, left_shards, [&](int64_t s) {
        return ShardedSelfJoiner::Prepare(
            left_.shards_[static_cast<size_t>(s)], dictionary, threshold,
            /*build_index=*/true);
      });
  std::vector<ShardedSelfJoiner::Prepared> right_prepared =
      ParallelMap(pool, right_shards, [&](int64_t s) {
        return ShardedSelfJoiner::Prepare(
            right_.shards_[static_cast<size_t>(s)], dictionary, threshold,
            /*build_index=*/false);
      });

  // One task per left-shard x right-shard pairing.
  const int64_t num_tasks = left_shards * right_shards;
  std::vector<std::vector<ScoredPair>> per_task =
      ParallelMap(pool, num_tasks, [&](int64_t ti) {
        const auto a = static_cast<size_t>(ti / right_shards);
        const auto b = static_cast<size_t>(ti % right_shards);
        std::vector<ScoredPair> out;
        ShardedSelfJoiner::ProbeTask(
            left_.shards_[a], left_prepared[a], right_.shards_[b],
            right_prepared[b], /*same_shard=*/false, /*bipartite_emit=*/true,
            threshold, out);
        return out;
      });
  return MergeTaskOutputs(std::move(per_task));
}

// ---------------------------------------------------------------------------
// Convenience wrappers
// ---------------------------------------------------------------------------

Result<std::vector<ScoredPair>> ShardedSelfJoin(
    const std::vector<std::vector<int32_t>>& docs,
    const TokenDictionary& dictionary, double threshold,
    const ShardedJoinOptions& options) {
  ShardedSelfJoiner joiner(options.num_shards);
  for (const auto& doc : docs) joiner.Add(doc);
  if (options.num_threads > 0) {
    ThreadPool pool(options.num_threads);
    return joiner.Finish(dictionary, threshold, &pool);
  }
  return joiner.Finish(dictionary, threshold, nullptr);
}

Result<std::vector<ScoredPair>> ShardedBipartiteJoin(
    const std::vector<std::vector<int32_t>>& left,
    const std::vector<std::vector<int32_t>>& right,
    const TokenDictionary& dictionary, double threshold,
    const ShardedJoinOptions& options) {
  ShardedBipartiteJoiner joiner(options.num_shards);
  for (const auto& doc : left) joiner.AddLeft(doc);
  for (const auto& doc : right) joiner.AddRight(doc);
  if (options.num_threads > 0) {
    ThreadPool pool(options.num_threads);
    return joiner.Finish(dictionary, threshold, &pool);
  }
  return joiner.Finish(dictionary, threshold, nullptr);
}

}  // namespace crowdjoin
