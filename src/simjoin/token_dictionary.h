#ifndef CROWDJOIN_SIMJOIN_TOKEN_DICTIONARY_H_
#define CROWDJOIN_SIMJOIN_TOKEN_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace crowdjoin {

/// \brief Interns tokens to dense ids and tracks document frequencies.
///
/// The prefix-filter join wants each document's tokens ordered by global
/// rarity (rarest first), so that short prefixes prune aggressively;
/// `SortByRarity` imposes that order using the accumulated frequencies.
class TokenDictionary {
 public:
  /// Interns all tokens of `tokens` (set semantics: duplicates collapse)
  /// and increments their document frequencies once per document.
  /// Returns the document as a deduplicated token-id vector.
  std::vector<int32_t> AddDocument(const std::vector<std::string>& tokens);

  /// Interns without affecting document frequencies (for query-side docs).
  std::vector<int32_t> Encode(const std::vector<std::string>& tokens);

  /// Const, non-interning encode for concurrent readers: maps known tokens
  /// to their ids (sorted, deduplicated) and silently drops unknown ones.
  /// When `num_distinct` is non-null it receives the number of distinct
  /// input tokens *including* unknown ones — the set size a similarity
  /// denominator needs, since an unknown token matches nothing but still
  /// belongs to the query's token set.
  std::vector<int32_t> Lookup(const std::vector<std::string>& tokens,
                              size_t* num_distinct = nullptr) const;

  /// Pre-sizes the intern table and frequency postings for
  /// `expected_tokens` distinct tokens, so corpus loads at a known scale
  /// avoid rehash/regrow churn on the hot `AddDocument` path.
  void Reserve(size_t expected_tokens);

  /// Sorts `doc` by (frequency asc, id asc): rarest token first.
  void SortByRarity(std::vector<int32_t>& doc) const;

  /// Range overload of `SortByRarity` for documents living in flat
  /// (arena-style) buffers, as the sharded join stores them.
  void SortByRarity(int32_t* first, int32_t* last) const;

  /// \brief The rarity permutation: `ranks[token_id]` is the token's rank
  /// under (frequency asc, id asc), 0 = rarest.
  ///
  /// Rank-encoding a document and sorting the plain int32 ranks ascending
  /// yields exactly the `SortByRarity` order — which is how the joins use
  /// it: one O(V log V) pass here replaces a frequency-indirecting
  /// comparator in every per-document sort, and downstream the single
  /// rank order serves prefix extraction, dense postings-arena keys, and
  /// the verification merge alike.
  std::vector<int32_t> RarityRanks() const;

  /// Document frequency of a token id.
  int64_t Frequency(int32_t token_id) const {
    return frequency_[static_cast<size_t>(token_id)];
  }

  /// Number of distinct tokens interned.
  size_t size() const { return frequency_.size(); }

  /// Number of `AddDocument` calls — the corpus size N behind idf-style
  /// weights (the cosine measure's `log(1 + N / (1 + df))`). `Encode`
  /// does not count, matching its no-frequency contract.
  int64_t num_documents() const { return num_documents_; }

 private:
  int32_t Intern(const std::string& token);

  std::unordered_map<std::string, int32_t> ids_;
  std::vector<int64_t> frequency_;
  int64_t num_documents_ = 0;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_SIMJOIN_TOKEN_DICTIONARY_H_
