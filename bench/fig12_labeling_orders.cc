// Reproduces Figure 12: number of crowdsourced pairs required by the four
// labeling orders (Optimal, Expected, Random, Worst) as the likelihood
// threshold sweeps from 0.5 to 0.1 on both datasets.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/labeling_order.h"
#include "core/labeling_session.h"
#include "eval/workbench.h"

namespace {

using namespace crowdjoin;  // NOLINT(build/namespaces)
using crowdjoin::bench::Unwrap;

int64_t CountCrowdsourced(const CandidateSet& pairs, OrderKind kind,
                          GroundTruthOracle& truth, Rng& rng) {
  const std::vector<int32_t> order =
      Unwrap(MakeLabelingOrder(pairs, kind, &truth, &rng));
  GroundTruthOracle oracle = truth;
  LabelingSession session;  // sequential schedule, transitive rule
  return Unwrap(session.Run(pairs, order, oracle)).num_crowdsourced;
}

void RunSweep(const ExperimentInput& input, uint64_t seed) {
  GroundTruthOracle truth = MakeGroundTruthOracle(input.dataset);
  TablePrinter table(
      {"threshold", "candidates", "Optimal", "Expected", "Random", "Worst"});
  for (double threshold : {0.5, 0.4, 0.3, 0.2, 0.1}) {
    const CandidateSet pairs =
        FilterByThreshold(input.candidates, threshold);
    Rng rng(seed ^ 0x5bd1e995u);
    table.AddRow(
        {StrFormat("%.1f", threshold), std::to_string(pairs.size()),
         std::to_string(
             CountCrowdsourced(pairs, OrderKind::kOptimal, truth, rng)),
         std::to_string(
             CountCrowdsourced(pairs, OrderKind::kExpected, truth, rng)),
         std::to_string(
             CountCrowdsourced(pairs, OrderKind::kRandom, truth, rng)),
         std::to_string(
             CountCrowdsourced(pairs, OrderKind::kWorst, truth, rng))});
  }
  std::printf("\n-- %s --\n", input.dataset.name.c_str());
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const crowdjoin::bench::Args args(argc, argv);
  const uint64_t seed = args.GetUint64("seed", 42);

  std::printf("=== Figure 12: labeling-order comparison ===\n");
  RunSweep(Unwrap(MakePaperExperimentInput(seed)), seed);
  RunSweep(Unwrap(MakeProductExperimentInput(seed)), seed);
  return 0;
}
