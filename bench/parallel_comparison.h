#ifndef CROWDJOIN_BENCH_PARALLEL_COMPARISON_H_
#define CROWDJOIN_BENCH_PARALLEL_COMPARISON_H_

#include "eval/workbench.h"

namespace crowdjoin::bench {

/// Shared body of the Figure 13 / Figure 14 harnesses: runs the sequential
/// (Non-Parallel) and round-based parallel labelers on the candidate pairs
/// above `threshold` in the expected order, and prints iteration counts and
/// the parallel per-iteration batch-size series.
void RunParallelComparison(const ExperimentInput& input, double threshold);

}  // namespace crowdjoin::bench

#endif  // CROWDJOIN_BENCH_PARALLEL_COMPARISON_H_
