#!/usr/bin/env python3
"""Compare two Google Benchmark JSON files and flag hot-path regressions.

Usage:
  compare_benchmarks.py BASELINE.json CONTENDER.json [--threshold=0.15]
                        [--strict]

Benchmarks are matched by name; a contender whose real_time exceeds the
baseline's by more than --threshold (default 15%) is flagged. Output is a
report table plus GitHub `::warning::` annotations so flagged rows surface
inline at PR time. Exit status is non-zero only with --strict (CI runs
non-strict so noisy shared runners warn instead of blocking merges).
"""

import argparse
import json
import sys


def load_benchmarks(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            # Prefer the aggregate mean when repetitions were requested.
            if not bench["name"].endswith("_mean"):
                continue
            out[bench["name"][: -len("_mean")]] = bench["real_time"]
        else:
            out.setdefault(bench["name"], bench["real_time"])
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("contender")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="flag slowdowns beyond this ratio (0.15 = 15%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when any benchmark regresses")
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    contender = load_benchmarks(args.contender)

    common = sorted(set(baseline) & set(contender))
    if not common:
        # A rename/removal sweep leaves nothing to compare; warn instead of
        # failing so non-strict CI keeps its warn-don't-block contract.
        print("no common benchmarks between the two files", file=sys.stderr)
        print("::warning title=benchmark compare::no common benchmarks "
              "between baseline and contender")
        return 2 if args.strict else 0

    regressions = []
    print(f"{'benchmark':55s} {'baseline':>12s} {'contender':>12s} "
          f"{'ratio':>7s}")
    for name in common:
        base = baseline[name]
        cont = contender[name]
        ratio = cont / base if base > 0 else float("inf")
        marker = ""
        if ratio > 1.0 + args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append((name, ratio))
        print(f"{name:55s} {base:12.0f} {cont:12.0f} {ratio:6.2f}x{marker}")

    only_base = sorted(set(baseline) - set(contender))
    if only_base:
        print(f"\nmissing from contender: {', '.join(only_base)}")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) slower than "
              f"{args.threshold:.0%} over baseline:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
            # GitHub annotation: shows up inline on the PR checks page.
            print(f"::warning title=benchmark regression::{name} is "
                  f"{ratio:.2f}x baseline real_time")
        return 1 if args.strict else 0
    print("\nno hot-path regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
