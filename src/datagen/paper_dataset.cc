#include "datagen/paper_dataset.h"

#include "datagen/streaming_generator.h"

namespace crowdjoin {

// Schema field indexes for the Paper dataset (generation itself lives in
// streaming_generator.cc; this file keeps the batch entry point and the
// scorer).
namespace {
constexpr int kAuthor = 0;
constexpr int kTitle = 1;
constexpr int kVenue = 2;
constexpr int kDate = 3;
constexpr int kPages = 4;
}  // namespace

Result<Dataset> GeneratePaperDataset(const PaperDatasetConfig& config) {
  // Drain the 1x stream: the streaming generator is the single source of
  // truth for the record sequence, so batch and streaming paths can never
  // diverge.
  StreamingPaperSource source(config, /*scale_factor=*/1);
  return MaterializeDataset(source);
}

RecordScorer MakePaperScorer() {
  return RecordScorer({
      {kAuthor, FieldMeasure::kJaccardWords, 0.25},
      {kTitle, FieldMeasure::kJaccardWords, 0.40},
      {kTitle, FieldMeasure::kQGramJaccard, 0.10, /*q=*/3},
      {kVenue, FieldMeasure::kJaccardWords, 0.10},
      {kDate, FieldMeasure::kNumeric, 0.05},
      {kPages, FieldMeasure::kLevenshtein, 0.10},
  });
}

}  // namespace crowdjoin
