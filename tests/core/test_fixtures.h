#ifndef CROWDJOIN_TESTS_CORE_TEST_FIXTURES_H_
#define CROWDJOIN_TESTS_CORE_TEST_FIXTURES_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/candidate.h"
#include "core/oracle.h"

namespace crowdjoin::testing_fixtures {

/// The paper's running example (Figure 3): eight candidate pairs over six
/// objects (o1..o6 mapped to ids 0..5), in decreasing likelihood order.
/// Ground truth: {o1,o2,o3} match, {o4,o5} match, {o6} is a singleton.
inline CandidateSet Figure3Pairs() {
  return {
      {0, 1, 0.95},  // p1  (matching)
      {1, 2, 0.90},  // p2  (matching)
      {0, 5, 0.85},  // p3  (non-matching)
      {0, 2, 0.80},  // p4  (matching)
      {3, 4, 0.75},  // p5  (matching)
      {3, 5, 0.70},  // p6  (non-matching)
      {1, 3, 0.65},  // p7  (non-matching)
      {4, 5, 0.60},  // p8  (non-matching)
  };
}

/// Ground truth for Figure3Pairs().
inline GroundTruthOracle Figure3Truth() {
  return GroundTruthOracle({0, 0, 0, 1, 1, 2});
}

/// A random consistent instance: objects assigned to entities, candidate
/// pairs sampled with likelihoods correlated to (but noisy around) the
/// truth, mimicking a machine likelihood channel.
struct RandomInstance {
  CandidateSet pairs;
  std::vector<int32_t> entity_of;
};

inline RandomInstance MakeRandomInstance(uint64_t seed, int32_t num_objects,
                                         int32_t num_entities,
                                         int32_t num_pairs) {
  Rng rng(seed);
  RandomInstance instance;
  instance.entity_of.resize(static_cast<size_t>(num_objects));
  for (auto& e : instance.entity_of) {
    e = static_cast<int32_t>(rng.Index(static_cast<size_t>(num_entities)));
  }
  while (static_cast<int32_t>(instance.pairs.size()) < num_pairs) {
    const auto a =
        static_cast<ObjectId>(rng.Index(static_cast<size_t>(num_objects)));
    const auto b =
        static_cast<ObjectId>(rng.Index(static_cast<size_t>(num_objects)));
    if (a == b) continue;
    const bool matching = instance.entity_of[static_cast<size_t>(a)] ==
                          instance.entity_of[static_cast<size_t>(b)];
    const double base = matching ? 0.75 : 0.3;
    const double likelihood =
        std::min(0.99, std::max(0.01, base + rng.Normal(0.0, 0.2)));
    instance.pairs.push_back(
        {std::min(a, b), std::max(a, b), likelihood});
  }
  return instance;
}

/// \brief Truth-backed oracle with mutex-guarded per-pair call counting.
///
/// The parallel labeler may call `GetLabel` from several pool workers at
/// once, so all bookkeeping here is guarded — concurrent tests can assert
/// *exact* oracle-call counts (total and per pair) without racing, and a
/// TSan run of the suite stays clean.
class ThreadSafeCountingOracle : public LabelOracle {
 public:
  explicit ThreadSafeCountingOracle(std::vector<int32_t> entity_of)
      : truth_(std::move(entity_of)) {}

  Label GetLabel(ObjectId a, ObjectId b) override {
    ++num_queries_;  // atomic in the base class
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++calls_[Key(a, b)];
    }
    return truth_.Truth(a, b);
  }

  /// Number of GetLabel calls observed.
  int64_t total_calls() const { return num_queries(); }

  /// Number of GetLabel calls for the (unordered) pair (a, b).
  int64_t calls(ObjectId a, ObjectId b) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = calls_.find(Key(a, b));
    return it == calls_.end() ? 0 : it->second;
  }

  /// The largest per-pair call count — 1 means no pair was asked twice.
  int64_t max_calls_per_pair() const {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t max_calls = 0;
    for (const auto& [key, count] : calls_) {
      if (count > max_calls) max_calls = count;
    }
    return max_calls;
  }

  const GroundTruthOracle& truth() const { return truth_; }

 private:
  static std::pair<ObjectId, ObjectId> Key(ObjectId a, ObjectId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }

  GroundTruthOracle truth_;
  mutable std::mutex mu_;
  std::map<std::pair<ObjectId, ObjectId>, int64_t> calls_;
};

/// \brief Scripted oracle: answers from a fixed (unordered) pair -> label
/// map, `fallback` for everything unscripted.
///
/// Call counting is mutex-guarded so the mock can be shared across the
/// parallel labeler's worker threads. Because every answer is a pure
/// function of the pair, the mock is batch-safe; scripting *inconsistent*
/// answers (violating transitivity) is the supported way to exercise
/// conflict handling deterministically.
class MockOracle : public LabelOracle {
 public:
  explicit MockOracle(
      std::map<std::pair<ObjectId, ObjectId>, Label> answers = {},
      Label fallback = Label::kNonMatching)
      : answers_(std::move(answers)), fallback_(fallback) {}

  // Copyable despite the mutex member, so tests can run many labeling
  // passes from one scripted prototype.
  MockOracle(const MockOracle& other)
      : LabelOracle(other),
        answers_(other.answers_),
        fallback_(other.fallback_) {
    std::lock_guard<std::mutex> lock(other.mu_);
    calls_ = other.calls_;
  }

  void SetAnswer(ObjectId a, ObjectId b, Label label) {
    answers_[Key(a, b)] = label;  // script setup, before any GetLabel runs
  }

  Label GetLabel(ObjectId a, ObjectId b) override {
    ++num_queries_;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++calls_[Key(a, b)];
    }
    const auto it = answers_.find(Key(a, b));
    return it == answers_.end() ? fallback_ : it->second;
  }

  /// Number of GetLabel calls for the (unordered) pair (a, b).
  int64_t calls(ObjectId a, ObjectId b) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = calls_.find(Key(a, b));
    return it == calls_.end() ? 0 : it->second;
  }

 private:
  static std::pair<ObjectId, ObjectId> Key(ObjectId a, ObjectId b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }

  std::map<std::pair<ObjectId, ObjectId>, Label> answers_;
  Label fallback_;
  mutable std::mutex mu_;
  std::map<std::pair<ObjectId, ObjectId>, int64_t> calls_;
};

}  // namespace crowdjoin::testing_fixtures

#endif  // CROWDJOIN_TESTS_CORE_TEST_FIXTURES_H_
