#include "serve/resolution_service.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "common/macros.h"
#include "obs/metrics.h"
#include "obs/tracing.h"
#include "text/tokenize.h"

namespace crowdjoin {

ResolutionService::ResolutionService(ResolutionServiceOptions options)
    : options_(options), graph_(0, options.conflict_policy) {
  CJ_CHECK(options_.threshold > 0.0 && options_.threshold <= 1.0);
  CJ_CHECK(options_.top_k > 0);
  CJ_CHECK(options_.snapshot_batch_size >= 1);
  if (options_.metrics != nullptr) {
    metrics_ = options_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  ingests_total_ = metrics_->GetCounter("serve.ingests_total");
  ingest_candidates_total_ =
      metrics_->GetCounter("serve.ingest_candidates_total");
  labels_total_ = metrics_->GetCounter("serve.labels_total");
  queries_total_ = metrics_->GetCounter("serve.queries_total");
  snapshot_publishes_total_ =
      metrics_->GetCounter("serve.snapshot_publishes_total");
  snapshot_batch_flushes_total_ =
      metrics_->GetCounter("serve.snapshot_batch_flushes_total");
  ingest_latency_us_ = metrics_->GetHistogram("serve.ingest_latency_us");
  query_latency_us_ = metrics_->GetHistogram("serve.query_latency_us");
  candidates_per_query_ = metrics_->GetHistogram("serve.candidates_per_query");
  // Readers must always find a valid snapshot, even before the first write.
  PublishSnapshot();
}

ResolutionService::~ResolutionService() = default;

std::vector<ResolutionService::Match> ResolutionService::MatchEncoded(
    const std::vector<int32_t>& ids, size_t query_size,
    ObjectId exclude) const {
  std::unordered_map<ObjectId, int64_t> overlap;
  for (int32_t token : ids) {
    for (ObjectId r : postings_[static_cast<size_t>(token)]) {
      if (r == exclude) continue;
      ++overlap[r];
    }
  }
  std::vector<Match> matches;
  matches.reserve(overlap.size());
  const auto q = static_cast<int64_t>(query_size);
  for (const auto& [r, c] : overlap) {
    const int64_t union_size = q + doc_sizes_[static_cast<size_t>(r)] - c;
    // J(q, r) = c / union >= threshold, evaluated without dividing.
    if (static_cast<double>(c) >= options_.threshold *
                                      static_cast<double>(union_size)) {
      matches.push_back(Match{r, c, union_size});
    }
  }
  // Similarity descending, id ascending — compared as exact fractions
  // (cross-multiplication), so the order never hinges on double rounding.
  std::sort(matches.begin(), matches.end(), [](const Match& x, const Match& y) {
    const int64_t lhs = x.overlap * y.union_size;
    const int64_t rhs = y.overlap * x.union_size;
    if (lhs != rhs) return lhs > rhs;
    return x.id < y.id;
  });
  if (matches.size() > static_cast<size_t>(options_.top_k)) {
    matches.resize(static_cast<size_t>(options_.top_k));
  }
  return matches;
}

IngestResult ResolutionService::Ingest(const std::string& text) {
  obs::Span span("serve.ingest", "serve");
  obs::ScopedLatencyUs latency(ingest_latency_us_);
  ingests_total_->Inc();
  const std::vector<std::string> tokens = WordTokens(text);
  ObjectId id = -1;
  std::vector<Match> matches;
  {
    std::unique_lock<std::shared_mutex> lock(index_mu_);
    const std::vector<int32_t> ids = dict_.AddDocument(tokens);
    id = static_cast<ObjectId>(doc_sizes_.size());
    postings_.resize(dict_.size());
    // Match before this record enters its own postings lists.
    matches = MatchEncoded(ids, ids.size(), /*exclude=*/-1);
    for (int32_t token : ids) {
      postings_[static_cast<size_t>(token)].push_back(id);
    }
    doc_sizes_.push_back(static_cast<int32_t>(ids.size()));
  }
  // The new record joins the graph as a singleton, and the grown epoch is
  // published before returning so readers can resolve it immediately —
  // carrying any labels still waiting for a batch boundary with it.
  graph_.EnsureObjects(id + 1);
  pending_labels_ = 0;
  PublishSnapshot();

  IngestResult result;
  result.id = id;
  ingest_candidates_total_->Inc(static_cast<int64_t>(matches.size()));
  result.candidates.reserve(matches.size());
  for (const Match& m : matches) {
    // Live const read: the writer thread annotates from the graph it owns.
    result.candidates.push_back(
        ServeCandidate{m.id,
                       static_cast<double>(m.overlap) /
                           static_cast<double>(m.union_size),
                       graph_.CanonicalClusterId(m.id)});
  }
  return result;
}

AddOutcome ResolutionService::OnPairLabeled(ObjectId a, ObjectId b,
                                            Label label) {
  CJ_CHECK(a != b);
  CJ_CHECK(a >= 0 && a < graph_.num_objects());
  CJ_CHECK(b >= 0 && b < graph_.num_objects());
  const AddOutcome outcome = graph_.Add(a, b, label);
  labels_total_->Inc();
  if (++pending_labels_ >= options_.snapshot_batch_size) {
    FlushSnapshot();
  }
  return outcome;
}

void ResolutionService::FlushSnapshot() {
  if (pending_labels_ == 0) return;
  pending_labels_ = 0;
  PublishSnapshot();
  snapshot_batch_flushes_total_->Inc();
}

std::vector<ServeCandidate> ResolutionService::QueryCandidates(
    const std::string& text) const {
  obs::ScopedLatencyUs latency(query_latency_us_);
  queries_total_->Inc();
  const std::vector<std::string> tokens = WordTokens(text);
  std::vector<Match> matches;
  {
    std::shared_lock<std::shared_mutex> lock(index_mu_);
    size_t num_distinct = 0;
    const std::vector<int32_t> ids = dict_.Lookup(tokens, &num_distinct);
    matches = MatchEncoded(ids, num_distinct, /*exclude=*/-1);
  }
  const ClusterGraphSnapshot snapshot = CurrentSnapshot();
  std::vector<ServeCandidate> candidates;
  candidates.reserve(matches.size());
  for (const Match& m : matches) {
    // A record the index serves but the snapshot does not yet span is a
    // singleton: its canonical cluster id is itself.
    const ObjectId cluster = m.id < snapshot.num_objects()
                                 ? snapshot.CanonicalClusterId(m.id)
                                 : m.id;
    candidates.push_back(ServeCandidate{
        m.id,
        static_cast<double>(m.overlap) / static_cast<double>(m.union_size),
        cluster});
  }
  candidates_per_query_->Observe(static_cast<int64_t>(candidates.size()));
  return candidates;
}

ObjectId ResolutionService::ResolveCluster(ObjectId id) const {
  CJ_CHECK(id >= 0);
  const ClusterGraphSnapshot snapshot = CurrentSnapshot();
  if (id >= snapshot.num_objects()) return id;  // not yet spanned: singleton
  return snapshot.CanonicalClusterId(id);
}

Deduction ResolutionService::DeducePair(ObjectId a, ObjectId b) const {
  CJ_CHECK(a >= 0 && b >= 0 && a != b);
  const ClusterGraphSnapshot snapshot = CurrentSnapshot();
  if (a >= snapshot.num_objects() || b >= snapshot.num_objects()) {
    return Deduction::kUndeduced;  // no label can touch an unseen record
  }
  return snapshot.Deduce(a, b);
}

ServeStats ResolutionService::Stats() const {
  const ClusterGraphSnapshot snapshot = CurrentSnapshot();
  ServeStats stats;
  stats.num_records = snapshot.num_objects();
  stats.num_labels = labels_total_->Value();
  stats.epoch = snapshot.epoch();
  stats.num_clusters = snapshot.num_clusters();
  stats.num_conflicts = snapshot.num_conflicts();
  return stats;
}

void ResolutionService::PublishSnapshot() {
  const ClusterGraphSnapshot snap = graph_.Snapshot();
  {
    std::unique_lock<std::shared_mutex> lock(snapshot_mu_);
    snapshot_ = snap;
  }
  snapshot_publishes_total_->Inc();
}

ClusterGraphSnapshot ResolutionService::CurrentSnapshot() const {
  std::shared_lock<std::shared_mutex> lock(snapshot_mu_);
  return snapshot_;
}

}  // namespace crowdjoin
