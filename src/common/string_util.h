#ifndef CROWDJOIN_COMMON_STRING_UTIL_H_
#define CROWDJOIN_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace crowdjoin {

/// Splits `input` at every occurrence of `delim`; empty fields are kept.
std::vector<std::string> Split(std::string_view input, char delim);

/// Splits on runs of ASCII whitespace; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view input);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// ASCII lower-casing (locale-independent).
std::string ToLower(std::string_view input);

/// True iff `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// True iff `text` ends with `suffix`.
bool EndsWith(std::string_view text, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace crowdjoin

#endif  // CROWDJOIN_COMMON_STRING_UTIL_H_
