// Microbenchmark + ablation: prefix-filter similarity join vs brute-force
// all-pairs verification — the machine step's cost profile across
// thresholds (higher thresholds prune better).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "simjoin/sharded_join.h"
#include "simjoin/similarity_join.h"
#include "simjoin/token_dictionary.h"

namespace crowdjoin {
namespace {

struct Corpus {
  TokenDictionary dictionary;
  std::vector<std::vector<int32_t>> docs;
};

Corpus MakeCorpus(size_t num_docs, size_t tokens_per_doc, size_t vocabulary) {
  Corpus corpus;
  Rng rng(7);
  const ZipfSampler sampler(vocabulary, 1.1);
  for (size_t d = 0; d < num_docs; ++d) {
    std::vector<std::string> tokens;
    for (size_t t = 0; t < tokens_per_doc; ++t) {
      tokens.push_back(StrFormat("tok%llu",
                                 static_cast<unsigned long long>(
                                     sampler.Sample(rng))));
    }
    corpus.docs.push_back(corpus.dictionary.AddDocument(tokens));
  }
  return corpus;
}

void BM_PrefixFilterSelfJoin(benchmark::State& state) {
  const auto num_docs = static_cast<size_t>(state.range(0));
  const double threshold = static_cast<double>(state.range(1)) / 10.0;
  Corpus corpus = MakeCorpus(num_docs, 12, 4096);
  for (auto _ : state) {
    auto result =
        PrefixFilterSelfJoin(corpus.docs, corpus.dictionary, threshold);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_docs));
}
BENCHMARK(BM_PrefixFilterSelfJoin)
    ->Args({1000, 3})
    ->Args({1000, 5})
    ->Args({1000, 8})
    ->Args({4000, 5})
    ->Args({4000, 8});

void BM_BruteForceSelfJoin(benchmark::State& state) {
  const auto num_docs = static_cast<size_t>(state.range(0));
  const double threshold = static_cast<double>(state.range(1)) / 10.0;
  Corpus corpus = MakeCorpus(num_docs, 12, 4096);
  for (auto _ : state) {
    auto result = BruteForceSelfJoin(corpus.docs, threshold);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_docs));
}
BENCHMARK(BM_BruteForceSelfJoin)->Args({1000, 5})->Args({1000, 8});

// The sharded parallel join at {num_docs, threshold*10, threads}: ingest
// happens once, each iteration re-runs the prepare + probe phases over a
// persistent pool (byte-identical output to BM_PrefixFilterSelfJoin's).
void BM_ShardedSelfJoin(benchmark::State& state) {
  const auto num_docs = static_cast<size_t>(state.range(0));
  const double threshold = static_cast<double>(state.range(1)) / 10.0;
  const int num_threads = static_cast<int>(state.range(2));
  Corpus corpus = MakeCorpus(num_docs, 12, 4096);
  ShardedSelfJoiner joiner(/*num_shards=*/16);
  for (const auto& doc : corpus.docs) joiner.Add(doc);
  ThreadPool pool(num_threads);
  ThreadPool* pool_ptr = pool.num_threads() > 0 ? &pool : nullptr;
  for (auto _ : state) {
    auto result = joiner.Finish(corpus.dictionary, threshold, pool_ptr);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_docs));
}
BENCHMARK(BM_ShardedSelfJoin)
    ->Args({4000, 5, 0})
    ->Args({4000, 5, 2})
    ->Args({4000, 5, 4})
    ->Args({4000, 5, 8})
    ->Args({4000, 8, 0})
    ->Args({4000, 8, 4});

}  // namespace
}  // namespace crowdjoin

BENCHMARK_MAIN();
