#include "core/labeling_session.h"

#include <algorithm>
#include <deque>
#include <string>
#include <utility>

#include "common/macros.h"
#include "common/serialize.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "graph/overlay_graph.h"
#include "obs/metrics.h"
#include "obs/tracing.h"

namespace crowdjoin {

namespace {

// Stream-labeling instrumentation — the paper's cost metric (oracle calls
// vs deductions) as live counters. Updated once per stream round from
// report deltas, never per pair, so the dispatch overhead contract of
// bench/micro_session is untouched.
struct SessionMetrics {
  obs::Counter* rounds_total;
  obs::Counter* candidates_total;
  obs::Counter* oracle_calls_total;
  obs::Counter* deduced_total;
  obs::Counter* conflicts_total;

  static SessionMetrics& Get() {
    static SessionMetrics metrics{
        obs::MetricsRegistry::Global().GetCounter("session.rounds_total"),
        obs::MetricsRegistry::Global().GetCounter("session.candidates_total"),
        obs::MetricsRegistry::Global().GetCounter(
            "session.oracle_calls_total"),
        obs::MetricsRegistry::Global().GetCounter("session.deduced_total"),
        obs::MetricsRegistry::Global().GetCounter("session.conflicts_total")};
    return metrics;
  }
};

// Retry telemetry (the ISSUE-9 fault-tolerance counters). `hit_attempts`
// observes the attempt count of every crowd ask made under a fault model
// (so its count is the number of faulted-mode asks); `hits_retried_total`
// counts the asks that needed more than one attempt; `retry_backoff_us`
// observes each computed backoff wait (accounted, not slept — simulation).
struct RetryMetrics {
  obs::Counter* hits_retried_total;
  obs::Histogram* hit_attempts;
  obs::Histogram* retry_backoff_us;

  static RetryMetrics& Get() {
    static RetryMetrics metrics{
        obs::MetricsRegistry::Global().GetCounter("crowd.hits_retried_total"),
        obs::MetricsRegistry::Global().GetHistogram("crowd.hit_attempts"),
        obs::MetricsRegistry::Global().GetHistogram("crowd.retry_backoff_us")};
    return metrics;
  }
};

// Jitter/coin key of the unordered pair, shared by every retry stream.
uint64_t PairRetryKey(ObjectId a, ObjectId b) {
  const ObjectId lo = a < b ? a : b;
  const ObjectId hi = a < b ? b : a;
  return (static_cast<uint64_t>(static_cast<uint32_t>(lo)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(hi));
}

// One crowd ask under the retry policy: burns through transiently faulted
// attempts (each costing accounted backoff, never an oracle call), then
// asks `ask` once. The ask after `max_attempts` faults is the escalation
// path and is not offered to the fault model, so termination is
// unconditional. All decisions are pure hashes — thread-safe, order-free.
template <typename AskFn>
Label AskWithRetry(ObjectId a, ObjectId b, const RetryPolicy& retry,
                   const AttemptFaultFn& fault, const AskFn& ask) {
  RetryMetrics& metrics = RetryMetrics::Get();
  const uint64_t key = PairRetryKey(a, b);
  int attempt = 1;
  while (attempt <= retry.max_attempts && fault(a, b, attempt)) {
    ++attempt;
    metrics.retry_backoff_us->Observe(retry.BackoffUs(attempt, key));
  }
  metrics.hit_attempts->Observe(attempt);
  if (attempt > 1) metrics.hits_retried_total->Inc();
  return ask();
}

// Durable-campaign telemetry: checkpoint writes/resumes and the size of
// each written frontier.
struct CheckpointMetrics {
  obs::Counter* writes_total;
  obs::Counter* resumes_total;
  obs::Histogram* bytes;

  static CheckpointMetrics& Get() {
    static CheckpointMetrics metrics{
        obs::MetricsRegistry::Global().GetCounter(
            "session.checkpoints_written_total"),
        obs::MetricsRegistry::Global().GetCounter(
            "session.checkpoint_resumes_total"),
        obs::MetricsRegistry::Global().GetHistogram(
            "session.checkpoint_bytes")};
    return metrics;
  }
};

// The InvalidArgument for multi-threaded schedules on an oracle whose
// answers depend on global call order (the documented NoisyOracle hazard,
// now enforced instead of trusted).
Status CheckBatchSafe(const LabelOracle& oracle, int num_threads) {
  if (num_threads > 1 && !oracle.IsBatchSafe()) {
    return Status::InvalidArgument(
        "oracle is not batch-safe: a multi-threaded schedule would race its "
        "sequential answer stream; run with num_threads = 1 or use a "
        "batch-safe oracle such as HashNoisyOracle");
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// LabelingReport
// ---------------------------------------------------------------------------

LabelingResult LabelingReport::ToLabelingResult() const {
  LabelingResult result;
  result.outcomes.reserve(outcomes.size());
  for (const std::optional<PairOutcome>& outcome : outcomes) {
    CJ_CHECK(outcome.has_value());  // budget-capped runs have no LabelingResult
    result.outcomes.push_back(*outcome);
  }
  result.num_crowdsourced = num_crowdsourced;
  result.num_deduced = num_deduced;
  result.num_conflicts = num_conflicts;
  result.crowdsourced_per_iteration = crowdsourced_per_iteration;
  return result;
}

// ---------------------------------------------------------------------------
// Candidate streams
// ---------------------------------------------------------------------------

Result<CandidateSet> MaterializedCandidateStream::NextRound() {
  const size_t n = pairs_->size();
  if (cursor_ >= n) return CandidateSet{};
  const size_t take =
      round_size_ == 0 ? n - cursor_ : std::min(round_size_, n - cursor_);
  CandidateSet round(
      pairs_->begin() + static_cast<std::ptrdiff_t>(cursor_),
      pairs_->begin() + static_cast<std::ptrdiff_t>(cursor_ + take));
  cursor_ += take;
  return round;
}

// ---------------------------------------------------------------------------
// Deduction rules
// ---------------------------------------------------------------------------

std::optional<Label> TransitiveDeductionRule::Deduce(ObjectId a, ObjectId b) {
  const Deduction deduction = graph_.Deduce(a, b);
  if (deduction == Deduction::kUndeduced) return std::nullopt;
  return DeductionToLabel(deduction);
}

void TransitiveDeductionRule::Observe(ObjectId a, ObjectId b, Label label,
                                      LabelSource /*source*/) {
  graph_.Add(a, b, label);
}

void TransitiveDeductionRule::FillReport(LabelingReport* report) const {
  report->num_conflicts = graph_.num_conflicts();
}

void OneToOneDeductionRule::Reset(int32_t num_objects) {
  matched_.assign(static_cast<size_t>(num_objects), false);
  num_deduced_ = 0;
  num_violations_ = 0;
}

void OneToOneDeductionRule::EnsureObjects(int32_t num_objects) {
  if (static_cast<size_t>(num_objects) > matched_.size()) {
    matched_.resize(static_cast<size_t>(num_objects), false);
  }
}

std::optional<Label> OneToOneDeductionRule::Deduce(ObjectId a, ObjectId b) {
  // A pair touching an already-matched object is non-matching — sound only
  // when the workload really is one-to-one. Every successful deduction is
  // committed by the sequential engine, so counting here is exact.
  if (matched_[static_cast<size_t>(a)] || matched_[static_cast<size_t>(b)]) {
    ++num_deduced_;
    return Label::kNonMatching;
  }
  return std::nullopt;
}

void OneToOneDeductionRule::Observe(ObjectId a, ObjectId b, Label label,
                                    LabelSource source) {
  // Only crowd answers claim a partner; deduced matches (which can only
  // come from transitivity) were never trusted by the legacy labeler and
  // keeping that behavior preserves byte-identical outcomes.
  if (source != LabelSource::kCrowdsourced || label != Label::kMatching) {
    return;
  }
  if (matched_[static_cast<size_t>(a)] || matched_[static_cast<size_t>(b)]) {
    ++num_violations_;
  }
  matched_[static_cast<size_t>(a)] = true;
  matched_[static_cast<size_t>(b)] = true;
}

void OneToOneDeductionRule::FillReport(LabelingReport* report) const {
  report->num_one_to_one_deduced = num_deduced_;
  report->num_exclusivity_violations = num_violations_;
}

// ---------------------------------------------------------------------------
// Policies
// ---------------------------------------------------------------------------

std::string_view SchedulePolicyToString(SchedulePolicy policy) {
  switch (policy) {
    case SchedulePolicy::kSequential:
      return "sequential";
    case SchedulePolicy::kRoundParallel:
      return "round-parallel";
    case SchedulePolicy::kInstantDecision:
      return "instant";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Shared building blocks
// ---------------------------------------------------------------------------

Status ValidateOrder(const std::vector<int32_t>& order, size_t n) {
  if (order.size() != n) {
    return Status::InvalidArgument(
        StrFormat("order has %zu entries for %zu pairs", order.size(), n));
  }
  std::vector<bool> seen(n, false);
  for (int32_t pos : order) {
    if (pos < 0 || static_cast<size_t>(pos) >= n) {
      return Status::InvalidArgument(
          StrFormat("order entry %d out of range [0, %zu)", pos, n));
    }
    if (seen[static_cast<size_t>(pos)]) {
      return Status::InvalidArgument(
          StrFormat("order entry %d appears twice", pos));
    }
    seen[static_cast<size_t>(pos)] = true;
  }
  return Status::OK();
}

namespace {

// The Algorithm-3 ordered scan over any graph with ClusterGraph's
// Add/Deduce surface (a real ClusterGraph, or an O(1) overlay on a
// snapshot of one).
template <typename Graph>
std::vector<int32_t> ScanPublish(
    Graph& graph, const CandidateSet& pairs,
    const std::vector<int32_t>& order,
    const std::vector<std::optional<Label>>& labels_by_pos,
    const std::vector<bool>* exclude_from_output) {
  std::vector<int32_t> publish;
  for (int32_t pos : order) {
    const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
    const std::optional<Label>& label = labels_by_pos[static_cast<size_t>(pos)];
    if (label.has_value()) {
      graph.Add(pair.a, pair.b, *label);
      continue;
    }
    if (graph.Deduce(pair.a, pair.b) == Deduction::kUndeduced) {
      if (exclude_from_output == nullptr ||
          !(*exclude_from_output)[static_cast<size_t>(pos)]) {
        publish.push_back(pos);
      }
      // Suppose the pair is matching (Algorithm 3, line 11).
      graph.Add(pair.a, pair.b, Label::kMatching);
    }
    // Optimistically deducible pairs contribute nothing (their label is
    // already implied by the graph or contradicts the assumption).
  }
  return publish;
}

// The Algorithm-2 round loop, generic over how each scan obtains its
// graph: `make_graph()` builds a fresh value per scan — a ClusterGraph
// for materialized runs (`fresh_graphs`), or an OverlayClusterGraph over
// the persistent graph's snapshot for streaming rounds.
template <typename MakeGraph>
Status RunRoundsImpl(const CandidateSet& pairs,
                     const std::vector<int32_t>& order,
                     const BatchLabelFn& label_batch, bool fresh_graphs,
                     const MakeGraph& make_graph, int64_t& remaining_budget,
                     size_t report_offset, LabelingReport& report) {
  const size_t n = pairs.size();
  std::vector<std::optional<Label>> labels(n);
  size_t num_labeled = 0;

  while (num_labeled < n) {
    obs::Span iteration_span("session.iteration", "session");
    // Identify and "publish" this round's batch (Algorithm 2, line 4).
    std::vector<int32_t> batch;
    {
      auto graph = make_graph();
      batch = ScanPublish(graph, pairs, order, labels,
                          /*exclude_from_output=*/nullptr);
    }
    // Without outside knowledge, undeduced pairs always remain publishable;
    // a seeded scan (earlier streaming rounds) can make a whole batch
    // deducible before any money is spent.
    if (fresh_graphs) CJ_CHECK(!batch.empty());
    std::vector<int32_t> publish = batch;
    if (remaining_budget >= 0 &&
        static_cast<int64_t>(publish.size()) > remaining_budget) {
      publish.resize(static_cast<size_t>(remaining_budget));
    }

    if (!publish.empty()) {
      // Crowdsource all batch pairs "simultaneously" (line 5), then merge
      // the answers back by batch position on this thread — the step that
      // makes the result independent of how the source resolved them.
      CJ_ASSIGN_OR_RETURN(const std::vector<Label> batch_labels,
                          label_batch(publish));
      CJ_CHECK(batch_labels.size() == publish.size());
      for (size_t i = 0; i < publish.size(); ++i) {
        const int32_t pos = publish[i];
        labels[static_cast<size_t>(pos)] = batch_labels[i];
        report.outcomes[report_offset + static_cast<size_t>(pos)] =
            PairOutcome{batch_labels[i], LabelSource::kCrowdsourced};
        ++report.num_crowdsourced;
        ++num_labeled;
      }
      if (remaining_budget > 0) {
        remaining_budget -= static_cast<int64_t>(publish.size());
      }
      report.crowdsourced_per_iteration.push_back(
          static_cast<int64_t>(publish.size()));
    }

    // Deduce every pair that became deducible from its prefix of labeled
    // pairs (lines 6-8): one ordered scan, cascading deductions.
    size_t scan_deduced = 0;
    auto graph = make_graph();
    for (int32_t pos : order) {
      const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
      auto& label = labels[static_cast<size_t>(pos)];
      if (label.has_value()) {
        graph.Add(pair.a, pair.b, *label);
        continue;
      }
      const Deduction deduction = graph.Deduce(pair.a, pair.b);
      if (deduction != Deduction::kUndeduced) {
        label = DeductionToLabel(deduction);
        report.outcomes[report_offset + static_cast<size_t>(pos)] =
            PairOutcome{*label, LabelSource::kDeduced};
        ++report.num_deduced;
        ++num_labeled;
        ++scan_deduced;
        // The deduced label is already implied by the graph: no Add needed.
      }
    }
    report.num_conflicts = graph.num_conflicts();

    if (publish.empty() && scan_deduced == 0) {
      // No batch was affordable and nothing came free: everything left is
      // out of the budget's reach (the unbounded invariant above proves
      // this branch needs an exhausted budget).
      CJ_CHECK(remaining_budget == 0);
      break;
    }
  }
  report.num_unlabeled += static_cast<int64_t>(n - num_labeled);
  return Status::OK();
}

}  // namespace

std::vector<int32_t> ParallelCrowdsourcedPairs(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    const std::vector<std::optional<Label>>& labels_by_pos,
    const std::vector<bool>* exclude_from_output, ConflictPolicy policy,
    const ClusterGraph* base_graph) {
  ClusterGraph graph = base_graph != nullptr
                           ? *base_graph
                           : ClusterGraph(NumObjectsSpanned(pairs), policy);
  return ScanPublish(graph, pairs, order, labels_by_pos, exclude_from_output);
}

// ---------------------------------------------------------------------------
// LabelingSession
// ---------------------------------------------------------------------------

LabelingSession::LabelingSession(LabelingSessionOptions options)
    : options_(options) {}

LabelingSession::~LabelingSession() = default;
LabelingSession::LabelingSession(LabelingSession&&) noexcept = default;
LabelingSession& LabelingSession::operator=(LabelingSession&&) noexcept =
    default;

LabelingSession& LabelingSession::AddRule(std::unique_ptr<DeductionRule> rule) {
  rules_.push_back(std::move(rule));
  return *this;
}

void LabelingSession::EnsureDefaultRule() {
  if (rules_.empty()) {
    rules_.push_back(
        std::make_unique<TransitiveDeductionRule>(options_.conflict_policy));
  }
}

void LabelingSession::BeginRun(int32_t num_objects) {
  EnsureDefaultRule();
  for (auto& rule : rules_) rule->Reset(num_objects);
  remaining_budget_ = options_.stop.bounded() ? options_.stop.budget : -1;
  // Clear the incremental-protocol state so a session can run repeatedly.
  pairs_ = nullptr;
  order_.clear();
  labels_.clear();
  published_.clear();
  num_available_ = 0;
  num_crowdsourced_ = 0;
  num_published_ = 0;
  started_ = false;
}

Result<ConflictPolicy> LabelingSession::RequireTransitiveOnlyChain() const {
  if (rules_.size() == 1) {
    if (const auto* transitive =
            dynamic_cast<const TransitiveDeductionRule*>(rules_[0].get())) {
      return transitive->policy();
    }
  }
  return Status::InvalidArgument(
      std::string("the ") +
      std::string(SchedulePolicyToString(options_.schedule)) +
      " schedule supports only the transitive deduction rule");
}

void LabelingSession::LabelOnePair(const CandidatePair& pair,
                                   size_t report_pos, LabelOracle& oracle,
                                   LabelingReport& report) {
  // Ask the chain in order; the first rule that deduces wins, and the
  // rules before it (which could not decide the pair) observe the label.
  for (size_t i = 0; i < rules_.size(); ++i) {
    const std::optional<Label> deduced = rules_[i]->Deduce(pair.a, pair.b);
    if (deduced.has_value()) {
      report.outcomes[report_pos] =
          PairOutcome{*deduced, LabelSource::kDeduced};
      ++report.num_deduced;
      for (size_t j = 0; j < i; ++j) {
        rules_[j]->Observe(pair.a, pair.b, *deduced, LabelSource::kDeduced);
      }
      return;
    }
  }
  if (remaining_budget_ == 0) {
    ++report.num_unlabeled;  // money ran out; leave undecided
    return;
  }
  if (remaining_budget_ > 0) --remaining_budget_;
  const auto ask = [&] { return oracle.GetLabel(pair.a, pair.b); };
  const Label label =
      options_.attempt_fault
          ? AskWithRetry(pair.a, pair.b, options_.retry,
                         options_.attempt_fault, ask)
          : ask();
  report.outcomes[report_pos] = PairOutcome{label, LabelSource::kCrowdsourced};
  ++report.num_crowdsourced;
  report.crowdsourced_per_iteration.push_back(1);
  for (auto& rule : rules_) {
    rule->Observe(pair.a, pair.b, label, LabelSource::kCrowdsourced);
  }
}

Result<LabelingReport> LabelingSession::Run(const CandidateSet& pairs,
                                            const std::vector<int32_t>& order,
                                            LabelOracle& oracle) {
  // The instant path validates inside Start(); don't pay the check twice.
  if (options_.schedule != SchedulePolicy::kInstantDecision) {
    CJ_RETURN_IF_ERROR(ValidateOrder(order, pairs.size()));
  }
  BeginRun(NumObjectsSpanned(pairs));
  switch (options_.schedule) {
    case SchedulePolicy::kSequential: {
      LabelingReport report;
      report.outcomes.resize(pairs.size());
      report.num_candidates = static_cast<int64_t>(pairs.size());
      report.num_stream_rounds = 1;
      // Fast path for the dominant cell (transitive-only chain, unbounded
      // stop): the per-pair loop runs on the cluster graph directly, with
      // no virtual rule dispatch — this is what keeps the session within
      // the direct engines' cost (bench/micro_session). Byte-identical to
      // the generic loop below; the equivalence suite pins both.
      // (A fault model routes through the generic loop: LabelOnePair owns
      // the retry logic.)
      TransitiveDeductionRule* transitive =
          rules_.size() == 1 && !options_.stop.bounded() &&
                  !options_.attempt_fault
              ? dynamic_cast<TransitiveDeductionRule*>(rules_[0].get())
              : nullptr;
      if (transitive != nullptr) {
        ClusterGraph& graph = transitive->mutable_graph();
        for (int32_t pos : order) {
          const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
          const Deduction deduction = graph.Deduce(pair.a, pair.b);
          auto& outcome = report.outcomes[static_cast<size_t>(pos)];
          if (deduction == Deduction::kUndeduced) {
            const Label label = oracle.GetLabel(pair.a, pair.b);
            outcome = PairOutcome{label, LabelSource::kCrowdsourced};
            ++report.num_crowdsourced;
            report.crowdsourced_per_iteration.push_back(1);
            // An undeduced pair cannot conflict: matching merges two
            // distinct clusters, non-matching adds an edge between them.
            graph.Add(pair.a, pair.b, label);
          } else {
            outcome =
                PairOutcome{DeductionToLabel(deduction), LabelSource::kDeduced};
            ++report.num_deduced;
          }
        }
      } else {
        for (int32_t pos : order) {
          LabelOnePair(pairs[static_cast<size_t>(pos)],
                       static_cast<size_t>(pos), oracle, report);
        }
      }
      for (const auto& rule : rules_) rule->FillReport(&report);
      return report;
    }
    case SchedulePolicy::kRoundParallel:
      return RunRoundsWithOracle(pairs, order, oracle);
    case SchedulePolicy::kInstantDecision:
      return RunInstantFifo(pairs, order, oracle);
  }
  return Status::InvalidArgument("unknown schedule policy");
}

Status LabelingSession::RunRoundsOver(const CandidateSet& pairs,
                                      const std::vector<int32_t>& order,
                                      const BatchLabelFn& label_batch,
                                      ConflictPolicy policy,
                                      const ClusterGraphSnapshot* base,
                                      size_t report_offset,
                                      LabelingReport& report) {
  if (base != nullptr) {
    // Streaming round seeded by the persistent graph: each scan reads the
    // epoch snapshot through a fresh O(1) overlay instead of copying the
    // whole graph, so per-round cost tracks round size, not total objects.
    return RunRoundsImpl(
        pairs, order, label_batch, /*fresh_graphs=*/false,
        [&] { return OverlayClusterGraph(base, policy); }, remaining_budget_,
        report_offset, report);
  }
  const int32_t num_objects = NumObjectsSpanned(pairs);
  return RunRoundsImpl(
      pairs, order, label_batch, /*fresh_graphs=*/true,
      [&] { return ClusterGraph(num_objects, policy); }, remaining_budget_,
      report_offset, report);
}

Result<LabelingReport> LabelingSession::RunRoundsWithOracle(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    LabelOracle& oracle) {
  CJ_ASSIGN_OR_RETURN(const ConflictPolicy policy,
                      RequireTransitiveOnlyChain());
  CJ_RETURN_IF_ERROR(CheckBatchSafe(oracle, options_.num_threads));
  // One pool shared by every round of this run. Created only when real
  // parallelism was requested: the single-threaded path calls the oracle
  // inline in batch order, which keeps order-dependent oracles (e.g.
  // NoisyOracle's sequential RNG stream) exactly as deterministic as the
  // pre-threading implementation.
  std::optional<ThreadPool> pool;
  if (options_.num_threads > 1) pool.emplace(options_.num_threads);

  LabelingReport report;
  report.outcomes.resize(pairs.size());
  report.num_candidates = static_cast<int64_t>(pairs.size());
  report.num_stream_rounds = 1;
  const BatchLabelFn batch_fn =
      [&](const std::vector<int32_t>& batch) -> Result<std::vector<Label>> {
    return ParallelMap(
        pool.has_value() ? &*pool : nullptr,
        static_cast<int64_t>(batch.size()), [&](int64_t i) {
          const CandidatePair& pair =
              pairs[static_cast<size_t>(batch[static_cast<size_t>(i)])];
          const auto ask = [&] { return oracle.GetLabel(pair.a, pair.b); };
          // The whole retry loop runs inside the fan-out task: every
          // decision in it is a pure hash of the pair, so the outcome is
          // the same whichever worker runs it.
          return options_.attempt_fault
                     ? AskWithRetry(pair.a, pair.b, options_.retry,
                                    options_.attempt_fault, ask)
                     : ask();
        });
  };
  CJ_RETURN_IF_ERROR(RunRoundsOver(pairs, order, batch_fn, policy,
                                   /*base=*/nullptr,
                                   /*report_offset=*/0, report));
  return report;
}

Result<LabelingReport> LabelingSession::RunWithBatchSource(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    const BatchLabelFn& label_batch) {
  if (options_.schedule != SchedulePolicy::kRoundParallel) {
    return Status::InvalidArgument(
        "RunWithBatchSource requires the round-parallel schedule");
  }
  CJ_RETURN_IF_ERROR(ValidateOrder(order, pairs.size()));
  BeginRun(NumObjectsSpanned(pairs));
  CJ_ASSIGN_OR_RETURN(const ConflictPolicy policy,
                      RequireTransitiveOnlyChain());
  LabelingReport report;
  report.outcomes.resize(pairs.size());
  report.num_candidates = static_cast<int64_t>(pairs.size());
  report.num_stream_rounds = 1;
  CJ_RETURN_IF_ERROR(RunRoundsOver(pairs, order, label_batch, policy,
                                   /*base=*/nullptr,
                                   /*report_offset=*/0, report));
  return report;
}

Result<LabelingReport> LabelingSession::RunStream(
    CandidateStream& stream, OrderKind order_kind, LabelOracle& oracle,
    const GroundTruthOracle* truth, Rng* order_rng,
    const SessionCheckpointOptions* checkpoint) {
  if (options_.schedule == SchedulePolicy::kInstantDecision) {
    return Status::InvalidArgument(
        "the instant-decision schedule cannot drive a candidate stream");
  }
  const bool checkpointing =
      checkpoint != nullptr && !checkpoint->path.empty();
  BeginRun(/*num_objects=*/0);
  ConflictPolicy policy = ConflictPolicy::kKeepFirst;
  TransitiveDeductionRule* transitive = nullptr;
  if (options_.schedule == SchedulePolicy::kRoundParallel) {
    CJ_ASSIGN_OR_RETURN(policy, RequireTransitiveOnlyChain());
    CJ_RETURN_IF_ERROR(CheckBatchSafe(oracle, options_.num_threads));
    transitive = dynamic_cast<TransitiveDeductionRule*>(rules_[0].get());
  } else if (checkpointing) {
    // The frontier persists the cluster graph as its Add log, so the
    // sequential schedule can only checkpoint a transitive-only chain too.
    CJ_ASSIGN_OR_RETURN(policy, RequireTransitiveOnlyChain());
    transitive = dynamic_cast<TransitiveDeductionRule*>(rules_[0].get());
  }
  std::optional<ThreadPool> pool;
  if (options_.schedule == SchedulePolicy::kRoundParallel &&
      options_.num_threads > 1) {
    pool.emplace(options_.num_threads);
  }

  SessionMetrics& metrics = SessionMetrics::Get();
  LabelingReport report;
  int32_t num_objects = 0;
  int64_t completed_rounds = 0;
  int64_t candidates_consumed = 0;
  int64_t skip_rounds = 0;

  if (checkpointing) {
    // Record every Add from here on; the log *is* the durable graph.
    transitive->mutable_graph().SetEdgeLogEnabled(true);
    if (checkpoint->resume) {
      auto loaded = LoadSessionCheckpoint(checkpoint->path);
      if (loaded.ok()) {
        const SessionCheckpointState& state = *loaded;
        if (state.fingerprint != checkpoint->fingerprint) {
          return Status::FailedPrecondition(StrFormat(
              "checkpoint %s was written by a different campaign "
              "(fingerprint %llx, expected %llx); refusing to resume",
              checkpoint->path.c_str(),
              static_cast<unsigned long long>(state.fingerprint),
              static_cast<unsigned long long>(checkpoint->fingerprint)));
        }
        // Restore the report-so-far, the budget, the graph (by replaying
        // the Add log — re-logged as it replays, so the next checkpoint
        // carries the full history), and the order-RNG stream position.
        report.num_candidates = state.num_candidates;
        report.num_crowdsourced = state.num_crowdsourced;
        report.num_deduced = state.num_deduced;
        report.num_unlabeled = state.num_unlabeled;
        report.num_stream_rounds = state.num_stream_rounds;
        report.crowdsourced_per_iteration = state.crowdsourced_per_iteration;
        report.outcomes = state.outcomes;
        remaining_budget_ = state.remaining_budget;
        num_objects = state.num_objects;
        for (auto& rule : rules_) rule->EnsureObjects(num_objects);
        for (const LoggedEdge& edge : state.edge_log) {
          transitive->mutable_graph().Add(edge.a, edge.b, edge.label);
        }
        if (state.has_order_rng && order_rng != nullptr) {
          order_rng->RestoreState(state.order_rng);
        }
        skip_rounds = state.completed_rounds;
        completed_rounds = state.completed_rounds;
        // The killed process took its round counters with it: credit the
        // restored rounds here so the resumed run's exported session.*
        // totals equal an uninterrupted run's.
        metrics.rounds_total->Inc(state.completed_rounds);
        metrics.candidates_total->Inc(state.num_candidates);
        metrics.oracle_calls_total->Inc(state.num_crowdsourced);
        metrics.deduced_total->Inc(state.num_deduced);
        CheckpointMetrics::Get().resumes_total->Inc();
        // Fast-forward: the stream is deterministic, so the completed
        // rounds re-emit the same candidates; consume and verify them
        // without labeling anything (and without touching the order RNG).
        int64_t skipped_candidates = 0;
        for (int64_t i = 0; i < skip_rounds; ++i) {
          CJ_ASSIGN_OR_RETURN(const CandidateSet skipped,
                              stream.NextRound());
          if (skipped.empty()) {
            return Status::FailedPrecondition(
                "stream exhausted while fast-forwarding past checkpointed "
                "rounds; the stream does not match the checkpoint");
          }
          skipped_candidates += static_cast<int64_t>(skipped.size());
        }
        if (skipped_candidates != state.candidates_consumed) {
          return Status::FailedPrecondition(StrFormat(
              "stream replayed %lld candidates over the checkpointed "
              "rounds, expected %lld; the stream does not match the "
              "checkpoint",
              static_cast<long long>(skipped_candidates),
              static_cast<long long>(state.candidates_consumed)));
        }
        candidates_consumed = state.candidates_consumed;
      } else if (loaded.status().code() != StatusCode::kNotFound) {
        return loaded.status();  // corrupt checkpoint: surface, don't clobber
      }
    }
  }

  // Writes the current frontier after a completed round (no-op between
  // checkpoint intervals or when checkpointing is off).
  const auto after_round = [&](size_t round_size) -> Status {
    ++completed_rounds;
    candidates_consumed += static_cast<int64_t>(round_size);
    if (!checkpointing) return Status::OK();
    const int64_t every =
        checkpoint->every_rounds < 1 ? 1 : checkpoint->every_rounds;
    if (completed_rounds % every != 0) return Status::OK();
    SessionCheckpointState state;
    state.fingerprint = checkpoint->fingerprint;
    state.completed_rounds = completed_rounds;
    state.candidates_consumed = candidates_consumed;
    state.num_objects = num_objects;
    state.remaining_budget = remaining_budget_;
    state.num_candidates = report.num_candidates;
    state.num_crowdsourced = report.num_crowdsourced;
    state.num_deduced = report.num_deduced;
    state.num_unlabeled = report.num_unlabeled;
    state.num_stream_rounds = report.num_stream_rounds;
    state.crowdsourced_per_iteration = report.crowdsourced_per_iteration;
    state.outcomes = report.outcomes;
    state.edge_log = transitive->graph().edge_log();
    if (order_rng != nullptr) {
      state.has_order_rng = true;
      state.order_rng = order_rng->SaveState();
    }
    const std::string encoded = EncodeSessionCheckpoint(state);
    CJ_RETURN_IF_ERROR(AtomicWriteFile(checkpoint->path, encoded));
    CheckpointMetrics& ckpt_metrics = CheckpointMetrics::Get();
    ckpt_metrics.writes_total->Inc();
    ckpt_metrics.bytes->Observe(static_cast<int64_t>(encoded.size()));
    if (checkpoint->after_write) checkpoint->after_write(completed_rounds);
    return Status::OK();
  };

  while (true) {
    CJ_ASSIGN_OR_RETURN(const CandidateSet round, stream.NextRound());
    if (round.empty()) break;  // end of stream
    // Round-granular telemetry from report deltas; the span closes at the
    // end of this loop iteration, covering ordering + labeling.
    obs::Span round_span("session.round", "session");
    const int64_t crowd_before = report.num_crowdsourced;
    const int64_t deduced_before = report.num_deduced;
    const auto record_round = [&] {
      metrics.rounds_total->Inc();
      metrics.candidates_total->Inc(static_cast<int64_t>(round.size()));
      metrics.oracle_calls_total->Inc(report.num_crowdsourced - crowd_before);
      metrics.deduced_total->Inc(report.num_deduced - deduced_before);
    };
    ++report.num_stream_rounds;
    num_objects = std::max(num_objects, NumObjectsSpanned(round));
    for (auto& rule : rules_) rule->EnsureObjects(num_objects);
    CJ_ASSIGN_OR_RETURN(
        const std::vector<int32_t> order,
        MakeLabelingOrder(round, order_kind, truth, order_rng));
    const size_t offset = report.outcomes.size();
    report.outcomes.resize(offset + round.size());
    report.num_candidates += static_cast<int64_t>(round.size());

    if (options_.schedule == SchedulePolicy::kSequential) {
      // The persistent rule chain carries deduction state across rounds,
      // so later rounds ride on earlier clusters for free.
      for (int32_t pos : order) {
        LabelOnePair(round[static_cast<size_t>(pos)],
                     offset + static_cast<size_t>(pos), oracle, report);
      }
      record_round();
      CJ_RETURN_IF_ERROR(after_round(round.size()));
      continue;
    }

    // Round-parallel: the persistent graph seeds every scan, and the
    // round's crowd answers are folded back in afterwards. Deduced labels
    // need no fold — they are implied by the graph that produced them.
    // The prefix-based scan semantics that keep a one-round stream
    // byte-identical to the materialized run rule out scanning the
    // persistent graph in place, so each Algorithm-2 iteration used to
    // copy it twice (publish scan + deduction scan) — O(total objects
    // seen) per round. Scans now read a published epoch snapshot through
    // a fresh OverlayClusterGraph, making per-scan setup O(1) and scan
    // work proportional to the round, while the snapshot isolates them
    // from the fold-back mutations below.
    const BatchLabelFn batch_fn =
        [&](const std::vector<int32_t>& batch) -> Result<std::vector<Label>> {
      return ParallelMap(
          pool.has_value() ? &*pool : nullptr,
          static_cast<int64_t>(batch.size()), [&](int64_t i) {
            const CandidatePair& pair =
                round[static_cast<size_t>(batch[static_cast<size_t>(i)])];
            const auto ask = [&] { return oracle.GetLabel(pair.a, pair.b); };
            return options_.attempt_fault
                       ? AskWithRetry(pair.a, pair.b, options_.retry,
                                      options_.attempt_fault, ask)
                       : ask();
          });
    };
    const ClusterGraphSnapshot snapshot =
        transitive->mutable_graph().Snapshot();
    CJ_RETURN_IF_ERROR(
        RunRoundsOver(round, order, batch_fn, policy, &snapshot, offset,
                      report));
    for (int32_t pos : order) {
      const std::optional<PairOutcome>& outcome =
          report.outcomes[offset + static_cast<size_t>(pos)];
      if (outcome.has_value() &&
          outcome->source == LabelSource::kCrowdsourced) {
        const CandidatePair& pair = round[static_cast<size_t>(pos)];
        transitive->Observe(pair.a, pair.b, outcome->label,
                            LabelSource::kCrowdsourced);
      }
    }
    record_round();
    CJ_RETURN_IF_ERROR(after_round(round.size()));
  }

  if (options_.schedule == SchedulePolicy::kSequential) {
    for (const auto& rule : rules_) rule->FillReport(&report);
  } else {
    // Per-round scans counted conflicts on throwaway copies; the stream's
    // total lives on the persistent graph.
    report.num_conflicts = transitive->graph().num_conflicts();
  }
  // Conflicts are only final once the stream has drained (per-round values
  // count throwaway scan copies), so the counter gets one stream-total Inc.
  metrics.conflicts_total->Inc(report.num_conflicts);
  return report;
}

// ---------------------------------------------------------------------------
// Instant-decision protocol
// ---------------------------------------------------------------------------

std::vector<int32_t> LabelingSession::InstantScan() {
  std::vector<int32_t> fresh = ParallelCrowdsourcedPairs(
      *pairs_, order_, labels_, &published_, instant_policy_);
  for (int32_t pos : fresh) {
    published_[static_cast<size_t>(pos)] = true;
    ++num_published_;
    ++num_available_;
  }
  return fresh;
}

Result<std::vector<int32_t>> LabelingSession::Start(
    const CandidateSet* pairs, std::vector<int32_t> order) {
  if (options_.schedule != SchedulePolicy::kInstantDecision) {
    return Status::InvalidArgument(
        "Start() requires the instant-decision schedule");
  }
  if (options_.stop.bounded()) {
    return Status::InvalidArgument(
        "the instant-decision schedule does not support a budget");
  }
  if (started_) {
    return Status::FailedPrecondition("Start() called twice");
  }
  EnsureDefaultRule();
  CJ_ASSIGN_OR_RETURN(instant_policy_, RequireTransitiveOnlyChain());
  CJ_RETURN_IF_ERROR(ValidateOrder(order, pairs->size()));
  pairs_ = pairs;
  order_ = std::move(order);
  labels_.assign(pairs->size(), std::nullopt);
  published_.assign(pairs->size(), false);
  num_available_ = 0;
  num_crowdsourced_ = 0;
  num_published_ = 0;
  started_ = true;
  return InstantScan();
}

Result<std::vector<int32_t>> LabelingSession::OnPairLabeled(int32_t pos,
                                                            Label label) {
  if (!started_) {
    return Status::FailedPrecondition("OnPairLabeled() before Start()");
  }
  if (pos < 0 || static_cast<size_t>(pos) >= pairs_->size()) {
    return Status::OutOfRange(StrFormat("position %d out of range", pos));
  }
  if (!published_[static_cast<size_t>(pos)]) {
    return Status::FailedPrecondition(
        StrFormat("pair at position %d was never published", pos));
  }
  if (labels_[static_cast<size_t>(pos)].has_value()) {
    return Status::AlreadyExists(
        StrFormat("pair at position %d is already labeled", pos));
  }
  labels_[static_cast<size_t>(pos)] = label;
  --num_available_;
  ++num_crowdsourced_;
  // Completing a matching pair cannot unlock new publishable pairs (the
  // scan already assumed it was matching), so skip the rescan.
  if (label == Label::kMatching) return std::vector<int32_t>{};
  return InstantScan();
}

Result<LabelingReport> LabelingSession::Finish() {
  if (!started_) {
    return Status::FailedPrecondition("Finish() before Start()");
  }
  if (num_available_ != 0) {
    return Status::FailedPrecondition(
        StrFormat("%lld published pairs are still unlabeled",
                  static_cast<long long>(num_available_)));
  }
  LabelingReport report;
  report.outcomes.resize(pairs_->size());
  report.num_candidates = static_cast<int64_t>(pairs_->size());
  report.num_stream_rounds = 1;
  report.num_crowdsourced = num_crowdsourced_;

  ClusterGraph graph(NumObjectsSpanned(*pairs_), instant_policy_);
  for (int32_t pos : order_) {
    const CandidatePair& pair = (*pairs_)[static_cast<size_t>(pos)];
    auto& label = labels_[static_cast<size_t>(pos)];
    auto& outcome = report.outcomes[static_cast<size_t>(pos)];
    if (label.has_value()) {
      if (published_[static_cast<size_t>(pos)]) {
        outcome = PairOutcome{*label, LabelSource::kCrowdsourced};
      } else {
        // Deduced on an earlier Finish() call (Finish is idempotent).
        outcome = PairOutcome{*label, LabelSource::kDeduced};
        ++report.num_deduced;
      }
      graph.Add(pair.a, pair.b, *label);
      continue;
    }
    const Deduction deduction = graph.Deduce(pair.a, pair.b);
    if (deduction == Deduction::kUndeduced) {
      return Status::Internal(StrFormat(
          "pair at position %d is neither labeled nor deducible", pos));
    }
    label = DeductionToLabel(deduction);
    outcome = PairOutcome{*label, LabelSource::kDeduced};
    ++report.num_deduced;
  }
  report.num_conflicts = graph.num_conflicts();
  return report;
}

Result<LabelingReport> LabelingSession::RunInstantFifo(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    LabelOracle& oracle) {
  // Synchronous FIFO drive of the incremental protocol: crowdsource pairs
  // in publication order, re-planning after every answer — what the
  // "Non-Parallel" campaign does without a latency model.
  CJ_ASSIGN_OR_RETURN(const std::vector<int32_t> initial,
                      Start(&pairs, std::vector<int32_t>(order)));
  std::deque<int32_t> pending(initial.begin(), initial.end());
  while (!pending.empty()) {
    const int32_t pos = pending.front();
    pending.pop_front();
    const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
    CJ_ASSIGN_OR_RETURN(
        const std::vector<int32_t> fresh,
        OnPairLabeled(pos, oracle.GetLabel(pair.a, pair.b)));
    pending.insert(pending.end(), fresh.begin(), fresh.end());
  }
  return Finish();
}

}  // namespace crowdjoin
