#include "datagen/streaming_generator.h"

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "datagen/paper_dataset.h"
#include "datagen/product_dataset.h"
#include "datagen/record_source.h"

namespace crowdjoin {
namespace {

std::vector<StreamedRecord> Drain(RecordSource& source) {
  source.Reset();
  std::vector<StreamedRecord> out;
  StreamedRecord rec;
  while (source.Next(&rec)) out.push_back(rec);
  EXPECT_TRUE(source.status().ok()) << source.status().ToString();
  return out;
}

void ExpectSameStream(const std::vector<StreamedRecord>& a,
                      const std::vector<StreamedRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].record.id, b[i].record.id) << "position " << i;
    ASSERT_EQ(a[i].record.fields, b[i].record.fields) << "position " << i;
    ASSERT_EQ(a[i].entity, b[i].entity) << "position " << i;
    ASSERT_EQ(a[i].side, b[i].side) << "position " << i;
  }
}

TEST(BlockSeed, Block0IsBaseSeedAndBlocksDiffer) {
  EXPECT_EQ(BlockSeed(42, 0), 42u);
  std::unordered_set<uint64_t> seeds;
  for (int32_t b = 0; b < 100; ++b) seeds.insert(BlockSeed(42, b));
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(StreamingPaperSource, OneXStreamMatchesMaterializedDataset) {
  PaperDatasetConfig config;
  config.seed = 21;
  StreamingPaperSource source(config, /*scale_factor=*/1);
  const Dataset dataset = GeneratePaperDataset(config).value();
  const auto stream = Drain(source);
  ASSERT_EQ(stream.size(), dataset.records.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(stream[i].record.id, dataset.records[i].id);
    ASSERT_EQ(stream[i].record.fields, dataset.records[i].fields);
    ASSERT_EQ(stream[i].entity, dataset.entity_of[i]);
  }
}

TEST(StreamingPaperSource, DeterministicPerSeedAndScaleFactor) {
  PaperDatasetConfig config;
  config.seed = 22;
  config.clusters.total_records = 200;
  config.clusters.max_cluster_size = 30;
  StreamingPaperSource a(config, /*scale_factor=*/3);
  StreamingPaperSource b(config, /*scale_factor=*/3);
  ExpectSameStream(Drain(a), Drain(b));
  // Reset reproduces the identical stream from the same source.
  const auto first = Drain(a);
  const auto second = Drain(a);
  ExpectSameStream(first, second);
}

TEST(StreamingPaperSource, ScaleFactorMultipliesRecordsWithFreshEntities) {
  PaperDatasetConfig config;
  config.seed = 23;
  config.clusters.total_records = 150;
  config.clusters.max_cluster_size = 20;
  const int32_t kScale = 4;
  StreamingPaperSource source(config, kScale);
  EXPECT_EQ(source.meta().total_records, 600);
  const auto stream = Drain(source);
  ASSERT_EQ(stream.size(), 600u);
  // Ids are dense stream positions.
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i].record.id, static_cast<ObjectId>(i));
  }
  // Entities never span blocks: the entity ids of each 150-record block
  // are disjoint from every other block's.
  std::unordered_set<int32_t> seen;
  size_t pos = 0;
  for (int32_t block = 0; block < kScale; ++block) {
    std::unordered_set<int32_t> block_entities;
    for (int32_t r = 0; r < 150; ++r, ++pos) {
      block_entities.insert(stream[pos].entity);
    }
    for (int32_t entity : block_entities) {
      EXPECT_TRUE(seen.insert(entity).second)
          << "entity " << entity << " spans blocks";
    }
  }
  // Later blocks differ in content from block 0 (fresh substreams).
  bool any_difference = false;
  for (size_t i = 0; i < 150; ++i) {
    if (stream[i].record.fields != stream[i + 150].record.fields) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(StreamingPaperSource, InvalidScaleFactorFailsCleanly) {
  PaperDatasetConfig config;
  StreamingPaperSource source(config, /*scale_factor=*/0);
  StreamedRecord rec;
  EXPECT_FALSE(source.Next(&rec));
  EXPECT_EQ(source.status().code(), StatusCode::kInvalidArgument);
}

TEST(StreamingProductSource, OneXStreamMatchesMaterializedDataset) {
  ProductDatasetConfig config;
  config.seed = 24;
  StreamingProductSource source(config, /*scale_factor=*/1);
  EXPECT_TRUE(source.meta().bipartite);
  const Dataset dataset = GenerateProductDataset(config).value();
  const auto stream = Drain(source);
  ASSERT_EQ(stream.size(), dataset.records.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_EQ(stream[i].record.fields, dataset.records[i].fields);
    ASSERT_EQ(stream[i].entity, dataset.entity_of[i]);
    ASSERT_EQ(stream[i].side, dataset.side_of[i]);
  }
}

TEST(StreamingProductSource, ScaledStreamIsDeterministicAndBipartite) {
  ProductDatasetConfig config;
  config.seed = 25;
  config.clusters.total_records = 120;
  StreamingProductSource a(config, /*scale_factor=*/5);
  StreamingProductSource b(config, /*scale_factor=*/5);
  const auto stream = Drain(a);
  ExpectSameStream(stream, Drain(b));
  ASSERT_EQ(stream.size(), 600u);
  int64_t left = 0;
  for (const auto& rec : stream) left += rec.side == 0 ? 1 : 0;
  EXPECT_GT(left, 0);
  EXPECT_LT(left, 600);
}

TEST(DatasetRecordSource, RoundTripsThroughMaterialize) {
  PaperDatasetConfig config;
  config.seed = 26;
  config.clusters.total_records = 100;
  config.clusters.max_cluster_size = 15;
  const Dataset dataset = GeneratePaperDataset(config).value();
  DatasetRecordSource source(&dataset);
  EXPECT_EQ(source.meta().total_records,
            static_cast<int64_t>(dataset.records.size()));
  const Dataset round = MaterializeDataset(source).value();
  ASSERT_EQ(round.records.size(), dataset.records.size());
  for (size_t i = 0; i < round.records.size(); ++i) {
    EXPECT_EQ(round.records[i].fields, dataset.records[i].fields);
  }
  EXPECT_EQ(round.entity_of, dataset.entity_of);
  EXPECT_EQ(round.name, dataset.name);
}

TEST(DatasetRecordSource, BipartiteSideCountsSurviveRoundTrip) {
  ProductDatasetConfig config;
  config.seed = 27;
  config.clusters.total_records = 80;
  const Dataset dataset = GenerateProductDataset(config).value();
  DatasetRecordSource source(&dataset);
  const Dataset round = MaterializeDataset(source).value();
  EXPECT_TRUE(round.bipartite);
  EXPECT_EQ(round.side_of, dataset.side_of);
  EXPECT_EQ(round.SideCount(0), dataset.SideCount(0));
  EXPECT_EQ(round.SideCount(1), dataset.SideCount(1));
  EXPECT_EQ(round.SideCount(0) + round.SideCount(1),
            static_cast<int64_t>(round.records.size()));
}

}  // namespace
}  // namespace crowdjoin
