#include "simjoin/similarity_join.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "common/string_util.h"

namespace crowdjoin {
namespace {

struct Corpus {
  TokenDictionary dictionary;
  std::vector<std::vector<int32_t>> docs;
};

Corpus MakeRandomCorpus(uint64_t seed, size_t num_docs, size_t vocabulary,
                        size_t min_len, size_t max_len) {
  Corpus corpus;
  Rng rng(seed);
  for (size_t d = 0; d < num_docs; ++d) {
    const size_t len = min_len + rng.Index(max_len - min_len + 1);
    std::vector<std::string> tokens;
    for (size_t t = 0; t < len; ++t) {
      tokens.push_back(StrFormat(
          "w%llu", static_cast<unsigned long long>(rng.Index(vocabulary))));
    }
    corpus.docs.push_back(corpus.dictionary.AddDocument(tokens));
  }
  return corpus;
}

std::vector<ScoredPair> Sorted(std::vector<ScoredPair> pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const ScoredPair& a, const ScoredPair& b) {
              if (a.left != b.left) return a.left < b.left;
              return a.right < b.right;
            });
  return pairs;
}

TEST(PrefixFilterSelfJoin, TinyHandCase) {
  TokenDictionary dict;
  std::vector<std::vector<int32_t>> docs;
  docs.push_back(dict.AddDocument({"a", "b", "c"}));
  docs.push_back(dict.AddDocument({"a", "b", "d"}));
  docs.push_back(dict.AddDocument({"x", "y"}));
  const auto result = PrefixFilterSelfJoin(docs, dict, 0.5).value();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].left, 0);
  EXPECT_EQ(result[0].right, 1);
  EXPECT_DOUBLE_EQ(result[0].score, 0.5);
}

TEST(PrefixFilterSelfJoin, ThresholdOneFindsDuplicatesOnly) {
  TokenDictionary dict;
  std::vector<std::vector<int32_t>> docs;
  docs.push_back(dict.AddDocument({"a", "b"}));
  docs.push_back(dict.AddDocument({"a", "b"}));
  docs.push_back(dict.AddDocument({"a", "c"}));
  const auto result = PrefixFilterSelfJoin(docs, dict, 1.0).value();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].left, 0);
  EXPECT_EQ(result[0].right, 1);
}

TEST(PrefixFilterSelfJoin, InvalidThresholds) {
  EXPECT_EQ(PrefixFilterSelfJoin({}, TokenDictionary(), 0.0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PrefixFilterSelfJoin({}, TokenDictionary(), 1.5).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PrefixFilterSelfJoin({}, TokenDictionary(), -1.0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PrefixFilterSelfJoin, EmptyDocsProduceNothing) {
  TokenDictionary dict;
  std::vector<std::vector<int32_t>> docs(3);  // all empty
  EXPECT_TRUE(PrefixFilterSelfJoin(docs, dict, 0.5).value().empty());
}

TEST(PrefixFilterBipartiteJoin, EmptyDocsOnEitherSideProduceNothing) {
  // Regression: an empty *left* document used to be assigned prefix
  // length 1 and the index build read past its (null) token array.
  TokenDictionary dict;
  std::vector<std::vector<int32_t>> left;
  left.push_back({});
  left.push_back(dict.AddDocument({"a", "b"}));
  std::vector<std::vector<int32_t>> right;
  right.push_back({});
  right.push_back(dict.AddDocument({"a", "b"}));
  const auto result = PrefixFilterBipartiteJoin(left, right, dict, 0.5)
                          .value();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].left, 1);
  EXPECT_EQ(result[0].right, 1);
}

class SelfJoinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SelfJoinPropertyTest, MatchesBruteForceAcrossThresholds) {
  Corpus corpus = MakeRandomCorpus(GetParam(), /*num_docs=*/80,
                                   /*vocabulary=*/60, 3, 12);
  for (double threshold : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const auto fast =
        Sorted(PrefixFilterSelfJoin(corpus.docs, corpus.dictionary, threshold)
                   .value());
    const auto slow = Sorted(BruteForceSelfJoin(corpus.docs, threshold));
    EXPECT_EQ(fast, slow) << "seed=" << GetParam()
                          << " threshold=" << threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, SelfJoinPropertyTest,
                         ::testing::Range<uint64_t>(600, 610));

class BipartiteJoinPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(BipartiteJoinPropertyTest, MatchesBruteForceAcrossThresholds) {
  Corpus corpus = MakeRandomCorpus(GetParam(), /*num_docs=*/100,
                                   /*vocabulary=*/50, 2, 10);
  std::vector<std::vector<int32_t>> left(corpus.docs.begin(),
                                         corpus.docs.begin() + 40);
  std::vector<std::vector<int32_t>> right(corpus.docs.begin() + 40,
                                          corpus.docs.end());
  for (double threshold : {0.3, 0.5, 0.7, 1.0}) {
    const auto fast = Sorted(PrefixFilterBipartiteJoin(
                                 left, right, corpus.dictionary, threshold)
                                 .value());
    const auto slow =
        Sorted(BruteForceBipartiteJoin(left, right, threshold));
    EXPECT_EQ(fast, slow) << "seed=" << GetParam()
                          << " threshold=" << threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, BipartiteJoinPropertyTest,
                         ::testing::Range<uint64_t>(700, 710));

}  // namespace
}  // namespace crowdjoin
