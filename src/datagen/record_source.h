#ifndef CROWDJOIN_DATAGEN_RECORD_SOURCE_H_
#define CROWDJOIN_DATAGEN_RECORD_SOURCE_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "datagen/dataset.h"
#include "text/record.h"

namespace crowdjoin {

/// Stream-level metadata a `RecordSource` exposes up front, so consumers
/// can size buffers and pick join shapes without draining the stream.
struct StreamMeta {
  std::string name;
  Schema schema;
  bool bipartite = false;
  /// Exact number of records the stream yields from a fresh `Reset`.
  int64_t total_records = 0;
};

/// One streamed record together with its ground truth.
struct StreamedRecord {
  Record record;
  int32_t entity = 0;  ///< true entity id; equal ids = matching records
  uint8_t side = 0;    ///< catalog side (always 0 for self-join streams)
};

/// \brief Pull-based record stream: the scale-independent way to feed the
/// machine step.
///
/// A source yields records one at a time with their ground truth, holding
/// only O(current cluster) state, so million-record workloads never
/// materialize a whole `Dataset`. Ids are dense stream positions
/// (`record.id == number of records yielded before it`), which is what the
/// candidate generator and cluster graph expect.
///
/// Usage:
///
///     StreamedRecord rec;
///     while (source.Next(&rec)) Consume(rec);
///     CJ_RETURN_IF_ERROR(source.status());
///
/// `Next` returns false both at end-of-stream and on error; `status()`
/// distinguishes the two. Sources are deterministic: a given configuration
/// yields the identical record sequence on every fresh source or `Reset`.
class RecordSource {
 public:
  virtual ~RecordSource() = default;

  virtual const StreamMeta& meta() const = 0;

  /// Yields the next record into `*out`. Returns false when the stream is
  /// exhausted or has failed (see `status()`).
  virtual bool Next(StreamedRecord* out) = 0;

  /// Rewinds to the beginning of the (identical) stream.
  virtual void Reset() = 0;

  /// OK unless the stream terminated due to an error.
  virtual Status status() const { return Status::OK(); }
};

/// \brief Adapter presenting an in-memory `Dataset` as a `RecordSource`,
/// so every streaming consumer also works on the materialized paper-scale
/// datasets (and equivalence tests can compare the two paths directly).
class DatasetRecordSource : public RecordSource {
 public:
  /// `dataset` must outlive the source.
  explicit DatasetRecordSource(const Dataset* dataset);

  const StreamMeta& meta() const override { return meta_; }
  bool Next(StreamedRecord* out) override;
  void Reset() override { pos_ = 0; }

 private:
  const Dataset* dataset_;
  StreamMeta meta_;
  size_t pos_ = 0;
};

/// Drains `source` (from a fresh `Reset`) into an in-memory `Dataset`.
/// The inverse of `DatasetRecordSource`; the batch generators are
/// implemented as `Materialize(streaming source)`, which is what makes the
/// 1x stream byte-identical to the materialized dataset by construction.
Result<Dataset> MaterializeDataset(RecordSource& source);

}  // namespace crowdjoin

#endif  // CROWDJOIN_DATAGEN_RECORD_SOURCE_H_
