#include "core/budget_labeler.h"

#include "common/macros.h"
#include "core/labeling_session.h"

namespace crowdjoin {

Result<BudgetLabeler::RunResult> BudgetLabeler::Run(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    int64_t budget, LabelOracle& oracle) const {
  if (budget < 0) {
    return Status::InvalidArgument("budget must be non-negative");
  }
  LabelingSessionOptions options;
  options.schedule = SchedulePolicy::kSequential;
  options.stop = StopPolicy::Budget(budget);
  LabelingSession session(options);
  CJ_ASSIGN_OR_RETURN(LabelingReport report,
                      session.Run(pairs, order, oracle));
  RunResult result;
  result.outcomes = std::move(report.outcomes);
  result.num_crowdsourced = report.num_crowdsourced;
  result.num_deduced = report.num_deduced;
  result.num_unlabeled = report.num_unlabeled;
  return result;
}

}  // namespace crowdjoin
