#ifndef CROWDJOIN_CROWD_CONFIG_H_
#define CROWDJOIN_CROWD_CONFIG_H_

#include <cstdint>

#include "core/retry_policy.h"
#include "crowd/faults.h"

namespace crowdjoin {

/// \brief Parameters of the simulated crowdsourcing platform (AMT stand-in).
///
/// Defaults follow Section 6.4: 20 pairs batched per HIT, 3 assignments per
/// HIT (majority vote), 2 cents per assignment. The latency model has two
/// components per assignment: a pickup delay (a HIT sitting unnoticed on
/// the platform — the dominant cost when few HITs are available) and a
/// service time (the worker actually answering), both drawn per assignment.
struct CrowdConfig {
  int pairs_per_hit = 20;
  int assignments_per_hit = 3;  ///< must be odd for clean majority votes
  double cents_per_assignment = 2.0;

  int num_workers = 15;
  double mean_pickup_hours = 0.30;   ///< exponential mean
  double mean_service_hours = 0.35;  ///< lognormal mean (per assignment)
  double service_sigma = 0.60;       ///< lognormal shape

  /// Per-assignment error rates: P(answer non-matching | truly matching)
  /// and P(answer matching | truly non-matching). Worker heterogeneity adds
  /// N(0, worker_rate_stddev) per worker, clamped to [0, 0.95].
  double false_negative_rate = 0.0;
  double false_positive_rate = 0.0;
  double worker_rate_stddev = 0.0;

  /// Section 6.4's qualification test: workers must answer
  /// `qualification_questions` screening pairs correctly before they may
  /// work on HITs; failing workers are excluded from the pool.
  bool use_qualification_test = false;
  int qualification_questions = 3;

  /// Worker threads the round-based parallel labeler uses to fan out the
  /// oracle calls of one published batch (see ParallelLabeler). <= 1 keeps
  /// labeling single-threaded. By contract the LabelingResult is identical
  /// for every value; only wall clock changes.
  int num_threads = 1;

  uint64_t seed = 7;

  /// What goes wrong (worker abandonment, stragglers, spammers, HIT
  /// expiry, flaky publishes). Every field defaults to off; a disabled
  /// plan leaves the simulation byte-identical to the pre-fault code.
  FaultPlan faults;

  /// How the campaign recovers: attempt cap, exponential backoff with
  /// seeded jitter, and the re-ask quorum margin. `retry.seed == 0` means
  /// "derive from the campaign seed" wherever a campaign wires this up.
  RetryPolicy retry;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_CROWD_CONFIG_H_
