#include "datagen/wordlists.h"

namespace crowdjoin {
namespace wordlists {

const std::vector<std::string_view>& TitleWords() {
  static const std::vector<std::string_view> kWords = {
      "learning",     "data",        "efficient",   "query",
      "processing",   "distributed", "systems",     "approach",
      "analysis",     "models",      "networks",    "algorithms",
      "optimization", "mining",      "databases",   "scalable",
      "parallel",     "adaptive",    "evaluation",  "framework",
      "clustering",   "integration", "management",  "knowledge",
      "discovery",    "indexing",    "retrieval",   "information",
      "semantic",     "schema",      "matching",    "entity",
      "resolution",   "records",     "linkage",     "duplicate",
      "detection",    "streams",     "temporal",    "spatial",
      "probabilistic","graphical",   "inference",   "estimation",
      "sampling",     "approximate", "aggregation", "joins",
      "selectivity",  "cardinality", "cost",        "transactions",
      "concurrency",  "recovery",    "logging",     "storage",
      "memory",       "cache",       "buffer",      "disk",
      "partitioning", "replication", "consistency", "availability",
      "fault",        "tolerant",    "consensus",   "coordination",
      "scheduling",   "workload",    "performance", "benchmark",
      "tuning",       "monitoring",  "profiling",   "visualization",
      "interactive",  "exploration", "crowdsourcing","human",
      "computation",  "hybrid",      "machine",     "classification",
      "regression",   "ranking",     "recommendation","filtering",
      "collaborative","feedback",    "active",      "online",
      "incremental",  "dynamic",     "static",      "hierarchical",
      "structured",   "unstructured","relational",  "graph",
      "tree",         "sequence",    "pattern",     "rules",
      "association",  "frequent",    "itemsets",    "dimensionality",
      "reduction",    "feature",     "selection",   "extraction",
      "transformation","normalization","cleaning",  "quality",
      "provenance",   "lineage",     "metadata",    "catalog",
      "warehouse",    "olap",        "cube",        "materialized",
      "views",        "rewriting",   "planning",    "execution",
      "compilation",  "vectorized",  "compression", "encoding",
      "sketches",     "histograms",  "wavelets",    "summaries",
      "privacy",      "security",    "anonymization","encryption",
      "federated",    "cloud",       "elastic",     "serverless",
      "transactional","analytical",  "workflows",   "pipelines",
      "provisioning", "virtualization","containers", "kernels",
      "support",      "vector",      "machines",    "neural",
      "deep",         "reinforcement","supervised", "unsupervised",
      "generative",   "discriminative","bayesian",  "markov",
      "random",       "fields",      "chains",      "montecarlo",
      "gradient",     "descent",     "convex",      "robust",
  };
  return kWords;
}

const std::vector<std::string_view>& FirstNames() {
  static const std::vector<std::string_view> kNames = {
      "james",   "mary",    "john",    "patricia", "robert",  "jennifer",
      "michael", "linda",   "william", "elizabeth","david",   "barbara",
      "richard", "susan",   "joseph",  "jessica",  "thomas",  "sarah",
      "charles", "karen",   "wei",     "li",       "yan",     "jun",
      "ming",    "hao",     "feng",    "lei",      "xin",     "yu",
      "akira",   "yuki",    "hiroshi", "kenji",    "sanjay",  "rajesh",
      "priya",   "amit",    "ravi",    "anand",    "pierre",  "marie",
      "jean",    "claude",  "hans",    "klaus",    "ingrid",  "sven",
      "carlos",  "maria",   "jose",    "ana",      "pavel",   "olga",
      "ivan",    "natasha", "ahmed",   "fatima",   "omar",    "leila",
  };
  return kNames;
}

const std::vector<std::string_view>& LastNames() {
  static const std::vector<std::string_view> kNames = {
      "smith",    "johnson",  "williams", "brown",    "jones",
      "garcia",   "miller",   "davis",    "rodriguez","martinez",
      "hernandez","lopez",    "gonzalez", "wilson",   "anderson",
      "thomas",   "taylor",   "moore",    "jackson",  "martin",
      "lee",      "perez",    "thompson", "white",    "harris",
      "sanchez",  "clark",    "ramirez",  "lewis",    "robinson",
      "walker",   "young",    "allen",    "king",     "wright",
      "scott",    "torres",   "nguyen",   "hill",     "flores",
      "green",    "adams",    "nelson",   "baker",    "hall",
      "rivera",   "campbell", "mitchell", "carter",   "roberts",
      "chen",     "wang",     "zhang",    "liu",      "yang",
      "huang",    "zhao",     "wu",       "zhou",     "xu",
      "sun",      "ma",       "zhu",      "hu",       "guo",
      "tanaka",   "suzuki",   "watanabe", "yamamoto", "nakamura",
      "kumar",    "sharma",   "patel",    "singh",    "gupta",
      "mueller",  "schmidt",  "schneider","fischer",  "weber",
  };
  return kNames;
}

const std::vector<std::pair<std::string_view, std::string_view>>& Venues() {
  static const std::vector<std::pair<std::string_view, std::string_view>>
      kVenues = {
          {"proceedings of the acm sigmod international conference on "
           "management of data",
           "sigmod"},
          {"proceedings of the international conference on very large data "
           "bases",
           "vldb"},
          {"proceedings of the ieee international conference on data "
           "engineering",
           "icde"},
          {"proceedings of the acm sigkdd conference on knowledge discovery "
           "and data mining",
           "kdd"},
          {"proceedings of the international conference on machine learning",
           "icml"},
          {"advances in neural information processing systems", "nips"},
          {"proceedings of the national conference on artificial "
           "intelligence",
           "aaai"},
          {"proceedings of the international joint conference on artificial "
           "intelligence",
           "ijcai"},
          {"acm transactions on database systems", "tods"},
          {"the vldb journal", "vldbj"},
          {"ieee transactions on knowledge and data engineering", "tkde"},
          {"machine learning journal", "mlj"},
          {"journal of artificial intelligence research", "jair"},
          {"proceedings of the conference on information and knowledge "
           "management",
           "cikm"},
          {"proceedings of the symposium on principles of database systems",
           "pods"},
      };
  return kVenues;
}

const std::vector<std::string_view>& Brands() {
  static const std::vector<std::string_view> kBrands = {
      "sony",      "panasonic", "samsung",  "toshiba",  "sharp",
      "philips",   "pioneer",   "yamaha",   "denon",    "onkyo",
      "bose",      "jbl",       "klipsch",  "polk",     "sennheiser",
      "canon",     "nikon",     "olympus",  "fujifilm", "pentax",
      "garmin",    "tomtom",    "magellan", "netgear",  "linksys",
      "dlink",     "belkin",    "logitech", "kensington","targus",
      "sandisk",   "kingston",  "lexar",    "seagate",  "maxtor",
      "frigidaire","whirlpool", "maytag",   "kenmore",  "haier",
      "delonghi",  "cuisinart", "krups",    "braun",    "oster",
  };
  return kBrands;
}

const std::vector<std::string_view>& ProductNouns() {
  static const std::vector<std::string_view> kNouns = {
      "television", "tv",        "monitor",   "speaker",   "subwoofer",
      "receiver",   "amplifier", "headphones","earbuds",   "soundbar",
      "camera",     "camcorder", "lens",      "flash",     "tripod",
      "router",     "switch",    "adapter",   "modem",     "antenna",
      "keyboard",   "mouse",     "webcam",    "microphone","headset",
      "drive",      "card",      "reader",    "enclosure", "dock",
      "refrigerator","freezer",  "dishwasher","microwave", "oven",
      "range",      "washer",    "dryer",     "vacuum",    "purifier",
      "coffeemaker","espresso",  "grinder",   "toaster",   "blender",
      "player",     "recorder",  "turntable", "radio",     "clock",
      "gps",        "navigator", "charger",   "battery",   "remote",
      "cable",      "mount",     "stand",     "case",      "bag",
  };
  return kNouns;
}

const std::vector<std::string_view>& ProductAdjectives() {
  static const std::vector<std::string_view> kAdjectives = {
      "black",    "white",   "silver",   "stainless", "steel",
      "portable", "wireless","bluetooth","digital",   "compact",
      "widescreen","flat",   "curved",   "hd",        "1080p",
      "720p",     "4k",      "lcd",      "led",       "plasma",
      "inch",     "series",  "edition",  "pro",       "slim",
      "mini",     "ultra",   "premium",  "home",      "theater",
      "channel",  "watt",    "gb",       "tb",        "usb",
      "hdmi",     "optical", "zoom",     "megapixel", "touchscreen",
      "rechargeable","energy","efficient","countertop","builtin",
  };
  return kAdjectives;
}

}  // namespace wordlists
}  // namespace crowdjoin
