#include "crowd/platform.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "obs/metrics.h"

namespace crowdjoin {

namespace {

// Fault-path telemetry, shared by every platform instance.
struct PlatformFaultMetrics {
  obs::Counter* assignments_abandoned_total;
  obs::Counter* hits_expired_total;
  obs::Counter* publish_failures_total;

  static PlatformFaultMetrics& Get() {
    static PlatformFaultMetrics metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return PlatformFaultMetrics{
          registry.GetCounter("crowd.assignments_abandoned_total"),
          registry.GetCounter("crowd.hits_expired_total"),
          registry.GetCounter("crowd.publish_failures_total")};
    }();
    return metrics;
  }
};

}  // namespace

CrowdPlatform::CrowdPlatform(const CrowdConfig& config,
                             const GroundTruthOracle* truth)
    : config_(config),
      truth_(truth),
      rng_(config.seed),
      faults_(config.faults) {
  CJ_CHECK(config_.pairs_per_hit >= 1);
  CJ_CHECK(config_.assignments_per_hit >= 1);
  CJ_CHECK(config_.num_workers >= config_.assignments_per_hit);
  BuildWorkerPool();
}

void CrowdPlatform::BuildWorkerPool() {
  auto clamp_rate = [](double rate) {
    return std::clamp(rate, 0.0, 0.95);
  };
  // Regenerate until at least `assignments_per_hit` workers pass the
  // qualification test, so every HIT can be staffed.
  while (true) {
    workers_.clear();
    for (int w = 0; w < config_.num_workers; ++w) {
      Worker worker;
      worker.false_negative_rate = clamp_rate(
          config_.false_negative_rate +
          rng_.Normal(0.0, config_.worker_rate_stddev));
      worker.false_positive_rate = clamp_rate(
          config_.false_positive_rate +
          rng_.Normal(0.0, config_.worker_rate_stddev));
      if (config_.use_qualification_test) {
        // The screening set mixes matching and non-matching pairs; the
        // worker must answer every question correctly to qualify.
        bool passed = true;
        for (int q = 0; q < config_.qualification_questions; ++q) {
          const bool question_is_matching = (q % 2 == 0);
          const double error_rate = question_is_matching
                                        ? worker.false_negative_rate
                                        : worker.false_positive_rate;
          if (rng_.Bernoulli(error_rate)) {
            passed = false;
            break;
          }
        }
        if (!passed) continue;
      }
      workers_.push_back(worker);
    }
    if (static_cast<int>(workers_.size()) >= config_.assignments_per_hit) {
      break;
    }
  }
  // Fault roles are pure hashes of the worker's pool index — assigned
  // after the pool settles, so they neither consume RNG draws nor perturb
  // the qualification stream (a disabled plan stays byte-identical).
  if (faults_.enabled()) {
    for (size_t w = 0; w < workers_.size(); ++w) {
      workers_[w].spammer = faults_.WorkerIsSpammer(static_cast<int>(w));
      workers_[w].service_multiplier =
          faults_.WorkerServiceMultiplier(static_cast<int>(w));
    }
  }
}

Result<int64_t> CrowdPlatform::PublishHit(std::vector<PairTask> tasks) {
  if (tasks.empty()) {
    return Status::InvalidArgument("cannot publish an empty HIT");
  }
  if (static_cast<int>(tasks.size()) > config_.pairs_per_hit) {
    return Status::InvalidArgument("HIT exceeds pairs_per_hit");
  }
  if (faults_.plan().publish_failure_rate > 0.0) {
    // Coin keyed on (accepted publishes, consecutive failures): each retry
    // of the same logical publish flips a fresh coin, so a retry loop
    // terminates deterministically.
    if (faults_.PublishFails(static_cast<uint64_t>(hits_.size()),
                             publish_attempt_ + 1)) {
      ++publish_attempt_;
      ++num_publish_failures_;
      PlatformFaultMetrics::Get().publish_failures_total->Inc();
      return Status::Internal("transient publish failure (injected)");
    }
    publish_attempt_ = 0;
  }
  Hit hit;
  hit.published_at_hours = now_hours_;
  hit.matching_votes.assign(tasks.size(), 0);
  hit.tasks = std::move(tasks);
  hits_.push_back(std::move(hit));
  const int64_t hit_id = static_cast<int64_t>(hits_.size()) - 1;
  ScheduleAssignments();
  return hit_id;
}

void CrowdPlatform::ScheduleAssignments() {
  // Greedy: repeatedly give the earliest-free worker the oldest published
  // HIT they have not yet answered that still needs assignments.
  while (true) {
    // Workers sorted by availability; try each until one can take work.
    std::vector<int> worker_order(workers_.size());
    for (size_t w = 0; w < workers_.size(); ++w) {
      worker_order[w] = static_cast<int>(w);
    }
    std::sort(worker_order.begin(), worker_order.end(), [this](int x, int y) {
      if (workers_[static_cast<size_t>(x)].free_at_hours !=
          workers_[static_cast<size_t>(y)].free_at_hours) {
        return workers_[static_cast<size_t>(x)].free_at_hours <
               workers_[static_cast<size_t>(y)].free_at_hours;
      }
      return x < y;
    });
    // Skip the closed prefix of the HIT list (monotone pointer; expiry
    // closes a HIT with slots still open, abandonment can reopen one).
    while (first_open_hit_ < hits_.size() &&
           (hits_[first_open_hit_].expired ||
            hits_[first_open_hit_].assignments_started >=
                config_.assignments_per_hit)) {
      ++first_open_hit_;
    }
    bool assigned = false;
    for (int w : worker_order) {
      for (size_t h = first_open_hit_; h < hits_.size(); ++h) {
        Hit& hit = hits_[h];
        if (hit.expired) continue;
        if (hit.assignments_started >= config_.assignments_per_hit) continue;
        if (hit.workers_used.contains(w)) continue;
        // Start after the worker frees up and the HIT exists; the pickup
        // delay models the task sitting unnoticed on the platform.
        const double pickup = rng_.Exponential(config_.mean_pickup_hours);
        const double service_mu =
            std::log(config_.mean_service_hours) -
            0.5 * config_.service_sigma * config_.service_sigma;
        const double service =
            rng_.LogNormal(service_mu, config_.service_sigma) *
            workers_[static_cast<size_t>(w)].service_multiplier;
        const double start =
            std::max(workers_[static_cast<size_t>(w)].free_at_hours,
                     hit.published_at_hours) +
            pickup;
        AssignmentEvent event;
        event.completes_at_hours = start + service;
        event.worker = w;
        event.hit_id = static_cast<int64_t>(h);
        events_.push(event);
        workers_[static_cast<size_t>(w)].free_at_hours =
            event.completes_at_hours;
        hit.workers_used.insert(w);
        ++hit.assignments_started;
        assigned = true;
        break;
      }
      if (assigned) break;
    }
    if (!assigned) return;
  }
}

std::optional<int64_t> CrowdPlatform::CompleteAssignment(
    const AssignmentEvent& event) {
  Hit& hit = hits_[static_cast<size_t>(event.hit_id)];
  const Worker& worker = workers_[static_cast<size_t>(event.worker)];
  if (faults_.plan().abandonment_rate > 0.0 &&
      faults_.AssignmentAbandoned(static_cast<uint64_t>(event.hit_id),
                                  event.worker, hit.abandoned_count)) {
    // The worker walks away: no answers, no billing; the slot reopens and
    // the worker may re-accept (a fresh coin — keyed on the bumped
    // counter — so nobody abandons the same HIT forever).
    ++hit.abandoned_count;
    ++num_assignments_abandoned_;
    PlatformFaultMetrics::Get().assignments_abandoned_total->Inc();
    --hit.assignments_started;
    hit.workers_used.erase(event.worker);
    first_open_hit_ =
        std::min(first_open_hit_, static_cast<size_t>(event.hit_id));
    return std::nullopt;
  }
  for (size_t t = 0; t < hit.tasks.size(); ++t) {
    const PairTask& task = hit.tasks[t];
    const Label real = truth_->Truth(task.a, task.b);
    Label answer = real;
    if (real == Label::kMatching) {
      if (rng_.Bernoulli(worker.false_negative_rate)) {
        answer = Label::kNonMatching;
      }
    } else if (rng_.Bernoulli(worker.false_positive_rate)) {
      answer = Label::kMatching;
    }
    if (worker.spammer) {
      // Spammers invert whatever they would have answered. Deliberately
      // applied after the error draw so spammer runs consume the same RNG
      // stream as honest runs of the same seed.
      answer = answer == Label::kMatching ? Label::kNonMatching
                                          : Label::kMatching;
    }
    if (answer == Label::kMatching) ++hit.matching_votes[t];
  }
  ++hit.assignments_done;
  ++num_assignments_completed_;
  if (hit.assignments_done == config_.assignments_per_hit) {
    return event.hit_id;
  }
  return std::nullopt;
}

HitResult CrowdPlatform::MakeHitResult(int64_t hit_id, const Hit& hit) const {
  HitResult result;
  result.hit_id = hit_id;
  result.completed_at_hours = now_hours_;
  result.num_assignments = hit.assignments_done;
  result.expired = hit.expired;
  result.pairs.reserve(hit.tasks.size());
  for (size_t t = 0; t < hit.tasks.size(); ++t) {
    // Majority of the votes actually collected; an even split (or an
    // expired HIT with no votes) counts as non-matching.
    const bool matching = 2 * hit.matching_votes[t] > hit.assignments_done;
    result.pairs.push_back({hit.tasks[t].position,
                            matching ? Label::kMatching : Label::kNonMatching,
                            hit.matching_votes[t]});
  }
  return result;
}

std::optional<HitResult> CrowdPlatform::RunUntilNextHitCompletion() {
  while (!events_.empty()) {
    const AssignmentEvent event = events_.top();
    events_.pop();
    now_hours_ = std::max(now_hours_, event.completes_at_hours);
    Hit& event_hit = hits_[static_cast<size_t>(event.hit_id)];
    if (event_hit.expired) continue;  // late work for an expired HIT
    if (faults_.plan().hit_expiry_hours > 0.0 &&
        event.completes_at_hours >
            event_hit.published_at_hours +
                faults_.plan().hit_expiry_hours) {
      // The deadline passed before this assignment landed: the HIT comes
      // back expired with whatever votes it had, and the publisher
      // decides whether to repost. Still-in-flight assignments for it are
      // dropped as their events pop.
      event_hit.expired = true;
      ++num_hits_expired_;
      PlatformFaultMetrics::Get().hits_expired_total->Inc();
      ScheduleAssignments();
      return MakeHitResult(event.hit_id, event_hit);
    }
    const std::optional<int64_t> done_hit = CompleteAssignment(event);
    ScheduleAssignments();
    if (!done_hit.has_value()) continue;
    ++num_hits_completed_;
    return MakeHitResult(*done_hit, hits_[static_cast<size_t>(*done_hit)]);
  }
  return std::nullopt;
}

}  // namespace crowdjoin
