// Microbenchmark for the verification kernel behind the similarity joins:
// the exact-Jaccard merge with threshold early exit (`BoundedJaccard` /
// `BoundedJaccardSeeded`) and the internal merge variants it dispatches
// between. The joins spend most of their candidate time here, so CI runs
// this alongside micro_simjoin to catch kernel regressions.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "text/set_similarity.h"

namespace crowdjoin {
namespace {

struct Pair {
  std::vector<int32_t> a;
  std::vector<int32_t> b;
  size_t seed_a = 0;  // first common element consumed (position + 1)
  size_t seed_b = 0;
  size_t seed_overlap = 0;
};

// `len` distinct sorted values from `[base, base + universe)`; oversamples
// and dedups until the set is full.
std::vector<int32_t> RandomSortedSet(Rng& rng, size_t len, int32_t base,
                                     int32_t universe) {
  std::vector<int32_t> out;
  out.reserve(len * 2);
  while (true) {
    while (out.size() < len * 2) {
      out.push_back(base + static_cast<int32_t>(rng.Index(
                               static_cast<size_t>(universe))));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    if (out.size() >= len) {
      out.resize(len);
      return out;
    }
  }
}

// A batch of pairs whose overlaps straddle the threshold's required
// overlap, so the kernels exercise both the early-exit and the
// full-merge paths the way join verification does.
std::vector<Pair> MakePairs(size_t count, size_t len_a, size_t len_b,
                            double threshold) {
  Rng rng(2024);
  const auto universe = static_cast<int32_t>((len_a + len_b) * 4);
  std::vector<Pair> pairs;
  pairs.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    Pair pair;
    pair.a = RandomSortedSet(rng, len_a, 0, universe);
    // Target overlap sweeps 0.2x..1.2x of the required overlap.
    const size_t required = RequiredOverlap(threshold, len_a, len_b);
    const size_t target = std::min(
        {len_a, len_b,
         static_cast<size_t>(static_cast<double>(required) *
                             (0.2 + 1.0 * static_cast<double>(k) /
                                        static_cast<double>(count)))});
    std::vector<int32_t> shared = pair.a;
    rng.Shuffle(shared);
    shared.resize(target);
    // Disjoint filler drawn past the universe so sizes stay exact.
    const std::vector<int32_t> filler = RandomSortedSet(
        rng, len_b - target, universe, universe * 4);
    shared.insert(shared.end(), filler.begin(), filler.end());
    std::sort(shared.begin(), shared.end());
    pair.b = std::move(shared);
    // Seed at the first common element, as the joins do from the prefix
    // match.
    size_t i = 0;
    size_t j = 0;
    while (i < pair.a.size() && j < pair.b.size()) {
      if (pair.a[i] < pair.b[j]) {
        ++i;
      } else if (pair.a[i] > pair.b[j]) {
        ++j;
      } else {
        pair.seed_a = i + 1;
        pair.seed_b = j + 1;
        pair.seed_overlap = 1;
        break;
      }
    }
    pairs.push_back(std::move(pair));
  }
  return pairs;
}

template <typename Fn>
void RunKernel(benchmark::State& state, size_t len_a, size_t len_b,
               double threshold, Fn fn) {
  const std::vector<Pair> pairs = MakePairs(512, len_a, len_b, threshold);
  double sink = 0.0;
  for (auto _ : state) {
    for (const Pair& pair : pairs) {
      sink += fn(pair);
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pairs.size()));
}

// The public dispatcher, unseeded: what brute-force-style callers pay.
void BM_BoundedJaccard(benchmark::State& state) {
  const auto len = static_cast<size_t>(state.range(0));
  const double threshold = static_cast<double>(state.range(1)) / 10.0;
  RunKernel(state, len, len, threshold, [&](const Pair& p) {
    return BoundedJaccard(p.a, p.b, threshold);
  });
}
BENCHMARK(BM_BoundedJaccard)
    ->Args({8, 5})
    ->Args({8, 8})
    ->Args({64, 5})
    ->Args({64, 8})
    ->Args({512, 5})
    ->Args({512, 8});

// The seeded entry point, resuming past the first match — what the joins
// actually call per candidate.
void BM_BoundedJaccardSeeded(benchmark::State& state) {
  const auto len = static_cast<size_t>(state.range(0));
  const double threshold = static_cast<double>(state.range(1)) / 10.0;
  RunKernel(state, len, len, threshold, [&](const Pair& p) {
    if (p.seed_overlap == 0) return BoundedJaccard(p.a, p.b, threshold);
    return BoundedJaccardSeeded(p.a.data(), p.a.size(), p.b.data(),
                                p.b.size(), p.seed_a, p.seed_b,
                                p.seed_overlap, threshold);
  });
}
BENCHMARK(BM_BoundedJaccardSeeded)
    ->Args({8, 5})
    ->Args({8, 8})
    ->Args({64, 5})
    ->Args({64, 8})
    ->Args({512, 5})
    ->Args({512, 8});

// The raw merge variants at equal sizes: branch-per-element vs the
// branchless block merge the dispatcher uses. Kept measured so the
// dispatch choice stays an empirical one.
void BM_MergeVerifyBranchy(benchmark::State& state) {
  const auto len = static_cast<size_t>(state.range(0));
  const double threshold = static_cast<double>(state.range(1)) / 10.0;
  const size_t required = RequiredOverlap(threshold, len, len);
  RunKernel(state, len, len, threshold, [&](const Pair& p) {
    return internal::MergeVerifyBranchy(p.a.data(), p.a.size(), p.b.data(),
                                        p.b.size(), 0, 0, 0, required);
  });
}
BENCHMARK(BM_MergeVerifyBranchy)
    ->Args({8, 5})
    ->Args({64, 5})
    ->Args({512, 5})
    ->Args({512, 8});

void BM_MergeVerifyBlock(benchmark::State& state) {
  const auto len = static_cast<size_t>(state.range(0));
  const double threshold = static_cast<double>(state.range(1)) / 10.0;
  const size_t required = RequiredOverlap(threshold, len, len);
  RunKernel(state, len, len, threshold, [&](const Pair& p) {
    return internal::MergeVerifyBlock(p.a.data(), p.a.size(), p.b.data(),
                                      p.b.size(), 0, 0, 0, required);
  });
}
BENCHMARK(BM_MergeVerifyBlock)
    ->Args({8, 5})
    ->Args({64, 5})
    ->Args({512, 5})
    ->Args({512, 8});

// Size-skewed remainders: galloping vs linear block merge. The threshold
// must keep the required overlap below the short side or both kernels
// exit before merging anything; 0.001 keeps the merge honest at every
// skew measured here, mirroring the seeded calls where one remainder is
// nearly exhausted.
void BM_MergeVerifyGallopSkew(benchmark::State& state) {
  const auto len_a = static_cast<size_t>(state.range(0));
  const auto len_b = static_cast<size_t>(state.range(1));
  const double threshold = 0.001;
  const size_t required = RequiredOverlap(threshold, len_a, len_b);
  RunKernel(state, len_a, len_b, threshold, [&](const Pair& p) {
    return internal::MergeVerifyGallop(p.a.data(), p.a.size(), p.b.data(),
                                       p.b.size(), 0, 0, 0, required);
  });
}
BENCHMARK(BM_MergeVerifyGallopSkew)
    ->Args({8, 512})
    ->Args({16, 1024})
    ->Args({8, 4096})
    ->Args({4, 8192});

void BM_MergeVerifyBlockSkew(benchmark::State& state) {
  const auto len_a = static_cast<size_t>(state.range(0));
  const auto len_b = static_cast<size_t>(state.range(1));
  const double threshold = 0.001;
  const size_t required = RequiredOverlap(threshold, len_a, len_b);
  RunKernel(state, len_a, len_b, threshold, [&](const Pair& p) {
    return internal::MergeVerifyBlock(p.a.data(), p.a.size(), p.b.data(),
                                      p.b.size(), 0, 0, 0, required);
  });
}
BENCHMARK(BM_MergeVerifyBlockSkew)
    ->Args({8, 512})
    ->Args({16, 1024})
    ->Args({8, 4096})
    ->Args({4, 8192});

// Unbounded exact Jaccard: the floor any verifier pays without the
// threshold early exit.
void BM_JaccardSimilarity(benchmark::State& state) {
  const auto len = static_cast<size_t>(state.range(0));
  RunKernel(state, len, len, 0.5, [&](const Pair& p) {
    return JaccardSimilarity(p.a, p.b);
  });
}
BENCHMARK(BM_JaccardSimilarity)->Args({8, 0})->Args({64, 0})->Args({512, 0});

}  // namespace
}  // namespace crowdjoin

BENCHMARK_MAIN();
