#ifndef CROWDJOIN_CORE_SEQUENTIAL_LABELER_H_
#define CROWDJOIN_CORE_SEQUENTIAL_LABELER_H_

#include <vector>

#include "common/result.h"
#include "core/candidate.h"
#include "core/labeling_result.h"
#include "core/labeling_session.h"
#include "core/oracle.h"
#include "graph/cluster_graph.h"

namespace crowdjoin {

/// \brief The simple one-pair-at-a-time labeling algorithm of Section 3.2.
///
/// Walks the labeling order; each pair is deduced from the prefix of
/// already-labeled pairs via the ClusterGraph when possible, and
/// crowdsourced (one oracle query) otherwise. This defines the canonical
/// crowdsourced-pair count C(ω) of Section 4 — the parallel labeler
/// crowdsources exactly the same set of pairs, only in batches.
///
/// Thin wrapper over `LabelingSession` (sequential schedule, unbounded
/// stop, transitive rule); outputs are byte-identical to the pre-session
/// implementation, pinned by the session equivalence suite.
class SequentialLabeler {
 public:
  /// `policy` governs contradictory labels (only reachable with noisy
  /// oracles; see ClusterGraph).
  explicit SequentialLabeler(
      ConflictPolicy policy = ConflictPolicy::kKeepFirst)
      : policy_(policy) {}

  /// Labels `pairs` following `order` (a permutation of positions into
  /// `pairs`), querying `oracle` for every non-deducible pair.
  ///
  /// Returns InvalidArgument if `order` is not a permutation of
  /// `[0, pairs.size())`.
  Result<LabelingResult> Run(const CandidateSet& pairs,
                             const std::vector<int32_t>& order,
                             LabelOracle& oracle) const;

 private:
  ConflictPolicy policy_;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_CORE_SEQUENTIAL_LABELER_H_
