// Microbenchmark: the measure-generic join across the three similarity
// measures — what does swapping Jaccard for edit distance or TF-IDF
// cosine cost at the same corpus and threshold? Covers the sequential
// pipeline per measure, the sharded parallel path per measure, and the
// measures' verifiers in isolation (the filter/verify split differs per
// measure: edit verifies with a banded DP over payloads, cosine's
// "verify" is the exact weighted dot product).

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "simjoin/sharded_join.h"
#include "simjoin/similarity_join.h"
#include "simjoin/similarity_measure.h"
#include "simjoin/token_dictionary.h"
#include "text/edit_distance.h"

namespace crowdjoin {
namespace {

// Zipf-token texts with light character noise: realistic for all three
// measures (shared rare tokens for Jaccard/cosine, near-duplicates a few
// character edits apart for the edit measure).
std::vector<std::string> MakeTexts(size_t num_docs, size_t tokens_per_doc,
                                   size_t vocabulary) {
  Rng rng(7);
  const ZipfSampler sampler(vocabulary, 1.1);
  std::vector<std::string> texts;
  for (size_t d = 0; d < num_docs; ++d) {
    std::string text;
    for (size_t t = 0; t < tokens_per_doc; ++t) {
      text += StrFormat("tok%llu ", static_cast<unsigned long long>(
                                        sampler.Sample(rng)));
    }
    if (!text.empty() && rng.Bernoulli(0.3)) {
      text[rng.Index(text.size())] = static_cast<char>('a' + rng.Index(26));
    }
    texts.push_back(text);
  }
  return texts;
}

struct MeasureCorpus {
  TokenDictionary dictionary;
  std::vector<MeasureDoc> docs;
};

MeasureCorpus MakeCorpus(const SimilarityMeasure& measure, size_t num_docs,
                         size_t tokens_per_doc) {
  MeasureCorpus corpus;
  for (const std::string& text : MakeTexts(num_docs, tokens_per_doc, 4096)) {
    corpus.docs.push_back(measure.MakeDoc(text, corpus.dictionary));
  }
  return corpus;
}

const SimilarityMeasure& MeasureForRange(int64_t kind) {
  return SimilarityMeasure::Get(static_cast<MeasureKind>(kind));
}

// {measure kind, num_docs, threshold*10}: one sequential measure join.
void BM_MeasureSelfJoin(benchmark::State& state) {
  const SimilarityMeasure& measure = MeasureForRange(state.range(0));
  const auto num_docs = static_cast<size_t>(state.range(1));
  const double threshold = static_cast<double>(state.range(2)) / 10.0;
  MeasureCorpus corpus = MakeCorpus(measure, num_docs, 12);
  for (auto _ : state) {
    auto result =
        MeasureSelfJoin(corpus.docs, corpus.dictionary, measure, threshold);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(measure.name());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_docs));
}
// The edit rows stay at tight thresholds and the small corpus: a q-gram
// edit join at a permissive threshold over long texts degenerates toward
// all-pairs banded-DP verification (~5 s at {1000 docs, t=0.5} on the
// reference box) — that cost cliff is recorded once in BASELINES.md
// rather than re-measured on every CI run.
BENCHMARK(BM_MeasureSelfJoin)
    ->Args({0, 1000, 5})
    ->Args({2, 1000, 5})
    ->Args({0, 1000, 8})
    ->Args({1, 1000, 8})
    ->Args({2, 1000, 8})
    ->Args({1, 1000, 9})
    ->Args({0, 4000, 8})
    ->Args({2, 4000, 8});

// {measure kind, num_docs, threshold*10, threads}: sharded parallel path,
// ingest once, re-run prepare + probe each iteration.
void BM_ShardedMeasureSelfJoin(benchmark::State& state) {
  const SimilarityMeasure& measure = MeasureForRange(state.range(0));
  const auto num_docs = static_cast<size_t>(state.range(1));
  const double threshold = static_cast<double>(state.range(2)) / 10.0;
  const int num_threads = static_cast<int>(state.range(3));
  MeasureCorpus corpus = MakeCorpus(measure, num_docs, 12);
  ShardedSelfJoiner joiner(/*num_shards=*/16);
  for (const MeasureDoc& doc : corpus.docs) joiner.Add(doc);
  ThreadPool pool(num_threads);
  ThreadPool* pool_ptr = pool.num_threads() > 0 ? &pool : nullptr;
  for (auto _ : state) {
    auto result =
        joiner.Finish(corpus.dictionary, measure, threshold, pool_ptr);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(measure.name());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_docs));
}
BENCHMARK(BM_ShardedMeasureSelfJoin)
    ->Args({0, 4000, 8, 4})
    ->Args({1, 1000, 9, 4})
    ->Args({2, 4000, 8, 4})
    ->Args({0, 4000, 8, 8})
    ->Args({1, 1000, 9, 8})
    ->Args({2, 4000, 8, 8});

// The edit measure's verifier: banded DP with the budget the threshold
// implies, vs the full unbounded DP it replaces. {string length,
// threshold*10} — the band narrows as the threshold rises.
void BM_BoundedLevenshteinVerify(benchmark::State& state) {
  const auto length = static_cast<size_t>(state.range(0));
  const double threshold = static_cast<double>(state.range(1)) / 10.0;
  const size_t budget =
      static_cast<size_t>((1.0 - threshold) * static_cast<double>(length));
  Rng rng(11);
  std::vector<std::pair<std::string, std::string>> pairs;
  for (int p = 0; p < 64; ++p) {
    std::string a, b;
    for (size_t i = 0; i < length; ++i) {
      const char c = static_cast<char>('a' + rng.Index(8));
      a += c;
      b += rng.Bernoulli(0.1) ? static_cast<char>('a' + rng.Index(8)) : c;
    }
    pairs.emplace_back(a, b);
  }
  for (auto _ : state) {
    size_t total = 0;
    for (const auto& [a, b] : pairs) total += BoundedLevenshtein(a, b, budget);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pairs.size()));
}
BENCHMARK(BM_BoundedLevenshteinVerify)
    ->Args({40, 5})
    ->Args({40, 8})
    ->Args({160, 5})
    ->Args({160, 8});

void BM_UnboundedLevenshtein(benchmark::State& state) {
  const auto length = static_cast<size_t>(state.range(0));
  Rng rng(11);
  std::vector<std::pair<std::string, std::string>> pairs;
  for (int p = 0; p < 64; ++p) {
    std::string a, b;
    for (size_t i = 0; i < length; ++i) {
      const char c = static_cast<char>('a' + rng.Index(8));
      a += c;
      b += rng.Bernoulli(0.1) ? static_cast<char>('a' + rng.Index(8)) : c;
    }
    pairs.emplace_back(a, b);
  }
  for (auto _ : state) {
    size_t total = 0;
    for (const auto& [a, b] : pairs) total += LevenshteinDistance(a, b);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pairs.size()));
}
BENCHMARK(BM_UnboundedLevenshtein)->Args({40, 0})->Args({160, 0});

}  // namespace
}  // namespace crowdjoin

BENCHMARK_MAIN();
