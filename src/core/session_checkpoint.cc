#include "core/session_checkpoint.h"

#include <utility>

#include "common/serialize.h"
#include "common/string_util.h"

namespace crowdjoin {

namespace {

// "CJCKPT" + 2-digit format version, read as a little-endian u64.
constexpr uint64_t kMagic = 0x31305450'4B434A43ull;  // "CJCKPT01"

uint8_t EncodeOutcome(const std::optional<PairOutcome>& outcome) {
  if (!outcome.has_value()) return 0;
  return static_cast<uint8_t>(1u |
                              (static_cast<uint8_t>(outcome->label) << 1) |
                              (static_cast<uint8_t>(outcome->source) << 2));
}

std::optional<PairOutcome> DecodeOutcome(uint8_t byte) {
  if ((byte & 1u) == 0) return std::nullopt;
  return PairOutcome{static_cast<Label>((byte >> 1) & 1u),
                     static_cast<LabelSource>((byte >> 2) & 1u)};
}

}  // namespace

std::string EncodeSessionCheckpoint(const SessionCheckpointState& state) {
  BinaryWriter w;
  w.PutU64(kMagic);
  w.PutU64(state.fingerprint);
  w.PutI64(state.completed_rounds);
  w.PutI64(state.candidates_consumed);
  w.PutU32(static_cast<uint32_t>(state.num_objects));
  w.PutI64(state.remaining_budget);
  w.PutI64(state.num_candidates);
  w.PutI64(state.num_crowdsourced);
  w.PutI64(state.num_deduced);
  w.PutI64(state.num_unlabeled);
  w.PutI64(state.num_stream_rounds);
  w.PutU64(state.crowdsourced_per_iteration.size());
  for (int64_t batch : state.crowdsourced_per_iteration) w.PutI64(batch);
  w.PutU64(state.outcomes.size());
  for (const auto& outcome : state.outcomes) w.PutU8(EncodeOutcome(outcome));
  w.PutU64(state.edge_log.size());
  for (const LoggedEdge& edge : state.edge_log) {
    w.PutU32(static_cast<uint32_t>(edge.a));
    w.PutU32(static_cast<uint32_t>(edge.b));
    w.PutU8(static_cast<uint8_t>(edge.label));
  }
  w.PutU8(state.has_order_rng ? 1 : 0);
  if (state.has_order_rng) {
    for (uint64_t s : state.order_rng.s) w.PutU64(s);
    w.PutDouble(state.order_rng.spare_normal);
    w.PutU8(state.order_rng.has_spare_normal ? 1 : 0);
  }
  // Trailing checksum over everything above, magic included.
  const uint64_t checksum = Fingerprint64(w.buffer());
  w.PutU64(checksum);
  return w.TakeBuffer();
}

Result<SessionCheckpointState> DecodeSessionCheckpoint(std::string_view data) {
  if (data.size() < 16) {
    return Status::InvalidArgument("checkpoint too small to be valid");
  }
  // Verify the checksum before trusting any field.
  BinaryReader tail(data.substr(data.size() - 8));
  CJ_ASSIGN_OR_RETURN(const uint64_t stored_checksum, tail.ReadU64());
  const uint64_t computed = Fingerprint64(data.substr(0, data.size() - 8));
  if (stored_checksum != computed) {
    return Status::FailedPrecondition("checkpoint checksum mismatch");
  }

  BinaryReader r(data.substr(0, data.size() - 8));
  CJ_ASSIGN_OR_RETURN(const uint64_t magic, r.ReadU64());
  if (magic != kMagic) {
    return Status::InvalidArgument("not a crowdjoin checkpoint (bad magic)");
  }
  SessionCheckpointState state;
  CJ_ASSIGN_OR_RETURN(state.fingerprint, r.ReadU64());
  CJ_ASSIGN_OR_RETURN(state.completed_rounds, r.ReadI64());
  CJ_ASSIGN_OR_RETURN(state.candidates_consumed, r.ReadI64());
  CJ_ASSIGN_OR_RETURN(const uint32_t num_objects, r.ReadU32());
  state.num_objects = static_cast<int32_t>(num_objects);
  CJ_ASSIGN_OR_RETURN(state.remaining_budget, r.ReadI64());
  CJ_ASSIGN_OR_RETURN(state.num_candidates, r.ReadI64());
  CJ_ASSIGN_OR_RETURN(state.num_crowdsourced, r.ReadI64());
  CJ_ASSIGN_OR_RETURN(state.num_deduced, r.ReadI64());
  CJ_ASSIGN_OR_RETURN(state.num_unlabeled, r.ReadI64());
  CJ_ASSIGN_OR_RETURN(state.num_stream_rounds, r.ReadI64());
  CJ_ASSIGN_OR_RETURN(const uint64_t num_batches, r.ReadU64());
  state.crowdsourced_per_iteration.reserve(num_batches);
  for (uint64_t i = 0; i < num_batches; ++i) {
    CJ_ASSIGN_OR_RETURN(const int64_t batch, r.ReadI64());
    state.crowdsourced_per_iteration.push_back(batch);
  }
  CJ_ASSIGN_OR_RETURN(const uint64_t num_outcomes, r.ReadU64());
  if (num_outcomes > r.remaining()) {
    return Status::OutOfRange("outcome count exceeds buffer");
  }
  state.outcomes.reserve(num_outcomes);
  for (uint64_t i = 0; i < num_outcomes; ++i) {
    CJ_ASSIGN_OR_RETURN(const uint8_t byte, r.ReadU8());
    state.outcomes.push_back(DecodeOutcome(byte));
  }
  CJ_ASSIGN_OR_RETURN(const uint64_t num_edges, r.ReadU64());
  if (num_edges > r.remaining() / 9) {
    return Status::OutOfRange("edge count exceeds buffer");
  }
  state.edge_log.reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    LoggedEdge edge;
    CJ_ASSIGN_OR_RETURN(const uint32_t a, r.ReadU32());
    CJ_ASSIGN_OR_RETURN(const uint32_t b, r.ReadU32());
    CJ_ASSIGN_OR_RETURN(const uint8_t label, r.ReadU8());
    edge.a = static_cast<ObjectId>(a);
    edge.b = static_cast<ObjectId>(b);
    edge.label = static_cast<Label>(label & 1u);
    state.edge_log.push_back(edge);
  }
  CJ_ASSIGN_OR_RETURN(const uint8_t has_rng, r.ReadU8());
  state.has_order_rng = has_rng != 0;
  if (state.has_order_rng) {
    for (uint64_t& s : state.order_rng.s) {
      CJ_ASSIGN_OR_RETURN(s, r.ReadU64());
    }
    CJ_ASSIGN_OR_RETURN(state.order_rng.spare_normal, r.ReadDouble());
    CJ_ASSIGN_OR_RETURN(const uint8_t has_spare, r.ReadU8());
    state.order_rng.has_spare_normal = has_spare != 0;
  }
  if (r.remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("checkpoint has %zu trailing bytes", r.remaining()));
  }
  return state;
}

Result<SessionCheckpointState> LoadSessionCheckpoint(const std::string& path) {
  CJ_ASSIGN_OR_RETURN(const std::string data, ReadFileToString(path));
  return DecodeSessionCheckpoint(data);
}

Status SaveSessionCheckpoint(const std::string& path,
                             const SessionCheckpointState& state) {
  return AtomicWriteFile(path, EncodeSessionCheckpoint(state));
}

}  // namespace crowdjoin
