#include "simjoin/candidate_generator.h"

#include <algorithm>
#include <string>

#include "common/macros.h"
#include "common/rng.h"
#include "simjoin/similarity_join.h"
#include "simjoin/similarity_measure.h"
#include "simjoin/token_dictionary.h"

namespace crowdjoin {

namespace {

double NoisyLikelihood(double similarity, double stddev, Rng& rng) {
  if (stddev <= 0.0) return similarity;
  return std::clamp(similarity + rng.Normal(0.0, stddev), 0.01, 0.99);
}

// The text a record joins under: all fields concatenated. The measure
// turns it into signature tokens (word tokens or q-grams) via `MakeDoc`.
std::string RecordText(const Record& record) {
  std::string all;
  for (const auto& field : record.fields) {
    all += field;
    all += ' ';
  }
  return all;
}

// One record stream tokenized and routed into a sharded joiner — the
// ingest half shared by the materializing machine step and the
// round-by-round feed, so side routing and id/entity bookkeeping exist
// exactly once. Only the scorer path retains record text.
struct IngestedStream {
  RecordSet retained;               // stream order; empty without a scorer
  std::vector<ObjectId> left_ids;   // record id by left/self local position
  std::vector<ObjectId> right_ids;  // record id by right local position
  std::vector<size_t> left_pos;     // stream position per side-local index,
  std::vector<size_t> right_pos;    // for scoring against `retained`
  std::vector<int32_t> entity_of;   // ground truth per stream position
};

// Only the joiner matching the source's shape is touched; the other
// pointer may be null. `collect_entities` gates the ground-truth vector
// (skipped when the caller has no use for it — the memory-lean path).
Status IngestStreamIntoJoiner(RecordSource& source,
                              const SimilarityMeasure& measure,
                              bool retain_records, bool collect_entities,
                              TokenDictionary& dictionary,
                              ShardedSelfJoiner* self_joiner,
                              ShardedBipartiteJoiner* bipartite_joiner,
                              IngestedStream& out) {
  const bool bipartite = source.meta().bipartite;
  source.Reset();
  dictionary.Reserve(static_cast<size_t>(source.meta().total_records));
  if (collect_entities) {
    out.entity_of.reserve(static_cast<size_t>(source.meta().total_records));
  }
  StreamedRecord streamed;
  size_t stream_pos = 0;
  while (source.Next(&streamed)) {
    const MeasureDoc doc =
        measure.MakeDoc(RecordText(streamed.record), dictionary);
    if (!bipartite || streamed.side == 0) {
      if (bipartite) {
        bipartite_joiner->AddLeft(doc);
      } else {
        self_joiner->Add(doc);
      }
      out.left_ids.push_back(streamed.record.id);
      if (retain_records) out.left_pos.push_back(stream_pos);
    } else {
      bipartite_joiner->AddRight(doc);
      out.right_ids.push_back(streamed.record.id);
      if (retain_records) out.right_pos.push_back(stream_pos);
    }
    if (collect_entities) out.entity_of.push_back(streamed.entity);
    if (retain_records) out.retained.push_back(std::move(streamed.record));
    ++stream_pos;
  }
  return source.status();
}

// The emission half shared by both paths: maps one verified join pair
// back to record ids, blends the (possibly re-scored) similarity into a
// likelihood, applies the cut.
void EmitCandidate(const ScoredPair& pair, bool bipartite,
                   const std::vector<ObjectId>& left_ids,
                   const std::vector<ObjectId>& right_ids, double similarity,
                   const CandidateGeneratorOptions& options, Rng& noise_rng,
                   CandidateSet& out) {
  const auto left = static_cast<size_t>(pair.left);
  const auto right = static_cast<size_t>(pair.right);
  const ObjectId id_a = left_ids[left];
  const ObjectId id_b = bipartite ? right_ids[right] : left_ids[right];
  const double likelihood = NoisyLikelihood(
      similarity, options.likelihood_noise_stddev, noise_rng);
  if (likelihood >= options.min_likelihood) {
    out.push_back({id_a, id_b, likelihood});
  }
}

}  // namespace

Result<CandidateSet> GenerateCandidates(
    const RecordSet& records, const std::vector<uint8_t>* side_of,
    const RecordScorer& scorer, const CandidateGeneratorOptions& options) {
  if (side_of != nullptr && side_of->size() != records.size()) {
    return Status::InvalidArgument("side_of size does not match records");
  }

  TokenDictionary dictionary;
  CandidateSet candidates;
  Rng noise_rng(options.noise_seed);
  const SimilarityMeasure& measure = SimilarityMeasure::Get(options.measure);

  if (side_of == nullptr) {
    std::vector<MeasureDoc> docs(records.size());
    for (size_t i = 0; i < records.size(); ++i) {
      docs[i] = measure.MakeDoc(RecordText(records[i]), dictionary);
    }
    CJ_ASSIGN_OR_RETURN(const std::vector<ScoredPair> joined,
                        MeasureSelfJoin(docs, dictionary, measure,
                                        options.token_join_threshold));
    candidates.reserve(joined.size());
    for (const ScoredPair& pair : joined) {
      const Record& ra = records[static_cast<size_t>(pair.left)];
      const Record& rb = records[static_cast<size_t>(pair.right)];
      CJ_ASSIGN_OR_RETURN(const double similarity, scorer.Score(ra, rb));
      const double likelihood = NoisyLikelihood(
          similarity, options.likelihood_noise_stddev, noise_rng);
      if (likelihood >= options.min_likelihood) {
        candidates.push_back({ra.id, rb.id, likelihood});
      }
    }
    return candidates;
  }

  // Bipartite: split record indexes by side, join, map back.
  std::vector<MeasureDoc> left_docs;
  std::vector<MeasureDoc> right_docs;
  std::vector<size_t> left_index;
  std::vector<size_t> right_index;
  for (size_t i = 0; i < records.size(); ++i) {
    MeasureDoc doc = measure.MakeDoc(RecordText(records[i]), dictionary);
    if ((*side_of)[i] == 0) {
      left_docs.push_back(std::move(doc));
      left_index.push_back(i);
    } else {
      right_docs.push_back(std::move(doc));
      right_index.push_back(i);
    }
  }
  CJ_ASSIGN_OR_RETURN(
      const std::vector<ScoredPair> joined,
      MeasureBipartiteJoin(left_docs, right_docs, dictionary, measure,
                           options.token_join_threshold));
  candidates.reserve(joined.size());
  for (const ScoredPair& pair : joined) {
    const Record& ra = records[left_index[static_cast<size_t>(pair.left)]];
    const Record& rb = records[right_index[static_cast<size_t>(pair.right)]];
    CJ_ASSIGN_OR_RETURN(const double similarity, scorer.Score(ra, rb));
    const double likelihood = NoisyLikelihood(
        similarity, options.likelihood_noise_stddev, noise_rng);
    if (likelihood >= options.min_likelihood) {
      candidates.push_back({ra.id, rb.id, likelihood});
    }
  }
  return candidates;
}

Result<CandidateSet> GenerateCandidatesStreaming(
    RecordSource& source, const RecordScorer* scorer,
    const CandidateGeneratorOptions& options,
    const ShardedJoinOptions& sharding,
    std::vector<int32_t>* entity_of_out) {
  const bool bipartite = source.meta().bipartite;
  TokenDictionary dictionary;
  ShardedSelfJoiner self_joiner(sharding.num_shards);
  ShardedBipartiteJoiner bipartite_joiner(sharding.num_shards);
  const SimilarityMeasure& measure = SimilarityMeasure::Get(options.measure);

  // Ingest via the shared helper; records are retained only when a scorer
  // needs the text back for the likelihood blend.
  IngestedStream ingest;
  CJ_RETURN_IF_ERROR(IngestStreamIntoJoiner(
      source, measure, /*retain_records=*/scorer != nullptr,
      /*collect_entities=*/entity_of_out != nullptr, dictionary,
      &self_joiner, &bipartite_joiner, ingest));
  if (entity_of_out != nullptr) *entity_of_out = std::move(ingest.entity_of);

  // Join across the worker pool.
  std::vector<ScoredPair> joined;
  {
    ThreadPool pool(sharding.num_threads);
    ThreadPool* pool_ptr = pool.num_threads() > 0 ? &pool : nullptr;
    if (!bipartite) {
      CJ_ASSIGN_OR_RETURN(
          joined, self_joiner.Finish(dictionary, measure,
                                     options.token_join_threshold, pool_ptr));
    } else {
      CJ_ASSIGN_OR_RETURN(
          joined, bipartite_joiner.Finish(dictionary, measure,
                                          options.token_join_threshold,
                                          pool_ptr));
    }
  }

  // Score survivors in the join's deterministic (left, right) order, so the
  // noise stream — and therefore the candidate set — is identical to the
  // batch path's.
  CandidateSet candidates;
  candidates.reserve(joined.size());
  Rng noise_rng(options.noise_seed);
  for (const ScoredPair& pair : joined) {
    double similarity = pair.score;
    if (scorer != nullptr) {
      const auto left = static_cast<size_t>(pair.left);
      const auto right = static_cast<size_t>(pair.right);
      const Record& ra = ingest.retained[ingest.left_pos[left]];
      const Record& rb =
          ingest.retained[bipartite ? ingest.right_pos[right]
                                    : ingest.left_pos[right]];
      CJ_ASSIGN_OR_RETURN(similarity, scorer->Score(ra, rb));
    }
    EmitCandidate(pair, bipartite, ingest.left_ids, ingest.right_ids,
                  similarity, options, noise_rng, candidates);
  }
  return candidates;
}

// ---------------------------------------------------------------------------
// StreamingCandidateFeed
// ---------------------------------------------------------------------------

namespace {
constexpr int64_t kDefaultTasksPerRound = 8;
}  // namespace

StreamingCandidateFeed::StreamingCandidateFeed(const Options& options,
                                               bool bipartite)
    : options_(options),
      bipartite_(bipartite),
      tasks_per_round_(options.tasks_per_round > 0 ? options.tasks_per_round
                                                   : kDefaultTasksPerRound),
      pool_(options.sharding.num_threads > 0 ? options.sharding.num_threads
                                             : 0),
      noise_rng_(options.candidates.noise_seed) {
  if (bipartite) {
    bipartite_joiner_ =
        std::make_unique<ShardedBipartiteJoiner>(options.sharding.num_shards);
  } else {
    self_joiner_ =
        std::make_unique<ShardedSelfJoiner>(options.sharding.num_shards);
  }
}

StreamingCandidateFeed::~StreamingCandidateFeed() = default;

Result<std::unique_ptr<StreamingCandidateFeed>> StreamingCandidateFeed::Open(
    RecordSource& source, const Options& options) {
  const bool bipartite = source.meta().bipartite;
  // make_unique cannot reach the private constructor.
  std::unique_ptr<StreamingCandidateFeed> feed(
      new StreamingCandidateFeed(options, bipartite));

  // Shared ingest, scorer-free: nothing but token docs and ids is
  // retained. (Only the joiner matching the source's shape exists here;
  // the helper never touches the other side.)
  const SimilarityMeasure& measure =
      SimilarityMeasure::Get(options.candidates.measure);
  IngestedStream ingest;
  CJ_RETURN_IF_ERROR(IngestStreamIntoJoiner(
      source, measure, /*retain_records=*/false, /*collect_entities=*/true,
      feed->dictionary_, feed->self_joiner_.get(),
      feed->bipartite_joiner_.get(), ingest));
  feed->left_ids_ = std::move(ingest.left_ids);
  feed->right_ids_ = std::move(ingest.right_ids);
  feed->entity_of_ = std::move(ingest.entity_of);

  // Prepare the join (phase 1) and park the task cursor. The measure
  // singleton outlives the cursor by construction.
  ThreadPool* pool = feed->pool_.num_threads() > 0 ? &feed->pool_ : nullptr;
  const double threshold = options.candidates.token_join_threshold;
  if (bipartite) {
    CJ_ASSIGN_OR_RETURN(
        ShardedJoinCursor cursor,
        feed->bipartite_joiner_->MakeCursor(feed->dictionary_, measure,
                                            threshold, pool));
    feed->cursor_.emplace(std::move(cursor));
  } else {
    CJ_ASSIGN_OR_RETURN(
        ShardedJoinCursor cursor,
        feed->self_joiner_->MakeCursor(feed->dictionary_, measure, threshold,
                                       pool));
    feed->cursor_.emplace(std::move(cursor));
  }
  return feed;
}

Result<CandidateSet> StreamingCandidateFeed::NextRound() {
  ThreadPool* pool = pool_.num_threads() > 0 ? &pool_ : nullptr;
  CandidateSet round;
  // A task batch can come back empty (or die entirely at the likelihood
  // cut); keep draining so an empty return always means end-of-stream.
  while (round.empty() && !cursor_->done()) {
    CJ_ASSIGN_OR_RETURN(const std::vector<ScoredPair> joined,
                        cursor_->NextBatch(tasks_per_round_, pool));
    round.reserve(joined.size());
    for (const ScoredPair& pair : joined) {
      EmitCandidate(pair, bipartite_, left_ids_, right_ids_, pair.score,
                    options_.candidates, noise_rng_, round);
    }
  }
  if (!round.empty()) {
    ++num_rounds_;
    num_candidates_ += static_cast<int64_t>(round.size());
    max_round_size_ =
        std::max(max_round_size_, static_cast<int64_t>(round.size()));
  }
  return round;
}

}  // namespace crowdjoin
