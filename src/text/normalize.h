#ifndef CROWDJOIN_TEXT_NORMALIZE_H_
#define CROWDJOIN_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>

namespace crowdjoin {

/// \brief Canonicalizes text for similarity computation: ASCII lower-case,
/// punctuation replaced by spaces, whitespace runs collapsed to single
/// spaces, leading/trailing space removed.
///
/// Digits and letters are kept; everything else becomes a separator, so
/// "iPad-2nd  Gen." and "ipad 2nd gen" normalize identically.
std::string NormalizeText(std::string_view input);

/// True iff `c` survives normalization as a token character.
bool IsTokenChar(char c);

}  // namespace crowdjoin

#endif  // CROWDJOIN_TEXT_NORMALIZE_H_
