// Reproduces Figure 15: number of available (published, unlabeled) pairs on
// the crowdsourcing platform as crowdsourcing progresses, for Parallel,
// Parallel(ID) and Parallel(ID+NF) at likelihood threshold 0.3.
// Parallel and Parallel(ID) complete pairs in random order (AMT's random
// assignment); Parallel(ID+NF) labels the most unlikely-matching pairs
// first. The series is down-sampled for readability.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/labeling_order.h"
#include "crowd/availability_sim.h"
#include "eval/workbench.h"

namespace {

using namespace crowdjoin;  // NOLINT(build/namespaces)
using crowdjoin::bench::Unwrap;

std::vector<AvailabilityPoint> RunPolicy(const CandidateSet& pairs,
                                         const std::vector<int32_t>& order,
                                         GroundTruthOracle truth,
                                         PublicationPolicy publication,
                                         CompletionOrder completion,
                                         uint64_t seed) {
  Rng rng(seed);
  return Unwrap(SimulateAvailability(pairs, order, truth, publication,
                                     completion, rng));
}

void PrintSeries(const char* name,
                 const std::vector<AvailabilityPoint>& series) {
  std::printf("%s:\n  crowdsourced -> available: ", name);
  const size_t stride = series.size() > 24 ? series.size() / 24 : 1;
  for (size_t i = 0; i < series.size(); i += stride) {
    std::printf("(%lld,%lld) ",
                static_cast<long long>(series[i].num_crowdsourced),
                static_cast<long long>(series[i].num_available));
  }
  if (!series.empty()) {
    std::printf("(%lld,%lld)",
                static_cast<long long>(series.back().num_crowdsourced),
                static_cast<long long>(series.back().num_available));
  }
  std::printf("\n");
}

void RunDataset(const ExperimentInput& input, double threshold,
                uint64_t seed) {
  GroundTruthOracle truth = MakeGroundTruthOracle(input.dataset);
  const CandidateSet pairs = FilterByThreshold(input.candidates, threshold);
  const std::vector<int32_t> order = Unwrap(MakeLabelingOrder(
      pairs, OrderKind::kExpected, &truth, /*rng=*/nullptr));

  std::printf("\n-- %s (threshold=%.1f, %zu candidate pairs) --\n",
              input.dataset.name.c_str(), threshold, pairs.size());
  PrintSeries("Parallel        ",
              RunPolicy(pairs, order, truth, PublicationPolicy::kRoundParallel,
                        CompletionOrder::kRandom, seed));
  PrintSeries("Parallel(ID)    ",
              RunPolicy(pairs, order, truth,
                        PublicationPolicy::kInstantDecision,
                        CompletionOrder::kRandom, seed));
  PrintSeries("Parallel(ID+NF) ",
              RunPolicy(pairs, order, truth,
                        PublicationPolicy::kInstantDecision,
                        CompletionOrder::kNonMatchingFirst, seed));
}

}  // namespace

int main(int argc, char** argv) {
  const crowdjoin::bench::Args args(argc, argv);
  const uint64_t seed = args.GetUint64("seed", 42);
  const double threshold = args.GetDouble("threshold", 0.3);

  std::printf("=== Figure 15: instant-decision & non-matching-first "
              "optimizations (threshold %.1f) ===\n", threshold);
  RunDataset(Unwrap(MakePaperExperimentInput(seed)), threshold, seed);
  RunDataset(Unwrap(MakeProductExperimentInput(seed)), threshold, seed);
  return 0;
}
