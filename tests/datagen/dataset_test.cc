#include "datagen/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/paper_dataset.h"
#include "datagen/product_dataset.h"

namespace crowdjoin {
namespace {

TEST(PaperDataset, GeneratesConfiguredShape) {
  PaperDatasetConfig config;
  config.seed = 11;
  const Dataset dataset = GeneratePaperDataset(config).value();
  EXPECT_EQ(dataset.records.size(), 997u);
  EXPECT_EQ(dataset.entity_of.size(), 997u);
  EXPECT_FALSE(dataset.bipartite);
  EXPECT_EQ(dataset.schema.field_names.size(), 5u);
  // Ids are dense and fields match the schema arity.
  for (size_t i = 0; i < dataset.records.size(); ++i) {
    EXPECT_EQ(dataset.records[i].id, static_cast<ObjectId>(i));
    EXPECT_EQ(dataset.records[i].fields.size(), 5u);
  }
  // The forced 102-record cluster exists (Figure 10(a)).
  const auto histogram = ClusterSizeHistogram(dataset);
  EXPECT_TRUE(histogram.contains(102));
}

TEST(PaperDataset, DeterministicPerSeed) {
  PaperDatasetConfig config;
  config.seed = 12;
  const Dataset a = GeneratePaperDataset(config).value();
  const Dataset b = GeneratePaperDataset(config).value();
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].fields, b.records[i].fields);
  }
  config.seed = 13;
  const Dataset c = GeneratePaperDataset(config).value();
  bool any_difference = false;
  for (size_t i = 0; i < a.records.size() && i < c.records.size(); ++i) {
    if (a.records[i].fields != c.records[i].fields) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(PaperDataset, SameEntityRecordsLookSimilar) {
  PaperDatasetConfig config;
  config.seed = 14;
  const Dataset dataset = GeneratePaperDataset(config).value();
  RecordScorer scorer = MakePaperScorer();
  // Average similarity of within-cluster neighbours must dominate the
  // similarity of records from different entities.
  double same_sum = 0.0;
  int same_count = 0;
  double diff_sum = 0.0;
  int diff_count = 0;
  for (size_t i = 0; i + 1 < dataset.records.size() && i < 400; ++i) {
    const double score =
        scorer.Score(dataset.records[i], dataset.records[i + 1]).value();
    if (dataset.entity_of[i] == dataset.entity_of[i + 1]) {
      same_sum += score;
      ++same_count;
    } else {
      diff_sum += score;
      ++diff_count;
    }
  }
  ASSERT_GT(same_count, 0);
  ASSERT_GT(diff_count, 0);
  EXPECT_GT(same_sum / same_count, diff_sum / diff_count + 0.2);
}

TEST(ProductDataset, GeneratesBipartiteShape) {
  ProductDatasetConfig config;
  config.seed = 15;
  const Dataset dataset = GenerateProductDataset(config).value();
  EXPECT_EQ(dataset.records.size(), 2173u);
  EXPECT_TRUE(dataset.bipartite);
  EXPECT_EQ(dataset.side_of.size(), dataset.records.size());
  EXPECT_EQ(dataset.SideCount(0) + dataset.SideCount(1),
            static_cast<int64_t>(dataset.records.size()));
  // Cluster sizes are capped at 6 (Figure 10(b)).
  const auto histogram = ClusterSizeHistogram(dataset);
  EXPECT_LE(histogram.rbegin()->first, 6);
  // Multi-record clusters span both sides.
  EXPECT_GT(NumTrueMatchingPairs(dataset), 0);
}

TEST(ProductDataset, EligiblePairsAreCrossProduct) {
  ProductDatasetConfig config;
  config.seed = 16;
  const Dataset dataset = GenerateProductDataset(config).value();
  EXPECT_EQ(NumEligiblePairs(dataset),
            dataset.SideCount(0) * dataset.SideCount(1));
}

TEST(ClusterHistogram, CountsBySize) {
  Dataset dataset;
  dataset.entity_of = {0, 0, 0, 1, 1, 2};
  const auto histogram = ClusterSizeHistogram(dataset);
  EXPECT_EQ(histogram.at(3), 1);
  EXPECT_EQ(histogram.at(2), 1);
  EXPECT_EQ(histogram.at(1), 1);
}

TEST(NumTrueMatchingPairs, SelfJoinCombinatorics) {
  Dataset dataset;
  dataset.entity_of = {0, 0, 0, 1, 1, 2};
  // C(3,2) + C(2,2) + 0 = 3 + 1 = 4.
  EXPECT_EQ(NumTrueMatchingPairs(dataset), 4);
}

TEST(NumTrueMatchingPairs, BipartiteCrossSideOnly) {
  Dataset dataset;
  dataset.bipartite = true;
  dataset.entity_of = {0, 0, 0, 1, 1};
  dataset.side_of = {0, 1, 1, 0, 0};
  // Entity 0: 1 left * 2 right = 2; entity 1: 2 left * 0 right = 0.
  EXPECT_EQ(NumTrueMatchingPairs(dataset), 2);
}

TEST(MakeGroundTruthOracle, AgreesWithEntityAssignment) {
  Dataset dataset;
  dataset.entity_of = {0, 0, 1};
  GroundTruthOracle oracle = MakeGroundTruthOracle(dataset);
  EXPECT_EQ(oracle.Truth(0, 1), Label::kMatching);
  EXPECT_EQ(oracle.Truth(0, 2), Label::kNonMatching);
}

}  // namespace
}  // namespace crowdjoin
