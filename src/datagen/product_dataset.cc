#include "datagen/product_dataset.h"

#include "datagen/streaming_generator.h"

namespace crowdjoin {

// Schema field indexes for the Product dataset (generation itself lives in
// streaming_generator.cc; this file keeps the batch entry point and the
// scorer).
namespace {
constexpr int kName = 0;
constexpr int kPrice = 1;
}  // namespace

Result<Dataset> GenerateProductDataset(const ProductDatasetConfig& config) {
  // Drain the 1x stream: the streaming generator is the single source of
  // truth for the record sequence, so batch and streaming paths can never
  // diverge.
  StreamingProductSource source(config, /*scale_factor=*/1);
  return MaterializeDataset(source);
}

RecordScorer MakeProductScorer() {
  return RecordScorer({
      {kName, FieldMeasure::kTfIdfCosine, 0.70},
      {kName, FieldMeasure::kQGramJaccard, 0.15, /*q=*/3},
      {kPrice, FieldMeasure::kNumeric, 0.15},
  });
}

}  // namespace crowdjoin
