#include "text/tfidf.h"

#include <cmath>
#include <unordered_set>

namespace crowdjoin {

TfIdfModel TfIdfModel::Fit(
    const std::vector<std::vector<std::string>>& documents) {
  TfIdfModel model;
  model.num_documents_ = documents.size();
  for (const auto& doc : documents) {
    std::unordered_set<std::string> unique(doc.begin(), doc.end());
    for (const auto& token : unique) ++model.document_frequency_[token];
  }
  return model;
}

double TfIdfModel::Idf(const std::string& token) const {
  auto it = document_frequency_.find(token);
  const double df = it == document_frequency_.end()
                        ? 0.0
                        : static_cast<double>(it->second);
  return std::log(1.0 + static_cast<double>(num_documents_) / (1.0 + df));
}

double TfIdfModel::Cosine(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) const {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  std::unordered_map<std::string, double> weights_a;
  for (const auto& t : a) weights_a[t] += 1.0;
  std::unordered_map<std::string, double> weights_b;
  for (const auto& t : b) weights_b[t] += 1.0;

  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (auto& [token, tf] : weights_a) {
    const double w = tf * Idf(token);
    weights_a[token] = w;
    norm_a += w * w;
  }
  for (auto& [token, tf] : weights_b) {
    const double w = tf * Idf(token);
    weights_b[token] = w;
    norm_b += w * w;
  }
  for (const auto& [token, wa] : weights_a) {
    auto it = weights_b.find(token);
    if (it != weights_b.end()) dot += wa * it->second;
  }
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

}  // namespace crowdjoin
