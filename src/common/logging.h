#ifndef CROWDJOIN_COMMON_LOGGING_H_
#define CROWDJOIN_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace crowdjoin {

/// Log severities, in increasing order of importance.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Sets the global minimum severity that is emitted (default: kInfo).
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace crowdjoin

#define CJ_LOG(level)                                                  \
  ::crowdjoin::internal::LogMessage(::crowdjoin::LogLevel::k##level,   \
                                    __FILE__, __LINE__)

#endif  // CROWDJOIN_COMMON_LOGGING_H_
