#ifndef CROWDJOIN_TEXT_SET_SIMILARITY_H_
#define CROWDJOIN_TEXT_SET_SIMILARITY_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace crowdjoin {

/// Size of the intersection of two *sorted, deduplicated* id vectors.
size_t OverlapSize(const std::vector<int32_t>& a,
                   const std::vector<int32_t>& b);

/// Jaccard similarity of sorted, deduplicated id *ranges* — the flat-array
/// core behind the vector overload, for callers (e.g. the sharded join)
/// that store documents in arena-style flat buffers.
double JaccardSimilarity(const int32_t* a, size_t na, const int32_t* b,
                         size_t nb);

/// Jaccard similarity |A∩B| / |A∪B| of sorted, deduplicated id vectors.
/// Two empty sets have similarity 1.
double JaccardSimilarity(const std::vector<int32_t>& a,
                         const std::vector<int32_t>& b);

/// \brief Smallest overlap o with o / (na + nb - o) >= threshold, i.e.
/// o >= t * (na + nb) / (1 + t).
///
/// Under-estimated by a 1e-6 slack so it is strictly conservative relative
/// to the joins' `score + 1e-12 >= threshold` emit test. This is *the*
/// shared definition: the prefix filter's positional prune and the
/// verification kernels must agree on it bit for bit, or a candidate the
/// filter drops could have been one verification would have kept.
inline size_t RequiredOverlap(double threshold, size_t na, size_t nb) {
  const double bound = threshold * static_cast<double>(na + nb) /
                       (1.0 + threshold);
  return static_cast<size_t>(std::max(0.0, std::ceil(bound - 1e-6)));
}

/// \brief Early-exit Jaccard verification for threshold joins.
///
/// Returns the exact Jaccard — bit-identical to `JaccardSimilarity` —
/// whenever the pair could still satisfy `score + 1e-12 >= threshold`, and
/// -1.0 as soon as the merge proves it cannot (the remaining elements can
/// no longer reach `RequiredOverlap`). Joins that emit on
/// `score + 1e-12 >= threshold` therefore produce byte-identical output
/// through either verifier; this one abandons hopeless candidates early.
double BoundedJaccard(const int32_t* a, size_t na, const int32_t* b,
                      size_t nb, double threshold);

inline double BoundedJaccard(const std::vector<int32_t>& a,
                             const std::vector<int32_t>& b,
                             double threshold) {
  return BoundedJaccard(a.data(), a.size(), b.data(), b.size(), threshold);
}

/// \brief `BoundedJaccard` resuming a merge whose first `a_pos` / `b_pos`
/// elements were already consumed with `seed_overlap` matches.
///
/// Precondition: both ranges are sorted by the same strict total order and
/// the split is order-aligned — every element of a[0..a_pos) compares
/// `<=` every element of b[b_pos..) and vice versa, with equal elements
/// only inside the consumed prefixes (counted by `seed_overlap`). The
/// prefix-filter joins satisfy this by seeding at the first shared prefix
/// token: positions before it hold strictly smaller tokens on both sides.
/// Returns the exact Jaccard of the *full* sets, or -1.0 under the same
/// early-exit contract as `BoundedJaccard`.
double BoundedJaccardSeeded(const int32_t* a, size_t na, const int32_t* b,
                            size_t nb, size_t a_pos, size_t b_pos,
                            size_t seed_overlap, double threshold);

namespace internal {

/// The verification merge kernels behind `BoundedJaccardSeeded`, exposed
/// for `bench/micro_verify` so kernel choices stay measured, not assumed.
/// All three resume at (i, j) with `overlap` matches banked and return
/// the exact Jaccard of the full (na, nb) sets or -1.0 once `required`
/// overlap is unreachable.

/// Branch-per-element merge; the unreachability check runs only on the
/// mismatch arms (a match never lowers the attainable overlap).
double MergeVerifyBranchy(const int32_t* a, size_t na, const int32_t* b,
                          size_t nb, size_t i, size_t j, size_t overlap,
                          size_t required);

/// Branchless block merge: fixed-size runs of compare/advance steps the
/// compiler turns into straight-line conditional moves, with the
/// unreachability check hoisted to once per block.
double MergeVerifyBlock(const int32_t* a, size_t na, const int32_t* b,
                        size_t nb, size_t i, size_t j, size_t overlap,
                        size_t required);

/// Galloping merge for size-skewed pairs: `a` must be the *smaller*
/// remaining side; each a-element exponential-searches forward in b.
double MergeVerifyGallop(const int32_t* a, size_t na, const int32_t* b,
                         size_t nb, size_t i, size_t j, size_t overlap,
                         size_t required);

/// Remaining-size ratio at which `BoundedJaccardSeeded` switches from the
/// block merge to the galloping path.
inline constexpr size_t kGallopSkew = 8;

}  // namespace internal

/// Dice coefficient 2|A∩B| / (|A|+|B|).
double DiceSimilarity(const std::vector<int32_t>& a,
                      const std::vector<int32_t>& b);

/// Set cosine |A∩B| / sqrt(|A||B|).
double CosineSimilarity(const std::vector<int32_t>& a,
                        const std::vector<int32_t>& b);

/// Overlap coefficient |A∩B| / min(|A|, |B|).
double OverlapCoefficient(const std::vector<int32_t>& a,
                          const std::vector<int32_t>& b);

/// Convenience: Jaccard over word-token *string* sets (sorts + dedups
/// internally). Useful for tests and one-off scoring.
double JaccardOfTokenSets(std::vector<std::string> a,
                          std::vector<std::string> b);

}  // namespace crowdjoin

#endif  // CROWDJOIN_TEXT_SET_SIMILARITY_H_
