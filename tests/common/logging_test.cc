#include "common/logging.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace crowdjoin {
namespace {

TEST(Logging, LevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(Logging, SuppressedLevelsDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  CJ_LOG(Debug) << "invisible " << 1;
  CJ_LOG(Info) << "invisible " << 2.5;
  CJ_LOG(Warning) << "invisible";
  CJ_LOG(Error) << "invisible";
  SetLogLevel(original);
}

TEST(Logging, EmittedLevelsDoNotCrash) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  CJ_LOG(Debug) << "debug line from logging_test";
  CJ_LOG(Error) << "error line from logging_test";
  SetLogLevel(original);
}

// Redirects fd 2 to a temp file for the object's lifetime so the test can
// inspect what was actually written to stderr.
class CapturedStderr {
 public:
  CapturedStderr() {
    char tmpl[] = "/tmp/crowdjoin_logging_test_XXXXXX";
    capture_fd_ = mkstemp(tmpl);
    EXPECT_GE(capture_fd_, 0);
    path_ = tmpl;
    saved_stderr_ = dup(2);
    fflush(stderr);
    dup2(capture_fd_, 2);
  }

  ~CapturedStderr() {
    fflush(stderr);
    dup2(saved_stderr_, 2);
    close(saved_stderr_);
    close(capture_fd_);
    unlink(path_.c_str());
  }

  std::string Contents() const {
    fflush(stderr);
    std::ifstream in(path_);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

 private:
  int capture_fd_ = -1;
  int saved_stderr_ = -1;
  std::string path_;
};

TEST(Logging, ConcurrentWritersDoNotInterleave) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);

  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 200;
  // Long payload so a torn write would be visible even with kernel-level
  // write coalescing on small buffers.
  const std::string padding(120, 'x');

  std::string captured;
  {
    CapturedStderr capture;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t, &padding] {
        for (int i = 0; i < kLinesPerThread; ++i) {
          CJ_LOG(Info) << "thread=" << t << " seq=" << i << " " << padding;
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    captured = capture.Contents();
  }
  SetLogLevel(original);

  // Every captured line must be exactly one expected line: a torn or
  // interleaved write produces a line no thread ever emitted.
  std::set<std::string> expected;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kLinesPerThread; ++i) {
      std::ostringstream line;
      line << "thread=" << t << " seq=" << i << " " << padding;
      expected.insert(line.str());
    }
  }

  int num_lines = 0;
  std::istringstream stream(captured);
  std::string line;
  while (std::getline(stream, line)) {
    ++num_lines;
    // Strip the "[INFO logging_test.cc:NN] " prefix; the line number varies
    // with edits, so match structurally.
    ASSERT_EQ(line.rfind("[INFO logging_test.cc:", 0), 0u) << line;
    const size_t body_start = line.find("] ");
    ASSERT_NE(body_start, std::string::npos) << line;
    const std::string body = line.substr(body_start + 2);
    ASSERT_EQ(expected.count(body), 1u) << "torn line: " << line;
    expected.erase(body);
  }
  EXPECT_EQ(num_lines, kThreads * kLinesPerThread);
  EXPECT_TRUE(expected.empty());
}

}  // namespace
}  // namespace crowdjoin
