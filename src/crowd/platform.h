#ifndef CROWDJOIN_CROWD_PLATFORM_H_
#define CROWDJOIN_CROWD_PLATFORM_H_

#include <cstdint>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/candidate.h"
#include "core/oracle.h"
#include "crowd/config.h"
#include "crowd/faults.h"
#include "graph/label.h"

namespace crowdjoin {

/// One pair inside a HIT, tagged with its candidate-set position.
struct PairTask {
  int32_t position = 0;
  ObjectId a = 0;
  ObjectId b = 0;
  double likelihood = 0.0;
};

/// Majority-voted label of one pair of a completed HIT.
struct CompletedPair {
  int32_t position = 0;
  Label label = Label::kNonMatching;
  /// Raw "matching" votes behind the label, for quorum checks
  /// (`RetryPolicy::reask_margin`) and vote merging across re-asks.
  int matching_votes = 0;
};

/// Everything known about a HIT once its last assignment finishes.
struct HitResult {
  int64_t hit_id = 0;
  double completed_at_hours = 0.0;
  std::vector<CompletedPair> pairs;
  /// Assignments whose votes are included in `pairs`. Equals
  /// `assignments_per_hit` for a normally completed HIT; fewer when the
  /// HIT expired with assignments outstanding.
  int num_assignments = 0;
  /// The HIT blew its `FaultPlan::hit_expiry_hours` deadline: `pairs`
  /// holds the partial votes collected before expiry, and the publisher
  /// is expected to repost. Never set without an expiry configured.
  bool expired = false;
};

/// \brief Discrete-event simulation of a microtask crowdsourcing platform.
///
/// Callers publish HITs (batches of pair tasks); a pool of simulated
/// workers picks up assignments (each HIT is answered by
/// `assignments_per_hit` distinct workers, per AMT semantics), answers each
/// pair with per-worker error rates against the ground truth, and the
/// platform majority-votes the assignments into per-pair labels.
///
/// The simulation is deterministic given the config seed.
///
/// `config.faults` injects the misbehavior of live markets (see
/// `FaultPlan`): abandoned assignments reopen their slot unbilled,
/// straggler workers stretch their service times, spammers invert their
/// answers, HITs past the expiry deadline come back as `expired` partial
/// results, and `PublishHit` can fail transiently (`kInternal` — retry
/// it). All fault decisions are pure hashes of the fault seed, so a
/// disabled plan is byte-identical to the fault-free simulator.
class CrowdPlatform {
 public:
  /// `truth` must outlive the platform.
  CrowdPlatform(const CrowdConfig& config, const GroundTruthOracle* truth);

  /// Publishes one HIT; pairs of the HIT are answered together.
  /// Returns the HIT id, or InvalidArgument for an empty task list.
  /// Under a fault plan with `publish_failure_rate` > 0 the call can fail
  /// transiently with `kInternal`; the tasks are not accepted and the
  /// caller retries the publish.
  Result<int64_t> PublishHit(std::vector<PairTask> tasks);

  /// Advances simulated time until the next HIT fully completes and
  /// returns its majority-voted result; nullopt when nothing is in flight.
  std::optional<HitResult> RunUntilNextHitCompletion();

  /// Current simulated wall-clock, in hours.
  double now_hours() const { return now_hours_; }

  /// HITs published so far.
  int64_t num_hits_published() const { return static_cast<int64_t>(hits_.size()); }
  /// HITs fully completed so far.
  int64_t num_hits_completed() const { return num_hits_completed_; }
  /// Assignments completed so far.
  int64_t num_assignments_completed() const { return num_assignments_completed_; }
  /// Money spent so far, in cents (assignments * price).
  double total_cost_cents() const {
    return static_cast<double>(num_assignments_completed_) *
           config_.cents_per_assignment;
  }
  /// Workers that survived the qualification test.
  int num_active_workers() const { return static_cast<int>(workers_.size()); }
  /// Assignments whose workers walked away (slot reopened, not billed).
  int64_t num_assignments_abandoned() const {
    return num_assignments_abandoned_;
  }
  /// HITs that blew the expiry deadline and returned partial results.
  int64_t num_hits_expired() const { return num_hits_expired_; }
  /// `PublishHit` calls that failed transiently.
  int64_t num_publish_failures() const { return num_publish_failures_; }

 private:
  struct Worker {
    double free_at_hours = 0.0;
    double false_negative_rate = 0.0;
    double false_positive_rate = 0.0;
    bool spammer = false;           // inverts every answer (FaultPlan)
    double service_multiplier = 1.0;  // straggler slowdown (FaultPlan)
  };

  struct Hit {
    std::vector<PairTask> tasks;
    double published_at_hours = 0.0;
    int assignments_started = 0;
    int assignments_done = 0;
    std::vector<int> matching_votes;       // per task
    std::unordered_set<int> workers_used;  // AMT: distinct workers per HIT
    int abandoned_count = 0;  // keys successive abandonment coins
    bool expired = false;     // past deadline; late assignments are dropped
  };

  struct AssignmentEvent {
    double completes_at_hours = 0.0;
    int worker = 0;
    int64_t hit_id = 0;
    // Min-heap on completion time.
    bool operator>(const AssignmentEvent& other) const {
      return completes_at_hours > other.completes_at_hours;
    }
  };

  void BuildWorkerPool();
  // Starts every assignment that an idle worker can pick up right now.
  void ScheduleAssignments();
  // Applies one finished assignment; returns the hit id if the HIT is done.
  std::optional<int64_t> CompleteAssignment(const AssignmentEvent& event);
  // Majority-votes `hit` into a result from the votes collected so far.
  HitResult MakeHitResult(int64_t hit_id, const Hit& hit) const;

  CrowdConfig config_;
  const GroundTruthOracle* truth_;
  Rng rng_;
  FaultInjector faults_;
  std::vector<Worker> workers_;
  std::vector<Hit> hits_;
  std::priority_queue<AssignmentEvent, std::vector<AssignmentEvent>,
                      std::greater<AssignmentEvent>>
      events_;
  double now_hours_ = 0.0;
  size_t first_open_hit_ = 0;  // all earlier HITs have all assignments started
  int64_t num_hits_completed_ = 0;
  int64_t num_assignments_completed_ = 0;
  int64_t num_assignments_abandoned_ = 0;
  int64_t num_hits_expired_ = 0;
  int64_t num_publish_failures_ = 0;
  // Transient-publish-failure coin keys: (successful publishes so far,
  // consecutive failed attempts since the last success).
  int publish_attempt_ = 0;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_CROWD_PLATFORM_H_
