// Reproduces Table 2: Transitive vs Non-Transitive campaigns on the
// simulated AMT platform with *imperfect* workers, at likelihood threshold
// 0.3: number of HITs, completion time, and result quality
// (precision / recall / F-measure). Error rates are calibrated per dataset
// the way the paper's real crowds behaved: paper-matching is error-prone in
// both directions; product matching sees mostly false negatives.

#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/labeling_order.h"
#include "crowd/orchestrator.h"
#include "eval/metrics.h"
#include "eval/workbench.h"

namespace {

using namespace crowdjoin;  // NOLINT(build/namespaces)
using crowdjoin::bench::Unwrap;

struct WorkerProfile {
  double false_negative_rate;
  double false_positive_rate;
};

void RunDataset(const ExperimentInput& input, const WorkerProfile& profile,
                double threshold, uint64_t seed) {
  GroundTruthOracle truth = MakeGroundTruthOracle(input.dataset);
  const CandidateSet pairs = FilterByThreshold(input.candidates, threshold);
  const std::vector<int32_t> order = Unwrap(MakeLabelingOrder(
      pairs, OrderKind::kExpected, &truth, /*rng=*/nullptr));

  CrowdConfig config;
  config.seed = seed;
  config.false_negative_rate = profile.false_negative_rate;
  config.false_positive_rate = profile.false_positive_rate;
  config.worker_rate_stddev = 0.05;
  config.use_qualification_test = true;
  // A busier platform than Table 1's: more workers means the one-shot
  // Non-Transitive campaign is throughput-bound while the iterative
  // Transitive campaign pays its dependency chains (the effect that made
  // Transitive *slower* on Product in the paper).
  config.num_workers = 60;

  const AmtRunStats non_transitive =
      Unwrap(RunNonTransitiveAmt(pairs, config, truth));
  const AmtRunStats transitive =
      Unwrap(RunTransitiveAmt(pairs, order, config, truth));

  const QualityMetrics q_non =
      ComputeQuality(pairs, non_transitive.final_labels, truth);
  const QualityMetrics q_tra =
      ComputeQuality(pairs, transitive.final_labels, truth);

  std::printf("\n-- %s (threshold=%.1f, %zu candidate pairs) --\n",
              input.dataset.name.c_str(), threshold, pairs.size());
  TablePrinter table({"", "# of HITs", "Time", "Precision", "Recall",
                      "F-measure", "Cost"});
  auto row = [&](const char* name, const AmtRunStats& stats,
                 const QualityMetrics& quality) {
    table.AddRow({name, std::to_string(stats.num_hits),
                  StrFormat("%.0f hours", stats.total_hours),
                  StrFormat("%.2f%%", 100.0 * quality.precision),
                  StrFormat("%.2f%%", 100.0 * quality.recall),
                  StrFormat("%.2f%%", 100.0 * quality.f_measure),
                  StrFormat("$%.2f", stats.total_cost_cents / 100.0)});
  };
  row("Non-Transitive", non_transitive, q_non);
  row("Transitive", transitive, q_tra);
  table.Print(std::cout);
  std::printf("Transitive crowdsourced %lld pairs, deduced %lld\n",
              static_cast<long long>(transitive.num_crowdsourced_pairs),
              static_cast<long long>(transitive.num_deduced_pairs));
}

}  // namespace

int main(int argc, char** argv) {
  const crowdjoin::bench::Args args(argc, argv);
  const uint64_t seed = args.GetUint64("seed", 42);
  const double threshold = args.GetDouble("threshold", 0.3);

  std::printf("=== Table 2: Transitive vs Non-Transitive in simulated AMT "
              "with noisy workers (threshold %.1f) ===\n", threshold);
  // Paper-style workers: frequent false positives on citation data, high
  // recall. Product-style workers: conservative, frequent false negatives.
  RunDataset(Unwrap(MakePaperExperimentInput(seed)),
             {/*fn=*/0.14, /*fp=*/0.25}, threshold, seed);
  RunDataset(Unwrap(MakeProductExperimentInput(seed)),
             {/*fn=*/0.37, /*fp=*/0.07}, threshold, seed);
  std::printf("\n(paper: Paper 1465->52 HITs, 755h->32h, F 79.8%%->74.3%%; "
              "Product 158->144 HITs, 22h->30h, F 80.1%%->79.7%%)\n");
  return 0;
}
