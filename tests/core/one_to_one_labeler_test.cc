#include "core/one_to_one_labeler.h"

#include <gtest/gtest.h>

#include <numeric>

#include "core/sequential_labeler.h"
#include "tests/core/test_fixtures.h"

namespace crowdjoin {
namespace {

std::vector<int32_t> IdentityOrder(size_t n) {
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

TEST(OneToOneLabeler, MatchExcludesOtherPartners) {
  // Bipartite: left {0,1}, right {2,3}; truth pairs 0-2 and 1-3.
  const CandidateSet pairs = {
      {0, 2, 0.9},  // true match, crowdsourced
      {0, 3, 0.8},  // one-to-one deduces non-matching (0 already matched)
      {1, 2, 0.7},  // one-to-one deduces non-matching (2 already matched)
      {1, 3, 0.6},  // must still be crowdsourced
  };
  GroundTruthOracle oracle({0, 1, 0, 1});
  const auto result =
      OneToOneLabeler().Run(pairs, IdentityOrder(pairs.size()), oracle)
          .value();
  EXPECT_EQ(result.labeling.num_crowdsourced, 2);
  EXPECT_EQ(result.num_one_to_one_deduced, 2);
  EXPECT_EQ(result.num_exclusivity_violations, 0);
  EXPECT_EQ(result.labeling.outcomes[1].label, Label::kNonMatching);
  EXPECT_EQ(result.labeling.outcomes[1].source, LabelSource::kDeduced);
  EXPECT_EQ(result.labeling.outcomes[3].label, Label::kMatching);
  EXPECT_EQ(result.labeling.outcomes[3].source, LabelSource::kCrowdsourced);
}

TEST(OneToOneLabeler, TransitiveDeductionTakesPrecedence) {
  // Left {0,1}, right {2,3}; truth: 0<->2 match, 1 and 3 are singletons.
  // (2,3) is decidable by *both* rules once (0,3)=N and (0,2)=M are known;
  // the labeler must attribute it to transitivity, not one-to-one.
  const CandidateSet pairs = {{0, 3, 0.9}, {0, 2, 0.8}, {2, 3, 0.7}};
  GroundTruthOracle oracle({0, 1, 0, 2});
  const auto result =
      OneToOneLabeler().Run(pairs, IdentityOrder(pairs.size()), oracle)
          .value();
  EXPECT_EQ(result.labeling.num_crowdsourced, 2);
  EXPECT_EQ(result.labeling.num_deduced, 1);
  EXPECT_EQ(result.num_one_to_one_deduced, 0);
  EXPECT_EQ(result.labeling.outcomes[2].label, Label::kNonMatching);
  EXPECT_EQ(result.labeling.outcomes[2].source, LabelSource::kDeduced);
}

TEST(OneToOneLabeler, OneToOneEdgesFeedTransitivity) {
  // 0 matches 1; one-to-one rules out (0,2); transitivity must then deduce
  // (1,2) as non-matching without crowdsourcing it.
  const CandidateSet pairs = {{0, 1, 0.9}, {0, 2, 0.8}, {1, 2, 0.7}};
  GroundTruthOracle oracle({0, 0, 1});
  const auto result =
      OneToOneLabeler().Run(pairs, IdentityOrder(pairs.size()), oracle)
          .value();
  EXPECT_EQ(result.labeling.num_crowdsourced, 1);
  EXPECT_EQ(result.num_one_to_one_deduced, 1);
  EXPECT_EQ(result.labeling.outcomes[2].label, Label::kNonMatching);
  EXPECT_EQ(result.labeling.outcomes[2].source, LabelSource::kDeduced);
}

TEST(OneToOneLabeler, SavesAtLeastAsMuchAsPlainSequentialOnOneToOneData) {
  // Strictly 1-1 ground truth: entities {0,5},{1,6},{2,7},{3,8},{4,9}.
  std::vector<int32_t> entity = {0, 1, 2, 3, 4, 0, 1, 2, 3, 4};
  CandidateSet pairs;
  for (ObjectId a = 0; a < 5; ++a) {
    for (ObjectId b = 5; b < 10; ++b) {
      pairs.push_back({a, b, entity[static_cast<size_t>(a)] ==
                                     entity[static_cast<size_t>(b)]
                                 ? 0.9
                                 : 0.4});
    }
  }
  GroundTruthOracle truth(entity);
  GroundTruthOracle oracle1 = truth;
  const auto plain =
      SequentialLabeler().Run(pairs, IdentityOrder(pairs.size()), oracle1)
          .value();
  GroundTruthOracle oracle2 = truth;
  const auto one_to_one =
      OneToOneLabeler().Run(pairs, IdentityOrder(pairs.size()), oracle2)
          .value();
  EXPECT_LT(one_to_one.labeling.num_crowdsourced, plain.num_crowdsourced);
  // All labels still correct.
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(one_to_one.labeling.outcomes[i].label,
              truth.Truth(pairs[i].a, pairs[i].b));
  }
}

TEST(OneToOneLabeler, ViolationDetectedOnNonOneToOneData) {
  // Truth has a 3-cluster {0,1,2}: after 0-1 matches, the crowd answer for
  // (1,2)... (0,2) is ruled out by exclusivity -> a false non-matching.
  const CandidateSet pairs = {{0, 1, 0.9}, {0, 2, 0.8}};
  GroundTruthOracle oracle({0, 0, 0});
  const auto result =
      OneToOneLabeler().Run(pairs, IdentityOrder(pairs.size()), oracle)
          .value();
  // The second pair is (wrongly) deduced non-matching: the price of
  // assuming one-to-one on non-one-to-one data.
  EXPECT_EQ(result.labeling.outcomes[1].label, Label::kNonMatching);
  EXPECT_EQ(result.num_one_to_one_deduced, 1);
}

TEST(OneToOneLabeler, RejectsInvalidOrder) {
  const CandidateSet pairs = {{0, 1, 0.5}};
  GroundTruthOracle oracle({0, 0});
  EXPECT_EQ(OneToOneLabeler().Run(pairs, {7}, oracle).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace crowdjoin
