#include "graph/reference_deducer.h"

#include <gtest/gtest.h>

namespace crowdjoin {
namespace {

constexpr Label kM = Label::kMatching;
constexpr Label kN = Label::kNonMatching;

TEST(ReferenceDeducer, Lemma1PositiveChain) {
  ReferenceDeducer deducer(4);
  deducer.Add(0, 1, kM);
  deducer.Add(1, 2, kM);
  deducer.Add(2, 3, kM);
  EXPECT_EQ(deducer.Deduce(0, 3), Deduction::kMatching);
}

TEST(ReferenceDeducer, Lemma1SingleNegativeInChain) {
  ReferenceDeducer deducer(4);
  deducer.Add(0, 1, kM);
  deducer.Add(1, 2, kN);
  deducer.Add(2, 3, kM);
  EXPECT_EQ(deducer.Deduce(0, 3), Deduction::kNonMatching);
}

TEST(ReferenceDeducer, TwoNegativesUndeduced) {
  ReferenceDeducer deducer(3);
  deducer.Add(0, 1, kN);
  deducer.Add(1, 2, kN);
  EXPECT_EQ(deducer.Deduce(0, 2), Deduction::kUndeduced);
}

TEST(ReferenceDeducer, PrefersMatchingPathOverNonMatching) {
  // Two paths 0..3: one all-matching, one with a single non-matching pair.
  // The matching deduction must win (it is what the real label must be,
  // since a consistent label set cannot support both).
  ReferenceDeducer deducer(4);
  deducer.Add(0, 1, kM);
  deducer.Add(1, 3, kM);
  deducer.Add(0, 2, kM);
  deducer.Add(2, 3, kM);
  EXPECT_EQ(deducer.Deduce(0, 3), Deduction::kMatching);
}

TEST(ReferenceDeducer, DisconnectedIsUndeduced) {
  ReferenceDeducer deducer(4);
  deducer.Add(0, 1, kM);
  EXPECT_EQ(deducer.Deduce(2, 3), Deduction::kUndeduced);
  EXPECT_EQ(deducer.Deduce(0, 2), Deduction::kUndeduced);
}

TEST(ReferenceDeducer, Example1Reproduction) {
  // Same fixture as the ClusterGraph Example 1 test (Figure 2).
  ReferenceDeducer deducer(7);
  deducer.Add(0, 1, kM);
  deducer.Add(2, 3, kM);
  deducer.Add(3, 4, kM);
  deducer.Add(0, 5, kN);
  deducer.Add(1, 2, kN);
  deducer.Add(2, 6, kN);
  deducer.Add(4, 5, kN);
  EXPECT_EQ(deducer.Deduce(2, 4), Deduction::kMatching);
  EXPECT_EQ(deducer.Deduce(4, 6), Deduction::kNonMatching);
  EXPECT_EQ(deducer.Deduce(0, 6), Deduction::kUndeduced);
}

}  // namespace
}  // namespace crowdjoin
