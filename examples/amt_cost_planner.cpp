// Campaign planner: before spending real money on a crowdsourcing
// platform, sweep the knobs that matter - replication, batching, worker
// accuracy - on the discrete-event simulator and see what a transitive
// campaign would cost and how long it would run.
//
//   $ ./amt_cost_planner [--seed=N]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/labeling_order.h"
#include "crowd/orchestrator.h"
#include "eval/metrics.h"
#include "eval/workbench.h"

using namespace crowdjoin;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  uint64_t seed = 42;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    }
  }

  const ExperimentInput input = MakePaperExperimentInput(seed).value();
  GroundTruthOracle truth = MakeGroundTruthOracle(input.dataset);
  const CandidateSet pairs = FilterByThreshold(input.candidates, 0.4);
  const auto order = MakeLabelingOrder(pairs, OrderKind::kExpected, &truth,
                                       /*rng=*/nullptr)
                         .value();
  std::printf("planning a transitive campaign for %zu candidate pairs\n\n",
              pairs.size());

  TablePrinter table({"workers", "assignments/HIT", "worker accuracy",
                      "HITs", "time", "cost", "F-measure"});
  for (int workers : {10, 40}) {
    for (int assignments : {1, 3, 5}) {
      for (double error : {0.05, 0.20}) {
        CrowdConfig config;
        config.seed = seed;
        config.num_workers = workers;
        config.assignments_per_hit = assignments;
        config.false_negative_rate = error;
        config.false_positive_rate = error;
        const AmtRunStats stats =
            RunTransitiveAmt(pairs, order, config, truth).value();
        const QualityMetrics quality =
            ComputeQuality(pairs, stats.final_labels, truth);
        table.AddRow({std::to_string(workers), std::to_string(assignments),
                      StrFormat("%.0f%%", 100.0 * (1.0 - error)),
                      std::to_string(stats.num_hits),
                      StrFormat("%.0f h", stats.total_hours),
                      StrFormat("$%.2f", stats.total_cost_cents / 100.0),
                      StrFormat("%.1f%%", 100.0 * quality.f_measure)});
      }
    }
  }
  table.Print(std::cout);
  std::printf("\nreplication buys quality; batching and transitivity buy "
              "money; workers buy time.\n");
  return 0;
}
