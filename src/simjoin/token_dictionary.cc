#include "simjoin/token_dictionary.h"

#include <algorithm>

#include "text/tokenize.h"

namespace crowdjoin {

int32_t TokenDictionary::Intern(const std::string& token) {
  auto [it, inserted] =
      ids_.try_emplace(token, static_cast<int32_t>(frequency_.size()));
  if (inserted) frequency_.push_back(0);
  return it->second;
}

std::vector<int32_t> TokenDictionary::AddDocument(
    const std::vector<std::string>& tokens) {
  std::vector<int32_t> doc = Encode(tokens);
  for (int32_t id : doc) ++frequency_[static_cast<size_t>(id)];
  ++num_documents_;
  return doc;
}

std::vector<int32_t> TokenDictionary::Encode(
    const std::vector<std::string>& tokens) {
  std::vector<int32_t> doc;
  doc.reserve(tokens.size());
  for (const auto& token : tokens) doc.push_back(Intern(token));
  std::sort(doc.begin(), doc.end());
  doc.erase(std::unique(doc.begin(), doc.end()), doc.end());
  return doc;
}

std::vector<int32_t> TokenDictionary::Lookup(
    const std::vector<std::string>& tokens, size_t* num_distinct) const {
  std::vector<int32_t> doc;
  doc.reserve(tokens.size());
  // Count unknown tokens by distinct *string*, not per occurrence: sort
  // the misses and unique them alongside the known-id dedup below.
  std::vector<const std::string*> unknown;
  for (const auto& token : tokens) {
    auto it = ids_.find(token);
    if (it == ids_.end()) {
      unknown.push_back(&token);
    } else {
      doc.push_back(it->second);
    }
  }
  std::sort(doc.begin(), doc.end());
  doc.erase(std::unique(doc.begin(), doc.end()), doc.end());
  if (num_distinct != nullptr) {
    std::sort(unknown.begin(), unknown.end(),
              [](const std::string* x, const std::string* y) { return *x < *y; });
    unknown.erase(std::unique(unknown.begin(), unknown.end(),
                              [](const std::string* x, const std::string* y) {
                                return *x == *y;
                              }),
                  unknown.end());
    *num_distinct = doc.size() + unknown.size();
  }
  return doc;
}

void TokenDictionary::Reserve(size_t expected_tokens) {
  ids_.reserve(expected_tokens);
  frequency_.reserve(expected_tokens);
}

void TokenDictionary::SortByRarity(std::vector<int32_t>& doc) const {
  SortByRarity(doc.data(), doc.data() + doc.size());
}

void TokenDictionary::SortByRarity(int32_t* first, int32_t* last) const {
  std::sort(first, last, [this](int32_t x, int32_t y) {
    const int64_t fx = frequency_[static_cast<size_t>(x)];
    const int64_t fy = frequency_[static_cast<size_t>(y)];
    if (fx != fy) return fx < fy;
    return x < y;
  });
}

std::vector<int32_t> TokenDictionary::RarityRanks() const {
  const size_t n = frequency_.size();
  std::vector<int32_t> by_rarity(n);
  for (size_t i = 0; i < n; ++i) by_rarity[i] = static_cast<int32_t>(i);
  SortByRarity(by_rarity.data(), by_rarity.data() + n);
  std::vector<int32_t> ranks(n);
  for (size_t r = 0; r < n; ++r) {
    ranks[static_cast<size_t>(by_rarity[r])] = static_cast<int32_t>(r);
  }
  return ranks;
}

}  // namespace crowdjoin
