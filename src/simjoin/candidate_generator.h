#ifndef CROWDJOIN_SIMJOIN_CANDIDATE_GENERATOR_H_
#define CROWDJOIN_SIMJOIN_CANDIDATE_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/candidate.h"
#include "datagen/record_source.h"
#include "simjoin/sharded_join.h"
#include "text/record.h"
#include "text/record_similarity.h"

namespace crowdjoin {

/// Options for machine-based candidate generation (Section 2.3).
struct CandidateGeneratorOptions {
  /// Coarse token-Jaccard prune applied by the similarity join before the
  /// full record scorer runs. Loose by design: the paper's machine step
  /// "weeds out pairs that look very dissimilar" [25].
  double token_join_threshold = 0.1;
  /// Pairs whose blended record similarity (the matching likelihood) falls
  /// below this are dropped from the candidate set.
  double min_likelihood = 0.1;
  /// Gaussian noise added to each likelihood (clamped to [0.01, 0.99])
  /// before the `min_likelihood` cut. Models the miscalibration of real
  /// machine-learned match scores [25]: with zero noise the likelihood
  /// ranking separates matching from non-matching pairs almost perfectly
  /// and the parallel labeler converges in one round, which real candidate
  /// sets (Figures 13-14: ~14 rounds) do not.
  double likelihood_noise_stddev = 0.0;
  /// Seed for the likelihood noise stream.
  uint64_t noise_seed = 1;
};

/// \brief The machine step of the hybrid workflow: generates the candidate
/// set of matching pairs with likelihoods.
///
/// Every record's fields are concatenated and word-tokenized; a
/// prefix-filter similarity join prunes the cross product; survivors are
/// scored by `scorer` (call `scorer.FitTfIdf` first if it uses TF-IDF).
///
/// `side_of` selects the join shape: nullptr runs a self-join over
/// `records`; otherwise `side_of[i]` in {0, 1} assigns each record to one
/// collection and only cross-side pairs are produced (the Product dataset's
/// 1081 x 1092 setting). Candidate pairs reference `Record::id`.
Result<CandidateSet> GenerateCandidates(
    const RecordSet& records, const std::vector<uint8_t>* side_of,
    const RecordScorer& scorer, const CandidateGeneratorOptions& options);

/// \brief Streaming machine step: candidate generation over a
/// `RecordSource`, with the cross-product pruned by the sharded parallel
/// join — the entry point for 100k-1M-record workloads.
///
/// Records are pulled from `source` one at a time (after a `Reset`),
/// tokenized, interned, and fed straight into a `ShardedSelfJoiner` /
/// `ShardedBipartiteJoiner` (chosen by `source.meta().bipartite`); the
/// join then fans across `sharding.num_threads` pool workers.
///
/// `scorer` may be null: likelihoods are then the join's token-Jaccard
/// scores and **no record text is retained** — memory stays at the token
/// docs plus the candidate set, which is what makes million-record
/// campaigns fit. With a scorer (fit it over the same corpus first) the
/// streamed records are retained for scoring and the result is
/// byte-identical to `GenerateCandidates` over the materialized dataset.
///
/// `entity_of_out`, when non-null, receives each streamed record's ground
/// truth entity (indexed by record position) for building oracles without
/// a second pass.
Result<CandidateSet> GenerateCandidatesStreaming(
    RecordSource& source, const RecordScorer* scorer,
    const CandidateGeneratorOptions& options,
    const ShardedJoinOptions& sharding,
    std::vector<int32_t>* entity_of_out = nullptr);

}  // namespace crowdjoin

#endif  // CROWDJOIN_SIMJOIN_CANDIDATE_GENERATOR_H_
