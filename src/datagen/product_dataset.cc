#include "datagen/product_dataset.h"

#include <string>
#include <vector>

#include "common/macros.h"
#include "common/string_util.h"
#include "datagen/wordlists.h"

namespace crowdjoin {

namespace {

// Schema field indexes for the Product dataset.
constexpr int kName = 0;
constexpr int kPrice = 1;

struct ProductEntity {
  std::string brand;
  std::string model;  // e.g. "kx-3200b"
  std::vector<std::string> nouns;
  std::vector<std::string> adjectives;
  double price = 0.0;
};

std::string MakeModelCode(Rng& rng) {
  static constexpr char kLetters[] = "abcdefghijklmnopqrstuvwxyz";
  std::string code;
  const size_t prefix_len = 2 + rng.Index(2);
  for (size_t i = 0; i < prefix_len; ++i) {
    code += kLetters[rng.Index(26)];
  }
  code += '-';
  const size_t digits = 2 + rng.Index(3);
  for (size_t i = 0; i < digits; ++i) {
    code += static_cast<char>('0' + rng.Index(10));
  }
  if (rng.Bernoulli(0.4)) code += kLetters[rng.Index(26)];
  return code;
}

ProductEntity MakeEntity(Rng& rng) {
  const auto& brands = wordlists::Brands();
  const auto& nouns = wordlists::ProductNouns();
  const auto& adjectives = wordlists::ProductAdjectives();

  ProductEntity entity;
  entity.brand = std::string(brands[rng.Index(brands.size())]);
  entity.model = MakeModelCode(rng);
  const size_t num_nouns = 1 + rng.Index(2);
  for (size_t i = 0; i < num_nouns; ++i) {
    entity.nouns.emplace_back(nouns[rng.Index(nouns.size())]);
  }
  const size_t num_adjectives = 2 + rng.Index(3);
  for (size_t i = 0; i < num_adjectives; ++i) {
    entity.adjectives.emplace_back(adjectives[rng.Index(adjectives.size())]);
  }
  entity.price = 10.0 + rng.UniformDouble() * 1990.0;
  return entity;
}

Record MakeRecord(const ProductEntity& entity, ObjectId id, uint8_t side,
                  bool canonical, const ProductDatasetConfig& config,
                  Corruptor& corruptor, Rng& rng) {
  Record record;
  record.id = id;
  record.fields.resize(2);

  std::string model = entity.model;
  bool include_model = true;
  if (!canonical) {
    if (rng.Bernoulli(config.drop_model_prob)) include_model = false;
    if (include_model && rng.Bernoulli(config.reformat_model_prob)) {
      // Strip the dash so the code tokenizes as one word instead of two.
      std::string compact;
      for (char c : model) {
        if (c != '-') compact += c;
      }
      model = compact;
    }
  }

  // Retailer-specific word order: side 0 leads with brand + model; side 1
  // leads with the description.
  std::vector<std::string> words;
  if (side == 0) {
    words.push_back(entity.brand);
    if (include_model) words.push_back(model);
    words.insert(words.end(), entity.adjectives.begin(),
                 entity.adjectives.end());
    words.insert(words.end(), entity.nouns.begin(), entity.nouns.end());
  } else {
    words.insert(words.end(), entity.adjectives.begin(),
                 entity.adjectives.end());
    words.insert(words.end(), entity.nouns.begin(), entity.nouns.end());
    words.push_back(entity.brand);
    if (include_model) words.push_back(model);
  }
  std::string name = Join(words, " ");
  if (!canonical) name = corruptor.CorruptText(name);
  record.fields[kName] = name;

  if (!rng.Bernoulli(config.price_missing_prob)) {
    const double price =
        canonical ? entity.price
                  : corruptor.JitterNumber(entity.price, config.price_jitter);
    record.fields[kPrice] = StrFormat("%.2f", price);
  }
  return record;
}

}  // namespace

Result<Dataset> GenerateProductDataset(const ProductDatasetConfig& config) {
  Rng rng(config.seed);
  CJ_ASSIGN_OR_RETURN(const std::vector<int32_t> cluster_sizes,
                      SampleSmallClusterSizes(config.clusters, rng));

  Dataset dataset;
  dataset.name = "product";
  dataset.bipartite = true;
  dataset.schema.field_names = {"name", "price"};
  Corruptor corruptor(config.corruption, &rng);

  ObjectId next_id = 0;
  for (size_t entity_id = 0; entity_id < cluster_sizes.size(); ++entity_id) {
    const ProductEntity entity = MakeEntity(rng);
    const int32_t size = cluster_sizes[entity_id];
    for (int32_t r = 0; r < size; ++r) {
      // Singleton clusters land on a random side; larger clusters alternate
      // so every multi-record entity spans both catalogs.
      uint8_t side = 0;
      if (size == 1) {
        side = rng.Bernoulli(0.5) ? 1 : 0;
      } else {
        side = static_cast<uint8_t>(r % 2);
      }
      dataset.records.push_back(MakeRecord(entity, next_id, side,
                                           /*canonical=*/r == 0, config,
                                           corruptor, rng));
      dataset.entity_of.push_back(static_cast<int32_t>(entity_id));
      dataset.side_of.push_back(side);
      ++next_id;
    }
  }
  return dataset;
}

RecordScorer MakeProductScorer() {
  return RecordScorer({
      {kName, FieldMeasure::kTfIdfCosine, 0.70},
      {kName, FieldMeasure::kQGramJaccard, 0.15, /*q=*/3},
      {kPrice, FieldMeasure::kNumeric, 0.15},
  });
}

}  // namespace crowdjoin
