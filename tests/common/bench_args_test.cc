#include "bench/bench_util.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace crowdjoin::bench {
namespace {

// Owns argv storage for a fabricated command line.
class FakeArgv {
 public:
  explicit FakeArgv(std::vector<std::string> args) : storage_(std::move(args)) {
    argv_.push_back(const_cast<char*>("test_binary"));
    for (std::string& arg : storage_) {
      argv_.push_back(arg.data());
    }
  }
  int argc() const { return static_cast<int>(argv_.size()); }
  char** argv() { return argv_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> argv_;
};

TEST(BenchArgs, ParsesWellFormedFlags) {
  FakeArgv fake({"--scale=100", "--threshold=0.75", "--name=paper"});
  const Args args(fake.argc(), fake.argv());
  EXPECT_EQ(args.GetUint64("scale", 1), 100u);
  EXPECT_DOUBLE_EQ(args.GetDouble("threshold", 0.5), 0.75);
  EXPECT_EQ(args.GetString("name", "x"), "paper");
  args.Done();  // everything consumed: no exit
}

TEST(BenchArgs, AbsentFlagsFallBack) {
  FakeArgv fake({});
  const Args args(fake.argc(), fake.argv());
  EXPECT_EQ(args.GetUint64("scale", 7), 7u);
  EXPECT_DOUBLE_EQ(args.GetDouble("threshold", 0.25), 0.25);
  EXPECT_EQ(args.GetString("name", "fallback"), "fallback");
  args.Done();
}

TEST(BenchArgs, DuplicateFlagHonorsFirstAndPassesDone) {
  FakeArgv fake({"--scale=3", "--scale=9"});
  const Args args(fake.argc(), fake.argv());
  EXPECT_EQ(args.GetUint64("scale", 1), 3u);
  args.Done();  // both occurrences count as consumed
}

TEST(BenchArgs, ParsesEveryLogLevelName) {
  FakeArgv fake({"--a=debug", "--b=info", "--c=warning", "--d=error",
                 "--e=off"});
  const Args args(fake.argc(), fake.argv());
  EXPECT_EQ(args.GetLogLevel("a", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(args.GetLogLevel("b", LogLevel::kOff), LogLevel::kInfo);
  EXPECT_EQ(args.GetLogLevel("c", LogLevel::kOff), LogLevel::kWarning);
  EXPECT_EQ(args.GetLogLevel("d", LogLevel::kOff), LogLevel::kError);
  EXPECT_EQ(args.GetLogLevel("e", LogLevel::kDebug), LogLevel::kOff);
  args.Done();
}

TEST(BenchArgs, AbsentLogLevelFallsBack) {
  FakeArgv fake({});
  const Args args(fake.argc(), fake.argv());
  EXPECT_EQ(args.GetLogLevel("log_level", LogLevel::kWarning),
            LogLevel::kWarning);
  args.Done();
}

using BenchArgsDeathTest = ::testing::Test;

TEST(BenchArgsDeathTest, TrailingJunkInUint64IsFatal) {
  FakeArgv fake({"--threads=8x"});
  const Args args(fake.argc(), fake.argv());
  EXPECT_EXIT(args.GetUint64("threads", 1), ::testing::ExitedWithCode(2),
              "bad value for --threads");
}

TEST(BenchArgsDeathTest, NegativeUint64IsFatal) {
  // strtoull would silently wrap -1 to 2^64-1; the parser must not.
  FakeArgv fake({"--scale=-1"});
  const Args args(fake.argc(), fake.argv());
  EXPECT_EXIT(args.GetUint64("scale", 1), ::testing::ExitedWithCode(2),
              "bad value for --scale");
}

TEST(BenchArgsDeathTest, EmptyUint64IsFatal) {
  FakeArgv fake({"--scale="});
  const Args args(fake.argc(), fake.argv());
  EXPECT_EXIT(args.GetUint64("scale", 1), ::testing::ExitedWithCode(2),
              "bad value for --scale");
}

TEST(BenchArgsDeathTest, OutOfRangeUint64IsFatal) {
  FakeArgv fake({"--scale=99999999999999999999999999"});
  const Args args(fake.argc(), fake.argv());
  EXPECT_EXIT(args.GetUint64("scale", 1), ::testing::ExitedWithCode(2),
              "out of range");
}

TEST(BenchArgsDeathTest, MalformedDoubleIsFatal) {
  FakeArgv fake({"--threshold=0.5abc"});
  const Args args(fake.argc(), fake.argv());
  EXPECT_EXIT(args.GetDouble("threshold", 0.5), ::testing::ExitedWithCode(2),
              "bad value for --threshold");
}

TEST(BenchArgsDeathTest, BogusLogLevelIsFatal) {
  // Strict by design: a typo like --log_level=inof must not silently fall
  // back to the default severity.
  FakeArgv fake({"--log_level=verbose"});
  const Args args(fake.argc(), fake.argv());
  EXPECT_EXIT(args.GetLogLevel("log_level", LogLevel::kInfo),
              ::testing::ExitedWithCode(2),
              "expected debug\\|info\\|warning\\|error\\|off");
}

TEST(BenchArgsDeathTest, UnrecognizedFlagFailsDone) {
  // A typo'd flag name is consumed by nothing, so Done() must reject it —
  // the old parser would silently benchmark the default value.
  FakeArgv fake({"--thread=8"});
  const Args args(fake.argc(), fake.argv());
  EXPECT_EQ(args.GetUint64("threads", 1), 1u);
  EXPECT_EXIT(args.Done(), ::testing::ExitedWithCode(2),
              "unrecognized argument '--thread=8'");
}

TEST(BenchArgsDeathTest, StrayPositionalFailsDone) {
  FakeArgv fake({"stray"});
  const Args args(fake.argc(), fake.argv());
  EXPECT_EXIT(args.Done(), ::testing::ExitedWithCode(2),
              "unrecognized argument 'stray'");
}

}  // namespace
}  // namespace crowdjoin::bench
