#ifndef CROWDJOIN_GRAPH_OVERLAY_GRAPH_H_
#define CROWDJOIN_GRAPH_OVERLAY_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/cluster_graph.h"
#include "graph/label.h"

namespace crowdjoin {

/// \brief A mutable delta on top of an immutable `ClusterGraphSnapshot`:
/// behaves like a `ClusterGraph` that started from the snapshot's state,
/// without copying it.
///
/// This is what lets `LabelingSession::RunStream`'s round-parallel scans
/// replay a round's labels "on top of" the persistent graph in O(round)
/// work instead of O(total objects): construction is O(1), every `Add`
/// touches only overlay state, and reads consult the snapshot through its
/// epoch-stable interface.
///
/// Semantics: `Deduce`, `Add` outcomes, and `num_conflicts()` are exactly
/// those of `ClusterGraph graph = <state at snapshot>; graph.Add(...)` for
/// the same label sequence under the same `ConflictPolicy` (pinned by
/// tests/graph/snapshot_property_test.cc). `num_edges`/`num_merges` style
/// counters are intentionally not provided — round scans never read them.
///
/// The overlay borrows the snapshot; single-threaded use only.
class OverlayClusterGraph {
 public:
  /// `base` must be valid and outlive the overlay.
  OverlayClusterGraph(const ClusterGraphSnapshot* base, ConflictPolicy policy);

  /// Algorithm 1 over snapshot-plus-overlay state. Non-const: memoizes
  /// base-root lookups and compresses the overlay forest.
  Deduction Deduce(ObjectId a, ObjectId b);

  /// Inserts a labeled pair, mirroring `ClusterGraph::Add` outcome for
  /// outcome (including conflict counting and the kTrustNew
  /// drop-edge-then-merge behavior).
  AddOutcome Add(ObjectId a, ObjectId b, Label label);

  /// Conflicts seen by the snapshot plus conflicts added through this
  /// overlay — the value the equivalent copied graph would report.
  int64_t num_conflicts() const {
    return base_->num_conflicts() + local_conflicts_;
  }

 private:
  // Base-epoch root of `x`, memoized per object.
  int32_t BaseRoot(ObjectId x);
  // Overlay root of a base root (path-compressed map forest).
  int32_t OverlayRoot(int32_t base_root);
  // The base roots grouped under overlay root `r` ({r} itself while the
  // root is an untouched singleton). `r` must stay an lvalue the view can
  // point into.
  std::pair<const int32_t*, size_t> GroupOf(const int32_t& r) const;
  // True when an overlay-added live edge connects overlay roots ra and rb.
  bool HasOverlayEdge(int32_t ra, int32_t rb) const;
  // True when a surviving base edge connects the two groups.
  bool HasBaseEdge(const int32_t* group_a, size_t na, const int32_t* group_b,
                   size_t nb) const;
  bool HasEdge(int32_t ra, int32_t rb) const;
  // Deletes every witness of the edge between ra and rb (kTrustNew).
  void DeleteEdge(int32_t ra, int32_t rb);
  // Merges the overlay clusters rooted at ra and rb.
  void Merge(int32_t ra, int32_t rb);

  static uint64_t PackPair(int32_t a, int32_t b) {
    const uint32_t lo = static_cast<uint32_t>(a < b ? a : b);
    const uint32_t hi = static_cast<uint32_t>(a < b ? b : a);
    return (static_cast<uint64_t>(hi) << 32) | lo;
  }

  const ClusterGraphSnapshot* base_;
  ConflictPolicy policy_;
  int64_t local_conflicts_ = 0;

  std::unordered_map<int32_t, int32_t> base_root_memo_;  // object -> base root
  // Overlay union-find over base roots; absent key = singleton root.
  std::unordered_map<int32_t, int32_t> parent_;
  // Base-root groups of non-singleton overlay roots.
  std::unordered_map<int32_t, std::vector<int32_t>> groups_;
  // Overlay-added non-matching edges, keyed by overlay roots (symmetric,
  // re-keyed on merge like ClusterGraph's fold).
  std::unordered_map<int32_t, std::unordered_set<int32_t>> added_edges_;
  // Base edges deleted by kTrustNew, as packed base-root pairs.
  std::unordered_set<uint64_t> deleted_base_edges_;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_GRAPH_OVERLAY_GRAPH_H_
