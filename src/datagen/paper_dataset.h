#ifndef CROWDJOIN_DATAGEN_PAPER_DATASET_H_
#define CROWDJOIN_DATAGEN_PAPER_DATASET_H_

#include <cstdint>

#include "common/result.h"
#include "datagen/cluster_distribution.h"
#include "datagen/dataset.h"
#include "datagen/perturb.h"
#include "text/record_similarity.h"

namespace crowdjoin {

/// Configuration of the Cora-like publication dataset ("Paper" in the
/// paper's evaluation): 997 records with five attributes (Author, Title,
/// Venue, Date, Pages) and a heavy-tailed cluster-size distribution
/// (Figure 10(a)).
struct PaperDatasetConfig {
  PowerLawClusterConfig clusters;
  CorruptionConfig corruption;
  double author_initial_prob = 0.4;   ///< "john smith" -> "j smith"
  double author_drop_prob = 0.15;     ///< drop one co-author
  double venue_abbrev_prob = 0.5;     ///< full venue name <-> abbreviation
  double year_missing_prob = 0.10;
  double year_off_by_one_prob = 0.05;
  double pages_missing_prob = 0.30;
  uint64_t seed = 42;
};

/// Generates the Paper dataset: duplicate publication records with
/// realistic citation-style noise.
Result<Dataset> GeneratePaperDataset(const PaperDatasetConfig& config);

/// The record scorer used as the "machine-based method" for Paper records:
/// weighted blend of author/title/venue token similarity, year proximity
/// and page-string similarity.
RecordScorer MakePaperScorer();

}  // namespace crowdjoin

#endif  // CROWDJOIN_DATAGEN_PAPER_DATASET_H_
