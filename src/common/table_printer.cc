#include "common/table_printer.h"

#include <algorithm>

#include "common/macros.h"

namespace crowdjoin {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  CJ_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };
  print_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

void CsvWriter::WriteRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os_ << ',';
    const std::string& cell = cells[i];
    const bool needs_quote =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote) {
      os_ << cell;
      continue;
    }
    os_ << '"';
    for (char ch : cell) {
      if (ch == '"') os_ << '"';
      os_ << ch;
    }
    os_ << '"';
  }
  os_ << '\n';
}

}  // namespace crowdjoin
