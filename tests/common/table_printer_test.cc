#include "common/table_printer.h"

#include <gtest/gtest.h>

#include <sstream>

namespace crowdjoin {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"name", "n"});
  table.AddRow({"paper", "997"});
  table.AddRow({"product", "2173"});
  std::ostringstream os;
  table.Print(os);
  const std::string expected =
      "| name    | n    |\n"
      "|---------|------|\n"
      "| paper   | 997  |\n"
      "| product | 2173 |\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(TablePrinter, HeaderOnlyTable) {
  TablePrinter table({"a"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_EQ(os.str(), "| a |\n|---|\n");
}

TEST(CsvWriter, PlainCells) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.WriteRow({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvWriter, QuotesSpecialCells) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.WriteRow({"has,comma", "has\"quote", "has\nnewline", "plain"});
  EXPECT_EQ(os.str(), "\"has,comma\",\"has\"\"quote\",\"has\nnewline\",plain\n");
}

TEST(CsvWriter, EmptyRow) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.WriteRow({});
  EXPECT_EQ(os.str(), "\n");
}

}  // namespace
}  // namespace crowdjoin
