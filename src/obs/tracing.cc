#include "obs/tracing.h"

#include <algorithm>
#include <cstdio>

namespace crowdjoin::obs {

namespace {

uint64_t NextRecorderId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

void AppendChromeEvent(std::string* out, const TraceEvent& event) {
  // ts/dur are microseconds with sub-microsecond precision as fractions.
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d}",
                event.name, event.category,
                static_cast<double>(event.start_ns) / 1000.0,
                static_cast<double>(event.dur_ns) / 1000.0, event.tid);
  out->append(buf);
}

}  // namespace

TraceRecorder::TraceRecorder() : recorder_id_(NextRecorderId()) {}

TraceRecorder& TraceRecorder::Global() {
  // Leaked for the same reason as MetricsRegistry::Global(): spans on
  // detached threads must never touch a destroyed recorder.
  static TraceRecorder* const global = new TraceRecorder();
  return *global;
}

void TraceRecorder::SetRingCapacity(size_t events) {
  ring_capacity_.store(events, std::memory_order_relaxed);
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(rings_mu_);
  for (const std::shared_ptr<Ring>& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->events.clear();
    ring->total = 0;
  }
}

TraceRecorder::Ring* TraceRecorder::ThreadRing() {
  // Cache the (recorder, ring) pair per thread. A thread alternating spans
  // between two recorders re-registers a fresh ring on each switch — fine
  // for the intended use (one process-global recorder, plus short-lived
  // per-test recorders on their own threads). The shared_ptr keeps the
  // cached ring alive even if the recorder dies first; the id check keeps a
  // recreated recorder at the same address from inheriting a stale ring.
  thread_local uint64_t cached_recorder_id = 0;
  thread_local std::shared_ptr<Ring> cached_ring;
  if (cached_recorder_id != recorder_id_) {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings_.push_back(std::make_shared<Ring>(
        next_tid_++, ring_capacity_.load(std::memory_order_relaxed)));
    cached_ring = rings_.back();
    cached_recorder_id = recorder_id_;
  }
  return cached_ring.get();
}

void TraceRecorder::Append(const char* name, const char* category,
                           int64_t start_ns, int64_t dur_ns) {
  Ring* ring = ThreadRing();
  std::lock_guard<std::mutex> lock(ring->mu);
  if (ring->capacity == 0) return;
  const TraceEvent event{name, category, start_ns, dur_ns, ring->tid};
  if (ring->events.size() < ring->capacity) {
    ring->events.push_back(event);
  } else {
    ring->events[ring->total % ring->capacity] = event;
  }
  ++ring->total;
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mu_);
    rings = rings_;
  }
  std::vector<TraceEvent> events;
  for (const std::shared_ptr<Ring>& ring : rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    const size_t size = ring->events.size();
    // When the ring has wrapped, the oldest retained event sits at
    // total % capacity; unwrap so each thread's events come out in order.
    const size_t start =
        ring->total > size ? ring->total % ring->capacity : 0;
    for (size_t i = 0; i < size; ++i) {
      events.push_back(ring->events[(start + i) % size]);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return events;
}

std::string TraceRecorder::ToChromeTraceJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    AppendChromeEvent(&out, events[i]);
  }
  out += "\n]}\n";
  return out;
}

}  // namespace crowdjoin::obs
