#ifndef CROWDJOIN_EVAL_WORKBENCH_H_
#define CROWDJOIN_EVAL_WORKBENCH_H_

#include <cstdint>

#include "common/result.h"
#include "core/candidate.h"
#include "datagen/dataset.h"

namespace crowdjoin {

/// \brief A ready-to-experiment bundle: a generated dataset plus the
/// machine-generated candidate set (all pairs with likelihood >= 0.1, the
/// loosest threshold any experiment sweeps).
///
/// Every figure/table harness starts from one of these, then applies its
/// own likelihood threshold with `FilterByThreshold`, so all experiments on
/// the same dataset see exactly the same candidates, as in the paper.
struct ExperimentInput {
  Dataset dataset;
  CandidateSet candidates;
};

/// Generates the Paper (Cora-like) dataset and its candidate set.
Result<ExperimentInput> MakePaperExperimentInput(uint64_t seed);

/// Generates the Product (Abt-Buy-like) bipartite dataset and candidates.
Result<ExperimentInput> MakeProductExperimentInput(uint64_t seed);

/// Pairs whose likelihood is >= `threshold` (the Section 6 sweeps).
CandidateSet FilterByThreshold(const CandidateSet& candidates,
                               double threshold);

}  // namespace crowdjoin

#endif  // CROWDJOIN_EVAL_WORKBENCH_H_
