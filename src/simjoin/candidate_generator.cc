#include "simjoin/candidate_generator.h"

#include <algorithm>
#include <string>

#include "common/macros.h"
#include "common/rng.h"
#include "simjoin/similarity_join.h"
#include "simjoin/token_dictionary.h"
#include "text/tokenize.h"

namespace crowdjoin {

namespace {

double NoisyLikelihood(double similarity, double stddev, Rng& rng) {
  if (stddev <= 0.0) return similarity;
  return std::clamp(similarity + rng.Normal(0.0, stddev), 0.01, 0.99);
}

std::vector<std::string> RecordTokens(const Record& record) {
  std::string all;
  for (const auto& field : record.fields) {
    all += field;
    all += ' ';
  }
  return WordTokens(all);
}

}  // namespace

Result<CandidateSet> GenerateCandidates(
    const RecordSet& records, const std::vector<uint8_t>* side_of,
    const RecordScorer& scorer, const CandidateGeneratorOptions& options) {
  if (side_of != nullptr && side_of->size() != records.size()) {
    return Status::InvalidArgument("side_of size does not match records");
  }

  TokenDictionary dictionary;
  CandidateSet candidates;
  Rng noise_rng(options.noise_seed);

  if (side_of == nullptr) {
    std::vector<std::vector<int32_t>> docs(records.size());
    for (size_t i = 0; i < records.size(); ++i) {
      docs[i] = dictionary.AddDocument(RecordTokens(records[i]));
    }
    CJ_ASSIGN_OR_RETURN(
        const std::vector<ScoredPair> joined,
        PrefixFilterSelfJoin(docs, dictionary, options.token_join_threshold));
    candidates.reserve(joined.size());
    for (const ScoredPair& pair : joined) {
      const Record& ra = records[static_cast<size_t>(pair.left)];
      const Record& rb = records[static_cast<size_t>(pair.right)];
      CJ_ASSIGN_OR_RETURN(const double similarity, scorer.Score(ra, rb));
      const double likelihood = NoisyLikelihood(
          similarity, options.likelihood_noise_stddev, noise_rng);
      if (likelihood >= options.min_likelihood) {
        candidates.push_back({ra.id, rb.id, likelihood});
      }
    }
    return candidates;
  }

  // Bipartite: split record indexes by side, join, map back.
  std::vector<std::vector<int32_t>> left_docs;
  std::vector<std::vector<int32_t>> right_docs;
  std::vector<size_t> left_index;
  std::vector<size_t> right_index;
  for (size_t i = 0; i < records.size(); ++i) {
    const std::vector<std::string> tokens = RecordTokens(records[i]);
    if ((*side_of)[i] == 0) {
      left_docs.push_back(dictionary.AddDocument(tokens));
      left_index.push_back(i);
    } else {
      right_docs.push_back(dictionary.AddDocument(tokens));
      right_index.push_back(i);
    }
  }
  CJ_ASSIGN_OR_RETURN(
      const std::vector<ScoredPair> joined,
      PrefixFilterBipartiteJoin(left_docs, right_docs, dictionary,
                                options.token_join_threshold));
  candidates.reserve(joined.size());
  for (const ScoredPair& pair : joined) {
    const Record& ra = records[left_index[static_cast<size_t>(pair.left)]];
    const Record& rb = records[right_index[static_cast<size_t>(pair.right)]];
    CJ_ASSIGN_OR_RETURN(const double similarity, scorer.Score(ra, rb));
    const double likelihood = NoisyLikelihood(
        similarity, options.likelihood_noise_stddev, noise_rng);
    if (likelihood >= options.min_likelihood) {
      candidates.push_back({ra.id, rb.id, likelihood});
    }
  }
  return candidates;
}

}  // namespace crowdjoin
