#ifndef CROWDJOIN_DATAGEN_WORDLISTS_H_
#define CROWDJOIN_DATAGEN_WORDLISTS_H_

#include <string_view>
#include <utility>
#include <vector>

namespace crowdjoin {

/// Static word pools backing the synthetic dataset generators. The pools
/// stand in for the vocabulary of the paper's Cora and Abt-Buy datasets
/// (which are not redistributable here); sizes are chosen so that records
/// of different entities still share common words, producing the graded
/// likelihood distribution the threshold sweeps (Figures 11-12) need.
namespace wordlists {

/// Common research-title words (Zipf-weighted draws give shared vocabulary).
const std::vector<std::string_view>& TitleWords();

/// Author first names.
const std::vector<std::string_view>& FirstNames();

/// Author last names.
const std::vector<std::string_view>& LastNames();

/// (full venue name, abbreviation) pairs; records use either form.
const std::vector<std::pair<std::string_view, std::string_view>>& Venues();

/// Consumer-electronics brands.
const std::vector<std::string_view>& Brands();

/// Product category nouns.
const std::vector<std::string_view>& ProductNouns();

/// Product descriptive adjectives.
const std::vector<std::string_view>& ProductAdjectives();

}  // namespace wordlists
}  // namespace crowdjoin

#endif  // CROWDJOIN_DATAGEN_WORDLISTS_H_
