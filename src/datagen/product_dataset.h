#ifndef CROWDJOIN_DATAGEN_PRODUCT_DATASET_H_
#define CROWDJOIN_DATAGEN_PRODUCT_DATASET_H_

#include <cstdint>

#include "common/result.h"
#include "datagen/cluster_distribution.h"
#include "datagen/dataset.h"
#include "datagen/perturb.h"
#include "text/record_similarity.h"

namespace crowdjoin {

/// Configuration of the Abt-Buy-like bipartite product dataset ("Product"
/// in the paper's evaluation): two retailer catalogs with name and price
/// attributes, near-1-to-1 matching, cluster sizes 1-6 (Figure 10(b)).
struct ProductDatasetConfig {
  SmallClusterConfig clusters;
  CorruptionConfig corruption;
  double drop_model_prob = 0.12;      ///< listing omits the model code
  double reformat_model_prob = 0.40;  ///< "kx-200" -> "kx200" style drift
  double price_jitter = 0.06;         ///< relative price difference
  double price_missing_prob = 0.08;
  uint64_t seed = 43;
};

/// Generates the Product dataset: two catalogs of product listings with
/// retailer-specific formatting conventions. Only cross-side pairs are
/// join candidates (the paper's 1081 x 1092 setting).
Result<Dataset> GenerateProductDataset(const ProductDatasetConfig& config);

/// The record scorer for Product listings: TF-IDF name cosine (rare model
/// codes weigh heavily) blended with q-gram overlap and price proximity.
/// Callers must run `FitTfIdf` over the dataset's records before scoring.
RecordScorer MakeProductScorer();

}  // namespace crowdjoin

#endif  // CROWDJOIN_DATAGEN_PRODUCT_DATASET_H_
