// The session equivalence suite: LabelingSession must reproduce the five
// legacy labeling engines **byte for byte** at every (schedule, deduction,
// stop) policy combination, thread count, order kind, and conflict policy.
//
// The references below are verbatim ports of the pre-session engine
// implementations (SequentialLabeler, ParallelLabeler, BudgetLabeler,
// OneToOneLabeler, InstantDecisionEngine as of the seed), kept here as the
// frozen ground truth; the production classes are now thin wrappers over
// the session, so comparing against *them* would be circular.

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <numeric>
#include <optional>

#include "core/budget_labeler.h"
#include "core/instant_decision.h"
#include "core/labeling_order.h"
#include "core/labeling_session.h"
#include "core/one_to_one_labeler.h"
#include "core/parallel_labeler.h"
#include "core/sequential_labeler.h"
#include "tests/core/test_fixtures.h"

namespace crowdjoin {
namespace {

using testing_fixtures::Figure3Pairs;
using testing_fixtures::Figure3Truth;
using testing_fixtures::MakeRandomInstance;
using testing_fixtures::RandomInstance;

std::vector<int32_t> IdentityOrder(size_t n) {
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

// --- Frozen reference implementations (seed code, verbatim) ---------------

LabelingResult ReferenceSequential(const CandidateSet& pairs,
                                   const std::vector<int32_t>& order,
                                   LabelOracle& oracle,
                                   ConflictPolicy policy) {
  LabelingResult result;
  result.outcomes.resize(pairs.size());
  ClusterGraph graph(NumObjectsSpanned(pairs), policy);
  for (int32_t pos : order) {
    const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
    const Deduction deduction = graph.Deduce(pair.a, pair.b);
    PairOutcome& outcome = result.outcomes[static_cast<size_t>(pos)];
    if (deduction == Deduction::kUndeduced) {
      outcome.label = oracle.GetLabel(pair.a, pair.b);
      outcome.source = LabelSource::kCrowdsourced;
      ++result.num_crowdsourced;
      result.crowdsourced_per_iteration.push_back(1);
      graph.Add(pair.a, pair.b, outcome.label);
    } else {
      outcome.label = DeductionToLabel(deduction);
      outcome.source = LabelSource::kDeduced;
      ++result.num_deduced;
    }
  }
  result.num_conflicts = graph.num_conflicts();
  return result;
}

LabelingResult ReferenceRoundParallel(const CandidateSet& pairs,
                                      const std::vector<int32_t>& order,
                                      LabelOracle& oracle,
                                      ConflictPolicy policy) {
  LabelingResult result;
  result.outcomes.resize(pairs.size());
  std::vector<std::optional<Label>> labels(pairs.size());
  size_t num_labeled = 0;
  while (num_labeled < pairs.size()) {
    const std::vector<int32_t> batch = ParallelCrowdsourcedPairs(
        pairs, order, labels, /*exclude_from_output=*/nullptr, policy);
    EXPECT_FALSE(batch.empty());
    if (batch.empty()) break;
    for (int32_t pos : batch) {
      const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
      const Label label = oracle.GetLabel(pair.a, pair.b);
      labels[static_cast<size_t>(pos)] = label;
      result.outcomes[static_cast<size_t>(pos)] = {
          label, LabelSource::kCrowdsourced};
      ++result.num_crowdsourced;
      ++num_labeled;
    }
    result.crowdsourced_per_iteration.push_back(
        static_cast<int64_t>(batch.size()));
    ClusterGraph graph(NumObjectsSpanned(pairs), policy);
    for (int32_t pos : order) {
      const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
      auto& label = labels[static_cast<size_t>(pos)];
      if (label.has_value()) {
        graph.Add(pair.a, pair.b, *label);
        continue;
      }
      const Deduction deduction = graph.Deduce(pair.a, pair.b);
      if (deduction != Deduction::kUndeduced) {
        label = DeductionToLabel(deduction);
        result.outcomes[static_cast<size_t>(pos)] = {*label,
                                                     LabelSource::kDeduced};
        ++result.num_deduced;
        ++num_labeled;
      }
    }
    result.num_conflicts = graph.num_conflicts();
  }
  return result;
}

struct ReferenceBudgetResult {
  std::vector<std::optional<PairOutcome>> outcomes;
  int64_t num_crowdsourced = 0;
  int64_t num_deduced = 0;
  int64_t num_unlabeled = 0;
};

ReferenceBudgetResult ReferenceBudget(const CandidateSet& pairs,
                                      const std::vector<int32_t>& order,
                                      int64_t budget, LabelOracle& oracle) {
  ReferenceBudgetResult result;
  result.outcomes.resize(pairs.size());
  ClusterGraph graph(NumObjectsSpanned(pairs));
  for (int32_t pos : order) {
    const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
    auto& outcome = result.outcomes[static_cast<size_t>(pos)];
    const Deduction deduction = graph.Deduce(pair.a, pair.b);
    if (deduction != Deduction::kUndeduced) {
      outcome = PairOutcome{DeductionToLabel(deduction),
                            LabelSource::kDeduced};
      ++result.num_deduced;
      continue;
    }
    if (result.num_crowdsourced >= budget) {
      ++result.num_unlabeled;
      continue;
    }
    const Label label = oracle.GetLabel(pair.a, pair.b);
    outcome = PairOutcome{label, LabelSource::kCrowdsourced};
    ++result.num_crowdsourced;
    graph.Add(pair.a, pair.b, label);
  }
  return result;
}

struct ReferenceOneToOneResult {
  LabelingResult labeling;
  int64_t num_one_to_one_deduced = 0;
  int64_t num_exclusivity_violations = 0;
};

ReferenceOneToOneResult ReferenceOneToOne(const CandidateSet& pairs,
                                          const std::vector<int32_t>& order,
                                          LabelOracle& oracle) {
  ReferenceOneToOneResult result;
  result.labeling.outcomes.resize(pairs.size());
  const int32_t num_objects = NumObjectsSpanned(pairs);
  ClusterGraph graph(num_objects);
  std::vector<bool> matched(static_cast<size_t>(num_objects), false);
  for (int32_t pos : order) {
    const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
    PairOutcome& outcome = result.labeling.outcomes[static_cast<size_t>(pos)];
    const Deduction deduction = graph.Deduce(pair.a, pair.b);
    if (deduction != Deduction::kUndeduced) {
      outcome.label = DeductionToLabel(deduction);
      outcome.source = LabelSource::kDeduced;
      ++result.labeling.num_deduced;
      continue;
    }
    if (matched[static_cast<size_t>(pair.a)] ||
        matched[static_cast<size_t>(pair.b)]) {
      outcome.label = Label::kNonMatching;
      outcome.source = LabelSource::kDeduced;
      ++result.labeling.num_deduced;
      ++result.num_one_to_one_deduced;
      graph.Add(pair.a, pair.b, Label::kNonMatching);
      continue;
    }
    outcome.label = oracle.GetLabel(pair.a, pair.b);
    outcome.source = LabelSource::kCrowdsourced;
    ++result.labeling.num_crowdsourced;
    result.labeling.crowdsourced_per_iteration.push_back(1);
    graph.Add(pair.a, pair.b, outcome.label);
    if (outcome.label == Label::kMatching) {
      if (matched[static_cast<size_t>(pair.a)] ||
          matched[static_cast<size_t>(pair.b)]) {
        ++result.num_exclusivity_violations;
      }
      matched[static_cast<size_t>(pair.a)] = true;
      matched[static_cast<size_t>(pair.b)] = true;
    }
  }
  return result;
}

// The legacy InstantDecisionEngine, driven synchronously FIFO (the
// publication order RunNonParallelAmt bills for).
LabelingResult ReferenceInstantFifo(const CandidateSet& pairs,
                                    const std::vector<int32_t>& order,
                                    LabelOracle& oracle,
                                    ConflictPolicy policy) {
  std::vector<std::optional<Label>> labels(pairs.size());
  std::vector<bool> published(pairs.size(), false);
  int64_t num_crowdsourced = 0;
  const auto scan = [&]() {
    std::vector<int32_t> fresh = ParallelCrowdsourcedPairs(
        pairs, order, labels, &published, policy);
    for (int32_t pos : fresh) published[static_cast<size_t>(pos)] = true;
    return fresh;
  };
  std::deque<int32_t> pending;
  {
    const std::vector<int32_t> initial = scan();
    pending.insert(pending.end(), initial.begin(), initial.end());
  }
  while (!pending.empty()) {
    const int32_t pos = pending.front();
    pending.pop_front();
    const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
    const Label label = oracle.GetLabel(pair.a, pair.b);
    labels[static_cast<size_t>(pos)] = label;
    ++num_crowdsourced;
    if (label != Label::kMatching) {
      const std::vector<int32_t> fresh = scan();
      pending.insert(pending.end(), fresh.begin(), fresh.end());
    }
  }
  LabelingResult result;
  result.outcomes.resize(pairs.size());
  result.num_crowdsourced = num_crowdsourced;
  ClusterGraph graph(NumObjectsSpanned(pairs), policy);
  for (int32_t pos : order) {
    const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
    auto& label = labels[static_cast<size_t>(pos)];
    auto& outcome = result.outcomes[static_cast<size_t>(pos)];
    if (label.has_value()) {
      outcome = {*label, LabelSource::kCrowdsourced};
      graph.Add(pair.a, pair.b, *label);
      continue;
    }
    const Deduction deduction = graph.Deduce(pair.a, pair.b);
    EXPECT_NE(deduction, Deduction::kUndeduced);
    label = DeductionToLabel(deduction);
    outcome = {*label, LabelSource::kDeduced};
    ++result.num_deduced;
  }
  result.num_conflicts = graph.num_conflicts();
  return result;
}

// --- The matrix -----------------------------------------------------------

struct OracleFactory {
  const GroundTruthOracle* truth;
  double error_rate;
  uint64_t seed;

  // Batch-safe fresh oracle per run: identical answer streams for the
  // session and the reference.
  std::unique_ptr<LabelOracle> Make() const {
    if (error_rate == 0.0) {
      return std::make_unique<GroundTruthOracle>(*truth);
    }
    return std::make_unique<HashNoisyOracle>(truth, error_rate, error_rate,
                                             seed);
  }
};

std::vector<std::vector<int32_t>> OrdersFor(const CandidateSet& pairs,
                                            const GroundTruthOracle& truth,
                                            uint64_t seed) {
  std::vector<std::vector<int32_t>> orders;
  orders.push_back(IdentityOrder(pairs.size()));
  for (OrderKind kind : {OrderKind::kOptimal, OrderKind::kExpected,
                         OrderKind::kRandom, OrderKind::kWorst}) {
    Rng rng(seed ^ 0xfeed);
    orders.push_back(MakeLabelingOrder(pairs, kind, &truth, &rng).value());
  }
  return orders;
}

class SessionEquivalence : public ::testing::Test {
 protected:
  // Figure 3 plus random instances of varied density and cluster shape.
  std::vector<RandomInstance> Instances() {
    std::vector<RandomInstance> instances;
    instances.push_back({Figure3Pairs(), {0, 0, 0, 1, 1, 2}});
    instances.push_back(MakeRandomInstance(101, 25, 5, 90));
    instances.push_back(MakeRandomInstance(102, 40, 12, 150));
    instances.push_back(MakeRandomInstance(103, 12, 2, 50));
    return instances;
  }
};

TEST_F(SessionEquivalence, SequentialScheduleMatchesReference) {
  for (const RandomInstance& instance : Instances()) {
    GroundTruthOracle truth(instance.entity_of);
    for (const auto& order : OrdersFor(instance.pairs, truth, 5)) {
      for (ConflictPolicy policy :
           {ConflictPolicy::kKeepFirst, ConflictPolicy::kTrustNew}) {
        for (double error_rate : {0.0, 0.25}) {
          const OracleFactory oracles{&truth, error_rate, 17};
          auto ref_oracle = oracles.Make();
          const LabelingResult expected = ReferenceSequential(
              instance.pairs, order, *ref_oracle, policy);

          LabelingSessionOptions options;
          options.conflict_policy = policy;
          LabelingSession session(options);
          auto oracle = oracles.Make();
          const LabelingResult actual =
              session.Run(instance.pairs, order, *oracle)
                  .value()
                  .ToLabelingResult();
          ASSERT_TRUE(actual == expected)
              << "policy=" << static_cast<int>(policy)
              << " error_rate=" << error_rate;
          EXPECT_EQ(oracle->num_queries(), ref_oracle->num_queries());
        }
      }
    }
  }
}

TEST_F(SessionEquivalence, RoundParallelScheduleMatchesReference) {
  for (const RandomInstance& instance : Instances()) {
    GroundTruthOracle truth(instance.entity_of);
    for (const auto& order : OrdersFor(instance.pairs, truth, 6)) {
      for (ConflictPolicy policy :
           {ConflictPolicy::kKeepFirst, ConflictPolicy::kTrustNew}) {
        for (double error_rate : {0.0, 0.25}) {
          const OracleFactory oracles{&truth, error_rate, 19};
          auto ref_oracle = oracles.Make();
          const LabelingResult expected = ReferenceRoundParallel(
              instance.pairs, order, *ref_oracle, policy);
          for (int threads : {1, 2, 4, 8}) {
            LabelingSessionOptions options;
            options.schedule = SchedulePolicy::kRoundParallel;
            options.conflict_policy = policy;
            options.num_threads = threads;
            LabelingSession session(options);
            auto oracle = oracles.Make();
            const LabelingResult actual =
                session.Run(instance.pairs, order, *oracle)
                    .value()
                    .ToLabelingResult();
            ASSERT_TRUE(actual == expected)
                << "threads=" << threads
                << " policy=" << static_cast<int>(policy)
                << " error_rate=" << error_rate;
          }
        }
      }
    }
  }
}

TEST_F(SessionEquivalence, BudgetStopMatchesReference) {
  for (const RandomInstance& instance : Instances()) {
    GroundTruthOracle truth(instance.entity_of);
    for (const auto& order : OrdersFor(instance.pairs, truth, 7)) {
      for (int64_t budget : {0, 1, 7, 40, 10000}) {
        const OracleFactory oracles{&truth, 0.0, 0};
        auto ref_oracle = oracles.Make();
        const ReferenceBudgetResult expected =
            ReferenceBudget(instance.pairs, order, budget, *ref_oracle);

        LabelingSessionOptions options;
        options.stop = StopPolicy::Budget(budget);
        LabelingSession session(options);
        auto oracle = oracles.Make();
        const LabelingReport actual =
            session.Run(instance.pairs, order, *oracle).value();
        ASSERT_EQ(actual.outcomes, expected.outcomes) << "budget=" << budget;
        EXPECT_EQ(actual.num_crowdsourced, expected.num_crowdsourced);
        EXPECT_EQ(actual.num_deduced, expected.num_deduced);
        EXPECT_EQ(actual.num_unlabeled, expected.num_unlabeled);
        EXPECT_EQ(oracle->num_queries(), ref_oracle->num_queries());
      }
    }
  }
}

TEST_F(SessionEquivalence, OneToOneChainMatchesReference) {
  for (const RandomInstance& instance : Instances()) {
    GroundTruthOracle truth(instance.entity_of);
    for (const auto& order : OrdersFor(instance.pairs, truth, 8)) {
      for (double error_rate : {0.0, 0.25}) {
        const OracleFactory oracles{&truth, error_rate, 23};
        auto ref_oracle = oracles.Make();
        const ReferenceOneToOneResult expected =
            ReferenceOneToOne(instance.pairs, order, *ref_oracle);

        LabelingSession session;
        session.AddRule(std::make_unique<TransitiveDeductionRule>())
            .AddRule(std::make_unique<OneToOneDeductionRule>());
        auto oracle = oracles.Make();
        const LabelingReport actual =
            session.Run(instance.pairs, order, *oracle).value();
        ASSERT_TRUE(actual.ToLabelingResult().outcomes ==
                    expected.labeling.outcomes);
        EXPECT_EQ(actual.num_crowdsourced, expected.labeling.num_crowdsourced);
        EXPECT_EQ(actual.num_deduced, expected.labeling.num_deduced);
        EXPECT_EQ(actual.crowdsourced_per_iteration,
                  expected.labeling.crowdsourced_per_iteration);
        EXPECT_EQ(actual.num_one_to_one_deduced,
                  expected.num_one_to_one_deduced);
        EXPECT_EQ(actual.num_exclusivity_violations,
                  expected.num_exclusivity_violations);
      }
    }
  }
}

TEST_F(SessionEquivalence, InstantScheduleMatchesReference) {
  for (const RandomInstance& instance : Instances()) {
    GroundTruthOracle truth(instance.entity_of);
    for (const auto& order : OrdersFor(instance.pairs, truth, 9)) {
      for (ConflictPolicy policy :
           {ConflictPolicy::kKeepFirst, ConflictPolicy::kTrustNew}) {
        for (double error_rate : {0.0, 0.25}) {
          const OracleFactory oracles{&truth, error_rate, 29};
          auto ref_oracle = oracles.Make();
          const LabelingResult expected = ReferenceInstantFifo(
              instance.pairs, order, *ref_oracle, policy);

          LabelingSessionOptions options;
          options.schedule = SchedulePolicy::kInstantDecision;
          options.conflict_policy = policy;
          LabelingSession session(options);
          auto oracle = oracles.Make();
          const LabelingResult actual =
              session.Run(instance.pairs, order, *oracle)
                  .value()
                  .ToLabelingResult();
          ASSERT_TRUE(actual == expected)
              << "policy=" << static_cast<int>(policy)
              << " error_rate=" << error_rate;
          EXPECT_EQ(oracle->num_queries(), ref_oracle->num_queries());
        }
      }
    }
  }
}

// The wrappers themselves (what call sites actually use) against the
// references — one pass each, closing the loop engine-by-engine.
TEST_F(SessionEquivalence, LegacyWrappersStillMatchReferences) {
  const RandomInstance instance = MakeRandomInstance(104, 30, 6, 120);
  GroundTruthOracle truth(instance.entity_of);
  const auto order = IdentityOrder(instance.pairs.size());

  {
    GroundTruthOracle o1 = truth;
    GroundTruthOracle o2 = truth;
    EXPECT_TRUE(
        SequentialLabeler().Run(instance.pairs, order, o1).value() ==
        ReferenceSequential(instance.pairs, order, o2,
                            ConflictPolicy::kKeepFirst));
  }
  {
    GroundTruthOracle o1 = truth;
    GroundTruthOracle o2 = truth;
    EXPECT_TRUE(
        ParallelLabeler(ConflictPolicy::kKeepFirst, 4)
            .Run(instance.pairs, order, o1)
            .value() ==
        ReferenceRoundParallel(instance.pairs, order, o2,
                               ConflictPolicy::kKeepFirst));
  }
  {
    GroundTruthOracle o1 = truth;
    GroundTruthOracle o2 = truth;
    const auto actual =
        BudgetLabeler().Run(instance.pairs, order, 15, o1).value();
    const auto expected = ReferenceBudget(instance.pairs, order, 15, o2);
    EXPECT_EQ(actual.outcomes, expected.outcomes);
    EXPECT_EQ(actual.num_unlabeled, expected.num_unlabeled);
  }
  {
    GroundTruthOracle o1 = truth;
    GroundTruthOracle o2 = truth;
    const auto actual =
        OneToOneLabeler().Run(instance.pairs, order, o1).value();
    const auto expected = ReferenceOneToOne(instance.pairs, order, o2);
    EXPECT_TRUE(actual.labeling.outcomes == expected.labeling.outcomes);
    EXPECT_EQ(actual.num_one_to_one_deduced, expected.num_one_to_one_deduced);
  }
  {
    GroundTruthOracle o1 = truth;
    GroundTruthOracle o2 = truth;
    InstantDecisionEngine engine(&instance.pairs, order);
    std::deque<int32_t> pending;
    const std::vector<int32_t> initial = engine.Start().value();
    pending.insert(pending.end(), initial.begin(), initial.end());
    while (!pending.empty()) {
      const int32_t pos = pending.front();
      pending.pop_front();
      const CandidatePair& pair = instance.pairs[static_cast<size_t>(pos)];
      const std::vector<int32_t> fresh =
          engine.OnPairLabeled(pos, o1.GetLabel(pair.a, pair.b)).value();
      pending.insert(pending.end(), fresh.begin(), fresh.end());
    }
    EXPECT_TRUE(engine.Finish().value() ==
                ReferenceInstantFifo(instance.pairs, order, o2,
                                     ConflictPolicy::kKeepFirst));
  }
}

}  // namespace
}  // namespace crowdjoin
