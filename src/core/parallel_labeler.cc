#include "core/parallel_labeler.h"

#include <optional>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "core/sequential_labeler.h"

namespace crowdjoin {

std::vector<int32_t> ParallelCrowdsourcedPairs(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    const std::vector<std::optional<Label>>& labels_by_pos,
    const std::vector<bool>* exclude_from_output, ConflictPolicy policy) {
  std::vector<int32_t> publish;
  ClusterGraph graph(NumObjectsSpanned(pairs), policy);
  for (int32_t pos : order) {
    const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
    const std::optional<Label>& label = labels_by_pos[static_cast<size_t>(pos)];
    if (label.has_value()) {
      graph.Add(pair.a, pair.b, *label);
      continue;
    }
    if (graph.Deduce(pair.a, pair.b) == Deduction::kUndeduced) {
      if (exclude_from_output == nullptr ||
          !(*exclude_from_output)[static_cast<size_t>(pos)]) {
        publish.push_back(pos);
      }
      // Suppose the pair is matching (Algorithm 3, line 11).
      graph.Add(pair.a, pair.b, Label::kMatching);
    }
    // Optimistically deducible pairs contribute nothing (their label is
    // already implied by the graph or contradicts the assumption).
  }
  return publish;
}

Result<LabelingResult> ParallelLabeler::Run(const CandidateSet& pairs,
                                            const std::vector<int32_t>& order,
                                            LabelOracle& oracle) const {
  // One pool shared by every round of this run. Created only when real
  // parallelism was requested: the single-threaded path calls the oracle
  // inline in batch order, which keeps order-dependent oracles (e.g.
  // NoisyOracle's sequential RNG stream) exactly as deterministic as the
  // pre-threading implementation.
  std::optional<ThreadPool> pool;
  if (num_threads_ > 1) pool.emplace(num_threads_);

  return RunWithBatchSource(
      pairs, order,
      [&](const std::vector<int32_t>& batch) -> Result<std::vector<Label>> {
        return ParallelMap(
            pool.has_value() ? &*pool : nullptr,
            static_cast<int64_t>(batch.size()), [&](int64_t i) {
              const CandidatePair& pair =
                  pairs[static_cast<size_t>(batch[static_cast<size_t>(i)])];
              return oracle.GetLabel(pair.a, pair.b);
            });
      });
}

Result<LabelingResult> ParallelLabeler::RunWithBatchSource(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    const BatchLabelFn& label_batch) const {
  CJ_RETURN_IF_ERROR(ValidateOrder(order, pairs.size()));

  LabelingResult result;
  result.outcomes.resize(pairs.size());
  std::vector<std::optional<Label>> labels(pairs.size());
  size_t num_labeled = 0;

  while (num_labeled < pairs.size()) {
    // Identify and "publish" this round's batch (Algorithm 2, line 4).
    const std::vector<int32_t> batch =
        ParallelCrowdsourcedPairs(pairs, order, labels,
                                  /*exclude_from_output=*/nullptr, policy_);
    CJ_CHECK(!batch.empty());  // undeduced pairs always remain publishable

    // Crowdsource all batch pairs "simultaneously" (line 5), then merge
    // the answers back by batch position on this thread — the step that
    // makes the result independent of how the source resolved them.
    CJ_ASSIGN_OR_RETURN(const std::vector<Label> batch_labels,
                        label_batch(batch));
    CJ_CHECK(batch_labels.size() == batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const int32_t pos = batch[i];
      const Label label = batch_labels[i];
      labels[static_cast<size_t>(pos)] = label;
      result.outcomes[static_cast<size_t>(pos)] = {
          label, LabelSource::kCrowdsourced};
      ++result.num_crowdsourced;
      ++num_labeled;
    }
    result.crowdsourced_per_iteration.push_back(
        static_cast<int64_t>(batch.size()));

    // Deduce every pair that became deducible from its prefix of labeled
    // pairs (lines 6-8): one ordered scan, cascading deductions.
    ClusterGraph graph(NumObjectsSpanned(pairs), policy_);
    for (int32_t pos : order) {
      const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
      auto& label = labels[static_cast<size_t>(pos)];
      if (label.has_value()) {
        graph.Add(pair.a, pair.b, *label);
        continue;
      }
      const Deduction deduction = graph.Deduce(pair.a, pair.b);
      if (deduction != Deduction::kUndeduced) {
        label = DeductionToLabel(deduction);
        result.outcomes[static_cast<size_t>(pos)] = {*label,
                                                     LabelSource::kDeduced};
        ++result.num_deduced;
        ++num_labeled;
        // The deduced label is already implied by the graph: no Add needed.
      }
    }
    result.num_conflicts = graph.num_conflicts();
  }
  return result;
}

}  // namespace crowdjoin
