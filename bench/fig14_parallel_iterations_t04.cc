// Reproduces Figure 14: the Figure 13 comparison at likelihood threshold
// 0.4. A larger threshold keeps fewer candidate pairs, so the graph built
// over them is sparser and the parallel labeler needs fewer iterations.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/parallel_comparison.h"

int main(int argc, char** argv) {
  const crowdjoin::bench::Args args(argc, argv);
  const uint64_t seed = args.GetUint64("seed", 42);
  const double threshold = args.GetDouble("threshold", 0.4);
  const int num_threads = static_cast<int>(args.GetUint64("threads", 1));

  std::printf("=== Figure 14: parallel vs non-parallel labeling "
              "(threshold %.1f, %d threads) ===\n", threshold, num_threads);
  crowdjoin::bench::RunParallelComparison(
      crowdjoin::bench::Unwrap(crowdjoin::MakePaperExperimentInput(seed)),
      threshold, num_threads);
  crowdjoin::bench::RunParallelComparison(
      crowdjoin::bench::Unwrap(crowdjoin::MakeProductExperimentInput(seed)),
      threshold, num_threads);
  return 0;
}
