#ifndef CROWDJOIN_EVAL_METRICS_H_
#define CROWDJOIN_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "core/candidate.h"
#include "core/labeling_result.h"
#include "core/oracle.h"
#include "graph/label.h"

namespace crowdjoin {

/// \brief Result-quality metrics over a labeled candidate set, using the
/// paper's Section 6.4 definitions:
///   tp = correctly labeled matching pairs,
///   fp = wrongly labeled matching pairs (truly non-matching),
///   fn = falsely labeled non-matching pairs (truly matching),
///   precision = tp/(tp+fp), recall = tp/(tp+fn),
///   F-measure  = harmonic mean of precision and recall.
struct QualityMetrics {
  int64_t true_positives = 0;
  int64_t false_positives = 0;
  int64_t false_negatives = 0;
  int64_t true_negatives = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f_measure = 0.0;
};

/// Computes quality of `final_labels` (one per candidate position) against
/// the ground truth. Empty metrics (all zeros) when sizes mismatch is a
/// programming error and aborts.
QualityMetrics ComputeQuality(const CandidateSet& pairs,
                              const std::vector<Label>& final_labels,
                              const GroundTruthOracle& truth);

/// Final label per candidate position from a session report. Pairs a
/// budget-capped run left unlabeled fall back to non-matching — the usual
/// convention for budget sweeps (see `BudgetLabeler`).
std::vector<Label> ExtractFinalLabels(const LabelingReport& report);

/// Same, for the legacy result shape (every pair labeled by construction).
std::vector<Label> ExtractFinalLabels(const LabelingResult& result);

}  // namespace crowdjoin

#endif  // CROWDJOIN_EVAL_METRICS_H_
