#include "simjoin/candidate_generator.h"

#include <gtest/gtest.h>

#include "datagen/paper_dataset.h"
#include "datagen/product_dataset.h"
#include "datagen/streaming_generator.h"

namespace crowdjoin {
namespace {

Record MakeRecord(ObjectId id, std::vector<std::string> fields) {
  Record record;
  record.id = id;
  record.fields = std::move(fields);
  return record;
}

RecordScorer NameScorer() {
  return RecordScorer({{0, FieldMeasure::kJaccardWords, 1.0}});
}

TEST(GenerateCandidates, SelfJoinFindsSimilarRecords) {
  const RecordSet records = {
      MakeRecord(0, {"apple ipad second generation"}),
      MakeRecord(1, {"apple ipad 2nd generation"}),
      MakeRecord(2, {"completely unrelated stereo receiver"}),
  };
  CandidateGeneratorOptions options;
  options.token_join_threshold = 0.2;
  options.min_likelihood = 0.3;
  const CandidateSet candidates =
      GenerateCandidates(records, nullptr, NameScorer(), options).value();
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].a, 0);
  EXPECT_EQ(candidates[0].b, 1);
  EXPECT_GT(candidates[0].likelihood, 0.5);
}

TEST(GenerateCandidates, BipartiteOnlyCrossSidePairs) {
  const RecordSet records = {
      MakeRecord(0, {"sony bravia lcd tv"}),
      MakeRecord(1, {"sony bravia lcd television"}),  // same side as 0
      MakeRecord(2, {"sony bravia lcd tv set"}),      // other side
  };
  const std::vector<uint8_t> sides = {0, 0, 1};
  CandidateGeneratorOptions options;
  options.token_join_threshold = 0.2;
  options.min_likelihood = 0.2;
  const CandidateSet candidates =
      GenerateCandidates(records, &sides, NameScorer(), options).value();
  // Records 0 and 1 are both on side 0: no candidate between them.
  for (const auto& pair : candidates) {
    EXPECT_NE(sides[static_cast<size_t>(pair.a)],
              sides[static_cast<size_t>(pair.b)])
        << pair.a << "," << pair.b;
  }
  EXPECT_EQ(candidates.size(), 2u);  // (0,2) and (1,2)
}

TEST(GenerateCandidates, SideVectorSizeMismatchIsError) {
  const RecordSet records = {MakeRecord(0, {"x"})};
  const std::vector<uint8_t> sides = {0, 1};
  CandidateGeneratorOptions options;
  EXPECT_EQ(GenerateCandidates(records, &sides, NameScorer(), options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(GenerateCandidates, MinLikelihoodFilters) {
  const RecordSet records = {
      MakeRecord(0, {"alpha beta gamma delta"}),
      MakeRecord(1, {"alpha beta gamma delta epsilon"}),
      MakeRecord(2, {"alpha zeta eta theta"}),
  };
  CandidateGeneratorOptions loose;
  loose.token_join_threshold = 0.1;
  loose.min_likelihood = 0.1;
  CandidateGeneratorOptions strict = loose;
  strict.min_likelihood = 0.75;
  const auto all =
      GenerateCandidates(records, nullptr, NameScorer(), loose).value();
  const auto filtered =
      GenerateCandidates(records, nullptr, NameScorer(), strict).value();
  EXPECT_GT(all.size(), filtered.size());
  for (const auto& pair : filtered) {
    EXPECT_GE(pair.likelihood, 0.75);
  }
}

TEST(GenerateCandidates, LikelihoodNoiseIsDeterministicPerSeed) {
  const RecordSet records = {
      MakeRecord(0, {"one two three four"}),
      MakeRecord(1, {"one two three five"}),
      MakeRecord(2, {"one two six seven"}),
  };
  CandidateGeneratorOptions options;
  options.token_join_threshold = 0.1;
  options.min_likelihood = 0.05;
  options.likelihood_noise_stddev = 0.2;
  options.noise_seed = 77;
  const auto first =
      GenerateCandidates(records, nullptr, NameScorer(), options).value();
  const auto second =
      GenerateCandidates(records, nullptr, NameScorer(), options).value();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i].likelihood, second[i].likelihood);
    EXPECT_GE(first[i].likelihood, 0.01);
    EXPECT_LE(first[i].likelihood, 0.99);
  }
}

TEST(GenerateCandidates, EmptyRecordSet) {
  CandidateGeneratorOptions options;
  EXPECT_TRUE(
      GenerateCandidates({}, nullptr, NameScorer(), options).value().empty());
}

TEST(GenerateCandidatesStreaming, SelfJoinMatchesBatchPath) {
  PaperDatasetConfig config;
  config.clusters.total_records = 120;
  config.clusters.max_cluster_size = 20;
  config.seed = 33;
  const Dataset dataset = GeneratePaperDataset(config).value();
  RecordScorer scorer = MakePaperScorer();
  scorer.FitTfIdf(dataset.records);

  CandidateGeneratorOptions options;
  options.token_join_threshold = 0.15;
  options.min_likelihood = 0.2;
  options.likelihood_noise_stddev = 0.1;
  options.noise_seed = 5;
  const CandidateSet batch =
      GenerateCandidates(dataset.records, nullptr, scorer, options).value();
  ASSERT_FALSE(batch.empty());

  DatasetRecordSource source(&dataset);
  for (int threads : {0, 2, 4}) {
    for (int shards : {1, 3, 16}) {
      ShardedJoinOptions sharding;
      sharding.num_threads = threads;
      sharding.num_shards = shards;
      std::vector<int32_t> entity_of;
      const CandidateSet streaming =
          GenerateCandidatesStreaming(source, &scorer, options, sharding,
                                      &entity_of)
              .value();
      ASSERT_EQ(streaming, batch) << "threads=" << threads
                                  << " shards=" << shards;
      EXPECT_EQ(entity_of, dataset.entity_of);
    }
  }
}

TEST(GenerateCandidatesStreaming, BipartiteMatchesBatchPath) {
  ProductDatasetConfig config;
  config.clusters.total_records = 160;
  config.seed = 34;
  const Dataset dataset = GenerateProductDataset(config).value();
  RecordScorer scorer = MakeProductScorer();
  scorer.FitTfIdf(dataset.records);

  CandidateGeneratorOptions options;
  options.token_join_threshold = 0.15;
  options.min_likelihood = 0.2;
  const CandidateSet batch =
      GenerateCandidates(dataset.records, &dataset.side_of, scorer, options)
          .value();
  ASSERT_FALSE(batch.empty());

  DatasetRecordSource source(&dataset);
  for (int threads : {0, 3}) {
    ShardedJoinOptions sharding;
    sharding.num_threads = threads;
    const CandidateSet streaming =
        GenerateCandidatesStreaming(source, &scorer, options, sharding)
            .value();
    ASSERT_EQ(streaming, batch) << "threads=" << threads;
  }
}

TEST(GenerateCandidatesStreaming, NullScorerUsesJoinScores) {
  // The memory-lean configuration: no scorer, likelihood = token Jaccard.
  PaperDatasetConfig config;
  config.clusters.total_records = 100;
  config.clusters.max_cluster_size = 15;
  config.seed = 35;
  StreamingPaperSource source(config, /*scale_factor=*/2);

  CandidateGeneratorOptions options;
  options.token_join_threshold = 0.4;
  options.min_likelihood = 0.4;
  ShardedJoinOptions sharding;
  sharding.num_threads = 2;
  std::vector<int32_t> entity_of;
  const CandidateSet candidates =
      GenerateCandidatesStreaming(source, nullptr, options, sharding,
                                  &entity_of)
          .value();
  EXPECT_EQ(entity_of.size(), 200u);
  ASSERT_FALSE(candidates.empty());
  for (const auto& pair : candidates) {
    EXPECT_GE(pair.likelihood, options.min_likelihood);
    EXPECT_LT(pair.a, pair.b);
  }
  // Deterministic: a fresh pass over the same stream yields the same set.
  const CandidateSet again =
      GenerateCandidatesStreaming(source, nullptr, options, sharding)
          .value();
  EXPECT_EQ(again, candidates);
}

}  // namespace
}  // namespace crowdjoin
