// Publication deduplication end to end, the workload the paper's intro
// motivates: a Cora-like bibliography with heavy duplication is resolved
// with the hybrid machine + crowd + transitivity pipeline.
//
//   $ ./paper_dedup [--seed=N] [--threads=N]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/labeling_order.h"
#include "core/labeling_session.h"
#include "datagen/paper_dataset.h"
#include "eval/metrics.h"
#include "simjoin/candidate_generator.h"

using namespace crowdjoin;  // NOLINT(build/namespaces)

int main(int argc, char** argv) {
  uint64_t seed = 42;
  int num_threads = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      num_threads = static_cast<int>(std::strtol(arg.c_str() + 10,
                                                 nullptr, 10));
    }
  }

  // 1. A dirty bibliography: 997 records, heavy-tailed duplication.
  PaperDatasetConfig config;
  config.seed = seed;
  const Dataset dataset = GeneratePaperDataset(config).value();
  std::printf("generated %zu publication records "
              "(%lld truly matching pairs hidden inside)\n",
              dataset.records.size(),
              static_cast<long long>(NumTrueMatchingPairs(dataset)));
  std::printf("sample record: author=\"%s\" title=\"%s\" venue=\"%s\"\n",
              dataset.records[1].fields[0].c_str(),
              dataset.records[1].fields[1].c_str(),
              dataset.records[1].fields[2].c_str());

  // 2. Machine step: similarity join + multi-field scoring produce the
  //    candidate pairs with matching likelihoods.
  RecordScorer scorer = MakePaperScorer();
  scorer.FitTfIdf(dataset.records);
  CandidateGeneratorOptions options;
  options.token_join_threshold = 0.08;
  options.min_likelihood = 0.30;
  const CandidateSet candidates =
      GenerateCandidates(dataset.records, /*side_of=*/nullptr, scorer,
                         options)
          .value();
  std::printf("machine step kept %zu candidate pairs (likelihood >= %.2f) "
              "out of %lld possible\n",
              candidates.size(), options.min_likelihood,
              static_cast<long long>(
                  static_cast<int64_t>(dataset.records.size()) *
                  (static_cast<int64_t>(dataset.records.size()) - 1) / 2));

  // 3. Crowd step with transitive relations, in the heuristic order. Each
  //    round's oracle calls are fanned out over the worker pool; the
  //    labeling result is identical for any --threads value.
  GroundTruthOracle truth = MakeGroundTruthOracle(dataset);
  const auto order = MakeLabelingOrder(candidates, OrderKind::kExpected,
                                       &truth, /*rng=*/nullptr)
                         .value();
  GroundTruthOracle crowd = truth;  // simulated, always-correct workers
  LabelingSessionOptions session_options;
  session_options.schedule = SchedulePolicy::kRoundParallel;
  session_options.num_threads = num_threads;
  LabelingSession session(session_options);
  const LabelingReport result = session.Run(candidates, order, crowd).value();

  const QualityMetrics quality =
      ComputeQuality(candidates, ExtractFinalLabels(result), truth);

  const double savings =
      100.0 * static_cast<double>(result.num_deduced) /
      static_cast<double>(candidates.size());
  std::printf("\ncrowdsourced %lld pairs, deduced %lld (%.1f%% saved) in "
              "%zu parallel rounds\n",
              static_cast<long long>(result.num_crowdsourced),
              static_cast<long long>(result.num_deduced), savings,
              result.crowdsourced_per_iteration.size());
  std::printf("result quality: precision %.2f%%, recall %.2f%%, "
              "F-measure %.2f%%\n",
              100.0 * quality.precision, 100.0 * quality.recall,
              100.0 * quality.f_measure);
  std::printf("at 3 assignments x 2 cents per 20-pair HIT, that is "
              "$%.2f instead of $%.2f\n",
              0.06 * static_cast<double>(
                         (result.num_crowdsourced + 19) / 20),
              0.06 * static_cast<double>(
                         (static_cast<int64_t>(candidates.size()) + 19) / 20));
  return 0;
}
