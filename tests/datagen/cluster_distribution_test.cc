#include "datagen/cluster_distribution.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace crowdjoin {
namespace {

TEST(PowerLawClusterSizes, SumsToTotalAndRespectsBounds) {
  PowerLawClusterConfig config;
  config.total_records = 997;
  config.max_cluster_size = 102;
  Rng rng(1);
  const auto sizes = SamplePowerLawClusterSizes(config, rng).value();
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0), 997);
  for (int32_t size : sizes) {
    EXPECT_GE(size, 1);
    EXPECT_LE(size, 102);
  }
  // The forced maximum cluster is present.
  EXPECT_EQ(*std::max_element(sizes.begin(), sizes.end()), 102);
}

TEST(PowerLawClusterSizes, NoForcedMaxCluster) {
  PowerLawClusterConfig config;
  config.total_records = 100;
  config.max_cluster_size = 50;
  config.force_max_cluster = false;
  Rng rng(2);
  const auto sizes = SamplePowerLawClusterSizes(config, rng).value();
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0), 100);
}

TEST(PowerLawClusterSizes, DeterministicPerSeed) {
  PowerLawClusterConfig config;
  Rng rng1(3);
  Rng rng2(3);
  EXPECT_EQ(SamplePowerLawClusterSizes(config, rng1).value(),
            SamplePowerLawClusterSizes(config, rng2).value());
}

TEST(PowerLawClusterSizes, HigherAlphaMeansSmallerClusters) {
  PowerLawClusterConfig flat;
  flat.alpha = 0.5;
  PowerLawClusterConfig steep;
  steep.alpha = 2.5;
  Rng rng1(4);
  Rng rng2(4);
  const auto flat_sizes = SamplePowerLawClusterSizes(flat, rng1).value();
  const auto steep_sizes = SamplePowerLawClusterSizes(steep, rng2).value();
  // Same total records, so more clusters means smaller average size.
  EXPECT_GT(steep_sizes.size(), flat_sizes.size());
}

TEST(PowerLawClusterSizes, InvalidConfigs) {
  Rng rng(5);
  PowerLawClusterConfig config;
  config.total_records = 0;
  EXPECT_EQ(SamplePowerLawClusterSizes(config, rng).status().code(),
            StatusCode::kInvalidArgument);
  config.total_records = 10;
  config.max_cluster_size = 20;
  EXPECT_EQ(SamplePowerLawClusterSizes(config, rng).status().code(),
            StatusCode::kInvalidArgument);
  config.max_cluster_size = 0;
  EXPECT_EQ(SamplePowerLawClusterSizes(config, rng).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SmallClusterSizes, SumsToTotalAndStaysInSupport) {
  SmallClusterConfig config;
  config.total_records = 2173;
  Rng rng(6);
  const auto sizes = SampleSmallClusterSizes(config, rng).value();
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0), 2173);
  for (int32_t size : sizes) {
    EXPECT_GE(size, 1);
    EXPECT_LE(size, static_cast<int32_t>(config.size_weights.size()));
  }
}

TEST(SmallClusterSizes, FrequenciesDecreaseLikeTheWeights) {
  SmallClusterConfig config;
  config.total_records = 20000;
  Rng rng(7);
  const auto sizes = SampleSmallClusterSizes(config, rng).value();
  std::vector<int64_t> counts(7, 0);
  for (int32_t size : sizes) ++counts[static_cast<size_t>(size)];
  EXPECT_GT(counts[1], counts[3]);
  EXPECT_GT(counts[2], counts[3]);
  EXPECT_GT(counts[3], counts[4]);
  EXPECT_GT(counts[4], counts[6]);
}

TEST(SmallClusterSizes, InvalidConfigs) {
  Rng rng(8);
  SmallClusterConfig config;
  config.total_records = -1;
  EXPECT_EQ(SampleSmallClusterSizes(config, rng).status().code(),
            StatusCode::kInvalidArgument);
  config.total_records = 10;
  config.size_weights = {};
  EXPECT_EQ(SampleSmallClusterSizes(config, rng).status().code(),
            StatusCode::kInvalidArgument);
  config.size_weights = {0.0, 0.0};
  EXPECT_EQ(SampleSmallClusterSizes(config, rng).status().code(),
            StatusCode::kInvalidArgument);
  config.size_weights = {0.5, -0.1};
  EXPECT_EQ(SampleSmallClusterSizes(config, rng).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace crowdjoin
