#ifndef CROWDJOIN_GRAPH_UNION_FIND_H_
#define CROWDJOIN_GRAPH_UNION_FIND_H_

#include <cstdint>
#include <vector>

namespace crowdjoin {

/// \brief Disjoint-set forest (Tarjan [20] in the paper) with path halving
/// and union by size.
///
/// The ClusterGraph uses this to maintain clusters of matching objects.
/// `UnionInto` additionally lets a caller dictate which root survives a
/// merge — the ClusterGraph uses it to keep the root with the larger
/// non-matching edge set alive (small-to-large edge merging).
class UnionFind {
 public:
  /// Creates `n` singleton sets with ids `[0, n)`.
  explicit UnionFind(int32_t n = 0);

  /// Discards all sets and re-creates `n` singletons.
  void Reset(int32_t n);

  /// Grows the universe to `n` elements by appending singletons, keeping
  /// every existing set intact. No-op when `n <= size()`. This is what lets
  /// streaming consumers widen the object space round by round.
  void Grow(int32_t n);

  /// Returns the representative of `x`'s set; compresses paths (halving).
  int32_t Find(int32_t x);

  /// Merges the sets of `a` and `b` by size. Returns the surviving root.
  /// A no-op returning the common root when already joined.
  int32_t Union(int32_t a, int32_t b);

  /// Merges `loser`'s set into `winner`'s set, keeping `winner`'s root.
  /// `winner` and `loser` must be roots of distinct sets.
  void UnionInto(int32_t winner, int32_t loser);

  /// True iff `a` and `b` are in the same set.
  bool Same(int32_t a, int32_t b);

  /// Number of elements in `x`'s set.
  int32_t SetSize(int32_t x);

  /// Current number of disjoint sets.
  int32_t num_sets() const { return num_sets_; }

  /// Total number of elements.
  int32_t size() const { return static_cast<int32_t>(parent_.size()); }

 private:
  std::vector<int32_t> parent_;
  std::vector<int32_t> size_;
  int32_t num_sets_ = 0;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_GRAPH_UNION_FIND_H_
