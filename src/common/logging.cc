#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace crowdjoin {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

// Serializes line emission so concurrent threads cannot shred each other's
// messages. Leaked (never destroyed) because detached threads may still log
// during static destruction.
std::mutex& StderrMutex() {
  static std::mutex* const mu = new std::mutex();
  return *mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    // Assemble the whole line first, then emit it as one locked write:
    // stderr is unbuffered and interleaves concurrent writers otherwise.
    const std::string line = stream_.str();
    std::lock_guard<std::mutex> lock(StderrMutex());
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

}  // namespace internal
}  // namespace crowdjoin
