#ifndef CROWDJOIN_CROWD_AVAILABILITY_SIM_H_
#define CROWDJOIN_CROWD_AVAILABILITY_SIM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "core/candidate.h"
#include "core/oracle.h"

namespace crowdjoin {

/// Publication strategies compared in Figure 15.
enum class PublicationPolicy : uint8_t {
  /// Algorithm 2: publish a round's batch, wait for *all* of it to be
  /// labeled before computing the next batch ("Parallel").
  kRoundParallel = 0,
  /// Section 5.2: re-plan and publish after every single completed pair
  /// ("Parallel(ID)").
  kInstantDecision = 1,
};

/// The order in which workers complete the published pairs.
enum class CompletionOrder : uint8_t {
  kRandom = 0,            ///< AMT's random HIT assignment
  kNonMatchingFirst = 1,  ///< lowest match-likelihood first ("NF")
};

/// One point of the Figure 15 series, recorded after every completion.
struct AvailabilityPoint {
  int64_t num_crowdsourced = 0;  ///< pairs labeled by the crowd so far
  int64_t num_available = 0;     ///< published, not-yet-labeled pairs
};

/// \brief Pair-granular simulation of platform availability (Figure 15).
///
/// Models workers as a sequential stream of completions drawn from the
/// available (published, unlabeled) set according to `completion_order`,
/// while the publication policy decides when new pairs are published.
/// Returns the availability time series; `oracle` provides the labels.
Result<std::vector<AvailabilityPoint>> SimulateAvailability(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    LabelOracle& oracle, PublicationPolicy publication_policy,
    CompletionOrder completion_order, Rng& rng);

}  // namespace crowdjoin

#endif  // CROWDJOIN_CROWD_AVAILABILITY_SIM_H_
