#include "common/status.h"

namespace crowdjoin {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kInconsistent:
      return "INCONSISTENT";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace crowdjoin
