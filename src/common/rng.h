#ifndef CROWDJOIN_COMMON_RNG_H_
#define CROWDJOIN_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace crowdjoin {

/// \brief One SplitMix64 step: advances `state` and returns the next
/// 64-bit output.
///
/// The stateless building block behind both `Rng` seeding and hash-derived
/// (counter-based) randomness such as `HashNoisyOracle`, kept here so the
/// magic constants exist exactly once.
inline uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// \brief Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every source of randomness in the library flows through an explicitly
/// seeded `Rng` so that experiments, tests, and benchmarks are reproducible
/// bit-for-bit across runs and machines. Never uses `std::random_device`.
///
/// The state is seeded from a single 64-bit seed via SplitMix64, following
/// the reference initialization recommended by the xoshiro authors.
class Rng {
 public:
  /// Creates a generator seeded with `seed` (default: a fixed constant so
  /// default-constructed generators are still deterministic).
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform integer in `[0, bound)`. `bound` must be > 0.
  /// Uses rejection sampling (Lemire) to avoid modulo bias.
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform integer in `[lo, hi]` inclusive. Requires `lo <= hi`.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in `[0, 1)` with 53 bits of precision.
  double UniformDouble();

  /// Uniform double in `[lo, hi)`.
  double UniformDouble(double lo, double hi);

  /// Bernoulli trial: returns true with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal variate (Box–Muller; caches the spare value).
  double Normal();

  /// Normal variate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Exponential variate with the given mean (mean = 1/lambda, must be > 0).
  double Exponential(double mean);

  /// Log-normal variate: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Zipf-distributed integer in `[1, n]` with exponent `s` (s >= 0).
  /// Uses inverse-CDF over precomputed weights for small n; callers that
  /// need many draws with the same (n, s) should use `ZipfSampler` instead.
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher–Yates shuffle of `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Picks one element index uniformly from `[0, size)`. Requires size > 0.
  size_t Index(size_t size);

  /// Returns a new generator whose seed is derived from this one's stream.
  /// Useful for giving each simulated worker / dataset its own substream.
  Rng Fork();

  /// \brief The complete generator state: xoshiro words plus the Box–Muller
  /// spare. Restoring it resumes the stream exactly where it left off,
  /// which is what campaign checkpoints persist.
  struct State {
    uint64_t s[4];
    double spare_normal;
    bool has_spare_normal;
  };

  /// Captures the current state (for checkpointing).
  State SaveState() const;

  /// Overwrites the generator with a previously saved state.
  void RestoreState(const State& state);

 private:
  uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

/// \brief Precomputed sampler for Zipf(n, s) draws.
///
/// Builds the cumulative weight table once; each draw is a binary search.
class ZipfSampler {
 public:
  /// Creates a sampler over `[1, n]` with exponent `s`. Requires n >= 1.
  ZipfSampler(uint64_t n, double s);

  /// Draws one Zipf variate in `[1, n]`.
  uint64_t Sample(Rng& rng) const;

  /// Number of support points.
  uint64_t n() const { return static_cast<uint64_t>(cdf_.size()); }

 private:
  std::vector<double> cdf_;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_COMMON_RNG_H_
