# Find-or-fetch wrappers for the two external dependencies. Both prefer an
# installed package (fast, hermetic CI images bake them in) and fall back to
# FetchContent so a bare machine can still configure — a missing dependency
# must never break the tier-1 verify.

include(FetchContent)

# Provides GTest::gtest and GTest::gtest_main.
function(crowdjoin_provide_googletest)
  if(TARGET GTest::gtest_main)
    return()
  endif()
  find_package(GTest QUIET)
  if(GTest_FOUND AND TARGET GTest::gtest_main)
    message(STATUS "crowdjoin: using installed GoogleTest")
    return()
  endif()
  message(STATUS "crowdjoin: GoogleTest not found, fetching v1.14.0")
  FetchContent_Declare(googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
    URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
endfunction()

# Provides benchmark::benchmark.
function(crowdjoin_provide_benchmark)
  if(TARGET benchmark::benchmark)
    return()
  endif()
  find_package(benchmark QUIET)
  if(benchmark_FOUND AND TARGET benchmark::benchmark)
    message(STATUS "crowdjoin: using installed Google Benchmark")
    return()
  endif()
  message(STATUS "crowdjoin: Google Benchmark not found, fetching v1.8.3")
  FetchContent_Declare(benchmark
    URL https://github.com/google/benchmark/archive/refs/tags/v1.8.3.tar.gz
    URL_HASH SHA256=6bc180a57d23d4d9515519f92b0c83d61b05b5bab188961f36ac7b06b0d9e9ce)
  set(BENCHMARK_ENABLE_TESTING OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_INSTALL OFF CACHE BOOL "" FORCE)
  set(BENCHMARK_ENABLE_GTEST_TESTS OFF CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(benchmark)
endfunction()
