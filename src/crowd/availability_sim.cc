#include "crowd/availability_sim.h"

#include <algorithm>
#include <optional>

#include "common/macros.h"
#include "core/labeling_session.h"

namespace crowdjoin {

namespace {

// Picks and removes the next pair a worker completes from `available`.
int32_t TakeNext(std::vector<int32_t>& available, const CandidateSet& pairs,
                 CompletionOrder completion_order, Rng& rng) {
  CJ_CHECK(!available.empty());
  size_t chosen = 0;
  if (completion_order == CompletionOrder::kRandom) {
    chosen = rng.Index(available.size());
  } else {
    // Non-matching first: lowest likelihood is labeled next.
    for (size_t i = 1; i < available.size(); ++i) {
      const double li =
          pairs[static_cast<size_t>(available[i])].likelihood;
      const double lc =
          pairs[static_cast<size_t>(available[chosen])].likelihood;
      if (li < lc) chosen = i;
    }
  }
  const int32_t pos = available[chosen];
  available[chosen] = available.back();
  available.pop_back();
  return pos;
}

}  // namespace

Result<std::vector<AvailabilityPoint>> SimulateAvailability(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    LabelOracle& oracle, PublicationPolicy publication_policy,
    CompletionOrder completion_order, Rng& rng,
    const FaultInjector* faults, const RetryPolicy* retry) {
  std::vector<AvailabilityPoint> series;
  int64_t num_crowdsourced = 0;
  int64_t num_abandoned = 0;

  // Per-position pickup attempts (1-based), keying the transient fault
  // coins so a re-published pair flips a fresh coin each pickup.
  std::vector<int> attempts(pairs.size(), 0);
  const auto pickup_abandoned = [&](int32_t pos) {
    if (faults == nullptr) return false;
    const int attempt = ++attempts[static_cast<size_t>(pos)];
    if (retry != nullptr && attempt > retry->max_attempts) {
      return false;  // escalation: the capped attempt cannot fault
    }
    const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
    return faults->PairAttemptFails(pair.a, pair.b, attempt);
  };

  if (publication_policy == PublicationPolicy::kRoundParallel) {
    std::vector<std::optional<Label>> labels(pairs.size());
    size_t num_labeled = 0;
    while (num_labeled < pairs.size()) {
      std::vector<int32_t> batch = ParallelCrowdsourcedPairs(
          pairs, order, labels, /*exclude_from_output=*/nullptr);
      if (batch.empty()) break;  // everything left is deducible
      std::vector<int32_t> available = batch;
      while (!available.empty()) {
        const int32_t pos =
            TakeNext(available, pairs, completion_order, rng);
        if (pickup_abandoned(pos)) {
          // The worker walked away: the pair is re-published immediately
          // and stays available for the next pickup.
          available.push_back(pos);
          ++num_abandoned;
          series.push_back({num_crowdsourced,
                            static_cast<int64_t>(available.size()),
                            num_abandoned});
          continue;
        }
        const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
        labels[static_cast<size_t>(pos)] = oracle.GetLabel(pair.a, pair.b);
        ++num_crowdsourced;
        series.push_back({num_crowdsourced,
                          static_cast<int64_t>(available.size()),
                          num_abandoned});
      }
      // Deduce what became deducible before the next round (Algorithm 2).
      ClusterGraph graph(NumObjectsSpanned(pairs));
      num_labeled = 0;
      for (int32_t pos : order) {
        const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
        auto& label = labels[static_cast<size_t>(pos)];
        if (label.has_value()) {
          graph.Add(pair.a, pair.b, *label);
          ++num_labeled;
          continue;
        }
        const Deduction deduction = graph.Deduce(pair.a, pair.b);
        if (deduction != Deduction::kUndeduced) {
          label = DeductionToLabel(deduction);
          ++num_labeled;
        }
      }
    }
    return series;
  }

  // Instant decision: the session re-plans after every completion.
  LabelingSessionOptions session_options;
  session_options.schedule = SchedulePolicy::kInstantDecision;
  LabelingSession session(session_options);
  CJ_ASSIGN_OR_RETURN(std::vector<int32_t> available,
                      session.Start(&pairs, order));
  while (!available.empty()) {
    const int32_t pos = TakeNext(available, pairs, completion_order, rng);
    if (pickup_abandoned(pos)) {
      available.push_back(pos);
      ++num_abandoned;
      series.push_back({num_crowdsourced,
                        static_cast<int64_t>(available.size()),
                        num_abandoned});
      continue;
    }
    const CandidatePair& pair = pairs[static_cast<size_t>(pos)];
    const Label label = oracle.GetLabel(pair.a, pair.b);
    ++num_crowdsourced;
    CJ_ASSIGN_OR_RETURN(const std::vector<int32_t> fresh,
                        session.OnPairLabeled(pos, label));
    available.insert(available.end(), fresh.begin(), fresh.end());
    series.push_back({num_crowdsourced,
                      static_cast<int64_t>(available.size()),
                      num_abandoned});
  }
  return series;
}

}  // namespace crowdjoin
