// Randomized property suite pinning the optimized joins to the brute-force
// reference: every join path (sequential prefix-filter and sharded
// parallel) must emit ScoredPair vectors *byte-identical* to
// BruteForceSelfJoin / BruteForceBipartiteJoin — same pairs, same exact
// score doubles, same order — across corpora exercising the filter
// machinery's edge cases (empty docs, singletons, all-identical docs,
// heavy-tail token frequencies) at thresholds {0.3, 0.5, 0.7, 0.9}.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "simjoin/sharded_join.h"
#include "simjoin/similarity_join.h"
#include "simjoin/token_dictionary.h"

namespace crowdjoin {
namespace {

constexpr double kThresholds[] = {0.3, 0.5, 0.7, 0.9};

struct Corpus {
  TokenDictionary dictionary;
  std::vector<std::vector<int32_t>> docs;
};

void AddDoc(Corpus& corpus, const std::vector<std::string>& tokens) {
  corpus.docs.push_back(corpus.dictionary.AddDocument(tokens));
}

// Uniform token draws plus deliberately empty and singleton documents.
Corpus MakeMixedCorpus(uint64_t seed, size_t num_docs) {
  Corpus corpus;
  Rng rng(seed);
  for (size_t d = 0; d < num_docs; ++d) {
    const size_t kind = rng.Index(8);
    size_t len;
    if (kind == 0) {
      len = 0;  // empty document
    } else if (kind == 1) {
      len = 1;  // singleton
    } else {
      len = 2 + rng.Index(10);
    }
    std::vector<std::string> tokens;
    for (size_t t = 0; t < len; ++t) {
      tokens.push_back(StrFormat(
          "w%llu", static_cast<unsigned long long>(rng.Index(70))));
    }
    AddDoc(corpus, tokens);
  }
  return corpus;
}

// Every document identical: the densest possible candidate graph, all
// scores exactly 1.0.
Corpus MakeAllIdenticalCorpus(size_t num_docs) {
  Corpus corpus;
  for (size_t d = 0; d < num_docs; ++d) {
    AddDoc(corpus, {"alpha", "beta", "gamma", "delta"});
  }
  return corpus;
}

// Zipf-distributed token frequencies: a few tokens appear in nearly every
// document (worthless prefixes, long postings lists), most appear once —
// the long-tail shape the positional filter exists for.
Corpus MakeHeavyTailCorpus(uint64_t seed, size_t num_docs) {
  Corpus corpus;
  Rng rng(seed);
  const ZipfSampler sampler(400, 1.2);
  for (size_t d = 0; d < num_docs; ++d) {
    const size_t len = 3 + rng.Index(10);
    std::vector<std::string> tokens;
    for (size_t t = 0; t < len; ++t) {
      tokens.push_back(StrFormat(
          "z%llu", static_cast<unsigned long long>(sampler.Sample(rng))));
    }
    AddDoc(corpus, tokens);
  }
  return corpus;
}

std::vector<ScoredPair> Sorted(std::vector<ScoredPair> pairs) {
  SortByPairOrder(pairs);
  return pairs;
}

// Brute force scores two empty token sets as Jaccard 1.0, but the
// prefix-filter contract (PrefixLength in prefix_filter.h) is that empty
// documents take no part in any join. The reference adopts the contract:
// drop pairs with an empty side before comparing.
std::vector<ScoredPair> DropEmptyDocPairs(
    std::vector<ScoredPair> pairs,
    const std::vector<std::vector<int32_t>>& left,
    const std::vector<std::vector<int32_t>>& right) {
  pairs.erase(std::remove_if(pairs.begin(), pairs.end(),
                             [&](const ScoredPair& pair) {
                               return left[static_cast<size_t>(pair.left)]
                                          .empty() ||
                                      right[static_cast<size_t>(pair.right)]
                                          .empty();
                             }),
              pairs.end());
  return pairs;
}

void ExpectSelfJoinMatchesBruteForce(const Corpus& corpus,
                                     const char* label) {
  for (const double threshold : kThresholds) {
    const auto brute = DropEmptyDocPairs(
        Sorted(BruteForceSelfJoin(corpus.docs, threshold)), corpus.docs,
        corpus.docs);
    const auto sequential =
        PrefixFilterSelfJoin(corpus.docs, corpus.dictionary, threshold)
            .value();
    EXPECT_EQ(sequential, brute)
        << label << " sequential, threshold=" << threshold;
    ShardedJoinOptions options;
    options.num_shards = 4;
    options.num_threads = 2;
    const auto sharded =
        ShardedSelfJoin(corpus.docs, corpus.dictionary, threshold, options)
            .value();
    EXPECT_EQ(sharded, brute)
        << label << " sharded, threshold=" << threshold;
  }
}

void ExpectBipartiteJoinMatchesBruteForce(const Corpus& corpus,
                                          const char* label) {
  const size_t half = corpus.docs.size() / 2;
  const std::vector<std::vector<int32_t>> left(corpus.docs.begin(),
                                               corpus.docs.begin() + half);
  const std::vector<std::vector<int32_t>> right(
      corpus.docs.begin() + half, corpus.docs.end());
  for (const double threshold : kThresholds) {
    const auto brute = DropEmptyDocPairs(
        Sorted(BruteForceBipartiteJoin(left, right, threshold)), left,
        right);
    const auto sequential =
        PrefixFilterBipartiteJoin(left, right, corpus.dictionary, threshold)
            .value();
    EXPECT_EQ(sequential, brute)
        << label << " sequential, threshold=" << threshold;
    ShardedJoinOptions options;
    options.num_shards = 3;
    options.num_threads = 2;
    const auto sharded = ShardedBipartiteJoin(left, right, corpus.dictionary,
                                              threshold, options)
                             .value();
    EXPECT_EQ(sharded, brute)
        << label << " sharded, threshold=" << threshold;
  }
}

class JoinEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinEquivalenceTest, MixedCorpusWithEmptyAndSingletonDocs) {
  const Corpus corpus = MakeMixedCorpus(GetParam(), /*num_docs=*/90);
  ExpectSelfJoinMatchesBruteForce(corpus, "mixed");
  ExpectBipartiteJoinMatchesBruteForce(corpus, "mixed");
}

TEST_P(JoinEquivalenceTest, HeavyTailTokenFrequencies) {
  const Corpus corpus = MakeHeavyTailCorpus(GetParam(), /*num_docs=*/80);
  ExpectSelfJoinMatchesBruteForce(corpus, "heavy-tail");
  ExpectBipartiteJoinMatchesBruteForce(corpus, "heavy-tail");
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, JoinEquivalenceTest,
                         ::testing::Range<uint64_t>(7100, 7108));

TEST(JoinEquivalence, AllIdenticalDocs) {
  const Corpus corpus = MakeAllIdenticalCorpus(/*num_docs=*/40);
  ExpectSelfJoinMatchesBruteForce(corpus, "all-identical");
  ExpectBipartiteJoinMatchesBruteForce(corpus, "all-identical");
}

TEST(JoinEquivalence, AllEmptyDocs) {
  Corpus corpus;
  corpus.docs.assign(12, {});
  ExpectSelfJoinMatchesBruteForce(corpus, "all-empty");
  ExpectBipartiteJoinMatchesBruteForce(corpus, "all-empty");
}

}  // namespace
}  // namespace crowdjoin
