#ifndef CROWDJOIN_DATAGEN_CLUSTER_DISTRIBUTION_H_
#define CROWDJOIN_DATAGEN_CLUSTER_DISTRIBUTION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace crowdjoin {

/// Parameters for the heavy-tailed (Cora-like) cluster-size distribution.
struct PowerLawClusterConfig {
  int32_t total_records = 997;
  /// Zipf exponent over sizes [1, max_cluster_size]; ~1.2 reproduces the
  /// Figure 10(a) shape (mean cluster size ~ 10, a handful of very large
  /// clusters, many small ones).
  double alpha = 1.2;
  int32_t max_cluster_size = 102;
  /// Force one cluster of exactly `max_cluster_size` records, mirroring the
  /// 102-record cluster the paper calls out on the Paper dataset.
  bool force_max_cluster = true;
};

/// Samples cluster sizes summing exactly to `config.total_records`.
Result<std::vector<int32_t>> SamplePowerLawClusterSizes(
    const PowerLawClusterConfig& config, Rng& rng);

/// Parameters for the near-1-to-1 (Abt-Buy-like) distribution: sizes 1..6
/// with steeply decreasing frequencies (Figure 10(b)).
struct SmallClusterConfig {
  int32_t total_records = 2173;
  /// P(cluster size = k) for k = 1..weights.size(); normalized internally.
  std::vector<double> size_weights = {0.46, 0.44, 0.07, 0.02, 0.007, 0.003};
};

/// Samples cluster sizes summing exactly to `config.total_records`.
Result<std::vector<int32_t>> SampleSmallClusterSizes(
    const SmallClusterConfig& config, Rng& rng);

}  // namespace crowdjoin

#endif  // CROWDJOIN_DATAGEN_CLUSTER_DISTRIBUTION_H_
