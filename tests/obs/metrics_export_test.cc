// Golden tests for the two export formats. The exact strings are part of
// the contract: CI parses the JSON with python and Prometheus scrapes the
// text format, so formatting drift is a real break, not cosmetics.

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace crowdjoin::obs {
namespace {

// One registry with one metric of each kind, deterministic values.
void FillFixture(MetricsRegistry& registry) {
  registry.GetCounter("session.oracle_calls_total")->Inc(42);
  registry.GetGauge("pool.queue_depth")->Set(3);
  Histogram* hist = registry.GetHistogram("serve.query_latency_us");
  hist->Observe(1);   // bucket le=1
  hist->Observe(5);   // bucket le=7
  hist->Observe(6);   // bucket le=7
}

TEST(JsonExport, GoldenOutput) {
  MetricsRegistry registry;
  FillFixture(registry);
  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"session.oracle_calls_total\": 42\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"pool.queue_depth\": 3\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"serve.query_latency_us\": {\"count\": 3, \"sum\": 12, "
      "\"buckets\": [{\"le\": 1, \"count\": 1}, {\"le\": 7, \"count\": "
      "2}]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(registry.Snapshot().ToJson(), expected);
}

TEST(JsonExport, EmptyRegistry) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.Snapshot().ToJson(),
            "{\n  \"counters\": {},\n  \"gauges\": {},\n"
            "  \"histograms\": {}\n}\n");
}

TEST(PrometheusExport, GoldenOutput) {
  MetricsRegistry registry;
  FillFixture(registry);
  const std::string expected =
      "# TYPE crowdjoin_session_oracle_calls_total counter\n"
      "crowdjoin_session_oracle_calls_total 42\n"
      "# TYPE crowdjoin_pool_queue_depth gauge\n"
      "crowdjoin_pool_queue_depth 3\n"
      "# TYPE crowdjoin_serve_query_latency_us histogram\n"
      "crowdjoin_serve_query_latency_us_bucket{le=\"1\"} 1\n"
      "crowdjoin_serve_query_latency_us_bucket{le=\"7\"} 3\n"
      "crowdjoin_serve_query_latency_us_bucket{le=\"+Inf\"} 3\n"
      "crowdjoin_serve_query_latency_us_sum 12\n"
      "crowdjoin_serve_query_latency_us_count 3\n";
  EXPECT_EQ(registry.Snapshot().ToPrometheusText(), expected);
}

TEST(PrometheusExport, BucketSeriesIsCumulative) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("h");
  for (int i = 0; i < 10; ++i) hist->Observe(1 << i);
  const std::string text = registry.Snapshot().ToPrometheusText();
  // The +Inf bucket must equal the total count.
  EXPECT_NE(text.find("crowdjoin_h_bucket{le=\"+Inf\"} 10\n"),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace crowdjoin::obs
