#include "common/serialize.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace crowdjoin {

uint64_t Fingerprint64(std::string_view data) {
  uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a offset basis
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ull;  // FNV prime
  }
  return h;
}

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open " + tmp + " for writing");
    }
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::Internal("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    return Status::Internal("rename " + tmp + " -> " + path + ": " +
                            std::strerror(err));
  }
  return Status::OK();
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Status::Internal("read error on " + path);
  }
  return std::move(buf).str();
}

}  // namespace crowdjoin
