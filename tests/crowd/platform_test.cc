#include "crowd/platform.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/macros.h"

namespace crowdjoin {
namespace {

// Truth over 6 objects: {0,1,2} match, {3,4} match, {5} alone.
GroundTruthOracle SmallTruth() {
  return GroundTruthOracle({0, 0, 0, 1, 1, 2});
}

CrowdConfig PerfectWorkers() {
  CrowdConfig config;
  config.num_workers = 5;
  config.pairs_per_hit = 3;
  config.assignments_per_hit = 3;
  return config;
}

TEST(CrowdPlatform, EmptyHitRejected) {
  GroundTruthOracle truth = SmallTruth();
  CrowdPlatform platform(PerfectWorkers(), &truth);
  EXPECT_EQ(platform.PublishHit({}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CrowdPlatform, OversizedHitRejected) {
  GroundTruthOracle truth = SmallTruth();
  CrowdPlatform platform(PerfectWorkers(), &truth);
  std::vector<PairTask> tasks = {
      {0, 0, 1, 0.9}, {1, 1, 2, 0.8}, {2, 0, 2, 0.7}, {3, 3, 4, 0.6}};
  EXPECT_EQ(platform.PublishHit(tasks).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CrowdPlatform, PerfectWorkersReturnTruth) {
  GroundTruthOracle truth = SmallTruth();
  CrowdPlatform platform(PerfectWorkers(), &truth);
  ASSERT_TRUE(platform
                  .PublishHit({{0, 0, 1, 0.9}, {1, 0, 5, 0.5}, {2, 3, 4, 0.7}})
                  .ok());
  const auto result = platform.RunUntilNextHitCompletion();
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->pairs.size(), 3u);
  EXPECT_EQ(result->pairs[0].label, Label::kMatching);
  EXPECT_EQ(result->pairs[1].label, Label::kNonMatching);
  EXPECT_EQ(result->pairs[2].label, Label::kMatching);
  EXPECT_GT(result->completed_at_hours, 0.0);
  EXPECT_EQ(platform.num_hits_completed(), 1);
  EXPECT_EQ(platform.num_assignments_completed(), 3);
}

TEST(CrowdPlatform, AlwaysWrongWorkersGetOutvotedNever) {
  // With false rates at the 0.95 clamp, majority votes flip nearly always;
  // with rate 0 they never do. Check both extremes.
  GroundTruthOracle truth = SmallTruth();
  CrowdConfig bad = PerfectWorkers();
  bad.false_negative_rate = 0.95;
  bad.false_positive_rate = 0.95;
  bad.seed = 99;
  CrowdPlatform platform(bad, &truth);
  ASSERT_TRUE(platform.PublishHit({{0, 0, 1, 0.9}}).ok());
  const auto result = platform.RunUntilNextHitCompletion();
  ASSERT_TRUE(result.has_value());
  // Truly matching pair answered non-matching with overwhelming odds.
  EXPECT_EQ(result->pairs[0].label, Label::kNonMatching);
}

TEST(CrowdPlatform, NoWorkReturnsNullopt) {
  GroundTruthOracle truth = SmallTruth();
  CrowdPlatform platform(PerfectWorkers(), &truth);
  EXPECT_FALSE(platform.RunUntilNextHitCompletion().has_value());
}

TEST(CrowdPlatform, DeterministicPerSeed) {
  GroundTruthOracle truth = SmallTruth();
  auto run = [&truth](uint64_t seed) {
    CrowdConfig config = PerfectWorkers();
    config.seed = seed;
    CrowdPlatform platform(config, &truth);
    CJ_CHECK(platform.PublishHit({{0, 0, 1, 0.9}, {1, 1, 2, 0.6}}).ok());
    auto result = platform.RunUntilNextHitCompletion();
    CJ_CHECK(result.has_value());
    return result->completed_at_hours;
  };
  EXPECT_DOUBLE_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(CrowdPlatform, CostTracksAssignments) {
  GroundTruthOracle truth = SmallTruth();
  CrowdConfig config = PerfectWorkers();
  config.cents_per_assignment = 2.0;
  CrowdPlatform platform(config, &truth);
  ASSERT_TRUE(platform.PublishHit({{0, 0, 1, 0.9}}).ok());
  ASSERT_TRUE(platform.PublishHit({{1, 1, 2, 0.8}}).ok());
  while (platform.RunUntilNextHitCompletion().has_value()) {
  }
  EXPECT_EQ(platform.num_assignments_completed(), 6);
  EXPECT_DOUBLE_EQ(platform.total_cost_cents(), 12.0);
}

TEST(CrowdPlatform, ManyHitsAllComplete) {
  GroundTruthOracle truth = SmallTruth();
  CrowdConfig config = PerfectWorkers();
  config.num_workers = 4;
  CrowdPlatform platform(config, &truth);
  constexpr int kHits = 40;
  for (int h = 0; h < kHits; ++h) {
    ASSERT_TRUE(platform.PublishHit({{h, 0, 1, 0.9}}).ok());
  }
  int completed = 0;
  double last_time = 0.0;
  while (auto result = platform.RunUntilNextHitCompletion()) {
    ++completed;
    EXPECT_GE(result->completed_at_hours, last_time);
    last_time = result->completed_at_hours;
  }
  EXPECT_EQ(completed, kHits);
  EXPECT_EQ(platform.num_assignments_completed(), kHits * 3);
}

TEST(CrowdPlatform, QualificationTestShrinksPool) {
  GroundTruthOracle truth = SmallTruth();
  CrowdConfig config = PerfectWorkers();
  config.num_workers = 50;
  config.false_negative_rate = 0.5;
  config.false_positive_rate = 0.5;
  config.use_qualification_test = true;
  config.seed = 7;
  CrowdPlatform platform(config, &truth);
  // With 50% error rates, passing three screening questions has p = 1/8;
  // the surviving pool must be far smaller than 50 (but >= 3 by contract).
  EXPECT_LT(platform.num_active_workers(), 25);
  EXPECT_GE(platform.num_active_workers(), config.assignments_per_hit);
}

TEST(CrowdPlatform, MoreWorkersFinishFaster) {
  GroundTruthOracle truth = SmallTruth();
  auto campaign_hours = [&truth](int workers) {
    CrowdConfig config = PerfectWorkers();
    config.num_workers = workers;
    CrowdPlatform platform(config, &truth);
    for (int h = 0; h < 30; ++h) {
      CJ_CHECK(platform.PublishHit({{h, 0, 1, 0.9}}).ok());
    }
    while (platform.RunUntilNextHitCompletion().has_value()) {
    }
    return platform.now_hours();
  };
  EXPECT_LT(campaign_hours(30), campaign_hours(3));
}

}  // namespace
}  // namespace crowdjoin
