#include "crowd/availability_sim.h"

#include <gtest/gtest.h>

#include <numeric>

#include "tests/core/test_fixtures.h"

namespace crowdjoin {
namespace {

using testing_fixtures::Figure3Pairs;
using testing_fixtures::Figure3Truth;
using testing_fixtures::MakeRandomInstance;

std::vector<int32_t> IdentityOrder(size_t n) {
  std::vector<int32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  return order;
}

TEST(AvailabilitySim, RoundParallelDrainsToZeroBetweenRounds) {
  const CandidateSet pairs = Figure3Pairs();
  GroundTruthOracle truth = Figure3Truth();
  Rng rng(1);
  const auto series =
      SimulateAvailability(pairs, IdentityOrder(pairs.size()), truth,
                           PublicationPolicy::kRoundParallel,
                           CompletionOrder::kRandom, rng)
          .value();
  // 6 crowdsourced pairs overall: 5 in round one, 1 in round two.
  ASSERT_EQ(series.size(), 6u);
  EXPECT_EQ(series[4].num_available, 0);  // end of round one
  EXPECT_EQ(series.back().num_crowdsourced, 6);
  EXPECT_EQ(series.back().num_available, 0);
}

TEST(AvailabilitySim, InstantDecisionKeepsCountsConsistent) {
  const auto instance = MakeRandomInstance(5, 20, 4, 60);
  GroundTruthOracle truth(instance.entity_of);
  Rng rng(2);
  const auto series =
      SimulateAvailability(instance.pairs,
                           IdentityOrder(instance.pairs.size()), truth,
                           PublicationPolicy::kInstantDecision,
                           CompletionOrder::kRandom, rng)
          .value();
  ASSERT_FALSE(series.empty());
  for (size_t i = 0; i < series.size(); ++i) {
    EXPECT_GE(series[i].num_available, 0);
    EXPECT_EQ(series[i].num_crowdsourced, static_cast<int64_t>(i) + 1);
  }
  EXPECT_EQ(series.back().num_available, 0);
}

TEST(AvailabilitySim, PoliciesCrowdsourceSimilarTotals) {
  // ID may speculatively publish a few extra pairs, but totals must stay
  // within a few percent of the round-based algorithm's.
  const auto instance = MakeRandomInstance(6, 30, 6, 140);
  GroundTruthOracle truth(instance.entity_of);
  Rng rng1(3);
  Rng rng2(3);
  const auto round =
      SimulateAvailability(instance.pairs,
                           IdentityOrder(instance.pairs.size()), truth,
                           PublicationPolicy::kRoundParallel,
                           CompletionOrder::kRandom, rng1)
          .value();
  const auto instant =
      SimulateAvailability(instance.pairs,
                           IdentityOrder(instance.pairs.size()), truth,
                           PublicationPolicy::kInstantDecision,
                           CompletionOrder::kRandom, rng2)
          .value();
  const double round_total =
      static_cast<double>(round.back().num_crowdsourced);
  const double instant_total =
      static_cast<double>(instant.back().num_crowdsourced);
  EXPECT_GE(instant_total, round_total);          // never fewer
  EXPECT_LE(instant_total, 1.10 * round_total);   // but close
}

TEST(AvailabilitySim, NonMatchingFirstKeepsMoreAvailable) {
  // The non-matching-first advantage is workload dependent (it front-loads
  // the completions that unlock new publishes); it shows on
  // matching-dominated, clustered candidate sets like the paper's Paper
  // dataset, which this instance mimics (few large entities).
  const auto instance = MakeRandomInstance(9, 60, 3, 500);
  GroundTruthOracle truth(instance.entity_of);
  Rng rng1(4);
  Rng rng2(4);
  const auto random_order =
      SimulateAvailability(instance.pairs,
                           IdentityOrder(instance.pairs.size()), truth,
                           PublicationPolicy::kInstantDecision,
                           CompletionOrder::kRandom, rng1)
          .value();
  const auto nf_order =
      SimulateAvailability(instance.pairs,
                           IdentityOrder(instance.pairs.size()), truth,
                           PublicationPolicy::kInstantDecision,
                           CompletionOrder::kNonMatchingFirst, rng2)
          .value();
  // Compare mean availability over the common prefix.
  const size_t common = std::min(random_order.size(), nf_order.size());
  ASSERT_GT(common, 0u);
  double random_mean = 0.0;
  double nf_mean = 0.0;
  for (size_t i = 0; i < common; ++i) {
    random_mean += static_cast<double>(random_order[i].num_available);
    nf_mean += static_cast<double>(nf_order[i].num_available);
  }
  EXPECT_GE(nf_mean, random_mean);
}

TEST(AvailabilitySim, EmptyCandidateSet) {
  GroundTruthOracle truth({});
  Rng rng(5);
  const auto series =
      SimulateAvailability({}, {}, truth, PublicationPolicy::kInstantDecision,
                           CompletionOrder::kRandom, rng)
          .value();
  EXPECT_TRUE(series.empty());
}

}  // namespace
}  // namespace crowdjoin
