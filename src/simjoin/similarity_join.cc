#include "simjoin/similarity_join.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/macros.h"
#include "text/set_similarity.h"

namespace crowdjoin {

namespace {

// ceil(t * len) computed robustly against floating-point error.
size_t CeilThresholdLength(double threshold, size_t len) {
  return static_cast<size_t>(
      std::ceil(threshold * static_cast<double>(len) - 1e-9));
}

// Prefix length guaranteeing that two documents with Jaccard >= t share at
// least one token inside both prefixes (under any common total token order):
// p = |x| - ceil(t * |x|) + 1.
size_t PrefixLength(double threshold, size_t len) {
  const size_t required = CeilThresholdLength(threshold, len);
  return len >= required ? len - required + 1 : 0;
}

Status ValidateThreshold(double threshold) {
  if (!(threshold > 0.0) || threshold > 1.0) {
    return Status::InvalidArgument("similarity threshold must be in (0, 1]");
  }
  return Status::OK();
}

struct IndexEntry {
  int32_t doc = 0;
};

}  // namespace

Result<std::vector<ScoredPair>> PrefixFilterSelfJoin(
    const std::vector<std::vector<int32_t>>& docs,
    const TokenDictionary& dictionary, double threshold) {
  CJ_RETURN_IF_ERROR(ValidateThreshold(threshold));
  const size_t n = docs.size();

  // Process docs in ascending size so the length filter |y| >= t|x| holds
  // for everything already indexed when x arrives.
  std::vector<int32_t> by_size(n);
  for (size_t i = 0; i < n; ++i) by_size[i] = static_cast<int32_t>(i);
  std::sort(by_size.begin(), by_size.end(), [&docs](int32_t x, int32_t y) {
    if (docs[static_cast<size_t>(x)].size() !=
        docs[static_cast<size_t>(y)].size()) {
      return docs[static_cast<size_t>(x)].size() <
             docs[static_cast<size_t>(y)].size();
    }
    return x < y;
  });

  // Rarity-ordered copies for prefix extraction.
  std::vector<std::vector<int32_t>> by_rarity(n);
  for (size_t i = 0; i < n; ++i) {
    by_rarity[i] = docs[i];
    dictionary.SortByRarity(by_rarity[i]);
  }

  std::unordered_map<int32_t, std::vector<IndexEntry>> index;
  std::vector<int32_t> last_seen(n, -1);
  std::vector<ScoredPair> out;

  for (size_t step = 0; step < n; ++step) {
    const int32_t x = by_size[step];
    const auto& rarity_x = by_rarity[static_cast<size_t>(x)];
    const size_t len_x = rarity_x.size();
    if (len_x == 0) continue;
    const size_t prefix_x = PrefixLength(threshold, len_x);
    const size_t min_len_y = CeilThresholdLength(threshold, len_x);

    for (size_t p = 0; p < prefix_x; ++p) {
      auto it = index.find(rarity_x[p]);
      if (it == index.end()) continue;
      for (const IndexEntry& entry : it->second) {
        const int32_t y = entry.doc;
        if (last_seen[static_cast<size_t>(y)] == x) continue;  // dedupe
        last_seen[static_cast<size_t>(y)] = x;
        if (docs[static_cast<size_t>(y)].size() < min_len_y) continue;
        const double score = JaccardSimilarity(docs[static_cast<size_t>(x)],
                                               docs[static_cast<size_t>(y)]);
        if (score + 1e-12 >= threshold) {
          out.push_back({std::min(x, y), std::max(x, y), score});
        }
      }
    }
    for (size_t p = 0; p < prefix_x; ++p) {
      index[rarity_x[p]].push_back({x});
    }
  }
  std::sort(out.begin(), out.end(), [](const ScoredPair& a, const ScoredPair& b) {
    if (a.left != b.left) return a.left < b.left;
    return a.right < b.right;
  });
  return out;
}

Result<std::vector<ScoredPair>> PrefixFilterBipartiteJoin(
    const std::vector<std::vector<int32_t>>& left,
    const std::vector<std::vector<int32_t>>& right,
    const TokenDictionary& dictionary, double threshold) {
  CJ_RETURN_IF_ERROR(ValidateThreshold(threshold));

  // Index the left side's prefixes.
  std::unordered_map<int32_t, std::vector<IndexEntry>> index;
  std::vector<std::vector<int32_t>> left_rarity(left.size());
  for (size_t i = 0; i < left.size(); ++i) {
    left_rarity[i] = left[i];
    dictionary.SortByRarity(left_rarity[i]);
    const size_t prefix = PrefixLength(threshold, left_rarity[i].size());
    for (size_t p = 0; p < prefix; ++p) {
      index[left_rarity[i][p]].push_back({static_cast<int32_t>(i)});
    }
  }

  std::vector<int32_t> last_seen(left.size(), -1);
  std::vector<ScoredPair> out;
  std::vector<int32_t> rarity_s;
  for (size_t j = 0; j < right.size(); ++j) {
    rarity_s = right[j];
    dictionary.SortByRarity(rarity_s);
    const size_t len_s = rarity_s.size();
    if (len_s == 0) continue;
    const size_t prefix_s = PrefixLength(threshold, len_s);
    const size_t min_len = CeilThresholdLength(threshold, len_s);
    const size_t max_len =
        static_cast<size_t>(std::floor(static_cast<double>(len_s) / threshold +
                                       1e-9));
    for (size_t p = 0; p < prefix_s; ++p) {
      auto it = index.find(rarity_s[p]);
      if (it == index.end()) continue;
      for (const IndexEntry& entry : it->second) {
        const int32_t r = entry.doc;
        if (last_seen[static_cast<size_t>(r)] == static_cast<int32_t>(j)) {
          continue;
        }
        last_seen[static_cast<size_t>(r)] = static_cast<int32_t>(j);
        const size_t len_r = left[static_cast<size_t>(r)].size();
        if (len_r < min_len || len_r > max_len) continue;
        const double score =
            JaccardSimilarity(left[static_cast<size_t>(r)], right[j]);
        if (score + 1e-12 >= threshold) {
          out.push_back({r, static_cast<int32_t>(j), score});
        }
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const ScoredPair& a, const ScoredPair& b) {
    if (a.left != b.left) return a.left < b.left;
    return a.right < b.right;
  });
  return out;
}

std::vector<ScoredPair> BruteForceSelfJoin(
    const std::vector<std::vector<int32_t>>& docs, double threshold) {
  std::vector<ScoredPair> out;
  for (size_t i = 0; i < docs.size(); ++i) {
    for (size_t j = i + 1; j < docs.size(); ++j) {
      const double score = JaccardSimilarity(docs[i], docs[j]);
      if (score + 1e-12 >= threshold) {
        out.push_back(
            {static_cast<int32_t>(i), static_cast<int32_t>(j), score});
      }
    }
  }
  return out;
}

std::vector<ScoredPair> BruteForceBipartiteJoin(
    const std::vector<std::vector<int32_t>>& left,
    const std::vector<std::vector<int32_t>>& right, double threshold) {
  std::vector<ScoredPair> out;
  for (size_t i = 0; i < left.size(); ++i) {
    for (size_t j = 0; j < right.size(); ++j) {
      const double score = JaccardSimilarity(left[i], right[j]);
      if (score + 1e-12 >= threshold) {
        out.push_back(
            {static_cast<int32_t>(i), static_cast<int32_t>(j), score});
      }
    }
  }
  return out;
}

}  // namespace crowdjoin
