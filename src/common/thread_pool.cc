#include "common/thread_pool.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/tracing.h"

namespace crowdjoin {

namespace {

// Pool-wide instrumentation handles, resolved once. Registered in the
// global registry so every pool in the process aggregates into one view —
// the library creates pools per campaign, not per subsystem.
struct PoolMetrics {
  obs::Counter* tasks_total;
  obs::Gauge* queue_depth;
  obs::Histogram* task_wait_us;
  obs::Histogram* task_run_us;

  static PoolMetrics& Get() {
    static PoolMetrics metrics{
        obs::MetricsRegistry::Global().GetCounter("pool.tasks_total"),
        obs::MetricsRegistry::Global().GetGauge("pool.queue_depth"),
        obs::MetricsRegistry::Global().GetHistogram("pool.task_wait_us"),
        obs::MetricsRegistry::Global().GetHistogram("pool.task_run_us")};
    return metrics;
  }
};

// Runs one task with its span + run-time histogram. The instrumentation is
// a read-only side channel: the task body and its future are untouched.
void RunInstrumented(std::packaged_task<void()>& task) {
  PoolMetrics& metrics = PoolMetrics::Get();
  metrics.tasks_total->Inc();
  obs::Span span("pool.task", "pool");
  obs::ScopedLatencyUs run_timer(metrics.task_run_us);
  task();  // packaged_task captures exceptions into the future
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) return;  // inline pool: no workers
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Inline pools never queue, and workers drain the queue before exiting,
  // so nothing is left behind here.
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  if (workers_.empty()) {
    RunInstrumented(task);  // inline pool: run on the submitting thread
    return future;
  }
  const int64_t enqueue_ns =
      obs::MetricsRegistry::Global().enabled() ? obs::NowNs() : 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(QueuedTask{std::move(task), enqueue_ns});
  }
  PoolMetrics::Get().queue_depth->Add(1);
  cv_.notify_one();
  return future;
}

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask queued;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      queued = std::move(queue_.front());
      queue_.pop_front();
    }
    PoolMetrics& metrics = PoolMetrics::Get();
    metrics.queue_depth->Add(-1);
    if (queued.enqueue_ns != 0) {
      metrics.task_wait_us->Observe((obs::NowNs() - queued.enqueue_ns) / 1000);
    }
    RunInstrumented(queued.task);
  }
}

}  // namespace crowdjoin
