#include "core/oracle.h"

#include <gtest/gtest.h>

namespace crowdjoin {
namespace {

TEST(GroundTruthOracle, MatchesEntityAssignment) {
  GroundTruthOracle oracle({0, 0, 1, 1, 2});
  EXPECT_EQ(oracle.GetLabel(0, 1), Label::kMatching);
  EXPECT_EQ(oracle.GetLabel(0, 2), Label::kNonMatching);
  EXPECT_EQ(oracle.GetLabel(2, 3), Label::kMatching);
  EXPECT_EQ(oracle.GetLabel(4, 0), Label::kNonMatching);
  EXPECT_EQ(oracle.num_queries(), 4);
}

TEST(GroundTruthOracle, TruthDoesNotCountQueries) {
  GroundTruthOracle oracle({0, 0});
  EXPECT_EQ(oracle.Truth(0, 1), Label::kMatching);
  EXPECT_EQ(oracle.num_queries(), 0);
}

TEST(NoisyOracle, ZeroRatesAreExact) {
  GroundTruthOracle truth({0, 0, 1});
  NoisyOracle oracle(&truth, 0.0, 0.0, Rng(1));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(oracle.GetLabel(0, 1), Label::kMatching);
    EXPECT_EQ(oracle.GetLabel(0, 2), Label::kNonMatching);
  }
}

TEST(NoisyOracle, FullRatesAlwaysFlip) {
  GroundTruthOracle truth({0, 0, 1});
  NoisyOracle oracle(&truth, 1.0, 1.0, Rng(2));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(oracle.GetLabel(0, 1), Label::kNonMatching);
    EXPECT_EQ(oracle.GetLabel(0, 2), Label::kMatching);
  }
}

TEST(NoisyOracle, RatesApproximateFrequencies) {
  GroundTruthOracle truth({0, 0, 1});
  NoisyOracle oracle(&truth, 0.3, 0.1, Rng(3));
  int false_negatives = 0;
  int false_positives = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (oracle.GetLabel(0, 1) == Label::kNonMatching) ++false_negatives;
    if (oracle.GetLabel(0, 2) == Label::kMatching) ++false_positives;
  }
  EXPECT_NEAR(static_cast<double>(false_negatives) / kTrials, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(false_positives) / kTrials, 0.1, 0.02);
  EXPECT_EQ(oracle.num_queries(), 2 * kTrials);
}

TEST(NoisyOracle, DeterministicPerSeed) {
  GroundTruthOracle truth({0, 0});
  NoisyOracle a(&truth, 0.5, 0.5, Rng(7));
  NoisyOracle b(&truth, 0.5, 0.5, Rng(7));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.GetLabel(0, 1), b.GetLabel(0, 1));
  }
}

}  // namespace
}  // namespace crowdjoin
