// Microbenchmark + ablation: ClusterGraph deduction vs the naive BFS path
// search it replaces (Section 3.2 argues path enumeration is infeasible;
// even the polynomial BFS reference is orders of magnitude slower), and the
// effect of small-to-large edge-set merging under a labeling workload.

#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "graph/cluster_graph.h"
#include "graph/reference_deducer.h"

namespace crowdjoin {
namespace {

struct Workload {
  int32_t num_objects;
  std::vector<std::tuple<ObjectId, ObjectId, Label>> labeled;
  std::vector<std::pair<ObjectId, ObjectId>> queries;
};

// A labeling-shaped workload: clusters of matching pairs plus random
// non-matching edges between clusters, then mixed deduction queries.
Workload MakeWorkload(int32_t num_objects, int32_t cluster_size,
                      int32_t num_edges, int32_t num_queries) {
  Workload w;
  w.num_objects = num_objects;
  Rng rng(1234);
  for (int32_t o = 0; o + 1 < num_objects; ++o) {
    if ((o + 1) % cluster_size != 0) {
      w.labeled.emplace_back(o, o + 1, Label::kMatching);
    }
  }
  for (int32_t e = 0; e < num_edges; ++e) {
    const auto a = static_cast<ObjectId>(rng.Index(static_cast<size_t>(num_objects)));
    const auto b = static_cast<ObjectId>(rng.Index(static_cast<size_t>(num_objects)));
    if (a / cluster_size == b / cluster_size) continue;  // same cluster
    w.labeled.emplace_back(a, b, Label::kNonMatching);
  }
  for (int32_t q = 0; q < num_queries; ++q) {
    w.queries.emplace_back(
        static_cast<ObjectId>(rng.Index(static_cast<size_t>(num_objects))),
        static_cast<ObjectId>(rng.Index(static_cast<size_t>(num_objects))));
  }
  return w;
}

void BM_ClusterGraphDeduce(benchmark::State& state) {
  const auto num_objects = static_cast<int32_t>(state.range(0));
  Workload w = MakeWorkload(num_objects, /*cluster_size=*/8,
                            /*num_edges=*/num_objects, /*num_queries=*/1024);
  ClusterGraph graph(w.num_objects);
  for (const auto& [a, b, label] : w.labeled) graph.Add(a, b, label);
  for (auto _ : state) {
    for (const auto& [a, b] : w.queries) {
      if (a == b) continue;
      benchmark::DoNotOptimize(graph.Deduce(a, b));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.queries.size()));
}
BENCHMARK(BM_ClusterGraphDeduce)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_ReferencePathSearchDeduce(benchmark::State& state) {
  const auto num_objects = static_cast<int32_t>(state.range(0));
  Workload w = MakeWorkload(num_objects, /*cluster_size=*/8,
                            /*num_edges=*/num_objects, /*num_queries=*/16);
  ReferenceDeducer deducer(w.num_objects);
  for (const auto& [a, b, label] : w.labeled) deducer.Add(a, b, label);
  for (auto _ : state) {
    for (const auto& [a, b] : w.queries) {
      if (a == b) continue;
      benchmark::DoNotOptimize(deducer.Deduce(a, b));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(w.queries.size()));
}
BENCHMARK(BM_ReferencePathSearchDeduce)->Arg(1024)->Arg(8192);

void BM_ClusterGraphInsertChain(benchmark::State& state) {
  // Worst-ish case for edge merging: one growing chain of matching pairs
  // while every object also carries non-matching edges to a hub set.
  const auto num_objects = static_cast<int32_t>(state.range(0));
  for (auto _ : state) {
    ClusterGraph graph(num_objects);
    const int32_t hub = num_objects - 1;
    for (int32_t o = 0; o + 2 < num_objects; o += 2) {
      graph.Add(o, hub, Label::kNonMatching);
      graph.Add(o, o + 1, Label::kMatching);
    }
    benchmark::DoNotOptimize(graph.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * num_objects);
}
BENCHMARK(BM_ClusterGraphInsertChain)->Arg(1024)->Arg(16384);

}  // namespace
}  // namespace crowdjoin

BENCHMARK_MAIN();
