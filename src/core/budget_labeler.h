#ifndef CROWDJOIN_CORE_BUDGET_LABELER_H_
#define CROWDJOIN_CORE_BUDGET_LABELER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "core/candidate.h"
#include "core/labeling_result.h"
#include "core/oracle.h"
#include "graph/cluster_graph.h"

namespace crowdjoin {

/// \brief Budget-constrained labeling: the Whang et al. [27] setting the
/// paper contrasts with in related work, combined with transitive
/// deduction.
///
/// There is only enough money for `budget` crowdsourced pairs. The labeler
/// walks the order, crowdsourcing undeduced pairs until the budget is
/// exhausted; from then on only transitive deduction fires, and remaining
/// pairs stay unlabeled. The caller decides how to treat unlabeled pairs
/// (the usual convention, used by the ablation bench, is to predict
/// non-matching).
///
/// Thin wrapper over `LabelingSession` (sequential schedule, budget stop
/// policy); byte-identical to the pre-session implementation.
class BudgetLabeler {
 public:
  /// Result of a budget-limited run. `labels[i]` is empty for pairs the
  /// budget could not reach.
  struct RunResult {
    std::vector<std::optional<PairOutcome>> outcomes;
    int64_t num_crowdsourced = 0;
    int64_t num_deduced = 0;
    int64_t num_unlabeled = 0;
  };

  /// Labels up to `budget` pairs through `oracle`; deduces everything
  /// transitivity reaches (before and after exhaustion).
  /// `budget` must be >= 0.
  Result<RunResult> Run(const CandidateSet& pairs,
                        const std::vector<int32_t>& order, int64_t budget,
                        LabelOracle& oracle) const;
};

}  // namespace crowdjoin

#endif  // CROWDJOIN_CORE_BUDGET_LABELER_H_
