#ifndef CROWDJOIN_TEXT_RECORD_SIMILARITY_H_
#define CROWDJOIN_TEXT_RECORD_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "text/record.h"
#include "text/tfidf.h"

namespace crowdjoin {

/// Per-field similarity measures available to the record scorer.
enum class FieldMeasure : uint8_t {
  kJaccardWords = 0,   ///< Jaccard over normalized word-token sets
  kQGramJaccard = 1,   ///< Jaccard over character q-gram sets
  kLevenshtein = 2,    ///< normalized edit similarity on normalized text
  kJaroWinkler = 3,    ///< Jaro–Winkler on normalized text
  kTfIdfCosine = 4,    ///< TF-IDF-weighted token cosine (requires FitTfIdf)
  kNumeric = 5,        ///< relative numeric proximity (prices, years)
};

/// One field's contribution to the record similarity.
struct FieldSimilaritySpec {
  int field_index = 0;
  FieldMeasure measure = FieldMeasure::kJaccardWords;
  double weight = 1.0;
  int q = 3;  ///< gram size for kQGramJaccard
};

/// \brief Weighted multi-field record similarity — the "machine-based
/// method" that assigns each candidate pair its matching likelihood
/// (Section 2.3, following CrowdER's similarity workflow).
///
/// The score is the weight-normalized average of per-field similarities in
/// [0, 1]. Fields that are empty on both records are skipped (their weight
/// is excluded from normalization); an empty-vs-non-empty field scores 0.
class RecordScorer {
 public:
  /// `specs` must reference valid field indexes of the records scored.
  explicit RecordScorer(std::vector<FieldSimilaritySpec> specs);

  /// Fits one TF-IDF model per kTfIdfCosine field over `records`.
  /// Must be called before Score() if any spec uses kTfIdfCosine.
  void FitTfIdf(const RecordSet& records);

  /// Similarity of two records in [0, 1].
  Result<double> Score(const Record& a, const Record& b) const;

  const std::vector<FieldSimilaritySpec>& specs() const { return specs_; }

 private:
  std::vector<FieldSimilaritySpec> specs_;
  // Indexed like specs_; only kTfIdfCosine entries are fit.
  std::vector<TfIdfModel> tfidf_models_;
};

/// Parses `text` as a double after trimming; NaN on failure.
double ParseNumericField(const std::string& text);

/// Relative numeric proximity: max(0, 1 - |x-y| / max(|x|,|y|)).
/// Both zero -> 1.0; NaN inputs -> 0.0.
double NumericProximity(double x, double y);

}  // namespace crowdjoin

#endif  // CROWDJOIN_TEXT_RECORD_SIMILARITY_H_
