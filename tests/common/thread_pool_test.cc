#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace crowdjoin {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0);
  // Inline execution: the task has run by the time Submit returns, on the
  // submitting thread itself.
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id ran_on;
  bool ran = false;
  auto future = pool.Submit([&] {
    ran = true;
    ran_on = std::this_thread::get_id();
  });
  EXPECT_TRUE(ran);
  EXPECT_EQ(ran_on, self);
  future.get();  // still a valid future
}

TEST(ThreadPool, NegativeThreadsClampToInline) {
  ThreadPool pool(-3);
  EXPECT_EQ(pool.num_threads(), 0);
  int x = 0;
  pool.Submit([&x] { x = 7; }).get();
  EXPECT_EQ(x, 7);
}

TEST(ThreadPool, OneThreadRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> log;  // only the single worker writes, no lock needed
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&log, i] { log.push_back(i); }));
  }
  for (auto& future : futures) future.get();
  std::vector<int> expected(50);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(log, expected);
}

TEST(ThreadPool, SubmitPropagatesExceptionsThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survives the throwing task.
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, InlinePoolPropagatesExceptionsThroughFuture) {
  ThreadPool pool(0);
  auto future = pool.Submit([] { throw std::runtime_error("inline boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, DestructionCompletesQueuedWork) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(1);
    // The first task blocks the lone worker long enough for the rest to
    // pile up in the queue; destruction must still run them all.
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&completed, i] {
        if (i == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        ++completed;
      });
    }
  }  // ~ThreadPool
  EXPECT_EQ(completed.load(), 20);
}

TEST(ThreadPool, StressManyTinyTasks) {
  ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  std::vector<std::future<void>> futures;
  futures.reserve(10000);
  for (int64_t i = 0; i < 10000; ++i) {
    futures.push_back(pool.Submit([&sum, i] { sum += i; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(sum.load(), 10000ll * 9999 / 2);
}

TEST(ParallelMap, ComputesAllResultsByIndex) {
  ThreadPool pool(4);
  const std::vector<int64_t> squares =
      ParallelMap(&pool, 1000, [](int64_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 1000u);
  for (int64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(squares[static_cast<size_t>(i)], i * i);
  }
}

TEST(ParallelMap, IdenticalResultsAcrossPoolSizes) {
  const auto body = [](int64_t i) { return i * 31 + 7; };
  const std::vector<int64_t> inline_results =
      ParallelMap(nullptr, 500, body);
  for (int threads : {0, 1, 2, 4, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(ParallelMap(&pool, 500, body), inline_results)
        << "threads=" << threads;
  }
}

TEST(ParallelMap, NullPoolAndEmptyRangeAreFine) {
  EXPECT_EQ(ParallelMap(nullptr, 0, [](int64_t) { return 1; }).size(), 0u);
  ThreadPool pool(2);
  EXPECT_EQ(ParallelMap(&pool, 0, [](int64_t) { return 1; }).size(), 0u);
  const std::vector<int> one = ParallelMap(nullptr, 1, [](int64_t) {
    return 42;
  });
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(ParallelMap, RethrowsLowestChunkException) {
  ThreadPool pool(4);
  EXPECT_THROW(ParallelMap(&pool, 100,
                           [](int64_t i) -> int {
                             if (i % 10 == 3) {
                               throw std::invalid_argument("bad index");
                             }
                             return static_cast<int>(i);
                           }),
               std::invalid_argument);
  // The pool is still usable afterwards.
  EXPECT_EQ(ParallelMap(&pool, 3, [](int64_t i) { return i; }),
            (std::vector<int64_t>{0, 1, 2}));
}

TEST(ParallelMap, WorksWithMoveOnlyCaptures) {
  ThreadPool pool(2);
  auto data = std::make_unique<int>(5);
  const int* raw = data.get();
  const std::vector<int> results =
      ParallelMap(&pool, 10, [raw](int64_t i) {
        return *raw + static_cast<int>(i);
      });
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)], 5 + i);
  }
}

TEST(ThreadPool, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

}  // namespace
}  // namespace crowdjoin
