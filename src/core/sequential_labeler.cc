#include "core/sequential_labeler.h"

#include "common/macros.h"

namespace crowdjoin {

Result<LabelingResult> SequentialLabeler::Run(
    const CandidateSet& pairs, const std::vector<int32_t>& order,
    LabelOracle& oracle) const {
  LabelingSessionOptions options;
  options.schedule = SchedulePolicy::kSequential;
  options.conflict_policy = policy_;
  LabelingSession session(options);
  CJ_ASSIGN_OR_RETURN(const LabelingReport report,
                      session.Run(pairs, order, oracle));
  return report.ToLabelingResult();
}

}  // namespace crowdjoin
